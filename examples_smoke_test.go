package banger_test

import (
	"os/exec"
	"strings"
	"testing"
)

// TestExamplesRun smoke-tests every runnable example end to end with
// `go run`, asserting each prints its success marker.
func TestExamplesRun(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the go toolchain for every example")
	}
	cases := map[string]string{
		"./examples/quickstart":   "y = 67",
		"./examples/ludecomp":     "verified: x solves Ax = b exactly",
		"./examples/montecarlo":   "pi ~= 3.1",
		"./examples/pipeline":     "Generated standalone program",
		"./examples/calculator":   "x = 12",
		"./examples/heat":         "verified against the sequential reference",
		"./examples/editdistance": "same answer",
	}
	for dir, want := range cases {
		dir, want := dir, want
		t.Run(strings.TrimPrefix(dir, "./examples/"), func(t *testing.T) {
			out, err := exec.Command("go", "run", dir).CombinedOutput()
			if err != nil {
				t.Fatalf("%s failed: %v\n%s", dir, err, out)
			}
			if !strings.Contains(string(out), want) {
				t.Errorf("%s output missing %q:\n%s", dir, want, out)
			}
		})
	}
}
