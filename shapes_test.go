package banger_test

// Shape regression tests: every qualitative claim EXPERIMENTS.md makes
// about the reproduced figures is pinned here, so a refactor that
// silently changes "who wins, by roughly what factor, where crossovers
// fall" fails CI rather than quietly invalidating the writeup.

import (
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/machine"
	"repro/internal/project"
	"repro/internal/sched"
)

func hyperMachine(t *testing.T, dim int, p machine.Params) *machine.Machine {
	t.Helper()
	topo, err := machine.Hypercube(dim)
	if err != nil {
		t.Fatal(err)
	}
	m, err := machine.New(topo.Name, topo, p)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// Figure 3 shape: LU speedup rises from 1 through 2 and 4 PEs, then
// plateaus — it never exceeds the graph's width bound and never drops
// when processors are added.
func TestShapeFig3LUSpeedupCurve(t *testing.T) {
	env, err := core.OpenBuiltin("lu3x3")
	if err != nil {
		t.Fatal(err)
	}
	pts, err := env.SpeedupCurve("mh", []int{0, 1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if !(pts[1].Speedup > pts[0].Speedup*1.2) {
		t.Errorf("2 PEs should clearly beat 1: %+v", pts)
	}
	if pts[2].Speedup < pts[1].Speedup || pts[3].Speedup < pts[2].Speedup {
		t.Errorf("speedup not monotone: %+v", pts)
	}
	w, err := env.Flat.Graph.Width()
	if err != nil {
		t.Fatal(err)
	}
	if pts[3].Speedup > float64(w) {
		t.Errorf("speedup %.2f exceeds width bound %d", pts[3].Speedup, w)
	}
	// Plateau: 8 PEs gain little over 4 on this narrow design.
	if pts[3].Speedup > pts[2].Speedup*1.25 {
		t.Errorf("no plateau: 4 PEs %.2f vs 8 PEs %.2f", pts[2].Speedup, pts[3].Speedup)
	}
}

// Experiment A shape: a width-16 FFT reaches (near-)ideal speedup on
// 8 processors under the contention-free list schedulers.
func TestShapeFFTReachesIdealSpeedup(t *testing.T) {
	fft, err := graph.FFT(16, 40, 8)
	if err != nil {
		t.Fatal(err)
	}
	m := hyperMachine(t, 3, machine.DefaultParams())
	for _, name := range []string{"hlfet", "etf", "ish", "dsh"} {
		s, err := sched.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		sc, err := s.Schedule(fft, m)
		if err != nil {
			t.Fatal(err)
		}
		if sc.Speedup() < 7.5 {
			t.Errorf("%s: FFT16 speedup %.2f on 8 PEs, want >= 7.5", name, sc.Speedup())
		}
	}
}

// Experiment A shape: at extreme communication cost, duplication (DSH)
// is the only heuristic that still beats serial execution.
func TestShapeDSHWinsAtHighCCR(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	g, err := graph.LayeredRandom(rng, graph.LayeredConfig{
		Layers: 8, Width: 8, MinWork: 10, MaxWork: 100, MinWords: 1, MaxWords: 40, Density: 0.3,
	})
	if err != nil {
		t.Fatal(err)
	}
	params := machine.DefaultParams()
	params.WordTime = 16
	m := hyperMachine(t, 3, params)
	dsh, err := (sched.DSH{}).Schedule(g, m)
	if err != nil {
		t.Fatal(err)
	}
	if dsh.Speedup() <= 1.0 {
		t.Errorf("DSH speedup %.2f at word_time 16, want > 1", dsh.Speedup())
	}
	etf, err := (sched.ETF{}).Schedule(g, m)
	if err != nil {
		t.Fatal(err)
	}
	if dsh.Makespan() >= etf.Makespan() {
		t.Errorf("DSH (%v) should beat ETF (%v) at high CCR", dsh.Makespan(), etf.Makespan())
	}
}

// Experiment B shape: makespan is monotone in message startup, and the
// scheduler consolidates onto fewer processors as messages get dearer.
func TestShapeMachineParameterMonotonicity(t *testing.T) {
	env, err := core.OpenBuiltin("lu3x3")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := env.CalibrateWork(); err != nil {
		t.Fatal(err)
	}
	var prevMakespan machine.Time
	var firstPEs, lastPEs int
	for i, ms := range []machine.Time{0, 5, 20, 80} {
		params := machine.Params{ProcSpeed: 1, TaskStartup: 1, MsgStartup: ms, WordTime: 1}
		m := hyperMachine(t, 3, params)
		sc, err := env.ScheduleOn("mh", m)
		if err != nil {
			t.Fatal(err)
		}
		if sc.Makespan() < prevMakespan {
			t.Errorf("makespan dropped when msg startup rose to %v", ms)
		}
		prevMakespan = sc.Makespan()
		if i == 0 {
			firstPEs = sc.UsedPEs()
		}
		lastPEs = sc.UsedPEs()
	}
	if lastPEs > firstPEs {
		t.Errorf("scheduler spread wider (%d -> %d PEs) as comm got dearer", firstPEs, lastPEs)
	}
}

// Experiment E shape: the heat stencil weak-scales at >= 85% efficiency
// through 8 processors when the ring grows with the problem.
func TestShapeHeatWeakScaling(t *testing.T) {
	for _, segs := range []int{2, 4, 8} {
		p, err := project.HeatSized(segs, 4)
		if err != nil {
			t.Fatal(err)
		}
		flat, err := p.Design.Flatten()
		if err != nil {
			t.Fatal(err)
		}
		sc, err := (sched.MH{}).Schedule(flat.Graph, p.Machine)
		if err != nil {
			t.Fatal(err)
		}
		if sc.Efficiency() < 0.85 {
			t.Errorf("%d segments: efficiency %.2f, want >= 0.85", segs, sc.Efficiency())
		}
	}
}

// Topology shape: for the same design and scheduler, a fully-connected
// machine is never slower than a star of the same size under MH.
func TestShapeTopologyOrdering(t *testing.T) {
	g := graph.ForkJoin(6, 30, 20)
	params := machine.DefaultParams()
	mkTopo := func(mk func() (*machine.Topology, error)) *machine.Machine {
		topo, err := mk()
		if err != nil {
			t.Fatal(err)
		}
		m, err := machine.New(topo.Name, topo, params)
		if err != nil {
			t.Fatal(err)
		}
		return m
	}
	full := mkTopo(func() (*machine.Topology, error) { return machine.Full(8) })
	star := mkTopo(func() (*machine.Topology, error) { return machine.Star(8) })
	sFull, err := (sched.MH{}).Schedule(g, full)
	if err != nil {
		t.Fatal(err)
	}
	sStar, err := (sched.MH{}).Schedule(g, star)
	if err != nil {
		t.Fatal(err)
	}
	if sFull.Makespan() > sStar.Makespan() {
		t.Errorf("full (%v) slower than star (%v)", sFull.Makespan(), sStar.Makespan())
	}
}

// Serial baseline shape: every heuristic beats or matches serial on the
// stats pipeline (an embarrassingly parallel reduction with cheap data).
func TestShapeEveryHeuristicBeatsSerialOnStats(t *testing.T) {
	env, err := core.OpenBuiltin("stats")
	if err != nil {
		t.Fatal(err)
	}
	serial, err := env.Schedule("serial")
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range sched.All() {
		if s.Name() == "serial" {
			continue
		}
		sc, err := env.Schedule(s.Name())
		if err != nil {
			t.Fatal(err)
		}
		if sc.Makespan() > serial.Makespan() {
			t.Errorf("%s (%v) worse than serial (%v) on stats", s.Name(), sc.Makespan(), serial.Makespan())
		}
	}
}
