// Package banger is a Go reproduction of Banger, the large-grain
// parallel programming environment for non-programmers described in
// Ted Lewis, "A Large-Grain Parallel Programming Environment for
// Non-Programmers", ICPP 1994.
//
// Banger separates parallel programming-in-the-large (PITL) — drawing
// a hierarchical dataflow graph of tasks, storage cells and precedence
// arcs — from sequential programming-in-the-small (PITS) — filling
// each primitive task with a small routine through a programmable
// pocket-calculator metaphor. A target machine is described by four
// characteristics (processor speed, process startup, message startup,
// transmission speed) plus an interconnection topology; the PPSE
// scheduling heuristics then map the design onto the machine
// automatically, producing Gantt charts and speedup predictions, and
// the design can be trial-run instantly, executed in parallel on
// goroutines, or compiled to a standalone Go program.
//
// The package re-exports the full public surface of the library:
//
//	Design / flatten:  Graph, Node, Arc, Flat (internal/graph)
//	Target machines:   Machine, Topology, Params (internal/machine)
//	Scheduling:        Schedule, Scheduler, Schedulers (internal/sched)
//	PITS language:     Program, Interp, Env (internal/pits)
//	Calculator UI:     Panel (internal/calc)
//	Execution:         Simulate, Runner (internal/exec)
//	Charts:            GanttChart, SpeedupChart (internal/gantt)
//	Projects:          Project, built-ins (internal/project)
//	Environment:       Environment (internal/core)
//
// Quick start:
//
//	env, _ := banger.OpenBuiltin("lu3x3")
//	sc, _ := env.Schedule("mh")
//	fmt.Print(banger.GanttChart(sc, 72))
//	res, _ := env.Run(sc)
//	fmt.Println("x =", res.Outputs["x"])
package banger

import (
	"repro/internal/calc"
	"repro/internal/codegen"
	"repro/internal/core"
	"repro/internal/exec"
	"repro/internal/gantt"
	"repro/internal/graph"
	"repro/internal/machine"
	"repro/internal/pits"
	"repro/internal/project"
	"repro/internal/sched"
	"repro/internal/trace"
)

// PITL graph types.
type (
	// Graph is a hierarchical PITL dataflow design.
	Graph = graph.Graph
	// Node is a vertex of a design: task, storage, port or subgraph.
	Node = graph.Node
	// NodeID identifies a node.
	NodeID = graph.NodeID
	// Arc is a labelled precedence edge.
	Arc = graph.Arc
	// Flat is a flattened design plus its external data bindings.
	Flat = graph.Flat
)

// Machine model types.
type (
	// Machine is a target machine: topology plus the paper's four
	// parameters.
	Machine = machine.Machine
	// Topology is an interconnection network.
	Topology = machine.Topology
	// Params are processor speed, task startup, message startup and
	// per-word transmission time.
	Params = machine.Params
	// Time is simulated time in integer microseconds.
	Time = machine.Time
)

// Scheduling types.
type (
	// Schedule is a Gantt chart plus message events.
	Schedule = sched.Schedule
	// Scheduler maps a flat design onto a machine.
	Scheduler = sched.Scheduler
	// Slot is one task occurrence on a processor.
	Slot = sched.Slot
	// SpeedupPoint is one point of a speedup-prediction curve.
	SpeedupPoint = sched.SpeedupPoint
)

// PITS language types.
type (
	// Program is a parsed PITS routine.
	Program = pits.Program
	// Interp executes PITS routines.
	Interp = pits.Interp
	// Env is a PITS variable environment.
	Env = pits.Env
	// Num is a PITS scalar.
	Num = pits.Num
	// Vec is a PITS vector.
	Vec = pits.Vec
)

// Environment and project types.
type (
	// Environment is an opened Banger project.
	Environment = core.Environment
	// Project bundles a design, machine and input data.
	Project = project.Project
	// Panel is the programmable pocket calculator.
	Panel = calc.Panel
	// Runner executes schedules on real goroutines.
	Runner = exec.Runner
	// Result is a parallel run's outcome.
	Result = exec.Result
	// Trace is an execution event log.
	Trace = trace.Trace
)

// NewGraph returns an empty design with the given name.
func NewGraph(name string) *Graph { return graph.New(name) }

// ShardTask rewrites one task into n data-parallel shards plus a
// gather task — the paper's fine-grained-parallelism extension.
func ShardTask(g *Graph, id NodeID, n int, gatherWork int64, gatherRoutine string) error {
	return graph.ShardTask(g, id, n, gatherWork, gatherRoutine)
}

// GatherSum builds a gather routine summing each variable over n shards.
func GatherSum(n int, vars ...string) string { return graph.GatherSum(n, vars...) }

// NewMachine builds a machine over a topology spec string such as
// "hypercube:3", "mesh:2x4", "star:8" or "full:4".
func NewMachine(name, topoSpec string, p Params) (*Machine, error) {
	topo, err := machine.ParseTopology(topoSpec)
	if err != nil {
		return nil, err
	}
	return machine.New(name, topo, p)
}

// DefaultParams returns the harness's standard machine parameters.
func DefaultParams() Params { return machine.DefaultParams() }

// Open validates a project and returns its environment.
func Open(p *Project) (*Environment, error) { return core.Open(p) }

// OpenBuiltin opens one of the built-in sample projects: "lu3x3"
// (the paper's Figure 1), "newton-sqrt" (Figure 4), "stats" (parallel
// channel reduction on a mesh) or "heat" (1-D diffusion stencil on a
// ring).
func OpenBuiltin(name string) (*Environment, error) { return core.OpenBuiltin(name) }

// Animation renders a trace as a reel of textual animation frames.
func Animation(tr *Trace, numPE, steps int) (string, error) {
	return gantt.Animation(tr, numPE, steps)
}

// Builtins lists the built-in sample project names.
func Builtins() []string { return project.BuiltinNames() }

// Schedulers returns every scheduling heuristic: serial, hlfet, etf,
// mh, dsh and pack.
func Schedulers() []Scheduler { return sched.All() }

// SchedulerByName looks a scheduler up by name.
func SchedulerByName(name string) (Scheduler, error) { return sched.ByName(name) }

// GanttChart renders a schedule as an ASCII Gantt chart.
func GanttChart(s *Schedule, width int) string { return gantt.Chart(s, width) }

// GanttSVG renders a schedule as a standalone SVG document.
func GanttSVG(s *Schedule) string { return gantt.SVG(s) }

// SpeedupChart renders a speedup-prediction curve as ASCII art.
func SpeedupChart(pts []SpeedupPoint, height int) string { return gantt.Speedup(pts, height) }

// TraceChart renders an execution trace as an ASCII Gantt chart.
func TraceChart(tr *Trace, numPE, width int) (string, error) {
	return gantt.FromTrace(tr, numPE, width)
}

// Simulate replays a schedule through the discrete-event simulator.
func Simulate(s *Schedule) (*Trace, error) { return exec.Simulate(s) }

// GenerateCode compiles a scheduled design to standalone Go source.
func GenerateCode(s *Schedule, flat *Flat, inputs Env) (string, error) {
	return codegen.Generate(s, flat, inputs)
}

// TrialRun trial-runs a PITS routine on inputs with instant feedback.
func TrialRun(src string, inputs Env) (*pits.TrialReport, error) {
	return pits.TrialRun(src, inputs)
}

// NewPanel opens a blank calculator panel for a task.
func NewPanel(taskName string) *Panel { return calc.NewPanel(taskName) }

// RenderPanel draws a calculator panel as ASCII art (Figure 4).
func RenderPanel(p *Panel) string { return calc.Render(p) }
