// Package trace records and analyses execution event streams produced
// by the simulator and the parallel runner: Banger's raw material for
// Gantt charts, utilisation reports and predicted-versus-actual
// comparisons.
package trace

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/graph"
	"repro/internal/machine"
)

// Kind classifies events.
type Kind int

// Event kinds.
const (
	TaskStart Kind = iota
	TaskEnd
	MsgSend
	MsgRecv
	// FaultInjected records the chaos harness applying an injected
	// fault: a message dropped/duplicated/delayed/corrupted at the
	// sender, or a processor crash. Note carries the fault kind.
	FaultInjected
	// MsgRetry records a retransmission of an unacknowledged message
	// by the reliable transport.
	MsgRetry
	// TaskRescheduled records the recovery planner moving a task to a
	// live processor after a crash; Peer is the processor the task was
	// originally placed on.
	TaskRescheduled
	// PeerConnected records a distributed run attaching a worker
	// process: Peer is the worker index, Note its address.
	PeerConnected
	// PeerLost records a worker process declared dead (heartbeat loss
	// or unrecoverable connection failure); its processors are treated
	// exactly like crashed PEs. Peer is the worker index.
	PeerLost
	// WireBytes records the bytes a distributed run moved over one peer
	// connection (Bytes totals both directions, Note breaks them down).
	WireBytes
	// WorkerDrained records a graceful drain evacuating a worker
	// process: a planned departure with zero lost state, unlike
	// PeerLost. Peer is the worker index, Note its address.
	WorkerDrained
)

// String returns the event kind name.
func (k Kind) String() string {
	switch k {
	case TaskStart:
		return "task-start"
	case TaskEnd:
		return "task-end"
	case MsgSend:
		return "msg-send"
	case MsgRecv:
		return "msg-recv"
	case FaultInjected:
		return "fault"
	case MsgRetry:
		return "msg-retry"
	case TaskRescheduled:
		return "rescheduled"
	case PeerConnected:
		return "peer-up"
	case PeerLost:
		return "peer-lost"
	case WireBytes:
		return "wire-bytes"
	case WorkerDrained:
		return "drained"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// Kinds lists every event kind once, in declaration order.
func Kinds() []Kind {
	return []Kind{TaskStart, TaskEnd, MsgSend, MsgRecv, FaultInjected,
		MsgRetry, TaskRescheduled, PeerConnected, PeerLost, WireBytes,
		WorkerDrained}
}

// ParseKind inverts Kind.String.
func ParseKind(s string) (Kind, error) {
	for _, k := range Kinds() {
		if k.String() == s {
			return k, nil
		}
	}
	return 0, fmt.Errorf("trace: unknown event kind %q", s)
}

// Event is one timestamped occurrence on a processor.
type Event struct {
	Kind  Kind
	At    machine.Time
	Task  graph.NodeID // task starting/ending, or message producer
	PE    int          // where the event happens
	Var   string       // message variable (message events only)
	Peer  int          // the other processor (message events only)
	Seq   uint64       // logical transmission number (message events; 0 = unnumbered)
	Dup   bool         // event belongs to a duplicate copy
	Note  string       // free-form detail (fault kind, retry attempt)
	Bytes int64        // payload size (wire events only)
}

// Trace is an event log. Events may be appended in any order; callers
// sort once before analysis.
type Trace struct {
	Label  string
	Events []Event
}

// Add appends an event.
func (t *Trace) Add(e Event) { t.Events = append(t.Events, e) }

// kindOrder ranks events sharing a timestamp: a task ending at t
// precedes a message sent at t, which precedes a message received at t,
// which precedes a task starting at t — the causal order of a
// back-to-back schedule.
var kindOrder = map[Kind]int{TaskEnd: 0, MsgSend: 1, MsgRecv: 2, TaskStart: 3,
	FaultInjected: 4, MsgRetry: 5, TaskRescheduled: 6,
	PeerConnected: 7, PeerLost: 8, WireBytes: 9, WorkerDrained: 10}

// Sort orders events by time, then processor, then causal kind order,
// then task, variable and peer, giving a deterministic log for
// rendering and comparison. The full key matters when diffing traces
// from different engines: two messages from one task at one instant
// must land in the same order regardless of which engine emitted them.
func (t *Trace) Sort() {
	sort.SliceStable(t.Events, func(i, j int) bool {
		a, b := t.Events[i], t.Events[j]
		if a.At != b.At {
			return a.At < b.At
		}
		if a.PE != b.PE {
			return a.PE < b.PE
		}
		if a.Kind != b.Kind {
			return kindOrder[a.Kind] < kindOrder[b.Kind]
		}
		if a.Task != b.Task {
			return a.Task < b.Task
		}
		if a.Var != b.Var {
			return a.Var < b.Var
		}
		return a.Peer < b.Peer
	})
}

// Makespan returns the time of the latest event.
func (t *Trace) Makespan() machine.Time {
	var m machine.Time
	for _, e := range t.Events {
		if e.At > m {
			m = e.At
		}
	}
	return m
}

// Span is one busy interval of a processor.
type Span struct {
	Task   graph.NodeID
	Start  machine.Time
	Finish machine.Time
	Dup    bool
}

// Spans reconstructs per-processor busy intervals by pairing
// TaskStart/TaskEnd events. It returns an error if the log is
// inconsistent (end without start, overlapping starts on one PE).
func (t *Trace) Spans() (map[int][]Span, error) {
	t.Sort()
	open := map[int]*Span{}
	out := map[int][]Span{}
	for _, e := range t.Events {
		switch e.Kind {
		case TaskStart:
			if open[e.PE] != nil {
				return nil, fmt.Errorf("trace: PE %d starts %q while %q still running", e.PE, e.Task, open[e.PE].Task)
			}
			open[e.PE] = &Span{Task: e.Task, Start: e.At, Dup: e.Dup}
		case TaskEnd:
			sp := open[e.PE]
			if sp == nil || sp.Task != e.Task {
				return nil, fmt.Errorf("trace: PE %d ends %q without matching start", e.PE, e.Task)
			}
			sp.Finish = e.At
			out[e.PE] = append(out[e.PE], *sp)
			open[e.PE] = nil
		}
	}
	for pe, sp := range open {
		if sp != nil {
			return nil, fmt.Errorf("trace: PE %d never ends %q", pe, sp.Task)
		}
	}
	return out, nil
}

// Stats summarises a trace.
type Stats struct {
	Makespan    machine.Time
	TasksRun    int
	DupsRun     int
	Msgs        int
	Faults      int   // injected faults recorded in the trace
	Retries     int   // message retransmissions
	Rescheduled int   // tasks moved by crash recovery
	Peers       int   // worker processes that joined a distributed run
	PeersLost   int   // worker processes declared dead mid-run
	Drained     int   // worker processes gracefully evacuated mid-run
	WireBytes   int64 // bytes moved over peer connections
	BusyByPE    map[int]machine.Time
	Utilization float64 // mean busy fraction over PEs that appear in the trace
}

// Summarize computes summary statistics. numPE is the machine size the
// trace ran on (idle processors count toward utilisation).
func (t *Trace) Summarize(numPE int) (*Stats, error) {
	spans, err := t.Spans()
	if err != nil {
		return nil, err
	}
	st := &Stats{Makespan: t.Makespan(), BusyByPE: map[int]machine.Time{}}
	for pe, ss := range spans {
		for _, s := range ss {
			st.BusyByPE[pe] += s.Finish - s.Start
			if s.Dup {
				st.DupsRun++
			} else {
				st.TasksRun++
			}
		}
	}
	for _, e := range t.Events {
		switch e.Kind {
		case MsgSend:
			st.Msgs++
		case FaultInjected:
			st.Faults++
		case MsgRetry:
			st.Retries++
		case TaskRescheduled:
			st.Rescheduled++
		case PeerConnected:
			st.Peers++
		case PeerLost:
			st.PeersLost++
		case WorkerDrained:
			st.Drained++
		case WireBytes:
			st.WireBytes += e.Bytes
		}
	}
	if st.Makespan > 0 && numPE > 0 {
		var busy machine.Time
		for _, b := range st.BusyByPE {
			busy += b
		}
		st.Utilization = float64(busy) / (float64(st.Makespan) * float64(numPE))
	}
	return st, nil
}

// String renders the trace as one line per event.
func (t *Trace) String() string {
	t.Sort()
	var b strings.Builder
	fmt.Fprintf(&b, "trace %q: %d events\n", t.Label, len(t.Events))
	for _, e := range t.Events {
		switch e.Kind {
		case TaskStart, TaskEnd:
			fmt.Fprintf(&b, "  %8v PE%-2d %-10s %s", e.At, e.PE, e.Kind, e.Task)
			if e.Dup {
				b.WriteString(" (dup)")
			}
			b.WriteByte('\n')
		case FaultInjected, MsgRetry, TaskRescheduled:
			fmt.Fprintf(&b, "  %8v PE%-2d %-10s %s", e.At, e.PE, e.Kind, e.Task)
			if e.Var != "" {
				fmt.Fprintf(&b, ":%s", e.Var)
			}
			fmt.Fprintf(&b, " peer=PE%d", e.Peer)
			if e.Note != "" {
				fmt.Fprintf(&b, " (%s)", e.Note)
			}
			b.WriteByte('\n')
		case PeerConnected, PeerLost, WireBytes, WorkerDrained:
			fmt.Fprintf(&b, "  %8v %-10s worker=%d", e.At, e.Kind, e.Peer)
			if e.Kind == WireBytes {
				fmt.Fprintf(&b, " bytes=%d", e.Bytes)
			}
			if e.Note != "" {
				fmt.Fprintf(&b, " (%s)", e.Note)
			}
			b.WriteByte('\n')
		default:
			fmt.Fprintf(&b, "  %8v PE%-2d %-10s %s:%s peer=PE%d\n", e.At, e.PE, e.Kind, e.Task, e.Var, e.Peer)
		}
	}
	return b.String()
}
