package trace

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
)

// TestEventCodecRoundTripsEveryKind feeds one fully-populated event of
// every kind through the encoder and back, asserting nothing is lost —
// in particular the Peer and Seq fields, which identify the other end
// and the logical transmission of a message event.
func TestEventCodecRoundTripsEveryKind(t *testing.T) {
	for _, k := range Kinds() {
		k := k
		t.Run(k.String(), func(t *testing.T) {
			in := &Trace{Label: "codec-" + k.String(), Events: []Event{{
				Kind:  k,
				At:    12345,
				Task:  "sub/t1_2",
				PE:    3,
				Var:   "v1_2",
				Peer:  5,
				Seq:   987654321,
				Dup:   true,
				Note:  "attempt 2",
				Bytes: 4096,
			}}}
			var buf bytes.Buffer
			if err := in.Encode(&buf); err != nil {
				t.Fatal(err)
			}
			out, err := Decode(&buf)
			if err != nil {
				t.Fatal(err)
			}
			if out.Label != in.Label {
				t.Errorf("label %q != %q", out.Label, in.Label)
			}
			if len(out.Events) != 1 {
				t.Fatalf("decoded %d events, want 1", len(out.Events))
			}
			if !reflect.DeepEqual(out.Events[0], in.Events[0]) {
				t.Errorf("event did not survive the round trip:\n got  %+v\n want %+v", out.Events[0], in.Events[0])
			}
		})
	}
}

// TestEventCodecCoversEveryField guards against a field added to Event
// but silently dropped by the codec: the wire struct must have exactly
// one field per Event field.
func TestEventCodecCoversEveryField(t *testing.T) {
	ev := reflect.TypeOf(Event{})
	je := reflect.TypeOf(jsonEvent{})
	if ev.NumField() != je.NumField() {
		t.Fatalf("Event has %d fields but jsonEvent has %d: the trace codec is missing a field", ev.NumField(), je.NumField())
	}
	for i := 0; i < ev.NumField(); i++ {
		name := ev.Field(i).Name
		if _, ok := je.FieldByName(name); !ok {
			t.Errorf("Event field %s has no jsonEvent counterpart", name)
		}
	}
}

// TestEventCodecRejectsUnknownKind: a corrupted kind name is an error,
// not a zero-valued event.
func TestEventCodecRejectsUnknownKind(t *testing.T) {
	_, err := Decode(strings.NewReader(`{"label":"x","events":[{"kind":"no-such-kind","at":0,"pe":0}]}`))
	if err == nil {
		t.Fatal("decoding an unknown kind succeeded")
	}
}

// TestParseKindInvertsString: every kind's name parses back to itself.
func TestParseKindInvertsString(t *testing.T) {
	for _, k := range Kinds() {
		got, err := ParseKind(k.String())
		if err != nil {
			t.Fatal(err)
		}
		if got != k {
			t.Errorf("ParseKind(%q) = %v, want %v", k.String(), got, k)
		}
	}
}
