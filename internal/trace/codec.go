package trace

import (
	"encoding/json"
	"fmt"
	"io"

	"repro/internal/graph"
	"repro/internal/machine"
)

// This file is the trace serialisation format: a JSON document with one
// object per event, used by repro directories and any tool that wants
// to persist or replay an execution log. Every Event field is mapped
// explicitly — the codec round-trip test asserts the struct and the
// wire form cannot drift apart silently.

// jsonTrace is the wire form of a Trace.
type jsonTrace struct {
	Label  string      `json:"label"`
	Events []jsonEvent `json:"events"`
}

// jsonEvent is the wire form of an Event. Kind travels as its String
// name so the format stays readable and stable if constants renumber.
type jsonEvent struct {
	Kind  string `json:"kind"`
	At    int64  `json:"at"`
	Task  string `json:"task,omitempty"`
	PE    int    `json:"pe"`
	Var   string `json:"var,omitempty"`
	Peer  int    `json:"peer,omitempty"`
	Seq   uint64 `json:"seq,omitempty"`
	Dup   bool   `json:"dup,omitempty"`
	Note  string `json:"note,omitempty"`
	Bytes int64  `json:"bytes,omitempty"`
}

func toJSONEvent(e Event) jsonEvent {
	return jsonEvent{
		Kind:  e.Kind.String(),
		At:    int64(e.At),
		Task:  string(e.Task),
		PE:    e.PE,
		Var:   e.Var,
		Peer:  e.Peer,
		Seq:   e.Seq,
		Dup:   e.Dup,
		Note:  e.Note,
		Bytes: e.Bytes,
	}
}

func fromJSONEvent(je jsonEvent) (Event, error) {
	k, err := ParseKind(je.Kind)
	if err != nil {
		return Event{}, err
	}
	return Event{
		Kind:  k,
		At:    machine.Time(je.At),
		Task:  graph.NodeID(je.Task),
		PE:    je.PE,
		Var:   je.Var,
		Peer:  je.Peer,
		Seq:   je.Seq,
		Dup:   je.Dup,
		Note:  je.Note,
		Bytes: je.Bytes,
	}, nil
}

// Encode writes the trace to w in the JSON trace format.
func (t *Trace) Encode(w io.Writer) error {
	jt := jsonTrace{Label: t.Label, Events: make([]jsonEvent, len(t.Events))}
	for i, e := range t.Events {
		jt.Events[i] = toJSONEvent(e)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(&jt)
}

// Decode reads a trace in the JSON trace format from r.
func Decode(r io.Reader) (*Trace, error) {
	var jt jsonTrace
	if err := json.NewDecoder(r).Decode(&jt); err != nil {
		return nil, fmt.Errorf("trace: decode: %w", err)
	}
	t := &Trace{Label: jt.Label, Events: make([]Event, len(jt.Events))}
	for i, je := range jt.Events {
		e, err := fromJSONEvent(je)
		if err != nil {
			return nil, err
		}
		t.Events[i] = e
	}
	return t, nil
}
