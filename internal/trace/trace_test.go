package trace

import (
	"strings"
	"testing"

	"repro/internal/machine"
)

func TestSpansPairing(t *testing.T) {
	tr := &Trace{Label: "t"}
	tr.Add(Event{Kind: TaskEnd, At: 10, Task: "a", PE: 0})
	tr.Add(Event{Kind: TaskStart, At: 0, Task: "a", PE: 0})
	tr.Add(Event{Kind: TaskStart, At: 10, Task: "b", PE: 0})
	tr.Add(Event{Kind: TaskEnd, At: 25, Task: "b", PE: 0})
	tr.Add(Event{Kind: TaskStart, At: 5, Task: "c", PE: 1, Dup: true})
	tr.Add(Event{Kind: TaskEnd, At: 9, Task: "c", PE: 1, Dup: true})
	spans, err := tr.Spans()
	if err != nil {
		t.Fatal(err)
	}
	if len(spans[0]) != 2 || len(spans[1]) != 1 {
		t.Fatalf("spans = %v", spans)
	}
	if spans[0][0].Task != "a" || spans[0][0].Finish != 10 {
		t.Errorf("span = %+v", spans[0][0])
	}
	if !spans[1][0].Dup {
		t.Error("dup flag lost")
	}
}

func TestSpansDetectInconsistency(t *testing.T) {
	overlap := &Trace{}
	overlap.Add(Event{Kind: TaskStart, At: 0, Task: "a", PE: 0})
	overlap.Add(Event{Kind: TaskStart, At: 1, Task: "b", PE: 0})
	if _, err := overlap.Spans(); err == nil {
		t.Error("overlapping starts accepted")
	}
	orphanEnd := &Trace{}
	orphanEnd.Add(Event{Kind: TaskEnd, At: 5, Task: "a", PE: 0})
	if _, err := orphanEnd.Spans(); err == nil {
		t.Error("end without start accepted")
	}
	neverEnds := &Trace{}
	neverEnds.Add(Event{Kind: TaskStart, At: 0, Task: "a", PE: 0})
	if _, err := neverEnds.Spans(); err == nil {
		t.Error("unterminated task accepted")
	}
}

func TestSummarize(t *testing.T) {
	tr := &Trace{}
	tr.Add(Event{Kind: TaskStart, At: 0, Task: "a", PE: 0})
	tr.Add(Event{Kind: TaskEnd, At: 10, Task: "a", PE: 0})
	tr.Add(Event{Kind: TaskStart, At: 0, Task: "b", PE: 1, Dup: true})
	tr.Add(Event{Kind: TaskEnd, At: 5, Task: "b", PE: 1, Dup: true})
	tr.Add(Event{Kind: MsgSend, At: 10, Task: "a", PE: 0, Var: "v", Peer: 1})
	tr.Add(Event{Kind: MsgRecv, At: 12, Task: "a", PE: 1, Var: "v", Peer: 0})
	st, err := tr.Summarize(2)
	if err != nil {
		t.Fatal(err)
	}
	if st.Makespan != 12 {
		t.Errorf("makespan = %v", st.Makespan)
	}
	if st.TasksRun != 1 || st.DupsRun != 1 || st.Msgs != 1 {
		t.Errorf("stats = %+v", st)
	}
	if st.BusyByPE[0] != 10 || st.BusyByPE[1] != 5 {
		t.Errorf("busy = %v", st.BusyByPE)
	}
	wantUtil := float64(15) / float64(12*2)
	if st.Utilization < wantUtil-1e-9 || st.Utilization > wantUtil+1e-9 {
		t.Errorf("utilization = %f, want %f", st.Utilization, wantUtil)
	}
}

func TestSummarizeEmpty(t *testing.T) {
	st, err := (&Trace{}).Summarize(4)
	if err != nil {
		t.Fatal(err)
	}
	if st.Makespan != 0 || st.Utilization != 0 {
		t.Errorf("stats = %+v", st)
	}
}

func TestSortDeterministic(t *testing.T) {
	tr := &Trace{}
	tr.Add(Event{Kind: TaskEnd, At: 5, Task: "b", PE: 1})
	tr.Add(Event{Kind: TaskStart, At: 5, Task: "a", PE: 0})
	tr.Add(Event{Kind: TaskStart, At: 1, Task: "c", PE: 2})
	tr.Sort()
	if tr.Events[0].Task != "c" || tr.Events[1].PE != 0 {
		t.Errorf("order = %v", tr.Events)
	}
}

func TestStringRendersEvents(t *testing.T) {
	tr := &Trace{Label: "demo"}
	tr.Add(Event{Kind: TaskStart, At: 0, Task: "a", PE: 0})
	tr.Add(Event{Kind: TaskEnd, At: 3, Task: "a", PE: 0})
	tr.Add(Event{Kind: MsgSend, At: 3, Task: "a", PE: 0, Var: "v", Peer: 1})
	s := tr.String()
	for _, want := range []string{"demo", "task-start", "task-end", "msg-send", "a:v"} {
		if !strings.Contains(s, want) {
			t.Errorf("String missing %q:\n%s", want, s)
		}
	}
}

func TestKindString(t *testing.T) {
	if TaskStart.String() != "task-start" || Kind(42).String() != "kind(42)" {
		t.Error("kind names wrong")
	}
}

func TestMakespan(t *testing.T) {
	tr := &Trace{}
	if tr.Makespan() != machine.Time(0) {
		t.Error("empty trace makespan != 0")
	}
	tr.Add(Event{Kind: TaskEnd, At: 99, Task: "x", PE: 0})
	tr.Add(Event{Kind: TaskStart, At: 5, Task: "x", PE: 0})
	if tr.Makespan() != 99 {
		t.Errorf("makespan = %v", tr.Makespan())
	}
}
