package project

import (
	"fmt"
	"math"
	"testing"

	"repro/internal/exec"
	"repro/internal/pits"
	"repro/internal/sched"
)

func TestHeatValidates(t *testing.T) {
	p, err := Heat()
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	flat, err := p.Flatten()
	if err != nil {
		t.Fatal(err)
	}
	// segments*steps tasks.
	if got := len(flat.Graph.Tasks()); got != heatSegments*heatSteps {
		t.Errorf("tasks = %d", got)
	}
	// The stencil's halo exchange shows up as width = segments.
	w, err := flat.Graph.Width()
	if err != nil {
		t.Fatal(err)
	}
	if w != heatSegments {
		t.Errorf("width = %d, want %d", w, heatSegments)
	}
}

func TestHeatSizedRejectsBadSizes(t *testing.T) {
	if _, err := HeatSized(1, 3); err == nil {
		t.Error("1 segment accepted")
	}
	if _, err := HeatSized(4, 0); err == nil {
		t.Error("0 steps accepted")
	}
}

// The stencil must compute exactly what a sequential reference computes,
// under every scheduler.
func TestHeatMatchesSequentialReference(t *testing.T) {
	p, err := Heat()
	if err != nil {
		t.Fatal(err)
	}
	flat, err := p.Flatten()
	if err != nil {
		t.Fatal(err)
	}
	want := HeatReference(heatSegments, heatSteps, p.Inputs)
	for _, s := range sched.All() {
		sc, err := s.Schedule(flat.Graph, p.Machine)
		if err != nil {
			t.Fatalf("%s: %v", s.Name(), err)
		}
		r := &exec.Runner{Inputs: p.Inputs}
		res, err := r.Run(sc, flat)
		if err != nil {
			t.Fatalf("%s: %v", s.Name(), err)
		}
		for seg := 0; seg < heatSegments; seg++ {
			got, ok := res.Outputs[fmt.Sprintf("seg%d_%d", seg, heatSteps-1)].(pits.Vec)
			if !ok {
				t.Fatalf("%s: segment %d missing from outputs", s.Name(), seg)
			}
			for i := 0; i < heatCells; i++ {
				ref := want[seg*heatCells+i]
				if math.Abs(got[i]-ref) > 1e-9 {
					t.Errorf("%s: cell [%d,%d] = %v, want %v", s.Name(), seg, i, got[i], ref)
				}
			}
		}
	}
}

// Heat conservation sanity: with zero-clamped ends heat leaks out, so
// total heat is non-increasing and positive early on.
func TestHeatIsDissipative(t *testing.T) {
	p, err := Heat()
	if err != nil {
		t.Fatal(err)
	}
	sum := func(steps int) float64 {
		cur := HeatReference(heatSegments, steps, p.Inputs)
		s := 0.0
		for _, v := range cur {
			s += v
		}
		return s
	}
	s0, s3, s10 := sum(0), sum(3), sum(10)
	if !(s0 >= s3 && s3 >= s10) {
		t.Errorf("heat grew: %v %v %v", s0, s3, s10)
	}
	if s10 <= 0 {
		t.Errorf("all heat vanished too fast: %v", s10)
	}
}

func TestHeatRingSuitsStencil(t *testing.T) {
	// On the matched ring the stencil should engage every processor.
	p, err := Heat()
	if err != nil {
		t.Fatal(err)
	}
	flat, err := p.Flatten()
	if err != nil {
		t.Fatal(err)
	}
	sc, err := sched.MH{}.Schedule(flat.Graph, p.Machine)
	if err != nil {
		t.Fatal(err)
	}
	if sc.UsedPEs() < 2 {
		t.Errorf("stencil used only %d PEs", sc.UsedPEs())
	}
	if sc.Speedup() <= 1.0 {
		t.Errorf("no speedup on the ring: %.2f", sc.Speedup())
	}
}

func TestHeatLargerInstance(t *testing.T) {
	p, err := HeatSized(6, 5)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	flat, err := p.Flatten()
	if err != nil {
		t.Fatal(err)
	}
	if len(flat.Graph.Tasks()) != 30 {
		t.Errorf("tasks = %d", len(flat.Graph.Tasks()))
	}
	sc, err := sched.ETF{}.Schedule(flat.Graph, p.Machine)
	if err != nil {
		t.Fatal(err)
	}
	if err := sc.Validate(); err != nil {
		t.Fatal(err)
	}
}
