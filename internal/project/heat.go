package project

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/machine"
	"repro/internal/pits"
)

// heatSegments × heatSteps is the default size of the Heat design.
const (
	heatSegments = 4
	heatSteps    = 3
	heatCells    = 8 // cells per segment
	heatAlpha    = 0.25
)

// Heat builds an explicit 1-D heat-diffusion stencil, time-unrolled
// into a dataflow graph: the rod is split into segments; each time
// step every segment updates its cells from its own previous values
// plus one boundary cell from each neighbour. This is the classic
// "quick-and-dirty" science code the paper's introduction motivates —
// halo exchange appears naturally as the boundary arcs, and a ring
// machine matches the communication pattern.
//
// Boundary condition: the rod's two ends are clamped to zero
// (Dirichlet). Initial condition: a hot spike in the middle segments.
func Heat() (*Project, error) {
	return HeatSized(heatSegments, heatSteps)
}

// HeatSized builds the heat design with the given number of segments
// (>= 2) and unrolled time steps (>= 1).
func HeatSized(segments, steps int) (*Project, error) {
	if segments < 2 || steps < 1 {
		return nil, fmt.Errorf("heat: need >= 2 segments and >= 1 step, got %d/%d", segments, steps)
	}
	g := graph.New(fmt.Sprintf("heat-%dx%d", segments, steps))
	id := func(s, t int) graph.NodeID { return graph.NodeID(fmt.Sprintf("h%d.%d", s, t)) }
	segVar := func(s, t int) string { return fmt.Sprintf("seg%d_%d", s, t) }
	lVar := func(s, t int) string { return fmt.Sprintf("lb%d_%d", s, t) } // segment's own left cell, exported
	rVar := func(s, t int) string { return fmt.Sprintf("rb%d_%d", s, t) } // segment's own right cell, exported

	inputs := pits.Env{"alpha": pits.Num(heatAlpha)}
	g.MustAddStorage("ALPHA", "alpha")
	for s := 0; s < segments; s++ {
		cell := fmt.Sprintf("init%d", s)
		g.MustAddStorage(graph.NodeID("INIT"+itoa2(s)), cell)
		vec := make(pits.Vec, heatCells)
		if s == segments/2-1 || s == segments/2 {
			for i := range vec {
				vec[i] = 100
			}
		}
		inputs[cell] = vec
	}

	// routine builds the PITS update for segment s at step t.
	routine := func(s, t int) string {
		src := ""
		// Bind this step's inputs to generic names.
		if t == 0 {
			src += fmt.Sprintf("seg = init%d\n", s)
		} else {
			src += fmt.Sprintf("seg = %s\n", segVar(s, t-1))
		}
		if s == 0 {
			src += "lg = 0\n"
		} else if t == 0 {
			src += fmt.Sprintf("lg = init%d[%d]\n", s-1, heatCells)
		} else {
			src += fmt.Sprintf("lg = %s\n", rVar(s-1, t-1))
		}
		if s == segments-1 {
			src += "rg = 0\n"
		} else if t == 0 {
			src += fmt.Sprintf("rg = init%d[1]\n", s+1)
		} else {
			src += fmt.Sprintf("rg = %s\n", lVar(s+1, t-1))
		}
		src += `m = len(seg)
new = zeros(m)
for i = 1 to m do
  if i == 1 then
    l = lg
  else
    l = seg[i - 1]
  end
  if i == m then
    r = rg
  else
    r = seg[i + 1]
  end
  new[i] = seg[i] + alpha * (l - 2 * seg[i] + r)
end
`
		src += fmt.Sprintf("%s = new\n", segVar(s, t))
		src += fmt.Sprintf("%s = new[1]\n", lVar(s, t))
		src += fmt.Sprintf("%s = new[%d]\n", rVar(s, t), heatCells)
		return src
	}

	// Per-cell work: ~10 ops per cell per step plus loop overhead.
	work := int64(heatCells*12 + 20)
	for t := 0; t < steps; t++ {
		for s := 0; s < segments; s++ {
			n := g.MustAddTask(id(s, t), fmt.Sprintf("segment %d step %d", s, t), work)
			n.Routine = routine(s, t)
			g.MustConnect("ALPHA", id(s, t), "alpha", 1)
			if t == 0 {
				g.MustConnect(graph.NodeID("INIT"+itoa2(s)), id(s, t), fmt.Sprintf("init%d", s), heatCells)
				if s > 0 {
					g.MustConnect(graph.NodeID("INIT"+itoa2(s-1)), id(s, t), fmt.Sprintf("init%d", s-1), heatCells)
				}
				if s < segments-1 {
					g.MustConnect(graph.NodeID("INIT"+itoa2(s+1)), id(s, t), fmt.Sprintf("init%d", s+1), heatCells)
				}
				continue
			}
			g.MustConnect(id(s, t-1), id(s, t), segVar(s, t-1), heatCells)
			if s > 0 {
				g.MustConnect(id(s-1, t-1), id(s, t), rVar(s-1, t-1), 1)
			}
			if s < segments-1 {
				g.MustConnect(id(s+1, t-1), id(s, t), lVar(s+1, t-1), 1)
			}
		}
	}
	// Final results drain to storage.
	for s := 0; s < segments; s++ {
		cell := graph.NodeID(fmt.Sprintf("FINAL%d", s))
		g.MustAddStorage(cell, fmt.Sprintf("final%d", s))
		g.MustConnect(id(s, steps-1), cell, segVar(s, steps-1), heatCells)
	}

	topo, err := machine.Ring(segments)
	if err != nil {
		return nil, err
	}
	m, err := machine.New(topo.Name, topo, machine.DefaultParams())
	if err != nil {
		return nil, err
	}
	return &Project{Name: "heat", Design: g, Machine: m, Inputs: inputs}, nil
}

// HeatReference computes the same diffusion sequentially in Go for
// result verification: segments*heatCells cells, zero-clamped ends.
func HeatReference(segments, steps int, inputs pits.Env) []float64 {
	n := segments * heatCells
	cur := make([]float64, n)
	for s := 0; s < segments; s++ {
		if v, ok := inputs[fmt.Sprintf("init%d", s)].(pits.Vec); ok {
			copy(cur[s*heatCells:], v)
		}
	}
	alpha := float64(inputs["alpha"].(pits.Num))
	next := make([]float64, n)
	for t := 0; t < steps; t++ {
		for i := 0; i < n; i++ {
			l, r := 0.0, 0.0
			if i > 0 {
				l = cur[i-1]
			}
			if i < n-1 {
				r = cur[i+1]
			}
			next[i] = cur[i] + alpha*(l-2*cur[i]+r)
		}
		cur, next = next, cur
	}
	return cur
}
