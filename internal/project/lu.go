package project

import (
	"repro/internal/graph"
	"repro/internal/machine"
	"repro/internal/pits"
)

// LU3x3 reconstructs the paper's Figure 1: a two-level hierarchical
// PITL dataflow graph performing LU decomposition of a 3×3 linear
// system Ax=b, with forward and back substitution as decomposable
// lower-level graphs.
//
// Storage cells: A (the 3×3 matrix, row-major 9-vector) and b (the
// right-hand side) are the writer-less inputs; x is the reader-less
// output. Tasks follow the paper's naming: fl21, fl31, fl32 are the
// column "fan" factor tasks and u22..u33 the row updates.
//
// The default target machine is an 8-processor hypercube with the
// harness's standard parameters; the default inputs are a well-
// conditioned system whose exact solution is x = (1, 2, 3).
func LU3x3() (*Project, error) {
	g := graph.New("lu3x3")

	// --- storage (Figure 1's open rectangles) -----------------------
	g.MustAddStorage("A", "A")
	g.MustAddStorage("B", "b")
	g.MustAddStorage("X", "x")

	// --- level 1: factorisation tasks -------------------------------
	add := func(id graph.NodeID, label, routine string, work int64) {
		n := g.MustAddTask(id, label, work)
		n.Routine = routine
	}
	add("fl21", "fan l21", "l21 = A[4] / A[1]", 20)
	add("fl31", "fan l31", "l31 = A[7] / A[1]", 20)
	add("u22", "update a22", "u22 = A[5] - l21 * A[2]", 25)
	add("u23", "update a23", "u23 = A[6] - l21 * A[3]", 25)
	add("u32", "update a32", "a32p = A[8] - l31 * A[2]", 25)
	add("u33", "update a33", "a33p = A[9] - l31 * A[3]", 25)
	add("fl32", "fan l32", "l32 = a32p / u22", 20)
	add("u33b", "update a33 step 2", "u33 = a33p - l32 * u23", 25)

	g.MustConnect("A", "fl21", "A", 9)
	g.MustConnect("A", "fl31", "A", 9)
	g.MustConnect("A", "u22", "A", 9)
	g.MustConnect("A", "u23", "A", 9)
	g.MustConnect("A", "u32", "A", 9)
	g.MustConnect("A", "u33", "A", 9)
	g.MustConnect("fl21", "u22", "l21", 1)
	g.MustConnect("fl21", "u23", "l21", 1)
	g.MustConnect("fl31", "u32", "l31", 1)
	g.MustConnect("fl31", "u33", "l31", 1)
	g.MustConnect("u32", "fl32", "a32p", 1)
	g.MustConnect("u22", "fl32", "u22", 1)
	g.MustConnect("u33", "u33b", "a33p", 1)
	g.MustConnect("fl32", "u33b", "l32", 1)
	g.MustConnect("u23", "u33b", "u23", 1)

	// --- level 2: forward substitution Ly = b ------------------------
	fwd := graph.New("forward")
	fwd.MustAddInput("b")
	fwd.MustAddInput("l21")
	fwd.MustAddInput("l31")
	fwd.MustAddInput("l32")
	fwd.MustAddOutput("y")
	fadd := func(id graph.NodeID, label, routine string, work int64) {
		n := fwd.MustAddTask(id, label, work)
		n.Routine = routine
	}
	fadd("y1", "solve y1", "y1 = b[1]", 10)
	fadd("y2", "solve y2", "y2 = b[2] - l21 * y1", 20)
	fadd("y3", "solve y3", "y3 = b[3] - l31 * y1 - l32 * y2", 30)
	fadd("pack", "pack y", "y = [y1, y2, y3]", 10)
	fwd.MustConnect("b", "y1", "b", 3)
	fwd.MustConnect("b", "y2", "b", 3)
	fwd.MustConnect("b", "y3", "b", 3)
	fwd.MustConnect("l21", "y2", "l21", 1)
	fwd.MustConnect("l31", "y3", "l31", 1)
	fwd.MustConnect("l32", "y3", "l32", 1)
	fwd.MustConnect("y1", "y2", "y1", 1)
	fwd.MustConnect("y1", "y3", "y1", 1)
	fwd.MustConnect("y2", "y3", "y2", 1)
	fwd.MustConnect("y1", "pack", "y1", 1)
	fwd.MustConnect("y2", "pack", "y2", 1)
	fwd.MustConnect("y3", "pack", "y3", 1)
	fwd.MustConnect("pack", "y", "y", 3)

	// --- level 2: back substitution Ux = y ---------------------------
	back := graph.New("back")
	back.MustAddInput("y")
	back.MustAddInput("A")
	back.MustAddInput("u22")
	back.MustAddInput("u23")
	back.MustAddInput("u33")
	back.MustAddOutput("x")
	badd := func(id graph.NodeID, label, routine string, work int64) {
		n := back.MustAddTask(id, label, work)
		n.Routine = routine
	}
	badd("x3", "solve x3", "x3 = y[3] / u33", 15)
	badd("x2", "solve x2", "x2 = (y[2] - u23 * x3) / u22", 25)
	badd("x1", "solve x1", "x1 = (y[1] - A[2] * x2 - A[3] * x3) / A[1]", 35)
	badd("packx", "pack x", "x = [x1, x2, x3]", 10)
	back.MustConnect("y", "x3", "y", 3)
	back.MustConnect("y", "x2", "y", 3)
	back.MustConnect("y", "x1", "y", 3)
	back.MustConnect("u33", "x3", "u33", 1)
	back.MustConnect("u23", "x2", "u23", 1)
	back.MustConnect("u22", "x2", "u22", 1)
	back.MustConnect("A", "x1", "A", 9)
	back.MustConnect("x3", "x2", "x3", 1)
	back.MustConnect("x3", "x1", "x3", 1)
	back.MustConnect("x2", "x1", "x2", 1)
	back.MustConnect("x1", "packx", "x1", 1)
	back.MustConnect("x2", "packx", "x2", 1)
	back.MustConnect("x3", "packx", "x3", 1)
	back.MustConnect("packx", "x", "x", 3)

	// --- hierarchy wiring --------------------------------------------
	g.MustAddSub("forward", "forward substitution", fwd)
	g.MustAddSub("back", "back substitution", back)
	g.MustConnect("B", "forward", "b", 3)
	g.MustConnect("fl21", "forward", "l21", 1)
	g.MustConnect("fl31", "forward", "l31", 1)
	g.MustConnect("fl32", "forward", "l32", 1)
	g.MustConnect("forward", "back", "y", 3)
	g.MustConnect("A", "back", "A", 9)
	g.MustConnect("u22", "back", "u22", 1)
	g.MustConnect("u23", "back", "u23", 1)
	g.MustConnect("u33b", "back", "u33", 1)
	g.MustConnect("back", "X", "x", 3)

	topo, err := machine.Hypercube(3)
	if err != nil {
		return nil, err
	}
	m, err := machine.New("hypercube-8", topo, machine.DefaultParams())
	if err != nil {
		return nil, err
	}

	// A = [[2,1,1],[4,3,3],[8,7,9]], b = A·(1,2,3)ᵀ = (7,19,49)ᵀ.
	return &Project{
		Name:    "lu3x3",
		Design:  g,
		Machine: m,
		Inputs: pits.Env{
			"A": pits.Vec{2, 1, 1, 4, 3, 3, 8, 7, 9},
			"b": pits.Vec{7, 19, 49},
		},
	}, nil
}

// LUSolution returns the exact solution of the default LU3x3 inputs.
func LUSolution() pits.Vec { return pits.Vec{1, 2, 3} }
