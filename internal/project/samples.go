package project

import (
	"repro/internal/graph"
	"repro/internal/machine"
	"repro/internal/pits"
)

// NewtonSqrt is the paper's Figure 4 example as a one-task project:
// the SquareRoot routine computing x = sqrt(a) by Newton–Raphson.
func NewtonSqrt() (*Project, error) {
	g := graph.New("newton-sqrt")
	g.MustAddStorage("Ain", "a")
	n := g.MustAddTask("sqrt", "SquareRoot", 200)
	n.Routine = `# SquareRoot (Figure 4): Newton-Raphson for x = sqrt(a)
x = a
eps = 1e-12
err = 1
while err > eps do
  xold = x
  x = 0.5 * (xold + a / xold)
  err = abs(x - xold)
end`
	g.MustAddStorage("Xout", "x")
	g.MustConnect("Ain", "sqrt", "a", 1)
	g.MustConnect("sqrt", "Xout", "x", 1)

	topo, err := machine.Full(1)
	if err != nil {
		return nil, err
	}
	m, err := machine.New("single", topo, machine.DefaultParams())
	if err != nil {
		return nil, err
	}
	return &Project{
		Name:    "newton-sqrt",
		Design:  g,
		Machine: m,
		Inputs:  pits.Env{"a": pits.Num(2)},
	}, nil
}

// StatsPipeline is a wide scatter/gather design in the spirit of the
// quick-and-dirty science codes the paper motivates: eight sensor
// channels are each reduced to mean and spread in parallel, then a
// combiner ranks the channels. It exercises fan-out, vector data and
// heavier per-task work.
func StatsPipeline() (*Project, error) {
	g := graph.New("stats")
	g.MustAddStorage("DATA", "data") // 64 readings, 8 per channel
	inputs := pits.Env{}
	data := make(pits.Vec, 64)
	for i := range data {
		// Deterministic synthetic readings: channel c gets values
		// around 10*(c+1) with a small wobble.
		c := i / 8
		data[i] = float64(10*(c+1)) + float64((i*37)%11) - 5
	}
	inputs["data"] = data

	combine := g.MustAddTask("combine", "rank channels", 200)
	var combineExpr string
	for c := 0; c < 8; c++ {
		id := graph.NodeID(chName(c))
		n := g.MustAddTask(id, "reduce channel "+chName(c), 400)
		n.Routine = `lo = 1 + ` + itoa2(c*8) + `
m = 0
for i = lo to lo + 7 do
  m = m + data[i]
end
m = m / 8
s = 0
for i = lo to lo + 7 do
  s = s + (data[i] - m) ^ 2
end
` + chName(c) + `_mean = m
` + chName(c) + `_var = s / 8`
		g.MustConnect("DATA", id, "data", 64)
		g.MustConnect(id, "combine", chName(c)+"_mean", 1)
		g.MustConnect(id, "combine", chName(c)+"_var", 1)
		if c > 0 {
			combineExpr += ", "
		}
		combineExpr += chName(c) + "_mean"
	}
	combine.Routine = `means = [` + combineExpr + `]
best = max(means)
worst = min(means)
spread = best - worst`
	g.MustAddStorage("OUT1", "best")
	g.MustAddStorage("OUT2", "spread")
	g.MustConnect("combine", "OUT1", "best", 1)
	g.MustConnect("combine", "OUT2", "spread", 1)

	topo, err := machine.Mesh(2, 4)
	if err != nil {
		return nil, err
	}
	m, err := machine.New("mesh-2x4", topo, machine.DefaultParams())
	if err != nil {
		return nil, err
	}
	return &Project{Name: "stats", Design: g, Machine: m, Inputs: inputs}, nil
}

func chName(c int) string { return "ch" + string(rune('0'+c)) }

func itoa2(i int) string {
	if i == 0 {
		return "0"
	}
	var digits []byte
	for i > 0 {
		digits = append([]byte{byte('0' + i%10)}, digits...)
		i /= 10
	}
	return string(digits)
}
