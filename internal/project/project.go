// Package project ties a Banger design together: the PITL graph, the
// target machine, and the external input data, in one loadable/savable
// document. It also ships the built-in sample projects used throughout
// the reproduction — most importantly the paper's Figure 1 running
// example, LU decomposition of a 3×3 system Ax=b.
package project

import (
	"encoding/json"
	"fmt"
	"sort"

	"repro/internal/graph"
	"repro/internal/machine"
	"repro/internal/pits"
)

// Project is a complete Banger workspace.
type Project struct {
	Name    string
	Design  *graph.Graph
	Machine *machine.Machine
	// Inputs binds the design's external input variables (writer-less
	// storage cells) to trial values.
	Inputs pits.Env
}

// Validate checks the project is internally consistent: the design
// validates and flattens, every external input variable has a value,
// and every task routine parses and type-checks against its inputs.
func (p *Project) Validate() error {
	if p.Design == nil {
		return fmt.Errorf("project %q: no design", p.Name)
	}
	if p.Machine == nil {
		return fmt.Errorf("project %q: no machine", p.Name)
	}
	flat, err := p.Design.Flatten()
	if err != nil {
		return fmt.Errorf("project %q: %w", p.Name, err)
	}
	for task, vars := range flat.ExternalIn {
		for _, v := range vars {
			if _, ok := p.Inputs[v]; !ok {
				return fmt.Errorf("project %q: task %s needs external input %q which has no value", p.Name, task, v)
			}
		}
	}
	for _, n := range flat.Graph.Tasks() {
		if n.Routine == "" {
			continue
		}
		prog, err := pits.Parse(n.Routine)
		if err != nil {
			return fmt.Errorf("project %q: task %s: %w", p.Name, n.ID, err)
		}
		var defined []string
		for _, a := range flat.Graph.Pred(n.ID) {
			defined = append(defined, a.Var)
		}
		defined = append(defined, flat.ExternalIn[n.ID]...)
		if err := pits.Check(prog, defined); err != nil {
			return fmt.Errorf("project %q: task %s: %w", p.Name, n.ID, err)
		}
	}
	return nil
}

// Flatten validates and flattens the design.
func (p *Project) Flatten() (*graph.Flat, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return p.Design.Flatten()
}

// jsonProject is the wire form; inputs become plain JSON numbers and
// arrays.
type jsonProject struct {
	Name    string                     `json:"name"`
	Design  *graph.Graph               `json:"design"`
	Machine *machine.Machine           `json:"machine"`
	Inputs  map[string]json.RawMessage `json:"inputs,omitempty"`
}

// MarshalJSON implements json.Marshaler.
func (p *Project) MarshalJSON() ([]byte, error) {
	jp := jsonProject{Name: p.Name, Design: p.Design, Machine: p.Machine}
	if len(p.Inputs) > 0 {
		jp.Inputs = map[string]json.RawMessage{}
		for k, v := range p.Inputs {
			var raw []byte
			var err error
			switch t := v.(type) {
			case pits.Num:
				raw, err = json.Marshal(float64(t))
			case pits.Vec:
				raw, err = json.Marshal([]float64(t))
			case pits.BoolV:
				raw, err = json.Marshal(bool(t))
			case pits.StrV:
				raw, err = json.Marshal(string(t))
			default:
				err = fmt.Errorf("project %q: input %q has unserialisable type %s", p.Name, k, v.TypeName())
			}
			if err != nil {
				return nil, err
			}
			jp.Inputs[k] = raw
		}
	}
	return json.Marshal(jp)
}

// UnmarshalJSON implements json.Unmarshaler.
func (p *Project) UnmarshalJSON(data []byte) error {
	var jp jsonProject
	if err := json.Unmarshal(data, &jp); err != nil {
		return err
	}
	np := Project{Name: jp.Name, Design: jp.Design, Machine: jp.Machine}
	if jp.Inputs != nil {
		np.Inputs = pits.Env{}
		for k, raw := range jp.Inputs {
			var f float64
			if err := json.Unmarshal(raw, &f); err == nil {
				np.Inputs[k] = pits.Num(f)
				continue
			}
			var vec []float64
			if err := json.Unmarshal(raw, &vec); err == nil {
				np.Inputs[k] = pits.Vec(vec)
				continue
			}
			var b bool
			if err := json.Unmarshal(raw, &b); err == nil {
				np.Inputs[k] = pits.BoolV(b)
				continue
			}
			var s string
			if err := json.Unmarshal(raw, &s); err == nil {
				np.Inputs[k] = pits.StrV(s)
				continue
			}
			return fmt.Errorf("project %q: input %q: unsupported JSON value", jp.Name, k)
		}
	}
	*p = np
	return nil
}

// builtinTable maps names to constructors.
func builtinTable() map[string]func() (*Project, error) {
	return map[string]func() (*Project, error){
		"lu3x3":       LU3x3,
		"newton-sqrt": NewtonSqrt,
		"stats":       StatsPipeline,
		"heat":        Heat,
	}
}

// Builtin returns a fresh copy of the named built-in sample project.
func Builtin(name string) (*Project, error) {
	mk, ok := builtinTable()[name]
	if !ok {
		return nil, fmt.Errorf("project: no builtin %q (have %v)", name, BuiltinNames())
	}
	return mk()
}

// BuiltinNames lists the built-in sample projects, sorted.
func BuiltinNames() []string {
	var names []string
	for n := range builtinTable() {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
