package project

import (
	"encoding/json"
	"math"
	"reflect"
	"strings"
	"testing"

	"repro/internal/exec"
	"repro/internal/machine"
	"repro/internal/pits"
	"repro/internal/sched"
)

func TestLU3x3ValidatesAndFlattens(t *testing.T) {
	p, err := LU3x3()
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	flat, err := p.Flatten()
	if err != nil {
		t.Fatal(err)
	}
	// 8 top-level tasks + 4 forward + 4 back = 16.
	if got := len(flat.Graph.Tasks()); got != 16 {
		t.Errorf("tasks = %d, want 16", got)
	}
	// Hierarchy: the design itself has two KindSub nodes.
	subs := 0
	for _, n := range p.Design.Nodes() {
		if n.Kind == 2 { // graph.KindSub
			subs++
		}
	}
	if subs != 2 {
		t.Errorf("sub nodes = %d, want 2 (forward, back)", subs)
	}
	// External bindings: A and b in, x out.
	insSeen := map[string]bool{}
	for _, vars := range flat.ExternalIn {
		for _, v := range vars {
			insSeen[v] = true
		}
	}
	if !insSeen["A"] || !insSeen["b"] {
		t.Errorf("external inputs = %v", flat.ExternalIn)
	}
	outSeen := false
	for _, vars := range flat.ExternalOut {
		for _, v := range vars {
			if v == "x" {
				outSeen = true
			}
		}
	}
	if !outSeen {
		t.Errorf("external outputs = %v", flat.ExternalOut)
	}
}

// The headline integration test: flatten Figure 1, schedule it with
// every heuristic on the default hypercube, execute it for real on
// goroutines, and check that the computed x actually solves Ax=b.
func TestLU3x3SolvesTheSystemUnderEveryScheduler(t *testing.T) {
	p, err := LU3x3()
	if err != nil {
		t.Fatal(err)
	}
	flat, err := p.Flatten()
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range sched.All() {
		sc, err := s.Schedule(flat.Graph, p.Machine)
		if err != nil {
			t.Fatalf("%s: %v", s.Name(), err)
		}
		if err := sc.Validate(); err != nil {
			t.Fatalf("%s: invalid schedule: %v", s.Name(), err)
		}
		r := &exec.Runner{Inputs: p.Inputs}
		res, err := r.Run(sc, flat)
		if err != nil {
			t.Fatalf("%s: run: %v", s.Name(), err)
		}
		x, ok := res.Outputs["x"].(pits.Vec)
		if !ok {
			t.Fatalf("%s: x = %#v", s.Name(), res.Outputs["x"])
		}
		want := LUSolution()
		for i := range want {
			if math.Abs(x[i]-want[i]) > 1e-9 {
				t.Errorf("%s: x[%d] = %v, want %v", s.Name(), i+1, x[i], want[i])
			}
		}
	}
}

func TestNewtonSqrtProject(t *testing.T) {
	p, err := NewtonSqrt()
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	flat, err := p.Flatten()
	if err != nil {
		t.Fatal(err)
	}
	sc, err := sched.Serial{}.Schedule(flat.Graph, p.Machine)
	if err != nil {
		t.Fatal(err)
	}
	r := &exec.Runner{Inputs: p.Inputs}
	res, err := r.Run(sc, flat)
	if err != nil {
		t.Fatal(err)
	}
	x := float64(res.Outputs["x"].(pits.Num))
	if math.Abs(x-math.Sqrt2) > 1e-9 {
		t.Errorf("x = %v, want sqrt(2)", x)
	}
}

func TestStatsPipelineProject(t *testing.T) {
	p, err := StatsPipeline()
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	flat, err := p.Flatten()
	if err != nil {
		t.Fatal(err)
	}
	if got := len(flat.Graph.Tasks()); got != 9 {
		t.Errorf("tasks = %d, want 9", got)
	}
	sc, err := sched.MH{}.Schedule(flat.Graph, p.Machine)
	if err != nil {
		t.Fatal(err)
	}
	r := &exec.Runner{Inputs: p.Inputs}
	res, err := r.Run(sc, flat)
	if err != nil {
		t.Fatal(err)
	}
	best := float64(res.Outputs["best"].(pits.Num))
	spread := float64(res.Outputs["spread"].(pits.Num))
	if best <= 70 || best >= 90 {
		t.Errorf("best = %v", best)
	}
	if spread <= 0 {
		t.Errorf("spread = %v", spread)
	}
	// The 8 channels plus combiner should exploit the 8-PE mesh.
	if sc.UsedPEs() < 4 {
		t.Errorf("only %d PEs used", sc.UsedPEs())
	}
}

func TestProjectJSONRoundTrip(t *testing.T) {
	p, err := LU3x3()
	if err != nil {
		t.Fatal(err)
	}
	data, err := json.Marshal(p)
	if err != nil {
		t.Fatal(err)
	}
	var back Project
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Name != p.Name || back.Design.Len() != p.Design.Len() || back.Machine.NumPE() != p.Machine.NumPE() {
		t.Fatal("round trip changed shape")
	}
	if !reflect.DeepEqual(back.Inputs["A"], p.Inputs["A"]) {
		t.Errorf("inputs lost: %v", back.Inputs)
	}
	if err := back.Validate(); err != nil {
		t.Errorf("round-tripped project invalid: %v", err)
	}
	// Routines survive.
	if back.Design.Node("fl21").Routine != p.Design.Node("fl21").Routine {
		t.Error("routine lost")
	}
}

func TestProjectJSONInputTypes(t *testing.T) {
	p := &Project{Name: "t", Inputs: pits.Env{
		"n": pits.Num(3.5), "v": pits.Vec{1, 2}, "f": pits.BoolV(true), "s": pits.StrV("hi"),
	}}
	p2, _ := NewtonSqrt()
	p.Design, p.Machine = p2.Design, p2.Machine
	data, err := json.Marshal(p)
	if err != nil {
		t.Fatal(err)
	}
	var back Project
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Inputs["n"] != pits.Num(3.5) || back.Inputs["f"] != pits.BoolV(true) || back.Inputs["s"] != pits.StrV("hi") {
		t.Errorf("inputs = %#v", back.Inputs)
	}
	if !reflect.DeepEqual(back.Inputs["v"], pits.Vec{1, 2}) {
		t.Errorf("vector = %#v", back.Inputs["v"])
	}
}

func TestValidateCatchesProblems(t *testing.T) {
	p, err := LU3x3()
	if err != nil {
		t.Fatal(err)
	}
	t.Run("missing input value", func(t *testing.T) {
		q := *p
		q.Inputs = pits.Env{"A": p.Inputs["A"]} // drop b
		if err := q.Validate(); err == nil || !strings.Contains(err.Error(), `"b"`) {
			t.Errorf("err = %v", err)
		}
	})
	t.Run("no design", func(t *testing.T) {
		q := Project{Name: "x", Machine: p.Machine}
		if err := q.Validate(); err == nil {
			t.Error("accepted")
		}
	})
	t.Run("no machine", func(t *testing.T) {
		q := Project{Name: "x", Design: p.Design}
		if err := q.Validate(); err == nil {
			t.Error("accepted")
		}
	})
	t.Run("broken routine", func(t *testing.T) {
		q, err := LU3x3()
		if err != nil {
			t.Fatal(err)
		}
		q.Design.Node("fl21").Routine = "l21 = "
		if err := q.Validate(); err == nil {
			t.Error("accepted")
		}
	})
	t.Run("routine uses unknown variable", func(t *testing.T) {
		q, err := LU3x3()
		if err != nil {
			t.Fatal(err)
		}
		q.Design.Node("fl21").Routine = "l21 = nosuchvar"
		if err := q.Validate(); err == nil {
			t.Error("accepted")
		}
	})
}

func TestBuiltins(t *testing.T) {
	names := BuiltinNames()
	if len(names) != 4 {
		t.Fatalf("names = %v", names)
	}
	for _, n := range names {
		p, err := Builtin(n)
		if err != nil {
			t.Errorf("%s: %v", n, err)
			continue
		}
		if err := p.Validate(); err != nil {
			t.Errorf("%s: %v", n, err)
		}
	}
	if _, err := Builtin("nosuch"); err == nil {
		t.Error("unknown builtin accepted")
	}
}

// Figure 3 shape check at the project level: scheduling LU on larger
// hypercubes must not increase MH makespan, and 8 PEs must beat 1.
func TestLUSpeedupShape(t *testing.T) {
	p, err := LU3x3()
	if err != nil {
		t.Fatal(err)
	}
	flat, err := p.Flatten()
	if err != nil {
		t.Fatal(err)
	}
	prev := int64(1 << 62)
	for _, dim := range []int{0, 1, 2, 3} {
		topo, err := machine.Hypercube(dim)
		if err != nil {
			t.Fatal(err)
		}
		m, err := p.Machine.Scale(topo)
		if err != nil {
			t.Fatal(err)
		}
		sc, err := sched.MH{}.Schedule(flat.Graph, m)
		if err != nil {
			t.Fatal(err)
		}
		mk := int64(sc.Makespan())
		if mk > prev {
			t.Errorf("hypercube-%d makespan %d worse than smaller machine %d", dim, mk, prev)
		}
		prev = mk
	}
}
