package sched

import (
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/graph"
	"repro/internal/machine"
)

// randLayered builds a deterministic random layered DAG for index and
// Validate stress tests.
func randLayered(t *testing.T, seed int64, layers, width int) *graph.Graph {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	g, err := graph.LayeredRandom(rng, graph.LayeredConfig{
		Layers: layers, Width: width,
		MinWork: 5, MaxWork: 60, MinWords: 1, MaxWords: 20, Density: 0.4,
	})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// TestIndexMatchesBruteForce checks every indexed accessor against a
// recomputation straight from Slots and Msgs, on schedules with and
// without duplicates.
func TestIndexMatchesBruteForce(t *testing.T) {
	for _, tc := range []struct {
		name string
		s    Scheduler
		p    machine.Params
		spec string
	}{
		{"etf", ETF{}, cheapComm(), "hypercube:3"},
		{"dsh-dup-heavy", DSH{}, costlyComm(), "mesh:2x2"},
		{"mh", MH{}, costlyComm(), "star:4"},
	} {
		t.Run(tc.name, func(t *testing.T) {
			g := randLayered(t, 11, 8, 6)
			m := mk(t, tc.spec, tc.p)
			s, err := tc.s.Schedule(g, m)
			if err != nil {
				t.Fatal(err)
			}

			// Makespan.
			var mk machine.Time
			for _, sl := range s.Slots {
				if sl.Finish > mk {
					mk = sl.Finish
				}
			}
			if got := s.Makespan(); got != mk {
				t.Errorf("Makespan = %v, brute force %v", got, mk)
			}

			used := 0
			for pe := 0; pe < m.NumPE(); pe++ {
				// PESlots: same set as filtering Slots, sorted by start.
				var want []Slot
				for _, sl := range s.Slots {
					if sl.PE == pe {
						want = append(want, sl)
					}
				}
				got := s.PESlots(pe)
				if len(got) != len(want) {
					t.Fatalf("PE%d: PESlots has %d slots, brute force %d", pe, len(got), len(want))
				}
				for i := 1; i < len(got); i++ {
					if got[i].Start < got[i-1].Start {
						t.Errorf("PE%d: PESlots not sorted at %d", pe, i)
					}
				}
				seen := map[graph.NodeID]int{}
				var busy machine.Time
				for _, sl := range want {
					seen[sl.Task]++
					busy += sl.Finish - sl.Start
				}
				for _, sl := range got {
					seen[sl.Task]--
				}
				for task, n := range seen {
					if n != 0 {
						t.Errorf("PE%d: PESlots disagrees on %s by %d", pe, task, n)
					}
				}
				if len(want) > 0 {
					used++
				}

				// BusyTime.
				if got := s.BusyTime(pe); got != busy {
					t.Errorf("PE%d: BusyTime = %v, brute force %v", pe, got, busy)
				}

				// OutTraffic.
				msgs, words := 0, int64(0)
				for _, msg := range s.Msgs {
					if msg.FromPE == pe && msg.ToPE != pe {
						msgs++
						words += msg.Words
					}
				}
				if gm, gw := s.OutTraffic(pe); gm != msgs || gw != words {
					t.Errorf("PE%d: OutTraffic = (%d, %d), brute force (%d, %d)", pe, gm, gw, msgs, words)
				}
			}
			if got := s.UsedPEs(); got != used {
				t.Errorf("UsedPEs = %d, brute force %d", got, used)
			}

			// SlotsFor: every copy of every task, primaries flagged.
			for _, n := range g.Nodes() {
				id := n.ID
				var want []Slot
				for _, sl := range s.Slots {
					if sl.Task == id {
						want = append(want, sl)
					}
				}
				if got := s.SlotsFor(id); !reflect.DeepEqual(got, want) {
					t.Errorf("SlotsFor(%s) = %v, brute force %v", id, got, want)
				}
				prim, ok := s.PrimarySlot(id)
				if !ok {
					t.Errorf("PrimarySlot(%s) missing", id)
				} else if prim.Dup {
					t.Errorf("PrimarySlot(%s) returned a duplicate", id)
				}
			}
		})
	}
}

// TestValidateMHContentionAware runs MH — whose times include link
// contention on shared routes — over random graphs on star and mesh
// topologies and requires the indexed Validate to accept every result.
func TestValidateMHContentionAware(t *testing.T) {
	for _, spec := range []string{"star:4", "mesh:2x2", "mesh:2x3"} {
		for seed := int64(0); seed < 4; seed++ {
			g := randLayered(t, seed, 6, 5)
			m := mk(t, spec, costlyComm())
			s, err := MH{}.Schedule(g, m)
			if err != nil {
				t.Fatalf("%s seed %d: %v", spec, seed, err)
			}
			if err := s.Validate(); err != nil {
				t.Errorf("%s seed %d: MH schedule failed Validate: %v", spec, seed, err)
			}
		}
	}
}

// TestValidateDSHDuplicateHeavy makes communication expensive enough
// that DSH duplicates aggressively, then requires Validate to accept
// the duplicate-bearing schedules it produces.
func TestValidateDSHDuplicateHeavy(t *testing.T) {
	dups := 0
	for seed := int64(0); seed < 4; seed++ {
		g := randLayered(t, seed, 6, 5)
		m := mk(t, "hypercube:2", costlyComm())
		s, err := DSH{}.Schedule(g, m)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if err := s.Validate(); err != nil {
			t.Errorf("seed %d: DSH schedule failed Validate: %v", seed, err)
		}
		for _, sl := range s.Slots {
			if sl.Dup {
				dups++
			}
		}
	}
	if dups == 0 {
		t.Error("DSH produced no duplicates under costly comm; test exercises nothing")
	}
}

// TestCompareAndSpeedupCurveDeterministic runs the concurrent Compare
// and SpeedupCurve repeatedly and requires identical results each time:
// the goroutine fan-out must not leak nondeterminism into the output.
func TestCompareAndSpeedupCurveDeterministic(t *testing.T) {
	g := randLayered(t, 3, 6, 5)
	m := mk(t, "hypercube:3", costlyComm())
	base, err := Compare(g, m)
	if err != nil {
		t.Fatal(err)
	}
	if len(base) != len(All()) {
		t.Fatalf("Compare returned %d schedules, want %d", len(base), len(All()))
	}
	for round := 0; round < 3; round++ {
		again, err := Compare(g, m)
		if err != nil {
			t.Fatal(err)
		}
		for name, sc := range base {
			got, ok := again[name]
			if !ok {
				t.Fatalf("round %d: %s missing", round, name)
			}
			if !reflect.DeepEqual(got.Slots, sc.Slots) || got.Makespan() != sc.Makespan() {
				t.Errorf("round %d: %s schedule differs between runs", round, name)
			}
		}
	}

	machines := []*machine.Machine{
		mk(t, "hypercube:1", costlyComm()),
		mk(t, "hypercube:2", costlyComm()),
		mk(t, "hypercube:3", costlyComm()),
	}
	basePts, err := SpeedupCurve(ETF{}, g, machines)
	if err != nil {
		t.Fatal(err)
	}
	if len(basePts) != 3 || basePts[0].PEs != 2 || basePts[1].PEs != 4 || basePts[2].PEs != 8 {
		t.Fatalf("SpeedupCurve order not preserved: %+v", basePts)
	}
	for round := 0; round < 3; round++ {
		pts, err := SpeedupCurve(ETF{}, g, machines)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(pts, basePts) {
			t.Errorf("round %d: SpeedupCurve differs: %+v vs %+v", round, pts, basePts)
		}
	}
}
