package sched

import (
	"fmt"
	"strings"

	"repro/internal/graph"
	"repro/internal/machine"
)

// Optimal finds a minimum-makespan schedule (without task duplication)
// by branch-and-bound over (task sequence, processor assignment) pairs.
// It exists to keep the heuristics honest: the paper claims PPSE "finds
// the shortest elapsed execution time schedule", and the test suite
// uses Optimal as the ground truth on small graphs.
//
// The search enumerates list schedules — at each step any ready task
// may be placed on any processor at its earliest start there. For
// precedence graphs with communication delays every schedule can be
// shifted left to such a form without increasing the makespan, so the
// enumeration covers an optimal (non-duplicating) schedule.
//
// Cost is exponential; MaxTasks (default 12) guards against misuse.
type Optimal struct {
	// MaxTasks bounds the graph size accepted (0 = 12).
	MaxTasks int
}

// Name implements Scheduler.
func (Optimal) Name() string { return "optimal" }

// Schedule implements Scheduler.
func (o Optimal) Schedule(g *graph.Graph, m *machine.Machine) (*Schedule, error) {
	max := o.MaxTasks
	if max <= 0 {
		max = 12
	}
	if n := len(g.Tasks()); n > max {
		return nil, fmt.Errorf("sched: optimal search limited to %d tasks, graph has %d", max, n)
	}
	// Seed the incumbent with a good heuristic so pruning bites early.
	best, err := ETF{}.Schedule(g, m)
	if err != nil {
		return nil, err
	}
	if dsh, err := (DSH{}).Schedule(g, m); err == nil {
		// DSH duplicates, which the search space excludes; use it only
		// as a bound if duplicate-free.
		hasDup := false
		for _, sl := range dsh.Slots {
			hasDup = hasDup || sl.Dup
		}
		if !hasDup && dsh.Makespan() < best.Makespan() {
			best = dsh
		}
	}

	s := &bbState{
		g: g, m: m,
		bestMakespan: best.Makespan(),
		bestSlots:    append([]Slot(nil), best.Slots...),
		procFree:     make([]machine.Time, m.NumPE()),
		peCount:      make([]int, m.NumPE()),
		placed:       map[graph.NodeID]Slot{},
		pending:      map[graph.NodeID]int{},
		symmetric:    isFullyConnected(m),
	}
	var remaining machine.Time
	for _, n := range g.Tasks() {
		s.pending[n.ID] = len(g.Predecessors(n.ID))
		remaining += m.ExecTime(n.Work, 0)
	}
	if m.Speeds == nil { // homogeneous: remaining-work bound is valid
		s.remainingExec = remaining
	}
	s.search(0, 0)

	// Rebuild the message list for the winning slot set.
	out := &Schedule{Graph: g, Machine: m, Algorithm: "optimal", Slots: s.bestSlots}
	finish := map[graph.NodeID]Slot{}
	for _, sl := range out.Slots {
		finish[sl.Task] = sl
	}
	for _, a := range g.Arcs() {
		from, to := finish[a.From], finish[a.To]
		if from.PE != to.PE {
			out.Msgs = append(out.Msgs, Msg{
				Var: a.Var, From: a.From, To: a.To,
				FromPE: from.PE, ToPE: to.PE, Words: a.Words,
				Send: from.Finish, Recv: from.Finish + m.CommTime(a.Words, from.PE, to.PE),
				Hops: m.Topo.Hops(from.PE, to.PE),
			})
		}
	}
	return out, nil
}

// isFullyConnected reports whether every PE pair is adjacent and the
// machine is homogeneous, which makes processors interchangeable.
func isFullyConnected(m *machine.Machine) bool {
	if m.Speeds != nil {
		return false
	}
	return strings.HasPrefix(m.Topo.Name, "full-") || m.Topo.Diameter() <= 1
}

type bbState struct {
	g *graph.Graph
	m *machine.Machine

	bestMakespan machine.Time
	bestSlots    []Slot

	procFree      []machine.Time
	peCount       []int // number of slots placed on each PE
	placed        map[graph.NodeID]Slot
	stack         []Slot
	pending       map[graph.NodeID]int
	remainingExec machine.Time // total ExecTime of unplaced tasks (homogeneous only)
	symmetric     bool
}

// search extends the partial schedule; depth counts placed tasks and
// curMax is the partial makespan.
func (s *bbState) search(depth int, curMax machine.Time) {
	if depth == len(s.g.Tasks()) {
		if curMax < s.bestMakespan {
			s.bestMakespan = curMax
			s.bestSlots = append(s.bestSlots[:0], s.stack...)
		}
		return
	}
	if curMax >= s.bestMakespan {
		return
	}
	// Remaining-work bound: all outstanding execution spread perfectly
	// over the machine starting from the earliest free processor.
	if s.remainingExec > 0 {
		var earliest machine.Time = s.procFree[0]
		for _, f := range s.procFree[1:] {
			if f < earliest {
				earliest = f
			}
		}
		lb := earliest + (s.remainingExec-1)/machine.Time(len(s.procFree)) + 1
		if lb >= s.bestMakespan && lb > curMax {
			return
		}
	}

	for _, n := range s.g.Tasks() {
		if s.pending[n.ID] != 0 || s.placed[n.ID].Task != "" {
			continue
		}
		// Symmetry breaking on fully-connected homogeneous machines:
		// untouched processors are interchangeable, so only the first
		// fresh one needs exploring.
		maxPE := len(s.procFree)
		if s.symmetric {
			used := 0
			for _, c := range s.peCount {
				if c > 0 {
					used++
				}
			}
			if used+1 < maxPE {
				maxPE = used + 1
			}
		}
		for pe := 0; pe < maxPE; pe++ {
			start := s.procFree[pe]
			feasible := true
			for _, a := range s.g.PredArcs(n.ID) {
				src, ok := s.placed[a.From]
				if !ok {
					feasible = false
					break
				}
				at := src.Finish + s.m.CommTime(a.Words, src.PE, pe)
				if at > start {
					start = at
				}
			}
			if !feasible {
				continue
			}
			exec := s.m.ExecTime(n.Work, pe)
			sl := Slot{Task: n.ID, PE: pe, Start: start, Finish: start + exec}
			newMax := curMax
			if sl.Finish > newMax {
				newMax = sl.Finish
			}
			if newMax >= s.bestMakespan {
				continue
			}
			// Apply.
			oldFree := s.procFree[pe]
			s.procFree[pe] = sl.Finish
			s.peCount[pe]++
			s.placed[n.ID] = sl
			s.stack = append(s.stack, sl)
			for _, succ := range s.g.Successors(n.ID) {
				s.pending[succ]--
			}
			s.remainingExec -= exec

			s.search(depth+1, newMax)

			// Undo.
			s.remainingExec += exec
			for _, succ := range s.g.Successors(n.ID) {
				s.pending[succ]++
			}
			s.stack = s.stack[:len(s.stack)-1]
			delete(s.placed, n.ID)
			s.peCount[pe]--
			s.procFree[pe] = oldFree
		}
	}
}
