package sched

import (
	"fmt"
	"sync"

	"repro/internal/graph"
	"repro/internal/machine"
)

// This file implements the compiled graph view shared by every
// scheduler: dense integer task ids, predecessor/successor arc lists in
// flat CSR slices, precomputed static levels, execution times and
// communication coefficients, built so the hot loops — which evaluate
// O(n·P) candidate placements per task — never touch a map, allocate a
// slice, or compare a string.
//
// The view is immutable once built and depends only on the graph and
// machine, so it is cached: compiledFor keys a small LRU on the
// (graph, machine) identity plus the graph's mutation version. At 100k
// tasks compiling costs tens of seconds (dominated by the 2×8.8M-entry
// CSR fill and its string-keyed id lookups); scheduling the same design
// repeatedly — the paper's sketch/schedule/tweak loop — must not re-pay
// it.
//
// Determinism contract: dense ids are insertion positions, and every
// tie the original schedulers broke by NodeID string order is broken
// here through the precomputed rank table (rank[i] = position of
// task i's NodeID in sorted order), so schedules are byte-identical to
// the pre-compiled implementations (see golden_test.go).

// carc is a compiled arc: dense endpoints plus the index of the
// original arc (for message records, which need Var and NodeIDs).
type carc struct {
	from, to int32
	words    int64
	aidx     int32
}

// compiled is the immutable view of a flat graph on a machine.
type compiled struct {
	g    *graph.Graph
	m    *machine.Machine
	gver uint64 // g.Version() when compiled

	n   int // number of tasks
	pes int

	ids  []graph.NodeID         // dense id -> NodeID (insertion order)
	idOf map[graph.NodeID]int32 // NodeID -> dense id
	rank []int32                // dense id -> position in sorted-NodeID order
	work []int64                // dense id -> abstract work
	arcs []graph.Arc            // shared with g.Arcs(); aidx points here

	// Predecessor/successor arcs in CSR layout, arc-insertion order
	// within each node (matching graph.PredArcs/SuccArcs).
	predOff []int32
	preds   []carc
	succOff []int32
	succs   []carc

	// Distinct successors per task, sorted by NodeID (matching
	// graph.Successors), and the distinct-predecessor counts the ready
	// tracker counts down. CSR layout.
	succIDOff []int32
	succIDs   []int32
	npred     []int32

	slevel []int64 // static level (HLFET priority), identical to Levels.SLevel
	topo   []int32 // topological order, identical to graph.TopoSort

	execT []machine.Time // flat n×P: ExecTime(work[t], pe)

	commStart   machine.Time   // per-message startup
	commPerWord []machine.Time // flat P×P: hops·WordTime (0 on diagonal)
}

// succIDsOf returns the distinct successors of t, sorted by NodeID.
func (c *compiled) succIDsOf(t int32) []int32 {
	return c.succIDs[c.succIDOff[t]:c.succIDOff[t+1]]
}

// predArcsOf returns the compiled predecessor arcs of t in insertion
// order.
func (c *compiled) predArcsOf(t int32) []carc {
	return c.preds[c.predOff[t]:c.predOff[t+1]]
}

// succArcsOf returns the compiled successor arcs of t in insertion
// order.
func (c *compiled) succArcsOf(t int32) []carc {
	return c.succs[c.succOff[t]:c.succOff[t+1]]
}

// exec returns the execution time of task t on pe.
func (c *compiled) exec(t int32, pe int) machine.Time {
	return c.execT[int(t)*c.pes+pe]
}

// comm returns the communication time of a words-sized message from p
// to q (0 when co-located), the inlined CommTime fast path.
func (c *compiled) comm(words int64, p, q int) machine.Time {
	if p == q {
		return 0
	}
	return c.commStart + machine.Time(words)*c.commPerWord[p*c.pes+q]
}

// compiledCache is the bounded LRU behind compiledFor. Entries pin
// their graph and machine, so the capacity bounds how many retired
// graphs the cache can keep alive; churny callers (the conformance
// fuzzer generates thousands of small graphs) evict old entries
// quickly.
var compiledCache struct {
	sync.Mutex
	entries []*compiled // most recently used last
}

const compiledCacheCap = 8

// compiledFor returns the cached compiled view of (g, m), building it
// on a miss or when g has been mutated since it was compiled. The
// returned view is shared and must be treated as read-only; concurrent
// schedulers (Compare, SpeedupCurve) deliberately share one view.
func compiledFor(g *graph.Graph, m *machine.Machine) (*compiled, error) {
	ver := g.Version()
	compiledCache.Lock()
	defer compiledCache.Unlock()
	for i, c := range compiledCache.entries {
		if c.g == g && c.m == m && c.gver == ver {
			if i != len(compiledCache.entries)-1 {
				copy(compiledCache.entries[i:], compiledCache.entries[i+1:])
				compiledCache.entries[len(compiledCache.entries)-1] = c
			}
			return c, nil
		}
	}
	c, err := compile(g, m)
	if err != nil {
		return nil, err
	}
	compiledCache.entries = append(compiledCache.entries, c)
	if len(compiledCache.entries) > compiledCacheCap {
		compiledCache.entries = compiledCache.entries[1:]
	}
	return c, nil
}

// compile builds the view. The graph must already be flat-validated.
func compile(g *graph.Graph, m *machine.Machine) (*compiled, error) {
	nodes := g.Nodes()
	n := len(nodes)
	c := &compiled{
		g: g, m: m, gver: g.Version(),
		n: n, pes: m.NumPE(),
		ids:  make([]graph.NodeID, n),
		idOf: make(map[graph.NodeID]int32, n),
		work: make([]int64, n),
		arcs: g.Arcs(),
	}
	for i, nd := range nodes {
		c.ids[i] = nd.ID
		c.idOf[nd.ID] = int32(i)
		c.work[i] = nd.Work
	}

	// rank: position of each task's NodeID in sorted order, so string
	// tie-breaks become integer compares.
	byName := make([]int32, n)
	for i := range byName {
		byName[i] = int32(i)
	}
	sortInt32(byName, func(a, b int32) bool { return c.ids[a] < c.ids[b] })
	c.rank = make([]int32, n)
	for pos, i := range byName {
		c.rank[i] = int32(pos)
	}

	// Arc lists in CSR layout: count, prefix, fill (insertion order is
	// preserved within each node, matching PredArcs/SuccArcs).
	c.predOff = make([]int32, n+1)
	c.succOff = make([]int32, n+1)
	for _, a := range c.arcs {
		c.predOff[c.idOf[a.To]+1]++
		c.succOff[c.idOf[a.From]+1]++
	}
	for i := 0; i < n; i++ {
		c.predOff[i+1] += c.predOff[i]
		c.succOff[i+1] += c.succOff[i]
	}
	c.preds = make([]carc, len(c.arcs))
	c.succs = make([]carc, len(c.arcs))
	pFill := make([]int32, n)
	sFill := make([]int32, n)
	for ai, a := range c.arcs {
		from, to := c.idOf[a.From], c.idOf[a.To]
		ca := carc{from: from, to: to, words: a.Words, aidx: int32(ai)}
		c.preds[c.predOff[to]+pFill[to]] = ca
		pFill[to]++
		c.succs[c.succOff[from]+sFill[from]] = ca
		sFill[from]++
	}

	// Distinct successors (sorted by NodeID) and distinct-predecessor
	// counts, for the ready trackers.
	c.npred = make([]int32, n)
	c.succIDOff = make([]int32, n+1)
	seen := make([]int32, n) // seen[v] == t+1: v already recorded for task t
	flat := make([]int32, 0, len(c.arcs))
	for t := int32(0); t < int32(n); t++ {
		start := len(flat)
		for _, a := range c.succArcsOf(t) {
			if seen[a.to] != t+1 {
				seen[a.to] = t + 1
				flat = append(flat, a.to)
				c.npred[a.to]++
			}
		}
		row := flat[start:]
		sortInt32(row, func(a, b int32) bool { return c.rank[a] < c.rank[b] })
		c.succIDOff[t+1] = int32(len(flat))
	}
	c.succIDs = flat

	// Topological order: Kahn's algorithm popping the lowest dense id
	// (= earliest inserted), exactly graph.TopoSort's order.
	indeg := make([]int32, n)
	copy(indeg, c.npred)
	var h denseHeap
	for i := int32(0); i < int32(n); i++ {
		if indeg[i] == 0 {
			h.push(i)
		}
	}
	c.topo = make([]int32, 0, n)
	for len(h) > 0 {
		t := h.pop()
		c.topo = append(c.topo, t)
		for _, s := range c.succIDsOf(t) {
			indeg[s]--
			if indeg[s] == 0 {
				h.push(s)
			}
		}
	}
	if len(c.topo) != n {
		for i := 0; i < n; i++ {
			if indeg[i] > 0 {
				return nil, fmt.Errorf("graph %q: cycle involving node %q", g.Name, c.ids[i])
			}
		}
	}

	// Static levels (the HLFET priority): work plus the highest
	// successor static level, identical to Levels.SLevel.
	c.slevel = make([]int64, n)
	for i := n - 1; i >= 0; i-- {
		t := c.topo[i]
		var s int64
		for _, a := range c.succArcsOf(t) {
			if c.slevel[a.to] > s {
				s = c.slevel[a.to]
			}
		}
		c.slevel[t] = s + c.work[t]
	}

	// Execution-time table.
	c.execT = make([]machine.Time, n*c.pes)
	for t := 0; t < n; t++ {
		for pe := 0; pe < c.pes; pe++ {
			c.execT[t*c.pes+pe] = m.ExecTime(c.work[t], pe)
		}
	}

	c.commStart, c.commPerWord = m.CommCoeffs()
	return c, nil
}

// sortInt32 is an allocation-free insertion/shell sort for the small
// per-node slices compile orders; n is tiny so asymptotics don't
// matter, but interface-based sort.Slice would allocate per call.
func sortInt32(s []int32, less func(a, b int32) bool) {
	for gap := len(s) / 2; gap > 0; gap /= 2 {
		for i := gap; i < len(s); i++ {
			for j := i; j >= gap && less(s[j], s[j-gap]); j -= gap {
				s[j], s[j-gap] = s[j-gap], s[j]
			}
		}
	}
}

// denseHeap is a binary min-heap of dense task ids (insertion
// positions).
type denseHeap []int32

func (h *denseHeap) push(x int32) {
	*h = append(*h, x)
	s := *h
	for i := len(s) - 1; i > 0; {
		p := (i - 1) / 2
		if s[p] <= s[i] {
			break
		}
		s[p], s[i] = s[i], s[p]
		i = p
	}
}

func (h *denseHeap) pop() int32 {
	s := *h
	top := s[0]
	last := len(s) - 1
	s[0] = s[last]
	*h = s[:last]
	s = s[:last]
	for i := 0; ; {
		l, r := 2*i+1, 2*i+2
		m := i
		if l < len(s) && s[l] < s[m] {
			m = l
		}
		if r < len(s) && s[r] < s[m] {
			m = r
		}
		if m == i {
			break
		}
		s[i], s[m] = s[m], s[i]
		i = m
	}
	return top
}

// readyTracker yields tasks whose predecessors are all placed, as an
// unordered pool. It serves the schedulers whose per-step choice is a
// total-order minimum over (task, PE) pairs (ETF, MH, Pack), where pool
// order cannot affect the selection.
type readyTracker struct {
	c       *compiled
	pending []int32
	ready   []int32
}

func newReadyTracker(c *compiled, ar *arena) *readyTracker {
	rt := &readyTracker{c: c, pending: ar.int32s(c.n, false)}
	copy(rt.pending, c.npred)
	rt.ready = ar.int32s(c.n, false)[:0]
	for i := int32(0); i < int32(c.n); i++ {
		if rt.pending[i] == 0 {
			rt.ready = append(rt.ready, i)
		}
	}
	return rt
}

// complete marks t placed and moves newly ready tasks into the pool.
func (rt *readyTracker) complete(t int32) {
	for _, s := range rt.c.succIDsOf(t) {
		rt.pending[s]--
		if rt.pending[s] == 0 {
			rt.ready = append(rt.ready, s)
		}
	}
}

// take removes and returns ready[i] (swap-remove; pool order is not
// meaningful).
func (rt *readyTracker) take(i int) int32 {
	t := rt.ready[i]
	last := len(rt.ready) - 1
	rt.ready[i] = rt.ready[last]
	rt.ready = rt.ready[:last]
	return t
}

// readyHeap yields ready tasks highest static level first (ties by
// NodeID order), the shared priority rule of HLFET, DSH and ISH. It
// replaces their former O(n) scan per step with O(log n) heap ops.
type readyHeap struct {
	c       *compiled
	pending []int32
	items   []int32
}

func newReadyHeap(c *compiled, ar *arena) *readyHeap {
	h := &readyHeap{c: c, pending: ar.int32s(c.n, false)}
	copy(h.pending, c.npred)
	h.items = ar.int32s(c.n, false)[:0]
	for i := int32(0); i < int32(c.n); i++ {
		if h.pending[i] == 0 {
			h.push(i)
		}
	}
	return h
}

func (h *readyHeap) len() int { return len(h.items) }

// before is the static-priority order: higher slevel first, then lower
// NodeID. Total because ids are unique.
func (h *readyHeap) before(a, b int32) bool {
	if h.c.slevel[a] != h.c.slevel[b] {
		return h.c.slevel[a] > h.c.slevel[b]
	}
	return h.c.rank[a] < h.c.rank[b]
}

func (h *readyHeap) push(x int32) {
	h.items = append(h.items, x)
	s := h.items
	for i := len(s) - 1; i > 0; {
		p := (i - 1) / 2
		if !h.before(s[i], s[p]) {
			break
		}
		s[p], s[i] = s[i], s[p]
		i = p
	}
}

// pop removes and returns the highest-priority ready task.
func (h *readyHeap) pop() int32 {
	s := h.items
	top := s[0]
	last := len(s) - 1
	s[0] = s[last]
	h.items = s[:last]
	s = h.items
	for i := 0; ; {
		l, r := 2*i+1, 2*i+2
		m := i
		if l < len(s) && h.before(s[l], s[m]) {
			m = l
		}
		if r < len(s) && h.before(s[r], s[m]) {
			m = r
		}
		if m == i {
			break
		}
		s[i], s[m] = s[m], s[i]
		i = m
	}
	return top
}

// complete marks t placed and pushes newly ready tasks.
func (h *readyHeap) complete(t int32) {
	for _, s := range h.c.succIDsOf(t) {
		h.pending[s]--
		if h.pending[s] == 0 {
			h.push(s)
		}
	}
}
