package sched

import (
	"encoding/json"
	"fmt"

	"repro/internal/graph"
	"repro/internal/machine"
)

// jsonSchedule is the wire form of a Schedule: self-contained, with the
// flattened graph and machine embedded so a saved schedule can be
// reloaded, re-validated and executed later without the project.
type jsonSchedule struct {
	Algorithm string           `json:"algorithm"`
	Graph     *graph.Graph     `json:"graph"`
	Machine   *machine.Machine `json:"machine"`
	Slots     []jsonSlot       `json:"slots"`
	Msgs      []jsonMsg        `json:"msgs,omitempty"`
}

type jsonSlot struct {
	Task   string `json:"task"`
	PE     int    `json:"pe"`
	Start  int64  `json:"start_us"`
	Finish int64  `json:"finish_us"`
	Dup    bool   `json:"dup,omitempty"`
}

type jsonMsg struct {
	Var    string `json:"var,omitempty"`
	From   string `json:"from"`
	To     string `json:"to"`
	FromPE int    `json:"from_pe"`
	ToPE   int    `json:"to_pe"`
	Words  int64  `json:"words,omitempty"`
	Send   int64  `json:"send_us"`
	Recv   int64  `json:"recv_us"`
	Hops   int    `json:"hops,omitempty"`
}

// MarshalJSON implements json.Marshaler.
func (s *Schedule) MarshalJSON() ([]byte, error) {
	js := jsonSchedule{Algorithm: s.Algorithm, Graph: s.Graph, Machine: s.Machine}
	for _, sl := range s.Slots {
		js.Slots = append(js.Slots, jsonSlot{
			Task: string(sl.Task), PE: sl.PE,
			Start: int64(sl.Start), Finish: int64(sl.Finish), Dup: sl.Dup,
		})
	}
	for _, m := range s.Msgs {
		js.Msgs = append(js.Msgs, jsonMsg{
			Var: m.Var, From: string(m.From), To: string(m.To),
			FromPE: m.FromPE, ToPE: m.ToPE, Words: m.Words,
			Send: int64(m.Send), Recv: int64(m.Recv), Hops: m.Hops,
		})
	}
	return json.Marshal(js)
}

// UnmarshalJSON implements json.Unmarshaler. The decoded schedule is
// re-validated against its embedded graph and machine, so a tampered
// file cannot produce an inconsistent schedule silently.
func (s *Schedule) UnmarshalJSON(data []byte) error {
	var js jsonSchedule
	if err := json.Unmarshal(data, &js); err != nil {
		return err
	}
	if js.Graph == nil || js.Machine == nil {
		return fmt.Errorf("sched: schedule document missing graph or machine")
	}
	ns := &Schedule{Algorithm: js.Algorithm, Graph: js.Graph, Machine: js.Machine}
	for _, sl := range js.Slots {
		ns.Slots = append(ns.Slots, Slot{
			Task: graph.NodeID(sl.Task), PE: sl.PE,
			Start: machine.Time(sl.Start), Finish: machine.Time(sl.Finish), Dup: sl.Dup,
		})
	}
	for _, m := range js.Msgs {
		ns.Msgs = append(ns.Msgs, Msg{
			Var: m.Var, From: graph.NodeID(m.From), To: graph.NodeID(m.To),
			FromPE: m.FromPE, ToPE: m.ToPE, Words: m.Words,
			Send: machine.Time(m.Send), Recv: machine.Time(m.Recv), Hops: m.Hops,
		})
	}
	if err := ns.Validate(); err != nil {
		return fmt.Errorf("sched: loaded schedule invalid: %w", err)
	}
	s.Graph, s.Machine, s.Algorithm = ns.Graph, ns.Machine, ns.Algorithm
	s.Slots, s.Msgs = ns.Slots, ns.Msgs
	s.idx.Store(ns.idx.Load())
	return nil
}
