package sched

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/graph"
	"repro/internal/machine"
)

func TestLowerBoundChain(t *testing.T) {
	g := graph.Chain(4, 10, 5)
	m := mk(t, "full:4", cheapComm()) // exec = work (startup 0)
	lb, err := LowerBound(g, m)
	if err != nil {
		t.Fatal(err)
	}
	// A chain cannot parallelise: CP bound = 40.
	if lb != 40 {
		t.Errorf("lb = %v, want 40us", lb)
	}
}

func TestLowerBoundIndependent(t *testing.T) {
	g := graph.New("indep")
	for _, id := range []graph.NodeID{"a", "b", "c", "d", "e2", "f"} {
		g.MustAddTask(id, "", 10)
	}
	m := mk(t, "full:2", cheapComm())
	lb, err := LowerBound(g, m)
	if err != nil {
		t.Fatal(err)
	}
	// Work bound: 60/2 = 30 > CP bound 10.
	if lb != 30 {
		t.Errorf("lb = %v, want 30us", lb)
	}
}

func TestLowerBoundUsesFastestProcessor(t *testing.T) {
	g := graph.Chain(2, 100, 0)
	topo, _ := machine.Full(2)
	m, err := machine.New("het", topo, machine.Params{ProcSpeed: 1, TaskStartup: 0, MsgStartup: 1, WordTime: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.SetSpeeds([]int64{1, 10}); err != nil {
		t.Fatal(err)
	}
	lb, err := LowerBound(g, m)
	if err != nil {
		t.Fatal(err)
	}
	// On the fast PE each task is 10us: CP = 20.
	if lb != 20 {
		t.Errorf("lb = %v, want 20us", lb)
	}
}

// Every scheduler (including the exhaustive optimum) respects the bound.
func TestAllSchedulersRespectLowerBound(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g, err := graph.LayeredRandom(rng, graph.LayeredConfig{
			Layers: 3, Width: 3, MinWork: 1, MaxWork: 30, MinWords: 0, MaxWords: 15, Density: 0.4,
		})
		if err != nil {
			return false
		}
		m := mk(t, "hypercube:2", costlyComm())
		lb, err := LowerBound(g, m)
		if err != nil {
			return false
		}
		for _, s := range All() {
			sc, err := s.Schedule(g, m)
			if err != nil {
				return false
			}
			if sc.Makespan() < lb {
				t.Logf("%s makespan %v below bound %v (seed %d)", s.Name(), sc.Makespan(), lb, seed)
				return false
			}
		}
		if len(g.Tasks()) <= 8 {
			opt, err := (Optimal{}).Schedule(g, m)
			if err != nil {
				return false
			}
			if opt.Makespan() < lb {
				t.Logf("optimal %v below bound %v (seed %d)", opt.Makespan(), lb, seed)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}
