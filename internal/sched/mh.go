package sched

import (
	"math"

	"repro/internal/graph"
	"repro/internal/machine"
)

// MH is the mapping heuristic of El-Rewini & Lewis ("Scheduling
// Parallel Program Tasks onto Arbitrary Target Machines", JPDC 1990) —
// the scheduler behind PPSE, which Banger reuses. Like ETF it greedily
// chooses the (ready task, processor) pair that can start earliest, but
// its communication model routes every message hop by hop over the
// interconnection network and serialises messages that contend for the
// same link, so topology (Figure 2) genuinely shapes the schedule.
type MH struct {
	Opts SchedOptions
}

// Name implements Scheduler.
func (MH) Name() string { return "mh" }

// mhNet tracks per-link availability for the contention model. Every
// route and link id is built eagerly up front — the estimation loops
// (which may run sharded across workers) then only read flat arrays
// and never touch a map or mutate shared route state.
//
// It also maintains the state behind MH's incremental routed-arrival
// cache. Because routing is destination-based (the next hop out of u
// depends only on u and the final destination q), the directed link
// u->v lies on a route toward q iff NextHop(u, q) == v; the per-link
// dest lists precompute exactly the destination PEs whose deliveries
// can traverse each link. When a commit actually advances a link's free
// time, destEpoch of those destinations is bumped, invalidating only
// the cached arrivals that could observe the change.
type mhNet struct {
	pes      int
	topo     *machine.Topology
	startup  machine.Time
	wordTime machine.Time

	routeOff   []int32        // flat p*pes+q -> range into routeLinks
	routeLinks []int32        // concatenated link-id sequences
	linkFree   []machine.Time // per link id
	destOff    []int32        // per link id -> range into destFlat
	destFlat   []int32        // concatenated destination PEs per link

	epoch     uint64   // bumped once per commit phase; starts at mhFirstEpoch
	destEpoch []uint64 // per PE: epoch of the last commit affecting it
}

// Stamp values below mhFirstEpoch are reserved: mhStampNever marks an
// arrival-cache entry that was never computed, mhStampPartial one that
// holds a partial (bailed-out) lower bound. Both are permanently stale.
const (
	mhStampNever   = 0
	mhStampPartial = 1
	mhFirstEpoch   = 2
)

func newMHNet(m *machine.Machine, ar *arena) *mhNet {
	P := m.NumPE()
	n := &mhNet{
		pes:       P,
		topo:      m.Topo,
		startup:   m.Params.MsgStartup,
		wordTime:  m.Params.WordTime,
		epoch:     mhFirstEpoch,
		destEpoch: ar.uint64s(P, true),
	}
	// Discover links in deterministic (p, q, hop) order and flatten
	// every route. Link-id numbering doesn't influence schedules (ids
	// only group contention state), but determinism keeps debugging
	// sane.
	linkIdx := map[[2]int]int32{}
	var linkEnds [][2]int
	n.routeOff = make([]int32, P*P+1)
	n.routeLinks = make([]int32, 0, P*P)
	for p := 0; p < P; p++ {
		for q := 0; q < P; q++ {
			if p != q {
				path := n.topo.Route(p, q)
				for i := 1; i < len(path); i++ {
					uv := [2]int{path[i-1], path[i]}
					l, ok := linkIdx[uv]
					if !ok {
						l = int32(len(linkEnds))
						linkIdx[uv] = l
						linkEnds = append(linkEnds, uv)
					}
					n.routeLinks = append(n.routeLinks, l)
				}
			}
			n.routeOff[p*P+q+1] = int32(len(n.routeLinks))
		}
	}
	n.linkFree = ar.times(len(linkEnds), true)
	n.destOff = make([]int32, len(linkEnds)+1)
	n.destFlat = make([]int32, 0, len(linkEnds)*2)
	for l, uv := range linkEnds {
		for d := 0; d < P; d++ {
			if n.topo.NextHop(uv[0], d) == uv[1] {
				n.destFlat = append(n.destFlat, int32(d))
			}
		}
		n.destOff[l+1] = int32(len(n.destFlat))
	}
	return n
}

// route returns the link-id sequence of the shortest path from p to q
// (empty when p == q).
func (n *mhNet) route(p, q int) []int32 {
	i := p*n.pes + q
	return n.routeLinks[n.routeOff[i]:n.routeOff[i+1]]
}

// deliver computes when a message of words words, ready at the source
// at send time, arrives at processor q when routed from p over the
// shortest path with store-and-forward per-hop contention, without
// booking anything. Co-located delivery is free and immediate.
func (n *mhNet) deliver(words int64, send machine.Time, p, q int) machine.Time {
	if p == q {
		return send
	}
	if words < 0 {
		words = 0
	}
	at := send + n.startup
	hop := machine.Time(words) * n.wordTime
	for _, l := range n.route(p, q) {
		if f := n.linkFree[l]; f > at {
			at = f
		}
		at += hop
	}
	return at
}

// commitDeliver is deliver plus booking: each traversed link's free
// time is advanced to the hop's completion when later than the current
// value, and the destinations routed over a changed link have their
// epoch bumped so stale cached arrivals are recomputed.
func (n *mhNet) commitDeliver(words int64, send machine.Time, p, q int) machine.Time {
	if p == q {
		return send
	}
	if words < 0 {
		words = 0
	}
	at := send + n.startup
	hop := machine.Time(words) * n.wordTime
	for _, l := range n.route(p, q) {
		if f := n.linkFree[l]; f > at {
			at = f
		}
		at += hop
		if at > n.linkFree[l] {
			n.linkFree[l] = at
			for _, d := range n.destFlat[n.destOff[l]:n.destOff[l+1]] {
				n.destEpoch[d] = n.epoch
			}
		}
	}
	return at
}

// feed is one incoming message of the task being committed.
type feed struct {
	a    carc
	src  Slot
	send machine.Time
}

// sortFeeds orders feeds by (send time, producer rank) with a stable
// insertion sort: feed lists are predecessor lists (a handful of
// entries), and interface-based sorting here was most of MH's
// allocation bill — three allocations per scheduling step.
func sortFeeds(feeds []feed, rank []int32) {
	for i := 1; i < len(feeds); i++ {
		f := feeds[i]
		j := i - 1
		for j >= 0 && (f.send < feeds[j].send ||
			(f.send == feeds[j].send && rank[f.a.from] < rank[feeds[j].a.from])) {
			feeds[j+1] = feeds[j]
			j--
		}
		feeds[j+1] = f
	}
}

// Schedule implements Scheduler.
func (s MH) Schedule(g *graph.Graph, m *machine.Machine) (*Schedule, error) {
	b, err := newBuilder(g, m, s.Opts)
	if err != nil {
		return nil, err
	}
	defer b.release()
	c := b.c
	net := newMHNet(m, b.ar)
	rt := newReadyTracker(c, b.ar)
	w := b.scanWorkers()
	cands := make([]cand, w)
	errs := make([]error, w)

	// Routed data-arrival cache: arr[t*P+pe] is the max over t's
	// predecessor arcs of the best copy's routed arrival, stamped with
	// the net epoch it was computed at (mhStampNever = never computed,
	// mhStampPartial = holds a bailed-out partial lower bound). An entry
	// stays valid until a commit advances a link on some route toward pe
	// (MH never duplicates, so producer copies are fixed once t is
	// ready); procFree is applied live and needs no invalidation.
	arr := b.ar.times(c.n*c.pes, false)
	stamp := b.ar.uint64s(c.n*c.pes, true)

	// Monotone pruning bounds. Link free times and procFree only
	// advance and producer finishes are fixed, so routed arrivals —
	// and with them every (t,pe) finish — are nondecreasing over
	// time. That makes two lower bounds available without recomputing
	// routes: a stale cached arrival (bounds the current arrival from
	// below), and lbFin[t], the task's best finish computed at any
	// earlier step. Candidates whose bound is strictly worse than the
	// running best can't win (the candidate order is strict on finish
	// first) and are skipped; bounds that tie must be recomputed so
	// tie-breaks see exact values.
	lbFin := b.ar.times(c.n, true)

	// MH never duplicates, so each placed task has exactly one copy;
	// srcPE/srcFin are the flat fast path to it (-1 = not placed yet),
	// avoiding the copies slice-of-slices indirection in the scan.
	srcPE := b.ar.int32s(c.n, false)
	srcFin := b.ar.times(c.n, false)
	for i := range srcPE {
		srcPE[i] = -1
	}

	// evalTask evaluates ready index i exactly (updating the arrival
	// cache and lbFin) under the pruning bound and returns the task's
	// best candidate. Candidate orders are strict, so pruning with any
	// valid bound never changes which candidate wins a scan.
	evalTask := func(wk, i int, bound cand) cand {
		t := rt.ready[i]
		taskLB := machine.Time(math.MaxInt64)
		tbest := cand{}
		preds := c.predArcsOf(t)
		for pe := 0; pe < c.pes; pe++ {
			ci := int(t)*c.pes + pe
			ex := c.exec(t, pe)
			pf := b.procFree[pe]
			// A candidate is beaten when it is strictly worse than the
			// cross-task bound (ties there must be recomputed for the
			// slevel/rank tie-breaks) or no better than this task's own
			// running best (a tie loses to the earlier PE).
			beaten := func(fin machine.Time) bool {
				return (bound.ok && fin > bound.fin) || (tbest.ok && fin >= tbest.fin)
			}
			if st := stamp[ci]; st < mhFirstEpoch || st < net.destEpoch[pe] {
				if st != mhStampNever {
					lb := arr[ci]
					if pf > lb {
						lb = pf
					}
					if beaten(lb + ex) {
						if lb+ex < taskLB {
							taskLB = lb + ex
						}
						continue
					}
				}
				var a machine.Time
				complete := true
				for _, pa := range preds {
					sp := srcPE[pa.from]
					if sp < 0 {
						errs[wk] = errProducerNotPlaced(c.arcs[pa.aidx])
						return cand{}
					}
					// deliver, hand-rolled on the flat single-copy
					// arrays: this loop is the profile's hottest path.
					at := srcFin[pa.from]
					if int(sp) != pe {
						w := pa.words
						if w < 0 {
							w = 0
						}
						at += net.startup
						hop := machine.Time(w) * net.wordTime
						base := int(sp)*net.pes + pe
						for _, l := range net.routeLinks[net.routeOff[base]:net.routeOff[base+1]] {
							if f := net.linkFree[l]; f > at {
								at = f
							}
							at += hop
						}
					}
					if at > a {
						a = at
					}
					// Bail as soon as the partial max already loses:
					// the true arrival is >= a, so the candidate is
					// beaten whatever the remaining predecessors add.
					// The partial max is still a valid monotone lower
					// bound — keep it for the next scan's skip check.
					if beaten(a + ex) {
						complete = false
						break
					}
				}
				if !complete {
					if st == mhStampNever || a > arr[ci] {
						arr[ci] = a
					}
					stamp[ci] = mhStampPartial
					lb := a
					if pf > lb {
						lb = pf
					}
					if lb+ex < taskLB {
						taskLB = lb + ex
					}
					continue
				}
				arr[ci] = a
				stamp[ci] = net.epoch
			}
			start := arr[ci]
			if pf > start {
				start = pf
			}
			fin := start + ex
			if fin < taskLB {
				taskLB = fin
			}
			// Within one task slevel and rank are fixed, so the strict
			// candidate order reduces to (fin, pe); pe ascends, so
			// strictly-smaller fin is the whole test.
			if !tbest.ok || fin < tbest.fin {
				tbest = cand{ok: true, t: t, idx: i, pe: pe, st: start, fin: fin}
			}
		}
		lbFin[t] = taskLB
		return tbest
	}

	// Each step's scan starts from a seed candidate: the task with the
	// smallest finish lower bound, evaluated exactly on the main
	// goroutine before the shards launch. Every worker then opens with
	// a near-optimal bound instead of discovering one mid-chunk, which
	// is what makes the lbFin skip and the stale-entry skip bite.
	var seed cand
	var seedIdx int
	body := func(wk, lo, hi int) {
		best := seed
		for i := lo; i < hi; i++ {
			if i == seedIdx {
				continue
			}
			t := rt.ready[i]
			if best.ok && lbFin[t] > best.fin {
				continue
			}
			tbest := evalTask(wk, i, best)
			if errs[wk] != nil {
				return
			}
			if c.betterCand(best, tbest) {
				best = tbest
			}
		}
		cands[wk] = best
	}

	// Message stubs: committed cross-PE messages are recorded as
	// pointer-free (arc, recv) pairs in the arena and materialised into
	// []Msg once at the end. Building the pointerful Msg list
	// incrementally would keep a multi-megabyte, GC-scanned, write-
	// barriered buffer live through the whole construction.
	stubArc := b.ar.int32s(len(c.arcs), false)[:0]
	stubFrom := b.ar.int32s(len(c.arcs), false)[:0]
	stubTo := b.ar.int32s(len(c.arcs), false)[:0]
	stubRecv := b.ar.times(len(c.arcs), false)[:0]

	var feeds []feed
	for len(rt.ready) > 0 {
		seedIdx = 0
		for i, t := range rt.ready {
			if lbFin[t] < lbFin[rt.ready[seedIdx]] {
				seedIdx = i
			}
		}
		seed = evalTask(0, seedIdx, cand{})
		if errs[0] != nil {
			return nil, errs[0]
		}
		b.parScan(len(rt.ready), body)
		best := cand{}
		for wk := 0; wk < w; wk++ {
			if errs[wk] != nil {
				return nil, errs[wk]
			}
			if c.betterCand(best, cands[wk]) {
				best = cands[wk]
			}
			cands[wk] = cand{}
		}
		t := rt.take(best.idx)
		bestPE := best.pe

		// Commit: route each incoming message in a deterministic order
		// (messages from earlier-finishing copies first), booking links.
		// Bump the epoch first so the bookings invalidate exactly the
		// cached arrivals of destinations they can affect.
		net.epoch++
		feeds = feeds[:0]
		for _, pa := range c.predArcsOf(t) {
			cps := b.copies[pa.from]
			bsrc := cps[0]
			bestAt := net.deliver(pa.words, cps[0].Finish, cps[0].PE, bestPE)
			for _, cp := range cps[1:] {
				if at := net.deliver(pa.words, cp.Finish, cp.PE, bestPE); at < bestAt || (at == bestAt && cp.PE < bsrc.PE) {
					bestAt, bsrc = at, cp
				}
			}
			feeds = append(feeds, feed{a: pa, src: bsrc, send: bsrc.Finish})
		}
		sortFeeds(feeds, c.rank)
		start := b.procFree[bestPE]
		for _, f := range feeds {
			at := net.commitDeliver(f.a.words, f.src.Finish, f.src.PE, bestPE)
			if at > start {
				start = at
			}
			if f.src.PE != bestPE {
				stubArc = append(stubArc, f.a.aidx)
				stubFrom = append(stubFrom, f.a.from)
				stubTo = append(stubTo, t)
				stubRecv = append(stubRecv, at)
			}
		}
		// Committed contention may push the start past the estimate
		// (other placements between estimate and commit); never earlier.
		sl := Slot{Task: c.ids[t], PE: bestPE, Start: start, Finish: start + c.exec(t, bestPE)}
		b.commitSlot(t, sl)
		srcPE[t], srcFin[t] = int32(bestPE), sl.Finish
		rt.complete(t)
	}
	// Materialise the message list, exactly sized, in commit order. By
	// now every task is placed, so producer/consumer PEs and the send
	// times read straight off the flat arrays.
	b.msgs = make([]Msg, len(stubArc))
	for i, ai := range stubArc {
		oa := &c.arcs[ai]
		from, to := stubFrom[i], stubTo[i]
		fp, tp := int(srcPE[from]), int(srcPE[to])
		b.msgs[i] = Msg{
			Var: oa.Var, From: oa.From, To: c.ids[to],
			FromPE: fp, ToPE: tp, Words: oa.Words,
			Send: srcFin[from], Recv: stubRecv[i], Hops: m.Topo.Hops(fp, tp),
		}
	}
	return b.finish("mh"), nil
}
