package sched

import (
	"sort"

	"repro/internal/graph"
	"repro/internal/machine"
)

// MH is the mapping heuristic of El-Rewini & Lewis ("Scheduling
// Parallel Program Tasks onto Arbitrary Target Machines", JPDC 1990) —
// the scheduler behind PPSE, which Banger reuses. Like ETF it greedily
// chooses the (ready task, processor) pair that can start earliest, but
// its communication model routes every message hop by hop over the
// interconnection network and serialises messages that contend for the
// same link, so topology (Figure 2) genuinely shapes the schedule.
type MH struct{}

// Name implements Scheduler.
func (MH) Name() string { return "mh" }

// link is a directed channel from PE u to adjacent PE v.
type link struct{ u, v int }

// mhNet tracks per-link availability for the contention model.
type mhNet struct {
	m        *machine.Machine
	linkFree map[link]machine.Time
}

func newMHNet(m *machine.Machine) *mhNet {
	return &mhNet{m: m, linkFree: map[link]machine.Time{}}
}

// reservation is a tentative hop booking produced by deliver.
type reservation struct {
	l    link
	free machine.Time // link becomes free at this time if committed
}

// deliver computes when a message of words words, ready at the source
// at send time, arrives at processor q when routed from p over the
// shortest path with store-and-forward per-hop contention. It returns
// the arrival time and the link reservations to commit if the placement
// is chosen. Co-located delivery is free and immediate.
func (n *mhNet) deliver(words int64, send machine.Time, p, q int) (machine.Time, []reservation) {
	if p == q {
		return send, nil
	}
	if words < 0 {
		words = 0
	}
	route := n.m.Topo.Route(p, q)
	at := send + n.m.Params.MsgStartup
	hop := machine.Time(words) * n.m.Params.WordTime
	res := make([]reservation, 0, len(route)-1)
	for i := 1; i < len(route); i++ {
		l := link{route[i-1], route[i]}
		start := at
		if f := n.linkFree[l]; f > start {
			start = f
		}
		at = start + hop
		res = append(res, reservation{l: l, free: at})
	}
	return at, res
}

// commit applies the reservations of a chosen delivery.
func (n *mhNet) commit(res []reservation) {
	for _, r := range res {
		if r.free > n.linkFree[r.l] {
			n.linkFree[r.l] = r.free
		}
	}
}

// Schedule implements Scheduler.
func (MH) Schedule(g *graph.Graph, m *machine.Machine) (*Schedule, error) {
	b, err := newBuilder(g, m)
	if err != nil {
		return nil, err
	}
	lv, err := g.ComputeLevels(1)
	if err != nil {
		return nil, err
	}
	net := newMHNet(m)
	rt := newReadyTracker(g)

	// estRouted evaluates the earliest start of t on pe under the
	// contention model, without committing link reservations.
	estRouted := func(t graph.NodeID, pe int) (machine.Time, error) {
		start := b.procFree[pe]
		for _, a := range b.g.Pred(t) {
			// Choose the producer copy with the earliest routed arrival.
			cps := b.copies[a.From]
			var bestAt machine.Time
			for i, c := range cps {
				at, _ := net.deliver(a.Words, c.Finish, c.PE, pe)
				if i == 0 || at < bestAt {
					bestAt = at
				}
			}
			if len(cps) == 0 {
				return 0, errNotPlaced(a)
			}
			if bestAt > start {
				start = bestAt
			}
		}
		return start, nil
	}

	for len(rt.ready) > 0 {
		bestIdx, bestPE := -1, -1
		var bestFinish machine.Time
		for i, t := range rt.ready {
			work := g.Node(t).Work
			for pe := 0; pe < m.NumPE(); pe++ {
				st, err := estRouted(t, pe)
				if err != nil {
					return nil, err
				}
				fin := st + m.ExecTime(work, pe)
				better := false
				switch {
				case bestIdx < 0:
					better = true
				case fin != bestFinish:
					better = fin < bestFinish
				case lv.SLevel[t] != lv.SLevel[rt.ready[bestIdx]]:
					better = lv.SLevel[t] > lv.SLevel[rt.ready[bestIdx]]
				case t != rt.ready[bestIdx]:
					better = t < rt.ready[bestIdx]
				default:
					better = pe < bestPE
				}
				if better {
					bestIdx, bestPE, bestFinish = i, pe, fin
				}
			}
		}
		t := rt.take(bestIdx)

		// Commit: route each incoming message in a deterministic order
		// (messages from earlier-finishing copies first), booking links.
		type feed struct {
			arc  graph.Arc
			src  Slot
			send machine.Time
		}
		var feeds []feed
		for _, a := range b.g.Pred(t) {
			cps := b.copies[a.From]
			best := cps[0]
			bestAt, _ := net.deliver(a.Words, cps[0].Finish, cps[0].PE, bestPE)
			for _, c := range cps[1:] {
				at, _ := net.deliver(a.Words, c.Finish, c.PE, bestPE)
				if at < bestAt || (at == bestAt && c.PE < best.PE) {
					bestAt, best = at, c
				}
			}
			feeds = append(feeds, feed{arc: a, src: best, send: best.Finish})
		}
		sort.Slice(feeds, func(i, j int) bool {
			if feeds[i].send != feeds[j].send {
				return feeds[i].send < feeds[j].send
			}
			return feeds[i].arc.From < feeds[j].arc.From
		})
		start := b.procFree[bestPE]
		for _, f := range feeds {
			at, res := net.deliver(f.arc.Words, f.src.Finish, f.src.PE, bestPE)
			net.commit(res)
			if at > start {
				start = at
			}
			if f.src.PE != bestPE {
				b.msgs = append(b.msgs, Msg{
					Var: f.arc.Var, From: f.arc.From, To: t,
					FromPE: f.src.PE, ToPE: bestPE, Words: f.arc.Words,
					Send: f.src.Finish, Recv: at, Hops: m.Topo.Hops(f.src.PE, bestPE),
				})
			}
		}
		// Committed contention may push the start past the estimate
		// (other placements between estimate and commit); never earlier.
		n := b.g.Node(t)
		sl := Slot{Task: t, PE: bestPE, Start: start, Finish: start + m.ExecTime(n.Work, bestPE)}
		b.slots = append(b.slots, sl)
		b.copies[t] = append(b.copies[t], sl)
		if sl.Finish > b.procFree[bestPE] {
			b.procFree[bestPE] = sl.Finish
		}
		rt.complete(t)
	}
	return b.finish("mh"), nil
}

func errNotPlaced(a graph.Arc) error {
	return &notPlacedError{a}
}

type notPlacedError struct{ a graph.Arc }

func (e *notPlacedError) Error() string {
	return "sched: arc " + string(e.a.From) + "->" + string(e.a.To) + ": producer not placed"
}
