package sched

import (
	"sort"

	"repro/internal/graph"
	"repro/internal/machine"
)

// MH is the mapping heuristic of El-Rewini & Lewis ("Scheduling
// Parallel Program Tasks onto Arbitrary Target Machines", JPDC 1990) —
// the scheduler behind PPSE, which Banger reuses. Like ETF it greedily
// chooses the (ready task, processor) pair that can start earliest, but
// its communication model routes every message hop by hop over the
// interconnection network and serialises messages that contend for the
// same link, so topology (Figure 2) genuinely shapes the schedule.
type MH struct{}

// Name implements Scheduler.
func (MH) Name() string { return "mh" }

// mhNet tracks per-link availability for the contention model. Links
// are discovered lazily and given dense ids; every (p,q) pair's route
// is memoized as a shared sequence of link ids so the hot estimation
// loop never rebuilds a path or touches a map.
//
// It also maintains the state behind MH's incremental routed-arrival
// cache. Because routing is destination-based (the next hop out of u
// depends only on u and the final destination q), the directed link
// u->v lies on a route toward q iff NextHop(u, q) == v; linkDests
// precomputes, per link, exactly the destination PEs whose deliveries
// can traverse it. When a commit actually advances a link's free time,
// destEpoch of those destinations is bumped, invalidating only the
// cached arrivals that could observe the change.
type mhNet struct {
	pes      int
	topo     *machine.Topology
	startup  machine.Time
	wordTime machine.Time

	routeIDs  [][]int32        // flat p*pes+q -> link-id sequence (nil until built)
	linkIdx   map[[2]int]int32 // directed (u,v) -> link id
	linkFree  []machine.Time   // per link id
	linkDests [][]int32        // per link id: destinations routed over it

	epoch     uint64   // bumped once per commit phase
	destEpoch []uint64 // per PE: epoch of the last commit affecting it
}

func newMHNet(m *machine.Machine) *mhNet {
	return &mhNet{
		pes:       m.NumPE(),
		topo:      m.Topo,
		startup:   m.Params.MsgStartup,
		wordTime:  m.Params.WordTime,
		routeIDs:  make([][]int32, m.NumPE()*m.NumPE()),
		linkIdx:   map[[2]int]int32{},
		destEpoch: make([]uint64, m.NumPE()),
	}
}

// route returns the memoized link-id sequence of the shortest path from
// p to q (p != q), building it — and the dest lists of any new links —
// on first use.
func (n *mhNet) route(p, q int) []int32 {
	idx := p*n.pes + q
	if r := n.routeIDs[idx]; r != nil {
		return r
	}
	path := n.topo.Route(p, q)
	r := make([]int32, 0, len(path)-1)
	for i := 1; i < len(path); i++ {
		u, v := path[i-1], path[i]
		l, ok := n.linkIdx[[2]int{u, v}]
		if !ok {
			l = int32(len(n.linkFree))
			n.linkIdx[[2]int{u, v}] = l
			n.linkFree = append(n.linkFree, 0)
			var dests []int32
			for d := 0; d < n.pes; d++ {
				if n.topo.NextHop(u, d) == v {
					dests = append(dests, int32(d))
				}
			}
			n.linkDests = append(n.linkDests, dests)
		}
		r = append(r, l)
	}
	n.routeIDs[idx] = r
	return r
}

// deliver computes when a message of words words, ready at the source
// at send time, arrives at processor q when routed from p over the
// shortest path with store-and-forward per-hop contention, without
// booking anything. Co-located delivery is free and immediate.
func (n *mhNet) deliver(words int64, send machine.Time, p, q int) machine.Time {
	if p == q {
		return send
	}
	if words < 0 {
		words = 0
	}
	at := send + n.startup
	hop := machine.Time(words) * n.wordTime
	for _, l := range n.route(p, q) {
		if f := n.linkFree[l]; f > at {
			at = f
		}
		at += hop
	}
	return at
}

// commitDeliver is deliver plus booking: each traversed link's free
// time is advanced to the hop's completion when later than the current
// value, and the destinations routed over a changed link have their
// epoch bumped so stale cached arrivals are recomputed.
func (n *mhNet) commitDeliver(words int64, send machine.Time, p, q int) machine.Time {
	if p == q {
		return send
	}
	if words < 0 {
		words = 0
	}
	at := send + n.startup
	hop := machine.Time(words) * n.wordTime
	for _, l := range n.route(p, q) {
		if f := n.linkFree[l]; f > at {
			at = f
		}
		at += hop
		if at > n.linkFree[l] {
			n.linkFree[l] = at
			for _, d := range n.linkDests[l] {
				n.destEpoch[d] = n.epoch
			}
		}
	}
	return at
}

// Schedule implements Scheduler.
func (MH) Schedule(g *graph.Graph, m *machine.Machine) (*Schedule, error) {
	b, err := newBuilder(g, m)
	if err != nil {
		return nil, err
	}
	c := b.c
	net := newMHNet(m)
	rt := newReadyTracker(c)

	// Routed data-arrival cache: arr[t*P+pe] is the max over t's
	// predecessor arcs of the best copy's routed arrival, stamped with
	// the net epoch it was computed at. An entry stays valid until a
	// commit advances a link on some route toward pe (MH never
	// duplicates, so producer copies are fixed once t is ready);
	// procFree is applied live and needs no invalidation.
	arr := make([]machine.Time, c.n*c.pes)
	stamp := make([]uint64, c.n*c.pes)
	for i := range arr {
		arr[i] = -1
	}

	// estRouted evaluates the earliest start of t on pe under the
	// contention model, without committing link reservations.
	estRouted := func(t int32, pe int) (machine.Time, error) {
		i := int(t)*c.pes + pe
		a := arr[i]
		if a < 0 || stamp[i] < net.destEpoch[pe] {
			a = 0
			for _, pa := range c.predArcsOf(t) {
				// Choose the producer copy with the earliest routed
				// arrival; the producer must already be placed.
				cps := b.copies[pa.from]
				if len(cps) == 0 {
					return 0, errProducerNotPlaced(c.arcs[pa.aidx])
				}
				bestAt := net.deliver(pa.words, cps[0].Finish, cps[0].PE, pe)
				for _, cp := range cps[1:] {
					if at := net.deliver(pa.words, cp.Finish, cp.PE, pe); at < bestAt {
						bestAt = at
					}
				}
				if bestAt > a {
					a = bestAt
				}
			}
			arr[i] = a
			stamp[i] = net.epoch
		}
		if pf := b.procFree[pe]; pf > a {
			return pf, nil
		}
		return a, nil
	}

	type feed struct {
		a    carc
		src  Slot
		send machine.Time
	}
	var feeds []feed

	for len(rt.ready) > 0 {
		bestIdx, bestPE := -1, -1
		bestT := int32(-1)
		var bestFinish machine.Time
		for i, t := range rt.ready {
			for pe := 0; pe < c.pes; pe++ {
				st, err := estRouted(t, pe)
				if err != nil {
					return nil, err
				}
				fin := st + c.exec(t, pe)
				better := false
				switch {
				case bestIdx < 0:
					better = true
				case fin != bestFinish:
					better = fin < bestFinish
				case c.slevel[t] != c.slevel[bestT]:
					better = c.slevel[t] > c.slevel[bestT]
				case t != bestT:
					better = c.rank[t] < c.rank[bestT]
				default:
					better = pe < bestPE
				}
				if better {
					bestIdx, bestPE, bestT, bestFinish = i, pe, t, fin
				}
			}
		}
		t := rt.take(bestIdx)

		// Commit: route each incoming message in a deterministic order
		// (messages from earlier-finishing copies first), booking links.
		// Bump the epoch first so the bookings invalidate exactly the
		// cached arrivals of destinations they can affect.
		net.epoch++
		feeds = feeds[:0]
		for _, pa := range c.predArcsOf(t) {
			cps := b.copies[pa.from]
			best := cps[0]
			bestAt := net.deliver(pa.words, cps[0].Finish, cps[0].PE, bestPE)
			for _, cp := range cps[1:] {
				at := net.deliver(pa.words, cp.Finish, cp.PE, bestPE)
				if at < bestAt || (at == bestAt && cp.PE < best.PE) {
					bestAt, best = at, cp
				}
			}
			feeds = append(feeds, feed{a: pa, src: best, send: best.Finish})
		}
		sort.Slice(feeds, func(i, j int) bool {
			if feeds[i].send != feeds[j].send {
				return feeds[i].send < feeds[j].send
			}
			return c.rank[feeds[i].a.from] < c.rank[feeds[j].a.from]
		})
		start := b.procFree[bestPE]
		for _, f := range feeds {
			at := net.commitDeliver(f.a.words, f.src.Finish, f.src.PE, bestPE)
			if at > start {
				start = at
			}
			if f.src.PE != bestPE {
				oa := &c.arcs[f.a.aidx]
				b.msgs = append(b.msgs, Msg{
					Var: oa.Var, From: oa.From, To: c.ids[t],
					FromPE: f.src.PE, ToPE: bestPE, Words: oa.Words,
					Send: f.src.Finish, Recv: at, Hops: m.Topo.Hops(f.src.PE, bestPE),
				})
			}
		}
		// Committed contention may push the start past the estimate
		// (other placements between estimate and commit); never earlier.
		sl := Slot{Task: c.ids[t], PE: bestPE, Start: start, Finish: start + c.exec(t, bestPE)}
		b.commitSlot(t, sl)
		rt.complete(t)
	}
	return b.finish("mh"), nil
}
