package sched

import (
	"reflect"
	"strings"
	"sync"
	"testing"

	"repro/internal/graph"
	"repro/internal/machine"
)

// checkPlan verifies a recovery plan is a valid continuation of s under
// st: every needed task planned exactly once on a live PE, per-PE slots
// non-overlapping, precedence respected (a needed predecessor finishes
// before its consumer starts, plus communication when they sit on
// different PEs), and message records consistent with the slots.
func checkPlan(t *testing.T, s *Schedule, st RecoverState, plan *Reassignment) {
	t.Helper()
	placed := map[graph.NodeID]Slot{}
	for _, sl := range plan.Slots {
		if sl.Dup {
			t.Errorf("recovery slot %v is marked duplicate", sl)
		}
		if !st.Live[sl.PE] {
			t.Errorf("task %s planned on dead PE %d", sl.Task, sl.PE)
		}
		if _, ok := st.Done[sl.Task]; ok {
			t.Errorf("done task %s re-planned", sl.Task)
		}
		if _, dup := placed[sl.Task]; dup {
			t.Errorf("task %s planned twice", sl.Task)
		}
		placed[sl.Task] = sl
	}
	for _, n := range s.Graph.Nodes() {
		if _, done := st.Done[n.ID]; done {
			continue
		}
		if _, ok := placed[n.ID]; !ok {
			t.Errorf("needed task %s missing from plan", n.ID)
		}
	}
	if len(plan.Moved) != len(plan.Slots) {
		t.Errorf("Moved lists %d tasks for %d slots", len(plan.Moved), len(plan.Slots))
	}
	// Per-PE slots must not overlap.
	byPE := map[int][]Slot{}
	for _, sl := range plan.Slots {
		byPE[sl.PE] = append(byPE[sl.PE], sl)
	}
	for pe, slots := range byPE {
		for i, a := range slots {
			for _, b := range slots[i+1:] {
				if a.Start < b.Finish && b.Start < a.Finish {
					t.Errorf("PE %d slots overlap: %v and %v", pe, a, b)
				}
			}
		}
	}
	// Precedence: planned consumers wait for planned producers (plus
	// comm across PEs); surviving producers count as available at 0.
	for _, sl := range plan.Slots {
		for _, a := range s.Graph.PredArcs(sl.Task) {
			if hold, done := st.Done[a.From]; done {
				if c := s.Machine.CommTime(a.Words, hold, sl.PE); sl.Start < c {
					t.Errorf("task %s starts at %v before data from holder PE %d can arrive (%v)", sl.Task, sl.Start, hold, c)
				}
				continue
			}
			p, ok := placed[a.From]
			if !ok {
				continue // already reported missing above
			}
			need := p.Finish + s.Machine.CommTime(a.Words, p.PE, sl.PE)
			if sl.Start < need {
				t.Errorf("task %s starts at %v before %s's data arrives at %v", sl.Task, sl.Start, a.From, need)
			}
		}
	}
	for _, m := range plan.Msgs {
		if m.FromPE == m.ToPE {
			t.Errorf("co-located message %+v", m)
		}
		if !st.Live[m.FromPE] || !st.Live[m.ToPE] {
			t.Errorf("message %+v touches a dead PE", m)
		}
		if m.Recv < m.Send {
			t.Errorf("message %+v received before sent", m)
		}
		to, ok := placed[m.To]
		if !ok {
			t.Errorf("message %+v feeds unplanned task", m)
			continue
		}
		if to.PE != m.ToPE {
			t.Errorf("message %+v targets PE %d but %s runs on PE %d", m, m.ToPE, m.To, to.PE)
		}
	}
}

// recoverFixture schedules the GE graph with ETF on a 4-PE machine and
// derives a RecoverState in which PE 1 died after the slots finishing
// by cutoff completed. Results of tasks on the dead PE are re-homed
// onto PE 0 per the recovery convention (the test stands in for the
// runner, which knows who actually holds each env).
func recoverFixture(t *testing.T, cutoff machine.Time) (*Schedule, RecoverState) {
	t.Helper()
	g := graph.GE(4, 5, 10, 3)
	m := mk(t, "full:4", cheapComm())
	s, err := ETF{}.Schedule(g, m)
	if err != nil {
		t.Fatal(err)
	}
	live := []bool{true, false, true, true}
	done := map[graph.NodeID]int{}
	for _, sl := range s.Slots {
		if sl.Dup || sl.Finish > cutoff {
			continue
		}
		pe := sl.PE
		if !live[pe] {
			pe = 0
		}
		done[sl.Task] = pe
	}
	return s, RecoverState{Live: live, Done: done}
}

func TestRecoverEmptyWhenAllDone(t *testing.T) {
	s, st := recoverFixture(t, s1Makespan(t))
	plan, err := Recover(s, st)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Slots) != 0 || len(plan.Msgs) != 0 || len(plan.Moved) != 0 {
		t.Errorf("expected empty plan, got %+v", plan)
	}
}

// s1Makespan returns a time no slot of the fixture schedule exceeds.
func s1Makespan(t *testing.T) machine.Time {
	g := graph.GE(4, 5, 10, 3)
	m := mk(t, "full:4", cheapComm())
	s, err := ETF{}.Schedule(g, m)
	if err != nil {
		t.Fatal(err)
	}
	return s.Makespan()
}

func TestRecoverErrors(t *testing.T) {
	s, _ := recoverFixture(t, 0)
	cases := []struct {
		name string
		st   RecoverState
		want string
	}{
		{"no live PEs", RecoverState{Live: []bool{false, false, false, false}}, "no live processors"},
		{"liveness length mismatch", RecoverState{Live: []bool{true}}, "liveness flags"},
		{"holder dead", RecoverState{Live: []bool{true, false, true, true},
			Done: map[graph.NodeID]int{"p0": 1}}, "dead or invalid"},
		{"holder out of range", RecoverState{Live: []bool{true, false, true, true},
			Done: map[graph.NodeID]int{"p0": 9}}, "dead or invalid"},
		{"unknown task", RecoverState{Live: []bool{true, false, true, true},
			Done: map[graph.NodeID]int{"nosuch": 0}}, "unknown done task"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Recover(s, tc.st)
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error = %v, want mention of %q", err, tc.want)
			}
		})
	}
}

func TestRecoverPlansNeededOntoLivePEs(t *testing.T) {
	for _, cutoff := range []machine.Time{0, 15, 30} {
		s, st := recoverFixture(t, cutoff)
		plan, err := Recover(s, st)
		if err != nil {
			t.Fatalf("cutoff %v: %v", cutoff, err)
		}
		if needed := len(s.Graph.Nodes()) - len(st.Done); len(plan.Slots) != needed {
			t.Fatalf("cutoff %v: planned %d slots for %d needed tasks", cutoff, len(plan.Slots), needed)
		}
		checkPlan(t, s, st, plan)
	}
}

func TestRecoverSinglePESurvivor(t *testing.T) {
	// With one live PE the plan must serialise everything on it.
	s, st := recoverFixture(t, 20)
	st.Live = []bool{true, false, false, false}
	for task := range st.Done {
		st.Done[task] = 0
	}
	plan, err := Recover(s, st)
	if err != nil {
		t.Fatal(err)
	}
	checkPlan(t, s, st, plan)
	for _, sl := range plan.Slots {
		if sl.PE != 0 {
			t.Errorf("task %s on PE %d with only PE 0 alive", sl.Task, sl.PE)
		}
	}
	if len(plan.Msgs) != 0 {
		t.Errorf("single-PE plan has %d messages", len(plan.Msgs))
	}
}

// TestRecoverCrashedPEHadNoRemainingSlots: a processor dies after
// finishing every slot assigned to it, so nothing it owned needs
// replanning — but its results must stay usable (from their re-homed
// holders) and the remaining tasks of the *live* processors must still
// be planned onto live processors only.
func TestRecoverCrashedPEHadNoRemainingSlots(t *testing.T) {
	g := graph.GE(4, 5, 10, 3)
	m := mk(t, "full:4", cheapComm())
	s, err := ETF{}.Schedule(g, m)
	if err != nil {
		t.Fatal(err)
	}
	live := []bool{true, false, true, true}
	// The dead PE finished everything it was given; a prefix of the other
	// processors' work is also done. Dead-PE results re-home to PE 0.
	done := map[graph.NodeID]int{}
	var cutoff machine.Time = 20
	for _, sl := range s.Slots {
		if sl.Dup {
			continue
		}
		if sl.PE == 1 {
			done[sl.Task] = 0
		} else if sl.Finish <= cutoff {
			done[sl.Task] = sl.PE
		}
	}
	st := RecoverState{Live: live, Done: done}
	plan, err := Recover(s, st)
	if err != nil {
		t.Fatal(err)
	}
	checkPlan(t, s, st, plan)
	// Nothing planned may originate from the dead PE: all its work was
	// complete, so only live processors' pending tasks appear.
	for _, sl := range plan.Slots {
		if orig, ok := s.PrimarySlot(sl.Task); ok && orig.PE == 1 {
			t.Errorf("task %s originally on the fully-finished dead PE was replanned", sl.Task)
		}
	}
}

// TestRecoverTwoPEMachineLosesOne: on a 2-processor machine a crash
// leaves a single live PE — the smallest possible survivor set. The
// plan must serialise every pending task on the survivor with no
// messages, regardless of how communication-heavy the schedule was.
func TestRecoverTwoPEMachineLosesOne(t *testing.T) {
	g := graph.GE(4, 5, 10, 3)
	m := mk(t, "full:2", cheapComm())
	s, err := ETF{}.Schedule(g, m)
	if err != nil {
		t.Fatal(err)
	}
	live := []bool{true, false}
	done := map[graph.NodeID]int{}
	var cutoff machine.Time = 15
	for _, sl := range s.Slots {
		if sl.Dup || sl.Finish > cutoff {
			continue
		}
		done[sl.Task] = 0 // survivor holds everything finished
	}
	st := RecoverState{Live: live, Done: done}
	plan, err := Recover(s, st)
	if err != nil {
		t.Fatal(err)
	}
	checkPlan(t, s, st, plan)
	if len(plan.Slots) == 0 {
		t.Fatal("crash left pending work but the plan is empty")
	}
	for _, sl := range plan.Slots {
		if sl.PE != 0 {
			t.Errorf("task %s planned on PE %d; only PE 0 is alive", sl.Task, sl.PE)
		}
	}
	if len(plan.Msgs) != 0 {
		t.Errorf("single-survivor plan has %d messages", len(plan.Msgs))
	}
}

// TestRecoverBackToBackCrashes: a second processor dies after the first
// recovery already replanned — two epochs of recovery state. The second
// plan must start from the first plan's placements (tasks finished
// under plan 1 are held by their *new* processors) and use only the
// remaining live set.
func TestRecoverBackToBackCrashes(t *testing.T) {
	s, st1 := recoverFixture(t, 20) // epoch 1: PE 1 dies
	plan1, err := Recover(s, st1)
	if err != nil {
		t.Fatal(err)
	}
	checkPlan(t, s, st1, plan1)

	// Epoch 2: some of plan 1's slots complete on their new processors,
	// then PE 2 dies too. Its completed results re-home to PE 0.
	live2 := []bool{true, false, false, true}
	done2 := map[graph.NodeID]int{}
	for task, pe := range st1.Done {
		if !live2[pe] {
			pe = 0
		}
		done2[task] = pe
	}
	var cutoff2 machine.Time
	for _, sl := range plan1.Slots {
		if sl.Finish > cutoff2 {
			cutoff2 = sl.Finish
		}
	}
	cutoff2 /= 2
	for _, sl := range plan1.Slots {
		if sl.Finish > cutoff2 {
			continue
		}
		pe := sl.PE
		if !live2[pe] {
			pe = 0
		}
		done2[sl.Task] = pe
	}
	st2 := RecoverState{Live: live2, Done: done2}
	plan2, err := Recover(s, st2)
	if err != nil {
		t.Fatal(err)
	}
	checkPlan(t, s, st2, plan2)
	// Everything pending after the second crash must avoid both dead PEs.
	for _, sl := range plan2.Slots {
		if sl.PE == 1 || sl.PE == 2 {
			t.Errorf("task %s planned on dead PE %d in epoch 2", sl.Task, sl.PE)
		}
	}
	// The second plan must cover exactly the tasks not yet done anywhere.
	if needed := len(s.Graph.Nodes()) - len(done2); len(plan2.Slots) != needed {
		t.Errorf("epoch-2 plan has %d slots for %d needed tasks", len(plan2.Slots), needed)
	}
}

func TestRecoverDeterministic(t *testing.T) {
	s, st := recoverFixture(t, 20)
	a, err := Recover(s, st)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Recover(s, st)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Errorf("two recoveries of the same state differ:\n%+v\n%+v", a, b)
	}
}

func TestRecoverConcurrentUse(t *testing.T) {
	// Recover must be callable from several goroutines once the
	// schedule is finalized (tier-1 runs this under -race).
	s, st := recoverFixture(t, 20)
	s.Finalize()
	want, err := Recover(s, st)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			got, err := Recover(s, st)
			if err != nil {
				t.Error(err)
				return
			}
			if !reflect.DeepEqual(got, want) {
				t.Error("concurrent recovery produced a different plan")
			}
		}()
	}
	wg.Wait()
}
