package sched

import (
	"fmt"
	"sort"

	"repro/internal/graph"
	"repro/internal/machine"
)

// Pack implements grain packing by linear clustering (Kim & Browne's
// linear clustering as used in Kruatrachue's grain-packing work):
//
//  1. repeatedly peel off the current critical path of the yet-
//     unclustered subgraph and make it one grain (communication inside
//     a grain becomes free because its tasks share a processor);
//  2. assign grains to processors longest-processing-time first, each
//     grain to the least-loaded processor;
//  3. fix the placement and assign start times with the ETF rule
//     restricted to the chosen processors.
type Pack struct{}

// Name implements Scheduler.
func (Pack) Name() string { return "pack" }

// Schedule implements Scheduler.
func (Pack) Schedule(g *graph.Graph, m *machine.Machine) (*Schedule, error) {
	b, err := newBuilder(g, m, SchedOptions{Workers: 1})
	if err != nil {
		return nil, err
	}
	defer b.release()
	clusters, err := linearClusters(g)
	if err != nil {
		return nil, err
	}
	assign := packClusters(g, m, clusters)
	return scheduleFixed(b, assign, "pack")
}

// linearClusters peels critical paths off the graph until every task
// belongs to exactly one cluster. Returned clusters are ordered by
// decreasing creation priority (first cluster = global critical path).
func linearClusters(g *graph.Graph) ([][]graph.NodeID, error) {
	// One topological sort serves every peel; the subgraph only shrinks.
	order, err := g.TopoSort()
	if err != nil {
		return nil, err
	}
	remaining := map[graph.NodeID]bool{}
	for _, n := range g.Nodes() {
		remaining[n.ID] = true
	}
	var clusters [][]graph.NodeID
	for len(remaining) > 0 {
		path := criticalPathWithin(g, order, remaining)
		if len(path) == 0 {
			// Cannot happen on a DAG with remaining nodes; guard anyway.
			return nil, fmt.Errorf("sched: linear clustering stalled with %d tasks left", len(remaining))
		}
		clusters = append(clusters, path)
		for _, id := range path {
			delete(remaining, id)
		}
	}
	return clusters, nil
}

// criticalPathWithin finds the longest work+words path restricted to
// the given node subset. order must be a topological order of g.
func criticalPathWithin(g *graph.Graph, order []graph.NodeID, within map[graph.NodeID]bool) []graph.NodeID {
	blevel := map[graph.NodeID]int64{}
	next := map[graph.NodeID]graph.NodeID{}
	for i := len(order) - 1; i >= 0; i-- {
		id := order[i]
		if !within[id] {
			continue
		}
		var best int64
		var bestNext graph.NodeID
		for _, a := range g.SuccArcs(id) {
			if !within[a.To] {
				continue
			}
			if c := blevel[a.To] + a.Words; c > best || (c == best && bestNext == "") {
				best = c
				bestNext = a.To
			}
		}
		blevel[id] = best + g.Node(id).Work
		if bestNext != "" {
			next[id] = bestNext
		}
	}
	var start graph.NodeID
	var startLen int64 = -1
	for _, id := range order {
		if !within[id] {
			continue
		}
		// Only start from subset-local sources for true linear chains.
		hasPredWithin := false
		for _, a := range g.PredArcs(id) {
			if within[a.From] {
				hasPredWithin = true
				break
			}
		}
		if hasPredWithin {
			continue
		}
		if blevel[id] > startLen {
			startLen = blevel[id]
			start = id
		}
	}
	if startLen < 0 {
		return nil
	}
	var path []graph.NodeID
	for cur := start; ; {
		path = append(path, cur)
		nx, ok := next[cur]
		if !ok {
			break
		}
		cur = nx
	}
	return path
}

// packClusters maps clusters onto processors: largest total work first,
// each to the currently least-loaded processor.
func packClusters(g *graph.Graph, m *machine.Machine, clusters [][]graph.NodeID) map[graph.NodeID]int {
	type grain struct {
		idx  int
		work int64
	}
	grains := make([]grain, len(clusters))
	for i, c := range clusters {
		var w int64
		for _, id := range c {
			w += g.Node(id).Work
		}
		grains[i] = grain{idx: i, work: w}
	}
	sort.Slice(grains, func(i, j int) bool {
		if grains[i].work != grains[j].work {
			return grains[i].work > grains[j].work
		}
		return grains[i].idx < grains[j].idx
	})
	load := make([]int64, m.NumPE())
	assign := map[graph.NodeID]int{}
	for _, gr := range grains {
		pe := 0
		for p := 1; p < m.NumPE(); p++ {
			if load[p] < load[pe] {
				pe = p
			}
		}
		load[pe] += gr.work
		for _, id := range clusters[gr.idx] {
			assign[id] = pe
		}
	}
	return assign
}

// scheduleFixed assigns start times when each task's processor is
// already decided: repeatedly start the ready task that can begin
// earliest on its assigned processor.
func scheduleFixed(b *builder, assign map[graph.NodeID]int, alg string) (*Schedule, error) {
	c := b.c
	pa := make([]int, c.n)
	for id, pe := range assign {
		pa[c.idOf[id]] = pe
	}
	rt := newReadyTracker(c, b.ar)
	for len(rt.ready) > 0 {
		bestIdx := -1
		bestT := int32(-1)
		var bestStart machine.Time
		for i, t := range rt.ready {
			st, err := b.est(t, pa[t])
			if err != nil {
				return nil, err
			}
			better := false
			switch {
			case bestIdx < 0:
				better = true
			case st != bestStart:
				better = st < bestStart
			case c.slevel[t] != c.slevel[bestT]:
				better = c.slevel[t] > c.slevel[bestT]
			default:
				better = c.rank[t] < c.rank[bestT]
			}
			if better {
				bestIdx, bestT, bestStart = i, t, st
			}
		}
		t := rt.take(bestIdx)
		if _, err := b.place(t, pa[t], bestStart, false); err != nil {
			return nil, err
		}
		rt.complete(t)
	}
	return b.finish(alg), nil
}
