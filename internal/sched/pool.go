package sched

import (
	"runtime"
	"sync"

	"repro/internal/machine"
)

// This file implements parallel candidate evaluation: the inner
// (ready task × processor) scoring loops of the greedy schedulers are
// embarrassingly parallel — scoring reads the placed state and writes
// only per-(task,PE) cache entries — so they shard across a small
// worker pool. Determinism is preserved by construction:
//
//   - the scanned index range is split into contiguous per-worker
//     chunks, and every per-worker result is reduced in worker order
//     with the same strict comparison the serial scan uses;
//   - each scheduler's candidate order is a strict total order (the
//     final tie-break key — task rank or PE index — is unique), so the
//     minimum is unique and independent of scan order;
//   - workers only write state they own: estimation-cache entries of
//     the tasks (or PEs) in their chunk, and scratch carved for them
//     before the scan starts.
//
// The result is byte-identical to the serial path for any worker
// count; TestParallelEquivalence and the golden suite enforce it.

// SchedOptions configures how a scheduler builds its schedule. The
// zero value is the default: automatic worker count. Options never
// change the produced schedule, only how fast it is constructed.
type SchedOptions struct {
	// Workers is the number of goroutines scoring candidates:
	// 0 = automatic (GOMAXPROCS, capped), 1 = fully serial (the
	// debugging escape hatch), >1 = that many workers.
	Workers int
}

// workers resolves the effective worker count.
func (o SchedOptions) workers() int {
	w := o.Workers
	if w == 0 {
		w = runtime.GOMAXPROCS(0)
		if w > 8 {
			w = 8
		}
	}
	if w < 1 {
		w = 1
	}
	return w
}

// prange is one contiguous index chunk handed to a worker.
type prange struct{ lo, hi int }

// workerPool runs scans over index ranges on a fixed set of
// goroutines. Each worker owns one channel so chunk w always runs on
// goroutine w, which lets callers give workers private scratch.
type workerPool struct {
	jobs []chan prange
	wg   sync.WaitGroup
	body func(worker, lo, hi int)
}

func newWorkerPool(n int) *workerPool {
	p := &workerPool{jobs: make([]chan prange, n)}
	for i := range p.jobs {
		ch := make(chan prange, 1)
		p.jobs[i] = ch
		go func(w int, ch chan prange) {
			for r := range ch {
				p.body(w, r.lo, r.hi)
				p.wg.Done()
			}
		}(i, ch)
	}
	return p
}

// scan splits [0,n) into one chunk per worker and blocks until every
// chunk has run. body must confine writes to worker-owned state.
func (p *workerPool) scan(n int, body func(worker, lo, hi int)) {
	p.body = body
	chunk := (n + len(p.jobs) - 1) / len(p.jobs)
	for w := 0; w < len(p.jobs); w++ {
		lo := w * chunk
		if lo >= n {
			break
		}
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		p.wg.Add(1)
		p.jobs[w] <- prange{lo, hi}
	}
	p.wg.Wait()
}

// close stops the workers. The pool is unusable afterwards.
func (p *workerPool) close() {
	for _, ch := range p.jobs {
		close(ch)
	}
}

// scanWorkers returns how many chunks a parScan may produce.
func (b *builder) scanWorkers() int {
	if b.pool == nil {
		return 1
	}
	return len(b.pool.jobs)
}

// parScan runs body over [0,n): inline for serial builders, sharded
// across the pool otherwise.
func (b *builder) parScan(n int, body func(worker, lo, hi int)) {
	if b.pool == nil || n < 2 {
		body(0, 0, n)
		return
	}
	b.pool.scan(n, body)
}

// cand is one scored candidate placement.
type cand struct {
	ok  bool
	t   int32
	idx int // index in the scanned slice (ready-pool position)
	pe  int
	st  machine.Time
	fin machine.Time
}

// betterCand reports whether next beats cur under the dynamic greedy
// total order shared by ETF and MH: earlier finish, then higher static
// level, then NodeID order, then lower PE. The key is strict (rank is
// unique per task, PE unique within a task), so the minimum is unique.
func (c *compiled) betterCand(cur, next cand) bool {
	switch {
	case !next.ok:
		return false
	case !cur.ok:
		return true
	case next.fin != cur.fin:
		return next.fin < cur.fin
	case c.slevel[next.t] != c.slevel[cur.t]:
		return c.slevel[next.t] > c.slevel[cur.t]
	case next.t != cur.t:
		return c.rank[next.t] < c.rank[cur.t]
	default:
		return next.pe < cur.pe
	}
}

// betterPE reports whether (fin,pe) beats cur under the static-priority
// order shared by HLFET, DSH, ISH and BSP when placing a single task:
// earlier finish, then lower PE.
func betterPE(curOK bool, curFin machine.Time, curPE int, fin machine.Time, pe int) bool {
	if !curOK {
		return true
	}
	if fin != curFin {
		return fin < curFin
	}
	return pe < curPE
}
