package sched

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/graph"
	"repro/internal/machine"
)

func TestISHFillsHoles(t *testing.T) {
	// On one processor pair: a chain head forces a wait for a message;
	// an independent task should slot into the hole under ISH.
	g := graph.New("holes")
	g.MustAddTask("a", "", 10)
	g.MustAddTask("b", "", 10) // needs a's data
	g.MustAddTask("free", "", 4)
	g.MustConnect("a", "b", "d", 20)
	m := mk(t, "full:2", costlyComm()) // comm = 5 + 20 = 25us

	ish, err := ISH{}.Schedule(g, m)
	if err != nil {
		t.Fatal(err)
	}
	if err := ish.Validate(); err != nil {
		t.Fatal(err)
	}
	// Everything fits on one PE serially in 24us; ISH must not exceed
	// plain HLFET.
	hl, err := HLFET{}.Schedule(g, m)
	if err != nil {
		t.Fatal(err)
	}
	if ish.Makespan() > hl.Makespan() {
		t.Errorf("ISH %v worse than HLFET %v", ish.Makespan(), hl.Makespan())
	}
}

func TestISHInsertsIntoGap(t *testing.T) {
	// Force a genuine gap: two chains a->b (heavy comm) pinned apart,
	// then a small независимая task must start inside the idle window.
	g := graph.New("gap")
	g.MustAddTask("a", "", 10)
	g.MustAddTask("b", "", 10)
	g.MustAddTask("c", "", 30) // keeps PE0 busy so a/b prefer PE1
	g.MustAddTask("tiny", "", 2)
	g.MustConnect("a", "b", "d", 30)
	m := mk(t, "full:2", costlyComm())
	sc, err := ISH{}.Schedule(g, m)
	if err != nil {
		t.Fatal(err)
	}
	if err := sc.Validate(); err != nil {
		t.Fatal(err)
	}
	// tiny must finish no later than the largest other finish (it fits
	// in some idle window rather than extending the makespan).
	tiny, ok := sc.PrimarySlot("tiny")
	if !ok {
		t.Fatal("tiny unscheduled")
	}
	if tiny.Finish == sc.Makespan() && sc.Makespan() > 40 {
		t.Errorf("tiny extended the makespan: %+v (makespan %v)", tiny, sc.Makespan())
	}
}

func TestInsertionPoint(t *testing.T) {
	slots := []Slot{
		{Task: "x", Start: 10, Finish: 20},
		{Task: "y", Start: 30, Finish: 40},
	}
	cases := []struct {
		ready, dur, want machine.Time
	}{
		{0, 10, 0},   // fits before x
		{0, 11, 40},  // too big for [0,10) and [20,30): goes last
		{15, 5, 20},  // ready inside x; next gap
		{15, 15, 40}, // nothing fits until the end
		{50, 5, 50},  // after everything
		{0, 5, 0},
	}
	for _, c := range cases {
		if got := insertionPoint(slots, c.ready, c.dur); got != c.want {
			t.Errorf("insertionPoint(ready=%v dur=%v) = %v, want %v", c.ready, c.dur, got, c.want)
		}
	}
	if got := insertionPoint(nil, 7, 5); got != 7 {
		t.Errorf("empty PE: %v", got)
	}
}

func TestOptimalOnKnownGraphs(t *testing.T) {
	// Diamond with cheap comm on 2 PEs: optimal overlaps b and c.
	g := graph.Diamond(10, 10)
	m := mk(t, "full:2", cheapComm())
	sc, err := Optimal{}.Schedule(g, m)
	if err != nil {
		t.Fatal(err)
	}
	if err := sc.Validate(); err != nil {
		t.Fatal(err)
	}
	// a [0,10]; b [10,20] PE0; c [11,21] PE1; d from 22 -> 32... ETF got
	// 31; optimal must be <= 31.
	if sc.Makespan() > 31 {
		t.Errorf("optimal makespan %v > ETF's 31us", sc.Makespan())
	}
	// With costly comm the optimum is the serial schedule.
	mCost := mk(t, "full:2", costlyComm())
	sc2, err := Optimal{}.Schedule(g, mCost)
	if err != nil {
		t.Fatal(err)
	}
	if sc2.Makespan() != 40 {
		t.Errorf("optimal on costly comm = %v, want serial 40us", sc2.Makespan())
	}
}

func TestOptimalRejectsBigGraphs(t *testing.T) {
	g := graph.Chain(20, 1, 1)
	m := mk(t, "full:2", cheapComm())
	if _, err := (Optimal{}).Schedule(g, m); err == nil {
		t.Error("20-task graph accepted by default optimal search")
	}
	if _, err := (Optimal{MaxTasks: 25}).Schedule(g, m); err != nil {
		t.Errorf("raised limit rejected: %v", err)
	}
}

// The central honesty property: no heuristic beats the exhaustive
// optimum, and the optimum validates, on random small graphs across
// machine shapes.
func TestHeuristicsNeverBeatOptimal(t *testing.T) {
	specs := []string{"full:2", "full:3", "chain:3", "star:3"}
	f := func(seed int64, pick uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		g, err := graph.LayeredRandom(rng, graph.LayeredConfig{
			Layers: 2 + rng.Intn(2), Width: 1 + rng.Intn(3),
			MinWork: 1, MaxWork: 20, MinWords: 0, MaxWords: 10, Density: 0.5,
		})
		if err != nil {
			return false
		}
		if len(g.Tasks()) > 8 {
			return true // keep the search fast
		}
		m := mk(t, specs[int(pick)%len(specs)], costlyComm())
		opt, err := (Optimal{}).Schedule(g, m)
		if err != nil {
			t.Logf("optimal: %v", err)
			return false
		}
		if err := opt.Validate(); err != nil {
			t.Logf("optimal invalid (seed %d): %v", seed, err)
			return false
		}
		for _, s := range All() {
			sc, err := s.Schedule(g, m)
			if err != nil {
				return false
			}
			// DSH may duplicate, which can legitimately beat the
			// duplication-free optimum.
			if s.Name() == "dsh" {
				continue
			}
			if sc.Makespan() < opt.Makespan() {
				t.Logf("%s (%v) beat optimal (%v) on seed %d machine %s",
					s.Name(), sc.Makespan(), opt.Makespan(), seed, m.Name)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestISHValidOnRandomGraphs(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g, err := graph.LayeredRandom(rng, graph.LayeredConfig{
			Layers: 4, Width: 4, MinWork: 1, MaxWork: 40, MinWords: 0, MaxWords: 25, Density: 0.4,
		})
		if err != nil {
			return false
		}
		m := mk(t, "hypercube:2", costlyComm())
		sc, err := ISH{}.Schedule(g, m)
		if err != nil {
			t.Logf("ish: %v", err)
			return false
		}
		if err := sc.Validate(); err != nil {
			t.Logf("ish invalid on seed %d: %v", seed, err)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestByNameIncludesOptimalAndISH(t *testing.T) {
	for _, name := range []string{"optimal", "ish"} {
		s, err := ByName(name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if s.Name() != name {
			t.Errorf("ByName(%s).Name() = %s", name, s.Name())
		}
	}
}
