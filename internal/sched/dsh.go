package sched

import (
	"sort"

	"repro/internal/graph"
	"repro/internal/machine"
)

// DSH is Kruatrachue's Duplication Scheduling Heuristic (Kruatrachue &
// Lewis, "Static Task Scheduling and Grain Packing in Parallel
// Processing Systems", 1987). It runs static-priority list scheduling
// like HLFET but, for every candidate processor, first asks how early
// the task could start if the ancestors whose messages delay it were
// duplicated into the processor's idle time — trading redundant
// computation for communication — and then commits the task and its
// profitable duplicates to the best processor.
//
// This implementation duplicates direct critical parents iteratively
// (each duplication can expose a new critical parent) and accepts a
// duplication only when it strictly lowers the task's start time on
// that processor, which guarantees termination.
type DSH struct {
	// MaxDupsPerTask bounds how many ancestor copies may be inserted
	// while placing one task; 0 means the number of predecessors.
	MaxDupsPerTask int
}

// Name implements Scheduler.
func (DSH) Name() string { return "dsh" }

// dupPlan is one ancestor copy the per-PE evaluation decided to insert.
type dupPlan struct {
	task  graph.NodeID
	start machine.Time
}

// Schedule implements Scheduler.
func (d DSH) Schedule(g *graph.Graph, m *machine.Machine) (*Schedule, error) {
	b, err := newBuilder(g, m)
	if err != nil {
		return nil, err
	}
	lv, err := g.ComputeLevels(1)
	if err != nil {
		return nil, err
	}
	rt := newReadyTracker(g)
	for len(rt.ready) > 0 {
		// Highest static level first (as HLFET).
		best := 0
		for i := 1; i < len(rt.ready); i++ {
			a, c := rt.ready[i], rt.ready[best]
			if lv.SLevel[a] > lv.SLevel[c] || (lv.SLevel[a] == lv.SLevel[c] && a < c) {
				best = i
			}
		}
		t := rt.take(best)

		// Evaluate every processor with hypothetical duplication and
		// keep the one with the earliest finish.
		bestPE := -1
		var bestFinish, bestStart machine.Time
		var bestPlan []dupPlan
		for pe := 0; pe < m.NumPE(); pe++ {
			start, plan, err := d.estWithDups(b, t, pe)
			if err != nil {
				return nil, err
			}
			finish := start + m.ExecTime(g.Node(t).Work, pe)
			if bestPE < 0 || finish < bestFinish {
				bestPE, bestFinish, bestStart, bestPlan = pe, finish, start, plan
			}
		}
		for _, dp := range bestPlan {
			if _, err := b.place(dp.task, bestPE, dp.start, true); err != nil {
				return nil, err
			}
		}
		if _, err := b.place(t, bestPE, bestStart, false); err != nil {
			return nil, err
		}
		rt.complete(t)
	}
	return b.finish("dsh"), nil
}

// estWithDups computes the earliest start of t on pe allowing ancestor
// duplication, without mutating the builder. It returns the start and
// the ordered list of duplicates to insert to achieve it.
func (d DSH) estWithDups(b *builder, t graph.NodeID, pe int) (machine.Time, []dupPlan, error) {
	maxDups := d.MaxDupsPerTask
	if maxDups <= 0 {
		maxDups = len(b.g.Pred(t))
	}
	procFree := b.procFree[pe]
	virtual := map[graph.NodeID]machine.Time{} // task -> finish of virtual copy on pe
	var plan []dupPlan

	// arrivalV is builder.arrival extended with the virtual overlay.
	arrivalV := func(a graph.Arc) (machine.Time, bool, error) {
		at, src, err := b.arrival(a, pe)
		if err != nil {
			return 0, false, err
		}
		remote := src.PE != pe
		if vf, ok := virtual[a.From]; ok && vf <= at {
			at, remote = vf, false
		}
		return at, remote, nil
	}
	// estV computes the earliest start of any task on pe under the
	// overlay (used both for t and for candidate duplicates).
	estV := func(task graph.NodeID) (machine.Time, error) {
		start := procFree
		for _, a := range b.g.Pred(task) {
			at, _, err := arrivalV(a)
			if err != nil {
				return 0, err
			}
			if at > start {
				start = at
			}
		}
		return start, nil
	}

	for len(plan) < maxDups {
		start, err := estV(t)
		if err != nil {
			return 0, nil, err
		}
		// Find the remote arc that pins the start, if any.
		var critical *graph.Arc
		pinned := procFree
		for _, a := range b.g.Pred(t) {
			a := a
			at, remote, err := arrivalV(a)
			if err != nil {
				return 0, nil, err
			}
			if at > pinned {
				pinned = at
				if remote {
					critical = &a
				} else {
					critical = nil
				}
			}
		}
		if critical == nil {
			return start, plan, nil
		}
		cp := critical.From
		if _, dup := virtual[cp]; dup {
			return start, plan, nil
		}
		dupStart, err := estV(cp)
		if err != nil {
			return 0, nil, err
		}
		dupFinish := dupStart + b.m.ExecTime(b.g.Node(cp).Work, pe)
		if dupFinish >= start {
			return start, plan, nil // duplication cannot beat the message
		}
		virtual[cp] = dupFinish
		procFree = dupFinish
		plan = append(plan, dupPlan{task: cp, start: dupStart})
	}
	start, err := estV(t)
	if err != nil {
		return 0, nil, err
	}
	// Keep the plan ordered by start so commits respect precedence.
	sort.Slice(plan, func(i, j int) bool { return plan[i].start < plan[j].start })
	return start, plan, nil
}
