package sched

import (
	"sort"

	"repro/internal/graph"
	"repro/internal/machine"
)

// DSH is Kruatrachue's Duplication Scheduling Heuristic (Kruatrachue &
// Lewis, "Static Task Scheduling and Grain Packing in Parallel
// Processing Systems", 1987). It runs static-priority list scheduling
// like HLFET but, for every candidate processor, first asks how early
// the task could start if the ancestors whose messages delay it were
// duplicated into the processor's idle time — trading redundant
// computation for communication — and then commits the task and its
// profitable duplicates to the best processor.
//
// This implementation duplicates direct critical parents iteratively
// (each duplication can expose a new critical parent) and accepts a
// duplication only when it strictly lowers the task's start time on
// that processor, which guarantees termination.
type DSH struct {
	// MaxDupsPerTask bounds how many ancestor copies may be inserted
	// while placing one task; 0 means the number of predecessors.
	MaxDupsPerTask int

	Opts SchedOptions
}

// Name implements Scheduler.
func (DSH) Name() string { return "dsh" }

// dupPlan is one ancestor copy the per-PE evaluation decided to insert.
type dupPlan struct {
	task  int32
	start machine.Time
}

// dshState holds the scratch buffers of one worker's hypothetical
// duplication evaluation, so estWithDups runs without allocating: the
// virtual overlay is a flat finish array validated by an epoch stamp
// instead of a fresh map per (task, pe) evaluation. The evaluation
// reads the builder but never writes it, so each worker of the
// per-processor shard carries its own dshState and the shards are
// independent.
type dshState struct {
	virtFinish []machine.Time // finish of the virtual copy on the candidate pe
	virtStamp  []uint32       // overlay entry valid iff stamp == epoch
	epoch      uint32
	plan       []dupPlan // scratch for the evaluation in progress
	bestPlan   []dupPlan // retained copy of the best processor's plan
}

func newDSHState(n int, ar *arena) *dshState {
	return &dshState{
		virtFinish: ar.times(n, false),
		virtStamp:  ar.uint32s(n, true),
	}
}

// Schedule implements Scheduler.
func (d DSH) Schedule(g *graph.Graph, m *machine.Machine) (*Schedule, error) {
	b, err := newBuilder(g, m, d.Opts)
	if err != nil {
		return nil, err
	}
	defer b.release()
	c := b.c
	w := b.scanWorkers()
	sts := make([]*dshState, w)
	for i := range sts {
		sts[i] = newDSHState(c.n, b.ar)
	}
	type peCand struct {
		ok     bool
		pe     int
		start  machine.Time
		finish machine.Time
	}
	cands := make([]peCand, w)
	errs := make([]error, w)
	h := newReadyHeap(c, b.ar)
	for h.len() > 0 {
		t := h.pop() // highest static level first (as HLFET)

		// Evaluate every processor with hypothetical duplication and
		// keep the one with the earliest finish (ties: lowest PE). The
		// shard is over processors; each worker evaluates its range
		// against its private overlay and keeps its best plan.
		b.parScan(c.pes, func(wk, lo, hi int) {
			st := sts[wk]
			best := peCand{}
			st.bestPlan = st.bestPlan[:0]
			for pe := lo; pe < hi; pe++ {
				start, plan, err := d.estWithDups(b, st, t, pe)
				if err != nil {
					errs[wk] = err
					return
				}
				finish := start + c.exec(t, pe)
				if betterPE(best.ok, best.finish, best.pe, finish, pe) {
					best = peCand{ok: true, pe: pe, start: start, finish: finish}
					st.bestPlan = append(st.bestPlan[:0], plan...)
				}
			}
			cands[wk] = best
		})
		best := peCand{}
		var bestPlan []dupPlan
		for wk := 0; wk < w; wk++ {
			if errs[wk] != nil {
				return nil, errs[wk]
			}
			if c := cands[wk]; c.ok && betterPE(best.ok, best.finish, best.pe, c.finish, c.pe) {
				best = c
				bestPlan = sts[wk].bestPlan
			}
			cands[wk] = peCand{}
		}
		for _, dp := range bestPlan {
			if _, err := b.place(dp.task, best.pe, dp.start, true); err != nil {
				return nil, err
			}
		}
		if _, err := b.place(t, best.pe, best.start, false); err != nil {
			return nil, err
		}
		h.complete(t)
	}
	return b.finish("dsh"), nil
}

// estWithDups computes the earliest start of t on pe allowing ancestor
// duplication, without mutating the builder. It returns the start and
// the ordered list of duplicates to insert to achieve it. The returned
// slice aliases st.plan and is only valid until the next call.
func (d DSH) estWithDups(b *builder, st *dshState, t int32, pe int) (machine.Time, []dupPlan, error) {
	c := b.c
	preds := c.predArcsOf(t)
	maxDups := d.MaxDupsPerTask
	if maxDups <= 0 {
		maxDups = len(preds)
	}
	procFree := b.procFree[pe]
	st.epoch++
	st.plan = st.plan[:0]

	// arrivalV is builder.arrival extended with the virtual overlay.
	arrivalV := func(a carc) (machine.Time, bool, error) {
		at, src, err := b.arrival(a, pe)
		if err != nil {
			return 0, false, err
		}
		remote := src.PE != pe
		if st.virtStamp[a.from] == st.epoch && st.virtFinish[a.from] <= at {
			at, remote = st.virtFinish[a.from], false
		}
		return at, remote, nil
	}
	// estV computes the earliest start of any task on pe under the
	// overlay (used both for t and for candidate duplicates).
	estV := func(task int32) (machine.Time, error) {
		start := procFree
		for _, a := range c.predArcsOf(task) {
			at, _, err := arrivalV(a)
			if err != nil {
				return 0, err
			}
			if at > start {
				start = at
			}
		}
		return start, nil
	}

	for len(st.plan) < maxDups {
		start, err := estV(t)
		if err != nil {
			return 0, nil, err
		}
		// Find the remote arc that pins the start, if any.
		critical := int32(-1)
		pinned := procFree
		for _, a := range preds {
			at, remote, err := arrivalV(a)
			if err != nil {
				return 0, nil, err
			}
			if at > pinned {
				pinned = at
				if remote {
					critical = a.from
				} else {
					critical = -1
				}
			}
		}
		if critical < 0 {
			return start, st.plan, nil
		}
		if st.virtStamp[critical] == st.epoch {
			return start, st.plan, nil // already duplicated
		}
		dupStart, err := estV(critical)
		if err != nil {
			return 0, nil, err
		}
		dupFinish := dupStart + c.exec(critical, pe)
		if dupFinish >= start {
			return start, st.plan, nil // duplication cannot beat the message
		}
		st.virtFinish[critical] = dupFinish
		st.virtStamp[critical] = st.epoch
		procFree = dupFinish
		st.plan = append(st.plan, dupPlan{task: critical, start: dupStart})
	}
	start, err := estV(t)
	if err != nil {
		return 0, nil, err
	}
	// Keep the plan ordered by start so commits respect precedence.
	sort.Slice(st.plan, func(i, j int) bool { return st.plan[i].start < st.plan[j].start })
	return start, st.plan, nil
}
