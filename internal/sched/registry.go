package sched

import (
	"fmt"
	"sort"

	"repro/internal/graph"
	"repro/internal/machine"
)

// All returns one instance of every polynomial-time scheduler, in a
// fixed order suitable for comparison tables: baseline first, then the
// PPSE heuristics in increasing sophistication. The exponential
// Optimal search is deliberately excluded; reach it with ByName.
func All() []Scheduler {
	return []Scheduler{Serial{}, HLFET{}, ETF{}, ISH{}, MH{}, DSH{}, Pack{}}
}

// ByName returns the scheduler with the given Name (including
// "optimal", which All omits), or an error listing the known names.
func ByName(name string) (Scheduler, error) {
	for _, s := range All() {
		if s.Name() == name {
			return s, nil
		}
	}
	if name == (Optimal{}).Name() {
		return Optimal{}, nil
	}
	names := []string{(Optimal{}).Name()}
	for _, s := range All() {
		names = append(names, s.Name())
	}
	sort.Strings(names)
	return nil, fmt.Errorf("sched: unknown scheduler %q (have %v)", name, names)
}

// SpeedupPoint is one point of a speedup-prediction curve (the paper's
// Figure 3 right-hand chart): the predicted speedup of a design on a
// machine of a given size.
type SpeedupPoint struct {
	PEs      int
	Makespan machine.Time
	Speedup  float64
}

// SpeedupCurve schedules the design on each machine in turn and reports
// the predicted speedup for each, exactly what Banger displays when it
// maps a PITL design onto 2, 4 and 8 hypercube processors.
func SpeedupCurve(s Scheduler, g *graph.Graph, machines []*machine.Machine) ([]SpeedupPoint, error) {
	var pts []SpeedupPoint
	for _, m := range machines {
		sc, err := s.Schedule(g, m)
		if err != nil {
			return nil, fmt.Errorf("speedup curve on %s: %w", m.Name, err)
		}
		pts = append(pts, SpeedupPoint{PEs: m.NumPE(), Makespan: sc.Makespan(), Speedup: sc.Speedup()})
	}
	return pts, nil
}

// Compare schedules the design with every scheduler on the machine and
// returns the schedules keyed by algorithm name.
func Compare(g *graph.Graph, m *machine.Machine) (map[string]*Schedule, error) {
	out := map[string]*Schedule{}
	for _, s := range All() {
		sc, err := s.Schedule(g, m)
		if err != nil {
			return nil, fmt.Errorf("compare %s: %w", s.Name(), err)
		}
		out[s.Name()] = sc
	}
	return out, nil
}
