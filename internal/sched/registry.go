package sched

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/graph"
	"repro/internal/machine"
)

// All returns one instance of every polynomial-time scheduler, in a
// fixed order suitable for comparison tables: baseline first, then the
// PPSE heuristics in increasing sophistication, then the superstep
// scheduler. The exponential Optimal search is deliberately excluded;
// reach it with ByName.
func All() []Scheduler {
	return []Scheduler{Serial{}, HLFET{}, ETF{}, ISH{}, MH{}, DSH{}, Pack{}, BSP{}}
}

// WithWorkers returns a copy of s configured to score candidates with
// w goroutines (0 = automatic, 1 = fully serial). Schedulers without a
// parallel scoring path are returned unchanged; the option never
// changes the schedule produced, only how fast it is constructed.
func WithWorkers(s Scheduler, w int) Scheduler {
	o := SchedOptions{Workers: w}
	switch v := s.(type) {
	case HLFET:
		v.Opts = o
		return v
	case ETF:
		v.Opts = o
		return v
	case ISH:
		v.Opts = o
		return v
	case MH:
		v.Opts = o
		return v
	case DSH:
		v.Opts = o
		return v
	case BSP:
		v.Opts = o
		return v
	}
	return s
}

// ByName returns the scheduler with the given Name (including
// "optimal", which All omits), or an error listing the known names.
func ByName(name string) (Scheduler, error) {
	for _, s := range All() {
		if s.Name() == name {
			return s, nil
		}
	}
	if name == (Optimal{}).Name() {
		return Optimal{}, nil
	}
	names := []string{(Optimal{}).Name()}
	for _, s := range All() {
		names = append(names, s.Name())
	}
	sort.Strings(names)
	return nil, fmt.Errorf("sched: unknown scheduler %q (have %v)", name, names)
}

// SpeedupPoint is one point of a speedup-prediction curve (the paper's
// Figure 3 right-hand chart): the predicted speedup of a design on a
// machine of a given size.
type SpeedupPoint struct {
	PEs      int
	Makespan machine.Time
	Speedup  float64
}

// SpeedupCurve schedules the design on each machine and reports the
// predicted speedup for each, exactly what Banger displays when it maps
// a PITL design onto 2, 4 and 8 hypercube processors. The machine sizes
// are independent, so they are scheduled concurrently; the returned
// points keep the order of machines.
func SpeedupCurve(s Scheduler, g *graph.Graph, machines []*machine.Machine) ([]SpeedupPoint, error) {
	pts := make([]SpeedupPoint, len(machines))
	errs := make([]error, len(machines))
	var wg sync.WaitGroup
	for i, m := range machines {
		if m == nil {
			return nil, fmt.Errorf("speedup curve: nil machine at index %d", i)
		}
		m.Topo.Precompute() // routing tables build lazily; force before sharing
		wg.Add(1)
		go func(i int, m *machine.Machine) {
			defer wg.Done()
			sc, err := s.Schedule(g, m)
			if err != nil {
				errs[i] = fmt.Errorf("speedup curve on %s: %w", m.Name, err)
				return
			}
			pts[i] = SpeedupPoint{PEs: m.NumPE(), Makespan: sc.Makespan(), Speedup: sc.Speedup()}
		}(i, m)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return pts, nil
}

// Compare schedules the design with every scheduler on the machine,
// one goroutine per scheduler, and returns the schedules keyed by
// algorithm name. Schedulers are deterministic and share nothing but
// the read-only graph and machine, so the concurrent result is
// identical to the sequential one.
func Compare(g *graph.Graph, m *machine.Machine) (map[string]*Schedule, error) {
	if g == nil || m == nil {
		return nil, fmt.Errorf("compare: nil graph or machine")
	}
	all := All()
	scs := make([]*Schedule, len(all))
	errs := make([]error, len(all))
	m.Topo.Precompute() // routing tables build lazily; force before sharing
	var wg sync.WaitGroup
	for i, s := range all {
		wg.Add(1)
		go func(i int, s Scheduler) {
			defer wg.Done()
			sc, err := s.Schedule(g, m)
			if err != nil {
				errs[i] = fmt.Errorf("compare %s: %w", s.Name(), err)
				return
			}
			sc.Finalize()
			scs[i] = sc
		}(i, s)
	}
	wg.Wait()
	out := map[string]*Schedule{}
	for i, s := range all {
		if errs[i] != nil {
			return nil, errs[i]
		}
		out[s.Name()] = scs[i]
	}
	return out, nil
}
