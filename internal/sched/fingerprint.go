package sched

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"hash"
	"math"

	"repro/internal/graph"
	"repro/internal/machine"
)

// Fingerprint condenses everything a scheduler's output depends on —
// the flattened task graph (ids, execution weights, routines, arcs
// with their communication weights, external bindings), the machine
// (topology adjacency, the four machine characteristics, per-PE
// speeds, reliability), and the algorithm name — into one stable hex
// key. Two submissions with equal fingerprints produce byte-identical
// schedules, so a serving control plane can cache the schedule and
// pay construction once for a stream of same-shape requests.
//
// Deliberately excluded:
//
//   - input values: same shape, different data must hit the cache —
//     that is the whole point;
//   - the schedule-construction worker count (SchedOptions.Workers):
//     it changes construction latency, never the schedule produced;
//   - display-only fields (node labels, graph and machine names):
//     they cannot influence placement, timing or outputs.
//
// Execution and communication weights are very much included: two
// graphs of identical shape but different Work or Words fields
// schedule differently and must not collide.
func Fingerprint(f *graph.Flat, m *machine.Machine, algorithm string) string {
	h := sha256.New()
	w := fpWriter{h}
	w.str(algorithm)

	g := f.Graph
	nodes := g.Nodes()
	w.num(int64(len(nodes)))
	for _, n := range nodes {
		w.str(string(n.ID))
		w.num(int64(n.Kind))
		w.num(n.Work)
		w.str(n.Routine)
	}
	arcs := g.Arcs()
	w.num(int64(len(arcs)))
	for _, a := range arcs {
		w.str(string(a.From))
		w.str(string(a.To))
		w.str(a.Var)
		w.num(a.Words)
	}
	// External bindings ride along for safety: for a valid project they
	// are implied by the routines and arcs above, but hashing them keeps
	// the key honest if flattening ever grows new degrees of freedom.
	for _, n := range nodes {
		for _, v := range f.ExternalIn[n.ID] {
			w.str(v)
		}
		w.str("|")
		for _, v := range f.ExternalOut[n.ID] {
			w.str(v)
		}
		w.str("||")
	}

	// The machine: size and adjacency (not the topology's display
	// name — two spellings of the same wiring are the same machine),
	// then the paper's four characteristics, per-PE speeds and the
	// reliability model (it sets duplicate placement and grace).
	n := m.NumPE()
	w.num(int64(n))
	for p := 0; p < n; p++ {
		for _, q := range m.Topo.Neighbors(p) {
			w.num(int64(q))
		}
		w.num(-1)
	}
	w.num(m.Params.ProcSpeed)
	w.num(int64(m.Params.TaskStartup))
	w.num(int64(m.Params.MsgStartup))
	w.num(int64(m.Params.WordTime))
	w.num(int64(len(m.Speeds)))
	for _, s := range m.Speeds {
		w.num(s)
	}
	if m.Rel != nil {
		w.f64(m.Rel.PEFail)
		w.f64(m.Rel.LinkDrop)
		w.f64(m.Rel.Grace)
	}
	return hex.EncodeToString(h.Sum(nil))
}

// fpWriter feeds length-prefixed strings and fixed-width integers into
// the hash so no two distinct field sequences share an encoding.
type fpWriter struct{ h hash.Hash }

func (w fpWriter) num(v int64) {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], uint64(v))
	w.h.Write(b[:])
}

func (w fpWriter) f64(v float64) { w.num(int64(math.Float64bits(v))) }

func (w fpWriter) str(s string) {
	w.num(int64(len(s)))
	w.h.Write([]byte(s))
}
