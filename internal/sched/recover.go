package sched

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/machine"
)

// This file implements the replanner behind every mid-run change of
// the live processor set: given which processors are (now) alive and
// which tasks' results survive on them, it maps every task whose
// results were lost (or never produced) onto the live processors,
// respecting the task graph's precedence constraints. It reuses the
// compiled graph view and the ETF selection rule of the ordinary
// schedulers, so a replan is just another (partial) schedule. The same
// algorithm serves both directions of fleet elasticity: *shrink*
// (crash recovery and graceful drain remove processors from Live) and
// *expand* (a joining worker revives processors, and queued work
// migrates onto them because the ETF rule sees their idle capacity).

// ReplanState describes the surviving state of an interrupted run at
// the epoch barrier.
type ReplanState struct {
	// Live flags each processor of the schedule's machine as alive in
	// the era being planned — which may include processors that were
	// dead (or never used) in the previous era, the expand case.
	Live []bool
	// Done maps each task whose computed outputs survive to one live
	// processor holding them (the worker-local environment acting as
	// the checkpoint). Tasks absent from Done are re-planned.
	Done map[graph.NodeID]int
}

// RecoverState is the crash-recovery name of ReplanState, kept for the
// original recovery call sites.
type RecoverState = ReplanState

// Reassignment is a replan: fresh slots for every task not in
// Done, placed on live processors only, plus the message records
// feeding them — from surviving holders (Send = 0: the data already
// exists) and between re-planned tasks. Slot and message times are
// planning estimates relative to the resume instant (t = 0); the
// runner uses them for per-PE ordering and watchdog deadlines, not as
// a wall-clock promise.
type Reassignment struct {
	Slots []Slot
	Msgs  []Msg
	// Moved lists the re-planned tasks in placement order (for
	// TaskRescheduled trace events).
	Moved []graph.NodeID
}

// Recover plans the continuation of schedule s after the processors
// with Live[pe] == false crashed: the shrink direction of Replan,
// kept under its original name for the recovery call sites.
func Recover(s *Schedule, st RecoverState) (*Reassignment, error) {
	return Replan(s, st)
}

// Replan plans the continuation of schedule s on the processor set
// st.Live — smaller than the previous era's after a crash or drain,
// larger after a join. It finalizes s (callers invoking Replan
// concurrently must finalize first). The plan is deterministic:
// identical inputs yield identical plans.
func Replan(s *Schedule, st ReplanState) (*Reassignment, error) {
	if s == nil || s.Graph == nil || s.Machine == nil {
		return nil, fmt.Errorf("sched: replan: nil schedule")
	}
	numPE := s.Machine.NumPE()
	if len(st.Live) != numPE {
		return nil, fmt.Errorf("sched: replan: %d liveness flags for %d processors", len(st.Live), numPE)
	}
	anyLive := false
	for _, l := range st.Live {
		anyLive = anyLive || l
	}
	if !anyLive {
		return nil, fmt.Errorf("sched: replan: no live processors")
	}
	for t, pe := range st.Done {
		if pe < 0 || pe >= numPE || !st.Live[pe] {
			return nil, fmt.Errorf("sched: replan: task %s held on dead or invalid PE %d", t, pe)
		}
		if s.Graph.Node(t) == nil {
			return nil, fmt.Errorf("sched: replan: unknown done task %q", t)
		}
	}
	s.Finalize()
	c, err := compiledFor(s.Graph, s.Machine)
	if err != nil {
		return nil, err
	}

	// The needed set: tasks with no surviving results.
	needed := make([]bool, c.n)
	remaining := 0
	for t := 0; t < c.n; t++ {
		if _, ok := st.Done[c.ids[t]]; !ok {
			needed[t] = true
			remaining++
		}
	}
	plan := &Reassignment{}
	if remaining == 0 {
		return plan, nil
	}

	// Pending counts over *needed* distinct predecessors only; done
	// predecessors are data sources available at t = 0.
	pending := make([]int32, c.n)
	seen := make([]int32, c.n)
	for t := int32(0); t < int32(c.n); t++ {
		if !needed[t] {
			continue
		}
		for _, a := range c.predArcsOf(t) {
			if needed[a.from] && seen[a.from] != t+1 {
				seen[a.from] = t + 1
				pending[t]++
			}
		}
	}
	var ready []int32
	for t := int32(0); t < int32(c.n); t++ {
		if needed[t] && pending[t] == 0 {
			ready = append(ready, t)
		}
	}

	newPE := make([]int, c.n)
	finish := make([]machine.Time, c.n)
	procFree := make([]machine.Time, numPE)

	// arrival returns when arc a's data can be on pe: from the holder
	// (finish 0) for surviving producers, from the re-planned copy
	// otherwise (which must already be placed).
	arrival := func(a carc, pe int) machine.Time {
		if needed[a.from] {
			return finish[a.from] + c.comm(a.words, newPE[a.from], pe)
		}
		return c.comm(a.words, st.Done[c.ids[a.from]], pe)
	}

	for remaining > 0 {
		if len(ready) == 0 {
			return nil, fmt.Errorf("sched: replan: %d tasks unreachable (cycle or inconsistent done set)", remaining)
		}
		// ETF selection over (ready task, live PE): minimise finish
		// time; ties by higher static level, then task name order,
		// then processor index.
		bestIdx, bestPE := -1, -1
		bestT := int32(-1)
		var bestStart, bestFinish machine.Time
		for i, t := range ready {
			for pe := 0; pe < numPE; pe++ {
				if !st.Live[pe] {
					continue
				}
				st0 := procFree[pe]
				for _, a := range c.predArcsOf(t) {
					if at := arrival(a, pe); at > st0 {
						st0 = at
					}
				}
				fin := st0 + c.exec(t, pe)
				better := false
				switch {
				case bestIdx < 0:
					better = true
				case fin != bestFinish:
					better = fin < bestFinish
				case c.slevel[t] != c.slevel[bestT]:
					better = c.slevel[t] > c.slevel[bestT]
				case t != bestT:
					better = c.rank[t] < c.rank[bestT]
				default:
					better = pe < bestPE
				}
				if better {
					bestIdx, bestPE, bestT, bestStart, bestFinish = i, pe, t, st0, fin
				}
			}
		}
		t := bestT
		id := c.ids[t]
		plan.Slots = append(plan.Slots, Slot{Task: id, PE: bestPE, Start: bestStart, Finish: bestFinish})
		plan.Moved = append(plan.Moved, id)
		for _, a := range c.predArcsOf(t) {
			oa := &c.arcs[a.aidx]
			var srcPE int
			var srcFinish machine.Time
			if needed[a.from] {
				srcPE, srcFinish = newPE[a.from], finish[a.from]
			} else {
				srcPE, srcFinish = st.Done[c.ids[a.from]], 0
			}
			if srcPE == bestPE {
				continue
			}
			plan.Msgs = append(plan.Msgs, Msg{
				Var: oa.Var, From: oa.From, To: id,
				FromPE: srcPE, ToPE: bestPE, Words: oa.Words,
				Send: srcFinish, Recv: srcFinish + c.comm(a.words, srcPE, bestPE),
				Hops: s.Machine.Topo.Hops(srcPE, bestPE),
			})
		}
		newPE[t], finish[t] = bestPE, bestFinish
		procFree[bestPE] = bestFinish
		// swap-remove from the pool; release successors.
		ready[bestIdx] = ready[len(ready)-1]
		ready = ready[:len(ready)-1]
		remaining--
		for _, su := range c.succIDsOf(t) {
			if !needed[su] {
				continue
			}
			pending[su]--
			if pending[su] == 0 {
				ready = append(ready, su)
			}
		}
	}
	return plan, nil
}
