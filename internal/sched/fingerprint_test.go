package sched

import (
	"fmt"
	"testing"

	"repro/internal/graph"
	"repro/internal/machine"
)

// fpDesign builds a small diamond design with real routines. The work
// and words arguments perturb one execution weight and one
// communication weight so tests can produce same-shape graphs that
// must not share a fingerprint.
func fpDesign(t *testing.T, work, words int64) *graph.Flat {
	t.Helper()
	g := graph.New("fp")
	g.MustAddStorage("IN", "x")
	a := g.MustAddTask("a", "a", work)
	a.Routine = "u = x + 1"
	b := g.MustAddTask("b", "b", 10)
	b.Routine = "v = u * 2"
	c := g.MustAddTask("c", "c", 10)
	c.Routine = "w = u + 3"
	d := g.MustAddTask("d", "d", 10)
	d.Routine = "out = v + w"
	g.MustConnect("IN", "a", "x", 1)
	g.MustConnect("a", "b", "u", words)
	g.MustConnect("a", "c", "u", 1)
	g.MustConnect("b", "d", "v", 1)
	g.MustConnect("c", "d", "w", 1)
	g.MustAddStorage("OUT", "out")
	g.MustConnect("d", "OUT", "out", 1)
	flat, err := g.Flatten()
	if err != nil {
		t.Fatal(err)
	}
	return flat
}

func fpMachine(t *testing.T, spec string, params machine.Params) *machine.Machine {
	t.Helper()
	topo, err := machine.ParseTopology(spec)
	if err != nil {
		t.Fatal(err)
	}
	m, err := machine.New(spec, topo, params)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestFingerprintStable(t *testing.T) {
	params := machine.Params{ProcSpeed: 1, TaskStartup: 1, MsgStartup: 5, WordTime: 1}
	a := Fingerprint(fpDesign(t, 10, 1), fpMachine(t, "hypercube:2", params), "etf")
	b := Fingerprint(fpDesign(t, 10, 1), fpMachine(t, "hypercube:2", params), "etf")
	if a != b {
		t.Fatalf("same design, machine and algorithm fingerprinted differently:\n%s\n%s", a, b)
	}
	if len(a) != 64 {
		t.Fatalf("fingerprint is not a sha256 hex string: %q", a)
	}
}

// TestFingerprintWeightSensitivity pins the cache-collision contract:
// graphs of identical shape but different execution or communication
// weights schedule differently and must produce different keys.
func TestFingerprintWeightSensitivity(t *testing.T) {
	params := machine.Params{ProcSpeed: 1, TaskStartup: 1, MsgStartup: 5, WordTime: 1}
	m := func() *machine.Machine { return fpMachine(t, "hypercube:2", params) }
	base := Fingerprint(fpDesign(t, 10, 1), m(), "etf")

	if got := Fingerprint(fpDesign(t, 11, 1), m(), "etf"); got == base {
		t.Error("changing a task's execution weight did not change the fingerprint")
	}
	if got := Fingerprint(fpDesign(t, 10, 9), m(), "etf"); got == base {
		t.Error("changing an arc's word count did not change the fingerprint")
	}
	if got := Fingerprint(fpDesign(t, 10, 1), m(), "mh"); got == base {
		t.Error("changing the algorithm did not change the fingerprint")
	}
}

func TestFingerprintMachineSensitivity(t *testing.T) {
	flat := fpDesign(t, 10, 1)
	params := machine.Params{ProcSpeed: 1, TaskStartup: 1, MsgStartup: 5, WordTime: 1}
	base := Fingerprint(flat, fpMachine(t, "hypercube:2", params), "etf")

	if got := Fingerprint(flat, fpMachine(t, "hypercube:3", params), "etf"); got == base {
		t.Error("changing the machine size did not change the fingerprint")
	}
	if got := Fingerprint(flat, fpMachine(t, "star:4", params), "etf"); got == base {
		t.Error("changing the topology wiring did not change the fingerprint")
	}
	slow := params
	slow.MsgStartup = 50
	if got := Fingerprint(flat, fpMachine(t, "hypercube:2", slow), "etf"); got == base {
		t.Error("changing a machine characteristic did not change the fingerprint")
	}
	rel := fpMachine(t, "hypercube:2", params)
	rel.Rel = &machine.Reliability{PEFail: 0.1}
	if got := Fingerprint(flat, rel, "etf"); got == base {
		t.Error("adding a reliability model did not change the fingerprint")
	}
}

// TestFingerprintNameInsensitivity: display-only names do not reach the
// key — the same wiring under a different label is the same machine.
func TestFingerprintNameInsensitivity(t *testing.T) {
	flat := fpDesign(t, 10, 1)
	params := machine.Params{ProcSpeed: 1, TaskStartup: 1, MsgStartup: 5, WordTime: 1}
	topo, err := machine.ParseTopology("hypercube:2")
	if err != nil {
		t.Fatal(err)
	}
	m1, err := machine.New("production-cube", topo, params)
	if err != nil {
		t.Fatal(err)
	}
	m2, err := machine.New("staging-cube", topo, params)
	if err != nil {
		t.Fatal(err)
	}
	if Fingerprint(flat, m1, "etf") != Fingerprint(flat, m2, "etf") {
		t.Error("machine display name leaked into the fingerprint")
	}
}

// TestFingerprintMatchesScheduleEquality is the end-to-end guarantee:
// equal fingerprints really do mean byte-identical schedules.
func TestFingerprintMatchesScheduleEquality(t *testing.T) {
	params := machine.Params{ProcSpeed: 1, TaskStartup: 1, MsgStartup: 5, WordTime: 1}
	for _, alg := range []string{"etf", "mh"} {
		flatA, flatB := fpDesign(t, 10, 1), fpDesign(t, 10, 1)
		mA, mB := fpMachine(t, "hypercube:2", params), fpMachine(t, "hypercube:2", params)
		if Fingerprint(flatA, mA, alg) != Fingerprint(flatB, mB, alg) {
			t.Fatalf("%s: equal submissions got different fingerprints", alg)
		}
		s, err := ByName(alg)
		if err != nil {
			t.Fatal(err)
		}
		scA, err := s.Schedule(flatA.Graph, mA)
		if err != nil {
			t.Fatal(err)
		}
		scB, err := s.Schedule(flatB.Graph, mB)
		if err != nil {
			t.Fatal(err)
		}
		if fmt.Sprintf("%v%v", scA.Slots, scA.Msgs) != fmt.Sprintf("%v%v", scB.Slots, scB.Msgs) {
			t.Errorf("%s: equal fingerprints produced different schedules", alg)
		}
	}
}
