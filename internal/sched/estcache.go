package sched

import "repro/internal/machine"

// estCache is the incremental earliest-start-time cache behind
// builder.est. It memoizes the data-ready time of every (task, pe)
// pair — the max over predecessor arcs of the best copy's arrival —
// which is the expensive part of an EST query: the greedy schedulers
// re-evaluate every (ready task, pe) pair each step, but placing one
// task only changes the data-ready time of its direct successors
// (their producer gained a copy). Processor availability is NOT part
// of the cached value; est applies procFree live, so advancing a PE's
// procFree needs no invalidation at all.
//
// Invalidation is by version counter: entry (t, pe) is valid iff
// ver[t*P+pe] == taskVer[t], and placing a copy of any task bumps
// taskVer of its successors. taskVer starts at 1 with ver zeroed so
// every entry begins invalid.
type estCache struct {
	pes     int
	arr     []machine.Time // n×P cached data-ready times
	ver     []uint32       // n×P version an entry was computed at
	taskVer []uint32       // per-task current version
}

// newEstCache carves the cache from the run's arena. arr is carved
// dirty: an entry is only read when its version stamp matches, and the
// stamp arrays are zeroed/refilled here.
func newEstCache(n, pes int, ar *arena) estCache {
	e := estCache{
		pes:     pes,
		arr:     ar.times(n*pes, false),
		ver:     ar.uint32s(n*pes, true),
		taskVer: ar.uint32s(n, false),
	}
	for i := range e.taskVer {
		e.taskVer[i] = 1
	}
	return e
}

// invalidate drops every cached entry of task t (all PEs at once).
func (e *estCache) invalidate(t int32) { e.taskVer[t]++ }

// dataReadyRow returns task t's data-ready times on every processor as
// a shared slice of the cache (read-only to callers), recomputing the
// row arc-major on a version miss: one pass over the predecessor arcs
// fills all P entries, so each arc and producer copy is loaded once
// instead of once per processor. The schedulers that always evaluate a
// task on every PE (HLFET, ETF, BSP) use this; the per-entry dataReady
// below stays for selective callers. Parallel scans may call it for
// distinct tasks concurrently — rows are disjoint — but never for the
// same task from two workers.
func (b *builder) dataReadyRow(t int32) ([]machine.Time, error) {
	e := &b.cache
	base := int(t) * e.pes
	row := e.arr[base : base+e.pes]
	vrow := e.ver[base : base+e.pes]
	tv := e.taskVer[t]
	fresh := true
	for _, v := range vrow {
		if v != tv {
			fresh = false
			break
		}
	}
	if fresh {
		return row, nil
	}
	for i := range row {
		row[i] = 0
	}
	for _, a := range b.c.predArcsOf(t) {
		cps := b.copies[a.from]
		if len(cps) == 0 {
			return nil, errProducerNotPlaced(b.c.arcs[a.aidx])
		}
		if len(cps) == 1 {
			// No duplicates (the common case): inline the comm formula
			// over the producer PE's coefficient row.
			sl := cps[0]
			w := machine.Time(a.words)
			pw := b.c.commPerWord[sl.PE*e.pes : (sl.PE+1)*e.pes]
			for pe := range row {
				at := sl.Finish
				if pe != sl.PE {
					at += b.c.commStart + w*pw[pe]
				}
				if at > row[pe] {
					row[pe] = at
				}
			}
		} else {
			for pe := range row {
				at, _, err := b.arrival(a, pe)
				if err != nil {
					return nil, err
				}
				if at > row[pe] {
					row[pe] = at
				}
			}
		}
	}
	for i := range vrow {
		vrow[i] = tv
	}
	return row, nil
}

// dataReady returns the earliest time all of t's inputs can be present
// on pe (0 for entry tasks), from the cache when the entry is current.
func (b *builder) dataReady(t int32, pe int) (machine.Time, error) {
	i := int(t)*b.cache.pes + pe
	if b.cache.ver[i] == b.cache.taskVer[t] {
		return b.cache.arr[i], nil
	}
	var ready machine.Time
	for _, a := range b.c.predArcsOf(t) {
		at, _, err := b.arrival(a, pe)
		if err != nil {
			return 0, err
		}
		if at > ready {
			ready = at
		}
	}
	b.cache.arr[i] = ready
	b.cache.ver[i] = b.cache.taskVer[t]
	return ready, nil
}
