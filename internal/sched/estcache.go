package sched

import "repro/internal/machine"

// estCache is the incremental earliest-start-time cache behind
// builder.est. It memoizes the data-ready time of every (task, pe)
// pair — the max over predecessor arcs of the best copy's arrival —
// which is the expensive part of an EST query: the greedy schedulers
// re-evaluate every (ready task, pe) pair each step, but placing one
// task only changes the data-ready time of its direct successors
// (their producer gained a copy). Processor availability is NOT part
// of the cached value; est applies procFree live, so advancing a PE's
// procFree needs no invalidation at all.
//
// Invalidation is by version counter: entry (t, pe) is valid iff
// ver[t*P+pe] == taskVer[t], and placing a copy of any task bumps
// taskVer of its successors. taskVer starts at 1 with ver zeroed so
// every entry begins invalid.
type estCache struct {
	pes     int
	arr     []machine.Time // n×P cached data-ready times
	ver     []uint32       // n×P version an entry was computed at
	taskVer []uint32       // per-task current version
}

func newEstCache(n, pes int) estCache {
	e := estCache{
		pes:     pes,
		arr:     make([]machine.Time, n*pes),
		ver:     make([]uint32, n*pes),
		taskVer: make([]uint32, n),
	}
	for i := range e.taskVer {
		e.taskVer[i] = 1
	}
	return e
}

// invalidate drops every cached entry of task t (all PEs at once).
func (e *estCache) invalidate(t int32) { e.taskVer[t]++ }

// dataReady returns the earliest time all of t's inputs can be present
// on pe (0 for entry tasks), from the cache when the entry is current.
func (b *builder) dataReady(t int32, pe int) (machine.Time, error) {
	i := int(t)*b.cache.pes + pe
	if b.cache.ver[i] == b.cache.taskVer[t] {
		return b.cache.arr[i], nil
	}
	var ready machine.Time
	for _, a := range b.c.predArcsOf(t) {
		at, _, err := b.arrival(a, pe)
		if err != nil {
			return 0, err
		}
		if at > ready {
			ready = at
		}
	}
	b.cache.arr[i] = ready
	b.cache.ver[i] = b.cache.taskVer[t]
	return ready, nil
}
