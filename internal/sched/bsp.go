package sched

import (
	"repro/internal/graph"
	"repro/internal/machine"
)

// BSP schedules the DAG in bulk-synchronous supersteps, after Papp,
// Anegg & Yzelman ("DAG Scheduling in the BSP Model"). The graph is
// partitioned into levels — superstep k holds the tasks whose longest
// predecessor chain has k arcs — and a communication barrier separates
// consecutive supersteps: no task of superstep k+1 starts before every
// task of superstep k has finished. Within a superstep tasks are
// assigned greedily in static-priority order (highest static level
// first, as HLFET) to the processor where they finish earliest.
//
// The BSP cost model makes the batch structure explicit: a superstep
// costs max(w_i) + h·g + L — the slowest processor's computation, the
// largest communication fan h times per-word gain g, and the barrier
// latency L. Here computation and communication times come from the
// machine model (ExecTime / CommTime) and the barrier is the max
// finish of the superstep, so the produced schedule stays valid under
// Schedule.Validate's lower-bound checks.
//
// The level batches are what makes parallel construction scale: every
// task in a superstep has all producers placed before the superstep
// starts, so their data-ready times are evaluated concurrently (the
// warm phase below) with no cross-task ordering, and only the cheap
// greedy assignment runs serially.
type BSP struct {
	Opts SchedOptions
}

// Name implements Scheduler.
func (BSP) Name() string { return "bsp" }

// Schedule implements Scheduler.
func (s BSP) Schedule(g *graph.Graph, m *machine.Machine) (*Schedule, error) {
	b, err := newBuilder(g, m, s.Opts)
	if err != nil {
		return nil, err
	}
	defer b.release()
	c := b.c

	// Level of each task: length of its longest predecessor chain,
	// computed over the topological order.
	level := b.ar.int32s(c.n, true)
	maxLevel := int32(0)
	for _, t := range c.topo {
		for _, a := range c.predArcsOf(t) {
			if level[a.from]+1 > level[t] {
				level[t] = level[a.from] + 1
			}
		}
		if level[t] > maxLevel {
			maxLevel = level[t]
		}
	}

	// Bucket tasks by level (CSR), then order each superstep by the
	// static priority HLFET uses: higher static level first, ties by
	// NodeID order.
	off := b.ar.int32s(int(maxLevel)+2, true)
	for t := 0; t < c.n; t++ {
		off[level[t]+1]++
	}
	for l := int32(0); l <= maxLevel; l++ {
		off[l+1] += off[l]
	}
	byLevel := b.ar.int32s(c.n, false)
	fill := b.ar.int32s(int(maxLevel)+1, true)
	for t := int32(0); t < int32(c.n); t++ {
		l := level[t]
		byLevel[off[l]+fill[l]] = t
		fill[l]++
	}
	for l := int32(0); l <= maxLevel; l++ {
		row := byLevel[off[l]:off[l+1]]
		sortInt32(row, func(a, x int32) bool {
			if c.slevel[a] != c.slevel[x] {
				return c.slevel[a] > c.slevel[x]
			}
			return c.rank[a] < c.rank[x]
		})
	}

	w := b.scanWorkers()
	errs := make([]error, w)
	var barrier machine.Time
	for l := int32(0); l <= maxLevel; l++ {
		tasks := byLevel[off[l]:off[l+1]]

		// Warm phase: every producer of this superstep was placed in an
		// earlier one, so all (task, pe) data-ready times are fixed and
		// evaluate concurrently. Placements within the superstep cannot
		// invalidate them (an arc between two tasks would put them in
		// different levels), so the serial assignment below hits the
		// cache. Semantically a no-op — the warm phase only fills the
		// cache the assignment would fill on demand — which is why the
		// parallel and serial paths are trivially byte-identical.
		b.parScan(len(tasks), func(wk, lo, hi int) {
			for i := lo; i < hi; i++ {
				if _, err := b.dataReadyRow(tasks[i]); err != nil {
					errs[wk] = err
					return
				}
			}
		})
		for wk := 0; wk < w; wk++ {
			if errs[wk] != nil {
				return nil, errs[wk]
			}
		}

		// Greedy assignment in priority order: earliest finish under
		// the barrier, ties to the lowest processor.
		levelEnd := barrier
		for _, t := range tasks {
			row, err := b.dataReadyRow(t) // warm: filled by the scan above
			if err != nil {
				return nil, err
			}
			best := cand{}
			for pe := 0; pe < c.pes; pe++ {
				st := row[pe]
				if pf := b.procFree[pe]; pf > st {
					st = pf
				}
				if barrier > st {
					st = barrier
				}
				fin := st + c.exec(t, pe)
				if betterPE(best.ok, best.fin, best.pe, fin, pe) {
					best = cand{ok: true, t: t, pe: pe, st: st, fin: fin}
				}
			}
			if _, err := b.place(t, best.pe, best.st, false); err != nil {
				return nil, err
			}
			if best.fin > levelEnd {
				levelEnd = best.fin
			}
		}
		barrier = levelEnd
	}
	return b.finish("bsp"), nil
}
