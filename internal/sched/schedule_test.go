package sched

import (
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/graph"
	"repro/internal/machine"
)

// mk builds a machine over the given topology spec with the given
// params, failing the test on error.
func mk(t *testing.T, spec string, p machine.Params) *machine.Machine {
	t.Helper()
	topo, err := machine.ParseTopology(spec)
	if err != nil {
		t.Fatal(err)
	}
	m, err := machine.New(spec, topo, p)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func cheapComm() machine.Params {
	return machine.Params{ProcSpeed: 1, TaskStartup: 0, MsgStartup: 1, WordTime: 0}
}

func costlyComm() machine.Params {
	return machine.Params{ProcSpeed: 1, TaskStartup: 0, MsgStartup: 5, WordTime: 1}
}

func TestScheduleMetricsHandBuilt(t *testing.T) {
	g := graph.Chain(2, 10, 4)
	m := mk(t, "full:2", costlyComm())
	s := &Schedule{
		Graph: g, Machine: m, Algorithm: "hand",
		Slots: []Slot{
			{Task: "t0", PE: 0, Start: 0, Finish: 10},
			{Task: "t1", PE: 1, Start: 19, Finish: 29}, // 10 + comm(4 words,1 hop)=10+5+4=19
		},
		Msgs: []Msg{{Var: "v1", From: "t0", To: "t1", FromPE: 0, ToPE: 1, Words: 4, Send: 10, Recv: 19, Hops: 1}},
	}
	if err := s.Validate(); err != nil {
		t.Fatalf("valid schedule rejected: %v", err)
	}
	if got := s.Makespan(); got != 29 {
		t.Errorf("Makespan = %v", got)
	}
	if got := s.SerialTime(); got != 20 {
		t.Errorf("SerialTime = %v", got)
	}
	if got := s.Speedup(); got < 0.68 || got > 0.70 {
		t.Errorf("Speedup = %f", got)
	}
	if got := s.UsedPEs(); got != 2 {
		t.Errorf("UsedPEs = %d", got)
	}
	if got := s.BusyTime(0); got != 10 {
		t.Errorf("BusyTime(0) = %v", got)
	}
	msgs, words := s.CommVolume()
	if msgs != 1 || words != 4 {
		t.Errorf("CommVolume = %d, %d", msgs, words)
	}
	if u := s.Utilization(); u <= 0 || u > 1 {
		t.Errorf("Utilization = %f", u)
	}
	if str := s.String(); !strings.Contains(str, "hand") || !strings.Contains(str, "makespan") {
		t.Errorf("String = %q", str)
	}
}

func TestValidateCatchesOverlap(t *testing.T) {
	g := graph.New("g")
	g.MustAddTask("a", "", 10)
	g.MustAddTask("b", "", 10)
	m := mk(t, "full:2", cheapComm())
	s := &Schedule{Graph: g, Machine: m,
		Slots: []Slot{
			{Task: "a", PE: 0, Start: 0, Finish: 10},
			{Task: "b", PE: 0, Start: 5, Finish: 15},
		}}
	if err := s.Validate(); err == nil {
		t.Fatal("overlapping slots accepted")
	}
}

func TestValidateCatchesPrecedenceViolation(t *testing.T) {
	g := graph.Chain(2, 10, 0)
	m := mk(t, "full:2", cheapComm())
	s := &Schedule{Graph: g, Machine: m,
		Slots: []Slot{
			{Task: "t0", PE: 0, Start: 0, Finish: 10},
			{Task: "t1", PE: 0, Start: 5, Finish: 15},
		}}
	err := s.Validate()
	if err == nil {
		t.Fatal("precedence violation accepted")
	}
}

func TestValidateCatchesMissingCommDelay(t *testing.T) {
	g := graph.Chain(2, 10, 8)
	m := mk(t, "full:2", costlyComm()) // comm for 8 words = 5+8 = 13
	s := &Schedule{Graph: g, Machine: m,
		Slots: []Slot{
			{Task: "t0", PE: 0, Start: 0, Finish: 10},
			{Task: "t1", PE: 1, Start: 12, Finish: 22}, // too early: needs >= 23
		}}
	if err := s.Validate(); err == nil {
		t.Fatal("communication delay violation accepted")
	}
}

func TestValidateCatchesWrongDuration(t *testing.T) {
	g := graph.New("g")
	g.MustAddTask("a", "", 10)
	m := mk(t, "full:1", cheapComm())
	s := &Schedule{Graph: g, Machine: m,
		Slots: []Slot{{Task: "a", PE: 0, Start: 0, Finish: 99}}}
	if err := s.Validate(); err == nil {
		t.Fatal("wrong duration accepted")
	}
}

func TestValidateCatchesMissingAndDuplicatePrimary(t *testing.T) {
	g := graph.New("g")
	g.MustAddTask("a", "", 10)
	g.MustAddTask("b", "", 10)
	m := mk(t, "full:2", cheapComm())
	missing := &Schedule{Graph: g, Machine: m,
		Slots: []Slot{{Task: "a", PE: 0, Start: 0, Finish: 10}}}
	if err := missing.Validate(); err == nil {
		t.Error("unscheduled task accepted")
	}
	double := &Schedule{Graph: g, Machine: m,
		Slots: []Slot{
			{Task: "a", PE: 0, Start: 0, Finish: 10},
			{Task: "a", PE: 1, Start: 0, Finish: 10},
			{Task: "b", PE: 1, Start: 10, Finish: 20},
		}}
	if err := double.Validate(); err == nil {
		t.Error("two primary slots accepted")
	}
}

func TestValidateAcceptsDuplicates(t *testing.T) {
	g := graph.Chain(2, 10, 8)
	m := mk(t, "full:2", costlyComm())
	s := &Schedule{Graph: g, Machine: m,
		Slots: []Slot{
			{Task: "t0", PE: 0, Start: 0, Finish: 10},
			{Task: "t0", PE: 1, Start: 0, Finish: 10, Dup: true},
			{Task: "t1", PE: 1, Start: 10, Finish: 20}, // fed by the co-located dup
		}}
	if err := s.Validate(); err != nil {
		t.Fatalf("duplicate-based schedule rejected: %v", err)
	}
}

func TestValidateCatchesBadPEAndUnknownTask(t *testing.T) {
	g := graph.New("g")
	g.MustAddTask("a", "", 10)
	m := mk(t, "full:1", cheapComm())
	s := &Schedule{Graph: g, Machine: m,
		Slots: []Slot{
			{Task: "a", PE: 5, Start: 0, Finish: 10},
			{Task: "ghost", PE: 0, Start: 0, Finish: 1},
		}}
	err := s.Validate()
	if err == nil {
		t.Fatal("bad PE / unknown task accepted")
	}
	if !strings.Contains(err.Error(), "invalid PE") || !strings.Contains(err.Error(), "unknown task") {
		t.Errorf("error lacks detail: %v", err)
	}
}

func TestValidateCatchesLyingMessage(t *testing.T) {
	g := graph.Chain(2, 10, 8)
	m := mk(t, "full:2", costlyComm())
	s := &Schedule{Graph: g, Machine: m,
		Slots: []Slot{
			{Task: "t0", PE: 0, Start: 0, Finish: 10},
			{Task: "t1", PE: 1, Start: 23, Finish: 33},
		},
		Msgs: []Msg{{From: "t0", To: "t1", FromPE: 0, ToPE: 1, Words: 8, Send: 10, Recv: 11}}}
	if err := s.Validate(); err == nil {
		t.Fatal("message faster than the model accepted")
	}
}

func TestPrimarySlotAndPESlots(t *testing.T) {
	g := graph.Chain(2, 10, 0)
	m := mk(t, "full:2", cheapComm())
	s := &Schedule{Graph: g, Machine: m,
		Slots: []Slot{
			{Task: "t1", PE: 0, Start: 10, Finish: 20},
			{Task: "t0", PE: 0, Start: 0, Finish: 10},
			{Task: "t0", PE: 1, Start: 0, Finish: 10, Dup: true},
		}}
	p, ok := s.PrimarySlot("t0")
	if !ok || p.PE != 0 {
		t.Errorf("PrimarySlot(t0) = %+v, %v", p, ok)
	}
	if _, ok := s.PrimarySlot("nosuch"); ok {
		t.Error("PrimarySlot of unknown task returned ok")
	}
	pes := s.PESlots(0)
	if len(pes) != 2 || pes[0].Task != "t0" || pes[1].Task != "t1" {
		t.Errorf("PESlots(0) = %v", pes)
	}
	if n := len(s.SlotsFor("t0")); n != 2 {
		t.Errorf("SlotsFor(t0) = %d slots", n)
	}
}

func TestScheduleJSONRoundTrip(t *testing.T) {
	g := graph.GE(4, 5, 10, 3)
	m := mk(t, "hypercube:2", costlyComm())
	orig, err := DSH{}.Schedule(g, m) // includes duplicates sometimes
	if err != nil {
		t.Fatal(err)
	}
	data, err := json.Marshal(orig)
	if err != nil {
		t.Fatal(err)
	}
	var back Schedule
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Algorithm != orig.Algorithm || back.Makespan() != orig.Makespan() {
		t.Errorf("round trip changed schedule: %v vs %v", back.Makespan(), orig.Makespan())
	}
	if len(back.Slots) != len(orig.Slots) || len(back.Msgs) != len(orig.Msgs) {
		t.Errorf("slots/msgs lost: %d/%d vs %d/%d",
			len(back.Slots), len(back.Msgs), len(orig.Slots), len(orig.Msgs))
	}
	if err := back.Validate(); err != nil {
		t.Errorf("loaded schedule invalid: %v", err)
	}
}

func TestScheduleJSONRejectsTampering(t *testing.T) {
	g := graph.Chain(2, 10, 4)
	m := mk(t, "full:2", costlyComm())
	orig, err := ETF{}.Schedule(g, m)
	if err != nil {
		t.Fatal(err)
	}
	data, err := json.Marshal(orig)
	if err != nil {
		t.Fatal(err)
	}
	// Shift a slot to violate precedence.
	tampered := strings.Replace(string(data), `"start_us":0`, `"start_us":999`, 1)
	var back Schedule
	if err := json.Unmarshal([]byte(tampered), &back); err == nil {
		t.Error("tampered schedule accepted")
	}
	var empty Schedule
	if err := json.Unmarshal([]byte(`{"algorithm":"x"}`), &empty); err == nil {
		t.Error("schedule without graph accepted")
	}
}
