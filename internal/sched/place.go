package sched

import "sort"

// This file places a schedule's processors onto worker processes. The
// distributed coordinator historically cut the processor range into
// contiguous blocks; that keeps per-worker counts balanced but ignores
// where the schedule's messages actually flow, and cross-worker bytes
// are the term that dominates distributed wall time. Place keeps the
// contiguous partition's per-worker quotas (so load stays balanced the
// same way) but chooses *which* processors share a worker by the
// schedule's per-pair traffic matrix, and is deterministic so the
// conformance harness stays reproducible.

// Place maps each processor of the finalized schedule onto one of
// `workers` worker processes and returns the peerOf vector
// (peerOf[pe] = worker index). Per-worker processor counts equal the
// contiguous partition's quotas; within those quotas a greedy
// affinity pass (heaviest-traffic processors first, joining the worker
// they already exchange the most words with) followed by a bounded
// pairwise-swap refinement minimizes cross-worker words. The result is
// never worse than the contiguous partition — both candidates are
// refined and the cheaper one wins, contiguous only on a strict win —
// and identical inputs yield identical placements.
func Place(s *Schedule, workers int) []int {
	numPE := s.Machine.NumPE()
	if workers > numPE {
		workers = numPE
	}
	if workers < 1 {
		workers = 1
	}
	s.Finalize()

	quota := make([]int, workers)
	base, rem := numPE/workers, numPE%workers
	for w := range quota {
		quota[w] = base
		if w < rem {
			quota[w]++
		}
	}

	// Candidate 1: the contiguous partition, refined.
	contig := make([]int, numPE)
	pe := 0
	for w := 0; w < workers; w++ {
		for k := 0; k < quota[w]; k++ {
			contig[pe] = w
			pe++
		}
	}
	refine(s, contig, workers)

	// Candidate 2: greedy affinity, refined. Heavy processors place
	// first so their edges anchor the clusters.
	order := make([]int, numPE)
	for i := range order {
		order[i] = i
	}
	weight := make([]int64, numPE)
	for i := 0; i < numPE; i++ {
		for j := 0; j < numPE; j++ {
			if i != j {
				weight[i] += s.PairTraffic(i, j) + s.PairTraffic(j, i)
			}
		}
	}
	sort.SliceStable(order, func(a, b int) bool {
		if weight[order[a]] != weight[order[b]] {
			return weight[order[a]] > weight[order[b]]
		}
		return order[a] < order[b]
	})
	greedy := make([]int, numPE)
	for i := range greedy {
		greedy[i] = -1
	}
	left := append([]int(nil), quota...)
	for _, p := range order {
		bestW, bestAff := -1, int64(-1)
		for w := 0; w < workers; w++ {
			if left[w] == 0 {
				continue
			}
			aff := int64(0)
			for q := 0; q < numPE; q++ {
				if greedy[q] == w {
					aff += s.PairTraffic(p, q) + s.PairTraffic(q, p)
				}
			}
			if aff > bestAff {
				bestW, bestAff = w, aff
			}
		}
		greedy[p] = bestW
		left[bestW]--
	}
	refine(s, greedy, workers)

	if CrossWorkerWords(s, contig) < CrossWorkerWords(s, greedy) {
		return contig
	}
	return greedy
}

// refine runs deterministic first-improvement swap passes over the
// placement: any pair of processors on different workers whose swap
// strictly reduces cross-worker words is swapped. Quotas are preserved
// by construction (a swap never changes per-worker counts). Passes are
// bounded; each full no-improvement scan terminates early.
func refine(s *Schedule, peerOf []int, workers int) {
	numPE := len(peerOf)
	for pass := 0; pass < 8; pass++ {
		improved := false
		for i := 0; i < numPE; i++ {
			for j := i + 1; j < numPE; j++ {
				if peerOf[i] == peerOf[j] {
					continue
				}
				if swapGain(s, peerOf, i, j) > 0 {
					peerOf[i], peerOf[j] = peerOf[j], peerOf[i]
					improved = true
				}
			}
		}
		if !improved {
			return
		}
	}
}

// swapGain returns the cross-worker words saved by swapping the worker
// assignments of processors i and j (positive = the swap helps). Only
// edges incident to i or j change, so the delta is O(numPE).
func swapGain(s *Schedule, peerOf []int, i, j int) int64 {
	cost := func(p, wp int) int64 {
		var c int64
		for q := 0; q < len(peerOf); q++ {
			if q == i || q == j {
				continue
			}
			if peerOf[q] != wp {
				c += s.PairTraffic(p, q) + s.PairTraffic(q, p)
			}
		}
		return c
	}
	wi, wj := peerOf[i], peerOf[j]
	before := cost(i, wi) + cost(j, wj)
	after := cost(i, wj) + cost(j, wi)
	// The i<->j edge itself crosses workers either way; it cancels.
	return before - after
}

// CrossWorkerWords totals the schedule's message words whose endpoints
// the peerOf vector places on different workers: the quantity Place
// minimizes and the figure placement tests assert on.
func CrossWorkerWords(s *Schedule, peerOf []int) int64 {
	var words int64
	n := len(peerOf)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if peerOf[i] != peerOf[j] {
				words += s.PairTraffic(i, j)
			}
		}
	}
	return words
}
