// Package sched implements the PPSE scheduling heuristics Banger uses
// to map a flattened PITL task graph onto a target machine, and the
// Schedule type (a Gantt chart plus message events) they produce.
//
// Implemented schedulers:
//
//   - Serial: every task on PE 0 (the speedup baseline).
//   - HLFET: highest level first with estimated times (Adam/Chandy/
//     Dickson) — static priority list scheduling.
//   - ETF: earliest task first (Hwang et al.) — dynamic greedy choice
//     of the (task, processor) pair that can start soonest.
//   - MH: the mapping heuristic of El-Rewini & Lewis (JPDC 1990), the
//     scheduler the paper's reference [1] names — ETF-style selection
//     with hop-by-hop message routing and per-link contention.
//   - DSH: Kruatrachue's duplication scheduling heuristic — list
//     scheduling that copies critical ancestors onto a processor to
//     erase communication delays.
//   - Pack: grain packing by linear clustering — chains of heavy
//     communication are merged into grains, grains are load-balanced
//     across processors, then times are assigned ETF-style.
//   - BSP: bulk-synchronous superstep scheduling (after Papp, Anegg &
//     Yzelman) — precedence levels become supersteps separated by
//     barriers, trading schedule length for batch-parallel
//     construction.
//
// Schedule construction is itself parallel: the candidate scans of the
// list schedulers shard across a worker pool (SchedOptions.Workers,
// see WithWorkers) with per-worker scratch carved from a pooled arena,
// and the reduction is deterministic — the parallel path is
// byte-identical to the serial one.
package sched

import (
	"errors"
	"fmt"
	"sync/atomic"

	"repro/internal/graph"
	"repro/internal/machine"
)

// Slot is one task occurrence on a processor: one bar of a Gantt chart.
type Slot struct {
	Task   graph.NodeID
	PE     int
	Start  machine.Time
	Finish machine.Time
	// Dup marks duplicated copies inserted by DSH; every task has
	// exactly one slot with Dup == false.
	Dup bool
}

// Msg is one inter-processor message: data for variable Var produced by
// task From (on FromPE) and consumed by task To (on ToPE). Send is when
// the message leaves the producer, Recv when the consumer may use it.
type Msg struct {
	Var    string
	From   graph.NodeID
	To     graph.NodeID
	FromPE int
	ToPE   int
	Words  int64
	Send   machine.Time
	Recv   machine.Time
	Hops   int
}

// Schedule is the result of mapping a flat task graph onto a machine.
// Schedules are finalized by construction: every scheduler assembles
// slots in a private builder and creates the Schedule exactly once, so
// the derived views in idx never go stale. Mutating Slots or Msgs after
// any accessor has been called yields stale answers.
type Schedule struct {
	Graph     *graph.Graph // the flattened task graph that was scheduled
	Machine   *machine.Machine
	Algorithm string
	Slots     []Slot
	Msgs      []Msg

	idx atomic.Pointer[Index] // lazily-built derived views; see index.go
}

// Finalize builds the schedule's derived views eagerly, so later
// accessor calls are pure loads. The lazy build is itself safe under
// concurrent first use (see index.go) — Finalize is an optimization,
// not a synchronization requirement.
func (s *Schedule) Finalize() { s.index() }

// Makespan returns the finish time of the last slot (0 for an empty
// schedule).
func (s *Schedule) Makespan() machine.Time {
	return s.index().makespan
}

// SlotsFor returns every slot (primary and duplicates) of the task.
// The returned slice is shared with the schedule's index; callers must
// not modify it.
func (s *Schedule) SlotsFor(t graph.NodeID) []Slot {
	return s.index().byTask[t]
}

// PrimarySlot returns the non-duplicate slot of the task, or false.
func (s *Schedule) PrimarySlot(t graph.NodeID) (Slot, bool) {
	sl, ok := s.index().primary[t]
	return sl, ok
}

// PESlots returns the slots on processor pe sorted by start time. The
// returned slice is shared with the schedule's index; callers must not
// modify it.
func (s *Schedule) PESlots(pe int) []Slot {
	idx := s.index()
	if pe < 0 || pe >= len(idx.byPE) {
		return nil
	}
	return idx.byPE[pe]
}

// BusyTime returns the total busy time of processor pe.
func (s *Schedule) BusyTime(pe int) machine.Time {
	idx := s.index()
	if pe < 0 || pe >= len(idx.busy) {
		return 0
	}
	return idx.busy[pe]
}

// OutTraffic returns the cross-processor messages processor pe
// originates and the words they carry.
func (s *Schedule) OutTraffic(pe int) (msgs int, words int64) {
	idx := s.index()
	if pe < 0 || pe >= len(idx.msgsOut) {
		return 0, 0
	}
	return idx.msgsOut[pe], idx.wordsOut[pe]
}

// PairTraffic returns the words the schedule sends from processor
// `from` to processor `to` (0 when either index is out of range or the
// processors are the same). Placement uses it to keep heavy edges
// inside one worker process.
func (s *Schedule) PairTraffic(from, to int) int64 {
	idx := s.index()
	n := len(idx.busy)
	if from < 0 || from >= n || to < 0 || to >= n {
		return 0
	}
	return idx.pair[from*n+to]
}

// UsedPEs returns how many processors run at least one slot.
func (s *Schedule) UsedPEs() int {
	return s.index().usedPEs
}

// SerialTime returns the time the design needs on one processor of this
// machine: per-task startup plus all work at PE 0's speed, no
// communication (co-located data is free).
func (s *Schedule) SerialTime() machine.Time {
	var total machine.Time
	for _, n := range s.Graph.Tasks() {
		total += s.Machine.ExecTime(n.Work, 0)
	}
	return total
}

// Speedup returns SerialTime/Makespan, the paper's speedup-prediction
// metric (Figure 3's right-hand chart).
func (s *Schedule) Speedup() float64 {
	mk := s.Makespan()
	if mk == 0 {
		return 1
	}
	return float64(s.SerialTime()) / float64(mk)
}

// Efficiency returns Speedup divided by the number of processors.
func (s *Schedule) Efficiency() float64 {
	return s.Speedup() / float64(s.Machine.NumPE())
}

// Utilization returns mean busy fraction across all processors over the
// makespan (0 for an empty schedule).
func (s *Schedule) Utilization() float64 {
	mk := s.Makespan()
	if mk == 0 {
		return 0
	}
	var busy machine.Time
	for _, b := range s.index().busy {
		busy += b
	}
	return float64(busy) / (float64(mk) * float64(s.Machine.NumPE()))
}

// CommVolume returns the number of cross-processor messages and the
// total words they carry.
func (s *Schedule) CommVolume() (msgs int, words int64) {
	for _, m := range s.Msgs {
		if m.FromPE != m.ToPE {
			msgs++
			words += m.Words
		}
	}
	return msgs, words
}

// Validate re-checks the schedule against the task graph and machine
// model, trusting nothing the scheduler did:
//
//   - every task has exactly one primary slot, on a valid processor;
//   - slot durations equal the machine's ExecTime for the task's work;
//   - no two slots on one processor overlap;
//   - every arc is satisfied: for every slot of the consuming task
//     there is some slot of the producing task such that either both
//     are co-located and producer finishes first, or the consumer
//     starts no earlier than producer finish plus the machine's
//     communication time for the arc's words over that hop distance.
//
// Contention-aware schedulers may delay messages beyond the contention-
// free communication time; Validate therefore checks lower bounds.
func (s *Schedule) Validate() error {
	var errs []error
	if s.Graph == nil || s.Machine == nil {
		return errors.New("schedule: missing graph or machine")
	}
	idx := s.index()
	primary := map[graph.NodeID]int{}
	for _, sl := range s.Slots {
		if sl.PE < 0 || sl.PE >= s.Machine.NumPE() {
			errs = append(errs, fmt.Errorf("slot %s on invalid PE %d", sl.Task, sl.PE))
		}
		if s.Graph.Node(sl.Task) == nil {
			errs = append(errs, fmt.Errorf("slot for unknown task %q", sl.Task))
			continue
		}
		if !sl.Dup {
			primary[sl.Task]++
		}
		if sl.Start < 0 || sl.Finish < sl.Start {
			errs = append(errs, fmt.Errorf("slot %s has bad interval [%v,%v]", sl.Task, sl.Start, sl.Finish))
		}
		want := s.Machine.ExecTime(s.Graph.Node(sl.Task).Work, sl.PE)
		if sl.Finish-sl.Start != want {
			errs = append(errs, fmt.Errorf("slot %s duration %v != ExecTime %v", sl.Task, sl.Finish-sl.Start, want))
		}
	}
	for _, n := range s.Graph.Tasks() {
		if primary[n.ID] != 1 {
			errs = append(errs, fmt.Errorf("task %q has %d primary slots, want 1", n.ID, primary[n.ID]))
		}
	}
	// Overlap check per PE over the index's pre-sorted slot lists.
	for pe, slots := range idx.byPE {
		for i := 1; i < len(slots); i++ {
			if slots[i].Start < slots[i-1].Finish {
				errs = append(errs, fmt.Errorf("PE %d: %s [%v,%v] overlaps %s [%v,%v]",
					pe, slots[i-1].Task, slots[i-1].Start, slots[i-1].Finish,
					slots[i].Task, slots[i].Start, slots[i].Finish))
			}
		}
	}
	// Precedence + communication: per-task map lookups instead of
	// per-arc scans over every slot.
	for _, a := range s.Graph.Arcs() {
		producers := idx.byTask[a.From]
		consumers := idx.byTask[a.To]
		if len(producers) == 0 || len(consumers) == 0 {
			errs = append(errs, fmt.Errorf("arc %s->%s: unscheduled endpoint", a.From, a.To))
			continue
		}
		for _, c := range consumers {
			satisfied := false
			for _, p := range producers {
				ready := p.Finish + s.Machine.CommTime(a.Words, p.PE, c.PE)
				if c.Start >= ready {
					satisfied = true
					break
				}
			}
			if !satisfied {
				errs = append(errs, fmt.Errorf("arc %s->%s: consumer slot on PE %d at %v starts before data can arrive",
					a.From, a.To, c.PE, c.Start))
			}
		}
	}
	// Message records must respect the lower-bound latency model.
	for _, m := range s.Msgs {
		if m.FromPE == m.ToPE {
			continue
		}
		lb := s.Machine.CommTime(m.Words, m.FromPE, m.ToPE)
		if m.Recv-m.Send < lb {
			errs = append(errs, fmt.Errorf("msg %s->%s: latency %v below model lower bound %v",
				m.From, m.To, m.Recv-m.Send, lb))
		}
	}
	return errors.Join(errs...)
}

// String renders a compact textual summary of the schedule.
func (s *Schedule) String() string {
	msgs, words := s.CommVolume()
	return fmt.Sprintf("%s on %s: makespan %v, speedup %.2f, efficiency %.2f, %d msgs (%d words)",
		s.Algorithm, s.Machine.Name, s.Makespan(), s.Speedup(), s.Efficiency(), msgs, words)
}
