package sched

import (
	"repro/internal/graph"
	"repro/internal/machine"
)

// LowerBound returns a makespan lower bound for scheduling the flat
// graph on the machine without duplication: the larger of
//
//   - the critical-path bound: the longest chain of task execution
//     times (communication-free, since co-location is always possible
//     along one chain), and
//   - the work bound: total execution time spread perfectly over all
//     processors.
//
// Both use the fastest processor, so the bound also holds for
// heterogeneous machines. Every valid schedule's makespan is >= this
// value; the test suite checks it against every heuristic and the
// exhaustive Optimal search.
func LowerBound(g *graph.Graph, m *machine.Machine) (machine.Time, error) {
	order, err := g.TopoSort()
	if err != nil {
		return 0, err
	}
	fastest := 0
	for pe := 1; pe < m.NumPE(); pe++ {
		if m.Speed(pe) > m.Speed(fastest) {
			fastest = pe
		}
	}
	// Critical path over execution times on the fastest processor.
	longest := map[graph.NodeID]machine.Time{}
	var cp machine.Time
	var total machine.Time
	for _, id := range order {
		exec := m.ExecTime(g.Node(id).Work, fastest)
		total += exec
		best := machine.Time(0)
		for _, a := range g.PredArcs(id) {
			if longest[a.From] > best {
				best = longest[a.From]
			}
		}
		longest[id] = best + exec
		if longest[id] > cp {
			cp = longest[id]
		}
	}
	work := (total + machine.Time(m.NumPE()) - 1) / machine.Time(m.NumPE())
	if work > cp {
		return work, nil
	}
	return cp, nil
}
