package sched

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/graph"
	"repro/internal/machine"
)

// The golden equivalence suite pins every scheduler's exact output —
// the full slot and message lists, not just the makespan — on seeded
// random graphs across the paper's topology families. The goldens in
// testdata/golden_schedules.json were recorded from the original
// (pre-optimization) scheduler implementations; the incremental EST
// cache and compiled graph view must reproduce them byte for byte.
//
// Regenerate (only when the scheduling semantics intentionally change)
// with:
//
//	go test ./internal/sched -run TestGoldenEquivalence -update-golden

var updateGolden = flag.Bool("update-golden", false, "rewrite testdata/golden_schedules.json from the current schedulers")

const goldenPath = "testdata/golden_schedules.json"

// goldenEntry is one (graph, machine, scheduler) combination.
type goldenEntry struct {
	Graph    string       `json:"graph"`
	Machine  string       `json:"machine"`
	Alg      string       `json:"alg"`
	Makespan machine.Time `json:"makespan"`
	Slots    int          `json:"slots"`
	Msgs     int          `json:"msgs"`
	// SHA256 is the hash of the canonical rendering of the complete
	// slot and message lists, in schedule order.
	SHA256 string `json:"sha256"`
}

// goldenGraphs builds the seeded random graphs the suite runs on.
// Sizes are chosen so the original O(n^2·P·d) schedulers record them
// in seconds while still exercising non-trivial ready-pool dynamics.
func goldenGraphs(t testing.TB) []*graph.Graph {
	t.Helper()
	var gs []*graph.Graph
	for _, c := range []struct {
		seed   int64
		cfg    graph.LayeredConfig
		rename string
	}{
		{seed: 11, cfg: graph.LayeredConfig{Layers: 5, Width: 4, MinWork: 5, MaxWork: 60, MinWords: 1, MaxWords: 30, Density: 0.4}, rename: "g20"},
		{seed: 22, cfg: graph.LayeredConfig{Layers: 8, Width: 6, MinWork: 10, MaxWork: 100, MinWords: 1, MaxWords: 40, Density: 0.3}, rename: "g48"},
		{seed: 33, cfg: graph.LayeredConfig{Layers: 12, Width: 10, MinWork: 1, MaxWork: 120, MinWords: 0, MaxWords: 60, Density: 0.25}, rename: "g120"},
	} {
		rng := rand.New(rand.NewSource(c.seed))
		g, err := graph.LayeredRandom(rng, c.cfg)
		if err != nil {
			t.Fatal(err)
		}
		g.Name = c.rename
		gs = append(gs, g)
	}
	return gs
}

// goldenMachines builds one machine per topology family of the paper's
// Figure 2 (hypercube, mesh, star, fully-connected).
func goldenMachines(t testing.TB) []*machine.Machine {
	t.Helper()
	var ms []*machine.Machine
	mk := func(topo *machine.Topology, err error) {
		if err != nil {
			t.Fatal(err)
		}
		m, err := machine.New(topo.Name, topo, machine.DefaultParams())
		if err != nil {
			t.Fatal(err)
		}
		ms = append(ms, m)
	}
	mk(machine.Hypercube(3))
	mk(machine.Mesh(2, 3))
	mk(machine.Star(6))
	mk(machine.Full(8))
	return ms
}

// canonicalFingerprint renders the complete schedule deterministically
// and hashes it. Any change to any slot or message field changes the
// hash.
func canonicalFingerprint(s *Schedule) string {
	var b strings.Builder
	fmt.Fprintf(&b, "alg=%s\n", s.Algorithm)
	for _, sl := range s.Slots {
		fmt.Fprintf(&b, "slot %s pe=%d start=%d finish=%d dup=%v\n",
			sl.Task, sl.PE, int64(sl.Start), int64(sl.Finish), sl.Dup)
	}
	for _, m := range s.Msgs {
		fmt.Fprintf(&b, "msg %s %s->%s pe%d->pe%d words=%d send=%d recv=%d hops=%d\n",
			m.Var, m.From, m.To, m.FromPE, m.ToPE, m.Words, int64(m.Send), int64(m.Recv), m.Hops)
	}
	sum := sha256.Sum256([]byte(b.String()))
	return hex.EncodeToString(sum[:])
}

func goldenKey(g, m, alg string) string { return g + "|" + m + "|" + alg }

func TestGoldenEquivalence(t *testing.T) {
	graphs := goldenGraphs(t)
	machines := goldenMachines(t)

	var entries []goldenEntry
	for _, g := range graphs {
		for _, m := range machines {
			for _, s := range All() {
				sc, err := s.Schedule(g, m)
				if err != nil {
					t.Fatalf("%s on %s/%s: %v", s.Name(), g.Name, m.Name, err)
				}
				if err := sc.Validate(); err != nil {
					t.Fatalf("%s on %s/%s: invalid schedule: %v", s.Name(), g.Name, m.Name, err)
				}
				entries = append(entries, goldenEntry{
					Graph: g.Name, Machine: m.Name, Alg: s.Name(),
					Makespan: sc.Makespan(), Slots: len(sc.Slots), Msgs: len(sc.Msgs),
					SHA256: canonicalFingerprint(sc),
				})
			}
		}
	}

	if *updateGolden {
		if err := os.MkdirAll(filepath.Dir(goldenPath), 0o755); err != nil {
			t.Fatal(err)
		}
		data, err := json.MarshalIndent(entries, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, append(data, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("recorded %d golden schedules to %s", len(entries), goldenPath)
		return
	}

	data, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("missing goldens (run with -update-golden to record): %v", err)
	}
	var want []goldenEntry
	if err := json.Unmarshal(data, &want); err != nil {
		t.Fatal(err)
	}
	wantByKey := make(map[string]goldenEntry, len(want))
	for _, e := range want {
		wantByKey[goldenKey(e.Graph, e.Machine, e.Alg)] = e
	}
	if len(want) != len(entries) {
		t.Errorf("golden file has %d entries, suite produced %d", len(want), len(entries))
	}
	for _, got := range entries {
		key := goldenKey(got.Graph, got.Machine, got.Alg)
		w, ok := wantByKey[key]
		if !ok {
			t.Errorf("%s: no golden recorded", key)
			continue
		}
		if got != w {
			t.Errorf("%s: schedule diverged from golden:\n got  %+v\nwant %+v", key, got, w)
		}
	}
}
