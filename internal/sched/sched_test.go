package sched

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/graph"
	"repro/internal/machine"
)

func TestSerialMatchesSerialTime(t *testing.T) {
	g := graph.GE(4, 5, 10, 3)
	m := mk(t, "hypercube:3", costlyComm())
	s, err := Serial{}.Schedule(g, m)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if s.Makespan() != s.SerialTime() {
		t.Errorf("serial makespan %v != serial time %v", s.Makespan(), s.SerialTime())
	}
	if s.UsedPEs() != 1 {
		t.Errorf("serial used %d PEs", s.UsedPEs())
	}
	if msgs, _ := s.CommVolume(); msgs != 0 {
		t.Errorf("serial schedule has %d messages", msgs)
	}
}

func TestETFDiamondExactTimesCheapComm(t *testing.T) {
	g := graph.Diamond(10, 10)
	m := mk(t, "full:2", cheapComm()) // comm = 1us flat
	s, err := ETF{}.Schedule(g, m)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	// a:[0,10]PE0; b:[10,20]PE0; c:[11,21]PE1; d on PE1 at max(21, 20+1)=21.
	if s.Makespan() != 31 {
		t.Errorf("makespan = %v, want 31us", s.Makespan())
	}
	if s.UsedPEs() != 2 {
		t.Errorf("UsedPEs = %d", s.UsedPEs())
	}
}

func TestETFDiamondCostlyCommStaysSerial(t *testing.T) {
	g := graph.Diamond(10, 10)
	m := mk(t, "full:2", costlyComm()) // comm = 15us > work
	s, err := ETF{}.Schedule(g, m)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if s.Makespan() != 40 || s.UsedPEs() != 1 {
		t.Errorf("makespan = %v on %d PEs; want all-serial 40us on 1 PE", s.Makespan(), s.UsedPEs())
	}
}

func TestHLFETForkJoinSpreadsWork(t *testing.T) {
	g := graph.ForkJoin(4, 20, 1)
	m := mk(t, "full:4", cheapComm())
	s, err := HLFET{}.Schedule(g, m)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	// Serial = 6 tasks * 20 = 120; parallel should be well under.
	if s.Makespan() >= 120 {
		t.Errorf("HLFET failed to parallelise: %v", s.Makespan())
	}
	if s.UsedPEs() < 3 {
		t.Errorf("HLFET used only %d PEs", s.UsedPEs())
	}
}

func TestSchedulersOnSinglePEMatchSerial(t *testing.T) {
	g := graph.GE(4, 5, 10, 3)
	m := mk(t, "full:1", costlyComm())
	want, err := Serial{}.Schedule(g, m)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range All() {
		got, err := s.Schedule(g, m)
		if err != nil {
			t.Fatalf("%s: %v", s.Name(), err)
		}
		if err := got.Validate(); err != nil {
			t.Fatalf("%s: %v", s.Name(), err)
		}
		if got.Makespan() != want.Makespan() {
			t.Errorf("%s on 1 PE: makespan %v != serial %v", s.Name(), got.Makespan(), want.Makespan())
		}
	}
}

func TestPackChainUsesOneProcessor(t *testing.T) {
	g := graph.Chain(6, 10, 50)
	m := mk(t, "full:4", costlyComm())
	s, err := Pack{}.Schedule(g, m)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if s.UsedPEs() != 1 {
		t.Errorf("pack spread a pure chain across %d PEs", s.UsedPEs())
	}
	if msgs, _ := s.CommVolume(); msgs != 0 {
		t.Errorf("pack chain has %d messages", msgs)
	}
}

func TestPackBalancesIndependentTasks(t *testing.T) {
	g := graph.New("indep")
	for _, id := range []graph.NodeID{"a", "b", "c", "d"} {
		g.MustAddTask(id, "", 10)
	}
	m := mk(t, "full:4", costlyComm())
	s, err := Pack{}.Schedule(g, m)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if s.UsedPEs() != 4 {
		t.Errorf("pack used %d PEs for 4 independent tasks", s.UsedPEs())
	}
	if s.Makespan() != 10 {
		t.Errorf("makespan = %v, want 10us", s.Makespan())
	}
}

func TestDSHDuplicatesToBeatCommunication(t *testing.T) {
	// src feeds two heavy consumers with very expensive messages. With
	// 2 PEs, duplicating src on the second PE beats shipping the data.
	g := graph.New("dup")
	g.MustAddTask("src", "", 5)
	g.MustAddTask("c1", "", 50)
	g.MustAddTask("c2", "", 50)
	g.MustConnect("src", "c1", "d", 100)
	g.MustConnect("src", "c2", "d", 100)
	m := mk(t, "full:2", costlyComm()) // comm = 5+100 = 105us vs dup cost 5us

	dsh, err := DSH{}.Schedule(g, m)
	if err != nil {
		t.Fatal(err)
	}
	if err := dsh.Validate(); err != nil {
		t.Fatal(err)
	}
	hlfet, err := HLFET{}.Schedule(g, m)
	if err != nil {
		t.Fatal(err)
	}
	if dsh.Makespan() > hlfet.Makespan() {
		t.Errorf("DSH (%v) worse than HLFET (%v)", dsh.Makespan(), hlfet.Makespan())
	}
	// DSH should finish in 55us: c1 follows src on PE0 while c2 runs
	// after a duplicated src on PE1 — both consumers fully overlap.
	if dsh.Makespan() != 55 {
		t.Errorf("DSH makespan = %v, want 55us", dsh.Makespan())
	}
	// And it must actually contain a duplicate slot.
	foundDup := false
	for _, sl := range dsh.Slots {
		if sl.Dup {
			foundDup = true
		}
	}
	if !foundDup {
		t.Error("DSH produced no duplicate slots on a duplication-friendly graph")
	}
}

func TestMHRespectsTopologyDistance(t *testing.T) {
	// The same design on a star (2 hops between satellites) should
	// never beat a fully-connected machine of equal size under MH.
	g := graph.ForkJoin(6, 30, 20)
	full := mk(t, "full:8", costlyComm())
	star := mk(t, "star:8", costlyComm())
	sFull, err := MH{}.Schedule(g, full)
	if err != nil {
		t.Fatal(err)
	}
	sStar, err := MH{}.Schedule(g, star)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range []*Schedule{sFull, sStar} {
		if err := s.Validate(); err != nil {
			t.Fatal(err)
		}
	}
	if sFull.Makespan() > sStar.Makespan() {
		t.Errorf("MH: full (%v) worse than star (%v)", sFull.Makespan(), sStar.Makespan())
	}
}

func TestMHLinkContentionSerialisesMessages(t *testing.T) {
	m := mk(t, "chain:3", machine.Params{ProcSpeed: 1, TaskStartup: 0, MsgStartup: 2, WordTime: 1})
	ar := getArena()
	defer ar.release()
	net := newMHNet(m, ar)
	// Two 10-word messages from PE0 to PE2, both ready at t=0. The
	// estimate must match what the commit then books.
	if at := net.deliver(10, 0, 0, 2); at != 22 {
		t.Errorf("estimated first arrival = %v, want 22us", at)
	}
	at1 := net.commitDeliver(10, 0, 0, 2)
	at2 := net.commitDeliver(10, 0, 0, 2)
	// First: startup 2, hop0 [2,12], hop1 [12,22] -> 22.
	if at1 != 22 {
		t.Errorf("first arrival = %v, want 22us", at1)
	}
	// Second waits for link 0->1 until 12: hop0 [12,22], hop1 [22,32].
	if at2 != 32 {
		t.Errorf("second arrival = %v, want 32us", at2)
	}
	// Co-located delivery is free and books nothing.
	if at := net.commitDeliver(10, 7, 1, 1); at != 7 {
		t.Errorf("co-located delivery = %v, want 7us", at)
	}
}

func TestMHContentionVersusETFOnStar(t *testing.T) {
	// Wide fan-in through a star hub: MH pays serialised hub links, so
	// its (honest) makespan should be >= ETF's optimistic estimate.
	g := graph.ForkJoin(8, 10, 60)
	star := mk(t, "star:9", costlyComm())
	etf, err := ETF{}.Schedule(g, star)
	if err != nil {
		t.Fatal(err)
	}
	mh, err := MH{}.Schedule(g, star)
	if err != nil {
		t.Fatal(err)
	}
	if err := etf.Validate(); err != nil {
		t.Fatal(err)
	}
	if err := mh.Validate(); err != nil {
		t.Fatal(err)
	}
	if mh.Makespan() < etf.Makespan() {
		// MH models strictly more delay sources than ETF, but its
		// placements may differ; allow equality/crossing only if both
		// are sane. Flag clearly impossible outcome: better than the
		// contention-free critical path.
		_, cp, err := g.CriticalPath(1)
		if err != nil {
			t.Fatal(err)
		}
		if int64(mh.Makespan()) < cp {
			t.Errorf("MH makespan %v below critical path %d", mh.Makespan(), cp)
		}
	}
}

func TestByNameAndAll(t *testing.T) {
	if len(All()) != 8 {
		t.Errorf("All() has %d schedulers", len(All()))
	}
	for _, want := range []string{"serial", "hlfet", "etf", "ish", "mh", "dsh", "pack", "bsp"} {
		s, err := ByName(want)
		if err != nil {
			t.Errorf("ByName(%s): %v", want, err)
			continue
		}
		if s.Name() != want {
			t.Errorf("ByName(%s).Name() = %s", want, s.Name())
		}
	}
	if _, err := ByName("nosuch"); err == nil {
		t.Error("unknown name accepted")
	}
}

func TestSpeedupCurveShape(t *testing.T) {
	g := graph.GE(6, 10, 20, 2)
	params := cheapComm()
	var machines []*machine.Machine
	for _, dim := range []int{0, 1, 2, 3} {
		topo, err := machine.Hypercube(dim)
		if err != nil {
			t.Fatal(err)
		}
		m, err := machine.New(topo.Name, topo, params)
		if err != nil {
			t.Fatal(err)
		}
		machines = append(machines, m)
	}
	pts, err := SpeedupCurve(MH{}, g, machines)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 4 {
		t.Fatalf("points = %d", len(pts))
	}
	if pts[0].PEs != 1 || pts[0].Speedup < 0.99 || pts[0].Speedup > 1.01 {
		t.Errorf("1-PE point should have speedup 1: %+v", pts[0])
	}
	// With cheap communication more processors should help this graph.
	if !(pts[2].Speedup > pts[0].Speedup) {
		t.Errorf("4 PEs not faster than 1: %+v", pts)
	}
	for _, p := range pts {
		if p.Speedup <= 0 || p.Makespan <= 0 {
			t.Errorf("degenerate point %+v", p)
		}
	}
}

func TestCompareRunsEveryScheduler(t *testing.T) {
	g := graph.Diamond(10, 5)
	m := mk(t, "hypercube:2", costlyComm())
	res, err := Compare(g, m)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != len(All()) {
		t.Fatalf("Compare returned %d schedules", len(res))
	}
	for name, s := range res {
		if err := s.Validate(); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}

func TestSchedulersRejectNonFlatGraphs(t *testing.T) {
	g := graph.New("g")
	g.MustAddTask("a", "", 1)
	g.MustAddStorage("s", "cell")
	m := mk(t, "full:2", cheapComm())
	for _, s := range All() {
		if _, err := s.Schedule(g, m); err == nil {
			t.Errorf("%s accepted a non-flat graph", s.Name())
		}
	}
	for _, s := range All() {
		if _, err := s.Schedule(nil, m); err == nil {
			t.Errorf("%s accepted nil graph", s.Name())
		}
	}
}

// The central property: every scheduler, on every topology family, for
// random graphs, produces a schedule that passes full validation and
// respects trivial lower bounds.
func TestAllSchedulersProduceValidSchedules(t *testing.T) {
	specs := []string{"full:4", "hypercube:3", "mesh:2x3", "star:5", "ring:5", "tree:2x3", "chain:4", "torus:2x3"}
	f := func(seed int64, pick uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		g, err := graph.LayeredRandom(rng, graph.LayeredConfig{
			Layers: 2 + rng.Intn(4), Width: 1 + rng.Intn(4),
			MinWork: 1, MaxWork: 40, MinWords: 0, MaxWords: 30, Density: 0.4,
		})
		if err != nil {
			t.Logf("gen: %v", err)
			return false
		}
		m := mk(t, specs[int(pick)%len(specs)], costlyComm())
		for _, s := range All() {
			sc, err := s.Schedule(g, m)
			if err != nil {
				t.Logf("%s: %v", s.Name(), err)
				return false
			}
			if err := sc.Validate(); err != nil {
				t.Logf("%s invalid on %s (seed %d): %v", s.Name(), m.Name, seed, err)
				return false
			}
			// Lower bound: total work cannot be compressed below
			// totalWork/(speed*P) even with zero communication.
			lower := (g.TotalWork() + int64(m.NumPE())*m.Params.ProcSpeed - 1) / (int64(m.NumPE()) * m.Params.ProcSpeed)
			if int64(sc.Makespan()) < lower {
				t.Logf("%s: makespan %v below work lower bound %d", s.Name(), sc.Makespan(), lower)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// Schedules must be deterministic: scheduling twice yields identical
// slot lists.
func TestSchedulersAreDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	g, err := graph.LayeredRandom(rng, graph.LayeredConfig{
		Layers: 4, Width: 4, MinWork: 1, MaxWork: 30, MinWords: 0, MaxWords: 20, Density: 0.4,
	})
	if err != nil {
		t.Fatal(err)
	}
	m := mk(t, "hypercube:3", costlyComm())
	for _, s := range All() {
		a, err := s.Schedule(g, m)
		if err != nil {
			t.Fatalf("%s: %v", s.Name(), err)
		}
		b, err := s.Schedule(g, m)
		if err != nil {
			t.Fatalf("%s: %v", s.Name(), err)
		}
		if len(a.Slots) != len(b.Slots) {
			t.Errorf("%s: %d vs %d slots", s.Name(), len(a.Slots), len(b.Slots))
			continue
		}
		for i := range a.Slots {
			if a.Slots[i] != b.Slots[i] {
				t.Errorf("%s: slot %d differs: %+v vs %+v", s.Name(), i, a.Slots[i], b.Slots[i])
				break
			}
		}
	}
}

func TestHeterogeneousMachineFavoursFastPE(t *testing.T) {
	g := graph.New("one")
	g.MustAddTask("a", "", 100)
	topo, _ := machine.Full(2)
	m, err := machine.New("hetero", topo, machine.Params{ProcSpeed: 1, TaskStartup: 0, MsgStartup: 1, WordTime: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.SetSpeeds([]int64{1, 10}); err != nil {
		t.Fatal(err)
	}
	s, err := ETF{}.Schedule(g, m)
	if err != nil {
		t.Fatal(err)
	}
	sl, ok := s.PrimarySlot("a")
	if !ok || sl.PE != 1 {
		t.Errorf("task not on fast PE: %+v", sl)
	}
	if s.Makespan() != 10 {
		t.Errorf("makespan = %v, want 10us", s.Makespan())
	}
}
