package sched

import (
	"sync"

	"repro/internal/machine"
)

// This file implements the scratch arena behind every Schedule call.
// The schedulers' per-run state — ready pools, EST caches, routed-
// arrival tables, copy lists — is a fixed set of flat arrays whose
// sizes depend only on the compiled graph (n tasks × P processors) and
// whose lifetime is exactly one Schedule call. Allocating them with
// make() on every run is what BENCH_PR2 showed as tens of thousands of
// allocations and tens of megabytes per schedule; the garbage collector
// then re-marks them on every cycle. Instead each run carves its arrays
// out of a pooled arena of typed slabs: the slabs survive between runs
// in a sync.Pool, so steady-state scheduling performs no large
// allocations at all.
//
// Lifetime rules (also documented in docs/SCHEDULING.md):
//
//   - Arrays carved from the arena are valid until builder.release().
//     Nothing carved may escape into the returned *Schedule; the
//     Slots/Msgs slices handed to the caller are ordinary allocations.
//   - A slab grows by abandoning its buffer and allocating a larger
//     one; previously carved arrays keep the old buffer alive and stay
//     valid, so carving never invalidates earlier carves.
//   - Carves default to zeroed memory. Arrays that are fully
//     initialized by the caller (copied into, or guarded by a version
//     stamp) use the dirty variant and skip the clear.
//   - Arenas are single-goroutine: carve everything — including per-
//     worker scratch — before handing ranges to the worker pool.

// slab is one typed bump allocator.
type slab[T any] struct {
	buf  []T
	off  int
	used int // total elements carved since the last reset
}

// take carves n elements. The carved slice has full capacity so callers
// can use it as an append target without clobbering later carves.
func (s *slab[T]) take(n int, zero bool) []T {
	s.used += n
	if s.off+n > len(s.buf) {
		grow := 2 * len(s.buf)
		if grow < s.off+n {
			grow = s.off + n
		}
		s.buf = make([]T, grow) // fresh buffer; old carves keep the old one alive
		s.off = 0
		out := s.buf[:n:n]
		s.off = n
		return out // fresh memory is already zero
	}
	out := s.buf[s.off : s.off+n : s.off+n]
	s.off += n
	if zero {
		clear(out)
	}
	return out
}

// reset rewinds the slab, and — when the run's total demand outgrew the
// buffer, spilling some carves into abandoned intermediate buffers —
// right-sizes it to that total. The next identical run then fits every
// carve in the one buffer and allocates nothing: without this, a run
// whose carve sequence grows the slab midway replays against a
// different starting length each time and can re-grow on every single
// run, paying hundreds of megabytes of fresh pages per schedule at
// 100k-task scale.
func (s *slab[T]) reset() {
	if s.used > len(s.buf) {
		s.buf = make([]T, s.used)
	}
	s.off, s.used = 0, 0
}

// arena bundles the slab types the schedulers need.
type arena struct {
	i32   slab[int32]
	u32   slab[uint32]
	u64   slab[uint64]
	tm    slab[machine.Time]
	slot  slab[Slot]
	slist slab[[]Slot]
}

// arenaPool is a bounded retained free-list rather than a sync.Pool.
// sync.Pool empties itself after two GC cycles, and at 100k-task scale
// re-growing the slabs is not a cheap make(): it is hundreds of
// megabytes of fresh address space whose every page costs a fault on
// first touch — the dominant cost of a large schedule on hosts where
// faults are serviced slowly (VMs especially). Steady-state interactive
// scheduling needs the slab pages to stay faulted in, so released
// arenas are kept forever, up to the cap; concurrent Schedule calls
// beyond it build fresh arenas that are garbage once released. Memory
// held is proportional to the largest graphs actually scheduled.
var arenaPool struct {
	sync.Mutex
	free []*arena
}

const arenaPoolCap = 8

func getArena() *arena {
	arenaPool.Lock()
	defer arenaPool.Unlock()
	if n := len(arenaPool.free); n > 0 {
		a := arenaPool.free[n-1]
		arenaPool.free = arenaPool.free[:n-1]
		return a
	}
	return new(arena)
}

// release resets every slab and returns the arena to the pool. All
// arrays carved from it become invalid.
func (a *arena) release() {
	a.i32.reset()
	a.u32.reset()
	a.u64.reset()
	a.tm.reset()
	a.slot.reset()
	a.slist.reset()
	arenaPool.Lock()
	defer arenaPool.Unlock()
	if len(arenaPool.free) < arenaPoolCap {
		arenaPool.free = append(arenaPool.free, a)
	}
}

func (a *arena) int32s(n int, zero bool) []int32       { return a.i32.take(n, zero) }
func (a *arena) uint32s(n int, zero bool) []uint32     { return a.u32.take(n, zero) }
func (a *arena) uint64s(n int, zero bool) []uint64     { return a.u64.take(n, zero) }
func (a *arena) times(n int, zero bool) []machine.Time { return a.tm.take(n, zero) }
func (a *arena) slots(n int, zero bool) []Slot         { return a.slot.take(n, zero) }
func (a *arena) slotLists(n int, zero bool) [][]Slot   { return a.slist.take(n, zero) }
