package sched

import (
	"sort"

	"repro/internal/graph"
	"repro/internal/machine"
)

// Index is an immutable set of derived views over a finalized schedule:
// per-processor slot lists pre-sorted by start time, a per-task slot
// map covering primaries and duplicates, and the aggregate figures
// (makespan, per-PE busy time, outbound traffic) every display and
// check re-derives otherwise. It turns the Schedule accessors from
// linear scans over all slots into map and slice lookups, which is what
// keeps Validate, the simulator, the runner and the Gantt renderers
// linear as graphs grow.
//
// Invalidation is by construction: schedulers assemble slots in a
// private builder and create the Schedule exactly once, finished, so an
// index built from a Schedule can never go stale. Code that mutates
// Slots or Msgs of an already-indexed Schedule by hand breaks that
// contract and owns the consequences.
type Index struct {
	byPE     [][]Slot                // per PE, sorted by (Start, Task); shared, callers must not mutate
	byTask   map[graph.NodeID][]Slot // every copy of each task, in Slots order
	primary  map[graph.NodeID]Slot   // the non-duplicate copy of each task
	busy     []machine.Time          // per-PE total busy time
	msgsOut  []int                   // per-PE cross-PE messages originated
	wordsOut []int64                 // per-PE cross-PE words originated
	pair     []int64                 // dense numPE×numPE words matrix, row = FromPE
	makespan machine.Time
	usedPEs  int
}

// index returns the schedule's Index, building it on first use. The
// lazy build is safe under concurrent first use: racing callers may
// each build the index, but the build is deterministic over immutable
// inputs, exactly one result is published, and every caller returns a
// fully-built view. Concurrent runs sharing one schedule rely on this
// — the serve cache-hit path hands the same cached schedule to several
// fleet runs at once.
func (s *Schedule) index() *Index {
	if idx := s.idx.Load(); idx != nil {
		return idx
	}
	idx := buildIndex(s)
	if s.idx.CompareAndSwap(nil, idx) {
		return idx
	}
	return s.idx.Load()
}

// buildIndex derives every view in one pass over Slots and Msgs. Slots
// naming processors outside the machine appear only in the per-task
// views; Validate reports them from its own slot pass.
func buildIndex(s *Schedule) *Index {
	numPE := 0
	if s.Machine != nil {
		numPE = s.Machine.NumPE()
	}
	idx := &Index{
		byPE:     make([][]Slot, numPE),
		byTask:   make(map[graph.NodeID][]Slot, len(s.Slots)),
		primary:  make(map[graph.NodeID]Slot, len(s.Slots)),
		busy:     make([]machine.Time, numPE),
		msgsOut:  make([]int, numPE),
		wordsOut: make([]int64, numPE),
		pair:     make([]int64, numPE*numPE),
	}
	for _, sl := range s.Slots {
		idx.byTask[sl.Task] = append(idx.byTask[sl.Task], sl)
		if _, seen := idx.primary[sl.Task]; !sl.Dup && !seen {
			idx.primary[sl.Task] = sl
		}
		if sl.Finish > idx.makespan {
			idx.makespan = sl.Finish
		}
		if sl.PE >= 0 && sl.PE < numPE {
			idx.byPE[sl.PE] = append(idx.byPE[sl.PE], sl)
			idx.busy[sl.PE] += sl.Finish - sl.Start
		}
	}
	for pe := range idx.byPE {
		slots := idx.byPE[pe]
		sort.Slice(slots, func(i, j int) bool {
			if slots[i].Start != slots[j].Start {
				return slots[i].Start < slots[j].Start
			}
			return slots[i].Task < slots[j].Task
		})
		if len(slots) > 0 {
			idx.usedPEs++
		}
	}
	for _, m := range s.Msgs {
		if m.FromPE == m.ToPE {
			continue
		}
		if m.FromPE >= 0 && m.FromPE < numPE {
			idx.msgsOut[m.FromPE]++
			idx.wordsOut[m.FromPE] += m.Words
			if m.ToPE >= 0 && m.ToPE < numPE {
				idx.pair[m.FromPE*numPE+m.ToPE] += m.Words
			}
		}
	}
	return idx
}
