package sched

import (
	"math/rand"
	"runtime"
	"testing"

	"repro/internal/graph"
	"repro/internal/machine"
)

// The parallel-construction suite: sharded candidate scoring must be
// byte-identical to the serial path for every heuristic, worker count
// and topology family, and the arena must keep steady-state scheduling
// allocation-flat.

func equivGraph(t testing.TB, seed int64) *graph.Graph {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	g, err := graph.LayeredRandom(rng, graph.LayeredConfig{
		Layers: 8, Width: 6,
		MinWork: 5, MaxWork: 90, MinWords: 0, MaxWords: 40, Density: 0.35,
	})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func equivMachines(t testing.TB) []*machine.Machine {
	t.Helper()
	var ms []*machine.Machine
	mk := func(topo *machine.Topology, err error) {
		if err != nil {
			t.Fatal(err)
		}
		m, err := machine.New(topo.Name, topo, machine.DefaultParams())
		if err != nil {
			t.Fatal(err)
		}
		ms = append(ms, m)
	}
	mk(machine.Hypercube(3))
	mk(machine.Star(6))
	mk(machine.Full(8))
	return ms
}

// TestParallelEquivalence pins the tentpole's determinism contract:
// for every heuristic × topology family × 10 seeds, the schedule built
// with a sharded worker pool is byte-identical to the serial path
// (SchedOptions{Workers: 1}, the debugging escape hatch).
func TestParallelEquivalence(t *testing.T) {
	machines := equivMachines(t)
	for seed := int64(1); seed <= 10; seed++ {
		g := equivGraph(t, seed)
		for _, m := range machines {
			for _, s := range All() {
				serial, err := WithWorkers(s, 1).Schedule(g, m)
				if err != nil {
					t.Fatalf("seed %d %s/%s workers=1: %v", seed, s.Name(), m.Name, err)
				}
				want := canonicalFingerprint(serial)
				for _, w := range []int{2, 4} {
					par, err := WithWorkers(s, w).Schedule(g, m)
					if err != nil {
						t.Fatalf("seed %d %s/%s workers=%d: %v", seed, s.Name(), m.Name, w, err)
					}
					if got := canonicalFingerprint(par); got != want {
						t.Errorf("seed %d %s/%s: workers=%d schedule diverged from serial", seed, s.Name(), m.Name, w)
					}
				}
			}
		}
	}
}

// TestWithWorkersNeverChangesNames guards the registry helper: options
// plumbing must not swap scheduler identities.
func TestWithWorkersNeverChangesNames(t *testing.T) {
	for _, s := range All() {
		if got := WithWorkers(s, 4).Name(); got != s.Name() {
			t.Errorf("WithWorkers(%s).Name() = %s", s.Name(), got)
		}
	}
}

// bytesPerRun measures the exact heap bytes one Schedule call allocates
// in steady state (compiled view cached, arena pooled), averaged over
// runs. TotalAlloc is a monotonic counter, so the measure is exact and
// GC-timing-independent.
func bytesPerRun(t *testing.T, s Scheduler, g *graph.Graph, m *machine.Machine) float64 {
	t.Helper()
	const runs = 5
	if _, err := s.Schedule(g, m); err != nil { // warm compile cache + arena pool
		t.Fatal(err)
	}
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	for i := 0; i < runs; i++ {
		if _, err := s.Schedule(g, m); err != nil {
			t.Fatal(err)
		}
	}
	runtime.ReadMemStats(&after)
	return float64(after.TotalAlloc-before.TotalAlloc) / runs
}

// TestSchedulerBytesLinear is the satellite regression test for the
// BENCH_PR2 bytes/op superlinearity: ETF and HLFET rebuilt dense
// per-run state, so doubling the graph more than doubled bytes/op.
// With the arena the per-run allocation is the escaping schedule
// product plus O(1) bookkeeping, so bytes/op must grow no faster than
// the linear model tasks×PEs + arcs (slots and messages are the
// product; everything else is pooled).
func TestSchedulerBytesLinear(t *testing.T) {
	if testing.Short() {
		t.Skip("allocation measurement")
	}
	topo, err := machine.Hypercube(3)
	if err != nil {
		t.Fatal(err)
	}
	m, err := machine.New(topo.Name, topo, machine.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	mkGraph := func(layers, width int) *graph.Graph {
		rng := rand.New(rand.NewSource(7))
		g, err := graph.LayeredRandom(rng, graph.LayeredConfig{
			Layers: layers, Width: width,
			MinWork: 10, MaxWork: 100, MinWords: 1, MaxWords: 40, Density: 0.3,
		})
		if err != nil {
			t.Fatal(err)
		}
		return g
	}
	small := mkGraph(16, 12)
	big := mkGraph(32, 24) // 4× the tasks, ~8× the arcs
	model := func(g *graph.Graph) float64 {
		return float64(g.Len()*m.NumPE() + g.NumArcs())
	}
	modelRatio := model(big) / model(small)
	for _, s := range []Scheduler{ETF{}, HLFET{}, BSP{}} {
		sb := bytesPerRun(t, s, small, m)
		bb := bytesPerRun(t, s, big, m)
		ratio := bb / sb
		t.Logf("%s: %.0f B/op small, %.0f B/op big, ratio %.2f (model %.2f)", s.Name(), sb, bb, ratio, modelRatio)
		if ratio > 1.8*modelRatio {
			t.Errorf("%s: bytes/op grew %.2f× for a %.2f× larger tasks×PEs+arcs model — superlinear", s.Name(), ratio, modelRatio)
		}
	}
}

// TestSchedulerAllocsFlat pins the steady-state allocation count:
// after the compiled view is cached, a schedule run may allocate the
// escaping product and bounded bookkeeping, not O(steps) garbage
// (BENCH_PR2 measured 24k allocs per MH run from per-step sorting).
func TestSchedulerAllocsFlat(t *testing.T) {
	if testing.Short() {
		t.Skip("allocation measurement")
	}
	topo, err := machine.Hypercube(3)
	if err != nil {
		t.Fatal(err)
	}
	m, err := machine.New(topo.Name, topo, machine.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	g, err := graph.LayeredRandom(rng, graph.LayeredConfig{
		Layers: 50, Width: 40,
		MinWork: 10, MaxWork: 100, MinWords: 1, MaxWords: 40, Density: 0.3,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range []Scheduler{MH{}, ETF{}, HLFET{}, BSP{}} {
		if _, err := s.Schedule(g, m); err != nil { // warm caches
			t.Fatal(err)
		}
		allocs := testing.AllocsPerRun(3, func() {
			if _, err := s.Schedule(g, m); err != nil {
				t.Fatal(err)
			}
		})
		t.Logf("%s: %.0f allocs/op at 2000 tasks", s.Name(), allocs)
		if allocs > 500 {
			t.Errorf("%s: %.0f allocs per schedule of a 2000-task graph — per-step garbage is back", s.Name(), allocs)
		}
	}
}

// TestCompiledCacheInvalidation guards the compiled-view cache: a
// structural mutation must be visible to the next Schedule call.
func TestCompiledCacheInvalidation(t *testing.T) {
	topo, err := machine.Full(2)
	if err != nil {
		t.Fatal(err)
	}
	m, err := machine.New(topo.Name, topo, machine.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	g := graph.New("mutate")
	g.MustAddTask("a", "", 10)
	g.MustAddTask("b", "", 10)
	sc, err := (HLFET{}).Schedule(g, m)
	if err != nil {
		t.Fatal(err)
	}
	if len(sc.Msgs) != 0 {
		t.Fatalf("independent tasks produced %d msgs", len(sc.Msgs))
	}
	v := g.Version()
	g.MustConnect("a", "b", "x", 5)
	if g.Version() == v {
		t.Fatal("Connect did not bump the graph version")
	}
	sc2, err := (HLFET{}).Schedule(g, m)
	if err != nil {
		t.Fatal(err)
	}
	if err := sc2.Validate(); err != nil {
		t.Fatalf("schedule after mutation invalid (stale compiled view?): %v", err)
	}
	bSlot, _ := sc2.PrimarySlot("b")
	aSlot, _ := sc2.PrimarySlot("a")
	if bSlot.Start < aSlot.Finish {
		t.Errorf("b starts at %v before a finishes at %v: new arc ignored", bSlot.Start, aSlot.Finish)
	}
}
