package sched

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/machine"
)

// Scheduler maps a flat task graph onto a machine. Implementations must
// be deterministic: the same inputs always yield the same schedule.
type Scheduler interface {
	Name() string
	Schedule(g *graph.Graph, m *machine.Machine) (*Schedule, error)
}

// builder holds the incremental state shared by the list schedulers,
// working entirely on the compiled graph view (dense task ids).
type builder struct {
	c        *compiled
	procFree []machine.Time
	slots    []Slot
	msgs     []Msg
	copies   [][]Slot // dense id -> all placed copies of the task
	copyBuf  []Slot   // backing store for each task's first copy
	cache    estCache
}

func newBuilder(g *graph.Graph, m *machine.Machine) (*builder, error) {
	if g == nil || m == nil {
		return nil, fmt.Errorf("sched: nil graph or machine")
	}
	if err := g.ValidateFlat(); err != nil {
		return nil, fmt.Errorf("sched: graph not flat: %w", err)
	}
	c, err := compile(g, m)
	if err != nil {
		return nil, err
	}
	b := &builder{
		c:        c,
		procFree: make([]machine.Time, c.pes),
		slots:    make([]Slot, 0, c.n),
		msgs:     make([]Msg, 0, len(c.arcs)),
		copies:   make([][]Slot, c.n),
		copyBuf:  make([]Slot, c.n),
		cache:    newEstCache(c.n, c.pes),
	}
	// Every task has exactly one copy unless a duplication scheduler
	// adds more, so give each its own cap-1 backing slot up front.
	for i := range b.copies {
		b.copies[i] = b.copyBuf[i : i : i+1]
	}
	return b, nil
}

// errProducerNotPlaced is the shared "producer not placed" error.
func errProducerNotPlaced(a graph.Arc) error {
	return fmt.Errorf("sched: arc %s->%s: producer not placed", a.From, a.To)
}

// arrival returns the earliest time the data of arc a can be available
// on processor pe, minimised over all placed copies of the producer,
// and the copy achieving it. The producer must already be placed.
func (b *builder) arrival(a carc, pe int) (machine.Time, Slot, error) {
	cps := b.copies[a.from]
	if len(cps) == 0 {
		return 0, Slot{}, errProducerNotPlaced(b.c.arcs[a.aidx])
	}
	best := cps[0]
	bestAt := best.Finish + b.c.comm(a.words, best.PE, pe)
	for _, c := range cps[1:] {
		at := c.Finish + b.c.comm(a.words, c.PE, pe)
		if at < bestAt || (at == bestAt && c.PE < best.PE) {
			bestAt, best = at, c
		}
	}
	return bestAt, best, nil
}

// est returns the earliest start time of task t on processor pe under
// the contention-free model (non-insertion: after the processor's last
// placed slot). The data-ready part comes from the incremental cache.
func (b *builder) est(t int32, pe int) (machine.Time, error) {
	ready, err := b.dataReady(t, pe)
	if err != nil {
		return 0, err
	}
	if pf := b.procFree[pe]; pf > ready {
		return pf, nil
	}
	return ready, nil
}

// place commits task t to processor pe at the given start, records the
// messages feeding it, and returns the slot.
func (b *builder) place(t int32, pe int, start machine.Time, dup bool) (Slot, error) {
	id := b.c.ids[t]
	sl := Slot{Task: id, PE: pe, Start: start, Finish: start + b.c.exec(t, pe), Dup: dup}
	for _, a := range b.c.predArcsOf(t) {
		at, src, err := b.arrival(a, pe)
		if err != nil {
			return Slot{}, err
		}
		oa := &b.c.arcs[a.aidx]
		if at > start {
			return Slot{}, fmt.Errorf("sched: task %s placed at %v before data %s arrives at %v", id, start, oa.Var, at)
		}
		if src.PE != pe {
			b.msgs = append(b.msgs, Msg{
				Var: oa.Var, From: oa.From, To: id,
				FromPE: src.PE, ToPE: pe, Words: oa.Words,
				Send: src.Finish, Recv: at, Hops: b.c.m.Topo.Hops(src.PE, pe),
			})
		}
	}
	b.commitSlot(t, sl)
	return sl, nil
}

// commitSlot records a placed slot: appends it, registers the copy,
// advances the processor, and invalidates the cached earliest-start
// entries of the task's direct successors (the only tasks whose
// data-ready times the new copy can change).
func (b *builder) commitSlot(t int32, sl Slot) {
	b.slots = append(b.slots, sl)
	b.copies[t] = append(b.copies[t], sl)
	if sl.Finish > b.procFree[sl.PE] {
		b.procFree[sl.PE] = sl.Finish
	}
	for _, s := range b.c.succIDsOf(t) {
		b.cache.invalidate(s)
	}
}

func (b *builder) finish(alg string) *Schedule {
	return &Schedule{Graph: b.c.g, Machine: b.c.m, Algorithm: alg, Slots: b.slots, Msgs: b.msgs}
}

// Serial schedules every task on processor 0 in topological order. It
// is the one-processor baseline the paper's speedup chart divides by.
type Serial struct{}

// Name implements Scheduler.
func (Serial) Name() string { return "serial" }

// Schedule implements Scheduler.
func (Serial) Schedule(g *graph.Graph, m *machine.Machine) (*Schedule, error) {
	b, err := newBuilder(g, m)
	if err != nil {
		return nil, err
	}
	for _, t := range b.c.topo {
		st, err := b.est(t, 0)
		if err != nil {
			return nil, err
		}
		if _, err := b.place(t, 0, st, false); err != nil {
			return nil, err
		}
	}
	return b.finish("serial"), nil
}

// HLFET is Highest Level First with Estimated Times: static-priority
// list scheduling by static b-level, placing each task on the processor
// where it can start earliest.
type HLFET struct{}

// Name implements Scheduler.
func (HLFET) Name() string { return "hlfet" }

// Schedule implements Scheduler.
func (HLFET) Schedule(g *graph.Graph, m *machine.Machine) (*Schedule, error) {
	b, err := newBuilder(g, m)
	if err != nil {
		return nil, err
	}
	h := newReadyHeap(b.c)
	for h.len() > 0 {
		t := h.pop() // highest static level first; ties by id
		bestPE, bestStart, bestFinish := -1, machine.Time(0), machine.Time(0)
		for pe := 0; pe < b.c.pes; pe++ {
			st, err := b.est(t, pe)
			if err != nil {
				return nil, err
			}
			fin := st + b.c.exec(t, pe)
			if bestPE < 0 || fin < bestFinish {
				bestPE, bestStart, bestFinish = pe, st, fin
			}
		}
		if _, err := b.place(t, bestPE, bestStart, false); err != nil {
			return nil, err
		}
		h.complete(t)
	}
	return b.finish("hlfet"), nil
}

// ETF is Earliest Task First: at each step the (ready task, processor)
// pair with the smallest earliest start time is chosen; ties are broken
// by higher static level, then task id, then processor index.
type ETF struct{}

// Name implements Scheduler.
func (ETF) Name() string { return "etf" }

// Schedule implements Scheduler.
func (ETF) Schedule(g *graph.Graph, m *machine.Machine) (*Schedule, error) {
	b, err := newBuilder(g, m)
	if err != nil {
		return nil, err
	}
	c := b.c
	rt := newReadyTracker(c)
	for len(rt.ready) > 0 {
		bestIdx, bestPE := -1, -1
		bestT := int32(-1)
		var bestStart, bestFinish machine.Time
		for i, t := range rt.ready {
			for pe := 0; pe < c.pes; pe++ {
				st, err := b.est(t, pe)
				if err != nil {
					return nil, err
				}
				fin := st + c.exec(t, pe)
				better := false
				switch {
				case bestIdx < 0:
					better = true
				case fin != bestFinish:
					better = fin < bestFinish
				case c.slevel[t] != c.slevel[bestT]:
					better = c.slevel[t] > c.slevel[bestT]
				case t != bestT:
					better = c.rank[t] < c.rank[bestT]
				default:
					better = pe < bestPE
				}
				if better {
					bestIdx, bestPE, bestT, bestStart, bestFinish = i, pe, t, st, fin
				}
			}
		}
		t := rt.take(bestIdx)
		if _, err := b.place(t, bestPE, bestStart, false); err != nil {
			return nil, err
		}
		rt.complete(t)
	}
	return b.finish("etf"), nil
}
