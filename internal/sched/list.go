package sched

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/machine"
)

// Scheduler maps a flat task graph onto a machine. Implementations must
// be deterministic: the same inputs always yield the same schedule.
type Scheduler interface {
	Name() string
	Schedule(g *graph.Graph, m *machine.Machine) (*Schedule, error)
}

// builder holds the incremental state shared by the list schedulers,
// working entirely on the compiled graph view (dense task ids). All of
// it except the escaping Slots/Msgs product is carved from a pooled
// arena; release returns the scratch when the Schedule call ends.
type builder struct {
	c        *compiled
	ar       *arena
	pool     *workerPool // nil when candidate scoring runs serially
	procFree []machine.Time
	slots    []Slot
	msgs     []Msg
	copies   [][]Slot // dense id -> all placed copies of the task
	copyBuf  []Slot   // backing store for each task's first copy
	cache    estCache

	// Message stubs: place records cross-PE messages as parallel
	// pointer-free arrays in the arena and finish materialises the
	// []Msg once, exactly sized. A growing []Msg would otherwise be
	// the largest live object of the whole run — ~96 bytes per message
	// with three string headers each for the GC to scan, hundreds of
	// megabytes at 100k tasks — and marking it repeatedly dominates
	// large schedules. The stubs carry no pointers, so the GC skips
	// their spans entirely.
	stubAidx   []int32 // original arc index (Var/From/To/Words live there)
	stubTo     []int32 // consumer dense id
	stubToPE   []int32
	stubSrcPE  []int32
	stubSrcFin []machine.Time
	stubRecv   []machine.Time
}

func newBuilder(g *graph.Graph, m *machine.Machine, opts SchedOptions) (*builder, error) {
	if g == nil || m == nil {
		return nil, fmt.Errorf("sched: nil graph or machine")
	}
	if err := g.ValidateFlat(); err != nil {
		return nil, fmt.Errorf("sched: graph not flat: %w", err)
	}
	c, err := compiledFor(g, m)
	if err != nil {
		return nil, err
	}
	ar := getArena()
	b := &builder{
		c:        c,
		ar:       ar,
		procFree: ar.times(c.pes, true),
		slots:    make([]Slot, 0, c.n),
		copies:   ar.slotLists(c.n, false),
		copyBuf:  ar.slots(c.n, false),
		cache:    newEstCache(c.n, c.pes, ar),
	}
	// Every task has exactly one copy unless a duplication scheduler
	// adds more, so give each its own cap-1 backing slot up front.
	for i := range b.copies {
		b.copies[i] = b.copyBuf[i : i : i+1]
	}
	if w := opts.workers(); w > 1 {
		b.pool = newWorkerPool(w)
	}
	return b, nil
}

// release returns the builder's scratch to the pools. Every Schedule
// implementation defers it; it is idempotent, and the Slots/Msgs slices
// handed out via finish stay valid.
func (b *builder) release() {
	if b.pool != nil {
		b.pool.close()
		b.pool = nil
	}
	if b.ar != nil {
		b.ar.release()
		b.ar = nil
	}
}

// errProducerNotPlaced is the shared "producer not placed" error.
func errProducerNotPlaced(a graph.Arc) error {
	return fmt.Errorf("sched: arc %s->%s: producer not placed", a.From, a.To)
}

// arrival returns the earliest time the data of arc a can be available
// on processor pe, minimised over all placed copies of the producer,
// and the copy achieving it. The producer must already be placed.
func (b *builder) arrival(a carc, pe int) (machine.Time, Slot, error) {
	cps := b.copies[a.from]
	if len(cps) == 0 {
		return 0, Slot{}, errProducerNotPlaced(b.c.arcs[a.aidx])
	}
	best := cps[0]
	bestAt := best.Finish + b.c.comm(a.words, best.PE, pe)
	for _, c := range cps[1:] {
		at := c.Finish + b.c.comm(a.words, c.PE, pe)
		if at < bestAt || (at == bestAt && c.PE < best.PE) {
			bestAt, best = at, c
		}
	}
	return bestAt, best, nil
}

// est returns the earliest start time of task t on processor pe under
// the contention-free model (non-insertion: after the processor's last
// placed slot). The data-ready part comes from the incremental cache.
func (b *builder) est(t int32, pe int) (machine.Time, error) {
	ready, err := b.dataReady(t, pe)
	if err != nil {
		return 0, err
	}
	if pf := b.procFree[pe]; pf > ready {
		return pf, nil
	}
	return ready, nil
}

// place commits task t to processor pe at the given start, records the
// messages feeding it, and returns the slot.
func (b *builder) place(t int32, pe int, start machine.Time, dup bool) (Slot, error) {
	id := b.c.ids[t]
	sl := Slot{Task: id, PE: pe, Start: start, Finish: start + b.c.exec(t, pe), Dup: dup}
	for _, a := range b.c.predArcsOf(t) {
		at, src, err := b.arrival(a, pe)
		if err != nil {
			return Slot{}, err
		}
		oa := &b.c.arcs[a.aidx]
		if at > start {
			return Slot{}, fmt.Errorf("sched: task %s placed at %v before data %s arrives at %v", id, start, oa.Var, at)
		}
		if src.PE != pe {
			if b.stubAidx == nil {
				// Carved for the worst case (every arc crosses PEs) but
				// only when a first message actually exists. Duplication
				// schedulers can exceed the cap — append then falls back
				// to the heap, still pointer-free.
				n := len(b.c.arcs)
				b.stubAidx = b.ar.int32s(n, false)[:0]
				b.stubTo = b.ar.int32s(n, false)[:0]
				b.stubToPE = b.ar.int32s(n, false)[:0]
				b.stubSrcPE = b.ar.int32s(n, false)[:0]
				b.stubSrcFin = b.ar.times(n, false)[:0]
				b.stubRecv = b.ar.times(n, false)[:0]
			}
			b.stubAidx = append(b.stubAidx, a.aidx)
			b.stubTo = append(b.stubTo, t)
			b.stubToPE = append(b.stubToPE, int32(pe))
			b.stubSrcPE = append(b.stubSrcPE, int32(src.PE))
			b.stubSrcFin = append(b.stubSrcFin, src.Finish)
			b.stubRecv = append(b.stubRecv, at)
		}
	}
	b.commitSlot(t, sl)
	return sl, nil
}

// commitSlot records a placed slot: appends it, registers the copy,
// advances the processor, and invalidates the cached earliest-start
// entries of the task's direct successors (the only tasks whose
// data-ready times the new copy can change).
func (b *builder) commitSlot(t int32, sl Slot) {
	b.slots = append(b.slots, sl)
	b.copies[t] = append(b.copies[t], sl)
	if sl.Finish > b.procFree[sl.PE] {
		b.procFree[sl.PE] = sl.Finish
	}
	for _, s := range b.c.succIDsOf(t) {
		b.cache.invalidate(s)
	}
}

// finish materialises the message stubs into the exactly-sized []Msg
// (schedulers with their own message path, like MH, set b.msgs before
// calling) and assembles the Schedule. It must run before release: the
// stubs live in the arena.
func (b *builder) finish(alg string) *Schedule {
	if b.msgs == nil {
		if n := len(b.stubAidx); n > 0 {
			b.msgs = make([]Msg, n)
			for i := 0; i < n; i++ {
				oa := &b.c.arcs[b.stubAidx[i]]
				fp, tp := int(b.stubSrcPE[i]), int(b.stubToPE[i])
				b.msgs[i] = Msg{
					Var: oa.Var, From: oa.From, To: b.c.ids[b.stubTo[i]],
					FromPE: fp, ToPE: tp, Words: oa.Words,
					Send: b.stubSrcFin[i], Recv: b.stubRecv[i],
					Hops: b.c.m.Topo.Hops(fp, tp),
				}
			}
		} else {
			b.msgs = []Msg{} // keep Msgs non-nil: JSON encodes [] rather than null
		}
	}
	return &Schedule{Graph: b.c.g, Machine: b.c.m, Algorithm: alg, Slots: b.slots, Msgs: b.msgs}
}

// Serial schedules every task on processor 0 in topological order. It
// is the one-processor baseline the paper's speedup chart divides by.
type Serial struct{}

// Name implements Scheduler.
func (Serial) Name() string { return "serial" }

// Schedule implements Scheduler.
func (Serial) Schedule(g *graph.Graph, m *machine.Machine) (*Schedule, error) {
	b, err := newBuilder(g, m, SchedOptions{Workers: 1})
	if err != nil {
		return nil, err
	}
	defer b.release()
	for _, t := range b.c.topo {
		st, err := b.est(t, 0)
		if err != nil {
			return nil, err
		}
		if _, err := b.place(t, 0, st, false); err != nil {
			return nil, err
		}
	}
	return b.finish("serial"), nil
}

// HLFET is Highest Level First with Estimated Times: static-priority
// list scheduling by static b-level, placing each task on the processor
// where it can start earliest.
type HLFET struct {
	Opts SchedOptions
}

// Name implements Scheduler.
func (HLFET) Name() string { return "hlfet" }

// Schedule implements Scheduler.
func (s HLFET) Schedule(g *graph.Graph, m *machine.Machine) (*Schedule, error) {
	b, err := newBuilder(g, m, s.Opts)
	if err != nil {
		return nil, err
	}
	defer b.release()
	h := newReadyHeap(b.c, b.ar)
	w := b.scanWorkers()
	cands := make([]cand, w)
	// One task per step, so the parallel shard is over processors. The
	// data-ready row is computed arc-major on the main goroutine first
	// (one pass over the predecessors fills every PE's entry); the shard
	// bodies then only read. The closure is built once — a per-step
	// literal would allocate on every iteration.
	var t int32
	var row []machine.Time
	body := func(wk, lo, hi int) {
		best := cand{}
		for pe := lo; pe < hi; pe++ {
			st := row[pe]
			if pf := b.procFree[pe]; pf > st {
				st = pf
			}
			fin := st + b.c.exec(t, pe)
			if betterPE(best.ok, best.fin, best.pe, fin, pe) {
				best = cand{ok: true, t: t, pe: pe, st: st, fin: fin}
			}
		}
		cands[wk] = best
	}
	for h.len() > 0 {
		t = h.pop() // highest static level first; ties by id
		var err error
		if row, err = b.dataReadyRow(t); err != nil {
			return nil, err
		}
		b.parScan(b.c.pes, body)
		best := cand{}
		for wk := 0; wk < w; wk++ {
			if c := cands[wk]; c.ok && betterPE(best.ok, best.fin, best.pe, c.fin, c.pe) {
				best = c
			}
			cands[wk] = cand{}
		}
		if _, err := b.place(t, best.pe, best.st, false); err != nil {
			return nil, err
		}
		h.complete(t)
	}
	return b.finish("hlfet"), nil
}

// ETF is Earliest Task First: at each step the (ready task, processor)
// pair with the smallest earliest start time is chosen; ties are broken
// by higher static level, then task id, then processor index.
type ETF struct {
	Opts SchedOptions
}

// Name implements Scheduler.
func (ETF) Name() string { return "etf" }

// Schedule implements Scheduler.
func (s ETF) Schedule(g *graph.Graph, m *machine.Machine) (*Schedule, error) {
	b, err := newBuilder(g, m, s.Opts)
	if err != nil {
		return nil, err
	}
	defer b.release()
	c := b.c
	rt := newReadyTracker(c, b.ar)
	w := b.scanWorkers()
	cands := make([]cand, w)
	errs := make([]error, w)

	// lbFin[t] is a monotone lower bound on task t's best finish time
	// over all processors. ETF never duplicates, so a ready task's
	// data-ready times are fixed, and procFree only advances — the best
	// finish computed at any earlier step can only have grown since.
	// A ready task whose bound is strictly worse than the running best
	// cannot win (the candidate order is strict on finish first), so
	// the scan skips its whole processor loop. Zero (the carve default)
	// is the trivially valid initial bound.
	lbFin := b.ar.times(c.n, true)

	// evalTask fully evaluates ready[i] on every processor from its
	// arc-major data-ready row. For a fixed task the candidate order
	// reduces to (finish, pe), so a strict < keeps the lowest PE on
	// ties. Each worker's shard owns disjoint tasks, so the row fills
	// and lbFin writes never race.
	evalTask := func(i int) (cand, error) {
		t := rt.ready[i]
		row, err := b.dataReadyRow(t)
		if err != nil {
			return cand{}, err
		}
		execRow := c.execT[int(t)*c.pes : int(t+1)*c.pes]
		tbest := cand{}
		for pe := 0; pe < c.pes; pe++ {
			st := row[pe]
			if pf := b.procFree[pe]; pf > st {
				st = pf
			}
			fin := st + execRow[pe]
			if !tbest.ok || fin < tbest.fin {
				tbest = cand{ok: true, t: t, idx: i, pe: pe, st: st, fin: fin}
			}
		}
		lbFin[t] = tbest.fin
		return tbest, nil
	}

	// Built once, not per step: a per-iteration closure literal would
	// allocate on every scheduling step. The running best doubles as
	// the pruning bound; a task is only skipped when its recorded bound
	// is strictly worse, and every full evaluation refreshes the bound.
	// (A stronger initial bound — e.g. pre-evaluating the argmin-bound
	// task — measures *slower* at scale: it suppresses the evaluations
	// that keep the other tasks' bounds tight, and the stale bounds
	// force far more re-evaluations on later steps.)
	body := func(wk, lo, hi int) {
		best := cand{}
		for i := lo; i < hi; i++ {
			if best.ok && lbFin[rt.ready[i]] > best.fin {
				continue
			}
			tbest, err := evalTask(i)
			if err != nil {
				errs[wk] = err
				return
			}
			if c.betterCand(best, tbest) {
				best = tbest
			}
		}
		cands[wk] = best
	}
	for len(rt.ready) > 0 {
		b.parScan(len(rt.ready), body)
		best := cand{}
		for wk := 0; wk < w; wk++ {
			if errs[wk] != nil {
				return nil, errs[wk]
			}
			if c.betterCand(best, cands[wk]) {
				best = cands[wk]
			}
			cands[wk] = cand{}
		}
		t := rt.take(best.idx)
		if _, err := b.place(t, best.pe, best.st, false); err != nil {
			return nil, err
		}
		rt.complete(t)
	}
	return b.finish("etf"), nil
}
