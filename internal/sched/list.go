package sched

import (
	"fmt"
	"sort"

	"repro/internal/graph"
	"repro/internal/machine"
)

// Scheduler maps a flat task graph onto a machine. Implementations must
// be deterministic: the same inputs always yield the same schedule.
type Scheduler interface {
	Name() string
	Schedule(g *graph.Graph, m *machine.Machine) (*Schedule, error)
}

// builder holds the incremental state shared by the list schedulers.
type builder struct {
	g        *graph.Graph
	m        *machine.Machine
	procFree []machine.Time
	slots    []Slot
	msgs     []Msg
	copies   map[graph.NodeID][]Slot // all placed copies of each task
}

func newBuilder(g *graph.Graph, m *machine.Machine) (*builder, error) {
	if g == nil || m == nil {
		return nil, fmt.Errorf("sched: nil graph or machine")
	}
	if err := g.ValidateFlat(); err != nil {
		return nil, fmt.Errorf("sched: graph not flat: %w", err)
	}
	return &builder{
		g:        g,
		m:        m,
		procFree: make([]machine.Time, m.NumPE()),
		copies:   map[graph.NodeID][]Slot{},
	}, nil
}

// arrival returns the earliest time the data of arc a can be available
// on processor pe, minimised over all placed copies of the producer,
// and the copy achieving it. The producer must already be placed.
func (b *builder) arrival(a graph.Arc, pe int) (machine.Time, Slot, error) {
	cps := b.copies[a.From]
	if len(cps) == 0 {
		return 0, Slot{}, fmt.Errorf("sched: arc %s->%s: producer not placed", a.From, a.To)
	}
	best := cps[0]
	bestAt := cps[0].Finish + b.m.CommTime(a.Words, cps[0].PE, pe)
	for _, c := range cps[1:] {
		at := c.Finish + b.m.CommTime(a.Words, c.PE, pe)
		if at < bestAt || (at == bestAt && c.PE < best.PE) {
			bestAt, best = at, c
		}
	}
	return bestAt, best, nil
}

// est returns the earliest start time of task t on processor pe under
// the contention-free model (non-insertion: after the processor's last
// placed slot).
func (b *builder) est(t graph.NodeID, pe int) (machine.Time, error) {
	start := b.procFree[pe]
	for _, a := range b.g.Pred(t) {
		at, _, err := b.arrival(a, pe)
		if err != nil {
			return 0, err
		}
		if at > start {
			start = at
		}
	}
	return start, nil
}

// place commits task t to processor pe at the given start, records the
// messages feeding it, and returns the slot.
func (b *builder) place(t graph.NodeID, pe int, start machine.Time, dup bool) (Slot, error) {
	n := b.g.Node(t)
	sl := Slot{Task: t, PE: pe, Start: start, Finish: start + b.m.ExecTime(n.Work, pe), Dup: dup}
	for _, a := range b.g.Pred(t) {
		at, src, err := b.arrival(a, pe)
		if err != nil {
			return Slot{}, err
		}
		if at > start {
			return Slot{}, fmt.Errorf("sched: task %s placed at %v before data %s arrives at %v", t, start, a.Var, at)
		}
		if src.PE != pe {
			b.msgs = append(b.msgs, Msg{
				Var: a.Var, From: a.From, To: t,
				FromPE: src.PE, ToPE: pe, Words: a.Words,
				Send: src.Finish, Recv: at, Hops: b.m.Topo.Hops(src.PE, pe),
			})
		}
	}
	b.slots = append(b.slots, sl)
	b.copies[t] = append(b.copies[t], sl)
	if sl.Finish > b.procFree[pe] {
		b.procFree[pe] = sl.Finish
	}
	return sl, nil
}

func (b *builder) finish(alg string) *Schedule {
	return &Schedule{Graph: b.g, Machine: b.m, Algorithm: alg, Slots: b.slots, Msgs: b.msgs}
}

// readyTracker yields tasks whose predecessors are all placed.
type readyTracker struct {
	g       *graph.Graph
	pending map[graph.NodeID]int
	ready   []graph.NodeID
}

func newReadyTracker(g *graph.Graph) *readyTracker {
	rt := &readyTracker{g: g, pending: map[graph.NodeID]int{}}
	for _, n := range g.Nodes() {
		rt.pending[n.ID] = len(g.Predecessors(n.ID))
		if rt.pending[n.ID] == 0 {
			rt.ready = append(rt.ready, n.ID)
		}
	}
	sort.Slice(rt.ready, func(i, j int) bool { return rt.ready[i] < rt.ready[j] })
	return rt
}

// complete marks t placed and returns newly ready tasks into the pool.
func (rt *readyTracker) complete(t graph.NodeID) {
	for _, s := range rt.g.Successors(t) {
		rt.pending[s]--
		if rt.pending[s] == 0 {
			rt.ready = append(rt.ready, s)
		}
	}
}

// take removes and returns ready[i].
func (rt *readyTracker) take(i int) graph.NodeID {
	t := rt.ready[i]
	rt.ready = append(rt.ready[:i], rt.ready[i+1:]...)
	return t
}

// Serial schedules every task on processor 0 in topological order. It
// is the one-processor baseline the paper's speedup chart divides by.
type Serial struct{}

// Name implements Scheduler.
func (Serial) Name() string { return "serial" }

// Schedule implements Scheduler.
func (Serial) Schedule(g *graph.Graph, m *machine.Machine) (*Schedule, error) {
	b, err := newBuilder(g, m)
	if err != nil {
		return nil, err
	}
	order, err := g.TopoSort()
	if err != nil {
		return nil, err
	}
	for _, t := range order {
		st, err := b.est(t, 0)
		if err != nil {
			return nil, err
		}
		if _, err := b.place(t, 0, st, false); err != nil {
			return nil, err
		}
	}
	return b.finish("serial"), nil
}

// HLFET is Highest Level First with Estimated Times: static-priority
// list scheduling by static b-level, placing each task on the processor
// where it can start earliest.
type HLFET struct{}

// Name implements Scheduler.
func (HLFET) Name() string { return "hlfet" }

// Schedule implements Scheduler.
func (HLFET) Schedule(g *graph.Graph, m *machine.Machine) (*Schedule, error) {
	b, err := newBuilder(g, m)
	if err != nil {
		return nil, err
	}
	lv, err := g.ComputeLevels(1)
	if err != nil {
		return nil, err
	}
	rt := newReadyTracker(g)
	for len(rt.ready) > 0 {
		// Highest static level first; ties by id for determinism.
		best := 0
		for i := 1; i < len(rt.ready); i++ {
			a, c := rt.ready[i], rt.ready[best]
			if lv.SLevel[a] > lv.SLevel[c] || (lv.SLevel[a] == lv.SLevel[c] && a < c) {
				best = i
			}
		}
		t := rt.take(best)
		work := g.Node(t).Work
		bestPE, bestStart, bestFinish := -1, machine.Time(0), machine.Time(0)
		for pe := 0; pe < m.NumPE(); pe++ {
			st, err := b.est(t, pe)
			if err != nil {
				return nil, err
			}
			fin := st + m.ExecTime(work, pe)
			if bestPE < 0 || fin < bestFinish {
				bestPE, bestStart, bestFinish = pe, st, fin
			}
		}
		if _, err := b.place(t, bestPE, bestStart, false); err != nil {
			return nil, err
		}
		rt.complete(t)
	}
	return b.finish("hlfet"), nil
}

// ETF is Earliest Task First: at each step the (ready task, processor)
// pair with the smallest earliest start time is chosen; ties are broken
// by higher static level, then task id, then processor index.
type ETF struct{}

// Name implements Scheduler.
func (ETF) Name() string { return "etf" }

// Schedule implements Scheduler.
func (ETF) Schedule(g *graph.Graph, m *machine.Machine) (*Schedule, error) {
	b, err := newBuilder(g, m)
	if err != nil {
		return nil, err
	}
	lv, err := g.ComputeLevels(1)
	if err != nil {
		return nil, err
	}
	rt := newReadyTracker(g)
	for len(rt.ready) > 0 {
		bestIdx, bestPE := -1, -1
		var bestStart, bestFinish machine.Time
		for i, t := range rt.ready {
			work := g.Node(t).Work
			for pe := 0; pe < m.NumPE(); pe++ {
				st, err := b.est(t, pe)
				if err != nil {
					return nil, err
				}
				fin := st + m.ExecTime(work, pe)
				better := false
				switch {
				case bestIdx < 0:
					better = true
				case fin != bestFinish:
					better = fin < bestFinish
				case lv.SLevel[t] != lv.SLevel[rt.ready[bestIdx]]:
					better = lv.SLevel[t] > lv.SLevel[rt.ready[bestIdx]]
				case t != rt.ready[bestIdx]:
					better = t < rt.ready[bestIdx]
				default:
					better = pe < bestPE
				}
				if better {
					bestIdx, bestPE, bestStart, bestFinish = i, pe, st, fin
				}
			}
		}
		t := rt.take(bestIdx)
		if _, err := b.place(t, bestPE, bestStart, false); err != nil {
			return nil, err
		}
		rt.complete(t)
	}
	return b.finish("etf"), nil
}
