package sched

import (
	"fmt"
	"reflect"
	"testing"

	"repro/internal/graph"
	"repro/internal/machine"
)

// layeredDesign builds the 501-task layered calculator graph the runner
// benchmarks use (layers*width tasks plus a sink), minus the routines —
// placement only reads work and word counts.
func layeredDesign(t *testing.T, layers, width int) *graph.Graph {
	t.Helper()
	g := graph.New("layered-calc")
	for l := 0; l < layers; l++ {
		for i := 0; i < width; i++ {
			id := graph.NodeID(fmt.Sprintf("t%d_%d", l, i))
			g.MustAddTask(id, "", int64(10+(l*7+i*3)%20))
			if l == 0 {
				continue
			}
			g.MustConnect(graph.NodeID(fmt.Sprintf("t%d_%d", l-1, i)), id, fmt.Sprintf("v%d_%d", l-1, i), 1)
			g.MustConnect(graph.NodeID(fmt.Sprintf("t%d_%d", l-1, (i+1)%width)), id, fmt.Sprintf("w%d_%d", l-1, i), 1)
		}
	}
	g.MustAddTask("snk", "", 20)
	for i := 0; i < width; i++ {
		g.MustConnect(graph.NodeID(fmt.Sprintf("t%d_%d", layers-1, i)), "snk", fmt.Sprintf("s%d", i), 1)
	}
	return g
}

// contiguousPeerOf reproduces the historical contiguous-block partition
// as a peerOf vector: the baseline Place must beat (or match).
func contiguousPeerOf(numPE, workers int) []int {
	if workers > numPE {
		workers = numPE
	}
	peerOf := make([]int, numPE)
	base, rem := numPE/workers, numPE%workers
	pe := 0
	for w := 0; w < workers; w++ {
		n := base
		if w < rem {
			n++
		}
		for k := 0; k < n; k++ {
			peerOf[pe] = w
			pe++
		}
	}
	return peerOf
}

// TestPlaceReducesCrossWorkerWords pins the acceptance figure: on the
// 501-task layered design scheduled by ETF onto an 8-PE hypercube,
// traffic-aware placement moves strictly fewer words across worker
// boundaries than the contiguous-block partition.
func TestPlaceReducesCrossWorkerWords(t *testing.T) {
	g := layeredDesign(t, 20, 25) // 501 tasks
	m := mk(t, "hypercube:3", machine.DefaultParams())
	s, err := ETF{}.Schedule(g, m)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 3, 4} {
		peerOf := Place(s, workers)
		placed := CrossWorkerWords(s, peerOf)
		contig := CrossWorkerWords(s, contiguousPeerOf(m.NumPE(), workers))
		t.Logf("workers=%d: contiguous %d words, placed %d words", workers, contig, placed)
		if placed >= contig {
			t.Errorf("workers=%d: placement crosses %d words, contiguous blocks cross %d — no reduction", workers, placed, contig)
		}
	}
}

// TestPlaceQuotasMatchPartition verifies Place never unbalances the
// fleet: per-worker processor counts equal the contiguous partition's.
func TestPlaceQuotasMatchPartition(t *testing.T) {
	g := layeredDesign(t, 6, 7)
	m := mk(t, "hypercube:3", cheapComm())
	s, err := ETF{}.Schedule(g, m)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 2, 3, 5, 8, 11} {
		peerOf := Place(s, workers)
		if len(peerOf) != m.NumPE() {
			t.Fatalf("workers=%d: peerOf has %d entries for %d PEs", workers, len(peerOf), m.NumPE())
		}
		got := map[int]int{}
		for _, w := range peerOf {
			got[w]++
		}
		want := map[int]int{}
		for _, w := range contiguousPeerOf(m.NumPE(), workers) {
			want[w]++
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("workers=%d: per-worker counts %v, want the partition quotas %v", workers, got, want)
		}
	}
}

// TestPlaceDeterministic pins reproducibility for the conformance
// harness: identical schedules place identically, run to run.
func TestPlaceDeterministic(t *testing.T) {
	g := layeredDesign(t, 20, 25)
	m := mk(t, "hypercube:3", machine.DefaultParams())
	s, err := ETF{}.Schedule(g, m)
	if err != nil {
		t.Fatal(err)
	}
	first := Place(s, 3)
	for i := 0; i < 3; i++ {
		s2, err := ETF{}.Schedule(g, m)
		if err != nil {
			t.Fatal(err)
		}
		if again := Place(s2, 3); !reflect.DeepEqual(again, first) {
			t.Fatalf("placement differs between runs: %v vs %v", again, first)
		}
	}
}

// TestReplanExpand exercises the expand direction: an era ran on two
// live processors of a four-processor machine, then the other two
// revive (a worker joined) and the replan migrates queued work onto
// them.
func TestReplanExpand(t *testing.T) {
	g := graph.GE(4, 5, 10, 3)
	m := mk(t, "full:4", cheapComm())
	s, err := ETF{}.Schedule(g, m)
	if err != nil {
		t.Fatal(err)
	}
	// Results finished by the cutoff survive on PEs 0 and 1 (the PEs
	// that were live before the join).
	done := map[graph.NodeID]int{}
	for _, sl := range s.Slots {
		if sl.Dup || sl.Finish > s.Makespan()/3 {
			continue
		}
		pe := sl.PE
		if pe > 1 {
			pe = 0
		}
		done[sl.Task] = pe
	}
	st := ReplanState{Live: []bool{true, true, true, true}, Done: done}
	plan, err := Replan(s, st)
	if err != nil {
		t.Fatal(err)
	}
	checkPlan(t, s, st, plan)
	if len(plan.Slots) == 0 {
		t.Fatal("expand replan planned nothing; cutoff left no queued work")
	}
	revived := false
	for _, sl := range plan.Slots {
		if sl.PE > 1 {
			revived = true
			break
		}
	}
	if !revived {
		t.Errorf("no queued task migrated onto the revived PEs; plan %v", plan.Slots)
	}
}
