package sched

import (
	"sort"

	"repro/internal/graph"
	"repro/internal/machine"
)

// ISH is the Insertion Scheduling Heuristic of Kruatrachue & Lewis:
// static-priority list scheduling (like HLFET) that, instead of always
// appending a task after a processor's last slot, may insert it into an
// idle hole left earlier on the processor while it was waiting for
// messages. Holes are exactly the "schedule gaps" Kruatrachue's thesis
// identifies as wasted by non-insertion list schedulers.
type ISH struct{}

// Name implements Scheduler.
func (ISH) Name() string { return "ish" }

// insertionPoint finds the earliest start for a task of the given
// duration on pe, no earlier than ready, considering the idle gaps
// between already-placed slots. slots must be sorted by start.
func insertionPoint(slots []Slot, ready machine.Time, dur machine.Time) machine.Time {
	cur := ready
	for _, sl := range slots {
		if cur+dur <= sl.Start {
			return cur // fits in the gap before this slot
		}
		if sl.Finish > cur {
			cur = sl.Finish
		}
	}
	return cur
}

// Schedule implements Scheduler.
func (ISH) Schedule(g *graph.Graph, m *machine.Machine) (*Schedule, error) {
	b, err := newBuilder(g, m)
	if err != nil {
		return nil, err
	}
	c := b.c
	peSlots := make([][]Slot, c.pes)
	h := newReadyHeap(c)
	for h.len() > 0 {
		t := h.pop() // highest static level first, as HLFET

		bestPE := -1
		var bestStart, bestFinish machine.Time
		for pe := 0; pe < c.pes; pe++ {
			// Data-ready time on this processor (cached incrementally;
			// insertion ignores procFree by design).
			ready, err := b.dataReady(t, pe)
			if err != nil {
				return nil, err
			}
			dur := c.exec(t, pe)
			start := insertionPoint(peSlots[pe], ready, dur)
			fin := start + dur
			if bestPE < 0 || fin < bestFinish {
				bestPE, bestStart, bestFinish = pe, start, fin
			}
		}
		sl, err := b.place(t, bestPE, bestStart, false)
		if err != nil {
			return nil, err
		}
		// Keep the processor's slot list sorted by start with a binary
		// insert instead of re-sorting after every placement.
		s := peSlots[bestPE]
		i := sort.Search(len(s), func(i int) bool { return s[i].Start > sl.Start })
		s = append(s, Slot{})
		copy(s[i+1:], s[i:])
		s[i] = sl
		peSlots[bestPE] = s
		h.complete(t)
	}
	return b.finish("ish"), nil
}
