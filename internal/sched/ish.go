package sched

import (
	"sort"

	"repro/internal/graph"
	"repro/internal/machine"
)

// ISH is the Insertion Scheduling Heuristic of Kruatrachue & Lewis:
// static-priority list scheduling (like HLFET) that, instead of always
// appending a task after a processor's last slot, may insert it into an
// idle hole left earlier on the processor while it was waiting for
// messages. Holes are exactly the "schedule gaps" Kruatrachue's thesis
// identifies as wasted by non-insertion list schedulers.
type ISH struct {
	Opts SchedOptions
}

// Name implements Scheduler.
func (ISH) Name() string { return "ish" }

// insertionPoint finds the earliest start for a task of the given
// duration on pe, no earlier than ready, considering the idle gaps
// between already-placed slots. slots must be sorted by start.
func insertionPoint(slots []Slot, ready machine.Time, dur machine.Time) machine.Time {
	cur := ready
	for _, sl := range slots {
		if cur+dur <= sl.Start {
			return cur // fits in the gap before this slot
		}
		if sl.Finish > cur {
			cur = sl.Finish
		}
	}
	return cur
}

// Schedule implements Scheduler.
func (s ISH) Schedule(g *graph.Graph, m *machine.Machine) (*Schedule, error) {
	b, err := newBuilder(g, m, s.Opts)
	if err != nil {
		return nil, err
	}
	defer b.release()
	c := b.c
	peSlots := make([][]Slot, c.pes)
	h := newReadyHeap(c, b.ar)
	w := b.scanWorkers()
	cands := make([]cand, w)
	errs := make([]error, w)
	for h.len() > 0 {
		t := h.pop() // highest static level first, as HLFET

		// Shard over processors: the gap scan reads peSlots and the
		// data-ready cache entries of (t, pe) pairs each worker owns.
		b.parScan(c.pes, func(wk, lo, hi int) {
			best := cand{}
			for pe := lo; pe < hi; pe++ {
				// Data-ready time on this processor (cached incrementally;
				// insertion ignores procFree by design).
				ready, err := b.dataReady(t, pe)
				if err != nil {
					errs[wk] = err
					return
				}
				dur := c.exec(t, pe)
				start := insertionPoint(peSlots[pe], ready, dur)
				fin := start + dur
				if betterPE(best.ok, best.fin, best.pe, fin, pe) {
					best = cand{ok: true, t: t, pe: pe, st: start, fin: fin}
				}
			}
			cands[wk] = best
		})
		best := cand{}
		for wk := 0; wk < w; wk++ {
			if errs[wk] != nil {
				return nil, errs[wk]
			}
			if cd := cands[wk]; cd.ok && betterPE(best.ok, best.fin, best.pe, cd.fin, cd.pe) {
				best = cd
			}
			cands[wk] = cand{}
		}
		sl, err := b.place(t, best.pe, best.st, false)
		if err != nil {
			return nil, err
		}
		// Keep the processor's slot list sorted by start with a binary
		// insert instead of re-sorting after every placement.
		sls := peSlots[best.pe]
		i := sort.Search(len(sls), func(i int) bool { return sls[i].Start > sl.Start })
		sls = append(sls, Slot{})
		copy(sls[i+1:], sls[i:])
		sls[i] = sl
		peSlots[best.pe] = sls
		h.complete(t)
	}
	return b.finish("ish"), nil
}
