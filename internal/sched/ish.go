package sched

import (
	"sort"

	"repro/internal/graph"
	"repro/internal/machine"
)

// ISH is the Insertion Scheduling Heuristic of Kruatrachue & Lewis:
// static-priority list scheduling (like HLFET) that, instead of always
// appending a task after a processor's last slot, may insert it into an
// idle hole left earlier on the processor while it was waiting for
// messages. Holes are exactly the "schedule gaps" Kruatrachue's thesis
// identifies as wasted by non-insertion list schedulers.
type ISH struct{}

// Name implements Scheduler.
func (ISH) Name() string { return "ish" }

// insertionPoint finds the earliest start for a task of the given
// duration on pe, no earlier than ready, considering the idle gaps
// between already-placed slots. slots must be sorted by start.
func insertionPoint(slots []Slot, ready machine.Time, dur machine.Time) machine.Time {
	cur := ready
	for _, sl := range slots {
		if cur+dur <= sl.Start {
			return cur // fits in the gap before this slot
		}
		if sl.Finish > cur {
			cur = sl.Finish
		}
	}
	return cur
}

// Schedule implements Scheduler.
func (ISH) Schedule(g *graph.Graph, m *machine.Machine) (*Schedule, error) {
	b, err := newBuilder(g, m)
	if err != nil {
		return nil, err
	}
	lv, err := g.ComputeLevels(1)
	if err != nil {
		return nil, err
	}
	peSlots := make([][]Slot, m.NumPE())
	rt := newReadyTracker(g)
	for len(rt.ready) > 0 {
		// Highest static level first, as HLFET.
		best := 0
		for i := 1; i < len(rt.ready); i++ {
			a, c := rt.ready[i], rt.ready[best]
			if lv.SLevel[a] > lv.SLevel[c] || (lv.SLevel[a] == lv.SLevel[c] && a < c) {
				best = i
			}
		}
		t := rt.take(best)
		work := g.Node(t).Work

		bestPE := -1
		var bestStart, bestFinish machine.Time
		for pe := 0; pe < m.NumPE(); pe++ {
			// Data-ready time on this processor.
			var ready machine.Time
			for _, a := range g.Pred(t) {
				at, _, err := b.arrival(a, pe)
				if err != nil {
					return nil, err
				}
				if at > ready {
					ready = at
				}
			}
			dur := m.ExecTime(work, pe)
			start := insertionPoint(peSlots[pe], ready, dur)
			fin := start + dur
			if bestPE < 0 || fin < bestFinish {
				bestPE, bestStart, bestFinish = pe, start, fin
			}
		}
		sl, err := b.place(t, bestPE, bestStart, false)
		if err != nil {
			return nil, err
		}
		peSlots[bestPE] = append(peSlots[bestPE], sl)
		sort.Slice(peSlots[bestPE], func(i, j int) bool {
			return peSlots[bestPE][i].Start < peSlots[bestPE][j].Start
		})
		rt.complete(t)
	}
	return b.finish("ish"), nil
}
