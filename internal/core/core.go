// Package core is the Banger environment itself: the integration layer
// that walks a user through the paper's four steps — draw a
// hierarchical dataflow graph, define a target machine, fill in
// sequential tasks through the calculator metaphor, then schedule,
// predict, trial-run, execute and generate code — with instant
// feedback at every step.
package core

import (
	"fmt"
	"sort"

	"repro/internal/calc"
	"repro/internal/codegen"
	"repro/internal/exec"
	"repro/internal/graph"
	"repro/internal/machine"
	"repro/internal/pits"
	"repro/internal/project"
	"repro/internal/sched"
	"repro/internal/trace"
)

// Environment is an opened Banger project, flattened and ready to
// schedule and run.
type Environment struct {
	Project *project.Project
	Flat    *graph.Flat
}

// Open validates the project and flattens its design.
func Open(p *project.Project) (*Environment, error) {
	flat, err := p.Flatten()
	if err != nil {
		return nil, err
	}
	return &Environment{Project: p, Flat: flat}, nil
}

// OpenBuiltin opens one of the built-in sample projects by name.
func OpenBuiltin(name string) (*Environment, error) {
	p, err := project.Builtin(name)
	if err != nil {
		return nil, err
	}
	return Open(p)
}

// Schedule maps the design onto the project's machine with the named
// heuristic and validates the result before returning it.
func (e *Environment) Schedule(algorithm string) (*sched.Schedule, error) {
	return e.ScheduleOn(algorithm, e.Project.Machine)
}

// ScheduleOn is Schedule against an explicit machine (used by speedup
// sweeps across machine sizes).
func (e *Environment) ScheduleOn(algorithm string, m *machine.Machine) (*sched.Schedule, error) {
	return e.ScheduleOnWorkers(algorithm, m, 0)
}

// ScheduleOnWorkers is ScheduleOn with an explicit schedule-construction
// worker count (0 = automatic, 1 = serial; see sched.WithWorkers). The
// resulting schedule is identical for every worker count — the knob only
// changes construction latency.
func (e *Environment) ScheduleOnWorkers(algorithm string, m *machine.Machine, workers int) (*sched.Schedule, error) {
	s, err := sched.ByName(algorithm)
	if err != nil {
		return nil, err
	}
	s = sched.WithWorkers(s, workers)
	sc, err := s.Schedule(e.Flat.Graph, m)
	if err != nil {
		return nil, err
	}
	if err := sc.Validate(); err != nil {
		return nil, fmt.Errorf("core: %s produced an invalid schedule: %w", algorithm, err)
	}
	return sc, nil
}

// SpeedupCurve predicts speedup for the design on hypercubes of the
// given dimensions (the paper's Figure 3 right-hand chart uses 1, 2
// and 3 — i.e. 2, 4 and 8 processors).
func (e *Environment) SpeedupCurve(algorithm string, dims []int) ([]sched.SpeedupPoint, error) {
	s, err := sched.ByName(algorithm)
	if err != nil {
		return nil, err
	}
	var machines []*machine.Machine
	for _, d := range dims {
		topo, err := machine.Hypercube(d)
		if err != nil {
			return nil, err
		}
		m, err := e.Project.Machine.Scale(topo)
		if err != nil {
			return nil, err
		}
		machines = append(machines, m)
	}
	return sched.SpeedupCurve(s, e.Flat.Graph, machines)
}

// Predict runs the discrete-event simulator over a schedule, returning
// the predicted execution trace.
func (e *Environment) Predict(sc *sched.Schedule) (*trace.Trace, error) {
	return exec.Simulate(sc)
}

// Run executes the schedule for real on goroutines with the project's
// input data; the trace carries wall-clock times.
func (e *Environment) Run(sc *sched.Schedule) (*exec.Result, error) {
	r := &exec.Runner{Inputs: e.Project.Inputs}
	return r.Run(sc, e.Flat)
}

// RunVirtual executes the schedule for real on goroutines but stamps
// the trace in deterministic virtual time derived from the machine
// model and the measured interpreter work — directly comparable with
// the schedule's own Gantt chart.
func (e *Environment) RunVirtual(sc *sched.Schedule) (*exec.Result, error) {
	r := &exec.Runner{Inputs: e.Project.Inputs, VirtualTime: true}
	return r.Run(sc, e.Flat)
}

// RunWith executes the schedule with a caller-configured runner (fault
// injection, retry, watchdog and grace settings). The project's input
// data is bound automatically unless the runner already carries inputs.
func (e *Environment) RunWith(sc *sched.Schedule, r *exec.Runner) (*exec.Result, error) {
	if r.Inputs == nil {
		r.Inputs = e.Project.Inputs
	}
	return r.Run(sc, e.Flat)
}

// GenerateCode emits a standalone Go program for the schedule.
func (e *Environment) GenerateCode(sc *sched.Schedule) (string, error) {
	return codegen.Generate(sc, e.Flat, e.Project.Inputs)
}

// TaskRehearsal is one task's result from a sequential rehearsal.
type TaskRehearsal struct {
	Task    graph.NodeID
	Ops     int64
	Printed []string
}

// Rehearsal is the outcome of running the whole design sequentially in
// dataflow order — the paper's "trial runs of ... entire programs"
// without any machine model.
type Rehearsal struct {
	Tasks   []TaskRehearsal
	Outputs pits.Env
	// TotalOps is the measured serial work of the design.
	TotalOps int64
}

// Rehearse interprets every task once, in topological order, threading
// real values along the arcs. It returns per-task measured operation
// counts and the design's external outputs.
func (e *Environment) Rehearse() (*Rehearsal, error) {
	order, err := e.Flat.Graph.TopoSort()
	if err != nil {
		return nil, err
	}
	produced := map[graph.NodeID]pits.Env{}
	reh := &Rehearsal{Outputs: pits.Env{}}
	for _, id := range order {
		n := e.Flat.Graph.Node(id)
		env := pits.Env{}
		for _, v := range e.Flat.ExternalIn[id] {
			val, ok := e.Project.Inputs[v]
			if !ok {
				return nil, fmt.Errorf("core: task %s: missing external input %q", id, v)
			}
			env[v] = val
		}
		for _, a := range e.Flat.Graph.Pred(id) {
			val, ok := produced[a.From][a.Var]
			if !ok {
				return nil, fmt.Errorf("core: task %s: producer %s did not define %q", id, a.From, a.Var)
			}
			env[a.Var] = val
		}
		prog, err := pits.Parse(n.Routine)
		if err != nil {
			return nil, fmt.Errorf("core: task %s: %w", id, err)
		}
		ops, out, printed, err := pits.Measure(prog, env)
		if err != nil {
			return nil, fmt.Errorf("core: task %s: %w", id, err)
		}
		produced[id] = out
		reh.Tasks = append(reh.Tasks, TaskRehearsal{Task: id, Ops: ops, Printed: printed})
		reh.TotalOps += ops
		for _, v := range e.Flat.ExternalOut[id] {
			val, ok := out[v]
			if !ok {
				return nil, fmt.Errorf("core: task %s: routine did not produce %q", id, v)
			}
			reh.Outputs[v] = val
		}
	}
	return reh, nil
}

// CalibrateWork replaces every task's abstract Work estimate with the
// operation count measured by a rehearsal, closing the loop between
// "instant feedback" trial runs and scheduling quality. Tasks that
// measure zero ops keep a minimum work of 1.
func (e *Environment) CalibrateWork() (*Rehearsal, error) {
	reh, err := e.Rehearse()
	if err != nil {
		return nil, err
	}
	for _, tr := range reh.Tasks {
		n := e.Flat.Graph.Node(tr.Task)
		n.Work = tr.Ops
		if n.Work < 1 {
			n.Work = 1
		}
	}
	return reh, nil
}

// CalculatorFor opens a calculator panel for the named task of the
// flattened design, preloaded with its routine, its input variables
// (bound to rehearsal values when available) and its output variables —
// exactly the panel of Figure 4.
func (e *Environment) CalculatorFor(id graph.NodeID) (*calc.Panel, error) {
	n := e.Flat.Graph.Node(id)
	if n == nil {
		return nil, fmt.Errorf("core: no task %q in flattened design (have %v)", id, taskIDs(e.Flat.Graph))
	}
	panel := calc.NewPanel(string(id))
	// Inputs: external bindings get project values; arc inputs get
	// values by rehearsing the upstream tasks when possible.
	var upstream pits.Env
	if reh, err := e.rehearseUpTo(id); err == nil {
		upstream = reh
	}
	for _, v := range e.Flat.ExternalIn[id] {
		panel.DeclareInput(v, e.Project.Inputs[v])
	}
	for _, a := range e.Flat.Graph.Pred(id) {
		panel.DeclareInput(a.Var, upstream[a.Var])
	}
	outs := map[string]bool{}
	for _, a := range e.Flat.Graph.Succ(id) {
		if !outs[a.Var] {
			outs[a.Var] = true
			panel.DeclareOutput(a.Var)
		}
	}
	for _, v := range e.Flat.ExternalOut[id] {
		if !outs[v] {
			outs[v] = true
			panel.DeclareOutput(v)
		}
	}
	panel.LoadProgram(n.Routine)
	return panel, nil
}

// rehearseUpTo runs the ancestors of id sequentially and returns the
// values arriving on id's input arcs.
func (e *Environment) rehearseUpTo(id graph.NodeID) (pits.Env, error) {
	order, err := e.Flat.Graph.TopoSort()
	if err != nil {
		return nil, err
	}
	need := map[graph.NodeID]bool{}
	for _, a := range e.Flat.Graph.Ancestors(id) {
		need[a] = true
	}
	produced := map[graph.NodeID]pits.Env{}
	for _, tid := range order {
		if !need[tid] {
			continue
		}
		env := pits.Env{}
		for _, v := range e.Flat.ExternalIn[tid] {
			env[v] = e.Project.Inputs[v]
		}
		for _, a := range e.Flat.Graph.Pred(tid) {
			env[a.Var] = produced[a.From][a.Var]
		}
		prog, err := pits.Parse(e.Flat.Graph.Node(tid).Routine)
		if err != nil {
			return nil, err
		}
		_, out, _, err := pits.Measure(prog, env)
		if err != nil {
			return nil, err
		}
		produced[tid] = out
	}
	in := pits.Env{}
	for _, a := range e.Flat.Graph.Pred(id) {
		if v, ok := produced[a.From][a.Var]; ok {
			in[a.Var] = v
		}
	}
	return in, nil
}

func taskIDs(g *graph.Graph) []string {
	var ids []string
	for _, n := range g.Tasks() {
		ids = append(ids, string(n.ID))
	}
	sort.Strings(ids)
	return ids
}
