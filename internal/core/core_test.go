package core

import (
	"math"
	"strings"
	"testing"

	"repro/internal/exec"
	"repro/internal/machine"
	"repro/internal/pits"
	"repro/internal/project"
)

func open(t *testing.T, name string) *Environment {
	t.Helper()
	e, err := OpenBuiltin(name)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestOpenBuiltinAndErrors(t *testing.T) {
	e := open(t, "lu3x3")
	if e.Flat == nil || len(e.Flat.Graph.Tasks()) != 16 {
		t.Fatalf("flat = %v", e.Flat)
	}
	if _, err := OpenBuiltin("nosuch"); err == nil {
		t.Error("unknown builtin accepted")
	}
	broken, err := project.LU3x3()
	if err != nil {
		t.Fatal(err)
	}
	broken.Inputs = pits.Env{}
	if _, err := Open(broken); err == nil {
		t.Error("invalid project accepted")
	}
}

func TestScheduleValidatesAndNames(t *testing.T) {
	e := open(t, "lu3x3")
	for _, alg := range []string{"serial", "hlfet", "etf", "ish", "mh", "dsh", "pack"} {
		sc, err := e.Schedule(alg)
		if err != nil {
			t.Fatalf("%s: %v", alg, err)
		}
		if sc.Algorithm != alg {
			t.Errorf("algorithm = %q", sc.Algorithm)
		}
	}
	if _, err := e.Schedule("nosuch"); err == nil {
		t.Error("unknown algorithm accepted")
	}
}

func TestSpeedupCurveFigure3(t *testing.T) {
	e := open(t, "lu3x3")
	pts, err := e.SpeedupCurve("mh", []int{0, 1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 4 || pts[0].PEs != 1 || pts[3].PEs != 8 {
		t.Fatalf("points = %+v", pts)
	}
	// Monotone non-increasing makespan as the hypercube grows.
	for i := 1; i < len(pts); i++ {
		if pts[i].Makespan > pts[i-1].Makespan {
			t.Errorf("makespan grew: %+v", pts)
		}
	}
	if pts[3].Speedup <= 1.0 {
		t.Errorf("8 PEs give no speedup: %+v", pts[3])
	}
}

func TestPredictAndRunAgree(t *testing.T) {
	e := open(t, "lu3x3")
	sc, err := e.Schedule("etf")
	if err != nil {
		t.Fatal(err)
	}
	tr, err := e.Predict(sc)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Makespan() != sc.Makespan() {
		t.Errorf("predicted %v != scheduled %v", tr.Makespan(), sc.Makespan())
	}
	res, err := e.Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	x := res.Outputs["x"].(pits.Vec)
	for i, want := range project.LUSolution() {
		if math.Abs(x[i]-want) > 1e-9 {
			t.Errorf("x[%d] = %v", i+1, x[i])
		}
	}
}

func TestRehearseMeasuresAndSolves(t *testing.T) {
	e := open(t, "lu3x3")
	reh, err := e.Rehearse()
	if err != nil {
		t.Fatal(err)
	}
	if len(reh.Tasks) != 16 {
		t.Fatalf("rehearsed %d tasks", len(reh.Tasks))
	}
	if reh.TotalOps <= 0 {
		t.Errorf("total ops = %d", reh.TotalOps)
	}
	x := reh.Outputs["x"].(pits.Vec)
	for i, want := range project.LUSolution() {
		if math.Abs(x[i]-want) > 1e-9 {
			t.Errorf("x[%d] = %v", i+1, x[i])
		}
	}
	for _, tr := range reh.Tasks {
		if tr.Ops <= 0 {
			t.Errorf("task %s measured %d ops", tr.Task, tr.Ops)
		}
	}
}

func TestCalibrateWorkChangesSchedules(t *testing.T) {
	e := open(t, "lu3x3")
	before := e.Flat.Graph.TotalWork()
	reh, err := e.CalibrateWork()
	if err != nil {
		t.Fatal(err)
	}
	after := e.Flat.Graph.TotalWork()
	if after == before {
		t.Errorf("calibration left work unchanged at %d", after)
	}
	if after != reh.TotalOps {
		t.Errorf("work %d != measured ops %d", after, reh.TotalOps)
	}
	// Schedules still validate after calibration.
	if _, err := e.Schedule("mh"); err != nil {
		t.Errorf("schedule after calibration: %v", err)
	}
}

func TestCalculatorForTask(t *testing.T) {
	e := open(t, "lu3x3")
	panel, err := e.CalculatorFor("fl32")
	if err != nil {
		t.Fatal(err)
	}
	// fl32 reads a32p and u22 and outputs l32.
	roles := map[string]string{}
	vals := map[string]pits.Value{}
	for _, b := range panel.Bindings() {
		roles[b.Name] = b.Role
		vals[b.Name] = b.Value
	}
	if roles["a32p"] != "in" || roles["u22"] != "in" || roles["l32"] != "out" {
		t.Errorf("roles = %v", roles)
	}
	// Upstream rehearsal supplies live trial values (A row ops on the
	// default inputs give a32p = 3, u22 = 1).
	if vals["a32p"] != pits.Num(3) || vals["u22"] != pits.Num(1) {
		t.Errorf("upstream values = %v", vals)
	}
	// The loaded routine trial-runs instantly.
	if err := panel.Press("RUN"); err != nil {
		t.Fatalf("RUN: %v", err)
	}
	if !strings.Contains(panel.Display(), "l32 = 3") {
		t.Errorf("display = %q", panel.Display())
	}
	if _, err := e.CalculatorFor("nosuch"); err == nil {
		t.Error("unknown task accepted")
	}
}

func TestCalculatorForFigure4(t *testing.T) {
	e := open(t, "newton-sqrt")
	panel, err := e.CalculatorFor("sqrt")
	if err != nil {
		t.Fatal(err)
	}
	if err := panel.Press("RUN"); err != nil {
		t.Fatalf("RUN: %v", err)
	}
	var x pits.Value
	for _, b := range panel.Bindings() {
		if b.Name == "x" {
			x = b.Value
		}
	}
	if got := float64(x.(pits.Num)); math.Abs(got-math.Sqrt2) > 1e-9 {
		t.Errorf("x = %v", got)
	}
}

func TestGenerateCodeFromEnvironment(t *testing.T) {
	e := open(t, "stats")
	sc, err := e.Schedule("pack")
	if err != nil {
		t.Fatal(err)
	}
	src, err := e.GenerateCode(sc)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(src, "package main") || !strings.Contains(src, "func main()") {
		t.Errorf("source shape wrong")
	}
}

func TestScheduleOnDifferentMachine(t *testing.T) {
	e := open(t, "lu3x3")
	topo, err := machine.Star(5)
	if err != nil {
		t.Fatal(err)
	}
	m, err := e.Project.Machine.Scale(topo)
	if err != nil {
		t.Fatal(err)
	}
	sc, err := e.ScheduleOn("mh", m)
	if err != nil {
		t.Fatal(err)
	}
	if sc.Machine.NumPE() != 5 {
		t.Errorf("machine = %v", sc.Machine)
	}
}

// The three engines must agree: after calibrating work from a
// rehearsal, a contention-free schedule (prediction), the discrete-
// event simulation, and a *real* goroutine execution in virtual time
// all produce the identical Gantt chart.
func TestVirtualTimeRunMatchesScheduleExactly(t *testing.T) {
	e := open(t, "lu3x3")
	if _, err := e.CalibrateWork(); err != nil {
		t.Fatal(err)
	}
	sc, err := e.Schedule("etf")
	if err != nil {
		t.Fatal(err)
	}
	r := &exec.Runner{Inputs: e.Project.Inputs, VirtualTime: true}
	res, err := r.Run(sc, e.Flat)
	if err != nil {
		t.Fatal(err)
	}
	if res.Trace.Makespan() != sc.Makespan() {
		t.Errorf("virtual run makespan %v != scheduled %v", res.Trace.Makespan(), sc.Makespan())
	}
	spans, err := res.Trace.Spans()
	if err != nil {
		t.Fatal(err)
	}
	for pe := 0; pe < sc.Machine.NumPE(); pe++ {
		want := sc.PESlots(pe)
		got := spans[pe]
		if len(got) != len(want) {
			t.Fatalf("PE%d: %d spans vs %d slots", pe, len(got), len(want))
		}
		for i := range want {
			if got[i].Task != want[i].Task || got[i].Start != want[i].Start || got[i].Finish != want[i].Finish {
				t.Errorf("PE%d slot %d: virtual %+v vs scheduled %+v", pe, i, got[i], want[i])
			}
		}
	}
	// And of course the answer is still right.
	x := res.Outputs["x"].(pits.Vec)
	if x[0] != 1 || x[1] != 2 || x[2] != 3 {
		t.Errorf("x = %v", x)
	}
}

// Virtual-time traces are bit-identical across runs even though the
// goroutine interleaving differs.
func TestVirtualTimeRunDeterministic(t *testing.T) {
	e := open(t, "stats")
	sc, err := e.Schedule("mh")
	if err != nil {
		t.Fatal(err)
	}
	r := &exec.Runner{Inputs: e.Project.Inputs, VirtualTime: true}
	res1, err := r.Run(sc, e.Flat)
	if err != nil {
		t.Fatal(err)
	}
	res2, err := r.Run(sc, e.Flat)
	if err != nil {
		t.Fatal(err)
	}
	if len(res1.Trace.Events) != len(res2.Trace.Events) {
		t.Fatalf("event counts differ: %d vs %d", len(res1.Trace.Events), len(res2.Trace.Events))
	}
	for i := range res1.Trace.Events {
		if res1.Trace.Events[i] != res2.Trace.Events[i] {
			t.Fatalf("event %d differs: %+v vs %+v", i, res1.Trace.Events[i], res2.Trace.Events[i])
		}
	}
}
