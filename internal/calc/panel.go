// Package calc models Banger's programmable pocket calculator — the
// friendly user interface (paper Figure 4) through which a scientific
// non-programmer defines the PITS routine of each primitive dataflow
// node.
//
// The panel is a state machine: a list of input/output variables (the
// upper-right window), a list of local variables (upper-left), a panel
// of programming buttons (upper-middle), a program text window (lower)
// and a one-line display. Pressing buttons assembles program text;
// pressing RUN trial-runs the routine on the current input values and
// shows the result immediately — the paper's "instant feedback"
// principle. Render draws the whole panel as ASCII art.
package calc

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/pits"
)

// Binding is one row of the panel's variable windows.
type Binding struct {
	Name  string
	Value pits.Value // nil when not yet set
	// Role is "in", "out", "in/out" or "local".
	Role string
}

// Panel is the calculator state for one task.
type Panel struct {
	TaskName string

	io      []Binding
	locals  []string
	program []string // one entry per pressed token; joined for source
	display string
	lastRun *pits.TrialReport
}

// NewPanel returns a panel for defining the named task.
func NewPanel(taskName string) *Panel {
	return &Panel{TaskName: taskName, display: "ready"}
}

// DeclareInput adds (or updates) an input variable with a trial value.
func (p *Panel) DeclareInput(name string, v pits.Value) {
	for i := range p.io {
		if p.io[i].Name == name {
			p.io[i].Value = v
			if p.io[i].Role == "out" {
				p.io[i].Role = "in/out"
			}
			return
		}
	}
	p.io = append(p.io, Binding{Name: name, Value: v, Role: "in"})
}

// DeclareOutput adds an output variable the routine must produce.
func (p *Panel) DeclareOutput(name string) {
	for i := range p.io {
		if p.io[i].Name == name {
			if p.io[i].Role == "in" {
				p.io[i].Role = "in/out"
			}
			return
		}
	}
	p.io = append(p.io, Binding{Name: name, Role: "out"})
}

// DeclareLocal adds a local variable to the upper-left window.
func (p *Panel) DeclareLocal(name string) {
	for _, l := range p.locals {
		if l == name {
			return
		}
	}
	p.locals = append(p.locals, name)
	sort.Strings(p.locals)
}

// Inputs returns the current input bindings as an environment.
func (p *Panel) Inputs() pits.Env {
	env := pits.Env{}
	for _, b := range p.io {
		if (b.Role == "in" || b.Role == "in/out") && b.Value != nil {
			env[b.Name] = b.Value
		}
	}
	return env
}

// Program returns the current source text of the program window.
func (p *Panel) Program() string { return strings.Join(p.program, "") }

// LoadProgram replaces the program window with existing source (used
// when reopening a node that already has a routine).
func (p *Panel) LoadProgram(src string) {
	p.program = p.program[:0]
	if src != "" {
		p.program = append(p.program, src)
	}
	p.display = "program loaded"
}

// Display returns the one-line calculator display.
func (p *Panel) Display() string { return p.display }

// LastRun returns the report of the most recent RUN press, or nil.
func (p *Panel) LastRun() *pits.TrialReport { return p.lastRun }

// Button is one key of the calculator's button panel.
type Button struct {
	Label  string // what is written on the key
	Insert string // text inserted into the program window ("" = control key)
}

// Buttons returns the panel layout as rows of buttons, mirroring the
// groups of Figure 4: digits and arithmetic, comparisons and logic,
// control constructs, scientific functions, constants, and control
// keys.
func Buttons() [][]Button {
	key := func(label string) Button { return Button{Label: label, Insert: label} }
	rows := [][]Button{
		{key("7"), key("8"), key("9"), key("+"), key("-"), key("*"), key("/")},
		{key("4"), key("5"), key("6"), key("^"), key("%"), key("("), key(")")},
		{key("1"), key("2"), key("3"), key("0"), key("."), key("["), key("]")},
		{key("=="), key("!="), key("<"), key("<="), key(">"), key(">="), key(",")},
		{key("and"), key("or"), key("not"), key("true"), key("false"), key("pi"), key("e")},
		{key("="), key("if"), key("then"), key("else"), key("end"), key("while"), key("do")},
		{key("repeat"), key("for"), key("to"), key("step"), key("print"), Button{Label: "ENTER", Insert: "\n"}, Button{Label: "SPACE", Insert: " "}},
	}
	// Scientific function row(s) from the builtin table.
	var fns []Button
	for _, b := range pits.Builtins() {
		fns = append(fns, Button{Label: b.Name, Insert: b.Name + "("})
	}
	fns = append(fns, Button{Label: "rand", Insert: "rand("})
	for len(fns) > 0 {
		n := min(7, len(fns))
		rows = append(rows, fns[:n])
		fns = fns[n:]
	}
	rows = append(rows, []Button{
		{Label: "DEL"}, {Label: "CLEAR"}, {Label: "CHECK"}, {Label: "RUN"},
	})
	return rows
}

// buttonByLabel finds a button in the layout.
func buttonByLabel(label string) (Button, bool) {
	for _, row := range Buttons() {
		for _, b := range row {
			if b.Label == label {
				return b, true
			}
		}
	}
	return Button{}, false
}

// Press handles one key press. Text keys append to the program window
// with calculator-style spacing; identifiers can also be typed through
// Type. Control keys:
//
//	DEL    remove the last pressed token
//	CLEAR  empty the program window
//	CHECK  statically check the routine against declared variables
//	RUN    trial-run the routine on the current input values
//
// Press never returns an error for program-text keys: mistakes are
// surfaced by CHECK and RUN on the display, the way a calculator
// behaves.
func (p *Panel) Press(label string) error {
	switch label {
	case "DEL":
		if len(p.program) > 0 {
			p.program = p.program[:len(p.program)-1]
		}
		p.display = "deleted"
		return nil
	case "CLEAR":
		p.program = p.program[:0]
		p.display = "cleared"
		return nil
	case "CHECK":
		return p.check()
	case "RUN":
		return p.Run()
	}
	b, ok := buttonByLabel(label)
	if !ok {
		p.display = fmt.Sprintf("no such key %q", label)
		return fmt.Errorf("calc: no such key %q", label)
	}
	p.appendToken(b.Insert)
	p.display = label
	return nil
}

// Type enters free text (identifiers, numbers) as if typed on the
// panel's alphanumeric pad.
func (p *Panel) Type(text string) {
	p.appendToken(text)
	p.display = text
}

// appendToken adds text with single-space separation except after an
// opening bracket/paren or at line start, keeping the program readable.
func (p *Panel) appendToken(text string) {
	if text == "\n" {
		p.program = append(p.program, "\n")
		return
	}
	if len(p.program) > 0 {
		last := p.program[len(p.program)-1]
		noSpaceAfter := strings.HasSuffix(last, "(") || strings.HasSuffix(last, "[") || strings.HasSuffix(last, "\n")
		noSpaceBefore := text == ")" || text == "]" || text == "," || text == "("
		if !noSpaceAfter && !noSpaceBefore {
			text = " " + text
		}
	}
	p.program = append(p.program, text)
}

// declaredNames returns every variable the panel knows about.
func (p *Panel) declaredNames() []string {
	var names []string
	for _, b := range p.io {
		if b.Role == "in" || b.Role == "in/out" {
			names = append(names, b.Name)
		}
	}
	names = append(names, p.locals...)
	return names
}

// check statically validates the program and reports on the display.
func (p *Panel) check() error {
	prog, err := pits.Parse(p.Program())
	if err != nil {
		p.display = err.Error()
		return err
	}
	if err := pits.Check(prog, p.declaredNames()); err != nil {
		p.display = err.Error()
		return err
	}
	// Check that every declared output is assigned somewhere.
	writes := map[string]bool{}
	for _, w := range pits.Writes(prog) {
		writes[w] = true
	}
	for _, b := range p.io {
		if (b.Role == "out" || b.Role == "in/out") && !writes[b.Name] {
			err := fmt.Errorf("calc: output %q is never assigned", b.Name)
			p.display = err.Error()
			return err
		}
	}
	p.display = fmt.Sprintf("ok: %d statements", prog.NumStmts())
	return nil
}

// Run trial-runs the routine with the current inputs (the paper's
// instant feedback). Output variable values are written back into the
// I/O window and the display shows the first output or print line.
func (p *Panel) Run() error {
	rep, err := pits.TrialRun(p.Program(), p.Inputs())
	if err != nil {
		p.display = err.Error()
		return err
	}
	p.lastRun = rep
	for i := range p.io {
		if p.io[i].Role == "out" || p.io[i].Role == "in/out" {
			if v, ok := rep.Outputs[p.io[i].Name]; ok {
				p.io[i].Value = v
			}
		}
	}
	switch {
	case len(rep.Printed) > 0:
		p.display = rep.Printed[len(rep.Printed)-1]
	default:
		p.display = rep.String()
		for _, b := range p.io {
			if (b.Role == "out" || b.Role == "in/out") && b.Value != nil {
				p.display = fmt.Sprintf("%s = %s", b.Name, b.Value)
				break
			}
		}
	}
	return nil
}

// Bindings returns a copy of the I/O window rows.
func (p *Panel) Bindings() []Binding {
	return append([]Binding(nil), p.io...)
}

// Locals returns the local-variable window rows, including variables
// discovered from the program text that are neither inputs nor outputs.
func (p *Panel) Locals() []string {
	seen := map[string]bool{}
	for _, l := range p.locals {
		seen[l] = true
	}
	if prog, err := pits.Parse(p.Program()); err == nil {
		iovars := map[string]bool{}
		for _, b := range p.io {
			iovars[b.Name] = true
		}
		for _, w := range pits.Writes(prog) {
			if !iovars[w] && !seen[w] {
				seen[w] = true
			}
		}
	}
	out := make([]string, 0, len(seen))
	for l := range seen {
		out = append(out, l)
	}
	sort.Strings(out)
	return out
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
