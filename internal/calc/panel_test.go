package calc

import (
	"math"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/pits"
)

func TestPressAssemblesProgram(t *testing.T) {
	p := NewPanel("double")
	p.DeclareInput("a", pits.Num(21))
	p.DeclareOutput("x")
	p.Type("x")
	mustPress(t, p, "=")
	p.Type("a")
	mustPress(t, p, "*")
	mustPress(t, p, "2")
	if got := p.Program(); got != "x = a * 2" {
		t.Fatalf("program = %q", got)
	}
	if err := p.Press("RUN"); err != nil {
		t.Fatalf("RUN: %v", err)
	}
	for _, b := range p.Bindings() {
		if b.Name == "x" {
			if b.Value != pits.Num(42) {
				t.Errorf("x = %v", b.Value)
			}
		}
	}
	if !strings.Contains(p.Display(), "42") {
		t.Errorf("display = %q", p.Display())
	}
}

func mustPress(t *testing.T, p *Panel, keys ...string) {
	t.Helper()
	for _, k := range keys {
		if err := p.Press(k); err != nil {
			t.Fatalf("press %q: %v", k, err)
		}
	}
}

func TestFunctionKeyInsertsOpenParen(t *testing.T) {
	p := NewPanel("f")
	p.DeclareInput("a", pits.Num(16))
	p.DeclareOutput("x")
	p.Type("x")
	mustPress(t, p, "=", "sqrt")
	p.Type("a")
	mustPress(t, p, ")")
	if got := p.Program(); got != "x = sqrt(a)" {
		t.Fatalf("program = %q", got)
	}
	mustPress(t, p, "RUN")
	if p.LastRun() == nil || p.LastRun().Outputs["x"] != pits.Num(4) {
		t.Errorf("run result: %+v", p.LastRun())
	}
}

func TestDelAndClear(t *testing.T) {
	p := NewPanel("t")
	p.Type("x")
	mustPress(t, p, "=", "1", "+", "2")
	mustPress(t, p, "DEL")
	if got := p.Program(); got != "x = 1 +" {
		t.Fatalf("after DEL: %q", got)
	}
	mustPress(t, p, "CLEAR")
	if p.Program() != "" {
		t.Fatalf("after CLEAR: %q", p.Program())
	}
}

func TestUnknownKey(t *testing.T) {
	p := NewPanel("t")
	if err := p.Press("BOGUS"); err == nil {
		t.Error("unknown key accepted")
	}
	if !strings.Contains(p.Display(), "BOGUS") {
		t.Errorf("display = %q", p.Display())
	}
}

func TestCheckReportsProblemsOnDisplay(t *testing.T) {
	p := NewPanel("t")
	p.DeclareOutput("y")
	p.LoadProgram("y = undefined_var + 1")
	if err := p.Press("CHECK"); err == nil {
		t.Error("CHECK passed a broken routine")
	}
	if !strings.Contains(p.Display(), "undefined_var") {
		t.Errorf("display = %q", p.Display())
	}
	// Unassigned declared output is caught too.
	p2 := NewPanel("t2")
	p2.DeclareInput("a", pits.Num(1))
	p2.DeclareOutput("never_set")
	p2.LoadProgram("x = a")
	if err := p2.Press("CHECK"); err == nil || !strings.Contains(err.Error(), "never_set") {
		t.Errorf("unassigned output not caught: %v", err)
	}
	// A good routine reports ok.
	p3 := NewPanel("t3")
	p3.DeclareInput("a", pits.Num(1))
	p3.DeclareOutput("x")
	p3.LoadProgram("x = a + 1")
	if err := p3.Press("CHECK"); err != nil {
		t.Errorf("CHECK failed a good routine: %v", err)
	}
	if !strings.Contains(p3.Display(), "ok") {
		t.Errorf("display = %q", p3.Display())
	}
}

func TestRunFailureShowsErrorInstantly(t *testing.T) {
	p := NewPanel("t")
	p.LoadProgram("x = 1 / 0")
	if err := p.Press("RUN"); err == nil {
		t.Fatal("RUN of failing routine returned nil")
	}
	if !strings.Contains(p.Display(), "division by zero") {
		t.Errorf("display = %q", p.Display())
	}
}

// The paper's Figure 4 scenario end to end: the SquareRoot task
// computing x = sqrt(a) by Newton–Raphson, with locals xold and err.
func TestFigure4SquareRootPanel(t *testing.T) {
	p := NewPanel("SquareRoot")
	p.DeclareInput("a", pits.Num(2))
	p.DeclareOutput("x")
	p.DeclareLocal("xold")
	p.DeclareLocal("err")
	p.LoadProgram(`x = a
eps = 1e-12
err = 1
while err > eps do
  xold = x
  x = 0.5 * (xold + a / xold)
  err = abs(x - xold)
end`)
	if err := p.Press("CHECK"); err != nil {
		t.Fatalf("CHECK: %v", err)
	}
	if err := p.Press("RUN"); err != nil {
		t.Fatalf("RUN: %v", err)
	}
	var x pits.Value
	for _, b := range p.Bindings() {
		if b.Name == "x" {
			x = b.Value
		}
	}
	if got := float64(x.(pits.Num)); math.Abs(got-math.Sqrt2) > 1e-9 {
		t.Errorf("x = %v, want sqrt(2)", got)
	}
	// Locals window picks up eps discovered from the program text.
	locals := p.Locals()
	want := map[string]bool{"xold": true, "err": true, "eps": true}
	for _, l := range locals {
		delete(want, l)
	}
	if len(want) != 0 {
		t.Errorf("locals %v missing %v", locals, want)
	}
}

func TestDeclareRoles(t *testing.T) {
	p := NewPanel("t")
	p.DeclareInput("x", pits.Num(1))
	p.DeclareOutput("x") // same variable in and out
	bs := p.Bindings()
	if len(bs) != 1 || bs[0].Role != "in/out" {
		t.Errorf("bindings = %+v", bs)
	}
	p2 := NewPanel("t2")
	p2.DeclareOutput("y")
	p2.DeclareInput("y", pits.Num(3))
	if bs := p2.Bindings(); bs[0].Role != "in/out" {
		t.Errorf("bindings = %+v", bs)
	}
	// Duplicate local declarations collapse.
	p2.DeclareLocal("l")
	p2.DeclareLocal("l")
	if len(p2.Locals()) != 1 {
		t.Errorf("locals = %v", p2.Locals())
	}
}

func TestButtonsLayoutComplete(t *testing.T) {
	rows := Buttons()
	if len(rows) < 8 {
		t.Fatalf("only %d button rows", len(rows))
	}
	labels := map[string]bool{}
	for _, row := range rows {
		for _, b := range row {
			labels[b.Label] = true
		}
	}
	for _, want := range []string{"7", "+", "if", "while", "sqrt", "sin", "RUN", "CHECK", "DEL", "CLEAR", "ENTER", "pi"} {
		if !labels[want] {
			t.Errorf("button %q missing", want)
		}
	}
}

func TestRenderShowsAllWindows(t *testing.T) {
	p := NewPanel("SquareRoot")
	p.DeclareInput("a", pits.Num(2))
	p.DeclareOutput("x")
	p.LoadProgram("x = sqrt(a)")
	mustPress(t, p, "RUN")
	out := Render(p)
	for _, want := range []string{"Task: SquareRoot", "LOCALS", "KEYS", "I/O VARIABLES", "PROGRAM", "x = sqrt(a)", "DISPLAY", "a = 2 (in)"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}

func TestRenderEmptyPanel(t *testing.T) {
	out := Render(NewPanel("empty"))
	if !strings.Contains(out, "(empty)") || !strings.Contains(out, "ready") {
		t.Errorf("render:\n%s", out)
	}
}

func TestSpacingAroundPunctuation(t *testing.T) {
	p := NewPanel("t")
	p.Type("v")
	mustPress(t, p, "[", "1", "]", "=", "min")
	p.Type("2")
	mustPress(t, p, ",")
	p.Type("3")
	mustPress(t, p, ")")
	if got := p.Program(); got != "v [1] = min(2, 3)" {
		t.Errorf("program = %q", got)
	}
}

// Random key mashing must never panic — calculators face toddlers.
func TestPanelSurvivesRandomKeyMashing(t *testing.T) {
	var labels []string
	for _, row := range Buttons() {
		for _, b := range row {
			labels = append(labels, b.Label)
		}
	}
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 50; trial++ {
		p := NewPanel("mash")
		p.DeclareInput("a", pits.Num(1))
		for i := 0; i < 40; i++ {
			label := labels[rng.Intn(len(labels))]
			func() {
				defer func() {
					if r := recover(); r != nil {
						t.Fatalf("panic pressing %q after %q: %v", label, p.Program(), r)
					}
				}()
				_ = p.Press(label) // errors are fine; panics are not
			}()
		}
		// The panel still renders whatever state it reached.
		if out := Render(p); out == "" {
			t.Fatal("empty render after mashing")
		}
	}
}
