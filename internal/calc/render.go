package calc

import (
	"fmt"
	"strings"
)

// Render draws the calculator panel as ASCII art in the layout of the
// paper's Figure 4: local variables upper-left, I/O variables
// upper-right, the button panel upper-middle (abbreviated), the program
// window below, and the display line at the bottom.
func Render(p *Panel) string {
	const width = 78
	var b strings.Builder
	title := fmt.Sprintf(" Task: %s ", p.TaskName)
	pad := width - len(title)
	if pad < 2 {
		pad = 2
	}
	fmt.Fprintf(&b, "+%s%s%s+\n", strings.Repeat("-", pad/2), title, strings.Repeat("-", pad-pad/2))

	// Upper windows: locals | buttons | io, drawn as three columns.
	locals := p.Locals()
	ios := p.Bindings()
	var btnLines []string
	for _, row := range Buttons() {
		var labels []string
		for _, k := range row {
			labels = append(labels, k.Label)
		}
		btnLines = append(btnLines, strings.Join(labels, " "))
	}
	colL, colM, colR := 18, 30, 24
	rows := len(btnLines)
	if len(locals)+1 > rows {
		rows = len(locals) + 1
	}
	if len(ios)+1 > rows {
		rows = len(ios) + 1
	}
	cell := func(s string, w int) string {
		if len(s) > w {
			s = s[:w-1] + "…"
		}
		return s + strings.Repeat(" ", w-len([]rune(s)))
	}
	for i := 0; i < rows; i++ {
		var l, m, r string
		switch {
		case i == 0:
			l, m, r = "LOCALS", "KEYS", "I/O VARIABLES"
		default:
			if i-1 < len(locals) {
				l = locals[i-1]
			}
			if i-1 < len(btnLines) {
				m = btnLines[i-1]
			}
			if i-1 < len(ios) {
				v := "?"
				if ios[i-1].Value != nil {
					v = ios[i-1].Value.String()
				}
				r = fmt.Sprintf("%s = %s (%s)", ios[i-1].Name, v, ios[i-1].Role)
			}
		}
		fmt.Fprintf(&b, "| %s | %s | %s |\n", cell(l, colL), cell(m, colM), cell(r, colR-6))
	}
	fmt.Fprintf(&b, "+%s+\n", strings.Repeat("-", width))

	b.WriteString("| PROGRAM" + strings.Repeat(" ", width-8) + "|\n")
	src := p.Program()
	if src == "" {
		src = "(empty)"
	}
	for _, line := range strings.Split(strings.TrimRight(src, "\n"), "\n") {
		fmt.Fprintf(&b, "|   %s|\n", cell(line, width-3))
	}
	fmt.Fprintf(&b, "+%s+\n", strings.Repeat("-", width))
	fmt.Fprintf(&b, "| DISPLAY: %s|\n", cell(p.Display(), width-10))
	fmt.Fprintf(&b, "+%s+\n", strings.Repeat("-", width))
	return b.String()
}
