package exec

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/graph"
	"repro/internal/machine"
	"repro/internal/pits"
	"repro/internal/sched"
	"repro/internal/trace"
)

// This file is the run coordinator: the goroutine that watches worker
// life-cycle events, detects global stalls, and — when a processor
// crashes — drives the pause/replan/resume recovery protocol.

// wevent is a worker life-cycle notification to the coordinator.
type wevent struct {
	kind wekind
	pe   int
}

type wekind int

const (
	evIdle   wekind = iota // worker finished its current slot list
	evCrash                // worker hit an injected crash and died
	evParked               // worker reached the recovery barrier
)

// era is one epoch of execution between recoveries. pause is closed to
// order every live worker to the barrier; resume is closed once the new
// plan is installed. Messages stamp their era's epoch so deliveries
// from before a recovery are recognisably stale.
type era struct {
	epoch  int64
	pause  chan struct{}
	resume chan struct{}
}

// sessCmd is one request from the session API (Pause/Resume) to the
// distributed coordinator loop.
type sessCmd struct {
	kind cmdKind
	plan *ResumePlan
	// checkpoint asks a pause to hand over the full worker-local state
	// (a graceful drain's departure gift); see PauseCheckpoint.
	checkpoint bool
	reply      chan sessReply
}

type cmdKind int

const (
	cmdPause cmdKind = iota
	cmdResume
)

type sessReply struct {
	state *PauseState
}

// controller owns the shared state of one execution session.
type controller struct {
	runner *Runner
	s      *sched.Schedule
	flat   *graph.Flat
	numPE  int

	// hosted flags the processors this process runs (nil = all); plane
	// carries remote traffic when hosting a subset. cmds feeds
	// Pause/Resume requests to the distributed coordinator loop.
	hosted []bool
	plane  RemotePlane
	cmds   chan sessCmd
	// quiescent is set while every live hosted worker is idle or parked
	// (distributed mode only): local progress legitimately stops while
	// other processes still work, so the stall detector must hold fire.
	quiescent atomic.Bool

	inboxes []chan xmsg
	done    chan struct{} // closed to abort the run (some worker failed)
	finish  chan struct{} // closed on clean completion (all workers idle)

	doneOnce   sync.Once
	finishOnce sync.Once

	events chan wevent

	era      atomic.Pointer[era]
	progress atomic.Uint64 // bumped per task completion and accepted message

	mu      sync.Mutex
	extra   []trace.Event  // events emitted outside worker goroutines
	waiting map[int]string // pe -> edge currently waited on (stall diagnosis)
	runErr  error          // coordinator-detected failure (stall, unrecoverable crash)

	bg sync.WaitGroup // retry, delay and stall goroutines

	workers   []*worker
	faults    *faultState
	retry     bool
	checksums bool
	grace     float64
	now       func() machine.Time
	stats     *Stats
}

func (c *controller) abort()    { c.doneOnce.Do(func() { close(c.done) }) }
func (c *controller) complete() { c.finishOnce.Do(func() { close(c.finish) }) }

// isLocal reports whether processor pe is hosted by this process.
func (c *controller) isLocal(pe int) bool {
	return c.hosted == nil || (pe >= 0 && pe < len(c.hosted) && c.hosted[pe])
}

// numLocal counts the processors hosted by this process.
func (c *controller) numLocal() int {
	if c.hosted == nil {
		return c.numPE
	}
	n := 0
	for _, h := range c.hosted {
		if h {
			n++
		}
	}
	return n
}

// fail records a coordinator-level root cause and aborts the run.
func (c *controller) fail(err error) {
	c.mu.Lock()
	if c.runErr == nil {
		c.runErr = err
	}
	c.mu.Unlock()
	c.abort()
}

// addEvent appends a trace event from outside a worker goroutine.
func (c *controller) addEvent(e trace.Event) {
	c.mu.Lock()
	c.extra = append(c.extra, e)
	c.mu.Unlock()
}

// setWaiting records what processor pe is blocked on ("" clears it).
func (c *controller) setWaiting(pe int, edge string) {
	c.mu.Lock()
	if edge == "" {
		delete(c.waiting, pe)
	} else {
		c.waiting[pe] = edge
	}
	c.mu.Unlock()
}

// waitingSummary renders the blocked processors for stall diagnostics.
func (c *controller) waitingSummary() string {
	return c.waitingExcept(-1)
}

// waitingExcept renders the blocked processors other than skip — a
// watchdog that fires downstream of the real loss uses it to point at
// the edge that is actually missing.
func (c *controller) waitingExcept(skip int) string {
	c.mu.Lock()
	defer c.mu.Unlock()
	pes := make([]int, 0, len(c.waiting))
	for pe := range c.waiting {
		if pe != skip {
			pes = append(pes, pe)
		}
	}
	if len(pes) == 0 {
		if skip < 0 {
			return "no worker waiting on a message"
		}
		return ""
	}
	sort.Ints(pes)
	parts := make([]string, len(pes))
	for i, pe := range pes {
		parts[i] = fmt.Sprintf("PE %d waits for %s", pe, c.waiting[pe])
	}
	return strings.Join(parts, "; ")
}

// post sends a life-cycle event to the coordinator, giving up if the
// run aborts.
func (c *controller) post(ev wevent) {
	select {
	case c.events <- ev:
	case <-c.done:
	}
}

// coordinate is the coordinator loop. Hosting the whole machine it ends
// the run cleanly when all live workers are idle and runs the recovery
// protocol on each crash; hosting a subset it reports idleness and
// crashes to the remote plane and obeys the global coordinator's
// Pause/Resume/FinishRun commands instead.
func (c *controller) coordinate() {
	if c.plane != nil {
		c.coordinateRemote()
		return
	}
	live := c.numPE
	idle := 0
	dead := make([]bool, c.numPE)
	for {
		select {
		case <-c.done:
			return
		case ev := <-c.events:
			switch ev.kind {
			case evIdle:
				idle++
				if idle >= live {
					c.complete()
					return
				}
			case evCrash:
				dead[ev.pe] = true
				live--
				if live == 0 {
					c.fail(fmt.Errorf("exec: all processors crashed"))
					return
				}
				if !c.recoverRun(dead, &live) {
					return
				}
				idle = 0
			}
		}
	}
}

// recoverRun drives one recovery: order every live worker to the
// barrier, replan the lost work with sched.Recover, install the new
// assignments and release the workers into the next era. Returns false
// if the run must end instead.
func (c *controller) recoverRun(dead []bool, live *int) bool {
	er := c.era.Load()
	close(er.pause)
	parked := 0
	for parked < *live {
		select {
		case <-c.done:
			return false
		case ev := <-c.events:
			switch ev.kind {
			case evParked:
				parked++
			case evCrash:
				// A second processor died racing the pause.
				dead[ev.pe] = true
				*live--
				if *live == 0 {
					c.fail(fmt.Errorf("exec: all processors crashed"))
					return false
				}
			case evIdle:
				// Stale: the worker will park too.
			}
		}
	}

	// Every live worker is parked: their state is safe to read (the
	// evParked receive orders their writes before ours) and to rewrite
	// (closing resume orders our writes before their reads).
	// Each surviving task result is attributed to its lowest live
	// holder (the ascending pe loop makes the choice deterministic).
	liveMask := make([]bool, c.numPE)
	doneTasks := map[graph.NodeID]int{}
	for pe := 0; pe < c.numPE; pe++ {
		if dead[pe] {
			continue
		}
		liveMask[pe] = true
		for t := range c.workers[pe].local {
			if _, ok := doneTasks[t]; !ok {
				doneTasks[t] = pe
			}
		}
	}

	plan, err := sched.Recover(c.s, sched.RecoverState{Live: liveMask, Done: doneTasks})
	if err != nil {
		c.fail(fmt.Errorf("exec: crash recovery failed: %w", err))
		return false
	}
	c.install(plan, doneTasks, dead, er)
	c.stats.Recoveries.Add(1)

	next := &era{epoch: er.epoch + 1, pause: make(chan struct{}), resume: make(chan struct{})}
	c.era.Store(next)
	close(er.resume)
	return true
}

// assignment is the per-processor derivation of a recovery plan: slot
// lists, expected arrivals with predicted times, sends from re-run
// producers and era-start re-sends of surviving results.
type assignment struct {
	slots    [][]sched.Slot
	expected []map[msgKey]machine.Time
	sends    []map[graph.NodeID][]sendPlan
	resends  [][]sendPlan
}

// deriveAssignment turns a recovery plan's global slot and message lists
// into per-processor worker assignments. done maps surviving tasks to
// their holders: deliveries from them become era-start re-sends from the
// holder's local store instead of sends attached to a task execution.
func deriveAssignment(numPE int, slots []sched.Slot, msgs []sched.Msg, done map[graph.NodeID]int) *assignment {
	a := &assignment{
		slots:    make([][]sched.Slot, numPE),
		expected: make([]map[msgKey]machine.Time, numPE),
		sends:    make([]map[graph.NodeID][]sendPlan, numPE),
		resends:  make([][]sendPlan, numPE),
	}
	for _, sl := range slots {
		a.slots[sl.PE] = append(a.slots[sl.PE], sl)
	}
	for pe := 0; pe < numPE; pe++ {
		a.expected[pe] = map[msgKey]machine.Time{}
		a.sends[pe] = map[graph.NodeID][]sendPlan{}
	}
	for _, m := range msgs {
		k := msgKey{m.From, m.To, m.Var}
		a.expected[m.ToPE][k] = m.Recv
		sp := sendPlan{key: k, toPE: m.ToPE, words: m.Words}
		if _, held := done[m.From]; held {
			// The producer's result survives on m.FromPE: that worker
			// re-sends the value from its local store at era start.
			a.resends[m.FromPE] = append(a.resends[m.FromPE], sp)
		} else {
			a.sends[m.FromPE][m.From] = append(a.sends[m.FromPE][m.From], sp)
		}
	}
	return a
}

// applyAssignment rewrites the parked live hosted workers' per-era state
// from the derived assignment.
func (c *controller) applyAssignment(a *assignment, epoch int64, dead []bool) {
	for pe, w := range c.workers {
		if w == nil || dead[pe] || w.dead {
			continue
		}
		w.slots = a.slots[pe]
		w.cursor = 0
		w.expected = a.expected[pe]
		w.sends = a.sends[pe]
		w.resends = a.resends[pe]
		w.epoch = epoch
	}
}

// computeAdoptions finds orphaned external outputs: a task whose result
// survives (so it will not re-run) but whose exporting copy died must be
// exported by its holder instead. Only meaningful when every worker is
// in this process; distributed runs compute adoptions globally from the
// sessions' PauseStates.
func (c *controller) computeAdoptions(doneTasks map[graph.NodeID]int, dead []bool) []Adoption {
	tasks := make([]graph.NodeID, 0, len(doneTasks))
	for t := range doneTasks {
		tasks = append(tasks, t)
	}
	sort.Slice(tasks, func(i, j int) bool { return tasks[i] < tasks[j] })
	var ads []Adoption
	for _, t := range tasks {
		for _, v := range c.flat.ExternalOut[t] {
			q := string(t) + "." + v
			present := false
			for pe, w := range c.workers {
				if w == nil || dead[pe] {
					continue
				}
				if _, ok := w.outputs[q]; ok {
					present = true
					break
				}
			}
			if !present {
				ads = append(ads, Adoption{Task: t, Var: v, PE: doneTasks[t]})
			}
		}
	}
	return ads
}

// applyAdoptions re-exports orphaned external outputs from their
// surviving holders. Adoptions naming remote holders are skipped: their
// hosting process applies them.
func (c *controller) applyAdoptions(ads []Adoption) {
	for _, a := range ads {
		if a.PE < 0 || a.PE >= c.numPE {
			continue
		}
		hw := c.workers[a.PE]
		if hw == nil || hw.dead {
			continue
		}
		if val, ok := hw.local[a.Task][a.Var]; ok {
			hw.outputs[string(a.Task)+"."+a.Var] = val
			hw.exports[a.Var] = a.Task
		}
	}
}

// install rewrites the parked workers' assignments from the recovery
// plan and records the rescheduling in the trace.
func (c *controller) install(plan *sched.Reassignment, doneTasks map[graph.NodeID]int, dead []bool, er *era) {
	// Timestamp for the rescheduling events: the wall clock, or the
	// latest live virtual clock in virtual-time mode.
	at := c.now()
	if c.runner.VirtualTime {
		at = 0
		for pe, w := range c.workers {
			if !dead[pe] && w.clock > at {
				at = w.clock
			}
		}
	}
	for _, sl := range plan.Slots {
		orig := sl.PE
		if ps, ok := c.s.PrimarySlot(sl.Task); ok {
			orig = ps.PE
		}
		c.addEvent(trace.Event{Kind: trace.TaskRescheduled, At: at, Task: sl.Task,
			PE: sl.PE, Peer: orig, Note: "recovery"})
	}

	a := deriveAssignment(c.numPE, plan.Slots, plan.Msgs, doneTasks)
	c.applyAssignment(a, er.epoch+1, dead)
	c.applyAdoptions(c.computeAdoptions(doneTasks, dead))
}

// coordinateRemote is the coordinator loop of a session hosting a
// subset of the machine: crashes and idleness are reported to the
// remote plane (the global coordinator decides what to do), and
// Pause/Resume arrive as commands instead of being self-initiated.
func (c *controller) coordinateRemote() {
	live := c.numLocal()
	idle := 0
	if live == 0 {
		// A session hosting no processors is trivially quiescent; it
		// exists only to be told the run finished.
		c.quiescent.Store(true)
	}
	for {
		select {
		case <-c.done:
			return
		case <-c.finish:
			return
		case ev := <-c.events:
			switch ev.kind {
			case evIdle:
				idle++
				if idle >= live {
					c.quiescent.Store(true)
					c.plane.LocalIdle()
				}
			case evCrash:
				live--
				if live <= 0 {
					c.quiescent.Store(true)
				}
				c.plane.LocalCrash(ev.pe)
			}
		case cmd := <-c.cmds:
			switch cmd.kind {
			case cmdPause:
				st, ok := c.pauseLocal(&live, cmd.checkpoint)
				cmd.reply <- sessReply{state: st}
				if !ok {
					return
				}
				idle = 0
			case cmdResume:
				c.resumeLocal(cmd.plan)
				idle = 0
				if live > 0 {
					c.quiescent.Store(false)
				} else {
					// Every hosted processor has crashed: no worker will
					// ever emit evIdle again, so report idleness now or
					// the global coordinator waits for this session
					// forever.
					c.plane.LocalIdle()
				}
				cmd.reply <- sessReply{}
			}
		}
	}
}

// pauseLocal drives every live hosted worker to the recovery barrier
// and snapshots the state the global coordinator needs to replan.
// With checkpoint set it additionally packs the full worker-local env
// checkpoint, print lines and trace events — everything a drained
// process must hand over before departing. Returns false if the
// session aborted instead.
func (c *controller) pauseLocal(live *int, checkpoint bool) (*PauseState, bool) {
	c.quiescent.Store(true)
	er := c.era.Load()
	close(er.pause)
	parked := 0
	for parked < *live {
		select {
		case <-c.done:
			return nil, false
		case ev := <-c.events:
			switch ev.kind {
			case evParked:
				parked++
			case evCrash:
				// A processor died racing the pause; report it so the
				// global replan sees it too.
				*live--
				c.plane.LocalCrash(ev.pe)
			case evIdle:
				// Stale: the worker will park too.
			}
		}
	}
	// Every live hosted worker is parked: state is safe to read (the
	// evParked receive orders their writes before ours). Each surviving
	// task result is attributed to its lowest live local holder; the
	// global coordinator breaks cross-process ties the same way, by
	// ascending processor.
	st := &PauseState{Done: map[graph.NodeID]int{}}
	held := map[string]bool{}
	for pe := 0; pe < c.numPE; pe++ {
		w := c.workers[pe]
		if w == nil {
			continue
		}
		if w.dead {
			st.Dead = append(st.Dead, pe)
			continue
		}
		for t := range w.local {
			if _, ok := st.Done[t]; !ok {
				st.Done[t] = pe
			}
		}
		for q := range w.outputs {
			held[q] = true
		}
		if w.clock > st.Clock {
			st.Clock = w.clock
		}
	}
	st.Held = make([]string, 0, len(held))
	for q := range held {
		st.Held = append(st.Held, q)
	}
	sort.Strings(st.Held)
	if checkpoint {
		st.Local = map[graph.NodeID]pits.Env{}
		for t, pe := range st.Done {
			st.Local[t] = c.workers[pe].local[t]
		}
		st.Events = append(st.Events, c.extraSnapshot()...)
		for pe := 0; pe < c.numPE; pe++ {
			w := c.workers[pe]
			if w == nil {
				continue
			}
			// A crashed worker's trace survives, like in Wait; its
			// printed lines died with it.
			st.Events = append(st.Events, w.events...)
			if w.dead {
				continue
			}
			st.Printed = append(st.Printed, w.printed...)
			for range w.printed {
				st.PrintedPE = append(st.PrintedPE, pe)
			}
		}
	}
	return st, true
}

// extraSnapshot copies the coordinator-emitted events under the lock.
func (c *controller) extraSnapshot() []trace.Event {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]trace.Event(nil), c.extra...)
}

// resumeLocal installs this process's share of the global recovery plan
// and releases the parked workers into the new era. Imports (a drained
// worker's env checkpoint re-homed here) land in the new holders'
// local stores first, so the plan's re-sends and adoptions can read
// them exactly as if the tasks had run here.
func (c *controller) resumeLocal(p *ResumePlan) {
	for _, imp := range p.Imports {
		if imp.PE < 0 || imp.PE >= c.numPE || !c.isLocal(imp.PE) {
			continue
		}
		hw := c.workers[imp.PE]
		if hw == nil || hw.dead {
			continue
		}
		hw.local[imp.Task] = imp.Env
	}
	a := deriveAssignment(c.numPE, p.Slots, p.Msgs, p.Done)
	c.applyAssignment(a, p.Epoch, p.Dead)
	c.applyAdoptions(p.Adopt)
	er := c.era.Load()
	next := &era{epoch: p.Epoch, pause: make(chan struct{}), resume: make(chan struct{})}
	c.era.Store(next)
	close(er.resume)
}

// sendRemote hands a cross-process delivery to the remote plane.
// Injected duplicate/drop faults were applied by the caller (copies)
// and delay faults became wallDelay. The exec-level ack/retry protocol
// does not span processes — the transport delivers reliably and in
// order on its own — so when the retry protocol is on, an injected
// drop or corruption is healed here by emulating the one
// retransmission the in-process ack loop would have sent: the receiver
// discards the corrupt copy by checksum and absorbs duplicates by
// sequence number. Without retry, the loss becomes the receiver's
// watchdog timeout, exactly as on the direct in-process path.
func (c *controller) sendRemote(m xmsg, orig pits.Value, toPE, copies int, wallDelay time.Duration) error {
	m.ack = nil
	if c.retry && (copies == 0 || (m.sum != 0 && m.sum != checksum(m.val))) {
		c.retransmitRemote(m, orig, toPE, wallDelay)
	}
	if copies == 0 {
		return nil
	}
	rm := RemoteMsg{From: m.key.from, To: m.key.to, Var: m.key.v,
		FromPE: m.fromPE, ToPE: toPE, Seq: m.seq, Epoch: m.epoch,
		At: m.at, Sum: m.sum, Val: m.val}
	if wallDelay > 0 {
		c.bg.Add(1)
		go func() {
			defer c.bg.Done()
			t := time.NewTimer(wallDelay)
			defer t.Stop()
			select {
			case <-t.C:
				for i := 0; i < copies; i++ {
					c.stats.RemoteSends.Add(1)
					if err := c.plane.DeliverRemote(rm); err != nil {
						c.fail(fmt.Errorf("exec: remote delivery to PE %d: %w", toPE, err))
						return
					}
				}
				// The delivery happened outside any slot's send burst;
				// flush so it doesn't wait out the plane's interval.
				c.flushRemote()
			case <-c.done:
			}
		}()
		return nil
	}
	for i := 0; i < copies; i++ {
		c.stats.RemoteSends.Add(1)
		if err := c.plane.DeliverRemote(rm); err != nil {
			return fmt.Errorf("remote delivery to PE %d: %w", toPE, err)
		}
	}
	return nil
}

// flushRemote asks a coalescing remote plane to put buffered frames on
// the wire. A no-op for planes without batching.
func (c *controller) flushRemote() {
	if f, ok := c.plane.(RemoteFlusher); ok {
		c.stats.RemoteFlushes.Add(1)
		f.FlushRemote()
	}
}

// retransmitRemote re-ships the uncorrupted payload of a remote
// message after one retry backoff, standing in for the in-process
// ack/retransmit loop across a process boundary. The era check mirrors
// sendReliable: a recovery that replanned the run makes the
// retransmission moot (the receiver would discard the stale epoch).
func (c *controller) retransmitRemote(m xmsg, orig pits.Value, toPE int, wallDelay time.Duration) {
	rt := m
	rt.val = orig
	if rt.sum != 0 {
		rt.sum = checksum(orig)
	}
	c.bg.Add(1)
	go func() {
		defer c.bg.Done()
		t := time.NewTimer(wallDelay + c.runner.retryBase())
		defer t.Stop()
		select {
		case <-t.C:
		case <-c.done:
			return
		case <-c.finish:
			return
		}
		if c.era.Load().epoch != rt.epoch {
			return
		}
		at := c.now()
		if c.runner.VirtualTime {
			at = rt.at
		}
		c.addEvent(trace.Event{Kind: trace.MsgRetry, At: at, Task: rt.key.from,
			PE: rt.fromPE, Var: rt.key.v, Peer: toPE, Seq: rt.seq, Note: "attempt 1"})
		c.stats.Retries.Add(1)
		rm := RemoteMsg{From: rt.key.from, To: rt.key.to, Var: rt.key.v,
			FromPE: rt.fromPE, ToPE: toPE, Seq: rt.seq, Epoch: rt.epoch,
			At: rt.at, Sum: rt.sum, Val: rt.val}
		c.stats.RemoteSends.Add(1)
		if err := c.plane.DeliverRemote(rm); err != nil {
			c.fail(fmt.Errorf("exec: remote delivery to PE %d: %w", toPE, err))
			return
		}
		c.flushRemote()
	}()
}

// stallWatch fails the run if no task completes and no message is
// accepted for the stall timeout: the global backstop behind the
// per-receive watchdogs.
func (c *controller) stallWatch(timeout time.Duration) {
	defer c.bg.Done()
	step := timeout / 4
	if step <= 0 {
		step = time.Millisecond
	}
	tick := time.NewTicker(step)
	defer tick.Stop()
	last := c.progress.Load()
	lastChange := time.Now()
	for {
		select {
		case <-c.done:
			return
		case <-c.finish:
			return
		case <-tick.C:
			cur := c.progress.Load()
			// A quiescent distributed session (all hosted workers idle
			// or parked) legitimately makes no progress while other
			// processes still work.
			if cur != last || c.quiescent.Load() {
				last = cur
				lastChange = time.Now()
				continue
			}
			if time.Since(lastChange) >= timeout {
				c.fail(fmt.Errorf("exec: run stalled: no progress for %v (%s)", timeout, c.waitingSummary()))
				return
			}
		}
	}
}
