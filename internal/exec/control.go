package exec

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/graph"
	"repro/internal/machine"
	"repro/internal/sched"
	"repro/internal/trace"
)

// This file is the run coordinator: the goroutine that watches worker
// life-cycle events, detects global stalls, and — when a processor
// crashes — drives the pause/replan/resume recovery protocol.

// wevent is a worker life-cycle notification to the coordinator.
type wevent struct {
	kind wekind
	pe   int
}

type wekind int

const (
	evIdle   wekind = iota // worker finished its current slot list
	evCrash                // worker hit an injected crash and died
	evParked               // worker reached the recovery barrier
)

// era is one epoch of execution between recoveries. pause is closed to
// order every live worker to the barrier; resume is closed once the new
// plan is installed. Messages stamp their era's epoch so deliveries
// from before a recovery are recognisably stale.
type era struct {
	epoch  int64
	pause  chan struct{}
	resume chan struct{}
}

// controller owns the shared state of one Run call.
type controller struct {
	runner *Runner
	s      *sched.Schedule
	flat   *graph.Flat
	numPE  int

	inboxes []chan xmsg
	done    chan struct{} // closed to abort the run (some worker failed)
	finish  chan struct{} // closed on clean completion (all workers idle)

	doneOnce   sync.Once
	finishOnce sync.Once

	events chan wevent

	era      atomic.Pointer[era]
	seq      atomic.Uint64 // message sequence numbers
	progress atomic.Uint64 // bumped per task completion and accepted message

	mu      sync.Mutex
	extra   []trace.Event  // events emitted outside worker goroutines
	waiting map[int]string // pe -> edge currently waited on (stall diagnosis)
	runErr  error          // coordinator-detected failure (stall, unrecoverable crash)

	bg sync.WaitGroup // retry, delay and stall goroutines

	workers   []*worker
	faults    *faultState
	retry     bool
	checksums bool
	grace     float64
	now       func() machine.Time
}

func (c *controller) abort()    { c.doneOnce.Do(func() { close(c.done) }) }
func (c *controller) complete() { c.finishOnce.Do(func() { close(c.finish) }) }

// fail records a coordinator-level root cause and aborts the run.
func (c *controller) fail(err error) {
	c.mu.Lock()
	if c.runErr == nil {
		c.runErr = err
	}
	c.mu.Unlock()
	c.abort()
}

// addEvent appends a trace event from outside a worker goroutine.
func (c *controller) addEvent(e trace.Event) {
	c.mu.Lock()
	c.extra = append(c.extra, e)
	c.mu.Unlock()
}

// setWaiting records what processor pe is blocked on ("" clears it).
func (c *controller) setWaiting(pe int, edge string) {
	c.mu.Lock()
	if edge == "" {
		delete(c.waiting, pe)
	} else {
		c.waiting[pe] = edge
	}
	c.mu.Unlock()
}

// waitingSummary renders the blocked processors for stall diagnostics.
func (c *controller) waitingSummary() string {
	return c.waitingExcept(-1)
}

// waitingExcept renders the blocked processors other than skip — a
// watchdog that fires downstream of the real loss uses it to point at
// the edge that is actually missing.
func (c *controller) waitingExcept(skip int) string {
	c.mu.Lock()
	defer c.mu.Unlock()
	pes := make([]int, 0, len(c.waiting))
	for pe := range c.waiting {
		if pe != skip {
			pes = append(pes, pe)
		}
	}
	if len(pes) == 0 {
		if skip < 0 {
			return "no worker waiting on a message"
		}
		return ""
	}
	sort.Ints(pes)
	parts := make([]string, len(pes))
	for i, pe := range pes {
		parts[i] = fmt.Sprintf("PE %d waits for %s", pe, c.waiting[pe])
	}
	return strings.Join(parts, "; ")
}

// post sends a life-cycle event to the coordinator, giving up if the
// run aborts.
func (c *controller) post(ev wevent) {
	select {
	case c.events <- ev:
	case <-c.done:
	}
}

// coordinate is the coordinator loop. It ends the run cleanly when all
// live workers are idle, and runs the recovery protocol on each crash.
func (c *controller) coordinate() {
	live := c.numPE
	idle := 0
	dead := make([]bool, c.numPE)
	for {
		select {
		case <-c.done:
			return
		case ev := <-c.events:
			switch ev.kind {
			case evIdle:
				idle++
				if idle >= live {
					c.complete()
					return
				}
			case evCrash:
				dead[ev.pe] = true
				live--
				if live == 0 {
					c.fail(fmt.Errorf("exec: all processors crashed"))
					return
				}
				if !c.recoverRun(dead, &live) {
					return
				}
				idle = 0
			}
		}
	}
}

// recoverRun drives one recovery: order every live worker to the
// barrier, replan the lost work with sched.Recover, install the new
// assignments and release the workers into the next era. Returns false
// if the run must end instead.
func (c *controller) recoverRun(dead []bool, live *int) bool {
	er := c.era.Load()
	close(er.pause)
	parked := 0
	for parked < *live {
		select {
		case <-c.done:
			return false
		case ev := <-c.events:
			switch ev.kind {
			case evParked:
				parked++
			case evCrash:
				// A second processor died racing the pause.
				dead[ev.pe] = true
				*live--
				if *live == 0 {
					c.fail(fmt.Errorf("exec: all processors crashed"))
					return false
				}
			case evIdle:
				// Stale: the worker will park too.
			}
		}
	}

	// Every live worker is parked: their state is safe to read (the
	// evParked receive orders their writes before ours) and to rewrite
	// (closing resume orders our writes before their reads).
	// Each surviving task result is attributed to its lowest live
	// holder (the ascending pe loop makes the choice deterministic).
	liveMask := make([]bool, c.numPE)
	doneTasks := map[graph.NodeID]int{}
	for pe := 0; pe < c.numPE; pe++ {
		if dead[pe] {
			continue
		}
		liveMask[pe] = true
		for t := range c.workers[pe].local {
			if _, ok := doneTasks[t]; !ok {
				doneTasks[t] = pe
			}
		}
	}

	plan, err := sched.Recover(c.s, sched.RecoverState{Live: liveMask, Done: doneTasks})
	if err != nil {
		c.fail(fmt.Errorf("exec: crash recovery failed: %w", err))
		return false
	}
	c.install(plan, doneTasks, dead, er)

	next := &era{epoch: er.epoch + 1, pause: make(chan struct{}), resume: make(chan struct{})}
	c.era.Store(next)
	close(er.resume)
	return true
}

// install rewrites the parked workers' assignments from the recovery
// plan and records the rescheduling in the trace.
func (c *controller) install(plan *sched.Reassignment, doneTasks map[graph.NodeID]int, dead []bool, er *era) {
	numPE := c.numPE
	newSlots := make([][]sched.Slot, numPE)
	for _, sl := range plan.Slots {
		newSlots[sl.PE] = append(newSlots[sl.PE], sl)
	}
	expected := make([]map[msgKey]machine.Time, numPE)
	sends := make([]map[graph.NodeID][]sendPlan, numPE)
	resends := make([][]sendPlan, numPE)
	for pe := 0; pe < numPE; pe++ {
		expected[pe] = map[msgKey]machine.Time{}
		sends[pe] = map[graph.NodeID][]sendPlan{}
	}
	for _, m := range plan.Msgs {
		k := msgKey{m.From, m.To, m.Var}
		expected[m.ToPE][k] = m.Recv
		sp := sendPlan{key: k, toPE: m.ToPE, words: m.Words}
		if _, held := doneTasks[m.From]; held {
			// The producer's result survives on m.FromPE: that worker
			// re-sends the value from its local store at era start.
			resends[m.FromPE] = append(resends[m.FromPE], sp)
		} else {
			sends[m.FromPE][m.From] = append(sends[m.FromPE][m.From], sp)
		}
	}

	// Timestamp for the rescheduling events: the wall clock, or the
	// latest live virtual clock in virtual-time mode.
	at := c.now()
	if c.runner.VirtualTime {
		at = 0
		for pe, w := range c.workers {
			if !dead[pe] && w.clock > at {
				at = w.clock
			}
		}
	}
	for _, sl := range plan.Slots {
		orig := sl.PE
		if ps, ok := c.s.PrimarySlot(sl.Task); ok {
			orig = ps.PE
		}
		c.addEvent(trace.Event{Kind: trace.TaskRescheduled, At: at, Task: sl.Task,
			PE: sl.PE, Peer: orig, Note: "recovery"})
	}

	for pe, w := range c.workers {
		if dead[pe] {
			continue
		}
		w.slots = newSlots[pe]
		w.cursor = 0
		w.expected = expected[pe]
		w.sends = sends[pe]
		w.resends = resends[pe]
		w.epoch = er.epoch + 1
	}

	// Adopt orphaned external outputs: a task whose result survives
	// (so it will not re-run) but whose exporting copy died must be
	// exported by its holder instead.
	tasks := make([]graph.NodeID, 0, len(doneTasks))
	for t := range doneTasks {
		tasks = append(tasks, t)
	}
	sort.Slice(tasks, func(i, j int) bool { return tasks[i] < tasks[j] })
	for _, t := range tasks {
		holder := doneTasks[t]
		for _, v := range c.flat.ExternalOut[t] {
			q := string(t) + "." + v
			present := false
			for pe, w := range c.workers {
				if dead[pe] {
					continue
				}
				if _, ok := w.outputs[q]; ok {
					present = true
					break
				}
			}
			if present {
				continue
			}
			hw := c.workers[holder]
			if val, ok := hw.local[t][v]; ok {
				hw.outputs[q] = val
				hw.exports[v] = t
			}
		}
	}
}

// stallWatch fails the run if no task completes and no message is
// accepted for the stall timeout: the global backstop behind the
// per-receive watchdogs.
func (c *controller) stallWatch(timeout time.Duration) {
	defer c.bg.Done()
	step := timeout / 4
	if step <= 0 {
		step = time.Millisecond
	}
	tick := time.NewTicker(step)
	defer tick.Stop()
	last := c.progress.Load()
	lastChange := time.Now()
	for {
		select {
		case <-c.done:
			return
		case <-c.finish:
			return
		case <-tick.C:
			cur := c.progress.Load()
			if cur != last {
				last = cur
				lastChange = time.Now()
				continue
			}
			if time.Since(lastChange) >= timeout {
				c.fail(fmt.Errorf("exec: run stalled: no progress for %v (%s)", timeout, c.waitingSummary()))
				return
			}
		}
	}
}
