// Package exec runs scheduled Banger programs in two ways:
//
//   - Simulate: a deterministic discrete-event simulation that replays
//     a schedule's placement and ordering decisions against the machine
//     cost model, deriving timing independently — the engine behind
//     Banger's predicted Gantt charts and speedup curves;
//   - Runner: real parallel execution — one goroutine per processor,
//     channels as network links, with each task's PITS routine
//     interpreted on real data. This is the "trial run of an entire
//     program" the paper lists among Banger's key capabilities.
package exec

import (
	"fmt"
	"sort"

	"repro/internal/graph"
	"repro/internal/machine"
	"repro/internal/sched"
	"repro/internal/trace"
)

// Simulate replays the schedule's placements (which task on which
// processor, in which local order, including duplicates) and its
// message routing (which producer copy feeds each consumer copy)
// under the contention-free machine model, deriving start/finish
// times from first principles. For schedules produced by the
// contention-free schedulers — including DSH, whose duplicates make
// the producer-copy choice significant — the derived times equal the
// scheduled times; for MH the derived times may be earlier (MH also
// charges link contention). The returned trace contains task and
// message events.
func Simulate(s *sched.Schedule) (*trace.Trace, error) {
	if s == nil || s.Graph == nil || s.Machine == nil {
		return nil, fmt.Errorf("exec: nil schedule")
	}
	m := s.Machine
	g := s.Graph

	// Per-PE slot order comes from the schedule's index (shared,
	// pre-sorted; read-only here).
	byPE := make([][]sched.Slot, m.NumPE())
	for pe := 0; pe < m.NumPE(); pe++ {
		byPE[pe] = s.PESlots(pe)
	}
	// Derived finish time of each copy: keyed by task+PE (one copy of
	// a task per PE is the schedulers' invariant).
	type copyKey struct {
		task graph.NodeID
		pe   int
	}
	finish := map[copyKey]machine.Time{}
	done := map[copyKey]bool{}
	placed := map[copyKey]bool{}
	for _, sl := range s.Slots {
		placed[copyKey{sl.Task, sl.PE}] = true
	}
	// The schedule's message records name the producer copy each
	// consumer copy was routed from. Replaying that choice (instead of
	// greedily taking whichever copy happens to be simulated first)
	// is what makes the replay exact for duplication schedules, where
	// several copies of a producer coexist.
	type srcKey struct {
		from, to graph.NodeID
		v        string
		toPE     int
	}
	src := map[srcKey]int{}
	for _, msg := range s.Msgs {
		src[srcKey{msg.From, msg.To, msg.Var, msg.ToPE}] = msg.FromPE
	}
	idx := make([]int, m.NumPE()) // next slot to run per PE
	procFree := make([]machine.Time, m.NumPE())

	tr := &trace.Trace{Label: "simulated:" + s.Algorithm}
	total := len(s.Slots)
	executed := 0
	for executed < total {
		progress := false
		for pe := 0; pe < m.NumPE(); pe++ {
			for idx[pe] < len(byPE[pe]) {
				sl := byPE[pe][idx[pe]]
				// All inputs must be producible: every predecessor needs
				// some finished copy.
				start := procFree[pe]
				ready := true
				type feed struct {
					arc  graph.Arc
					from copyKey
					at   machine.Time
				}
				var feeds []feed
				for _, a := range g.PredArcs(sl.Task) {
					bestAt := machine.Time(-1)
					var bestKey copyKey
					if q, ok := src[srcKey{a.From, sl.Task, a.Var, pe}]; ok {
						// Wait for the copy the schedule routed from.
						k := copyKey{a.From, q}
						if done[k] {
							bestAt, bestKey = finish[k]+m.CommTime(a.Words, q, pe), k
						}
					} else if placed[copyKey{a.From, pe}] {
						// No message recorded: the schedule fed this arc
						// from the co-located copy.
						k := copyKey{a.From, pe}
						if done[k] {
							bestAt, bestKey = finish[k], k
						}
					} else {
						// Hand-built schedule with no message records:
						// fall back to the earliest-arriving finished copy.
						for q := 0; q < m.NumPE(); q++ {
							k := copyKey{a.From, q}
							if !done[k] {
								continue
							}
							at := finish[k] + m.CommTime(a.Words, q, pe)
							if bestAt < 0 || at < bestAt {
								bestAt, bestKey = at, k
							}
						}
					}
					if bestAt < 0 {
						ready = false
						break
					}
					feeds = append(feeds, feed{arc: a, from: bestKey, at: bestAt})
					if bestAt > start {
						start = bestAt
					}
				}
				if !ready {
					break // this PE is blocked on a not-yet-simulated producer
				}
				end := start + m.ExecTime(g.Node(sl.Task).Work, pe)
				k := copyKey{sl.Task, pe}
				finish[k] = end
				done[k] = true
				procFree[pe] = end
				tr.Add(trace.Event{Kind: trace.TaskStart, At: start, Task: sl.Task, PE: pe, Dup: sl.Dup})
				tr.Add(trace.Event{Kind: trace.TaskEnd, At: end, Task: sl.Task, PE: pe, Dup: sl.Dup})
				sort.Slice(feeds, func(i, j int) bool { return feeds[i].arc.Var < feeds[j].arc.Var })
				for _, f := range feeds {
					if f.from.pe != pe {
						tr.Add(trace.Event{Kind: trace.MsgSend, At: finish[f.from], Task: f.arc.From, PE: f.from.pe, Var: f.arc.Var, Peer: pe})
						tr.Add(trace.Event{Kind: trace.MsgRecv, At: f.at, Task: f.arc.From, PE: pe, Var: f.arc.Var, Peer: f.from.pe})
					}
				}
				idx[pe]++
				executed++
				progress = true
			}
		}
		if !progress {
			return nil, fmt.Errorf("exec: simulation deadlock — schedule's per-PE order is not consistent with precedence")
		}
	}
	tr.Sort()
	return tr, nil
}

// Predicted converts the schedule's own times into a trace without
// re-deriving anything, for rendering exactly what the scheduler
// decided (e.g. MH's contention-aware times).
func Predicted(s *sched.Schedule) *trace.Trace {
	tr := &trace.Trace{Label: "predicted:" + s.Algorithm}
	for _, sl := range s.Slots {
		tr.Add(trace.Event{Kind: trace.TaskStart, At: sl.Start, Task: sl.Task, PE: sl.PE, Dup: sl.Dup})
		tr.Add(trace.Event{Kind: trace.TaskEnd, At: sl.Finish, Task: sl.Task, PE: sl.PE, Dup: sl.Dup})
	}
	for _, msg := range s.Msgs {
		tr.Add(trace.Event{Kind: trace.MsgSend, At: msg.Send, Task: msg.From, PE: msg.FromPE, Var: msg.Var, Peer: msg.ToPE})
		tr.Add(trace.Event{Kind: trace.MsgRecv, At: msg.Recv, Task: msg.From, PE: msg.ToPE, Var: msg.Var, Peer: msg.FromPE})
	}
	tr.Sort()
	return tr
}
