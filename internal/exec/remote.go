package exec

import (
	"fmt"
	"sort"

	"repro/internal/graph"
	"repro/internal/machine"
	"repro/internal/pits"
	"repro/internal/sched"
	"repro/internal/trace"
)

// This file is the transport seam of the runner: the types a remote
// message plane (internal/wire) exchanges with a hosted execution
// session. A single-process run never touches any of this — its
// deliveries stay on the in-process channel path — but a distributed
// run hosts only a subset of the machine's processors per OS process
// and hands every cross-process delivery, idle notification and crash
// report to a RemotePlane.

// RemoteMsg is one scheduled delivery crossing a process boundary: the
// wire-facing form of the runner's internal message, minus the ack
// channel (process-boundary reliability belongs to the transport).
type RemoteMsg struct {
	From, To graph.NodeID
	Var      string
	FromPE   int
	ToPE     int
	// Seq identifies the logical transmission; injected duplicates
	// share it, so receivers can absorb them.
	Seq uint64
	// Epoch is the recovery era the message belongs to; receivers
	// discard messages from dead eras.
	Epoch int64
	// At is the virtual arrival stamp (VirtualTime runs).
	At machine.Time
	// Sum is the fnv64a checksum of the original payload when corrupt
	// faults armed end-to-end checksums (0 = unchecked). The transport
	// adds its own frame-level checksum independently.
	Sum uint64
	Val pits.Value
}

// RemotePlane connects a session hosting a subset of processors to the
// rest of a distributed run. Implementations must be safe for
// concurrent use: worker goroutines deliver concurrently.
type RemotePlane interface {
	// DeliverRemote ships one message toward the process hosting
	// m.ToPE. An error fails the sending task (and so the run).
	DeliverRemote(m RemoteMsg) error
	// LocalIdle reports that every live locally-hosted processor
	// finished its current era's slot list.
	LocalIdle()
	// LocalCrash reports an injected crash killing locally-hosted
	// processor pe. The coordinator must drive a global recovery.
	LocalCrash(pe int)
}

// RemoteFlusher is an optional RemotePlane extension for planes that
// coalesce outgoing frames. The runner calls FlushRemote at natural
// batch boundaries — the end of a slot's send burst, era-start
// re-sends, delayed and retried deliveries — so batched messages do
// not wait out the plane's flush interval. Planes without batching
// simply don't implement it.
type RemoteFlusher interface {
	FlushRemote()
}

// Partial is one process's share of a run's result: qualified external
// outputs, the export name map, print lines and raw trace events. The
// coordinator merges partials with MergePartials.
type Partial struct {
	// Outputs holds qualified "task.var" external outputs of the
	// process's surviving workers.
	Outputs pits.Env
	// Exports maps unqualified external output names to the exporting
	// task.
	Exports map[string]graph.NodeID
	Printed []string
	// PrintedPE tags each Printed line with the processor that printed
	// it (len(PrintedPE) == len(Printed)); MergePartials uses the tags
	// to restore ascending-processor print order when processors are
	// placed non-contiguously across workers. Untagged partials (older
	// senders) fall back to concatenation order.
	PrintedPE []int
	Events    []trace.Event
}

// PauseState is what a paused session reports so the coordinator can
// plan a global recovery.
type PauseState struct {
	// Done maps each task whose result survives in this process to the
	// lowest live local processor holding it.
	Done map[graph.NodeID]int
	// Held lists the qualified "task.var" external output keys already
	// exported in this process (recovery uses it to adopt orphans).
	Held []string
	// Dead lists locally-hosted processors that have crashed.
	Dead []int
	// Clock is the latest virtual clock among live local processors
	// (VirtualTime runs; the coordinator stamps recovery events with
	// the global maximum).
	Clock machine.Time

	// The fields below are populated only by PauseCheckpoint (a
	// graceful drain): the departing process hands its entire
	// contribution to the run over to the coordinator, so nothing is
	// lost when it leaves.

	// Local is the worker-local env checkpoint: the full output
	// environment of every task in Done. Survivors import these at the
	// resume barrier and take over re-sends and adoptions.
	Local map[graph.NodeID]pits.Env
	// Printed and PrintedPE are the print lines produced so far, tagged
	// by processor (the departing worker's partial result will never
	// arrive, so they travel with the checkpoint).
	Printed   []string
	PrintedPE []int
	// Events are the trace events recorded so far, for the same reason.
	Events []trace.Event
}

// Adoption instructs a surviving holder of a finished task's result to
// export an external output whose original exporting copy died.
type Adoption struct {
	Task graph.NodeID
	Var  string
	PE   int
}

// ResumePlan is the recovery assignment a session installs at the
// barrier: the global replan restricted by each process to its hosted
// processors.
type ResumePlan struct {
	// Epoch is the new era; messages from older eras are discarded.
	Epoch int64
	// Slots and Msgs are the full recovery plan (sched.Recover's
	// Reassignment); sessions derive their hosted processors' share.
	Slots []sched.Slot
	Msgs  []sched.Msg
	// Done maps surviving tasks to their holding processor (the
	// checkpoint): deliveries from them are re-sends, not re-runs.
	Done map[graph.NodeID]int
	// Dead flags every processor of the machine that is gone.
	Dead []bool
	// Adopt lists orphaned external outputs to re-export locally.
	Adopt []Adoption
	// Imports install surviving task results handed over by a drained
	// worker into a new holder's local store, before re-sends and
	// adoptions run. Imports naming remote holders are skipped.
	Imports []Import
}

// Import is one surviving task result re-homed by a graceful drain:
// the drained worker's env checkpoint for Task, to be installed in the
// local store of processor PE.
type Import struct {
	Task graph.NodeID
	PE   int
	Env  pits.Env
}

// MergePartials combines per-process partial results into a run's
// external outputs and print lines: qualified keys are unioned, and
// each unqualified external output name is bound to its single
// exporting task — two tasks exporting the same name is an error, with
// the qualified keys to read instead.
//
// Print lines merge in ascending-processor order when every partial
// tags its lines with PrintedPE — the order a single-process run
// prints in, regardless of which worker hosted which processor. With
// any untagged partial the merge degrades to concatenation order.
func MergePartials(parts ...*Partial) (pits.Env, []string, error) {
	outputs := pits.Env{}
	owner := map[string]graph.NodeID{}
	var printed []string
	tagged := true
	for _, p := range parts {
		if p != nil && len(p.PrintedPE) != len(p.Printed) {
			tagged = false
			break
		}
	}
	var printedPEs []int
	for _, p := range parts {
		if p == nil {
			continue
		}
		for k, v := range p.Outputs {
			outputs[k] = v
		}
		printed = append(printed, p.Printed...)
		if tagged {
			printedPEs = append(printedPEs, p.PrintedPE...)
		}
	}
	if tagged && len(printed) > 0 {
		// Stable sort by processor only: each processor's lines keep
		// their chronological order (a processor lives in one partial
		// per era, and partials arrive in era order).
		idx := make([]int, len(printed))
		for i := range idx {
			idx[i] = i
		}
		sort.SliceStable(idx, func(a, b int) bool { return printedPEs[idx[a]] < printedPEs[idx[b]] })
		sorted := make([]string, len(printed))
		for i, j := range idx {
			sorted[i] = printed[j]
		}
		printed = sorted
	}
	for _, p := range parts {
		if p == nil {
			continue
		}
		for v, task := range p.Exports {
			if prev, clash := owner[v]; clash && prev != task {
				return nil, nil, exportCollision(v, prev, task)
			}
			owner[v] = task
			outputs[v] = outputs[string(task)+"."+v]
		}
	}
	return outputs, printed, nil
}

// exportCollision is the shared error for two tasks exporting the same
// unqualified external output name.
func exportCollision(v string, a, b graph.NodeID) error {
	if b < a {
		a, b = b, a
	}
	return fmt.Errorf("exec: external output %q exported by both task %s and task %s; rename one or read the qualified keys %q and %q",
		v, a, b, string(a)+"."+v, string(b)+"."+v)
}
