package exec

import (
	"strings"
	"testing"
)

// FuzzParseFaults throws arbitrary strings at the -faults spec parser.
// Two properties: the parser never panics, and any accepted spec
// re-renders and re-parses to a fixed point (String is a canonical
// form, so parse∘String must be the identity on canonical specs).
func FuzzParseFaults(f *testing.F) {
	for _, spec := range []string{
		"crash:1@2",
		"drop:a->b:v",
		"drop:a->b:v@3",
		"dup:src->dst:x@2",
		"corrupt:t1->t2:u",
		"delay:t1->t2:u@500",
		"crash:0@0,drop:a->b:v,delay:a->b:v@1",
		" drop:a -> b:v ",
		"drop:a->b->c:v",
		"crash:-1@2",
		"delay:a->b:v",
		"drop:a->b:",
		"bogus:a->b:v",
		"",
	} {
		f.Add(spec)
	}
	f.Fuzz(func(t *testing.T, spec string) {
		plan, err := ParseFaults(spec)
		if err != nil {
			return
		}
		canon := plan.String()
		plan2, err := ParseFaults(canon)
		if err != nil {
			t.Fatalf("canonical form %q of accepted spec %q does not reparse: %v", canon, spec, err)
		}
		if got := plan2.String(); got != canon {
			t.Fatalf("canonical form is not a fixed point: %q -> %q -> %q", spec, canon, got)
		}
		if len(plan2.Faults) != len(plan.Faults) {
			t.Fatalf("reparse changed fault count: %d != %d", len(plan2.Faults), len(plan.Faults))
		}
		// A parsed spec never contains empty edge endpoints for message
		// faults (the parser must reject them, not store them).
		for _, fa := range plan.Faults {
			if fa.Kind != FaultCrash && (fa.From == "" || fa.To == "" || fa.Var == "") {
				t.Fatalf("accepted spec %q produced fault with empty edge field: %+v", spec, fa)
			}
			if strings.Contains(string(fa.From), ",") || strings.Contains(fa.Var, ",") {
				t.Fatalf("accepted spec %q smuggled a comma into a field: %+v", spec, fa)
			}
		}
	})
}
