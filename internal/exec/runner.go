package exec

import (
	"errors"
	"fmt"
	"hash/fnv"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/graph"
	"repro/internal/machine"
	"repro/internal/pits"
	"repro/internal/sched"
	"repro/internal/trace"
)

// Runner executes a scheduled Banger program for real: one goroutine
// per processor of the target machine, buffered channels as links, and
// each task's PITS routine interpreted on actual data. Timing comes
// from the wall clock, so the trace shows genuine parallel execution;
// correctness of results is independent of interleaving because PITS
// routines are deterministic (rand() is seeded per task name).
//
// The runner is fault-tolerant: an optional FaultPlan injects crashes
// and message faults at reproducible points, per-receive watchdogs turn
// lost messages into diagnosable timeouts, Retry enables acknowledged
// delivery with retransmission, and a crashed processor triggers
// recovery — surviving workers pause at a barrier while sched.Recover
// replans the lost work onto live processors, then the run resumes and
// produces the same outputs a fault-free run would.
type Runner struct {
	// Inputs provides the design's external data: values for every
	// variable that flows from writer-less storage cells
	// (graph.Flat.ExternalIn).
	Inputs pits.Env
	// MaxSteps bounds each routine's interpreter steps (0 = default).
	MaxSteps int64
	// VirtualTime switches the trace clock from the wall to the
	// machine model: each worker keeps a virtual clock advanced by
	// ExecTime over the *measured* interpreter ops of every task, and
	// messages carry virtual arrival stamps computed with CommTime.
	// The run still executes in genuine parallel on goroutines, but
	// the resulting trace is deterministic and directly comparable to
	// the scheduler's prediction — when task work was calibrated from
	// a rehearsal, a contention-free schedule's Gantt chart and the
	// virtual-time trace of its real execution coincide exactly.
	VirtualTime bool

	// Faults optionally injects deterministic faults (see FaultPlan).
	Faults *FaultPlan
	// Retry enables sequence-numbered delivery with acknowledgements
	// and capped exponential backoff, absorbing dropped and duplicated
	// messages transparently.
	Retry bool
	// RetryBase is the first retransmission backoff (0 = 15ms).
	RetryBase time.Duration
	// RetryCap bounds the exponential backoff (0 = 120ms).
	RetryCap time.Duration
	// Grace scales the schedule's predicted arrival times into watchdog
	// deadlines (0 = the machine's GraceFactor).
	Grace float64
	// WatchdogMin is the floor every watchdog deadline includes, so
	// tiny predicted times don't produce hair-trigger timeouts on a
	// loaded host (0 = 1s).
	WatchdogMin time.Duration
	// NoWatchdog disables per-receive watchdogs (the global stall
	// detector still runs).
	NoWatchdog bool
	// StallTimeout bounds how long the whole run may go without any
	// task completing or message arriving before it is failed as
	// stalled (0 = 30s, negative = disabled).
	StallTimeout time.Duration
}

func (r *Runner) retryBase() time.Duration {
	if r.RetryBase > 0 {
		return r.RetryBase
	}
	return 15 * time.Millisecond
}

func (r *Runner) retryCap() time.Duration {
	if r.RetryCap > 0 {
		return r.RetryCap
	}
	return 120 * time.Millisecond
}

func (r *Runner) watchdogMin() time.Duration {
	if r.WatchdogMin > 0 {
		return r.WatchdogMin
	}
	return time.Second
}

func (r *Runner) stallTimeout() time.Duration {
	if r.StallTimeout > 0 {
		return r.StallTimeout
	}
	if r.StallTimeout < 0 {
		return 0
	}
	return 30 * time.Second
}

// Result is the outcome of a parallel run.
type Result struct {
	// Outputs holds the variables tasks exported through reader-less
	// storage cells (graph.Flat.ExternalOut).
	Outputs pits.Env
	// Printed collects the print output of all tasks, each line
	// prefixed with "task: ".
	Printed []string
	// Trace holds wall-clock task/message events (microseconds since
	// run start).
	Trace *trace.Trace
	// Elapsed is the wall-clock duration of the whole run.
	Elapsed time.Duration
}

// msgKey identifies a scheduled message: producer task, consumer task,
// variable.
type msgKey struct {
	from graph.NodeID
	to   graph.NodeID
	v    string
}

// sendPlan is one cross-processor delivery a producer copy must make.
type sendPlan struct {
	key   msgKey
	toPE  int
	words int64
}

// Run executes the schedule against flat, the flattened design the
// schedule was computed from.
func (r *Runner) Run(s *sched.Schedule, flat *graph.Flat) (*Result, error) {
	if s == nil || flat == nil || s.Graph == nil || s.Machine == nil {
		return nil, fmt.Errorf("exec: nil schedule or design")
	}
	g := s.Graph
	numPE := s.Machine.NumPE()
	// Build the schedule's index and the topology's routing tables now:
	// both caches fill lazily and unsynchronized, and every worker
	// goroutine reads them.
	s.Finalize()
	s.Machine.Topo.Precompute()

	// Fail fast on missing external inputs: one clear error before any
	// worker spawns, instead of a root-cause-plus-cascade report.
	if err := r.checkInputs(flat); err != nil {
		return nil, err
	}

	// Parse every routine up front; fail fast before spawning workers.
	progs := map[graph.NodeID]*pits.Program{}
	for _, n := range g.Tasks() {
		if n.Routine == "" {
			// A routine-less task is a no-op placeholder: legal in
			// scheduling studies, and at run time it simply produces
			// nothing.
			progs[n.ID] = &pits.Program{}
			continue
		}
		prog, err := pits.Parse(n.Routine)
		if err != nil {
			return nil, fmt.Errorf("exec: task %s: %w", n.ID, err)
		}
		progs[n.ID] = prog
	}

	// Expected cross-PE messages per consumer processor (with their
	// predicted arrival times, the watchdog basis), and the deliveries
	// each producer copy must make, from the schedule.
	expect := make([]map[msgKey]machine.Time, numPE)
	sends := make([]map[graph.NodeID][]sendPlan, numPE)
	for pe := 0; pe < numPE; pe++ {
		expect[pe] = map[msgKey]machine.Time{}
		sends[pe] = map[graph.NodeID][]sendPlan{}
	}
	for _, msg := range s.Msgs {
		if msg.FromPE == msg.ToPE {
			continue
		}
		k := msgKey{msg.From, msg.To, msg.Var}
		if _, dup := expect[msg.ToPE][k]; dup {
			return nil, fmt.Errorf("exec: schedule records duplicate delivery of %s->%s:%s to PE %d",
				msg.From, msg.To, msg.Var, msg.ToPE)
		}
		expect[msg.ToPE][k] = msg.Recv
		sends[msg.FromPE][msg.From] = append(sends[msg.FromPE][msg.From],
			sendPlan{key: k, toPE: msg.ToPE, words: msg.Words})
	}

	faults := newFaultState(r.Faults)
	grace := r.Grace
	if grace <= 0 {
		grace = s.Machine.GraceFactor()
	}
	start := time.Now()
	now := func() machine.Time { return machine.Time(time.Since(start).Microseconds()) }

	ctrl := &controller{
		runner: r, s: s, flat: flat, numPE: numPE,
		inboxes: make([]chan xmsg, numPE),
		done:    make(chan struct{}),
		finish:  make(chan struct{}),
		events:  make(chan wevent, numPE*4+16),
		waiting: map[int]string{},
		faults:  faults, retry: r.Retry, checksums: faults.checksums,
		grace: grace, now: now,
	}
	// Inboxes are sized so no delivery ever blocks past the run's end:
	// every scheduled and recovery-planned message fits, with room for
	// injected duplicates.
	inboxCap := (numPE + 1) * (len(s.Msgs) + len(g.Arcs()) + 2)
	for pe := range ctrl.inboxes {
		ctrl.inboxes[pe] = make(chan xmsg, inboxCap)
	}
	ctrl.era.Store(&era{pause: make(chan struct{}), resume: make(chan struct{})})

	workers := make([]*worker, numPE)
	for pe := 0; pe < numPE; pe++ {
		workers[pe] = &worker{
			pe: pe, runner: r, sched: s, flat: flat, progs: progs, ctrl: ctrl, now: now,
			slots: s.PESlots(pe), expected: expect[pe], sends: sends[pe],
			outputs: pits.Env{}, exports: map[string]graph.NodeID{},
		}
	}
	ctrl.workers = workers

	if st := r.stallTimeout(); st > 0 {
		ctrl.bg.Add(1)
		go ctrl.stallWatch(st)
	}
	coordDone := make(chan struct{})
	go func() {
		ctrl.coordinate()
		close(coordDone)
	}()

	var wg sync.WaitGroup
	for _, w := range workers {
		wg.Add(1)
		go func(w *worker) {
			defer wg.Done()
			if w.err = w.run(); w.err != nil {
				ctrl.abort()
			}
		}(w)
	}
	wg.Wait()
	<-coordDone
	ctrl.bg.Wait()

	// One failing worker aborts the run, which makes every other worker
	// fail too ("aborted while sending/waiting"). Those cascade errors
	// are consequences, not causes: report the originating failures
	// first and fold the cascade into a count so the root cause is the
	// first thing the user reads.
	var roots, cascades []error
	if ctrl.runErr != nil {
		roots = append(roots, ctrl.runErr)
	}
	for _, w := range workers {
		if w.err == nil {
			continue
		}
		e := fmt.Errorf("PE %d: %w", w.pe, w.err)
		if errors.Is(w.err, errAborted) {
			cascades = append(cascades, e)
		} else {
			roots = append(roots, e)
		}
	}
	switch {
	case len(roots) > 0 && len(cascades) > 0:
		return nil, fmt.Errorf("%w\n(%d other workers aborted in cascade)", errors.Join(roots...), len(cascades))
	case len(roots) > 0:
		return nil, errors.Join(roots...)
	case len(cascades) > 0:
		// Shouldn't happen — an abort always has an originating failure
		// — but never swallow an error.
		return nil, errors.Join(cascades...)
	}
	res := &Result{Outputs: pits.Env{}, Trace: &trace.Trace{Label: "run:" + s.Algorithm}, Elapsed: time.Since(start)}
	res.Trace.Events = append(res.Trace.Events, ctrl.extra...)
	owner := map[string]graph.NodeID{} // unqualified external output -> exporting task
	for _, w := range workers {
		// A crashed worker's trace survives (it shows what happened up
		// to the crash) but its results died with it: recovery
		// recomputed them elsewhere.
		res.Trace.Events = append(res.Trace.Events, w.events...)
		if w.dead {
			continue
		}
		for k, v := range w.outputs {
			res.Outputs[k] = v
		}
		for v, task := range w.exports {
			if prev, clash := owner[v]; clash && prev != task {
				a, b := prev, task
				if b < a {
					a, b = b, a
				}
				return nil, fmt.Errorf("exec: external output %q exported by both task %s and task %s; rename one or read the qualified keys %q and %q",
					v, a, b, string(a)+"."+v, string(b)+"."+v)
			}
			owner[v] = task
			res.Outputs[v] = res.Outputs[string(task)+"."+v]
		}
		res.Printed = append(res.Printed, w.printed...)
	}
	res.Trace.Sort()
	return res, nil
}

// checkInputs validates the runner's Inputs against the design's
// external input variables, reporting every missing one at once.
func (r *Runner) checkInputs(flat *graph.Flat) error {
	missing := map[string]bool{}
	for _, vars := range flat.ExternalIn {
		for _, v := range vars {
			if _, ok := r.Inputs[v]; !ok {
				missing[v] = true
			}
		}
	}
	if len(missing) == 0 {
		return nil
	}
	names := make([]string, 0, len(missing))
	for v := range missing {
		names = append(names, fmt.Sprintf("%q", v))
	}
	sort.Strings(names)
	return fmt.Errorf("exec: missing external input(s) %s: provide them via Runner.Inputs", strings.Join(names, ", "))
}

// errAborted marks a worker failure that is a consequence of another
// worker's abort, not a root cause.
var errAborted = errors.New("aborted")

// taskSeed derives a deterministic rand() seed from the task name so
// runs are reproducible regardless of goroutine interleaving.
func taskSeed(id graph.NodeID) int64 {
	h := fnv.New64a()
	h.Write([]byte(id))
	return int64(h.Sum64() & 0x7fffffffffffffff)
}
