package exec

import (
	"errors"
	"fmt"
	"hash/fnv"
	"sync"
	"time"

	"repro/internal/graph"
	"repro/internal/machine"
	"repro/internal/pits"
	"repro/internal/sched"
	"repro/internal/trace"
)

// Runner executes a scheduled Banger program for real: one goroutine
// per processor of the target machine, buffered channels as links, and
// each task's PITS routine interpreted on actual data. Timing comes
// from the wall clock, so the trace shows genuine parallel execution;
// correctness of results is independent of interleaving because PITS
// routines are deterministic (rand() is seeded per task name).
type Runner struct {
	// Inputs provides the design's external data: values for every
	// variable that flows from writer-less storage cells
	// (graph.Flat.ExternalIn).
	Inputs pits.Env
	// MaxSteps bounds each routine's interpreter steps (0 = default).
	MaxSteps int64
	// VirtualTime switches the trace clock from the wall to the
	// machine model: each worker keeps a virtual clock advanced by
	// ExecTime over the *measured* interpreter ops of every task, and
	// messages carry virtual arrival stamps computed with CommTime.
	// The run still executes in genuine parallel on goroutines, but
	// the resulting trace is deterministic and directly comparable to
	// the scheduler's prediction — when task work was calibrated from
	// a rehearsal, a contention-free schedule's Gantt chart and the
	// virtual-time trace of its real execution coincide exactly.
	VirtualTime bool
}

// Result is the outcome of a parallel run.
type Result struct {
	// Outputs holds the variables tasks exported through reader-less
	// storage cells (graph.Flat.ExternalOut).
	Outputs pits.Env
	// Printed collects the print output of all tasks, each line
	// prefixed with "task: ".
	Printed []string
	// Trace holds wall-clock task/message events (microseconds since
	// run start).
	Trace *trace.Trace
	// Elapsed is the wall-clock duration of the whole run.
	Elapsed time.Duration
}

// message carries one arc's data between processor goroutines, plus
// the sending processor and the virtual arrival time when the runner is
// in virtual-time mode.
type message struct {
	key    msgKey
	val    pits.Value
	fromPE int
	at     machine.Time
}

// msgKey identifies a scheduled message: producer task, consumer task,
// variable.
type msgKey struct {
	from graph.NodeID
	to   graph.NodeID
	v    string
}

// sendPlan is one cross-processor delivery a producer copy must make.
type sendPlan struct {
	key   msgKey
	toPE  int
	words int64
}

// Run executes the schedule against flat, the flattened design the
// schedule was computed from.
func (r *Runner) Run(s *sched.Schedule, flat *graph.Flat) (*Result, error) {
	if s == nil || flat == nil || s.Graph == nil || s.Machine == nil {
		return nil, fmt.Errorf("exec: nil schedule or design")
	}
	g := s.Graph
	numPE := s.Machine.NumPE()
	// Build the schedule's index and the topology's routing tables now:
	// both caches fill lazily and unsynchronized, and every worker
	// goroutine reads them.
	s.Finalize()
	s.Machine.Topo.Precompute()

	// Parse every routine up front; fail fast before spawning workers.
	progs := map[graph.NodeID]*pits.Program{}
	for _, n := range g.Tasks() {
		if n.Routine == "" {
			// A routine-less task is a no-op placeholder: legal in
			// scheduling studies, and at run time it simply produces
			// nothing.
			progs[n.ID] = &pits.Program{}
			continue
		}
		prog, err := pits.Parse(n.Routine)
		if err != nil {
			return nil, fmt.Errorf("exec: task %s: %w", n.ID, err)
		}
		progs[n.ID] = prog
	}

	// Expected cross-PE messages per consumer processor, and the
	// deliveries each producer copy must make, from the schedule.
	expect := make([]map[msgKey]bool, numPE)
	sends := make([]map[graph.NodeID][]sendPlan, numPE)
	for pe := 0; pe < numPE; pe++ {
		expect[pe] = map[msgKey]bool{}
		sends[pe] = map[graph.NodeID][]sendPlan{}
	}
	for _, msg := range s.Msgs {
		if msg.FromPE == msg.ToPE {
			continue
		}
		k := msgKey{msg.From, msg.To, msg.Var}
		expect[msg.ToPE][k] = true
		sends[msg.FromPE][msg.From] = append(sends[msg.FromPE][msg.From],
			sendPlan{key: k, toPE: msg.ToPE, words: msg.Words})
	}

	inboxes := make([]chan message, numPE)
	for pe := range inboxes {
		inboxes[pe] = make(chan message, len(s.Msgs)+1)
	}
	done := make(chan struct{})
	var closeOnce sync.Once
	abort := func() { closeOnce.Do(func() { close(done) }) }

	workers := make([]*worker, numPE)
	start := time.Now()
	now := func() machine.Time { return machine.Time(time.Since(start).Microseconds()) }
	for pe := 0; pe < numPE; pe++ {
		workers[pe] = &worker{
			pe: pe, runner: r, sched: s, flat: flat, progs: progs,
			expected: expect[pe], sends: sends[pe],
			inboxes: inboxes, done: done, now: now,
			outputs: pits.Env{}, exports: map[string]graph.NodeID{},
		}
	}

	var wg sync.WaitGroup
	for _, w := range workers {
		wg.Add(1)
		go func(w *worker) {
			defer wg.Done()
			if w.err = w.run(); w.err != nil {
				abort()
			}
		}(w)
	}
	wg.Wait()

	// One failing worker aborts the run, which makes every other worker
	// fail too ("aborted while sending/waiting"). Those cascade errors
	// are consequences, not causes: report the originating failures
	// first and fold the cascade into a count so the root cause is the
	// first thing the user reads.
	var roots, cascades []error
	for _, w := range workers {
		if w.err == nil {
			continue
		}
		e := fmt.Errorf("PE %d: %w", w.pe, w.err)
		if errors.Is(w.err, errAborted) {
			cascades = append(cascades, e)
		} else {
			roots = append(roots, e)
		}
	}
	switch {
	case len(roots) > 0 && len(cascades) > 0:
		return nil, fmt.Errorf("%w\n(%d other workers aborted in cascade)", errors.Join(roots...), len(cascades))
	case len(roots) > 0:
		return nil, errors.Join(roots...)
	case len(cascades) > 0:
		// Shouldn't happen — an abort always has an originating failure
		// — but never swallow an error.
		return nil, errors.Join(cascades...)
	}
	res := &Result{Outputs: pits.Env{}, Trace: &trace.Trace{Label: "run:" + s.Algorithm}, Elapsed: time.Since(start)}
	owner := map[string]graph.NodeID{} // unqualified external output -> exporting task
	for _, w := range workers {
		res.Trace.Events = append(res.Trace.Events, w.events...)
		for k, v := range w.outputs {
			res.Outputs[k] = v
		}
		for v, task := range w.exports {
			if prev, clash := owner[v]; clash && prev != task {
				a, b := prev, task
				if b < a {
					a, b = b, a
				}
				return nil, fmt.Errorf("exec: external output %q exported by both task %s and task %s; rename one or read the qualified keys %q and %q",
					v, a, b, string(a)+"."+v, string(b)+"."+v)
			}
			owner[v] = task
			res.Outputs[v] = res.Outputs[string(task)+"."+v]
		}
		res.Printed = append(res.Printed, w.printed...)
	}
	res.Trace.Sort()
	return res, nil
}

// errAborted marks a worker failure that is a consequence of another
// worker's abort, not a root cause.
var errAborted = errors.New("aborted")

// worker owns one simulated processor during a run.
type worker struct {
	pe       int
	runner   *Runner
	sched    *sched.Schedule
	flat     *graph.Flat
	progs    map[graph.NodeID]*pits.Program
	expected map[msgKey]bool
	sends    map[graph.NodeID][]sendPlan
	inboxes  []chan message
	done     chan struct{}
	now      func() machine.Time

	events  []trace.Event
	outputs pits.Env                // qualified "task.var" external outputs
	exports map[string]graph.NodeID // unqualified external output -> exporting task
	printed []string
	err     error

	clock machine.Time              // virtual-time clock (VirtualTime mode)
	local map[graph.NodeID]pits.Env // outputs of tasks executed here
	recvd map[msgKey]message
}

// run executes the worker's slot list in schedule order.
func (w *worker) run() error {
	w.local = map[graph.NodeID]pits.Env{}
	w.recvd = map[msgKey]message{}
	g := w.sched.Graph
	virtual := w.runner.VirtualTime
	for _, sl := range w.sched.PESlots(w.pe) {
		env := pits.Env{}
		// External inputs bound by name from the runner's global data.
		for _, v := range w.flat.ExternalIn[sl.Task] {
			val, ok := w.runner.Inputs[v]
			if !ok {
				return fmt.Errorf("task %s: missing external input %q", sl.Task, v)
			}
			env[v] = val
		}
		// Arc inputs: from the local store when the producer ran here,
		// else from a received message. dataReady tracks the latest
		// virtual message arrival.
		var dataReady machine.Time
		for _, a := range g.PredArcs(sl.Task) {
			k := msgKey{a.From, sl.Task, a.Var}
			if w.expected[k] {
				m, err := w.receive(k)
				if err != nil {
					return fmt.Errorf("task %s: %w", sl.Task, err)
				}
				env[a.Var] = m.val
				if m.at > dataReady {
					dataReady = m.at
				}
				continue
			}
			prodEnv, ok := w.local[a.From]
			if !ok {
				return fmt.Errorf("task %s: input %q from %s neither local nor scheduled as a message",
					sl.Task, a.Var, a.From)
			}
			val, ok := prodEnv[a.Var]
			if !ok {
				return fmt.Errorf("task %s: producer %s did not define %q", sl.Task, a.From, a.Var)
			}
			env[a.Var] = val
		}

		start := w.now()
		if virtual {
			start = w.clock
			if dataReady > start {
				start = dataReady
			}
		}
		w.events = append(w.events, trace.Event{Kind: trace.TaskStart, At: start, Task: sl.Task, PE: w.pe, Dup: sl.Dup})
		in := &pits.Interp{MaxSteps: w.runner.MaxSteps, Seed: taskSeed(sl.Task)}
		env = env.Clone() // defensive: never alias values across tasks
		if err := in.Run(w.progs[sl.Task], env); err != nil {
			return fmt.Errorf("task %s: %w", sl.Task, err)
		}
		finish := w.now()
		if virtual {
			finish = start + w.sched.Machine.ExecTime(in.Ops(), w.pe)
			w.clock = finish
		}
		w.events = append(w.events, trace.Event{Kind: trace.TaskEnd, At: finish, Task: sl.Task, PE: w.pe, Dup: sl.Dup})
		for _, line := range in.Output() {
			w.printed = append(w.printed, string(sl.Task)+": "+line)
		}
		w.local[sl.Task] = env

		// Deliver scheduled messages from this copy.
		for _, sp := range w.sends[sl.Task] {
			val, ok := env[sp.key.v]
			if !ok {
				return fmt.Errorf("task %s: routine did not produce %q needed by %s", sl.Task, sp.key.v, sp.key.to)
			}
			sendAt := w.now()
			arriveAt := machine.Time(0)
			if virtual {
				sendAt = finish
				arriveAt = finish + w.sched.Machine.CommTime(sp.words, w.pe, sp.toPE)
			}
			w.events = append(w.events, trace.Event{Kind: trace.MsgSend, At: sendAt, Task: sl.Task, PE: w.pe, Var: sp.key.v, Peer: sp.toPE})
			select {
			case w.inboxes[sp.toPE] <- message{key: sp.key, val: val, fromPE: w.pe, at: arriveAt}:
			case <-w.done:
				return fmt.Errorf("%w while sending to PE %d", errAborted, sp.toPE)
			}
		}

		// External outputs from the primary copy only (duplicates are
		// communication surrogates, not result owners). Only the
		// qualified "task.var" key is written here; Run merges the
		// unqualified names and rejects collisions between tasks.
		if !sl.Dup {
			for _, v := range w.flat.ExternalOut[sl.Task] {
				val, ok := env[v]
				if !ok {
					return fmt.Errorf("task %s: routine did not produce external output %q", sl.Task, v)
				}
				w.outputs[string(sl.Task)+"."+v] = val
				w.exports[v] = sl.Task
			}
		}
	}
	return nil
}

// receive blocks until the identified message arrives, stashing any
// other messages that show up first.
func (w *worker) receive(k msgKey) (message, error) {
	emit := func(m message) message {
		at := w.now()
		if w.runner.VirtualTime {
			at = m.at
		}
		w.events = append(w.events, trace.Event{Kind: trace.MsgRecv, At: at, Task: k.from, PE: w.pe, Var: k.v, Peer: m.fromPE})
		return m
	}
	if m, ok := w.recvd[k]; ok {
		delete(w.recvd, k)
		return emit(m), nil
	}
	for {
		select {
		case m := <-w.inboxes[w.pe]:
			if m.key == k {
				return emit(m), nil
			}
			w.recvd[m.key] = m
		case <-w.done:
			return message{}, fmt.Errorf("%w while waiting for %s:%s from %s", errAborted, k.to, k.v, k.from)
		}
	}
}

// taskSeed derives a deterministic rand() seed from the task name so
// runs are reproducible regardless of goroutine interleaving.
func taskSeed(id graph.NodeID) int64 {
	h := fnv.New64a()
	h.Write([]byte(id))
	return int64(h.Sum64() & 0x7fffffffffffffff)
}
