package exec

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"sort"
	"strings"
	"time"

	"repro/internal/graph"
	"repro/internal/pits"
	"repro/internal/sched"
	"repro/internal/trace"
)

// Runner executes a scheduled Banger program for real: one goroutine
// per processor of the target machine, buffered channels as links, and
// each task's PITS routine interpreted on actual data. Timing comes
// from the wall clock, so the trace shows genuine parallel execution;
// correctness of results is independent of interleaving because PITS
// routines are deterministic (rand() is seeded per task name).
//
// The runner is fault-tolerant: an optional FaultPlan injects crashes
// and message faults at reproducible points, per-receive watchdogs turn
// lost messages into diagnosable timeouts, Retry enables acknowledged
// delivery with retransmission, and a crashed processor triggers
// recovery — surviving workers pause at a barrier while sched.Recover
// replans the lost work onto live processors, then the run resumes and
// produces the same outputs a fault-free run would.
type Runner struct {
	// Inputs provides the design's external data: values for every
	// variable that flows from writer-less storage cells
	// (graph.Flat.ExternalIn).
	Inputs pits.Env
	// MaxSteps bounds each routine's interpreter steps (0 = default).
	MaxSteps int64
	// VirtualTime switches the trace clock from the wall to the
	// machine model: each worker keeps a virtual clock advanced by
	// ExecTime over the *measured* interpreter ops of every task, and
	// messages carry virtual arrival stamps computed with CommTime.
	// The run still executes in genuine parallel on goroutines, but
	// the resulting trace is deterministic and directly comparable to
	// the scheduler's prediction — when task work was calibrated from
	// a rehearsal, a contention-free schedule's Gantt chart and the
	// virtual-time trace of its real execution coincide exactly.
	VirtualTime bool

	// Faults optionally injects deterministic faults (see FaultPlan).
	Faults *FaultPlan
	// Retry enables sequence-numbered delivery with acknowledgements
	// and capped exponential backoff, absorbing dropped and duplicated
	// messages transparently.
	Retry bool
	// RetryBase is the first retransmission backoff (0 = 15ms).
	RetryBase time.Duration
	// RetryCap bounds the exponential backoff (0 = 120ms).
	RetryCap time.Duration
	// Grace scales the schedule's predicted arrival times into watchdog
	// deadlines (0 = the machine's GraceFactor).
	Grace float64
	// WatchdogMin is the floor every watchdog deadline includes, so
	// tiny predicted times don't produce hair-trigger timeouts on a
	// loaded host (0 = 1s).
	WatchdogMin time.Duration
	// NoWatchdog disables per-receive watchdogs (the global stall
	// detector still runs).
	NoWatchdog bool
	// StallTimeout bounds how long the whole run may go without any
	// task completing or message arriving before it is failed as
	// stalled (0 = 30s, negative = disabled).
	StallTimeout time.Duration

	// Stats optionally accumulates runtime counters across every
	// session this runner starts: a long-running control plane serving
	// back-to-back runs points all of them at one shared counter set
	// and exposes the running totals. Nil keeps the default of a
	// private counter set per session.
	Stats *Stats
}

func (r *Runner) retryBase() time.Duration {
	if r.RetryBase > 0 {
		return r.RetryBase
	}
	return 15 * time.Millisecond
}

func (r *Runner) retryCap() time.Duration {
	if r.RetryCap > 0 {
		return r.RetryCap
	}
	return 120 * time.Millisecond
}

func (r *Runner) watchdogMin() time.Duration {
	if r.WatchdogMin > 0 {
		return r.WatchdogMin
	}
	return time.Second
}

func (r *Runner) stallTimeout() time.Duration {
	if r.StallTimeout > 0 {
		return r.StallTimeout
	}
	if r.StallTimeout < 0 {
		return 0
	}
	return 30 * time.Second
}

// Result is the outcome of a parallel run.
type Result struct {
	// Outputs holds the variables tasks exported through reader-less
	// storage cells (graph.Flat.ExternalOut).
	Outputs pits.Env
	// Printed collects the print output of all tasks, each line
	// prefixed with "task: ".
	Printed []string
	// Trace holds wall-clock task/message events (microseconds since
	// run start).
	Trace *trace.Trace
	// Elapsed is the wall-clock duration of the whole run.
	Elapsed time.Duration
}

// msgKey identifies a scheduled message: producer task, consumer task,
// variable.
type msgKey struct {
	from graph.NodeID
	to   graph.NodeID
	v    string
}

// sendPlan is one cross-processor delivery a producer copy must make.
type sendPlan struct {
	key   msgKey
	toPE  int
	words int64
}

// Run executes the schedule against flat, the flattened design the
// schedule was computed from.
func (r *Runner) Run(s *sched.Schedule, flat *graph.Flat) (*Result, error) {
	return r.RunContext(context.Background(), s, flat)
}

// RunContext is Run with cancellation: when ctx is cancelled, the run
// aborts and the cancellation is reported as its root cause.
func (r *Runner) RunContext(ctx context.Context, s *sched.Schedule, flat *graph.Flat) (*Result, error) {
	ses, err := r.StartSession(s, flat, nil, nil)
	if err != nil {
		return nil, err
	}
	if ctx != nil && ctx.Done() != nil {
		stop := make(chan struct{})
		defer close(stop)
		go func() {
			select {
			case <-ctx.Done():
				ses.Abort(fmt.Errorf("exec: run cancelled: %w", ctx.Err()))
			case <-stop:
			}
		}()
	}
	p, err := ses.Wait()
	if err != nil {
		return nil, err
	}
	outputs, printed, err := MergePartials(p)
	if err != nil {
		return nil, err
	}
	res := &Result{Outputs: outputs, Printed: printed,
		Trace:   &trace.Trace{Label: "run:" + s.Algorithm, Events: p.Events},
		Elapsed: ses.Elapsed()}
	res.Trace.Sort()
	return res, nil
}

// checkInputs validates the runner's Inputs against the design's
// external input variables, reporting every missing one at once.
func (r *Runner) checkInputs(flat *graph.Flat) error {
	missing := map[string]bool{}
	for _, vars := range flat.ExternalIn {
		for _, v := range vars {
			if _, ok := r.Inputs[v]; !ok {
				missing[v] = true
			}
		}
	}
	if len(missing) == 0 {
		return nil
	}
	names := make([]string, 0, len(missing))
	for v := range missing {
		names = append(names, fmt.Sprintf("%q", v))
	}
	sort.Strings(names)
	return fmt.Errorf("exec: missing external input(s) %s: provide them via Runner.Inputs", strings.Join(names, ", "))
}

// errAborted marks a worker failure that is a consequence of another
// worker's abort, not a root cause.
var errAborted = errors.New("aborted")

// taskSeed derives a deterministic rand() seed from the task name so
// runs are reproducible regardless of goroutine interleaving.
func taskSeed(id graph.NodeID) int64 {
	h := fnv.New64a()
	h.Write([]byte(id))
	return int64(h.Sum64() & 0x7fffffffffffffff)
}
