package exec

import (
	"reflect"
	"strings"
	"testing"
	"time"

	"repro/internal/graph"
	"repro/internal/pits"
	"repro/internal/sched"
	"repro/internal/trace"
)

// wideDesign builds a two-source / three-middle / one-sink design with
// real routines, wide enough that every scheduler spreads it across
// processors and produces cross-PE messages.
func wideDesign(t *testing.T) *graph.Flat {
	t.Helper()
	g := graph.New("wide-calc")
	g.MustAddStorage("X0", "x0")
	g.MustAddStorage("X1", "x1")
	s1 := g.MustAddTask("s1", "src1", 40)
	s2 := g.MustAddTask("s2", "src2", 40)
	m1 := g.MustAddTask("m1", "mid1", 30)
	m2 := g.MustAddTask("m2", "mid2", 35)
	m3 := g.MustAddTask("m3", "mid3", 45)
	snk := g.MustAddTask("snk", "sink", 20)
	g.MustAddStorage("Y", "y")
	s1.Routine = "p = x0 + 1"
	s2.Routine = "q = x1 * 2"
	m1.Routine = "r1 = p + q"
	m2.Routine = "r2 = p - q"
	m3.Routine = "r3 = p * q"
	snk.Routine = "y = r1 + r2 + r3"
	g.MustConnect("X0", "s1", "x0", 1)
	g.MustConnect("X1", "s2", "x1", 1)
	for _, mid := range []graph.NodeID{"m1", "m2", "m3"} {
		g.MustConnect("s1", mid, "p", 1)
		g.MustConnect("s2", mid, "q", 1)
	}
	g.MustConnect("m1", "snk", "r1", 1)
	g.MustConnect("m2", "snk", "r2", 1)
	g.MustConnect("m3", "snk", "r3", 1)
	g.MustConnect("snk", "Y", "y", 1)
	flat, err := g.Flatten()
	if err != nil {
		t.Fatal(err)
	}
	return flat
}

func wideInputs() pits.Env {
	return pits.Env{"x0": pits.Num(6), "x1": pits.Num(3)}
}

// countKinds tallies trace events by kind.
func countKinds(tr *trace.Trace) map[trace.Kind]int {
	n := map[trace.Kind]int{}
	for _, e := range tr.Events {
		n[e.Kind]++
	}
	return n
}

// TestFaultMatrix is the table-driven robustness sweep: every fault
// kind against every topology and scheduler combination, asserting the
// faulty run reproduces the fault-free outputs exactly and that the
// trace records the injected fault (and, where retransmission is the
// healing mechanism, the retries).
func TestFaultMatrix(t *testing.T) {
	flat := wideDesign(t)
	algs := []sched.Scheduler{sched.MH{}, sched.DSH{}}
	topos := []string{"hypercube:2", "star:4", "full:4"}
	kinds := []FaultKind{FaultCrash, FaultDrop, FaultDup, FaultDelay, FaultCorrupt}
	for _, spec := range topos {
		for _, alg := range algs {
			m := testMachine(t, spec, params())
			s, err := alg.Schedule(flat.Graph, m)
			if err != nil {
				t.Fatal(err)
			}
			clean := &Runner{Inputs: wideInputs()}
			want, err := clean.Run(s, flat)
			if err != nil {
				t.Fatalf("%s/%s fault-free: %v", spec, alg.Name(), err)
			}
			for _, kind := range kinds {
				t.Run(spec+"/"+alg.Name()+"/"+kind.String(), func(t *testing.T) {
					var fault Fault
					switch kind {
					case FaultCrash:
						pe := -1
						for p := 0; p < m.NumPE(); p++ {
							if len(s.PESlots(p)) > 0 {
								pe = p
								break
							}
						}
						if pe < 0 {
							t.Skip("no busy PE to crash")
						}
						fault = Fault{Kind: FaultCrash, PE: pe, Slot: 0}
					default:
						var msg *sched.Msg
						for i := range s.Msgs {
							if s.Msgs[i].FromPE != s.Msgs[i].ToPE {
								msg = &s.Msgs[i]
								break
							}
						}
						if msg == nil {
							t.Skip("schedule has no cross-PE message to fault")
						}
						fault = Fault{Kind: kind, From: msg.From, To: msg.To, Var: msg.Var, Count: 1}
						if kind == FaultDelay {
							fault.Delay = 2000 // 2ms wall
						}
					}
					r := &Runner{
						Inputs: wideInputs(),
						Faults: &FaultPlan{Faults: []Fault{fault}},
						Retry:  true, RetryBase: 2 * time.Millisecond, RetryCap: 20 * time.Millisecond,
					}
					got, err := r.Run(s, flat)
					if err != nil {
						t.Fatalf("faulty run: %v", err)
					}
					if !reflect.DeepEqual(got.Outputs, want.Outputs) {
						t.Errorf("outputs diverged under %s:\n got %v\nwant %v", fault, got.Outputs, want.Outputs)
					}
					n := countKinds(got.Trace)
					if n[trace.FaultInjected] == 0 {
						t.Errorf("trace records no injected fault for %s", fault)
					}
					switch kind {
					case FaultCrash:
						if n[trace.TaskRescheduled] == 0 {
							t.Errorf("crash recovery recorded no rescheduled tasks")
						}
					case FaultDrop, FaultCorrupt:
						if n[trace.MsgRetry] == 0 {
							t.Errorf("%s healed without a recorded retry", kind)
						}
					}
					st, err := got.Trace.Summarize(m.NumPE())
					if err != nil {
						t.Fatalf("summarize: %v", err)
					}
					if st.Faults != n[trace.FaultInjected] || st.Retries != n[trace.MsgRetry] || st.Rescheduled != n[trace.TaskRescheduled] {
						t.Errorf("stats disagree with event counts: %+v", st)
					}
				})
			}
		}
	}
}

// chainSchedule hand-places a 4-task chain a->b->d->e so that PE 0 runs
// a, d, e and PE 1 runs b, forcing the messages a->b:u and b->d:v
// across the wire. Crash PE 0 at slot 2 and the crash fires only after
// d completed — i.e. after b's reply arrived, which itself needs the
// retransmission when a->b:u is dropped. Every fault/retry/reschedule
// event is then deterministic.
func chainSchedule(t *testing.T) (*sched.Schedule, *graph.Flat) {
	t.Helper()
	g := graph.New("chain-calc")
	g.MustAddStorage("X0", "x0")
	a := g.MustAddTask("a", "a", 10)
	b := g.MustAddTask("b", "b", 10)
	d := g.MustAddTask("d", "d", 10)
	e := g.MustAddTask("e", "e", 10)
	g.MustAddStorage("OUT", "out")
	a.Routine = "u = 2 * x0"
	b.Routine = "v = u + 1"
	d.Routine = "z = v * 2"
	e.Routine = "out = z + 1"
	g.MustConnect("X0", "a", "x0", 1)
	g.MustConnect("a", "b", "u", 1)
	g.MustConnect("b", "d", "v", 1)
	g.MustConnect("d", "e", "z", 1)
	g.MustConnect("e", "OUT", "out", 1)
	flat, err := g.Flatten()
	if err != nil {
		t.Fatal(err)
	}
	m := testMachine(t, "full:2", params())
	s := &sched.Schedule{
		Graph: flat.Graph, Machine: m, Algorithm: "hand",
		Slots: []sched.Slot{
			{Task: "a", PE: 0, Start: 0, Finish: 11},
			{Task: "b", PE: 1, Start: 17, Finish: 28},
			{Task: "d", PE: 0, Start: 34, Finish: 45},
			{Task: "e", PE: 0, Start: 45, Finish: 56},
		},
		Msgs: []sched.Msg{
			{Var: "u", From: "a", To: "b", FromPE: 0, ToPE: 1, Words: 1, Send: 11, Recv: 17, Hops: 1},
			{Var: "v", From: "b", To: "d", FromPE: 1, ToPE: 0, Words: 1, Send: 28, Recv: 34, Hops: 1},
		},
	}
	s.Finalize()
	return s, flat
}

// TestCrashAndDropRecoverExactOutputs is the headline acceptance run: a
// seeded plan that drops a message and crashes a processor must still
// complete with outputs byte-identical to the fault-free run, and the
// trace must record the faults, the retry that healed the drop and the
// tasks recovery moved.
func TestCrashAndDropRecoverExactOutputs(t *testing.T) {
	s, flat := chainSchedule(t)
	inputs := pits.Env{"x0": pits.Num(5)}
	want, err := (&Runner{Inputs: inputs}).Run(s, flat)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := ParseFaults("drop:a->b:u,crash:0@2")
	if err != nil {
		t.Fatal(err)
	}
	r := &Runner{
		Inputs: inputs, Faults: plan,
		Retry: true, RetryBase: 2 * time.Millisecond, RetryCap: 10 * time.Millisecond,
	}
	got, err := r.Run(s, flat)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Outputs, want.Outputs) {
		t.Errorf("outputs diverged:\n got %v\nwant %v", got.Outputs, want.Outputs)
	}
	n := countKinds(got.Trace)
	if n[trace.FaultInjected] != 2 {
		t.Errorf("want 2 FaultInjected events (drop + crash), got %d", n[trace.FaultInjected])
	}
	if n[trace.MsgRetry] == 0 {
		t.Errorf("dropped message healed without a recorded retry")
	}
	if n[trace.TaskRescheduled] == 0 {
		t.Errorf("crash recovery recorded no rescheduled tasks")
	}
	// The tasks the dead processor still owed (d ran; a re-derivable;
	// e pending) must all have been replanned onto the survivor.
	moved := map[graph.NodeID]bool{}
	for _, ev := range got.Trace.Events {
		if ev.Kind == trace.TaskRescheduled {
			if ev.PE != 1 {
				t.Errorf("task %s rescheduled onto PE %d; only PE 1 survives", ev.Task, ev.PE)
			}
			moved[ev.Task] = true
		}
	}
	if !moved["e"] {
		t.Errorf("pending task e not rescheduled; moved: %v", moved)
	}
}

// TestWatchdogNamesLostMessage: a dropped message without retry must
// fail with a watchdog timeout naming the missing edge — not hang.
func TestWatchdogNamesLostMessage(t *testing.T) {
	s, flat := chainSchedule(t)
	plan, err := ParseFaults("drop:a->b:u")
	if err != nil {
		t.Fatal(err)
	}
	r := &Runner{
		Inputs:      pits.Env{"x0": pits.Num(5)},
		Faults:      plan,
		WatchdogMin: 50 * time.Millisecond,
	}
	_, err = r.Run(s, flat)
	if err == nil {
		t.Fatal("lost message without retry did not fail")
	}
	if !strings.Contains(err.Error(), "watchdog") {
		t.Errorf("error is not a watchdog timeout: %v", err)
	}
	if !strings.Contains(err.Error(), "a->b:u") {
		t.Errorf("watchdog error does not name the missing edge: %v", err)
	}
}

// TestStallDetectorBacksUpWatchdog: with per-receive watchdogs off, the
// global stall detector must still turn the lost message into a
// diagnosable failure.
func TestStallDetectorBacksUpWatchdog(t *testing.T) {
	s, flat := chainSchedule(t)
	plan, err := ParseFaults("drop:a->b:u")
	if err != nil {
		t.Fatal(err)
	}
	r := &Runner{
		Inputs:       pits.Env{"x0": pits.Num(5)},
		Faults:       plan,
		NoWatchdog:   true,
		StallTimeout: 150 * time.Millisecond,
	}
	_, err = r.Run(s, flat)
	if err == nil {
		t.Fatal("stalled run did not fail")
	}
	if !strings.Contains(err.Error(), "stalled") {
		t.Errorf("error is not a stall report: %v", err)
	}
	if !strings.Contains(err.Error(), "a->b:u") {
		t.Errorf("stall report does not say what PE 1 was waiting for: %v", err)
	}
}

// TestDuplicateDeliveryRejected: a malformed schedule that records the
// same message twice must be rejected at the receiver, not silently
// absorbed by overwriting the stash.
func TestDuplicateDeliveryRejected(t *testing.T) {
	s, flat := chainSchedule(t)
	dupMsgs := append(append([]sched.Msg{}, s.Msgs...), s.Msgs[0]) // a->b:u twice
	hand := &sched.Schedule{Graph: s.Graph, Machine: s.Machine, Algorithm: "hand-dup",
		Slots: s.Slots, Msgs: dupMsgs}
	hand.Finalize()
	r := &Runner{Inputs: pits.Env{"x0": pits.Num(5)}}
	_, err := r.Run(hand, flat)
	if err == nil {
		t.Fatal("doubled message record not rejected")
	}
	if !strings.Contains(err.Error(), "duplicate delivery") {
		t.Errorf("error does not report the duplicate delivery: %v", err)
	}
}

// TestInjectedDuplicateAbsorbed: the same delivery duplicated by the
// chaos harness (same sequence number) must be absorbed silently.
func TestInjectedDuplicateAbsorbed(t *testing.T) {
	s, flat := chainSchedule(t)
	inputs := pits.Env{"x0": pits.Num(5)}
	want, err := (&Runner{Inputs: inputs}).Run(s, flat)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := ParseFaults("dup:a->b:u")
	if err != nil {
		t.Fatal(err)
	}
	got, err := (&Runner{Inputs: inputs, Faults: plan}).Run(s, flat)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Outputs, want.Outputs) {
		t.Errorf("outputs diverged under dup fault:\n got %v\nwant %v", got.Outputs, want.Outputs)
	}
}

// TestMissingInputsFailFast: missing external inputs must be one clear
// preflight error naming every absent variable, with no worker spawned
// and no cascade report.
func TestMissingInputsFailFast(t *testing.T) {
	flat := wideDesign(t)
	m := testMachine(t, "full:2", params())
	s, err := sched.ETF{}.Schedule(flat.Graph, m)
	if err != nil {
		t.Fatal(err)
	}
	_, err = (&Runner{Inputs: pits.Env{"x0": pits.Num(1)}}).Run(s, flat)
	if err == nil {
		t.Fatal("missing input not reported")
	}
	msg := err.Error()
	if !strings.Contains(msg, "external input") || !strings.Contains(msg, `"x1"`) {
		t.Errorf("preflight error should name the missing external input x1: %v", err)
	}
	if strings.Contains(msg, "cascade") {
		t.Errorf("preflight error reads like a runtime cascade: %v", err)
	}
}

func TestParseFaults(t *testing.T) {
	plan, err := ParseFaults("crash:1@2, drop:a->b:u, dup:a->b:u@3, delay:b->d:v@500, corrupt:m1->snk:r1")
	if err != nil {
		t.Fatal(err)
	}
	want := []Fault{
		{Kind: FaultCrash, PE: 1, Slot: 2},
		{Kind: FaultDrop, From: "a", To: "b", Var: "u", Count: 1},
		{Kind: FaultDup, From: "a", To: "b", Var: "u", Count: 3},
		{Kind: FaultDelay, From: "b", To: "d", Var: "v", Delay: 500, Count: 1},
		{Kind: FaultCorrupt, From: "m1", To: "snk", Var: "r1", Count: 1},
	}
	if !reflect.DeepEqual(plan.Faults, want) {
		t.Errorf("parsed %+v\nwant %+v", plan.Faults, want)
	}
}

// TestParseFaultsErrors pins the error message for every malformed
// spec shape: the -faults flag is the user-facing surface of the fault
// injector and a vague parse error wastes a debugging session.
func TestParseFaultsErrors(t *testing.T) {
	cases := []struct {
		spec string
		want string // substring of the error message
	}{
		{"", "no faults"},
		{" , ,", "no faults"},
		{"crash", "want kind:args"},
		{"zap:a->b:u", `unknown kind "zap"`},
		{"crash:1", "want crash:PE@SLOT"},
		{"crash:one@2", "want crash:PE@SLOT"},
		{"crash:-1@2", "negative PE or slot"},
		{"crash:1@-2", "negative PE or slot"},
		{"drop:a:u", "want FROM->TO:VAR"},
		{"drop:->b:u", "want FROM->TO:VAR"},
		{"drop:a->:u", "want FROM->TO:VAR"},
		{"drop:a->b:", "want FROM->TO:VAR"},
		{"delay:a->b:u", "want delay:FROM->TO:VAR@USEC"},
		{"delay:a->b:u@fast", `bad count/delay "fast"`},
		{"delay:a->b:u@0", `bad count/delay "0"`},
		{"dup:a->b:u@-1", `bad count/delay "-1"`},
		{"corrupt:a->b:u@1.5", `bad count/delay "1.5"`},
		{"drop:a->b:u, crash:oops", "want crash:PE@SLOT"},
	}
	for _, tc := range cases {
		_, err := ParseFaults(tc.spec)
		if err == nil {
			t.Errorf("ParseFaults(%q) accepted a malformed spec", tc.spec)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("ParseFaults(%q) = %q, want it to mention %q", tc.spec, err, tc.want)
		}
	}
}

func TestRandomFaultsDeterministic(t *testing.T) {
	flat := wideDesign(t)
	m := testMachine(t, "hypercube:2", params())
	s, err := sched.ETF{}.Schedule(flat.Graph, m)
	if err != nil {
		t.Fatal(err)
	}
	a := RandomFaults(7, s)
	b := RandomFaults(7, s)
	if a == nil {
		t.Fatal("RandomFaults returned nil for a schedule with work and messages")
	}
	if !reflect.DeepEqual(a, b) {
		t.Errorf("same seed drew different plans:\n%v\n%v", a, b)
	}
	if len(a.Faults) < 2 {
		t.Errorf("want a crash and a drop, got %v", a)
	}
}

// TestRandomFaultsSurvived: seeded random crash+drop plans across many
// seeds must all recover to the exact fault-free outputs (the make
// chaos loop runs this 50x under -race).
func TestRandomFaultsSurvived(t *testing.T) {
	flat := wideDesign(t)
	m := testMachine(t, "hypercube:2", params())
	s, err := sched.ETF{}.Schedule(flat.Graph, m)
	if err != nil {
		t.Fatal(err)
	}
	want, err := (&Runner{Inputs: wideInputs()}).Run(s, flat)
	if err != nil {
		t.Fatal(err)
	}
	for seed := int64(1); seed <= 5; seed++ {
		r := &Runner{
			Inputs: wideInputs(), Faults: RandomFaults(seed, s),
			Retry: true, RetryBase: 2 * time.Millisecond, RetryCap: 20 * time.Millisecond,
		}
		got, err := r.Run(s, flat)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if !reflect.DeepEqual(got.Outputs, want.Outputs) {
			t.Errorf("seed %d: outputs diverged:\n got %v\nwant %v", seed, got.Outputs, want.Outputs)
		}
	}
}
