package exec

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/graph"
	"repro/internal/machine"
	"repro/internal/pits"
	"repro/internal/sched"
	"repro/internal/trace"
)

// worker owns one simulated processor during a run. Its slot list,
// expected messages and send plans are installed by Run for era 0 and
// rewritten by the coordinator at each recovery barrier.
type worker struct {
	pe     int
	runner *Runner
	sched  *sched.Schedule
	flat   *graph.Flat
	progs  map[graph.NodeID]*pits.Program
	ctrl   *controller
	now    func() machine.Time

	// Per-era assignment.
	slots    []sched.Slot
	cursor   int
	expected map[msgKey]machine.Time // key -> predicted arrival (watchdog basis)
	sends    map[graph.NodeID][]sendPlan
	resends  []sendPlan // surviving results to re-deliver at era start
	epoch    int64
	er       *era

	events  []trace.Event
	outputs pits.Env                // qualified "task.var" external outputs
	exports map[string]graph.NodeID // unqualified external output -> exporting task
	printed []string
	err     error
	dead    bool // crashed by fault injection; results discarded

	clock    machine.Time              // virtual-time clock (VirtualTime mode)
	local    map[graph.NodeID]pits.Env // outputs of tasks executed here
	recvd    map[msgKey]xmsg           // admitted but not yet consumed
	seen     map[msgKey]uint64         // consumed keys -> sequence (duplicate rejection)
	executed int                       // tasks executed here, across eras (crash counter)
	seqLocal uint64                    // low bits of this sender's message sequence numbers
}

// errPaused marks a receive or slot interrupted by the recovery
// barrier, not a failure.
var errPaused = errors.New("paused for recovery")

// wstatus is the outcome of one execute() pass.
type wstatus int

const (
	wsFinished wstatus = iota // slot list complete
	wsPaused                  // recovery barrier reached mid-list
	wsCrashed                 // injected crash fired
	wsError                   // real failure
)

// run is the worker goroutine: execute the current assignment, then
// idle until the run completes or a recovery hands out a new one.
// run is the worker goroutine. The local/recvd/seen maps are built at
// session construction (not here) so a session started mid-run can
// install imported state before the goroutine launches.
func (w *worker) run() error {
	for {
		w.er = w.ctrl.era.Load()
		st, err := w.execute()
		switch st {
		case wsError:
			return err
		case wsCrashed:
			w.dead = true
			w.ctrl.post(wevent{evCrash, w.pe})
			return nil
		case wsPaused:
			if !w.park() {
				return nil
			}
		case wsFinished:
			w.ctrl.post(wevent{evIdle, w.pe})
			select {
			case <-w.er.pause:
				if !w.park() {
					return nil
				}
			case <-w.ctrl.finish:
				return nil
			case <-w.ctrl.done:
				return nil
			}
		}
	}
}

// park waits at the recovery barrier until the coordinator installs the
// next era (true) or the run aborts (false). Undelivered stash and
// duplicate-tracking state belong to the dead era and are discarded.
func (w *worker) park() bool {
	w.recvd = map[msgKey]xmsg{}
	w.seen = map[msgKey]uint64{}
	w.ctrl.post(wevent{evParked, w.pe})
	select {
	case <-w.er.resume:
		return true
	case <-w.ctrl.done:
		return false
	}
}

// execute runs the worker's current slot list from its cursor.
func (w *worker) execute() (wstatus, error) {
	// First re-deliver surviving results the recovery plan routed from
	// this processor's local store.
	for _, sp := range w.resends {
		env, ok := w.local[sp.key.from]
		if !ok {
			return wsError, fmt.Errorf("recovery resend: no local result for task %s", sp.key.from)
		}
		val, ok := env[sp.key.v]
		if !ok {
			return wsError, fmt.Errorf("recovery resend: task %s result lacks %q", sp.key.from, sp.key.v)
		}
		sendAt := w.now()
		arriveAt := machine.Time(0)
		if w.runner.VirtualTime {
			sendAt = w.clock
			arriveAt = w.clock + w.sched.Machine.CommTime(sp.words, w.pe, sp.toPE)
		}
		if err := w.send(sp, val, sendAt, arriveAt); err != nil {
			return wsError, err
		}
	}
	if len(w.resends) > 0 {
		// The re-send burst precedes the slot loop; flush it so peers
		// waiting on surviving results aren't stalled behind our first
		// (possibly long) slot.
		w.ctrl.flushRemote()
	}
	w.resends = nil

	for w.cursor < len(w.slots) {
		if w.ctrl.faults.crashNow(w.pe, w.executed) {
			at := w.now()
			if w.runner.VirtualTime {
				at = w.clock
			}
			w.events = append(w.events, trace.Event{Kind: trace.FaultInjected, At: at,
				Task: w.slots[w.cursor].Task, PE: w.pe, Peer: w.pe, Note: "crash"})
			w.ctrl.stats.FaultsInjected.Add(1)
			return wsCrashed, nil
		}
		select {
		case <-w.er.pause:
			return wsPaused, nil
		default:
		}
		if err := w.runSlot(w.slots[w.cursor]); err != nil {
			if errors.Is(err, errPaused) {
				return wsPaused, nil
			}
			return wsError, err
		}
		w.cursor++
		w.executed++
		w.ctrl.progress.Add(1)
		w.ctrl.stats.TasksRun.Add(1)
	}
	return wsFinished, nil
}

// runSlot executes one scheduled task copy: gather inputs (local,
// message or external), interpret the routine, deliver scheduled
// messages, and export external outputs from the primary copy.
func (w *worker) runSlot(sl sched.Slot) error {
	g := w.sched.Graph
	virtual := w.runner.VirtualTime
	env := pits.Env{}
	// External inputs bound by name from the runner's global data
	// (validated up front by Run; kept as defense in depth).
	for _, v := range w.flat.ExternalIn[sl.Task] {
		val, ok := w.runner.Inputs[v]
		if !ok {
			return fmt.Errorf("task %s: missing external input %q", sl.Task, v)
		}
		env[v] = val
	}
	// Arc inputs: from the local store when the producer ran here, else
	// from a received message. dataReady tracks the latest virtual
	// message arrival.
	var dataReady machine.Time
	for _, a := range g.PredArcs(sl.Task) {
		k := msgKey{a.From, sl.Task, a.Var}
		if _, isMsg := w.expected[k]; isMsg {
			m, err := w.receive(k)
			if err != nil {
				if errors.Is(err, errPaused) {
					return err
				}
				return fmt.Errorf("task %s: %w", sl.Task, err)
			}
			env[a.Var] = m.val
			if m.at > dataReady {
				dataReady = m.at
			}
			continue
		}
		prodEnv, ok := w.local[a.From]
		if !ok {
			return fmt.Errorf("task %s: input %q from %s neither local nor scheduled as a message",
				sl.Task, a.Var, a.From)
		}
		val, ok := prodEnv[a.Var]
		if !ok {
			return fmt.Errorf("task %s: producer %s did not define %q", sl.Task, a.From, a.Var)
		}
		env[a.Var] = val
	}

	start := w.now()
	if virtual {
		start = w.clock
		if dataReady > start {
			start = dataReady
		}
	}
	w.events = append(w.events, trace.Event{Kind: trace.TaskStart, At: start, Task: sl.Task, PE: w.pe, Dup: sl.Dup})
	in := &pits.Interp{MaxSteps: w.runner.MaxSteps, Seed: taskSeed(sl.Task)}
	env = env.Clone() // defensive: never alias values across tasks
	if err := in.Run(w.progs[sl.Task], env); err != nil {
		return fmt.Errorf("task %s: %w", sl.Task, err)
	}
	finish := w.now()
	if virtual {
		finish = start + w.sched.Machine.ExecTime(in.Ops(), w.pe)
		w.clock = finish
	}
	w.events = append(w.events, trace.Event{Kind: trace.TaskEnd, At: finish, Task: sl.Task, PE: w.pe, Dup: sl.Dup})
	for _, line := range in.Output() {
		w.printed = append(w.printed, string(sl.Task)+": "+line)
	}
	w.local[sl.Task] = env

	// Deliver scheduled messages from this copy.
	for _, sp := range w.sends[sl.Task] {
		val, ok := env[sp.key.v]
		if !ok {
			return fmt.Errorf("task %s: routine did not produce %q needed by %s", sl.Task, sp.key.v, sp.key.to)
		}
		sendAt := w.now()
		arriveAt := machine.Time(0)
		if virtual {
			sendAt = finish
			arriveAt = finish + w.sched.Machine.CommTime(sp.words, w.pe, sp.toPE)
		}
		if err := w.send(sp, val, sendAt, arriveAt); err != nil {
			return fmt.Errorf("task %s: %w", sl.Task, err)
		}
	}
	if len(w.sends[sl.Task]) > 0 {
		// Slot boundary: the send burst above may be coalescing in a
		// remote plane's peer buffers; put it on the wire now.
		w.ctrl.flushRemote()
	}

	// External outputs from the primary copy only (duplicates are
	// communication surrogates, not result owners). Only the qualified
	// "task.var" key is written here; Run merges the unqualified names
	// and rejects collisions between tasks.
	if !sl.Dup {
		for _, v := range w.flat.ExternalOut[sl.Task] {
			val, ok := env[v]
			if !ok {
				return fmt.Errorf("task %s: routine did not produce external output %q", sl.Task, v)
			}
			w.outputs[string(sl.Task)+"."+v] = val
			w.exports[v] = sl.Task
		}
	}
	return nil
}

// send transports one scheduled delivery, applying any injected faults
// and choosing the reliable or direct path.
func (w *worker) send(sp sendPlan, val pits.Value, sendAt, arriveAt machine.Time) error {
	// Sequence numbers are per-sender (PE in the high bits) so that
	// assignment does not depend on cross-goroutine interleaving:
	// virtual-time runs replay with identical traces.
	w.seqLocal++
	m := xmsg{key: sp.key, val: val, fromPE: w.pe, at: arriveAt,
		seq: uint64(w.pe+1)<<32 | w.seqLocal, epoch: w.epoch}
	if w.ctrl.checksums {
		m.sum = checksum(val)
	}
	w.events = append(w.events, trace.Event{Kind: trace.MsgSend, At: sendAt,
		Task: sp.key.from, PE: w.pe, Var: sp.key.v, Peer: sp.toPE, Seq: m.seq})
	w.ctrl.stats.MsgsSent.Add(1)
	copies := 1
	var wallDelay time.Duration
	for _, k := range w.ctrl.faults.onSend(sp.key) {
		w.events = append(w.events, trace.Event{Kind: trace.FaultInjected, At: sendAt,
			Task: sp.key.from, PE: w.pe, Var: sp.key.v, Peer: sp.toPE, Note: k.String()})
		w.ctrl.stats.FaultsInjected.Add(1)
		switch k {
		case FaultDrop:
			copies = 0
		case FaultDup:
			copies = 2
		case FaultDelay:
			d := w.ctrl.faults.delayOf(sp.key)
			m.at += d
			wallDelay = time.Duration(d) * time.Microsecond
		case FaultCorrupt:
			m.val = corruptValue(val)
		}
	}
	if !w.ctrl.isLocal(sp.toPE) {
		// The consumer lives in another process: hand the message to
		// the remote plane, which owns process-boundary reliability.
		return w.ctrl.sendRemote(m, val, sp.toPE, copies, wallDelay)
	}
	if w.ctrl.retry {
		m.ack = make(chan struct{}, 4)
		w.ctrl.sendReliable(m, val, sp.toPE, copies, wallDelay)
		return nil
	}
	if copies == 0 {
		// Dropped with no retransmission to resurrect it: the
		// receiver's watchdog turns this into a diagnosable timeout.
		return nil
	}
	if wallDelay > 0 {
		for i := 0; i < copies; i++ {
			w.ctrl.sendDelayed(m, sp.toPE, wallDelay)
		}
		return nil
	}
	for i := 0; i < copies; i++ {
		select {
		case w.ctrl.inboxes[sp.toPE] <- m:
		case <-w.ctrl.done:
			return fmt.Errorf("%w while sending to PE %d", errAborted, sp.toPE)
		}
	}
	return nil
}

// admit vets one delivery: stale-era and benign duplicate copies are
// acknowledged and discarded, corrupted payloads are dropped so the
// sender retransmits (an error without retry), and a second delivery of
// a consumed key with a different sequence number is rejected as a
// schedule bug.
func (w *worker) admit(m xmsg) (bool, error) {
	if m.epoch != w.epoch {
		ackMsg(m)
		return false, nil
	}
	if w.ctrl.checksums && m.sum != 0 && m.sum != checksum(m.val) {
		if w.ctrl.retry {
			return false, nil // no ack: the sender retransmits the original
		}
		return false, fmt.Errorf("message %s->%s:%s from PE %d corrupted in transit",
			m.key.from, m.key.to, m.key.v, m.fromPE)
	}
	if prev, consumed := w.seen[m.key]; consumed {
		if prev == m.seq {
			ackMsg(m) // retransmission or injected duplicate of the same send
			return false, nil
		}
		return false, fmt.Errorf("duplicate delivery of %s->%s:%s (sequence %d after %d): schedule sends it twice",
			m.key.from, m.key.to, m.key.v, m.seq, prev)
	}
	w.seen[m.key] = m.seq
	ackMsg(m)
	w.ctrl.progress.Add(1)
	return true, nil
}

// receive blocks until the identified message arrives, stashing any
// other messages that show up first. A watchdog deadline derived from
// the schedule's predicted arrival time bounds the wait, so a lost
// message becomes a diagnosable timeout instead of a hang.
func (w *worker) receive(k msgKey) (xmsg, error) {
	emit := func(m xmsg) xmsg {
		at := w.now()
		if w.runner.VirtualTime {
			at = m.at
		}
		w.events = append(w.events, trace.Event{Kind: trace.MsgRecv, At: at, Task: k.from, PE: w.pe, Var: k.v, Peer: m.fromPE, Seq: m.seq})
		w.ctrl.stats.MsgsRecv.Add(1)
		return m
	}
	if m, ok := w.recvd[k]; ok {
		delete(w.recvd, k)
		return emit(m), nil
	}
	predicted := w.expected[k]
	var timeout <-chan time.Time
	if !w.runner.NoWatchdog {
		timer := time.NewTimer(w.watchdogDeadline(predicted))
		defer timer.Stop()
		timeout = timer.C
	}
	edge := fmt.Sprintf("%s->%s:%s", k.from, k.to, k.v)
	w.ctrl.setWaiting(w.pe, edge)
	defer w.ctrl.setWaiting(w.pe, "")
	for {
		select {
		case m := <-w.ctrl.inboxes[w.pe]:
			ok, err := w.admit(m)
			if err != nil {
				return xmsg{}, err
			}
			if !ok {
				continue
			}
			if m.key == k {
				return emit(m), nil
			}
			w.recvd[m.key] = m
		case <-w.er.pause:
			return xmsg{}, errPaused
		case <-w.ctrl.done:
			return xmsg{}, fmt.Errorf("%w while waiting for %s:%s from %s", errAborted, k.to, k.v, k.from)
		case <-timeout:
			// The recovery barrier can race the timer; parking wins.
			select {
			case <-w.er.pause:
				return xmsg{}, errPaused
			default:
			}
			upstream := ""
			if others := w.ctrl.waitingExcept(w.pe); others != "" {
				upstream = "; upstream: " + others
			}
			return xmsg{}, fmt.Errorf("watchdog: message %s not received within %v (predicted arrival %v, grace %.1fx)%s",
				edge, w.watchdogDeadline(predicted), predicted, w.ctrl.grace, upstream)
		}
	}
}

// watchdogDeadline converts a predicted arrival time into a wall-clock
// wait bound: a fixed floor plus the prediction scaled by the grace
// factor.
func (w *worker) watchdogDeadline(predicted machine.Time) time.Duration {
	return w.runner.watchdogMin() + time.Duration(w.ctrl.grace*float64(predicted))*time.Microsecond
}
