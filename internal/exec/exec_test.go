package exec

import (
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/graph"
	"repro/internal/machine"
	"repro/internal/pits"
	"repro/internal/sched"
	"repro/internal/trace"
)

func testMachine(t *testing.T, spec string, p machine.Params) *machine.Machine {
	t.Helper()
	topo, err := machine.ParseTopology(spec)
	if err != nil {
		t.Fatal(err)
	}
	m, err := machine.New(spec, topo, p)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func params() machine.Params {
	return machine.Params{ProcSpeed: 1, TaskStartup: 1, MsgStartup: 5, WordTime: 1}
}

// diamondDesign builds a design with real routines:
//
//	[x0] -> (a: u=2*x0) -> (b: v=u+1), (c: w=u*10) -> (d: y=v+w) -> [y]
func diamondDesign(t *testing.T) *graph.Flat {
	t.Helper()
	g := graph.New("diamond-calc")
	g.MustAddStorage("X0", "x0")
	a := g.MustAddTask("a", "double", 10)
	b := g.MustAddTask("b", "inc", 10)
	c := g.MustAddTask("c", "tens", 10)
	d := g.MustAddTask("d", "combine", 10)
	g.MustAddStorage("Y", "y")
	a.Routine = "u = 2 * x0"
	b.Routine = "v = u + 1"
	c.Routine = "w = u * 10"
	d.Routine = "y = v + w"
	g.MustConnect("X0", "a", "x0", 1)
	g.MustConnect("a", "b", "u", 1)
	g.MustConnect("a", "c", "u", 1)
	g.MustConnect("b", "d", "v", 1)
	g.MustConnect("c", "d", "w", 1)
	g.MustConnect("d", "Y", "y", 1)
	flat, err := g.Flatten()
	if err != nil {
		t.Fatal(err)
	}
	return flat
}

func TestSimulateMatchesContentionFreeSchedulers(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g, err := graph.LayeredRandom(rng, graph.LayeredConfig{
		Layers: 4, Width: 3, MinWork: 1, MaxWork: 30, MinWords: 0, MaxWords: 15, Density: 0.4,
	})
	if err != nil {
		t.Fatal(err)
	}
	m := testMachine(t, "hypercube:2", params())
	for _, s := range []sched.Scheduler{sched.Serial{}, sched.HLFET{}, sched.ETF{}, sched.ISH{}, sched.DSH{}, sched.Pack{}} {
		sc, err := s.Schedule(g, m)
		if err != nil {
			t.Fatalf("%s: %v", s.Name(), err)
		}
		tr, err := Simulate(sc)
		if err != nil {
			t.Fatalf("%s: %v", s.Name(), err)
		}
		spans, err := tr.Spans()
		if err != nil {
			t.Fatalf("%s: %v", s.Name(), err)
		}
		// Derived spans must equal the scheduler's slots exactly.
		for pe := 0; pe < m.NumPE(); pe++ {
			want := sc.PESlots(pe)
			got := spans[pe]
			if len(got) != len(want) {
				t.Fatalf("%s PE%d: %d spans vs %d slots", s.Name(), pe, len(got), len(want))
			}
			for i := range want {
				if got[i].Task != want[i].Task || got[i].Start != want[i].Start || got[i].Finish != want[i].Finish {
					t.Errorf("%s PE%d slot %d: simulated %+v vs scheduled %+v", s.Name(), pe, i, got[i], want[i])
				}
			}
		}
	}
}

// Property-style version of the exact-replay check: across many random
// layered graphs and machine shapes, the simulator must re-derive every
// contention-free scheduler's slot times exactly.
func TestSimulateReproducesContentionFreeSchedulersRandom(t *testing.T) {
	schedulers := []sched.Scheduler{sched.Serial{}, sched.HLFET{}, sched.ETF{}, sched.ISH{}, sched.DSH{}, sched.Pack{}}
	for seed := int64(0); seed < 8; seed++ {
		rng := rand.New(rand.NewSource(seed))
		g, err := graph.LayeredRandom(rng, graph.LayeredConfig{
			Layers: 2 + int(seed%4), Width: 2 + int(seed%3),
			MinWork: 1, MaxWork: 50, MinWords: 0, MaxWords: 25, Density: 0.35,
		})
		if err != nil {
			t.Fatal(err)
		}
		for _, spec := range []string{"hypercube:2", "mesh:2x2", "star:4"} {
			m := testMachine(t, spec, params())
			for _, s := range schedulers {
				sc, err := s.Schedule(g, m)
				if err != nil {
					t.Fatalf("seed %d %s/%s: %v", seed, spec, s.Name(), err)
				}
				tr, err := Simulate(sc)
				if err != nil {
					t.Fatalf("seed %d %s/%s: %v", seed, spec, s.Name(), err)
				}
				spans, err := tr.Spans()
				if err != nil {
					t.Fatalf("seed %d %s/%s: %v", seed, spec, s.Name(), err)
				}
				for pe := 0; pe < m.NumPE(); pe++ {
					want := sc.PESlots(pe)
					got := spans[pe]
					if len(got) != len(want) {
						t.Fatalf("seed %d %s/%s PE%d: %d spans vs %d slots", seed, spec, s.Name(), pe, len(got), len(want))
					}
					for i := range want {
						if got[i].Task != want[i].Task || got[i].Start != want[i].Start || got[i].Finish != want[i].Finish {
							t.Errorf("seed %d %s/%s PE%d slot %d: simulated %+v vs scheduled %+v",
								seed, spec, s.Name(), pe, i, got[i], want[i])
						}
					}
				}
			}
		}
	}
}

func TestSimulateMHNeverBeatenByScheduledTimes(t *testing.T) {
	// MH charges link contention the simulator doesn't model, so the
	// simulated (contention-free) makespan must be <= MH's estimate.
	g := graph.ForkJoin(6, 20, 40)
	m := testMachine(t, "star:5", params())
	sc, err := sched.MH{}.Schedule(g, m)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := Simulate(sc)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Makespan() > sc.Makespan() {
		t.Errorf("simulated %v > scheduled %v", tr.Makespan(), sc.Makespan())
	}
}

func TestSimulateDetectsInconsistentOrder(t *testing.T) {
	g := graph.Chain(2, 10, 0)
	m := testMachine(t, "full:1", params())
	bad := &sched.Schedule{Graph: g, Machine: m, Algorithm: "bad",
		Slots: []sched.Slot{
			{Task: "t1", PE: 0, Start: 0, Finish: 11},
			{Task: "t0", PE: 0, Start: 11, Finish: 22},
		}}
	if _, err := Simulate(bad); err == nil {
		t.Fatal("consumer-before-producer order accepted")
	}
	if _, err := Simulate(nil); err == nil {
		t.Fatal("nil schedule accepted")
	}
}

func TestPredictedMirrorsSchedule(t *testing.T) {
	g := graph.Diamond(10, 5)
	m := testMachine(t, "full:2", params())
	sc, err := sched.ETF{}.Schedule(g, m)
	if err != nil {
		t.Fatal(err)
	}
	tr := Predicted(sc)
	if tr.Makespan() != sc.Makespan() {
		t.Errorf("trace makespan %v != schedule %v", tr.Makespan(), sc.Makespan())
	}
	starts := 0
	for _, e := range tr.Events {
		if e.Kind == trace.TaskStart {
			starts++
		}
	}
	if starts != len(sc.Slots) {
		t.Errorf("starts = %d, slots = %d", starts, len(sc.Slots))
	}
}

func TestRunnerDiamondProducesCorrectResult(t *testing.T) {
	flat := diamondDesign(t)
	m := testMachine(t, "full:2", params())
	sc, err := sched.ETF{}.Schedule(flat.Graph, m)
	if err != nil {
		t.Fatal(err)
	}
	r := &Runner{Inputs: pits.Env{"x0": pits.Num(3)}}
	res, err := r.Run(sc, flat)
	if err != nil {
		t.Fatal(err)
	}
	// u = 6; v = 7; w = 60; y = 67.
	if res.Outputs["y"] != pits.Num(67) {
		t.Errorf("y = %v, want 67", res.Outputs["y"])
	}
	if res.Outputs["d.y"] != pits.Num(67) {
		t.Errorf("qualified output missing: %v", res.Outputs)
	}
	st, err := res.Trace.Summarize(m.NumPE())
	if err != nil {
		t.Fatal(err)
	}
	if st.TasksRun != 4 {
		t.Errorf("tasks run = %d", st.TasksRun)
	}
	if res.Elapsed <= 0 {
		t.Error("elapsed not recorded")
	}
}

func TestRunnerSameResultOnEverySchedulerAndMachine(t *testing.T) {
	flat := diamondDesign(t)
	for _, spec := range []string{"full:1", "full:2", "hypercube:2", "star:4", "mesh:2x2"} {
		m := testMachine(t, spec, params())
		for _, s := range sched.All() {
			sc, err := s.Schedule(flat.Graph, m)
			if err != nil {
				t.Fatalf("%s/%s: %v", spec, s.Name(), err)
			}
			r := &Runner{Inputs: pits.Env{"x0": pits.Num(5)}}
			res, err := r.Run(sc, flat)
			if err != nil {
				t.Fatalf("%s/%s: %v", spec, s.Name(), err)
			}
			if res.Outputs["y"] != pits.Num(111) { // 2*5+1 + 2*5*10
				t.Errorf("%s/%s: y = %v", spec, s.Name(), res.Outputs["y"])
			}
		}
	}
}

func TestRunnerWithDSHDuplicates(t *testing.T) {
	g := graph.New("dup")
	src := g.MustAddTask("src", "", 5)
	c1 := g.MustAddTask("c1", "", 50)
	c2 := g.MustAddTask("c2", "", 50)
	src.Routine = "d = base * 2"
	c1.Routine = "r1 = d + 1"
	c2.Routine = "r2 = d + 2"
	g.MustAddStorage("B", "base")
	g.MustAddStorage("R1", "r1")
	g.MustAddStorage("R2", "r2")
	g.MustConnect("B", "src", "base", 1)
	g.MustConnect("src", "c1", "d", 100)
	g.MustConnect("src", "c2", "d", 100)
	g.MustConnect("c1", "R1", "r1", 1)
	g.MustConnect("c2", "R2", "r2", 1)
	flat, err := g.Flatten()
	if err != nil {
		t.Fatal(err)
	}
	m := testMachine(t, "full:2", machine.Params{ProcSpeed: 1, TaskStartup: 0, MsgStartup: 5, WordTime: 1})
	sc, err := sched.DSH{}.Schedule(flat.Graph, m)
	if err != nil {
		t.Fatal(err)
	}
	hasDup := false
	for _, sl := range sc.Slots {
		if sl.Dup {
			hasDup = true
		}
	}
	if !hasDup {
		t.Fatal("expected duplicates in DSH schedule")
	}
	r := &Runner{Inputs: pits.Env{"base": pits.Num(10)}}
	res, err := r.Run(sc, flat)
	if err != nil {
		t.Fatal(err)
	}
	if res.Outputs["r1"] != pits.Num(21) || res.Outputs["r2"] != pits.Num(22) {
		t.Errorf("outputs = %v", res.Outputs)
	}
	st, err := res.Trace.Summarize(2)
	if err != nil {
		t.Fatal(err)
	}
	if st.DupsRun == 0 {
		t.Error("no duplicate executions in trace")
	}
}

func TestRunnerErrors(t *testing.T) {
	flat := diamondDesign(t)
	m := testMachine(t, "full:2", params())
	sc, err := sched.ETF{}.Schedule(flat.Graph, m)
	if err != nil {
		t.Fatal(err)
	}
	t.Run("missing external input", func(t *testing.T) {
		r := &Runner{Inputs: pits.Env{}}
		if _, err := r.Run(sc, flat); err == nil || !strings.Contains(err.Error(), "external input") {
			t.Errorf("err = %v", err)
		}
	})
	t.Run("nil schedule", func(t *testing.T) {
		r := &Runner{}
		if _, err := r.Run(nil, flat); err == nil {
			t.Error("nil accepted")
		}
	})
	t.Run("routine does not produce arc variable", func(t *testing.T) {
		bad := diamondDesign(t)
		bad.Graph.Node("a").Routine = "unrelated = 1" // never defines u
		sc2, err := sched.ETF{}.Schedule(bad.Graph, m)
		if err != nil {
			t.Fatal(err)
		}
		r := &Runner{Inputs: pits.Env{"x0": pits.Num(1)}}
		if _, err := r.Run(sc2, bad); err == nil {
			t.Error("missing produced variable accepted")
		}
	})
	t.Run("syntax error fails fast", func(t *testing.T) {
		bad := diamondDesign(t)
		bad.Graph.Node("a").Routine = "u = "
		sc2, err := sched.ETF{}.Schedule(bad.Graph, m)
		if err != nil {
			t.Fatal(err)
		}
		r := &Runner{Inputs: pits.Env{"x0": pits.Num(1)}}
		if _, err := r.Run(sc2, bad); err == nil {
			t.Error("syntax error accepted")
		}
	})
	t.Run("runaway task aborts whole run", func(t *testing.T) {
		bad := diamondDesign(t)
		bad.Graph.Node("b").Routine = "v = 1\nwhile true do\n  v = v + 1\nend"
		sc2, err := sched.ETF{}.Schedule(bad.Graph, m)
		if err != nil {
			t.Fatal(err)
		}
		r := &Runner{Inputs: pits.Env{"x0": pits.Num(1)}, MaxSteps: 10_000}
		_, err = r.Run(sc2, bad)
		if err == nil || !strings.Contains(err.Error(), "step limit") {
			t.Errorf("err = %v", err)
		}
	})
}

// calibrate runs every routine once in topological order (a miniature
// rehearsal) and sets each task's Work to its measured interpreter ops,
// so virtual-time execution and the machine model agree exactly.
func calibrate(t *testing.T, flat *graph.Flat, inputs pits.Env) {
	t.Helper()
	order, err := flat.Graph.TopoSort()
	if err != nil {
		t.Fatal(err)
	}
	produced := map[graph.NodeID]pits.Env{}
	for _, id := range order {
		n := flat.Graph.Node(id)
		env := pits.Env{}
		for _, v := range flat.ExternalIn[id] {
			env[v] = inputs[v]
		}
		for _, a := range flat.Graph.Pred(id) {
			env[a.Var] = produced[a.From][a.Var]
		}
		prog, err := pits.Parse(n.Routine)
		if err != nil {
			t.Fatalf("task %s: %v", id, err)
		}
		ops, out, _, err := pits.Measure(prog, env)
		if err != nil {
			t.Fatalf("task %s: %v", id, err)
		}
		produced[id] = out
		n.Work = ops
		if n.Work < 1 {
			n.Work = 1
		}
	}
}

// The virtual-time runner trace and the discrete-event simulation must
// be event-for-event identical — same kinds, times, tasks, variables
// and peer processors — for a contention-free schedule of a calibrated
// design. This is what makes real-run traces directly diffable against
// predictions.
func TestRunnerVirtualTraceMatchesSimulate(t *testing.T) {
	flat := diamondDesign(t)
	inputs := pits.Env{"x0": pits.Num(3)}
	calibrate(t, flat, inputs)
	for _, spec := range []string{"full:2", "hypercube:2", "star:4"} {
		m := testMachine(t, spec, params())
		for _, s := range []sched.Scheduler{sched.ETF{}, sched.HLFET{}, sched.Pack{}} {
			sc, err := s.Schedule(flat.Graph, m)
			if err != nil {
				t.Fatalf("%s/%s: %v", spec, s.Name(), err)
			}
			sim, err := Simulate(sc)
			if err != nil {
				t.Fatalf("%s/%s: %v", spec, s.Name(), err)
			}
			r := &Runner{Inputs: inputs, VirtualTime: true}
			res, err := r.Run(sc, flat)
			if err != nil {
				t.Fatalf("%s/%s: %v", spec, s.Name(), err)
			}
			got := res.Trace
			got.Sort()
			sim.Sort()
			if len(got.Events) != len(sim.Events) {
				t.Fatalf("%s/%s: %d run events vs %d simulated\nrun:\n%s\nsim:\n%s",
					spec, s.Name(), len(got.Events), len(sim.Events), got, sim)
			}
			for i := range sim.Events {
				// Sequence numbers are allocation order, which depends on
				// goroutine interleaving; the simulator leaves them 0.
				ge := got.Events[i]
				ge.Seq = 0
				if ge != sim.Events[i] {
					t.Errorf("%s/%s event %d: run %+v != simulated %+v",
						spec, s.Name(), i, got.Events[i], sim.Events[i])
				}
			}
		}
	}
}

// When one worker fails, the others die with cascade-abort errors; the
// reported error must lead with the originating failure, not the
// cascade.
func TestRunnerReportsRootCauseBeforeCascade(t *testing.T) {
	g := graph.New("cascade")
	a := g.MustAddTask("a", "runaway", 10)
	c := g.MustAddTask("c", "consumer", 10)
	a.Routine = "u = 1\nwhile true do\n  u = u + 1\nend"
	c.Routine = "z = u"
	g.MustConnect("a", "c", "u", 1)
	flat, err := g.Flatten()
	if err != nil {
		t.Fatal(err)
	}
	m := testMachine(t, "full:2", params())
	// Hand-placed schedule pinning the consumer to the other processor,
	// so its worker is blocked in receive when the producer fails.
	sc := &sched.Schedule{Graph: flat.Graph, Machine: m, Algorithm: "hand",
		Slots: []sched.Slot{
			{Task: "a", PE: 0, Start: 0, Finish: 11},
			{Task: "c", PE: 1, Start: 17, Finish: 28},
		},
		Msgs: []sched.Msg{{Var: "u", From: "a", To: "c", FromPE: 0, ToPE: 1, Words: 1, Send: 11, Recv: 17, Hops: 1}},
	}
	if err := sc.Validate(); err != nil {
		t.Fatal(err)
	}
	r := &Runner{MaxSteps: 1_000}
	_, err = r.Run(sc, flat)
	if err == nil {
		t.Fatal("runaway run succeeded")
	}
	msg := err.Error()
	rootAt := strings.Index(msg, "step limit")
	cascadeAt := strings.Index(msg, "aborted")
	if rootAt < 0 {
		t.Fatalf("root cause missing from error: %v", err)
	}
	if cascadeAt >= 0 && cascadeAt < rootAt {
		t.Errorf("cascade reported before root cause: %v", err)
	}
	if !strings.Contains(msg, "cascade") {
		t.Errorf("cascade count missing from error: %v", err)
	}
}

// Two tasks exporting the same unqualified variable must be rejected
// loudly instead of silently overwriting each other in merge order.
func TestRunnerDetectsOutputNameCollision(t *testing.T) {
	g := graph.New("collide")
	t1 := g.MustAddTask("t1", "", 5)
	t2 := g.MustAddTask("t2", "", 5)
	t1.Routine = "v = 1"
	t2.Routine = "v = 2"
	g.MustAddStorage("O1", "v")
	g.MustAddStorage("O2", "v")
	g.MustConnect("t1", "O1", "v", 1)
	g.MustConnect("t2", "O2", "v", 1)
	flat, err := g.Flatten()
	if err != nil {
		t.Fatal(err)
	}
	m := testMachine(t, "full:2", params())
	sc, err := sched.ETF{}.Schedule(flat.Graph, m)
	if err != nil {
		t.Fatal(err)
	}
	r := &Runner{}
	_, err = r.Run(sc, flat)
	if err == nil {
		t.Fatal("colliding external outputs accepted")
	}
	for _, want := range []string{`"v"`, "t1", "t2", "t1.v", "t2.v"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("collision error missing %q: %v", want, err)
		}
	}
}

func TestRunnerCollectsPrints(t *testing.T) {
	g := graph.New("p")
	n := g.MustAddTask("only", "", 1)
	n.Routine = `print "hello", 21 * 2`
	flat, err := g.Flatten()
	if err != nil {
		t.Fatal(err)
	}
	m := testMachine(t, "full:1", params())
	sc, err := sched.Serial{}.Schedule(flat.Graph, m)
	if err != nil {
		t.Fatal(err)
	}
	r := &Runner{}
	res, err := r.Run(sc, flat)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Printed) != 1 || res.Printed[0] != "only: hello 42" {
		t.Errorf("printed = %q", res.Printed)
	}
}

func TestRunnerDeterministicWithRand(t *testing.T) {
	g := graph.New("mc")
	n := g.MustAddTask("draw", "", 1)
	n.Routine = "x = rand() + rand()"
	g.MustAddStorage("X", "x")
	g.MustConnect("draw", "X", "x", 1)
	flat, err := g.Flatten()
	if err != nil {
		t.Fatal(err)
	}
	m := testMachine(t, "full:2", params())
	sc, err := sched.ETF{}.Schedule(flat.Graph, m)
	if err != nil {
		t.Fatal(err)
	}
	r := &Runner{}
	res1, err := r.Run(sc, flat)
	if err != nil {
		t.Fatal(err)
	}
	res2, err := r.Run(sc, flat)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res1.Outputs["x"], res2.Outputs["x"]) {
		t.Errorf("rand()-using task not reproducible: %v vs %v", res1.Outputs["x"], res2.Outputs["x"])
	}
}

// Property: for random designs with arithmetic routines, the runner's
// outputs are identical across all schedulers (schedule choice must
// never change semantics).
func TestRunnerScheduleInvariance(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		// Random three-layer design: 2 sources, 3 middles, 1 sink.
		g := graph.New("rand-calc")
		g.MustAddStorage("IN", "x0")
		for i := 0; i < 2; i++ {
			n := g.MustAddTask(graph.NodeID(srcName(i)), "", int64(rng.Intn(20)+1))
			n.Routine = srcName(i) + "_out = x0 * " + itoa(rng.Intn(5)+1)
			g.MustConnect("IN", n.ID, "x0", 1)
		}
		for i := 0; i < 3; i++ {
			n := g.MustAddTask(graph.NodeID(midName(i)), "", int64(rng.Intn(20)+1))
			p := srcName(rng.Intn(2))
			n.Routine = midName(i) + "_out = " + p + "_out + " + itoa(rng.Intn(9))
			g.MustConnect(graph.NodeID(p), n.ID, p+"_out", int64(rng.Intn(10)))
		}
		sink := g.MustAddTask("sink", "", 5)
		sink.Routine = "total = m0_out + m1_out + m2_out"
		for i := 0; i < 3; i++ {
			g.MustConnect(graph.NodeID(midName(i)), "sink", midName(i)+"_out", 1)
		}
		g.MustAddStorage("OUT", "total")
		g.MustConnect("sink", "OUT", "total", 1)
		flat, err := g.Flatten()
		if err != nil {
			t.Logf("flatten: %v", err)
			return false
		}
		m := testMachine(t, "hypercube:2", params())
		var want pits.Value
		for _, s := range sched.All() {
			sc, err := s.Schedule(flat.Graph, m)
			if err != nil {
				t.Logf("%s: %v", s.Name(), err)
				return false
			}
			r := &Runner{Inputs: pits.Env{"x0": pits.Num(float64(rng.Intn(50)))}}
			// Reseed identically by rebuilding the inputs outside the loop.
			r.Inputs = pits.Env{"x0": pits.Num(7)}
			res, err := r.Run(sc, flat)
			if err != nil {
				t.Logf("%s run: %v", s.Name(), err)
				return false
			}
			got := res.Outputs["total"]
			if want == nil {
				want = got
			} else if !reflect.DeepEqual(want, got) {
				t.Logf("%s: total %v != %v", s.Name(), got, want)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Error(err)
	}
}

func srcName(i int) string { return "s" + itoa(i) }
func midName(i int) string { return "m" + itoa(i) }

func itoa(i int) string {
	if i < 0 || i > 99 {
		return "0"
	}
	digits := "0123456789"
	if i < 10 {
		return string(digits[i])
	}
	return string(digits[i/10]) + string(digits[i%10])
}

// Data-parallel sharding (the paper's fine-grained future work) must
// not change program results, under any scheduler.
func TestRunnerShardedReduction(t *testing.T) {
	g := graph.New("shardable")
	g.MustAddStorage("N", "n")
	w := g.MustAddTask("work", "big reduction", 1000)
	w.Routine = `total = 0
lo = floor((shard - 1) * n / nshards) + 1
hi = floor(shard * n / nshards)
for i = lo to hi do
  total = total + i
end`
	sink := g.MustAddTask("sink", "consume", 10)
	sink.Routine = "result = total"
	g.MustConnect("N", "work", "n", 1)
	g.MustConnect("work", "sink", "total", 1)
	g.MustAddStorage("OUT", "result")
	g.MustConnect("sink", "OUT", "result", 1)
	if err := graph.ShardTask(g, "work", 4, 20, graph.GatherSum(4, "total")); err != nil {
		t.Fatal(err)
	}
	flat, err := g.Flatten()
	if err != nil {
		t.Fatal(err)
	}
	m := testMachine(t, "hypercube:2", params())
	for _, s := range sched.All() {
		sc, err := s.Schedule(flat.Graph, m)
		if err != nil {
			t.Fatalf("%s: %v", s.Name(), err)
		}
		r := &Runner{Inputs: pits.Env{"n": pits.Num(100)}}
		res, err := r.Run(sc, flat)
		if err != nil {
			t.Fatalf("%s: %v", s.Name(), err)
		}
		if res.Outputs["result"] != pits.Num(5050) { // 1+..+100
			t.Errorf("%s: result = %v, want 5050", s.Name(), res.Outputs["result"])
		}
	}
}
