package exec

import (
	"fmt"
	"hash/fnv"
	"time"

	"repro/internal/machine"
	"repro/internal/pits"
	"repro/internal/trace"
)

// This file is the message transport: sequence-numbered, checksummed
// deliveries with optional acknowledge-and-retransmit reliability
// (capped exponential backoff), so dropped and duplicated messages are
// absorbed instead of wedging the run.

// xmsg carries one arc's data between processor goroutines.
type xmsg struct {
	key    msgKey
	val    pits.Value
	fromPE int
	at     machine.Time  // virtual arrival (VirtualTime mode)
	seq    uint64        // unique per logical transmission; duplicates share it
	epoch  int64         // era the message belongs to; stale eras are discarded
	sum    uint64        // payload checksum (0 = unchecked)
	ack    chan struct{} // receiver acknowledges here (reliable mode only)
}

// checksum fingerprints a payload so in-transit corruption is
// detectable at the receiver.
func checksum(v pits.Value) uint64 {
	h := fnv.New64a()
	h.Write([]byte(v.TypeName()))
	h.Write([]byte{'|'})
	h.Write([]byte(v.String()))
	s := h.Sum64()
	if s == 0 {
		return 1 // 0 means "unchecked"
	}
	return s
}

// ackMsg acknowledges receipt; retransmission stops. Safe on messages
// without an ack channel and on repeated calls.
func ackMsg(m xmsg) {
	if m.ack == nil {
		return
	}
	select {
	case m.ack <- struct{}{}:
	default:
	}
}

// deliver enqueues one copy for toPE, giving up if the run ends.
func (c *controller) deliver(m xmsg, toPE int) bool {
	select {
	case c.inboxes[toPE] <- m:
		return true
	case <-c.done:
		return false
	case <-c.finish:
		return false
	}
}

// sendReliable ships m to toPE with retransmission: deliver copies
// (possibly 0 — an injected drop), wait for the ack with exponential
// backoff, and retransmit the original payload until acknowledged or
// the run ends. orig is the uncorrupted payload; retransmissions use it
// so a corrupted or dropped first copy heals. Runs in a background
// goroutine so the sending worker never blocks on a slow consumer.
func (c *controller) sendReliable(m xmsg, orig pits.Value, toPE, copies int, wallDelay time.Duration) {
	c.bg.Add(1)
	go func() {
		defer c.bg.Done()
		if wallDelay > 0 {
			t := time.NewTimer(wallDelay)
			select {
			case <-t.C:
			case <-c.done:
				t.Stop()
				return
			}
		}
		wait := c.runner.retryBase()
		cap := c.runner.retryCap()
		attempt := 0
		for {
			for i := 0; i < copies; i++ {
				if !c.deliver(m, toPE) {
					return
				}
			}
			t := time.NewTimer(wait)
			select {
			case <-m.ack:
				t.Stop()
				return
			case <-c.done:
				t.Stop()
				return
			case <-c.finish:
				t.Stop()
				return
			case <-t.C:
			}
			if c.era.Load().epoch != m.epoch {
				// The world changed under this message: recovery
				// replanned the run and the receiver would discard it.
				return
			}
			attempt++
			copies = 1
			m.val = orig
			if m.sum != 0 {
				m.sum = checksum(orig)
			}
			at := c.now()
			if c.runner.VirtualTime {
				at = m.at
			}
			c.addEvent(trace.Event{Kind: trace.MsgRetry, At: at, Task: m.key.from,
				PE: m.fromPE, Var: m.key.v, Peer: toPE, Seq: m.seq, Note: fmt.Sprintf("attempt %d", attempt)})
			c.stats.Retries.Add(1)
			wait *= 2
			if wait > cap {
				wait = cap
			}
		}
	}()
}

// sendDelayed enqueues one copy after a wall-clock delay without
// blocking the sending worker (unreliable mode with an injected delay).
func (c *controller) sendDelayed(m xmsg, toPE int, wallDelay time.Duration) {
	c.bg.Add(1)
	go func() {
		defer c.bg.Done()
		t := time.NewTimer(wallDelay)
		select {
		case <-t.C:
			c.deliver(m, toPE)
		case <-c.done:
			t.Stop()
		}
	}()
}
