package exec

import (
	"fmt"
	"hash/fnv"
	"sort"
	"strings"
	"testing"

	"repro/internal/graph"
	"repro/internal/pits"
	"repro/internal/sched"
)

// This file pins the in-process runner's observable behaviour across
// refactors: the PR that introduced the wire transport seam rebuilt the
// runner around sessions and a pluggable delivery plane, and these
// fingerprints guarantee the inproc path stayed byte-identical — same
// virtual-time trace, event for event, and same outputs — as the
// pre-refactor runner that talked to its channels directly.

// layeredCalc builds a deterministic layered design of layers*width+1
// tasks with real routines (the golden fixture; mirrors the benchmark
// harness design but small enough to run in every test pass).
func layeredCalc(t *testing.T, layers, width int) (*graph.Flat, pits.Env) {
	t.Helper()
	g := graph.New("layered-calc")
	g.MustAddStorage("IN", "x")
	for l := 0; l < layers; l++ {
		for i := 0; i < width; i++ {
			id := graph.NodeID(fmt.Sprintf("t%d_%d", l, i))
			n := g.MustAddTask(id, string(id), int64(10+(l*7+i*3)%20))
			v := fmt.Sprintf("v%d_%d", l, i)
			if l == 0 {
				n.Routine = fmt.Sprintf("%s = x + %d", v, i)
				g.MustConnect("IN", id, "x", 1)
				continue
			}
			left := fmt.Sprintf("v%d_%d", l-1, i)
			right := fmt.Sprintf("v%d_%d", l-1, (i+1)%width)
			n.Routine = fmt.Sprintf("%s = %s + %s * 2", v, left, right)
			g.MustConnect(graph.NodeID(fmt.Sprintf("t%d_%d", l-1, i)), id, left, 1)
			g.MustConnect(graph.NodeID(fmt.Sprintf("t%d_%d", l-1, (i+1)%width)), id, right, 1)
		}
	}
	snk := g.MustAddTask("snk", "sink", 20)
	terms := make([]string, width)
	for i := 0; i < width; i++ {
		v := fmt.Sprintf("v%d_%d", layers-1, i)
		terms[i] = v
		g.MustConnect(graph.NodeID(fmt.Sprintf("t%d_%d", layers-1, i)), "snk", v, 1)
	}
	snk.Routine = "out = " + strings.Join(terms, " + ")
	g.MustAddStorage("OUT", "out")
	g.MustConnect("snk", "OUT", "out", 1)
	flat, err := g.Flatten()
	if err != nil {
		t.Fatal(err)
	}
	return flat, pits.Env{"x": pits.Num(3)}
}

// runFingerprint executes the schedule in deterministic virtual time
// and fingerprints the full trace rendering plus the sorted outputs.
func runFingerprint(t *testing.T, s sched.Scheduler, flat *graph.Flat, inputs pits.Env, mspec string) string {
	t.Helper()
	m := testMachine(t, mspec, params())
	sc, err := s.Schedule(flat.Graph, m)
	if err != nil {
		t.Fatal(err)
	}
	r := &Runner{Inputs: inputs, VirtualTime: true}
	res, err := r.Run(sc, flat)
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	b.WriteString(res.Trace.String())
	keys := make([]string, 0, len(res.Outputs))
	for k := range res.Outputs {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintf(&b, "%s=%s\n", k, res.Outputs[k])
	}
	for _, line := range res.Printed {
		b.WriteString(line)
		b.WriteByte('\n')
	}
	h := fnv.New64a()
	h.Write([]byte(b.String()))
	return fmt.Sprintf("%016x", h.Sum64())
}

// TestRunnerInprocGolden asserts the refactored runner (message plane
// behind the transport seam) reproduces the pre-refactor runner's
// virtual-time traces and outputs exactly. The fingerprints below were
// computed on the pre-refactor tree; a mismatch means the inproc path
// is no longer byte-identical.
func TestRunnerInprocGolden(t *testing.T) {
	diamond := diamondDesign(t)
	layered, layeredIn := layeredCalc(t, 5, 4)
	cases := []struct {
		name   string
		s      sched.Scheduler
		flat   *graph.Flat
		inputs pits.Env
		mspec  string
		want   string
	}{
		{"diamond-etf-hypercube2", sched.ETF{}, diamond, pits.Env{"x0": pits.Num(21)}, "hypercube:2", "e6700c4d19fb4236"},
		{"layered-mh-hypercube3", sched.MH{}, layered, layeredIn, "hypercube:3", "8cb60e10c5cf946b"},
		{"layered-dsh-star4", sched.DSH{}, layered, layeredIn, "star:4", "5243642cfcee7ff0"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			got := runFingerprint(t, c.s, c.flat, c.inputs, c.mspec)
			if got != c.want {
				t.Errorf("inproc fingerprint drifted: got %s want %s", got, c.want)
			}
		})
	}
}
