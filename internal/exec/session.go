package exec

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/graph"
	"repro/internal/machine"
	"repro/internal/pits"
	"repro/internal/sched"
)

// progCache memoizes parsed routines by source text. Programs are
// read-only after Parse (a session already shares one *Program across
// all its worker goroutines), so sharing them across sessions is safe.
// Distributed workers parse a design once per process instead of once
// per run, and repeated runs of one project re-parse nothing. The cache
// is dropped wholesale past a size bound: parses are cheap to redo, and
// wholesale eviction keeps the bookkeeping at one counter.
var (
	progCacheMu sync.Mutex
	progCache   = map[string]*pits.Program{}
)

const progCacheMax = 4096

func parseCached(src string) (*pits.Program, error) {
	progCacheMu.Lock()
	p, ok := progCache[src]
	progCacheMu.Unlock()
	if ok {
		return p, nil
	}
	p, err := pits.Parse(src)
	if err != nil {
		return nil, err
	}
	progCacheMu.Lock()
	if len(progCache) >= progCacheMax {
		progCache = map[string]*pits.Program{}
	}
	progCache[src] = p
	progCacheMu.Unlock()
	return p, nil
}

// Session is one process's share of a running schedule: the worker
// goroutines of its hosted processors plus the coordinator loop that
// watches them. A single-process Run hosts every processor and drives
// the session itself; a distributed run hosts a subset per process and
// drives each session remotely through Deliver/Pause/Resume/FinishRun,
// with cross-process deliveries flowing through the RemotePlane.
type Session struct {
	runner    *Runner
	s         *sched.Schedule
	flat      *graph.Flat
	ctrl      *controller
	workers   []*worker
	start     time.Time
	wg        sync.WaitGroup
	coordDone chan struct{}
}

// StartSession validates the schedule and launches the hosted workers.
// hosted flags which processors run in this process (nil = all, the
// single-process mode); a non-nil hosted requires a plane to carry
// deliveries to and notifications about the rest of the machine.
func (r *Runner) StartSession(s *sched.Schedule, flat *graph.Flat, hosted []bool, plane RemotePlane) (*Session, error) {
	ses, err := r.buildSession(s, flat, hosted, plane)
	if err != nil {
		return nil, err
	}
	ses.launch()
	return ses, nil
}

// StartSessionFrom builds a session that enters a run already in
// flight — a worker joining mid-run at the epoch barrier. The plan is
// the same global replan the surviving sessions install with Resume:
// the new session derives its hosted share from it, installs any
// imports and adoptions, and starts directly in plan.Epoch with its
// virtual clocks at clock (the global maximum, so its trace stamps
// continue the run's timeline instead of restarting at zero).
func (r *Runner) StartSessionFrom(s *sched.Schedule, flat *graph.Flat, hosted []bool, plane RemotePlane, plan *ResumePlan, clock machine.Time) (*Session, error) {
	if plan == nil {
		return nil, fmt.Errorf("exec: nil resume plan for mid-run session")
	}
	ses, err := r.buildSession(s, flat, hosted, plane)
	if err != nil {
		return nil, err
	}
	c := ses.ctrl
	if len(plan.Dead) != c.numPE {
		return nil, fmt.Errorf("exec: resume plan flags %d processors, machine has %d", len(plan.Dead), c.numPE)
	}
	for _, imp := range plan.Imports {
		if imp.PE < 0 || imp.PE >= c.numPE || !c.isLocal(imp.PE) {
			continue
		}
		if hw := c.workers[imp.PE]; hw != nil {
			hw.local[imp.Task] = imp.Env
		}
	}
	a := deriveAssignment(c.numPE, plan.Slots, plan.Msgs, plan.Done)
	c.applyAssignment(a, plan.Epoch, plan.Dead)
	c.applyAdoptions(plan.Adopt)
	for _, w := range c.workers {
		if w != nil {
			w.clock = clock
		}
	}
	c.era.Store(&era{epoch: plan.Epoch, pause: make(chan struct{}), resume: make(chan struct{})})
	ses.launch()
	return ses, nil
}

// buildSession validates the schedule and constructs the session's
// controller and workers without launching any goroutine, so mid-run
// joins can rewrite era state first.
func (r *Runner) buildSession(s *sched.Schedule, flat *graph.Flat, hosted []bool, plane RemotePlane) (*Session, error) {
	if s == nil || flat == nil || s.Graph == nil || s.Machine == nil {
		return nil, fmt.Errorf("exec: nil schedule or design")
	}
	g := s.Graph
	numPE := s.Machine.NumPE()
	if hosted != nil {
		if len(hosted) != numPE {
			return nil, fmt.Errorf("exec: %d hosted flags for %d processors", len(hosted), numPE)
		}
		if plane == nil {
			return nil, fmt.Errorf("exec: hosting a subset of processors requires a remote plane")
		}
	} else if plane != nil {
		return nil, fmt.Errorf("exec: remote plane without hosted set")
	}
	// Build the schedule's index and the topology's routing tables now:
	// both caches fill lazily and unsynchronized, and every worker
	// goroutine reads them.
	s.Finalize()
	s.Machine.Topo.Precompute()

	// Fail fast on missing external inputs: one clear error before any
	// worker spawns, instead of a root-cause-plus-cascade report.
	if err := r.checkInputs(flat); err != nil {
		return nil, err
	}

	// Parse every routine up front; fail fast before spawning workers.
	progs := map[graph.NodeID]*pits.Program{}
	for _, n := range g.Tasks() {
		if n.Routine == "" {
			// A routine-less task is a no-op placeholder: legal in
			// scheduling studies, and at run time it simply produces
			// nothing.
			progs[n.ID] = &pits.Program{}
			continue
		}
		prog, err := parseCached(n.Routine)
		if err != nil {
			return nil, fmt.Errorf("exec: task %s: %w", n.ID, err)
		}
		progs[n.ID] = prog
	}

	// Expected cross-PE messages per consumer processor (with their
	// predicted arrival times, the watchdog basis), and the deliveries
	// each producer copy must make, from the schedule.
	expect := make([]map[msgKey]machine.Time, numPE)
	sends := make([]map[graph.NodeID][]sendPlan, numPE)
	for pe := 0; pe < numPE; pe++ {
		expect[pe] = map[msgKey]machine.Time{}
		sends[pe] = map[graph.NodeID][]sendPlan{}
	}
	for _, msg := range s.Msgs {
		if msg.FromPE == msg.ToPE {
			continue
		}
		k := msgKey{msg.From, msg.To, msg.Var}
		if _, dup := expect[msg.ToPE][k]; dup {
			return nil, fmt.Errorf("exec: schedule records duplicate delivery of %s->%s:%s to PE %d",
				msg.From, msg.To, msg.Var, msg.ToPE)
		}
		expect[msg.ToPE][k] = msg.Recv
		sends[msg.FromPE][msg.From] = append(sends[msg.FromPE][msg.From],
			sendPlan{key: k, toPE: msg.ToPE, words: msg.Words})
	}

	faults := newFaultState(r.Faults)
	grace := r.Grace
	if grace <= 0 {
		grace = s.Machine.GraceFactor()
	}
	start := time.Now()
	now := func() machine.Time { return machine.Time(time.Since(start).Microseconds()) }

	stats := r.Stats
	if stats == nil {
		stats = &Stats{}
	}
	ctrl := &controller{
		runner: r, s: s, flat: flat, numPE: numPE,
		hosted: hosted, plane: plane,
		cmds:    make(chan sessCmd),
		inboxes: make([]chan xmsg, numPE),
		done:    make(chan struct{}),
		finish:  make(chan struct{}),
		events:  make(chan wevent, numPE*4+16),
		waiting: map[int]string{},
		faults:  faults, retry: r.Retry, checksums: faults.checksums,
		grace: grace, now: now,
		stats: stats,
	}
	// Inboxes are sized so no delivery ever blocks past the run's end:
	// every scheduled and recovery-planned message fits, with room for
	// injected duplicates. Only hosted processors receive — deliveries
	// for remote PEs go through the plane and are rejected by Deliver —
	// so a distributed session pays the never-blocks capacity only for
	// its own share, not numPE times per process.
	inboxCap := (numPE + 1) * (len(s.Msgs) + len(g.Arcs()) + 2)
	for pe := range ctrl.inboxes {
		if !ctrl.isLocal(pe) {
			ctrl.inboxes[pe] = make(chan xmsg)
			continue
		}
		ctrl.inboxes[pe] = make(chan xmsg, inboxCap)
	}
	ctrl.era.Store(&era{pause: make(chan struct{}), resume: make(chan struct{})})

	workers := make([]*worker, numPE)
	for pe := 0; pe < numPE; pe++ {
		if !ctrl.isLocal(pe) {
			continue
		}
		workers[pe] = &worker{
			pe: pe, runner: r, sched: s, flat: flat, progs: progs, ctrl: ctrl, now: now,
			slots: s.PESlots(pe), expected: expect[pe], sends: sends[pe],
			outputs: pits.Env{}, exports: map[string]graph.NodeID{},
			local: map[graph.NodeID]pits.Env{},
			recvd: map[msgKey]xmsg{}, seen: map[msgKey]uint64{},
		}
	}
	ctrl.workers = workers

	ses := &Session{
		runner: r, s: s, flat: flat, ctrl: ctrl, workers: workers,
		start: start, coordDone: make(chan struct{}),
	}
	return ses, nil
}

// launch spawns the session's coordinator, stall watcher and worker
// goroutines. Era state must be final before launch.
func (ses *Session) launch() {
	ctrl := ses.ctrl
	if st := ses.runner.stallTimeout(); st > 0 {
		ctrl.bg.Add(1)
		go ctrl.stallWatch(st)
	}
	go func() {
		ctrl.coordinate()
		close(ses.coordDone)
	}()

	for _, w := range ses.workers {
		if w == nil {
			continue
		}
		ses.wg.Add(1)
		go func(w *worker) {
			defer ses.wg.Done()
			if w.err = w.run(); w.err != nil {
				ctrl.abort()
			}
		}(w)
	}
}

// Deliver injects a message that arrived from another process into the
// hosting processor's inbox. Late deliveries after completion are
// dropped; deliveries after an abort report it.
func (ses *Session) Deliver(m RemoteMsg) error {
	c := ses.ctrl
	if m.ToPE < 0 || m.ToPE >= c.numPE || !c.isLocal(m.ToPE) {
		return fmt.Errorf("exec: delivery for PE %d, which is not hosted here", m.ToPE)
	}
	x := xmsg{key: msgKey{m.From, m.To, m.Var}, val: m.Val, fromPE: m.FromPE,
		at: m.At, seq: m.Seq, epoch: m.Epoch, sum: m.Sum}
	select {
	case c.inboxes[m.ToPE] <- x:
		return nil
	case <-c.done:
		return fmt.Errorf("exec: session aborted")
	case <-c.finish:
		return nil
	}
}

// Progress returns the session's progress counter (completed tasks and
// accepted messages): the payload of liveness heartbeats.
func (ses *Session) Progress() uint64 { return ses.ctrl.progress.Load() }

// Stats returns a snapshot of the session's runtime counters. Safe to
// call while the run is in flight.
func (ses *Session) Stats() StatsSnapshot { return ses.ctrl.stats.Snapshot() }

// Elapsed is the wall-clock time since the session started.
func (ses *Session) Elapsed() time.Duration { return time.Since(ses.start) }

// command round-trips one request through the coordinator loop.
func (ses *Session) command(cmd sessCmd) (sessReply, error) {
	c := ses.ctrl
	select {
	case c.cmds <- cmd:
	case <-c.done:
		return sessReply{}, fmt.Errorf("exec: session aborted")
	case <-c.finish:
		return sessReply{}, fmt.Errorf("exec: session already finished")
	}
	select {
	case rep := <-cmd.reply:
		return rep, nil
	case <-c.done:
		return sessReply{}, fmt.Errorf("exec: session aborted")
	}
}

// Pause drives every live hosted worker to the recovery barrier and
// reports the state the coordinator needs to replan: surviving task
// results, exported outputs, local deaths and the virtual clock.
func (ses *Session) Pause() (*PauseState, error) {
	rep, err := ses.command(sessCmd{kind: cmdPause, reply: make(chan sessReply, 1)})
	if err != nil {
		return nil, err
	}
	if rep.state == nil {
		return nil, fmt.Errorf("exec: session aborted during pause")
	}
	return rep.state, nil
}

// PauseCheckpoint is Pause for a graceful drain: it drives the hosted
// workers to the barrier and additionally packs the full worker-local
// env checkpoint, print lines and trace events into the PauseState, so
// the coordinator can re-home this process's entire contribution to
// the run before the process departs.
func (ses *Session) PauseCheckpoint() (*PauseState, error) {
	rep, err := ses.command(sessCmd{kind: cmdPause, checkpoint: true, reply: make(chan sessReply, 1)})
	if err != nil {
		return nil, err
	}
	if rep.state == nil {
		return nil, fmt.Errorf("exec: session aborted during pause")
	}
	return rep.state, nil
}

// Resume installs the recovery plan's hosted share and releases the
// parked workers into the new era. Only legal after Pause.
func (ses *Session) Resume(p *ResumePlan) error {
	if p == nil || len(p.Dead) != ses.ctrl.numPE {
		return fmt.Errorf("exec: malformed resume plan")
	}
	_, err := ses.command(sessCmd{kind: cmdResume, plan: p, reply: make(chan sessReply, 1)})
	return err
}

// FinishRun declares the run globally complete (every process idle);
// hosted workers unwind and Wait can collect the partial result.
func (ses *Session) FinishRun() { ses.ctrl.complete() }

// Abort fails the session with the given root cause.
func (ses *Session) Abort(err error) { ses.ctrl.fail(err) }

// Wait blocks until the session has fully unwound and returns this
// process's partial result, or the run's root-cause error(s).
func (ses *Session) Wait() (*Partial, error) {
	ses.wg.Wait()
	<-ses.coordDone
	ses.ctrl.bg.Wait()

	// One failing worker aborts the run, which makes every other worker
	// fail too ("aborted while sending/waiting"). Those cascade errors
	// are consequences, not causes: report the originating failures
	// first and fold the cascade into a count so the root cause is the
	// first thing the user reads.
	var roots, cascades []error
	if ses.ctrl.runErr != nil {
		roots = append(roots, ses.ctrl.runErr)
	}
	for _, w := range ses.workers {
		if w == nil || w.err == nil {
			continue
		}
		e := fmt.Errorf("PE %d: %w", w.pe, w.err)
		if errors.Is(w.err, errAborted) {
			cascades = append(cascades, e)
		} else {
			roots = append(roots, e)
		}
	}
	switch {
	case len(roots) > 0 && len(cascades) > 0:
		return nil, fmt.Errorf("%w\n(%d other workers aborted in cascade)", errors.Join(roots...), len(cascades))
	case len(roots) > 0:
		return nil, errors.Join(roots...)
	case len(cascades) > 0:
		// Shouldn't happen — an abort always has an originating failure
		// — but never swallow an error.
		return nil, errors.Join(cascades...)
	}

	p := &Partial{Outputs: pits.Env{}, Exports: map[string]graph.NodeID{}}
	p.Events = append(p.Events, ses.ctrl.extra...)
	for _, w := range ses.workers {
		if w == nil {
			continue
		}
		// A crashed worker's trace survives (it shows what happened up
		// to the crash) but its results died with it: recovery
		// recomputed them elsewhere.
		p.Events = append(p.Events, w.events...)
		if w.dead {
			continue
		}
		for k, v := range w.outputs {
			p.Outputs[k] = v
		}
		for v, task := range w.exports {
			// Collisions between workers of one process are caught
			// here; MergePartials catches the cross-process ones.
			if prev, clash := p.Exports[v]; clash && prev != task {
				return nil, exportCollision(v, prev, task)
			}
			p.Exports[v] = task
		}
		p.Printed = append(p.Printed, w.printed...)
		for range w.printed {
			p.PrintedPE = append(p.PrintedPE, w.pe)
		}
	}
	return p, nil
}
