package exec

import (
	"fmt"
	"math/rand"
	"strconv"
	"strings"
	"sync"

	"repro/internal/graph"
	"repro/internal/machine"
	"repro/internal/pits"
	"repro/internal/sched"
)

// This file is the chaos harness: a deterministic, seeded fault plan
// the runner consults while executing, so every robustness test (and
// the -faults CLI flag) can crash processors and mangle messages at
// exactly reproducible points.

// FaultKind classifies an injected fault.
type FaultKind int

// Fault kinds.
const (
	// FaultCrash kills a processor just before it executes its Slot-th
	// task (counting every task the worker runs, across recoveries).
	FaultCrash FaultKind = iota
	// FaultDrop loses a scheduled message in transit.
	FaultDrop
	// FaultDup delivers a scheduled message twice.
	FaultDup
	// FaultDelay holds a scheduled message back by Delay.
	FaultDelay
	// FaultCorrupt flips the payload of a scheduled message in transit
	// (the checksum still describes the original, so the receiver can
	// tell).
	FaultCorrupt
)

// String names the fault kind.
func (k FaultKind) String() string {
	switch k {
	case FaultCrash:
		return "crash"
	case FaultDrop:
		return "drop"
	case FaultDup:
		return "dup"
	case FaultDelay:
		return "delay"
	case FaultCorrupt:
		return "corrupt"
	default:
		return fmt.Sprintf("fault(%d)", int(k))
	}
}

// Fault is one injected fault. Crash faults use PE and Slot; message
// faults use From/To/Var (matching the schedule's Msg records), Count
// (how many matching sends to hit; 0 means 1) and, for delays, Delay.
type Fault struct {
	Kind  FaultKind
	PE    int
	Slot  int
	From  graph.NodeID
	To    graph.NodeID
	Var   string
	Delay machine.Time
	Count int
}

// String renders the fault in the -faults spec grammar.
func (f Fault) String() string {
	switch f.Kind {
	case FaultCrash:
		return fmt.Sprintf("crash:%d@%d", f.PE, f.Slot)
	case FaultDelay:
		return fmt.Sprintf("delay:%s->%s:%s@%d", f.From, f.To, f.Var, int64(f.Delay))
	default:
		s := fmt.Sprintf("%s:%s->%s:%s", f.Kind, f.From, f.To, f.Var)
		if f.Count > 1 {
			s += fmt.Sprintf("@%d", f.Count)
		}
		return s
	}
}

// FaultPlan is a deterministic list of faults to inject during a run.
type FaultPlan struct {
	Faults []Fault
}

// String renders the plan in the -faults spec grammar.
func (p *FaultPlan) String() string {
	parts := make([]string, len(p.Faults))
	for i, f := range p.Faults {
		parts[i] = f.String()
	}
	return strings.Join(parts, ",")
}

// ParseFaults parses a comma-separated fault spec:
//
//	crash:PE@SLOT              kill processor PE before its SLOT-th task
//	drop:FROM->TO:VAR[@N]      lose the message (the first N matches)
//	dup:FROM->TO:VAR[@N]       deliver the message twice
//	corrupt:FROM->TO:VAR[@N]   flip the payload in transit
//	delay:FROM->TO:VAR@USEC    hold the message back by USEC microseconds
func ParseFaults(spec string) (*FaultPlan, error) {
	plan := &FaultPlan{}
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		kindStr, rest, ok := strings.Cut(part, ":")
		if !ok {
			return nil, fmt.Errorf("fault %q: want kind:args", part)
		}
		var kind FaultKind
		switch kindStr {
		case "crash":
			kind = FaultCrash
		case "drop":
			kind = FaultDrop
		case "dup":
			kind = FaultDup
		case "delay":
			kind = FaultDelay
		case "corrupt":
			kind = FaultCorrupt
		default:
			return nil, fmt.Errorf("fault %q: unknown kind %q", part, kindStr)
		}
		if kind == FaultCrash {
			var pe, slot int
			if n, err := fmt.Sscanf(rest, "%d@%d", &pe, &slot); n != 2 || err != nil {
				return nil, fmt.Errorf("fault %q: want crash:PE@SLOT", part)
			}
			if pe < 0 || slot < 0 {
				return nil, fmt.Errorf("fault %q: negative PE or slot", part)
			}
			plan.Faults = append(plan.Faults, Fault{Kind: FaultCrash, PE: pe, Slot: slot})
			continue
		}
		edge, arg := rest, ""
		if kind == FaultDelay {
			var ok bool
			if edge, arg, ok = cutLast(rest, "@"); !ok || arg == "" {
				return nil, fmt.Errorf("fault %q: want delay:FROM->TO:VAR@USEC", part)
			}
		} else if e, a, ok := cutLast(rest, "@"); ok {
			edge, arg = e, a
		}
		from, rest2, ok := strings.Cut(edge, "->")
		if !ok {
			return nil, fmt.Errorf("fault %q: want FROM->TO:VAR", part)
		}
		to, v, ok := strings.Cut(rest2, ":")
		// Trim the fields (the spec itself is trimmed, so edge whitespace
		// would not survive a re-render) and require all three non-empty.
		from, to, v = strings.TrimSpace(from), strings.TrimSpace(to), strings.TrimSpace(v)
		if !ok || from == "" || to == "" || v == "" {
			return nil, fmt.Errorf("fault %q: want FROM->TO:VAR", part)
		}
		// "@" is reserved for the count/delay suffix; a task or variable
		// name containing it would render to an unparseable spec.
		if strings.ContainsRune(from+to+v, '@') {
			return nil, fmt.Errorf("fault %q: \"@\" not allowed in FROM/TO/VAR", part)
		}
		f := Fault{Kind: kind, From: graph.NodeID(from), To: graph.NodeID(to), Var: v, Count: 1}
		if arg != "" {
			n, err := strconv.ParseInt(arg, 10, 64)
			if err != nil || n <= 0 {
				return nil, fmt.Errorf("fault %q: bad count/delay %q", part, arg)
			}
			if kind == FaultDelay {
				f.Delay = machine.Time(n)
			} else {
				f.Count = int(n)
			}
		}
		plan.Faults = append(plan.Faults, f)
	}
	if len(plan.Faults) == 0 {
		return nil, fmt.Errorf("fault spec %q: no faults", spec)
	}
	return plan, nil
}

// cutLast cuts s around the last occurrence of sep.
func cutLast(s, sep string) (before, after string, found bool) {
	i := strings.LastIndex(s, sep)
	if i < 0 {
		return s, "", false
	}
	return s[:i], s[i+len(sep):], true
}

// RandomFaults draws a seeded fault plan for the schedule: one
// processor crash at a random slot plus one dropped cross-processor
// message. The same seed on the same schedule yields the same plan.
// Returns nil if the schedule offers nothing to break (single PE used
// and no messages).
func RandomFaults(seed int64, s *sched.Schedule) *FaultPlan {
	rng := rand.New(rand.NewSource(seed))
	plan := &FaultPlan{}
	// Crash a processor that has work, chosen among the busy ones; never
	// crash the only busy processor of a 1-PE machine (nothing could
	// recover).
	if s.Machine.NumPE() > 1 {
		var busy []int
		for pe := 0; pe < s.Machine.NumPE(); pe++ {
			if len(s.PESlots(pe)) > 0 {
				busy = append(busy, pe)
			}
		}
		if len(busy) > 0 {
			pe := busy[rng.Intn(len(busy))]
			plan.Faults = append(plan.Faults, Fault{
				Kind: FaultCrash, PE: pe, Slot: rng.Intn(len(s.PESlots(pe))),
			})
		}
	}
	var cross []sched.Msg
	for _, m := range s.Msgs {
		if m.FromPE != m.ToPE {
			cross = append(cross, m)
		}
	}
	if len(cross) > 0 {
		m := cross[rng.Intn(len(cross))]
		plan.Faults = append(plan.Faults, Fault{
			Kind: FaultDrop, From: m.From, To: m.To, Var: m.Var, Count: 1,
		})
	}
	if len(plan.Faults) == 0 {
		return nil
	}
	return plan
}

// faultState is the runtime view of a fault plan: remaining application
// counts guarded by a mutex (senders on different processors consult it
// concurrently).
type faultState struct {
	mu        sync.Mutex
	crashes   map[int]int // pe -> executed-task index to die at
	msgFaults map[msgKey][]*msgFault
	checksums bool // any corrupt fault present
}

type msgFault struct {
	kind      FaultKind
	delay     machine.Time
	remaining int
}

// newFaultState compiles a plan; nil plans yield a state that never
// fires.
func newFaultState(p *FaultPlan) *faultState {
	st := &faultState{crashes: map[int]int{}, msgFaults: map[msgKey][]*msgFault{}}
	if p == nil {
		return st
	}
	for _, f := range p.Faults {
		if f.Kind == FaultCrash {
			st.crashes[f.PE] = f.Slot
			continue
		}
		n := f.Count
		if n <= 0 {
			n = 1
		}
		k := msgKey{f.From, f.To, f.Var}
		st.msgFaults[k] = append(st.msgFaults[k], &msgFault{kind: f.Kind, delay: f.Delay, remaining: n})
		if f.Kind == FaultCorrupt {
			st.checksums = true
		}
	}
	return st
}

// crashNow reports whether processor pe must crash before executing its
// executed-th task.
func (st *faultState) crashNow(pe, executed int) bool {
	st.mu.Lock()
	defer st.mu.Unlock()
	slot, ok := st.crashes[pe]
	if ok && executed == slot {
		delete(st.crashes, pe)
		return true
	}
	return false
}

// onSend returns the faults to apply to this transmission of k, in
// plan order, consuming their counts.
func (st *faultState) onSend(k msgKey) []FaultKind {
	if len(st.msgFaults) == 0 {
		return nil
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	var kinds []FaultKind
	for _, f := range st.msgFaults[k] {
		if f.remaining > 0 {
			f.remaining--
			kinds = append(kinds, f.kind)
		}
	}
	return kinds
}

// delayOf returns the configured delay for k's delay fault (0 if none).
func (st *faultState) delayOf(k msgKey) machine.Time {
	st.mu.Lock()
	defer st.mu.Unlock()
	for _, f := range st.msgFaults[k] {
		if f.kind == FaultDelay {
			return f.delay
		}
	}
	return 0
}

// corruptValue returns a value that is definitely different from v (the
// transit bit-flip FaultCorrupt simulates).
func corruptValue(v pits.Value) pits.Value {
	switch x := v.(type) {
	case pits.Num:
		return pits.Num(float64(x) + 1)
	case pits.BoolV:
		return pits.BoolV(!bool(x))
	case pits.StrV:
		return pits.StrV(string(x) + "\x00")
	case pits.Vec:
		nv := append(pits.Vec(nil), x...)
		if len(nv) == 0 {
			return pits.Vec{1}
		}
		nv[0]++
		return nv
	default:
		return pits.StrV("corrupted")
	}
}
