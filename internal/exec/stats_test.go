package exec

import (
	"sync"
	"testing"

	"repro/internal/pits"
	"repro/internal/sched"
	"repro/internal/trace"
)

// TestStatsConcurrentIncrements hammers every counter from many
// goroutines. Under -race this pins the atomicity of the Stats type:
// replacing any atomic.Int64 with a plain int64 fails the race build,
// and lost updates fail the totals below on any build.
func TestStatsConcurrentIncrements(t *testing.T) {
	const goroutines = 16
	const perG = 1000
	var s Stats
	var wg sync.WaitGroup
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < perG; j++ {
				s.TasksRun.Add(1)
				s.MsgsSent.Add(1)
				s.MsgsRecv.Add(1)
				s.Retries.Add(1)
				s.FaultsInjected.Add(1)
				s.Recoveries.Add(1)
				_ = s.Snapshot() // concurrent reads must be safe too
			}
		}()
	}
	wg.Wait()
	snap := s.Snapshot()
	want := int64(goroutines * perG)
	for name, got := range map[string]int64{
		"TasksRun": snap.TasksRun, "MsgsSent": snap.MsgsSent, "MsgsRecv": snap.MsgsRecv,
		"Retries": snap.Retries, "FaultsInjected": snap.FaultsInjected, "Recoveries": snap.Recoveries,
	} {
		if got != want {
			t.Errorf("%s = %d, want %d", name, got, want)
		}
	}
}

// TestSessionStatsMatchTrace runs a real schedule and checks the
// session counters agree with what the trace records: counters and
// events are incremented at the same sites, so a drift means one of
// them lies.
func TestSessionStatsMatchTrace(t *testing.T) {
	flat := diamondDesign(t)
	inputs := pits.Env{"x0": pits.Num(3)}
	m := testMachine(t, "hypercube:2", params())
	sc, err := sched.ETF{}.Schedule(flat.Graph, m)
	if err != nil {
		t.Fatal(err)
	}
	r := &Runner{Inputs: inputs, VirtualTime: true}
	ses, err := r.StartSession(sc, flat, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	p, err := ses.Wait()
	if err != nil {
		t.Fatal(err)
	}
	snap := ses.Stats()
	tr := &trace.Trace{Events: p.Events}
	counts := map[trace.Kind]int64{}
	for _, e := range tr.Events {
		counts[e.Kind]++
	}
	if snap.TasksRun != counts[trace.TaskStart] {
		t.Errorf("TasksRun = %d, trace has %d task starts", snap.TasksRun, counts[trace.TaskStart])
	}
	if snap.MsgsSent != counts[trace.MsgSend] {
		t.Errorf("MsgsSent = %d, trace has %d sends", snap.MsgsSent, counts[trace.MsgSend])
	}
	if snap.MsgsRecv != counts[trace.MsgRecv] {
		t.Errorf("MsgsRecv = %d, trace has %d receives", snap.MsgsRecv, counts[trace.MsgRecv])
	}
	if snap.FaultsInjected != 0 || snap.Recoveries != 0 {
		t.Errorf("fault-free run recorded faults=%d recoveries=%d", snap.FaultsInjected, snap.Recoveries)
	}
	if snap.TasksRun == 0 || snap.MsgsSent == 0 {
		t.Error("counters never moved on a real run")
	}
}
