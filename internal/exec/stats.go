package exec

import "sync/atomic"

// Stats counts runtime events of one execution session. Every counter
// is an atomic: worker goroutines, the retry goroutines and the
// recovery coordinator all increment concurrently, so plain int64
// fields would be a data race (the regression test in stats_test.go
// pins this under the race detector).
type Stats struct {
	// TasksRun counts executed task copies (primaries and duplicates,
	// across recovery eras).
	TasksRun atomic.Int64
	// MsgsSent counts logical message transmissions (one per scheduled
	// delivery, regardless of injected drops or duplicate copies).
	MsgsSent atomic.Int64
	// MsgsRecv counts messages consumed by a task (duplicate and
	// stale-era copies are absorbed without counting).
	MsgsRecv atomic.Int64
	// Retries counts retransmissions by the reliable transport.
	Retries atomic.Int64
	// FaultsInjected counts faults the chaos harness applied.
	FaultsInjected atomic.Int64
	// Recoveries counts completed crash-recovery replans.
	Recoveries atomic.Int64
	// RemoteSends counts deliveries handed to the remote plane
	// (distributed runs only; includes injected duplicate copies).
	RemoteSends atomic.Int64
	// RemoteFlushes counts explicit flushes of a coalescing remote
	// plane (slot boundaries, barriers, retries). The ratio
	// RemoteSends/RemoteFlushes is the achieved batching factor.
	RemoteFlushes atomic.Int64
}

// StatsSnapshot is a plain-value copy of Stats at one instant.
type StatsSnapshot struct {
	TasksRun       int64
	MsgsSent       int64
	MsgsRecv       int64
	Retries        int64
	FaultsInjected int64
	Recoveries     int64
	RemoteSends    int64
	RemoteFlushes  int64
}

// Snapshot reads every counter atomically (individually; the snapshot
// as a whole is not a consistent cut, which is fine for reporting).
func (s *Stats) Snapshot() StatsSnapshot {
	return StatsSnapshot{
		TasksRun:       s.TasksRun.Load(),
		MsgsSent:       s.MsgsSent.Load(),
		MsgsRecv:       s.MsgsRecv.Load(),
		Retries:        s.Retries.Load(),
		FaultsInjected: s.FaultsInjected.Load(),
		Recoveries:     s.Recoveries.Load(),
		RemoteSends:    s.RemoteSends.Load(),
		RemoteFlushes:  s.RemoteFlushes.Load(),
	}
}
