package gantt

import (
	"strings"
	"testing"

	"repro/internal/exec"
	"repro/internal/trace"
)

func TestFramesShowRunningTasksAndMessages(t *testing.T) {
	tr := &trace.Trace{Label: "anim"}
	tr.Add(trace.Event{Kind: trace.TaskStart, At: 0, Task: "a", PE: 0})
	tr.Add(trace.Event{Kind: trace.TaskEnd, At: 50, Task: "a", PE: 0})
	tr.Add(trace.Event{Kind: trace.MsgSend, At: 50, Task: "a", PE: 0, Var: "d", Peer: 1})
	tr.Add(trace.Event{Kind: trace.MsgRecv, At: 70, Task: "a", PE: 1, Var: "d", Peer: 0})
	tr.Add(trace.Event{Kind: trace.TaskStart, At: 70, Task: "b", PE: 1})
	tr.Add(trace.Event{Kind: trace.TaskEnd, At: 100, Task: "b", PE: 1})

	frames, err := Frames(tr, 2, 5) // t = 0, 25, 50, 75, 100
	if err != nil {
		t.Fatal(err)
	}
	if len(frames) != 5 {
		t.Fatalf("frames = %d", len(frames))
	}
	if !strings.Contains(frames[0], "RUN a") || !strings.Contains(frames[0], "PE1  idle") {
		t.Errorf("frame 0:\n%s", frames[0])
	}
	// t=50: a finished, message in flight [50,70).
	if !strings.Contains(frames[2], `msg  "d" PE0 => PE1`) {
		t.Errorf("frame 2 missing message:\n%s", frames[2])
	}
	if !strings.Contains(frames[3], "RUN b") {
		t.Errorf("frame 3:\n%s", frames[3])
	}
	if !strings.Contains(frames[4], "done 2/2") {
		t.Errorf("final frame:\n%s", frames[4])
	}
}

func TestFramesEdgeCases(t *testing.T) {
	empty := &trace.Trace{}
	frames, err := Frames(empty, 2, 4)
	if err != nil || len(frames) != 1 || !strings.Contains(frames[0], "empty") {
		t.Errorf("empty trace: %v %v", frames, err)
	}
	bad := &trace.Trace{}
	bad.Add(trace.Event{Kind: trace.TaskEnd, At: 5, Task: "x", PE: 0})
	if _, err := Frames(bad, 1, 3); err == nil {
		t.Error("broken trace accepted")
	}
}

func TestAnimationOfSimulatedSchedule(t *testing.T) {
	s := demoSchedule(t)
	tr, err := exec.Simulate(s)
	if err != nil {
		t.Fatal(err)
	}
	reel, err := Animation(tr, s.Machine.NumPE(), 6)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"animation of simulated:etf", "frame 1", "frame 6", "done", "#"} {
		if !strings.Contains(reel, want) {
			t.Errorf("reel missing %q", want)
		}
	}
	// The final frame must report all tasks done (ForkJoin(3) has 5).
	if !strings.Contains(reel, "done 5/5") {
		t.Errorf("final completion count missing:\n%s", reel)
	}
}

func TestProgressBar(t *testing.T) {
	if got := progressBar(0, 100, 10); got != "[----------]" {
		t.Errorf("empty bar = %q", got)
	}
	if got := progressBar(100, 100, 10); got != "[##########]" {
		t.Errorf("full bar = %q", got)
	}
	if got := progressBar(50, 100, 10); got != "[#####-----]" {
		t.Errorf("half bar = %q", got)
	}
	if got := progressBar(0, 0, 4); got != "[----]" {
		t.Errorf("zero total = %q", got)
	}
}
