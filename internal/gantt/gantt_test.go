package gantt

import (
	"strings"
	"testing"

	"repro/internal/graph"
	"repro/internal/machine"
	"repro/internal/sched"
	"repro/internal/trace"
)

func demoSchedule(t *testing.T) *sched.Schedule {
	t.Helper()
	g := graph.ForkJoin(3, 20, 2)
	topo, err := machine.Hypercube(2)
	if err != nil {
		t.Fatal(err)
	}
	m, err := machine.New("hc2", topo, machine.Params{ProcSpeed: 1, TaskStartup: 1, MsgStartup: 2, WordTime: 1})
	if err != nil {
		t.Fatal(err)
	}
	s, err := sched.ETF{}.Schedule(g, m)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestChartShowsEveryPEAndHeader(t *testing.T) {
	s := demoSchedule(t)
	out := Chart(s, 60)
	for _, want := range []string{"etf on hc2", "makespan", "PE0", "PE1", "PE2", "PE3", "|"} {
		if !strings.Contains(out, want) {
			t.Errorf("chart missing %q:\n%s", want, out)
		}
	}
	// Task labels appear somewhere in the bars.
	if !strings.Contains(out, "src") {
		t.Errorf("chart shows no task label:\n%s", out)
	}
}

func TestChartEmptySchedule(t *testing.T) {
	g := graph.New("empty-ish")
	g.MustAddTask("t", "", 0)
	topo, _ := machine.Full(1)
	m, _ := machine.New("m", topo, machine.Params{ProcSpeed: 1})
	s := &sched.Schedule{Graph: g, Machine: m, Algorithm: "none"}
	out := Chart(s, 40)
	if !strings.Contains(out, "empty") {
		t.Errorf("chart = %q", out)
	}
}

func TestChartMinimumWidth(t *testing.T) {
	s := demoSchedule(t)
	out := Chart(s, 1) // clamped to 20
	lines := strings.Split(out, "\n")
	if len(lines) < 5 {
		t.Fatalf("chart too short:\n%s", out)
	}
	for _, l := range lines {
		if strings.HasPrefix(l, "  PE") && len(l) < 20 {
			t.Errorf("row too narrow: %q", l)
		}
	}
}

func TestFromTraceMarksDuplicates(t *testing.T) {
	tr := &trace.Trace{Label: "x"}
	tr.Add(trace.Event{Kind: trace.TaskStart, At: 0, Task: "alpha", PE: 0})
	tr.Add(trace.Event{Kind: trace.TaskEnd, At: 50, Task: "alpha", PE: 0})
	tr.Add(trace.Event{Kind: trace.TaskStart, At: 0, Task: "alpha", PE: 1, Dup: true})
	tr.Add(trace.Event{Kind: trace.TaskEnd, At: 50, Task: "alpha", PE: 1, Dup: true})
	out, err := FromTrace(tr, 2, 40)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "+alpha") {
		t.Errorf("duplicate not marked:\n%s", out)
	}
	// Broken trace propagates the error.
	bad := &trace.Trace{}
	bad.Add(trace.Event{Kind: trace.TaskEnd, At: 1, Task: "x", PE: 0})
	if _, err := FromTrace(bad, 1, 40); err == nil {
		t.Error("broken trace accepted")
	}
}

func TestSpeedupChart(t *testing.T) {
	pts := []sched.SpeedupPoint{
		{PEs: 1, Makespan: 100, Speedup: 1},
		{PEs: 2, Makespan: 60, Speedup: 1.67},
		{PEs: 4, Makespan: 40, Speedup: 2.5},
		{PEs: 8, Makespan: 35, Speedup: 2.86},
	}
	out := Speedup(pts, 10)
	for _, want := range []string{"speedup vs processors", "*", "·", "1 PE", "8 PE", "makespan"} {
		if !strings.Contains(out, want) {
			t.Errorf("speedup chart missing %q:\n%s", want, out)
		}
	}
	if Speedup(nil, 5) != "(no points)\n" {
		t.Error("empty curve not handled")
	}
}

func TestCSVFormats(t *testing.T) {
	s := demoSchedule(t)
	csv := CSV(s)
	lines := strings.Split(strings.TrimSpace(csv), "\n")
	if lines[0] != "task,pe,start_us,finish_us,dup" {
		t.Errorf("header = %q", lines[0])
	}
	if len(lines) != len(s.Slots)+1 {
		t.Errorf("%d rows for %d slots", len(lines)-1, len(s.Slots))
	}
	for _, l := range lines[1:] {
		if strings.Count(l, ",") != 4 {
			t.Errorf("bad row %q", l)
		}
	}
	sc := SpeedupCSV([]sched.SpeedupPoint{{PEs: 2, Makespan: 10, Speedup: 1.5}})
	if !strings.HasPrefix(sc, "pes,makespan_us,speedup\n2,10,1.5") {
		t.Errorf("speedup csv = %q", sc)
	}
}

func TestSVGWellFormedEnough(t *testing.T) {
	s := demoSchedule(t)
	svg := SVG(s)
	if !strings.HasPrefix(svg, "<svg") || !strings.HasSuffix(strings.TrimSpace(svg), "</svg>") {
		t.Fatalf("svg structure:\n%.120s...", svg)
	}
	if strings.Count(svg, "<rect") != len(s.Slots) {
		t.Errorf("%d rects for %d slots", strings.Count(svg, "<rect"), len(s.Slots))
	}
	for _, want := range []string{"PE0", "makespan", "font-family"} {
		if !strings.Contains(svg, want) {
			t.Errorf("svg missing %q", want)
		}
	}
}

func TestSVGMarksDuplicates(t *testing.T) {
	g := graph.Chain(2, 10, 8)
	topo, _ := machine.Full(2)
	m, _ := machine.New("m", topo, machine.Params{ProcSpeed: 1, MsgStartup: 5, WordTime: 1})
	s := &sched.Schedule{Graph: g, Machine: m, Algorithm: "hand",
		Slots: []sched.Slot{
			{Task: "t0", PE: 0, Start: 0, Finish: 10},
			{Task: "t0", PE: 1, Start: 0, Finish: 10, Dup: true},
			{Task: "t1", PE: 1, Start: 10, Finish: 20},
		}}
	svg := SVG(s)
	if !strings.Contains(svg, "stroke-dasharray") {
		t.Error("duplicate slot not dashed in SVG")
	}
}

func TestReportBreaksDownUtilisation(t *testing.T) {
	s := demoSchedule(t)
	out := Report(s)
	for _, want := range []string{"PE   busy", "util", "mean utilisation", "processors engaged", "%"} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
	// Row count: one line per PE plus header, summary and title.
	lines := strings.Count(out, "\n")
	if lines != s.Machine.NumPE()+3 {
		t.Errorf("report has %d lines, want %d:\n%s", lines, s.Machine.NumPE()+3, out)
	}
}
