// Package gantt renders Banger's feedback displays: Gantt charts of
// schedules and traces, and speedup-prediction charts — the textual
// equivalents of the paper's Figure 3.
package gantt

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/machine"
	"repro/internal/sched"
	"repro/internal/trace"
)

// bar holds one rendered interval.
type bar struct {
	label  string
	start  machine.Time
	finish machine.Time
	dup    bool
}

// Chart renders the schedule as an ASCII Gantt chart, one row per
// processor, scaled to the given width in characters (minimum 20).
func Chart(s *sched.Schedule, width int) string {
	rows := map[int][]bar{}
	for pe := 0; pe < s.Machine.NumPE(); pe++ {
		for _, sl := range s.PESlots(pe) {
			rows[pe] = append(rows[pe], bar{label: string(sl.Task), start: sl.Start, finish: sl.Finish, dup: sl.Dup})
		}
	}
	header := fmt.Sprintf("%s on %s: makespan %v, speedup %.2f",
		s.Algorithm, s.Machine.Name, s.Makespan(), s.Speedup())
	return render(header, rows, s.Machine.NumPE(), s.Makespan(), width)
}

// FromTrace renders a trace (simulated or real) as a Gantt chart.
func FromTrace(tr *trace.Trace, numPE, width int) (string, error) {
	spans, err := tr.Spans()
	if err != nil {
		return "", err
	}
	rows := map[int][]bar{}
	for pe, ss := range spans {
		for _, sp := range ss {
			rows[pe] = append(rows[pe], bar{label: string(sp.Task), start: sp.Start, finish: sp.Finish, dup: sp.Dup})
		}
	}
	header := fmt.Sprintf("%s: makespan %v", tr.Label, tr.Makespan())
	return render(header, rows, numPE, tr.Makespan(), width), nil
}

// render lays out bars on a character grid. Bars show as [label####];
// duplicates as [+label###]; idle time as '.'.
func render(header string, rows map[int][]bar, numPE int, makespan machine.Time, width int) string {
	if width < 20 {
		width = 20
	}
	var b strings.Builder
	b.WriteString(header)
	b.WriteByte('\n')
	if makespan == 0 {
		b.WriteString("  (empty schedule)\n")
		return b.String()
	}
	scale := func(t machine.Time) int {
		c := int(int64(t) * int64(width) / int64(makespan))
		if c > width {
			c = width
		}
		return c
	}
	for pe := 0; pe < numPE; pe++ {
		line := make([]rune, width)
		for i := range line {
			line[i] = '.'
		}
		bars := rows[pe]
		sort.Slice(bars, func(i, j int) bool { return bars[i].start < bars[j].start })
		for _, bar := range bars {
			lo, hi := scale(bar.start), scale(bar.finish)
			if hi <= lo {
				hi = lo + 1
				if hi > width {
					lo, hi = width-1, width
				}
			}
			label := bar.label
			if bar.dup {
				label = "+" + label
			}
			// Fill the cell in place: "[label###]" truncated to the
			// cell, or bare '#'s when too narrow for brackets.
			cell := hi - lo
			if cell < 3 {
				for i := lo; i < hi; i++ {
					line[i] = '#'
				}
				continue
			}
			line[lo], line[hi-1] = '[', ']'
			lr := []rune(label)
			for i := 1; i < cell-1; i++ {
				if i-1 < len(lr) {
					line[lo+i] = lr[i-1]
				} else {
					line[lo+i] = '#'
				}
			}
		}
		fmt.Fprintf(&b, "  PE%-2d |%s|\n", pe, string(line))
	}
	// Time axis.
	fmt.Fprintf(&b, "       %s\n", axis(makespan, width))
	return b.String()
}

// axis renders a tick ruler 0..makespan.
func axis(makespan machine.Time, width int) string {
	line := []rune(strings.Repeat("-", width+2))
	line[0], line[len(line)-1] = '0', '>'
	mid := fmt.Sprintf("%v", makespan/2)
	end := fmt.Sprintf("%v", makespan)
	copy(line[width/2:], []rune(mid))
	if width-len(end) > 0 {
		copy(line[width-len(end):], []rune(end))
	}
	return string(line)
}

// Speedup renders the paper's speedup-prediction chart (Figure 3,
// right): predicted speedup versus processor count, with the ideal
// linear speedup marked by '·' for reference.
func Speedup(pts []sched.SpeedupPoint, height int) string {
	if len(pts) == 0 {
		return "(no points)\n"
	}
	if height < 4 {
		height = 4
	}
	maxY := 1.0
	for _, p := range pts {
		if p.Speedup > maxY {
			maxY = p.Speedup
		}
		if float64(p.PEs) > maxY {
			maxY = float64(p.PEs)
		}
	}
	var b strings.Builder
	b.WriteString("speedup vs processors ('*' predicted, '·' ideal)\n")
	colW := 7
	for row := height; row >= 1; row-- {
		yLo := maxY * float64(row-1) / float64(height)
		yHi := maxY * float64(row) / float64(height)
		fmt.Fprintf(&b, "%6.2f |", yHi)
		for _, p := range pts {
			cell := strings.Repeat(" ", colW)
			ideal := float64(p.PEs)
			mark := ' '
			if ideal > yLo && ideal <= yHi {
				mark = '·'
			}
			if p.Speedup > yLo && p.Speedup <= yHi {
				mark = '*'
			}
			cell = strings.Repeat(" ", colW/2) + string(mark) + strings.Repeat(" ", colW-colW/2-1)
			b.WriteString(cell)
		}
		b.WriteByte('\n')
	}
	b.WriteString("       +")
	b.WriteString(strings.Repeat("-", colW*len(pts)))
	b.WriteByte('\n')
	b.WriteString("        ")
	for _, p := range pts {
		fmt.Fprintf(&b, "%-*s", colW, fmt.Sprintf("%d PE", p.PEs))
	}
	b.WriteByte('\n')
	for _, p := range pts {
		fmt.Fprintf(&b, "        %d PEs: makespan %-8v speedup %.2f\n", p.PEs, p.Makespan, p.Speedup)
	}
	return b.String()
}

// CSV exports the schedule's slots as comma-separated rows with a
// header, for external plotting.
func CSV(s *sched.Schedule) string {
	var b strings.Builder
	b.WriteString("task,pe,start_us,finish_us,dup\n")
	slots := append([]sched.Slot(nil), s.Slots...)
	sort.Slice(slots, func(i, j int) bool {
		if slots[i].Start != slots[j].Start {
			return slots[i].Start < slots[j].Start
		}
		return slots[i].Task < slots[j].Task
	})
	for _, sl := range slots {
		fmt.Fprintf(&b, "%s,%d,%d,%d,%t\n", sl.Task, sl.PE, int64(sl.Start), int64(sl.Finish), sl.Dup)
	}
	return b.String()
}

// SpeedupCSV exports a speedup curve as CSV.
func SpeedupCSV(pts []sched.SpeedupPoint) string {
	var b strings.Builder
	b.WriteString("pes,makespan_us,speedup\n")
	for _, p := range pts {
		fmt.Fprintf(&b, "%d,%d,%f\n", p.PEs, int64(p.Makespan), p.Speedup)
	}
	return b.String()
}

// svgPalette cycles bar fill colours per task hash.
var svgPalette = []string{"#4e79a7", "#f28e2b", "#e15759", "#76b7b2", "#59a14f", "#edc948", "#b07aa1", "#ff9da7"}

// SVG renders the schedule as a standalone SVG Gantt chart.
func SVG(s *sched.Schedule) string {
	const (
		rowH    = 28
		leftPad = 60
		topPad  = 40
		pxWidth = 800
	)
	mk := s.Makespan()
	if mk == 0 {
		mk = 1
	}
	n := s.Machine.NumPE()
	h := topPad + n*rowH + 30
	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d">`+"\n", pxWidth+leftPad+20, h)
	fmt.Fprintf(&b, `<text x="10" y="20" font-family="monospace" font-size="14">%s on %s — makespan %v</text>`+"\n",
		s.Algorithm, s.Machine.Name, s.Makespan())
	x := func(t machine.Time) float64 { return float64(leftPad) + float64(t)/float64(mk)*pxWidth }
	colorOf := func(task string) string {
		sum := 0
		for _, c := range task {
			sum += int(c)
		}
		return svgPalette[sum%len(svgPalette)]
	}
	for pe := 0; pe < n; pe++ {
		y := topPad + pe*rowH
		fmt.Fprintf(&b, `<text x="10" y="%d" font-family="monospace" font-size="12">PE%d</text>`+"\n", y+rowH/2+4, pe)
		for _, sl := range s.PESlots(pe) {
			w := x(sl.Finish) - x(sl.Start)
			if w < 1 {
				w = 1
			}
			stroke := "none"
			dash := ""
			if sl.Dup {
				stroke = "black"
				dash = ` stroke-dasharray="3,2"`
			}
			fmt.Fprintf(&b, `<rect x="%.1f" y="%d" width="%.1f" height="%d" fill="%s" stroke="%s"%s/>`+"\n",
				x(sl.Start), y+2, w, rowH-6, colorOf(string(sl.Task)), stroke, dash)
			fmt.Fprintf(&b, `<text x="%.1f" y="%d" font-family="monospace" font-size="10">%s</text>`+"\n",
				x(sl.Start)+2, y+rowH/2+3, sl.Task)
		}
	}
	fmt.Fprintf(&b, `<text x="%d" y="%d" font-family="monospace" font-size="11">0</text>`+"\n", leftPad, h-8)
	fmt.Fprintf(&b, `<text x="%d" y="%d" font-family="monospace" font-size="11">%v</text>`+"\n", leftPad+pxWidth-30, h-8, s.Makespan())
	b.WriteString("</svg>\n")
	return b.String()
}
