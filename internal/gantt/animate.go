package gantt

import (
	"fmt"
	"strings"

	"repro/internal/machine"
	"repro/internal/trace"
)

// Frames renders an execution trace as a sequence of animation frames —
// the paper's fourth principle calls for "graphical displays and
// animations" as instant feedback, and this is its terminal form. Each
// frame is a snapshot at one instant: what every processor is doing,
// which messages are in flight, and overall progress.
func Frames(tr *trace.Trace, numPE, steps int) ([]string, error) {
	spans, err := tr.Spans()
	if err != nil {
		return nil, err
	}
	if steps < 2 {
		steps = 2
	}
	makespan := tr.Makespan()
	if makespan == 0 {
		return []string{"(empty trace)\n"}, nil
	}
	// Message flight intervals.
	type flight struct {
		from, to   int
		v          string
		send, recv machine.Time
	}
	var flights []flight
	sends := map[string]trace.Event{}
	for _, e := range tr.Events {
		key := fmt.Sprintf("%s/%s/%d/%d", e.Task, e.Var, e.PE, e.Peer)
		switch e.Kind {
		case trace.MsgSend:
			sends[key] = e
		case trace.MsgRecv:
			// The receive's mirror key swaps PE/Peer.
			mirror := fmt.Sprintf("%s/%s/%d/%d", e.Task, e.Var, e.Peer, e.PE)
			if s, ok := sends[mirror]; ok {
				flights = append(flights, flight{from: s.PE, to: e.PE, v: e.Var, send: s.At, recv: e.At})
			}
		}
	}
	totalTasks := 0
	for _, ss := range spans {
		totalTasks += len(ss)
	}

	var frames []string
	for step := 0; step < steps; step++ {
		at := machine.Time(int64(makespan) * int64(step) / int64(steps-1))
		var b strings.Builder
		fmt.Fprintf(&b, "t = %-8v %s\n", at, progressBar(at, makespan, 32))
		done := 0
		for pe := 0; pe < numPE; pe++ {
			state := "idle"
			for _, sp := range spans[pe] {
				if sp.Finish <= at {
					done++
				}
				if sp.Start <= at && at < sp.Finish {
					state = "RUN " + string(sp.Task)
					if sp.Dup {
						state += " (dup)"
					}
				}
			}
			fmt.Fprintf(&b, "  PE%-2d %s\n", pe, state)
		}
		inFlight := 0
		for _, f := range flights {
			if f.send <= at && at < f.recv {
				fmt.Fprintf(&b, "  msg  %q PE%d => PE%d\n", f.v, f.from, f.to)
				inFlight++
			}
		}
		fmt.Fprintf(&b, "  done %d/%d tasks, %d message(s) in flight\n", done, totalTasks, inFlight)
		frames = append(frames, b.String())
	}
	return frames, nil
}

// progressBar renders [#####-----] completion.
func progressBar(at, total machine.Time, width int) string {
	if total == 0 {
		return "[" + strings.Repeat("-", width) + "]"
	}
	fill := int(int64(at) * int64(width) / int64(total))
	if fill > width {
		fill = width
	}
	return "[" + strings.Repeat("#", fill) + strings.Repeat("-", width-fill) + "]"
}

// Animation joins frames with separators into one printable reel.
func Animation(tr *trace.Trace, numPE, steps int) (string, error) {
	frames, err := Frames(tr, numPE, steps)
	if err != nil {
		return "", err
	}
	var b strings.Builder
	fmt.Fprintf(&b, "animation of %s (%d frames)\n", tr.Label, len(frames))
	for i, f := range frames {
		fmt.Fprintf(&b, "--- frame %d ---\n%s", i+1, f)
	}
	return b.String(), nil
}
