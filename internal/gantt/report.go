package gantt

import (
	"fmt"
	"strings"

	"repro/internal/machine"
	"repro/internal/sched"
)

// Report renders a per-processor utilisation table for a schedule:
// busy and idle time, task counts (with duplicates separated), and the
// message traffic each processor originates — the numbers behind the
// Gantt picture.
func Report(s *sched.Schedule) string {
	mk := s.Makespan()
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", s.String())
	b.WriteString("  PE   busy      idle      util   tasks  dups  msgs-out  words-out\n")
	var totBusy machine.Time
	for pe := 0; pe < s.Machine.NumPE(); pe++ {
		busy := s.BusyTime(pe)
		totBusy += busy
		idle := mk - busy
		util := 0.0
		if mk > 0 {
			util = float64(busy) / float64(mk)
		}
		tasks, dups := 0, 0
		for _, sl := range s.PESlots(pe) {
			if sl.Dup {
				dups++
			} else {
				tasks++
			}
		}
		msgs, words := s.OutTraffic(pe)
		fmt.Fprintf(&b, "  %-4d %-9v %-9v %5.1f%%  %-6d %-5d %-9d %d\n",
			pe, busy, idle, 100*util, tasks, dups, msgs, words)
	}
	if mk > 0 && s.Machine.NumPE() > 0 {
		fmt.Fprintf(&b, "  mean utilisation %.1f%%, %d processors engaged\n",
			100*float64(totBusy)/(float64(mk)*float64(s.Machine.NumPE())), s.UsedPEs())
	}
	return b.String()
}
