package pits

import (
	"math"
	"math/rand"
	"strings"
)

// Interp executes PITS routines. An Interp is single-goroutine but
// cheap; the parallel runner creates one per task execution.
//
// Besides producing values, the interpreter counts abstract operations
// (the currency of graph.Node.Work and machine.Params.ProcSpeed) so a
// trial run measures how expensive a task is, and it enforces a step
// limit so "instant feedback" trial runs cannot hang on a runaway loop.
type Interp struct {
	// MaxSteps bounds statement executions; <= 0 means the default of
	// ten million.
	MaxSteps int64
	// Seed seeds the rand() builtin; runs with equal seeds and inputs
	// are bit-identical.
	Seed int64

	steps    int64
	ops      int64
	out      []string
	rng      *rand.Rand
	fns      map[string]Builtin
	formulas map[string]*Formula
	depth    int // formula call depth, to stop runaway recursion
}

// maxFormulaDepth bounds nested formula calls; the checker forbids
// self-reference, but depth is the runtime backstop.
const maxFormulaDepth = 64

// NewInterp returns an interpreter with default limits and seed 1.
func NewInterp() *Interp { return &Interp{Seed: 1} }

const defaultMaxSteps = 10_000_000

// Ops returns the abstract operations counted by the last Run.
func (in *Interp) Ops() int64 { return in.ops }

// Output returns the lines printed by the last Run.
func (in *Interp) Output() []string { return in.out }

// Run executes the program against env. Input variables are read from
// env; every assignment writes back into env, so after Run the caller
// reads results directly from env. Counters and output are reset at the
// start of each Run.
func (in *Interp) Run(p *Program, env Env) error {
	in.steps, in.ops, in.out = 0, 0, nil
	in.formulas = map[string]*Formula{}
	in.depth = 0
	in.rng = rand.New(rand.NewSource(in.Seed))
	if in.fns == nil {
		in.fns = builtins()
		// rand is stateful, so it is bound per-interpreter here rather
		// than in the shared table.
		in.fns["rand"] = Builtin{Name: "rand", Arity: 0, Cost: 4,
			Help: "uniform random in [0,1)",
			fn: func(line int, args []Value) (Value, error) {
				return Num(in.rng.Float64()), nil
			}}
	}
	if env == nil {
		env = Env{}
	}
	return in.execBlock(p.Stmts, env)
}

func (in *Interp) step(line int) error {
	in.steps++
	max := in.MaxSteps
	if max <= 0 {
		max = defaultMaxSteps
	}
	if in.steps > max {
		return rtErr(line, "step limit exceeded (%d statements); infinite loop?", max)
	}
	return nil
}

func (in *Interp) execBlock(stmts []Stmt, env Env) error {
	for _, s := range stmts {
		if err := in.exec(s, env); err != nil {
			return err
		}
	}
	return nil
}

func (in *Interp) exec(s Stmt, env Env) error {
	switch st := s.(type) {
	case *Assign:
		if err := in.step(st.Line); err != nil {
			return err
		}
		val, err := in.eval(st.Value, env)
		if err != nil {
			return err
		}
		in.ops++
		if st.Index == nil {
			// Vectors are stored by copy on plain assignment so two
			// variables never alias.
			if v, ok := val.(Vec); ok {
				val = append(Vec(nil), v...)
			}
			env[st.Name] = val
			return nil
		}
		iv, err := in.eval(st.Index, env)
		if err != nil {
			return err
		}
		idx, err := toIndex(st.Line, iv)
		if err != nil {
			return err
		}
		cur, ok := env[st.Name]
		if !ok {
			return rtErr(st.Line, "undefined vector %q", st.Name)
		}
		v, ok := cur.(Vec)
		if !ok {
			return rtErr(st.Line, "%q is a %s, not a vector", st.Name, cur.TypeName())
		}
		if idx < 1 || idx > len(v) {
			return rtErr(st.Line, "index %d out of range 1..%d for %q", idx, len(v), st.Name)
		}
		x, ok := val.(Num)
		if !ok {
			return rtErr(st.Line, "vector element must be a number, got %s", val.TypeName())
		}
		v[idx-1] = float64(x)
		return nil

	case *If:
		if err := in.step(st.Line); err != nil {
			return err
		}
		c, err := in.evalBool(st.Cond, env)
		if err != nil {
			return err
		}
		in.ops++
		if c {
			return in.execBlock(st.Then, env)
		}
		return in.execBlock(st.Else, env)

	case *While:
		for {
			if err := in.step(st.Line); err != nil {
				return err
			}
			c, err := in.evalBool(st.Cond, env)
			if err != nil {
				return err
			}
			in.ops++
			if !c {
				return nil
			}
			if err := in.execBlock(st.Body, env); err != nil {
				return err
			}
		}

	case *Repeat:
		if err := in.step(st.Line); err != nil {
			return err
		}
		cv, err := in.eval(st.Count, env)
		if err != nil {
			return err
		}
		n, ok := cv.(Num)
		if !ok || float64(n) != math.Trunc(float64(n)) || n < 0 {
			return rtErr(st.Line, "repeat count must be a non-negative integer, got %s", cv)
		}
		for i := int64(0); i < int64(n); i++ {
			if err := in.step(st.Line); err != nil {
				return err
			}
			in.ops++
			if err := in.execBlock(st.Body, env); err != nil {
				return err
			}
		}
		return nil

	case *For:
		if err := in.step(st.Line); err != nil {
			return err
		}
		from, err := in.evalNum(st.From, env)
		if err != nil {
			return err
		}
		to, err := in.evalNum(st.To, env)
		if err != nil {
			return err
		}
		step := 1.0
		if st.Step != nil {
			step, err = in.evalNum(st.Step, env)
			if err != nil {
				return err
			}
		}
		if step == 0 {
			return rtErr(st.Line, "for step must be non-zero")
		}
		for i := from; (step > 0 && i <= to) || (step < 0 && i >= to); i += step {
			if err := in.step(st.Line); err != nil {
				return err
			}
			in.ops++
			env[st.Var] = Num(i)
			if err := in.execBlock(st.Body, env); err != nil {
				return err
			}
		}
		return nil

	case *Print:
		if err := in.step(st.Line); err != nil {
			return err
		}
		var parts []string
		for _, a := range st.Args {
			v, err := in.eval(a, env)
			if err != nil {
				return err
			}
			parts = append(parts, v.String())
		}
		in.ops++
		in.out = append(in.out, strings.Join(parts, " "))
		return nil

	case *Formula:
		if err := in.step(st.Line); err != nil {
			return err
		}
		if _, isBuiltin := in.fns[st.Name]; isBuiltin {
			return rtErr(st.Line, "formula %q shadows a builtin function", st.Name)
		}
		in.formulas[st.Name] = st
		in.ops++
		return nil
	}
	return rtErr(0, "unknown statement %T", s)
}

func toIndex(line int, v Value) (int, error) {
	n, ok := v.(Num)
	if !ok {
		return 0, rtErr(line, "index must be a number, got %s", v.TypeName())
	}
	f := float64(n)
	if f != math.Trunc(f) {
		return 0, rtErr(line, "index must be an integer, got %v", n)
	}
	return int(f), nil
}

func (in *Interp) evalBool(e Expr, env Env) (bool, error) {
	v, err := in.eval(e, env)
	if err != nil {
		return false, err
	}
	b, ok := v.(BoolV)
	if !ok {
		return false, rtErr(exprLine(e), "condition must be a boolean, got %s", v.TypeName())
	}
	return bool(b), nil
}

func (in *Interp) evalNum(e Expr, env Env) (float64, error) {
	v, err := in.eval(e, env)
	if err != nil {
		return 0, err
	}
	n, ok := v.(Num)
	if !ok {
		return 0, rtErr(exprLine(e), "expected a number, got %s", v.TypeName())
	}
	return float64(n), nil
}

func exprLine(e Expr) int {
	switch x := e.(type) {
	case *Number:
		return x.Line
	case *Str:
		return x.Line
	case *Bool:
		return x.Line
	case *Var:
		return x.Line
	case *Index:
		return x.Line
	case *VecLit:
		return x.Line
	case *Call:
		return x.Line
	case *Unary:
		return x.Line
	case *Binary:
		return x.Line
	}
	return 0
}

func (in *Interp) eval(e Expr, env Env) (Value, error) {
	switch x := e.(type) {
	case *Number:
		return Num(x.Value), nil
	case *Str:
		return StrV(x.Value), nil
	case *Bool:
		return BoolV(x.Value), nil
	case *Var:
		if v, ok := env[x.Name]; ok {
			return v, nil
		}
		if c, ok := Constants[x.Name]; ok {
			return Num(c), nil
		}
		return nil, rtErr(x.Line, "undefined variable %q", x.Name)
	case *VecLit:
		v := make(Vec, len(x.Elems))
		for i, el := range x.Elems {
			ev, err := in.eval(el, env)
			if err != nil {
				return nil, err
			}
			n, ok := ev.(Num)
			if !ok {
				return nil, rtErr(x.Line, "vector element %d must be a number, got %s", i+1, ev.TypeName())
			}
			v[i] = float64(n)
		}
		in.ops += int64(len(v))
		return v, nil
	case *Index:
		base, err := in.eval(x.Base, env)
		if err != nil {
			return nil, err
		}
		v, ok := base.(Vec)
		if !ok {
			return nil, rtErr(x.Line, "cannot index a %s", base.TypeName())
		}
		iv, err := in.eval(x.Index, env)
		if err != nil {
			return nil, err
		}
		idx, err := toIndex(x.Line, iv)
		if err != nil {
			return nil, err
		}
		if idx < 1 || idx > len(v) {
			return nil, rtErr(x.Line, "index %d out of range 1..%d", idx, len(v))
		}
		in.ops++
		return Num(v[idx-1]), nil
	case *Call:
		if f, isFormula := in.formulas[x.Fn]; isFormula {
			return in.callFormula(x, f, env)
		}
		fn, ok := in.fns[x.Fn]
		if !ok {
			return nil, rtErr(x.Line, "unknown function %q", x.Fn)
		}
		if fn.Arity >= 0 && len(x.Args) != fn.Arity {
			return nil, rtErr(x.Line, "%s takes %d argument(s), got %d", x.Fn, fn.Arity, len(x.Args))
		}
		if fn.Arity < 0 && len(x.Args) == 0 {
			return nil, rtErr(x.Line, "%s needs at least one argument", x.Fn)
		}
		args := make([]Value, len(x.Args))
		for i, a := range x.Args {
			v, err := in.eval(a, env)
			if err != nil {
				return nil, err
			}
			args[i] = v
		}
		in.ops += fn.Cost
		return fn.fn(x.Line, args)
	case *Unary:
		v, err := in.eval(x.X, env)
		if err != nil {
			return nil, err
		}
		in.ops++
		switch x.Op {
		case TokMinus:
			switch t := v.(type) {
			case Num:
				return -t, nil
			case Vec:
				out := make(Vec, len(t))
				for i, f := range t {
					out[i] = -f
				}
				in.ops += int64(len(t))
				return out, nil
			}
			return nil, rtErr(x.Line, "cannot negate a %s", v.TypeName())
		case TokNot:
			b, ok := v.(BoolV)
			if !ok {
				return nil, rtErr(x.Line, "'not' needs a boolean, got %s", v.TypeName())
			}
			return !b, nil
		}
		return nil, rtErr(x.Line, "unknown unary operator")
	case *Binary:
		return in.evalBinary(x, env)
	}
	return nil, rtErr(exprLine(e), "unknown expression %T", e)
}

// callFormula evaluates a user formula: arguments are evaluated in the
// caller's environment, then the body sees only parameters and
// constants (formulas are pure).
func (in *Interp) callFormula(x *Call, f *Formula, env Env) (Value, error) {
	if len(x.Args) != len(f.Params) {
		return nil, rtErr(x.Line, "formula %s takes %d argument(s), got %d", f.Name, len(f.Params), len(x.Args))
	}
	if in.depth >= maxFormulaDepth {
		return nil, rtErr(x.Line, "formula call depth exceeded (%d); recursive formula?", maxFormulaDepth)
	}
	scope := make(Env, len(f.Params))
	for i, a := range x.Args {
		v, err := in.eval(a, env)
		if err != nil {
			return nil, err
		}
		scope[f.Params[i]] = v
	}
	in.ops += 2
	in.depth++
	v, err := in.eval(f.Body, scope)
	in.depth--
	return v, err
}

func (in *Interp) evalBinary(x *Binary, env Env) (Value, error) {
	// and/or short-circuit.
	if x.Op == TokAnd || x.Op == TokOr {
		l, err := in.evalBool(x.X, env)
		if err != nil {
			return nil, err
		}
		in.ops++
		if x.Op == TokAnd && !l {
			return BoolV(false), nil
		}
		if x.Op == TokOr && l {
			return BoolV(true), nil
		}
		r, err := in.evalBool(x.Y, env)
		if err != nil {
			return nil, err
		}
		return BoolV(r), nil
	}
	l, err := in.eval(x.X, env)
	if err != nil {
		return nil, err
	}
	r, err := in.eval(x.Y, env)
	if err != nil {
		return nil, err
	}
	in.ops++
	switch x.Op {
	case TokEq, TokNe:
		eq, err := valuesEqual(x.Line, l, r)
		if err != nil {
			return nil, err
		}
		if x.Op == TokNe {
			eq = !eq
		}
		return BoolV(eq), nil
	case TokLt, TokLe, TokGt, TokGe:
		ln, lok := l.(Num)
		rn, rok := r.(Num)
		if !lok || !rok {
			return nil, rtErr(x.Line, "cannot compare %s with %s", l.TypeName(), r.TypeName())
		}
		switch x.Op {
		case TokLt:
			return BoolV(ln < rn), nil
		case TokLe:
			return BoolV(ln <= rn), nil
		case TokGt:
			return BoolV(ln > rn), nil
		default:
			return BoolV(ln >= rn), nil
		}
	}
	return in.arith(x.Line, x.Op, l, r)
}

func valuesEqual(line int, l, r Value) (bool, error) {
	switch a := l.(type) {
	case Num:
		if b, ok := r.(Num); ok {
			return a == b, nil
		}
	case BoolV:
		if b, ok := r.(BoolV); ok {
			return a == b, nil
		}
	case StrV:
		if b, ok := r.(StrV); ok {
			return a == b, nil
		}
	case Vec:
		if b, ok := r.(Vec); ok {
			if len(a) != len(b) {
				return false, nil
			}
			for i := range a {
				if a[i] != b[i] {
					return false, nil
				}
			}
			return true, nil
		}
	}
	return false, rtErr(line, "cannot compare %s with %s", l.TypeName(), r.TypeName())
}

// arith applies +,-,*,/,%,^ with scalar/vector broadcasting.
func (in *Interp) arith(line int, op TokKind, l, r Value) (Value, error) {
	apply := func(a, b float64) (float64, error) {
		switch op {
		case TokPlus:
			return a + b, nil
		case TokMinus:
			return a - b, nil
		case TokStar:
			return a * b, nil
		case TokSlash:
			if b == 0 {
				return 0, rtErr(line, "division by zero")
			}
			return a / b, nil
		case TokPercent:
			if b == 0 {
				return 0, rtErr(line, "modulo by zero")
			}
			return math.Mod(a, b), nil
		case TokCaret:
			v := math.Pow(a, b)
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return 0, rtErr(line, "%v ^ %v is not a finite number", Num(a), Num(b))
			}
			return v, nil
		}
		return 0, rtErr(line, "unknown operator")
	}
	switch a := l.(type) {
	case Num:
		switch b := r.(type) {
		case Num:
			v, err := apply(float64(a), float64(b))
			if err != nil {
				return nil, err
			}
			return Num(v), nil
		case Vec:
			out := make(Vec, len(b))
			for i, x := range b {
				v, err := apply(float64(a), x)
				if err != nil {
					return nil, err
				}
				out[i] = v
			}
			in.ops += int64(len(b))
			return out, nil
		}
	case Vec:
		switch b := r.(type) {
		case Num:
			out := make(Vec, len(a))
			for i, x := range a {
				v, err := apply(x, float64(b))
				if err != nil {
					return nil, err
				}
				out[i] = v
			}
			in.ops += int64(len(a))
			return out, nil
		case Vec:
			if len(a) != len(b) {
				return nil, rtErr(line, "vector lengths %d and %d differ", len(a), len(b))
			}
			out := make(Vec, len(a))
			for i := range a {
				v, err := apply(a[i], b[i])
				if err != nil {
					return nil, err
				}
				out[i] = v
			}
			in.ops += int64(len(a))
			return out, nil
		}
	}
	return nil, rtErr(line, "cannot apply %s to %s and %s", op, l.TypeName(), r.TypeName())
}
