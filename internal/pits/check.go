package pits

import (
	"errors"
	"fmt"
	"sort"
)

// Check statically analyses a routine given the set of variables that
// will be defined before it runs (the node's input arcs plus declared
// locals). It reports:
//
//   - uses of variables that can never be defined on any path;
//   - calls to unknown functions or with the wrong argument count;
//   - assignments to constant names (pi, e).
//
// The checker is conservative about control flow: a variable assigned
// in any branch counts as possibly-defined afterwards, so it only
// reports definite errors — the right trade-off for instant feedback.
func Check(p *Program, defined []string) error {
	c := &checker{
		fns:     builtins(),
		defined: map[string]bool{},
	}
	// rand is added per-interpreter; it is a legal call target.
	c.fns["rand"] = Builtin{Name: "rand", Arity: 0}
	for _, d := range defined {
		c.defined[d] = true
	}
	c.block(p.Stmts)
	return errors.Join(c.errs...)
}

// Reads returns the sorted set of variables the routine reads before
// any assignment could define them — the routine's inputs. Constants
// are excluded.
func Reads(p *Program) []string {
	c := &checker{fns: builtins(), defined: map[string]bool{}, collect: true}
	c.fns["rand"] = Builtin{Name: "rand", Arity: 0}
	c.block(p.Stmts)
	out := make([]string, 0, len(c.reads))
	for v := range c.reads {
		out = append(out, v)
	}
	sort.Strings(out)
	return out
}

// Writes returns the sorted set of variables the routine assigns — its
// candidate outputs.
func Writes(p *Program) []string {
	seen := map[string]bool{}
	var walk func([]Stmt)
	walk = func(stmts []Stmt) {
		for _, s := range stmts {
			switch st := s.(type) {
			case *Assign:
				seen[st.Name] = true
			case *If:
				walk(st.Then)
				walk(st.Else)
			case *While:
				walk(st.Body)
			case *Repeat:
				walk(st.Body)
			case *For:
				seen[st.Var] = true
				walk(st.Body)
			}
		}
	}
	walk(p.Stmts)
	out := make([]string, 0, len(seen))
	for v := range seen {
		out = append(out, v)
	}
	sort.Strings(out)
	return out
}

type checker struct {
	fns      map[string]Builtin
	defined  map[string]bool
	formulas map[string]int // formula name -> arity, in definition order
	errs     []error
	collect  bool
	reads    map[string]bool
}

func (c *checker) errf(line int, format string, args ...any) {
	c.errs = append(c.errs, fmt.Errorf("pits: line %d: %s", line, fmt.Sprintf(format, args...)))
}

func (c *checker) use(name string, line int) {
	if c.defined[name] {
		return
	}
	if _, isConst := Constants[name]; isConst {
		return
	}
	if c.collect {
		if c.reads == nil {
			c.reads = map[string]bool{}
		}
		c.reads[name] = true
		return
	}
	c.errf(line, "variable %q used before it is defined", name)
}

func (c *checker) block(stmts []Stmt) {
	for _, s := range stmts {
		c.stmt(s)
	}
}

func (c *checker) stmt(s Stmt) {
	switch st := s.(type) {
	case *Assign:
		if st.Index != nil {
			c.use(st.Name, st.Line) // indexed assignment reads the vector
			c.expr(st.Index)
		}
		c.expr(st.Value)
		if _, isConst := Constants[st.Name]; isConst {
			c.errf(st.Line, "cannot assign to constant %q", st.Name)
			return
		}
		c.defined[st.Name] = true
	case *If:
		c.expr(st.Cond)
		// Each branch checks with a copy; afterwards, a name defined in
		// either branch is possibly-defined.
		base := c.snapshot()
		c.block(st.Then)
		afterThen := c.snapshot()
		c.restore(base)
		c.block(st.Else)
		for v := range afterThen {
			c.defined[v] = true
		}
	case *While:
		c.expr(st.Cond)
		c.block(st.Body)
	case *Repeat:
		c.expr(st.Count)
		c.block(st.Body)
	case *For:
		c.expr(st.From)
		c.expr(st.To)
		if st.Step != nil {
			c.expr(st.Step)
		}
		c.defined[st.Var] = true
		c.block(st.Body)
	case *Print:
		for _, a := range st.Args {
			c.expr(a)
		}
	case *Formula:
		if _, isBuiltin := c.fns[st.Name]; isBuiltin {
			c.errf(st.Line, "formula %q shadows a builtin function", st.Name)
			return
		}
		if _, isConst := Constants[st.Name]; isConst {
			c.errf(st.Line, "formula %q shadows a constant", st.Name)
			return
		}
		if c.formulas == nil {
			c.formulas = map[string]int{}
		}
		if _, dup := c.formulas[st.Name]; dup {
			c.errf(st.Line, "formula %q redefined", st.Name)
			return
		}
		// The body sees only the parameters, the constants, and
		// formulas defined earlier (no self- or forward references, so
		// no recursion).
		body := &checker{fns: c.fns, formulas: c.formulas, defined: map[string]bool{}}
		for _, p := range st.Params {
			body.defined[p] = true
		}
		body.expr(st.Body)
		if !c.collect {
			c.errs = append(c.errs, body.errs...)
		}
		c.formulas[st.Name] = len(st.Params)
	}
}

func (c *checker) snapshot() map[string]bool {
	s := make(map[string]bool, len(c.defined))
	for k, v := range c.defined {
		s[k] = v
	}
	return s
}

func (c *checker) restore(s map[string]bool) {
	c.defined = make(map[string]bool, len(s))
	for k, v := range s {
		c.defined[k] = v
	}
}

func (c *checker) expr(e Expr) {
	switch x := e.(type) {
	case *Var:
		c.use(x.Name, x.Line)
	case *Index:
		c.expr(x.Base)
		c.expr(x.Index)
	case *VecLit:
		for _, el := range x.Elems {
			c.expr(el)
		}
	case *Call:
		if arity, isFormula := c.formulas[x.Fn]; isFormula {
			if len(x.Args) != arity {
				c.errf(x.Line, "formula %s takes %d argument(s), got %d", x.Fn, arity, len(x.Args))
			}
			for _, a := range x.Args {
				c.expr(a)
			}
			return
		}
		fn, ok := c.fns[x.Fn]
		if !ok {
			c.errf(x.Line, "unknown function %q", x.Fn)
		} else if fn.Arity >= 0 && len(x.Args) != fn.Arity {
			c.errf(x.Line, "%s takes %d argument(s), got %d", x.Fn, fn.Arity, len(x.Args))
		} else if fn.Arity < 0 && len(x.Args) == 0 {
			c.errf(x.Line, "%s needs at least one argument", x.Fn)
		}
		for _, a := range x.Args {
			c.expr(a)
		}
	case *Unary:
		c.expr(x.X)
	case *Binary:
		c.expr(x.X)
		c.expr(x.Y)
	}
}
