package pits

// parser is a recursive-descent parser with Pratt-style expression
// precedence climbing.
type parser struct {
	toks []Token
	pos  int
}

// Parse lexes and parses a PITS routine.
func Parse(src string) (*Program, error) {
	toks, err := Lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	stmts, err := p.block(TokEOF)
	if err != nil {
		return nil, err
	}
	if p.cur().Kind != TokEOF {
		return nil, p.errf("unexpected %s", p.cur().Kind)
	}
	if err := rejectNestedFormulas(stmts, false); err != nil {
		return nil, err
	}
	return &Program{Stmts: stmts, Source: src}, nil
}

// rejectNestedFormulas enforces that formula definitions appear only at
// the top level of a routine.
func rejectNestedFormulas(stmts []Stmt, nested bool) error {
	for _, s := range stmts {
		switch st := s.(type) {
		case *Formula:
			if nested {
				return errAt(st.Line, 1, "formula %q must be defined at the top level", st.Name)
			}
		case *If:
			if err := rejectNestedFormulas(st.Then, true); err != nil {
				return err
			}
			if err := rejectNestedFormulas(st.Else, true); err != nil {
				return err
			}
		case *While:
			if err := rejectNestedFormulas(st.Body, true); err != nil {
				return err
			}
		case *Repeat:
			if err := rejectNestedFormulas(st.Body, true); err != nil {
				return err
			}
		case *For:
			if err := rejectNestedFormulas(st.Body, true); err != nil {
				return err
			}
		}
	}
	return nil
}

// MustParse is Parse that panics on error; for literal routines in
// examples and tests.
func MustParse(src string) *Program {
	prog, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return prog
}

func (p *parser) cur() Token  { return p.toks[p.pos] }
func (p *parser) next() Token { t := p.toks[p.pos]; p.pos++; return t }

func (p *parser) errf(format string, args ...any) error {
	t := p.cur()
	return errAt(t.Line, t.Col, format, args...)
}

func (p *parser) expect(kind TokKind) (Token, error) {
	if p.cur().Kind != kind {
		return Token{}, p.errf("expected %s, found %s", kind, p.cur().Kind)
	}
	return p.next(), nil
}

func (p *parser) skipNewlines() {
	for p.cur().Kind == TokNewline {
		p.next()
	}
}

// endStmt consumes the statement terminator (newline or EOF lookahead).
func (p *parser) endStmt() error {
	switch p.cur().Kind {
	case TokNewline:
		p.next()
		return nil
	case TokEOF, TokEnd, TokElse, TokElseif:
		return nil // block terminators end the statement implicitly
	default:
		return p.errf("expected end of statement, found %s", p.cur().Kind)
	}
}

// block parses statements until one of the stop kinds appears (the stop
// token is not consumed).
func (p *parser) block(stops ...TokKind) ([]Stmt, error) {
	stmts := []Stmt{}
	for {
		p.skipNewlines()
		k := p.cur().Kind
		for _, s := range stops {
			if k == s {
				return stmts, nil
			}
		}
		if k == TokEOF {
			return stmts, nil
		}
		st, err := p.statement()
		if err != nil {
			return nil, err
		}
		stmts = append(stmts, st)
		if err := p.endStmt(); err != nil {
			return nil, err
		}
	}
}

func (p *parser) statement() (Stmt, error) {
	switch p.cur().Kind {
	case TokIf:
		return p.ifStmt()
	case TokWhile:
		return p.whileStmt()
	case TokRepeat:
		return p.repeatStmt()
	case TokFor:
		return p.forStmt()
	case TokPrint:
		return p.printStmt()
	case TokFormula:
		return p.formulaStmt()
	case TokIdent:
		return p.assignStmt()
	default:
		return nil, p.errf("expected a statement, found %s", p.cur().Kind)
	}
}

func (p *parser) assignStmt() (Stmt, error) {
	name := p.next()
	var index Expr
	if p.cur().Kind == TokLBracket {
		p.next()
		var err error
		index, err = p.expr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokRBracket); err != nil {
			return nil, err
		}
	}
	if _, err := p.expect(TokAssign); err != nil {
		return nil, err
	}
	val, err := p.expr()
	if err != nil {
		return nil, err
	}
	return &Assign{Name: name.Text, Index: index, Value: val, Line: name.Line}, nil
}

func (p *parser) ifStmt() (Stmt, error) {
	kw := p.next() // if / elseif
	cond, err := p.expr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokThen); err != nil {
		return nil, err
	}
	thenBlk, err := p.block(TokElse, TokElseif, TokEnd)
	if err != nil {
		return nil, err
	}
	node := &If{Cond: cond, Then: thenBlk, Line: kw.Line}
	switch p.cur().Kind {
	case TokElseif:
		// Desugar: elseif becomes an else branch holding a nested if;
		// the nested call consumes through the single shared 'end'.
		nested, err := p.ifStmt()
		if err != nil {
			return nil, err
		}
		node.Else = []Stmt{nested}
		return node, nil
	case TokElse:
		p.next()
		elseBlk, err := p.block(TokEnd)
		if err != nil {
			return nil, err
		}
		node.Else = elseBlk
	}
	if _, err := p.expect(TokEnd); err != nil {
		return nil, err
	}
	return node, nil
}

func (p *parser) whileStmt() (Stmt, error) {
	kw := p.next()
	cond, err := p.expr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokDo); err != nil {
		return nil, err
	}
	body, err := p.block(TokEnd)
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokEnd); err != nil {
		return nil, err
	}
	return &While{Cond: cond, Body: body, Line: kw.Line}, nil
}

func (p *parser) repeatStmt() (Stmt, error) {
	kw := p.next()
	count, err := p.expr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokDo); err != nil {
		return nil, err
	}
	body, err := p.block(TokEnd)
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokEnd); err != nil {
		return nil, err
	}
	return &Repeat{Count: count, Body: body, Line: kw.Line}, nil
}

func (p *parser) forStmt() (Stmt, error) {
	kw := p.next()
	name, err := p.expect(TokIdent)
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokAssign); err != nil {
		return nil, err
	}
	from, err := p.expr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokTo); err != nil {
		return nil, err
	}
	to, err := p.expr()
	if err != nil {
		return nil, err
	}
	var step Expr
	if p.cur().Kind == TokStep {
		p.next()
		step, err = p.expr()
		if err != nil {
			return nil, err
		}
	}
	if _, err := p.expect(TokDo); err != nil {
		return nil, err
	}
	body, err := p.block(TokEnd)
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokEnd); err != nil {
		return nil, err
	}
	return &For{Var: name.Text, From: from, To: to, Step: step, Body: body, Line: kw.Line}, nil
}

func (p *parser) formulaStmt() (Stmt, error) {
	kw := p.next()
	name, err := p.expect(TokIdent)
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokLParen); err != nil {
		return nil, err
	}
	var params []string
	if p.cur().Kind != TokRParen {
		for {
			param, err := p.expect(TokIdent)
			if err != nil {
				return nil, err
			}
			for _, seen := range params {
				if seen == param.Text {
					return nil, errAt(param.Line, param.Col, "duplicate parameter %q", param.Text)
				}
			}
			params = append(params, param.Text)
			if p.cur().Kind != TokComma {
				break
			}
			p.next()
		}
	}
	if _, err := p.expect(TokRParen); err != nil {
		return nil, err
	}
	if _, err := p.expect(TokAssign); err != nil {
		return nil, err
	}
	body, err := p.expr()
	if err != nil {
		return nil, err
	}
	return &Formula{Name: name.Text, Params: params, Body: body, Line: kw.Line}, nil
}

func (p *parser) printStmt() (Stmt, error) {
	kw := p.next()
	var args []Expr
	if p.cur().Kind != TokNewline && p.cur().Kind != TokEOF {
		for {
			e, err := p.expr()
			if err != nil {
				return nil, err
			}
			args = append(args, e)
			if p.cur().Kind != TokComma {
				break
			}
			p.next()
		}
	}
	return &Print{Args: args, Line: kw.Line}, nil
}

// Operator precedence, loosest first.
func precedence(k TokKind) int {
	switch k {
	case TokOr:
		return 1
	case TokAnd:
		return 2
	case TokEq, TokNe, TokLt, TokLe, TokGt, TokGe:
		return 3
	case TokPlus, TokMinus:
		return 4
	case TokStar, TokSlash, TokPercent:
		return 5
	case TokCaret:
		return 6
	default:
		return 0
	}
}

func (p *parser) expr() (Expr, error) { return p.binary(1) }

func (p *parser) binary(minPrec int) (Expr, error) {
	left, err := p.unary()
	if err != nil {
		return nil, err
	}
	for {
		op := p.cur()
		prec := precedence(op.Kind)
		if prec < minPrec {
			return left, nil
		}
		p.next()
		// '^' is right-associative; the rest are left-associative.
		nextMin := prec + 1
		if op.Kind == TokCaret {
			nextMin = prec
		}
		right, err := p.binary(nextMin)
		if err != nil {
			return nil, err
		}
		left = &Binary{Op: op.Kind, X: left, Y: right, Line: op.Line}
	}
}

func (p *parser) unary() (Expr, error) {
	switch p.cur().Kind {
	case TokMinus:
		t := p.next()
		// The operand is parsed at power precedence so that -x^2 means
		// -(x^2), the calculator convention.
		x, err := p.binary(precedence(TokCaret))
		if err != nil {
			return nil, err
		}
		return &Unary{Op: TokMinus, X: x, Line: t.Line}, nil
	case TokNot:
		t := p.next()
		x, err := p.unary()
		if err != nil {
			return nil, err
		}
		return &Unary{Op: TokNot, X: x, Line: t.Line}, nil
	}
	return p.postfix()
}

func (p *parser) postfix() (Expr, error) {
	e, err := p.primary()
	if err != nil {
		return nil, err
	}
	for p.cur().Kind == TokLBracket {
		t := p.next()
		idx, err := p.expr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokRBracket); err != nil {
			return nil, err
		}
		e = &Index{Base: e, Index: idx, Line: t.Line}
	}
	return e, nil
}

func (p *parser) primary() (Expr, error) {
	t := p.cur()
	switch t.Kind {
	case TokNumber:
		p.next()
		return &Number{Value: t.Num, Line: t.Line}, nil
	case TokString:
		p.next()
		return &Str{Value: t.Text, Line: t.Line}, nil
	case TokTrue:
		p.next()
		return &Bool{Value: true, Line: t.Line}, nil
	case TokFalse:
		p.next()
		return &Bool{Value: false, Line: t.Line}, nil
	case TokIdent:
		p.next()
		if p.cur().Kind == TokLParen {
			p.next()
			var args []Expr
			if p.cur().Kind != TokRParen {
				for {
					a, err := p.expr()
					if err != nil {
						return nil, err
					}
					args = append(args, a)
					if p.cur().Kind != TokComma {
						break
					}
					p.next()
				}
			}
			if _, err := p.expect(TokRParen); err != nil {
				return nil, err
			}
			return &Call{Fn: t.Text, Args: args, Line: t.Line}, nil
		}
		return &Var{Name: t.Text, Line: t.Line}, nil
	case TokLParen:
		p.next()
		e, err := p.expr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokRParen); err != nil {
			return nil, err
		}
		return e, nil
	case TokLBracket:
		p.next()
		var elems []Expr
		if p.cur().Kind != TokRBracket {
			for {
				e, err := p.expr()
				if err != nil {
					return nil, err
				}
				elems = append(elems, e)
				if p.cur().Kind != TokComma {
					break
				}
				p.next()
			}
		}
		if _, err := p.expect(TokRBracket); err != nil {
			return nil, err
		}
		return &VecLit{Elems: elems, Line: t.Line}, nil
	default:
		return nil, p.errf("expected an expression, found %s", t.Kind)
	}
}

// stmtCount returns the total number of statements in the program,
// recursing into blocks; used by the calculator panel's status line.
func stmtCount(stmts []Stmt) int {
	n := 0
	for _, s := range stmts {
		n++
		switch st := s.(type) {
		case *If:
			n += stmtCount(st.Then) + stmtCount(st.Else)
		case *While:
			n += stmtCount(st.Body)
		case *Repeat:
			n += stmtCount(st.Body)
		case *For:
			n += stmtCount(st.Body)
		}
	}
	return n
}

// NumStmts reports the number of statements in the program including
// nested blocks.
func (p *Program) NumStmts() int { return stmtCount(p.Stmts) }

// String returns the canonical formatted source (see Format).
func (p *Program) String() string { return Format(p) }
