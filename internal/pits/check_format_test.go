package pits

import (
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func TestCheckAcceptsWellFormedRoutine(t *testing.T) {
	prog := MustParse(`
x = a
eps = 1e-12
err = 1
while err > eps do
  xold = x
  x = 0.5 * (xold + a / xold)
  err = abs(x - xold)
end
`)
	if err := Check(prog, []string{"a"}); err != nil {
		t.Errorf("Check: %v", err)
	}
}

func TestCheckReportsUndefinedUse(t *testing.T) {
	prog := MustParse("y = x + 1")
	err := Check(prog, nil)
	if err == nil || !strings.Contains(err.Error(), `"x" used before`) {
		t.Errorf("err = %v", err)
	}
	// Same routine is fine when x is declared as an input.
	if err := Check(prog, []string{"x"}); err != nil {
		t.Errorf("with input: %v", err)
	}
}

func TestCheckBranchDefinitionIsPossiblyDefined(t *testing.T) {
	prog := MustParse(`
if c then
  x = 1
end
y = x
`)
	// x is only defined on one path, but the conservative checker
	// accepts possibly-defined uses (no false positives).
	if err := Check(prog, []string{"c"}); err != nil {
		t.Errorf("Check: %v", err)
	}
}

func TestCheckRejectsConstAssignmentAndBadCalls(t *testing.T) {
	cases := []struct{ src, want string }{
		{"pi = 3", "constant"},
		{"x = nosuch(1)", "unknown function"},
		{"x = sqrt()", "takes 1 argument"},
		{"x = min()", "at least one argument"},
		{"v[1] = 2", `"v" used before`},
	}
	for _, tc := range cases {
		prog := MustParse(tc.src)
		err := Check(prog, nil)
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%q: err = %v, want mention of %q", tc.src, err, tc.want)
		}
	}
}

func TestReadsAndWrites(t *testing.T) {
	prog := MustParse(`
x = a + b
b = 2
c = x * b
v[1] = q
print label
for i = 1 to n do
  s = i
end
`)
	reads := Reads(prog)
	want := []string{"a", "b", "label", "n", "q", "v"}
	if !reflect.DeepEqual(reads, want) {
		t.Errorf("Reads = %v, want %v", reads, want)
	}
	writes := Writes(prog)
	// v counts as a write too: indexed assignment mutates the vector.
	wantW := []string{"b", "c", "i", "s", "v", "x"}
	if !reflect.DeepEqual(writes, wantW) {
		t.Errorf("Writes = %v, want %v", writes, wantW)
	}
}

func TestReadsExcludesConstants(t *testing.T) {
	prog := MustParse("area = pi * r ^ 2")
	reads := Reads(prog)
	if !reflect.DeepEqual(reads, []string{"r"}) {
		t.Errorf("Reads = %v", reads)
	}
}

func TestFormatCanonicalises(t *testing.T) {
	prog := MustParse("x=1+2*3\nif x>5 then\ny=x\nelse\ny=0-x\nend")
	got := Format(prog)
	want := `x = 1 + 2 * 3
if x > 5 then
  y = x
else
  y = 0 - x
end
`
	if got != want {
		t.Errorf("Format:\n%q\nwant\n%q", got, want)
	}
}

func TestFormatParenthesisation(t *testing.T) {
	cases := []string{
		"x = (1 + 2) * 3",
		"x = 1 + 2 + 3",
		"x = 2 ^ 3 ^ 2",
		"x = (2 ^ 3) ^ 2",
		"x = -(2 ^ 2)",
		"x = not (a and b)",
		"x = a and (b or c)",
		"x = v[i + 1] * 2",
		"x = [1, 2 + 3, sqrt(4)]",
		`print "hi", 1 < 2`,
		"for i = 1 to 10 step 2 do\n  s = s + i\nend",
	}
	for _, src := range cases {
		p1 := MustParse(src)
		f1 := Format(p1)
		p2, err := Parse(f1)
		if err != nil {
			t.Errorf("%q: formatted output %q does not parse: %v", src, f1, err)
			continue
		}
		if f2 := Format(p2); f1 != f2 {
			t.Errorf("%q: format not idempotent:\n%q\n%q", src, f1, f2)
		}
	}
}

// Property: Format(Parse(x)) re-parses to a program whose formatted
// form is identical (format∘parse is idempotent) and whose behaviour
// on a random env matches the original.
func TestFormatRoundTripPreservesSemantics(t *testing.T) {
	srcs := []string{
		"y = (a + b) * (a - b)\nz = y ^ 2 % 7",
		"s = 0\nfor i = 1 to 10 do\n  s = s + i * i\nend",
		"x = a\nwhile x > 1 do\n  x = x / 2\nend\nflag = x <= 1 and a > 0",
		"v = [a, b, a + b]\nv[2] = v[1] * 2\nt2 = sum(v) + max(v) - min(v)",
		"if a > b then\n  m = a\nelseif a == b then\n  m = 0 - 1\nelse\n  m = b\nend",
	}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		src := srcs[rng.Intn(len(srcs))]
		inputs := Env{
			"a": Num(float64(rng.Intn(100) + 1)),
			"b": Num(float64(rng.Intn(100) + 1)),
		}
		p1 := MustParse(src)
		p2, err := Parse(Format(p1))
		if err != nil {
			t.Logf("reparse: %v", err)
			return false
		}
		env1, env2 := inputs.Clone(), inputs.Clone()
		i1, i2 := NewInterp(), NewInterp()
		err1 := i1.Run(p1, env1)
		err2 := i2.Run(p2, env2)
		if (err1 == nil) != (err2 == nil) {
			t.Logf("errors differ: %v vs %v", err1, err2)
			return false
		}
		if err1 != nil {
			return true
		}
		if len(env1) != len(env2) {
			return false
		}
		for k, v := range env1 {
			if !reflect.DeepEqual(v, env2[k]) {
				t.Logf("var %s: %v vs %v", k, v, env2[k])
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestEstimateLiteralLoops(t *testing.T) {
	flat := MustParse("x = 1 + 2")
	loop := MustParse("x = 0\nrepeat 100 do\n  x = x + 1\nend")
	ef, el := Estimate(flat, 0), Estimate(loop, 0)
	if ef <= 0 {
		t.Errorf("flat estimate = %d", ef)
	}
	if el < 100 {
		t.Errorf("loop estimate = %d, want >= 100", el)
	}
	// A literal-bound for loop scales with its bounds.
	f10 := Estimate(MustParse("s = 0\nfor i = 1 to 10 do\n  s = s + i\nend"), 0)
	f100 := Estimate(MustParse("s = 0\nfor i = 1 to 100 do\n  s = s + i\nend"), 0)
	if f100 < 5*f10 {
		t.Errorf("for-loop estimate does not scale: %d vs %d", f10, f100)
	}
}

func TestEstimateUsesGuessForDynamicLoops(t *testing.T) {
	p := MustParse("s = 0\nwhile s < n do\n  s = s + 1\nend")
	small := Estimate(p, 2)
	big := Estimate(p, 1000)
	if big <= small {
		t.Errorf("guess has no effect: %d vs %d", small, big)
	}
}

func TestEstimateBranchTakesMax(t *testing.T) {
	p := MustParse(`
if c then
  x = 1
else
  x = sqrt(sqrt(sqrt(2)))
  y = x * x * x
end
`)
	est := Estimate(p, 0)
	thenOnly := Estimate(MustParse("x = 1"), 0)
	if est <= thenOnly {
		t.Errorf("estimate %d ignored heavier branch (then-only %d)", est, thenOnly)
	}
}

func TestMeasureMatchesInterpreterOps(t *testing.T) {
	p := MustParse("s = 0\nrepeat 10 do\n  s = s + sqrt(s + 1)\nend")
	ops, env, _, err := Measure(p, Env{})
	if err != nil {
		t.Fatal(err)
	}
	in := NewInterp()
	env2 := Env{}
	if err := in.Run(p, env2); err != nil {
		t.Fatal(err)
	}
	if ops != in.Ops() {
		t.Errorf("Measure ops %d != direct ops %d", ops, in.Ops())
	}
	if !reflect.DeepEqual(env["s"], env2["s"]) {
		t.Error("results differ")
	}
}

func TestMeasureDoesNotMutateInputs(t *testing.T) {
	inputs := Env{"v": Vec{1, 2, 3}}
	p := MustParse("v[1] = 99")
	_, env, _, err := Measure(p, inputs)
	if err != nil {
		t.Fatal(err)
	}
	if inputs["v"].(Vec)[0] != 1 {
		t.Error("Measure mutated caller inputs")
	}
	if env["v"].(Vec)[0] != 99 {
		t.Error("Measure result lost")
	}
}

func TestTrialRun(t *testing.T) {
	rep, err := TrialRun("x = a * 2\nprint x", Env{"a": Num(21)})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Outputs["x"] != Num(42) {
		t.Errorf("x = %v", rep.Outputs["x"])
	}
	if len(rep.Printed) != 1 || rep.Printed[0] != "42" {
		t.Errorf("printed = %v", rep.Printed)
	}
	if rep.Ops <= 0 {
		t.Errorf("ops = %d", rep.Ops)
	}
	if !strings.Contains(rep.String(), "trial run") {
		t.Errorf("String = %q", rep.String())
	}
	if _, err := TrialRun("x = ", nil); err == nil {
		t.Error("bad source accepted")
	}
	if _, err := TrialRun("x = 1 / 0", nil); err == nil {
		t.Error("runtime failure not reported")
	}
}

func TestBuiltinsListIsSortedAndDocumented(t *testing.T) {
	bs := Builtins()
	if len(bs) < 20 {
		t.Fatalf("only %d builtins", len(bs))
	}
	for i := 1; i < len(bs); i++ {
		if bs[i-1].Name >= bs[i].Name {
			t.Errorf("not sorted: %s >= %s", bs[i-1].Name, bs[i].Name)
		}
	}
	for _, b := range bs {
		if b.Help == "" {
			t.Errorf("builtin %s lacks help text", b.Name)
		}
		if b.Cost <= 0 {
			t.Errorf("builtin %s has cost %d", b.Name, b.Cost)
		}
	}
}
