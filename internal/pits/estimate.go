package pits

import "fmt"

// This file connects PITS routines to the scheduler's work model.
// Banger offers two ways to find out how expensive a task is:
//
//   - Measure: run the routine on trial inputs and count the abstract
//     operations the interpreter executes — the paper's trial-run
//     "instant feedback" doubling as a cost probe;
//   - Estimate: a static walk of the AST that assumes a fixed trip
//     count for loops whose bounds are not literal.

// Measure runs the routine against the given inputs and returns the
// exact operation count of that execution, the resulting environment,
// and any printed output.
func Measure(p *Program, inputs Env) (ops int64, env Env, output []string, err error) {
	in := NewInterp()
	env = inputs.Clone()
	if err := in.Run(p, env); err != nil {
		return 0, nil, nil, err
	}
	return in.Ops(), env, in.Output(), nil
}

// DefaultLoopGuess is the trip count Estimate assumes for loops whose
// bounds are not numeric literals.
const DefaultLoopGuess = 16

// Estimate statically estimates the operation count of one execution
// of the routine. Loops with literal bounds multiply exactly; other
// loops assume loopGuess iterations (DefaultLoopGuess if <= 0).
// Branches cost the more expensive side (a safe scheduling estimate).
func Estimate(p *Program, loopGuess int64) int64 {
	if loopGuess <= 0 {
		loopGuess = DefaultLoopGuess
	}
	e := &estimator{guess: loopGuess, fns: builtins()}
	return e.block(p.Stmts)
}

type estimator struct {
	guess    int64
	fns      map[string]Builtin
	formulas map[string]*Formula
}

func (e *estimator) block(stmts []Stmt) int64 {
	var total int64
	for _, s := range stmts {
		total += e.stmt(s)
	}
	return total
}

func (e *estimator) stmt(s Stmt) int64 {
	switch st := s.(type) {
	case *Assign:
		cost := e.expr(st.Value) + 1
		if st.Index != nil {
			cost += e.expr(st.Index) + 1
		}
		return cost
	case *If:
		thenCost := e.block(st.Then)
		elseCost := e.block(st.Else)
		if elseCost > thenCost {
			thenCost = elseCost
		}
		return e.expr(st.Cond) + 1 + thenCost
	case *While:
		// Condition evaluated once more than the body runs.
		per := e.expr(st.Cond) + 1 + e.block(st.Body)
		return per*e.guess + e.expr(st.Cond) + 1
	case *Repeat:
		n := e.tripCount(st.Count)
		return e.expr(st.Count) + n*(e.block(st.Body)+1)
	case *For:
		n := e.forTrips(st)
		cost := e.expr(st.From) + e.expr(st.To)
		if st.Step != nil {
			cost += e.expr(st.Step)
		}
		return cost + n*(e.block(st.Body)+2)
	case *Print:
		var cost int64 = 1
		for _, a := range st.Args {
			cost += e.expr(a)
		}
		return cost
	case *Formula:
		if e.formulas == nil {
			e.formulas = map[string]*Formula{}
		}
		e.formulas[st.Name] = st
		return 1
	}
	return 1
}

// tripCount resolves a literal loop bound, else the guess.
func (e *estimator) tripCount(expr Expr) int64 {
	if n, ok := expr.(*Number); ok && n.Value >= 0 {
		return int64(n.Value)
	}
	return e.guess
}

func (e *estimator) forTrips(st *For) int64 {
	from, okF := st.From.(*Number)
	to, okT := st.To.(*Number)
	step := 1.0
	okS := true
	if st.Step != nil {
		if s, ok := st.Step.(*Number); ok {
			step = s.Value
		} else {
			okS = false
		}
	}
	if okF && okT && okS && step != 0 {
		n := int64((to.Value-from.Value)/step) + 1
		if n < 0 {
			return 0
		}
		return n
	}
	return e.guess
}

func (e *estimator) expr(x Expr) int64 {
	switch v := x.(type) {
	case *Number, *Str, *Bool, *Var:
		return 0
	case *Index:
		return e.expr(v.Base) + e.expr(v.Index) + 1
	case *VecLit:
		var c int64 = int64(len(v.Elems))
		for _, el := range v.Elems {
			c += e.expr(el)
		}
		return c
	case *Call:
		var c int64 = 1
		if f, isFormula := e.formulas[v.Fn]; isFormula {
			c = 2 + e.expr(f.Body)
		} else if fn, ok := e.fns[v.Fn]; ok {
			c = fn.Cost
		}
		for _, a := range v.Args {
			c += e.expr(a)
		}
		return c
	case *Unary:
		return e.expr(v.X) + 1
	case *Binary:
		return e.expr(v.X) + e.expr(v.Y) + 1
	}
	return 1
}

// TrialReport is the instant-feedback summary the environment shows
// after a trial run of one task.
type TrialReport struct {
	Ops     int64
	Outputs Env
	Printed []string
}

// String renders the report for the calculator's display window.
func (r *TrialReport) String() string {
	return fmt.Sprintf("trial run: %d ops, %d outputs, %d lines printed", r.Ops, len(r.Outputs), len(r.Printed))
}

// TrialRun runs a routine on trial inputs and packages the feedback.
func TrialRun(src string, inputs Env) (*TrialReport, error) {
	prog, err := Parse(src)
	if err != nil {
		return nil, err
	}
	ops, env, printed, err := Measure(prog, inputs)
	if err != nil {
		return nil, err
	}
	return &TrialReport{Ops: ops, Outputs: env, Printed: printed}, nil
}
