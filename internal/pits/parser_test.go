package pits

import (
	"strings"
	"testing"
)

func TestParseErrorCases(t *testing.T) {
	cases := []struct {
		name, src, want string
	}{
		{"missing then", "if x < 1\n  y = 2\nend", "expected 'then'"},
		{"missing end", "if x < 1 then\n  y = 2", "expected 'end'"},
		{"missing do", "while x < 1\n  y = 2\nend", "expected 'do'"},
		{"bare expression", "1 + 2", "expected a statement"},
		{"assign missing rhs", "x =", "expected an expression"},
		{"dangling operator", "x = 1 +", "expected an expression"},
		{"unclosed paren", "x = (1 + 2", "expected ')'"},
		{"unclosed bracket", "x = [1, 2", "expected ']'"},
		{"unclosed index", "v = [1]\nx = v[1", "expected ']'"},
		{"for missing to", "for i = 1 do\nend", "expected 'to'"},
		{"for missing var", "for = 1 to 2 do\nend", "expected identifier"},
		{"two statements one line", "x = 1 y = 2", "end of statement"},
		{"stray end", "end", "expected a statement"},
		{"unclosed call", "x = sqrt(2", "expected ')'"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Parse(tc.src)
			if err == nil {
				t.Fatalf("%q parsed without error", tc.src)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

func TestParseEmptyProgram(t *testing.T) {
	for _, src := range []string{"", "\n\n", "# only a comment\n"} {
		prog, err := Parse(src)
		if err != nil {
			t.Errorf("%q: %v", src, err)
			continue
		}
		if len(prog.Stmts) != 0 {
			t.Errorf("%q: %d statements", src, len(prog.Stmts))
		}
	}
}

func TestParseElseifDesugarsToNestedIf(t *testing.T) {
	prog := MustParse(`
if a then
  x = 1
elseif b then
  x = 2
elseif c then
  x = 3
else
  x = 4
end
`)
	if len(prog.Stmts) != 1 {
		t.Fatalf("stmts = %d", len(prog.Stmts))
	}
	top, ok := prog.Stmts[0].(*If)
	if !ok {
		t.Fatalf("top is %T", prog.Stmts[0])
	}
	lvl2, ok := top.Else[0].(*If)
	if !ok {
		t.Fatalf("level 2 is %T", top.Else[0])
	}
	lvl3, ok := lvl2.Else[0].(*If)
	if !ok {
		t.Fatalf("level 3 is %T", lvl2.Else[0])
	}
	if len(lvl3.Else) != 1 {
		t.Errorf("innermost else missing: %v", lvl3.Else)
	}
}

func TestParseNestedBlocks(t *testing.T) {
	prog := MustParse(`
for i = 1 to 3 do
  while i < 2 do
    if i == 1 then
      repeat 2 do
        x = i
      end
    end
    i = i + 1
  end
end
`)
	if n := prog.NumStmts(); n != 6 {
		t.Errorf("NumStmts = %d, want 6", n)
	}
}

func TestParseIndexedAssignment(t *testing.T) {
	prog := MustParse("v[i + 1] = 2 * v[i]")
	a, ok := prog.Stmts[0].(*Assign)
	if !ok || a.Index == nil || a.Name != "v" {
		t.Fatalf("stmt = %#v", prog.Stmts[0])
	}
}

func TestParseChainedIndex(t *testing.T) {
	// Indexing the result of an index parses (even though it fails at
	// runtime on scalars) — grammar composability check.
	if _, err := Parse("x = m[1][2]"); err != nil {
		t.Errorf("chained index rejected: %v", err)
	}
}

func TestParsePreservesSource(t *testing.T) {
	src := "x = 1\n"
	prog := MustParse(src)
	if prog.Source != src {
		t.Errorf("Source = %q", prog.Source)
	}
}

func TestMustParsePanicsOnBadInput(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustParse did not panic")
		}
	}()
	MustParse("if")
}
