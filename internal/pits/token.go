// Package pits implements Banger's programming-in-the-small language —
// the "simplified programming language" a user assembles through the
// programmable pocket calculator panel of the paper's Figure 4.
//
// A PITS routine is a small sequential program over floating-point
// scalars and vectors, with the simple constructs a scientific
// calculator offers: assignment, if/else, while, bounded repeat and
// for loops, print, and a library of scientific functions. One routine
// fills each primitive node of a PITL dataflow graph; the node's
// incoming arcs name the variables that are defined before the routine
// runs and its outgoing arcs name the variables it must leave behind.
//
// The interpreter counts abstract operations as it runs, so a trial run
// (the paper's "instant feedback") doubles as the work measurement the
// scheduler uses.
package pits

import "fmt"

// TokKind classifies lexical tokens.
type TokKind int

// Token kinds. Keywords and operators each get their own kind so the
// parser is a plain switch.
const (
	TokEOF TokKind = iota
	TokNewline
	TokNumber
	TokString
	TokIdent

	// Keywords.
	TokIf
	TokThen
	TokElse
	TokElseif
	TokEnd
	TokWhile
	TokRepeat
	TokFor
	TokTo
	TokStep
	TokDo
	TokPrint
	TokAnd
	TokOr
	TokNot
	TokTrue
	TokFalse
	TokFormula

	// Operators and punctuation.
	TokAssign // =
	TokPlus
	TokMinus
	TokStar
	TokSlash
	TokPercent
	TokCaret
	TokLParen
	TokRParen
	TokLBracket
	TokRBracket
	TokComma
	TokEq // ==
	TokNe // !=
	TokLt
	TokLe
	TokGt
	TokGe
)

var kindNames = map[TokKind]string{
	TokEOF: "end of input", TokNewline: "newline", TokNumber: "number",
	TokString: "string", TokIdent: "identifier",
	TokIf: "'if'", TokThen: "'then'", TokElse: "'else'", TokElseif: "'elseif'",
	TokEnd: "'end'", TokWhile: "'while'", TokRepeat: "'repeat'", TokFor: "'for'",
	TokTo: "'to'", TokStep: "'step'", TokDo: "'do'", TokPrint: "'print'",
	TokAnd: "'and'", TokOr: "'or'", TokNot: "'not'", TokTrue: "'true'", TokFalse: "'false'",
	TokFormula: "'formula'",
	TokAssign:  "'='", TokPlus: "'+'", TokMinus: "'-'", TokStar: "'*'",
	TokSlash: "'/'", TokPercent: "'%'", TokCaret: "'^'",
	TokLParen: "'('", TokRParen: "')'", TokLBracket: "'['", TokRBracket: "']'",
	TokComma: "','", TokEq: "'=='", TokNe: "'!='",
	TokLt: "'<'", TokLe: "'<='", TokGt: "'>'", TokGe: "'>='",
}

// String returns a human-readable token kind name.
func (k TokKind) String() string {
	if n, ok := kindNames[k]; ok {
		return n
	}
	return fmt.Sprintf("token(%d)", int(k))
}

var keywords = map[string]TokKind{
	"if": TokIf, "then": TokThen, "else": TokElse, "elseif": TokElseif,
	"end": TokEnd, "while": TokWhile, "repeat": TokRepeat, "for": TokFor,
	"to": TokTo, "step": TokStep, "do": TokDo, "print": TokPrint,
	"and": TokAnd, "or": TokOr, "not": TokNot, "true": TokTrue, "false": TokFalse,
	"formula": TokFormula,
}

// Token is one lexical token with its source position.
type Token struct {
	Kind TokKind
	Text string  // raw text for idents and strings
	Num  float64 // value for numbers
	Line int     // 1-based source line
	Col  int     // 1-based source column
}

// SyntaxError is a lexing or parsing error with position information.
type SyntaxError struct {
	Line, Col int
	Msg       string
}

// Error implements error.
func (e *SyntaxError) Error() string {
	return fmt.Sprintf("pits:%d:%d: %s", e.Line, e.Col, e.Msg)
}

func errAt(line, col int, format string, args ...any) error {
	return &SyntaxError{Line: line, Col: col, Msg: fmt.Sprintf(format, args...)}
}
