package pits

import (
	"fmt"
	"strings"
)

// Format pretty-prints a program in canonical PITS style: two-space
// indentation, one statement per line, minimal parentheses. Formatting
// then re-parsing yields an equivalent program (tested property).
func Format(p *Program) string {
	var b strings.Builder
	formatBlock(&b, p.Stmts, 0)
	return b.String()
}

func indent(b *strings.Builder, depth int) {
	for i := 0; i < depth; i++ {
		b.WriteString("  ")
	}
}

func formatBlock(b *strings.Builder, stmts []Stmt, depth int) {
	for _, s := range stmts {
		indent(b, depth)
		formatStmt(b, s, depth)
		b.WriteByte('\n')
	}
}

func formatStmt(b *strings.Builder, s Stmt, depth int) {
	switch st := s.(type) {
	case *Assign:
		if st.Index != nil {
			fmt.Fprintf(b, "%s[%s] = %s", st.Name, formatExpr(st.Index, 0), formatExpr(st.Value, 0))
		} else {
			fmt.Fprintf(b, "%s = %s", st.Name, formatExpr(st.Value, 0))
		}
	case *If:
		fmt.Fprintf(b, "if %s then\n", formatExpr(st.Cond, 0))
		formatBlock(b, st.Then, depth+1)
		if len(st.Else) > 0 {
			indent(b, depth)
			b.WriteString("else\n")
			formatBlock(b, st.Else, depth+1)
		}
		indent(b, depth)
		b.WriteString("end")
	case *While:
		fmt.Fprintf(b, "while %s do\n", formatExpr(st.Cond, 0))
		formatBlock(b, st.Body, depth+1)
		indent(b, depth)
		b.WriteString("end")
	case *Repeat:
		fmt.Fprintf(b, "repeat %s do\n", formatExpr(st.Count, 0))
		formatBlock(b, st.Body, depth+1)
		indent(b, depth)
		b.WriteString("end")
	case *For:
		fmt.Fprintf(b, "for %s = %s to %s", st.Var, formatExpr(st.From, 0), formatExpr(st.To, 0))
		if st.Step != nil {
			fmt.Fprintf(b, " step %s", formatExpr(st.Step, 0))
		}
		b.WriteString(" do\n")
		formatBlock(b, st.Body, depth+1)
		indent(b, depth)
		b.WriteString("end")
	case *Print:
		b.WriteString("print")
		for i, a := range st.Args {
			if i == 0 {
				b.WriteByte(' ')
			} else {
				b.WriteString(", ")
			}
			b.WriteString(formatExpr(a, 0))
		}
	case *Formula:
		fmt.Fprintf(b, "formula %s(%s) = %s", st.Name, strings.Join(st.Params, ", "), formatExpr(st.Body, 0))
	}
}

var opText = map[TokKind]string{
	TokPlus: "+", TokMinus: "-", TokStar: "*", TokSlash: "/",
	TokPercent: "%", TokCaret: "^", TokEq: "==", TokNe: "!=",
	TokLt: "<", TokLe: "<=", TokGt: ">", TokGe: ">=",
	TokAnd: "and", TokOr: "or",
}

// formatExpr renders e, parenthesising when the child binds looser than
// the parent context precedence.
func formatExpr(e Expr, parentPrec int) string {
	switch x := e.(type) {
	case *Number:
		return Num(x.Value).String()
	case *Str:
		escaped := strings.NewReplacer("\\", `\\`, "\"", `\"`, "\n", `\n`, "\t", `\t`).Replace(x.Value)
		return `"` + escaped + `"`
	case *Bool:
		if x.Value {
			return "true"
		}
		return "false"
	case *Var:
		return x.Name
	case *Index:
		return fmt.Sprintf("%s[%s]", formatExpr(x.Base, 7), formatExpr(x.Index, 0))
	case *VecLit:
		parts := make([]string, len(x.Elems))
		for i, el := range x.Elems {
			parts[i] = formatExpr(el, 0)
		}
		return "[" + strings.Join(parts, ", ") + "]"
	case *Call:
		parts := make([]string, len(x.Args))
		for i, a := range x.Args {
			parts[i] = formatExpr(a, 0)
		}
		return x.Fn + "(" + strings.Join(parts, ", ") + ")"
	case *Unary:
		op := "-"
		if x.Op == TokNot {
			op = "not "
		}
		s := op + formatExpr(x.X, 7)
		if parentPrec > 6 {
			return "(" + s + ")"
		}
		return s
	case *Binary:
		prec := precedence(x.Op)
		// Left child at same precedence stays unparenthesised for
		// left-associative operators; right child needs prec+1 (except
		// right-associative '^', mirrored).
		leftPrec, rightPrec := prec, prec+1
		if x.Op == TokCaret {
			leftPrec, rightPrec = prec+1, prec
		}
		s := fmt.Sprintf("%s %s %s", formatExpr(x.X, leftPrec), opText[x.Op], formatExpr(x.Y, rightPrec))
		if prec < parentPrec {
			return "(" + s + ")"
		}
		return s
	}
	return fmt.Sprintf("<%T>", e)
}
