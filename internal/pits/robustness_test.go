package pits

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

// Parse must never panic, whatever bytes arrive — a calculator front
// end feeds it raw user input.
func TestParseNeverPanicsOnRandomInput(t *testing.T) {
	f := func(src string) (ok bool) {
		defer func() {
			if r := recover(); r != nil {
				t.Logf("panic on %q: %v", src, r)
				ok = false
			}
		}()
		_, _ = Parse(src)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Random token soup: syntactically plausible fragments glued together
// must parse-or-error without panicking, and anything that parses must
// run-or-error without panicking under a small step budget.
func TestTokenSoupNeverPanics(t *testing.T) {
	pieces := []string{
		"x", "y", "v", "= ", "1", "2.5", "+", "-", "*", "/", "^", "%",
		"if ", "then\n", "else\n", "end\n", "while ", "do\n", "repeat ",
		"for ", "to ", "step ", "print ", "(", ")", "[", "]", ",",
		"sqrt", "min", "and ", "or ", "not ", "true", "false", "\n",
		"formula ", "==", "<", "<=", `"s"`, "pi",
	}
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 400; trial++ {
		var b strings.Builder
		n := rng.Intn(25)
		for i := 0; i < n; i++ {
			b.WriteString(pieces[rng.Intn(len(pieces))])
		}
		src := b.String()
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("panic on %q: %v", src, r)
				}
			}()
			prog, err := Parse(src)
			if err != nil {
				return
			}
			in := &Interp{MaxSteps: 10_000}
			_ = in.Run(prog, Env{"x": Num(1), "y": Num(2), "v": Vec{1, 2, 3}})
		}()
	}
}

// The checker must be panic-free on anything the parser accepts.
func TestCheckNeverPanicsOnParsedPrograms(t *testing.T) {
	srcs := []string{
		"", "x = 1", "print", "formula f() = 1\nx = f()",
		"v = [1]\nv[x] = v[1]",
		"if true then\nelse\nend",
		"for i = 1 to 0 do\nend",
	}
	for _, src := range srcs {
		prog, err := Parse(src)
		if err != nil {
			t.Fatalf("%q: %v", src, err)
		}
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Errorf("Check panicked on %q: %v", src, r)
				}
			}()
			_ = Check(prog, []string{"x"})
			_ = Reads(prog)
			_ = Writes(prog)
			_ = Estimate(prog, 0)
			_ = Format(prog)
		}()
	}
}

// Deep nesting must not blow the stack at sane depths.
func TestDeeplyNestedProgram(t *testing.T) {
	depth := 200
	var b strings.Builder
	for i := 0; i < depth; i++ {
		b.WriteString("if true then\n")
	}
	b.WriteString("x = 1\n")
	for i := 0; i < depth; i++ {
		b.WriteString("end\n")
	}
	prog, err := Parse(b.String())
	if err != nil {
		t.Fatal(err)
	}
	env := Env{}
	if err := NewInterp().Run(prog, env); err != nil {
		t.Fatal(err)
	}
	if env["x"] != Num(1) {
		t.Error("nested execution lost the assignment")
	}
	// Deep expressions, too.
	expr := strings.Repeat("(1 + ", 300) + "0" + strings.Repeat(")", 300)
	prog2, err := Parse("y = " + expr)
	if err != nil {
		t.Fatal(err)
	}
	env2 := Env{}
	if err := NewInterp().Run(prog2, env2); err != nil {
		t.Fatal(err)
	}
	if env2["y"] != Num(300) {
		t.Errorf("y = %v", env2["y"])
	}
}
