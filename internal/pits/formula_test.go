package pits

import (
	"strings"
	"testing"
)

func TestFormulaBasics(t *testing.T) {
	env := run(t, `
formula square(x) = x * x
formula hyp(a, b) = sqrt(square(a) + square(b))
c = hyp(3, 4)
d = square(c + 1)
`, nil)
	wantNum(t, env, "c", 5)
	wantNum(t, env, "d", 36)
}

func TestFormulaSeesOnlyParamsAndConstants(t *testing.T) {
	prog := MustParse(`
leak = 10
formula bad(x) = x + leak
y = bad(1)
`)
	in := NewInterp()
	err := in.Run(prog, Env{})
	if err == nil || !strings.Contains(err.Error(), `undefined variable "leak"`) {
		t.Errorf("formula read the caller's variables: %v", err)
	}
	// Constants are fine.
	env := run(t, "formula circ(r) = 2 * pi * r\nc = circ(1)", nil)
	wantNum(t, env, "c", 6.283185307179586)
}

func TestFormulaArityAndUnknown(t *testing.T) {
	prog := MustParse("formula f(x, y) = x + y\nz = f(1)")
	in := NewInterp()
	if err := in.Run(prog, Env{}); err == nil || !strings.Contains(err.Error(), "takes 2 argument") {
		t.Errorf("err = %v", err)
	}
}

func TestFormulaCannotShadowBuiltin(t *testing.T) {
	prog := MustParse("formula sqrt(x) = x")
	in := NewInterp()
	if err := in.Run(prog, Env{}); err == nil || !strings.Contains(err.Error(), "shadows a builtin") {
		t.Errorf("err = %v", err)
	}
}

func TestFormulaRecursionStopped(t *testing.T) {
	// Self-reference is rejected statically; mutual recursion is
	// impossible (only earlier formulas are visible). The runtime depth
	// guard is the backstop for the self-call case that slips past the
	// interpreter (which registers the formula before any call).
	prog := MustParse("formula f(x) = f(x)\ny = f(1)")
	in := NewInterp()
	err := in.Run(prog, Env{})
	if err == nil || !strings.Contains(err.Error(), "depth exceeded") {
		t.Errorf("err = %v", err)
	}
	// And the checker rejects it before it ever runs.
	if err := Check(prog, nil); err == nil || !strings.Contains(err.Error(), `unknown function "f"`) {
		t.Errorf("checker: %v", err)
	}
}

func TestFormulaCheckerRules(t *testing.T) {
	cases := []struct{ src, want string }{
		{"formula f(x) = x\nformula f(y) = y", "redefined"},
		{"formula pi(x) = x", "shadows a constant"},
		{"formula abs(x) = x", "shadows a builtin"},
		{"formula f(x) = x + stray", `"stray" used before`},
		{"formula f(x) = g(x)", `unknown function "g"`},
		{"formula f(x) = x\ny = f(1, 2)", "takes 1 argument"},
	}
	for _, tc := range cases {
		prog, err := Parse(tc.src)
		if err != nil {
			t.Fatalf("%q: parse: %v", tc.src, err)
		}
		err = Check(prog, nil)
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%q: err = %v, want mention of %q", tc.src, err, tc.want)
		}
	}
	// A clean formula program passes.
	good := MustParse("formula f(x) = x * 2\nformula g(x, y) = f(x) + f(y)\nout = g(a, 3)")
	if err := Check(good, []string{"a"}); err != nil {
		t.Errorf("good program rejected: %v", err)
	}
}

func TestFormulaParserRules(t *testing.T) {
	if _, err := Parse("if c then\n  formula f(x) = x\nend"); err == nil ||
		!strings.Contains(err.Error(), "top level") {
		t.Errorf("nested formula accepted: %v", err)
	}
	if _, err := Parse("formula f(x, x) = x"); err == nil ||
		!strings.Contains(err.Error(), "duplicate parameter") {
		t.Errorf("duplicate parameter accepted: %v", err)
	}
	if _, err := Parse("formula f = 3"); err == nil {
		t.Error("formula without parens accepted")
	}
	// Zero-parameter formulas are legal (named constants).
	env := run(t, "formula answer() = 42\nx = answer()", nil)
	wantNum(t, env, "x", 42)
}

func TestFormulaFormatRoundTrip(t *testing.T) {
	src := "formula hyp(a, b) = sqrt(a ^ 2 + b ^ 2)\nc = hyp(3, 4)\n"
	p1 := MustParse(src)
	f1 := Format(p1)
	if f1 != src {
		t.Errorf("Format = %q, want %q", f1, src)
	}
	p2, err := Parse(f1)
	if err != nil {
		t.Fatal(err)
	}
	env := Env{}
	if err := NewInterp().Run(p2, env); err != nil {
		t.Fatal(err)
	}
	wantNum(t, env, "c", 5)
}

func TestFormulaEstimate(t *testing.T) {
	flat := Estimate(MustParse("y = x + 1"), 0)
	withFormula := Estimate(MustParse(`formula heavy(x) = sqrt(sqrt(sqrt(x)))
y = heavy(2) + heavy(3)`), 0)
	if withFormula <= flat {
		t.Errorf("formula calls not costed: %d vs %d", withFormula, flat)
	}
}

func TestFormulaWritesDoesNotIncludeName(t *testing.T) {
	p := MustParse("formula f(x) = x\ny = f(1)")
	for _, w := range Writes(p) {
		if w == "f" {
			t.Error("formula name listed as a write")
		}
	}
	if reads := Reads(p); len(reads) != 0 {
		t.Errorf("Reads = %v, want none", reads)
	}
}

func TestFormulaVectorArgs(t *testing.T) {
	env := run(t, `
formula rms(v) = sqrt(dot(v, v) / len(v))
r = rms([3, 4])
`, nil)
	wantNum(t, env, "r", 3.5355339059327378)
}
