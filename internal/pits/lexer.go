package pits

import (
	"strconv"
	"strings"
	"unicode"
)

// lexer turns PITS source text into tokens. Newlines are significant
// (they terminate statements, calculator style); '#' starts a comment
// running to end of line; ';' is an alternative statement terminator
// lexed as a newline token.
type lexer struct {
	src  []rune
	pos  int
	line int
	col  int
}

func newLexer(src string) *lexer {
	return &lexer{src: []rune(src), line: 1, col: 1}
}

func (l *lexer) peek() rune {
	if l.pos >= len(l.src) {
		return 0
	}
	return l.src[l.pos]
}

func (l *lexer) peek2() rune {
	if l.pos+1 >= len(l.src) {
		return 0
	}
	return l.src[l.pos+1]
}

func (l *lexer) advance() rune {
	r := l.src[l.pos]
	l.pos++
	if r == '\n' {
		l.line++
		l.col = 1
	} else {
		l.col++
	}
	return r
}

// Lex tokenises the whole source. A trailing newline token is always
// present before EOF so the parser can treat "statement newline" as the
// universal form.
func Lex(src string) ([]Token, error) {
	l := newLexer(src)
	var toks []Token
	for {
		tok, err := l.next()
		if err != nil {
			return nil, err
		}
		if tok.Kind == TokEOF {
			if len(toks) == 0 || toks[len(toks)-1].Kind != TokNewline {
				toks = append(toks, Token{Kind: TokNewline, Line: tok.Line, Col: tok.Col})
			}
			toks = append(toks, tok)
			return toks, nil
		}
		toks = append(toks, tok)
	}
}

func (l *lexer) next() (Token, error) {
	// Skip spaces, tabs, carriage returns and comments (not newlines).
	for {
		r := l.peek()
		if r == ' ' || r == '\t' || r == '\r' {
			l.advance()
			continue
		}
		if r == '#' {
			for l.peek() != '\n' && l.peek() != 0 {
				l.advance()
			}
			continue
		}
		break
	}
	line, col := l.line, l.col
	r := l.peek()
	switch {
	case r == 0:
		return Token{Kind: TokEOF, Line: line, Col: col}, nil
	case r == '\n' || r == ';':
		l.advance()
		return Token{Kind: TokNewline, Line: line, Col: col}, nil
	case unicode.IsDigit(r) || (r == '.' && unicode.IsDigit(l.peek2())):
		return l.number(line, col)
	case unicode.IsLetter(r) || r == '_':
		return l.ident(line, col)
	case r == '"':
		return l.str(line, col)
	}
	l.advance()
	two := func(kind TokKind) Token {
		l.advance()
		return Token{Kind: kind, Line: line, Col: col}
	}
	one := func(kind TokKind) Token {
		return Token{Kind: kind, Line: line, Col: col}
	}
	switch r {
	case '+':
		return one(TokPlus), nil
	case '-':
		return one(TokMinus), nil
	case '*':
		return one(TokStar), nil
	case '/':
		return one(TokSlash), nil
	case '%':
		return one(TokPercent), nil
	case '^':
		return one(TokCaret), nil
	case '(':
		return one(TokLParen), nil
	case ')':
		return one(TokRParen), nil
	case '[':
		return one(TokLBracket), nil
	case ']':
		return one(TokRBracket), nil
	case ',':
		return one(TokComma), nil
	case '=':
		if l.peek() == '=' {
			return two(TokEq), nil
		}
		return one(TokAssign), nil
	case '!':
		if l.peek() == '=' {
			return two(TokNe), nil
		}
		return Token{}, errAt(line, col, "unexpected '!' (use 'not' or '!=')")
	case '<':
		if l.peek() == '=' {
			return two(TokLe), nil
		}
		return one(TokLt), nil
	case '>':
		if l.peek() == '=' {
			return two(TokGe), nil
		}
		return one(TokGt), nil
	}
	return Token{}, errAt(line, col, "unexpected character %q", string(r))
}

func (l *lexer) number(line, col int) (Token, error) {
	var b strings.Builder
	seenDot, seenExp := false, false
	for {
		r := l.peek()
		switch {
		case unicode.IsDigit(r):
			b.WriteRune(l.advance())
		case r == '.' && !seenDot && !seenExp:
			seenDot = true
			b.WriteRune(l.advance())
		case (r == 'e' || r == 'E') && !seenExp:
			seenExp = true
			b.WriteRune(l.advance())
			if l.peek() == '+' || l.peek() == '-' {
				b.WriteRune(l.advance())
			}
		default:
			v, err := strconv.ParseFloat(b.String(), 64)
			if err != nil {
				return Token{}, errAt(line, col, "bad number %q", b.String())
			}
			return Token{Kind: TokNumber, Text: b.String(), Num: v, Line: line, Col: col}, nil
		}
	}
}

func (l *lexer) ident(line, col int) (Token, error) {
	var b strings.Builder
	for {
		r := l.peek()
		if unicode.IsLetter(r) || unicode.IsDigit(r) || r == '_' {
			b.WriteRune(l.advance())
			continue
		}
		break
	}
	text := b.String()
	if kind, isKW := keywords[text]; isKW {
		return Token{Kind: kind, Text: text, Line: line, Col: col}, nil
	}
	return Token{Kind: TokIdent, Text: text, Line: line, Col: col}, nil
}

func (l *lexer) str(line, col int) (Token, error) {
	l.advance() // opening quote
	var b strings.Builder
	for {
		r := l.peek()
		if r == 0 || r == '\n' {
			return Token{}, errAt(line, col, "unterminated string")
		}
		l.advance()
		if r == '"' {
			return Token{Kind: TokString, Text: b.String(), Line: line, Col: col}, nil
		}
		if r == '\\' {
			esc := l.peek()
			switch esc {
			case 'n':
				b.WriteRune('\n')
			case 't':
				b.WriteRune('\t')
			case '"':
				b.WriteRune('"')
			case '\\':
				b.WriteRune('\\')
			default:
				return Token{}, errAt(l.line, l.col, "bad escape \\%s", string(esc))
			}
			l.advance()
			continue
		}
		b.WriteRune(r)
	}
}
