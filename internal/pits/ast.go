package pits

// The AST of a PITS routine. Nodes carry their source line for error
// reporting and cost attribution.

// Program is a parsed PITS routine.
type Program struct {
	Stmts []Stmt
	// Source is the original text, retained for display in the
	// calculator panel's program window.
	Source string
}

// Stmt is a statement node.
type Stmt interface{ stmtNode() }

// Expr is an expression node.
type Expr interface{ exprNode() }

// Assign is "name = expr" or "name[index] = expr".
type Assign struct {
	Name  string
	Index Expr // nil for scalar assignment
	Value Expr
	Line  int
}

// If is "if cond then ... {elseif cond then ...} [else ...] end".
// Elifs are desugared by the parser into nested Ifs, so an If has at
// most one Else branch.
type If struct {
	Cond Expr
	Then []Stmt
	Else []Stmt // may be nil
	Line int
}

// While is "while cond do ... end".
type While struct {
	Cond Expr
	Body []Stmt
	Line int
}

// Repeat is "repeat n do ... end" — n evaluated once.
type Repeat struct {
	Count Expr
	Body  []Stmt
	Line  int
}

// For is "for i = a to b [step s] do ... end" with inclusive bounds.
type For struct {
	Var  string
	From Expr
	To   Expr
	Step Expr // nil means 1
	Body []Stmt
	Line int
}

// Print is "print e1, e2, ...".
type Print struct {
	Args []Expr
	Line int
}

// Formula is "formula name(p1, p2) = expr" — a pure, single-expression
// user-defined function (the calculator's formula keys). Formulas may
// only appear at the top level of a routine, before their first use,
// and their bodies see only the parameters and the constants.
type Formula struct {
	Name   string
	Params []string
	Body   Expr
	Line   int
}

func (*Assign) stmtNode()  {}
func (*If) stmtNode()      {}
func (*While) stmtNode()   {}
func (*Repeat) stmtNode()  {}
func (*For) stmtNode()     {}
func (*Print) stmtNode()   {}
func (*Formula) stmtNode() {}

// Number is a numeric literal.
type Number struct {
	Value float64
	Line  int
}

// Str is a string literal (print-only in practice).
type Str struct {
	Value string
	Line  int
}

// Bool is "true" or "false".
type Bool struct {
	Value bool
	Line  int
}

// Var references a variable.
type Var struct {
	Name string
	Line int
}

// Index is "base[index]" with 1-based indices (scientific convention).
type Index struct {
	Base  Expr
	Index Expr
	Line  int
}

// VecLit is "[e1, e2, ...]".
type VecLit struct {
	Elems []Expr
	Line  int
}

// Call is "fn(args...)" where fn is a builtin function name.
type Call struct {
	Fn   string
	Args []Expr
	Line int
}

// Unary is "-x" or "not x".
type Unary struct {
	Op   TokKind // TokMinus or TokNot
	X    Expr
	Line int
}

// Binary is "x op y" for arithmetic, comparison and logical operators.
type Binary struct {
	Op   TokKind
	X, Y Expr
	Line int
}

func (*Number) exprNode() {}
func (*Str) exprNode()    {}
func (*Bool) exprNode()   {}
func (*Var) exprNode()    {}
func (*Index) exprNode()  {}
func (*VecLit) exprNode() {}
func (*Call) exprNode()   {}
func (*Unary) exprNode()  {}
func (*Binary) exprNode() {}
