package pits

import (
	"math"
	"sort"
)

// Builtin is one entry of the calculator's scientific function panel.
type Builtin struct {
	Name string
	// Arity is the required argument count; -1 means variadic (>= 1).
	Arity int
	// Cost is the abstract operation count charged per call, used by
	// the work estimator the scheduler consumes.
	Cost int64
	// Help is the one-line description shown on the calculator panel.
	Help string
	fn   func(line int, args []Value) (Value, error)
}

// num extracts a scalar argument.
func num(line int, fn string, i int, v Value) (float64, error) {
	n, ok := v.(Num)
	if !ok {
		return 0, rtErr(line, "%s: argument %d must be a number, got %s", fn, i+1, v.TypeName())
	}
	return float64(n), nil
}

// vec extracts a vector argument.
func vec(line int, fn string, i int, v Value) (Vec, error) {
	w, ok := v.(Vec)
	if !ok {
		return nil, rtErr(line, "%s: argument %d must be a vector, got %s", fn, i+1, v.TypeName())
	}
	return w, nil
}

// unary wraps a float->float math function with domain checking.
func unary(name string, cost int64, help string, f func(float64) float64) Builtin {
	return Builtin{Name: name, Arity: 1, Cost: cost, Help: help,
		fn: func(line int, args []Value) (Value, error) {
			x, err := num(line, name, 0, args[0])
			if err != nil {
				return nil, err
			}
			r := f(x)
			if math.IsNaN(r) || math.IsInf(r, 0) {
				return nil, rtErr(line, "%s(%v) is not a finite number", name, Num(x))
			}
			return Num(r), nil
		}}
}

// builtins returns the calculator's function table. It is a function,
// not a package variable, so each Interp can own an isolated copy
// (rand is stateful per interpreter).
func builtins() map[string]Builtin {
	tbl := map[string]Builtin{}
	add := func(b Builtin) { tbl[b.Name] = b }

	add(unary("sqrt", 4, "square root", math.Sqrt))
	add(unary("abs", 1, "absolute value", math.Abs))
	add(unary("sin", 8, "sine (radians)", math.Sin))
	add(unary("cos", 8, "cosine (radians)", math.Cos))
	add(unary("tan", 8, "tangent (radians)", math.Tan))
	add(unary("asin", 10, "arcsine", math.Asin))
	add(unary("acos", 10, "arccosine", math.Acos))
	add(unary("atan", 10, "arctangent", math.Atan))
	add(unary("exp", 8, "e^x", math.Exp))
	add(unary("ln", 8, "natural log", math.Log))
	add(unary("log10", 8, "base-10 log", math.Log10))
	add(unary("floor", 1, "round down", math.Floor))
	add(unary("ceil", 1, "round up", math.Ceil))
	add(unary("round", 1, "round to nearest", math.Round))

	add(Builtin{Name: "atan2", Arity: 2, Cost: 10, Help: "atan2(y, x)",
		fn: func(line int, args []Value) (Value, error) {
			y, err := num(line, "atan2", 0, args[0])
			if err != nil {
				return nil, err
			}
			x, err := num(line, "atan2", 1, args[1])
			if err != nil {
				return nil, err
			}
			return Num(math.Atan2(y, x)), nil
		}})
	add(Builtin{Name: "pow", Arity: 2, Cost: 6, Help: "x raised to y",
		fn: func(line int, args []Value) (Value, error) {
			x, err := num(line, "pow", 0, args[0])
			if err != nil {
				return nil, err
			}
			y, err := num(line, "pow", 1, args[1])
			if err != nil {
				return nil, err
			}
			r := math.Pow(x, y)
			if math.IsNaN(r) || math.IsInf(r, 0) {
				return nil, rtErr(line, "pow(%v, %v) is not a finite number", Num(x), Num(y))
			}
			return Num(r), nil
		}})
	add(Builtin{Name: "mod", Arity: 2, Cost: 2, Help: "floating remainder",
		fn: func(line int, args []Value) (Value, error) {
			x, err := num(line, "mod", 0, args[0])
			if err != nil {
				return nil, err
			}
			y, err := num(line, "mod", 1, args[1])
			if err != nil {
				return nil, err
			}
			if y == 0 {
				return nil, rtErr(line, "mod by zero")
			}
			return Num(math.Mod(x, y)), nil
		}})

	minmax := func(name string, better func(a, b float64) bool) Builtin {
		return Builtin{Name: name, Arity: -1, Cost: 2, Help: name + " of numbers or one vector",
			fn: func(line int, args []Value) (Value, error) {
				var xs []float64
				if len(args) == 1 {
					if v, ok := args[0].(Vec); ok {
						if len(v) == 0 {
							return nil, rtErr(line, "%s of empty vector", name)
						}
						xs = v
					}
				}
				if xs == nil {
					for i, a := range args {
						x, err := num(line, name, i, a)
						if err != nil {
							return nil, err
						}
						xs = append(xs, x)
					}
				}
				best := xs[0]
				for _, x := range xs[1:] {
					if better(x, best) {
						best = x
					}
				}
				return Num(best), nil
			}}
	}
	add(minmax("min", func(a, b float64) bool { return a < b }))
	add(minmax("max", func(a, b float64) bool { return a > b }))

	add(Builtin{Name: "len", Arity: 1, Cost: 1, Help: "vector length",
		fn: func(line int, args []Value) (Value, error) {
			v, err := vec(line, "len", 0, args[0])
			if err != nil {
				return nil, err
			}
			return Num(len(v)), nil
		}})
	add(Builtin{Name: "sum", Arity: 1, Cost: 2, Help: "sum of vector elements",
		fn: func(line int, args []Value) (Value, error) {
			v, err := vec(line, "sum", 0, args[0])
			if err != nil {
				return nil, err
			}
			s := 0.0
			for _, x := range v {
				s += x
			}
			return Num(s), nil
		}})
	add(Builtin{Name: "mean", Arity: 1, Cost: 3, Help: "mean of vector elements",
		fn: func(line int, args []Value) (Value, error) {
			v, err := vec(line, "mean", 0, args[0])
			if err != nil {
				return nil, err
			}
			if len(v) == 0 {
				return nil, rtErr(line, "mean of empty vector")
			}
			s := 0.0
			for _, x := range v {
				s += x
			}
			return Num(s / float64(len(v))), nil
		}})
	add(Builtin{Name: "dot", Arity: 2, Cost: 4, Help: "dot product",
		fn: func(line int, args []Value) (Value, error) {
			u, err := vec(line, "dot", 0, args[0])
			if err != nil {
				return nil, err
			}
			w, err := vec(line, "dot", 1, args[1])
			if err != nil {
				return nil, err
			}
			if len(u) != len(w) {
				return nil, rtErr(line, "dot: vector lengths %d and %d differ", len(u), len(w))
			}
			s := 0.0
			for i := range u {
				s += u[i] * w[i]
			}
			return Num(s), nil
		}})
	add(Builtin{Name: "norm", Arity: 1, Cost: 6, Help: "Euclidean norm",
		fn: func(line int, args []Value) (Value, error) {
			v, err := vec(line, "norm", 0, args[0])
			if err != nil {
				return nil, err
			}
			s := 0.0
			for _, x := range v {
				s += x * x
			}
			return Num(math.Sqrt(s)), nil
		}})
	add(Builtin{Name: "zeros", Arity: 1, Cost: 2, Help: "vector of n zeros",
		fn: func(line int, args []Value) (Value, error) {
			n, err := num(line, "zeros", 0, args[0])
			if err != nil {
				return nil, err
			}
			if n < 0 || n != math.Trunc(n) || n > 1e7 {
				return nil, rtErr(line, "zeros: bad size %v", Num(n))
			}
			return make(Vec, int(n)), nil
		}})
	add(Builtin{Name: "ones", Arity: 1, Cost: 2, Help: "vector of n ones",
		fn: func(line int, args []Value) (Value, error) {
			n, err := num(line, "ones", 0, args[0])
			if err != nil {
				return nil, err
			}
			if n < 0 || n != math.Trunc(n) || n > 1e7 {
				return nil, rtErr(line, "ones: bad size %v", Num(n))
			}
			v := make(Vec, int(n))
			for i := range v {
				v[i] = 1
			}
			return v, nil
		}})
	add(Builtin{Name: "sort", Arity: 1, Cost: 8, Help: "ascending copy of vector",
		fn: func(line int, args []Value) (Value, error) {
			v, err := vec(line, "sort", 0, args[0])
			if err != nil {
				return nil, err
			}
			out := append(Vec(nil), v...)
			sort.Float64s(out)
			return out, nil
		}})
	return tbl
}

// Builtins lists the calculator's function panel entries sorted by
// name, for documentation and the panel renderer.
func Builtins() []Builtin {
	tbl := builtins()
	names := make([]string, 0, len(tbl))
	for n := range tbl {
		names = append(names, n)
	}
	sort.Strings(names)
	out := make([]Builtin, 0, len(names))
	for _, n := range names {
		out = append(out, tbl[n])
	}
	return out
}

// Constants available to every routine: the calculator's constant keys.
var Constants = map[string]float64{
	"pi": math.Pi,
	"e":  math.E,
}
