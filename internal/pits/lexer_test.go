package pits

import (
	"testing"
)

func kinds(toks []Token) []TokKind {
	out := make([]TokKind, len(toks))
	for i, t := range toks {
		out[i] = t.Kind
	}
	return out
}

func TestLexSimpleAssignment(t *testing.T) {
	toks, err := Lex("x = 3.5 + y")
	if err != nil {
		t.Fatal(err)
	}
	want := []TokKind{TokIdent, TokAssign, TokNumber, TokPlus, TokIdent, TokNewline, TokEOF}
	got := kinds(toks)
	if len(got) != len(want) {
		t.Fatalf("kinds = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("tok %d = %v, want %v", i, got[i], want[i])
		}
	}
	if toks[2].Num != 3.5 {
		t.Errorf("number = %v", toks[2].Num)
	}
}

func TestLexKeywordsVsIdents(t *testing.T) {
	toks, err := Lex("if ifx then thenx end")
	if err != nil {
		t.Fatal(err)
	}
	want := []TokKind{TokIf, TokIdent, TokThen, TokIdent, TokEnd}
	for i, k := range want {
		if toks[i].Kind != k {
			t.Errorf("tok %d = %v, want %v", i, toks[i].Kind, k)
		}
	}
}

func TestLexOperators(t *testing.T) {
	toks, err := Lex("== != <= >= < > = + - * / % ^ ( ) [ ] ,")
	if err != nil {
		t.Fatal(err)
	}
	want := []TokKind{TokEq, TokNe, TokLe, TokGe, TokLt, TokGt, TokAssign,
		TokPlus, TokMinus, TokStar, TokSlash, TokPercent, TokCaret,
		TokLParen, TokRParen, TokLBracket, TokRBracket, TokComma}
	for i, k := range want {
		if toks[i].Kind != k {
			t.Errorf("tok %d = %v, want %v", i, toks[i].Kind, k)
		}
	}
}

func TestLexNumbers(t *testing.T) {
	cases := map[string]float64{
		"0":      0,
		"42":     42,
		"3.25":   3.25,
		".5":     0.5,
		"1e3":    1000,
		"2.5e-2": 0.025,
		"1E+2":   100,
	}
	for src, want := range cases {
		toks, err := Lex(src)
		if err != nil {
			t.Errorf("%q: %v", src, err)
			continue
		}
		if toks[0].Kind != TokNumber || toks[0].Num != want {
			t.Errorf("%q -> %v (%v)", src, toks[0].Num, toks[0].Kind)
		}
	}
}

func TestLexCommentsAndSemicolons(t *testing.T) {
	toks, err := Lex("x = 1 # set x\ny = 2; z = 3")
	if err != nil {
		t.Fatal(err)
	}
	newlines := 0
	for _, tok := range toks {
		if tok.Kind == TokNewline {
			newlines++
		}
	}
	if newlines != 3 { // after x=1, after y=2 (';'), after z=3 (implicit final)
		t.Errorf("newlines = %d, want 3: %v", newlines, kinds(toks))
	}
}

func TestLexStrings(t *testing.T) {
	toks, err := Lex(`print "a\nb\t\"q\\"`)
	if err != nil {
		t.Fatal(err)
	}
	if toks[1].Kind != TokString || toks[1].Text != "a\nb\t\"q\\" {
		t.Errorf("string = %q", toks[1].Text)
	}
}

func TestLexErrors(t *testing.T) {
	for _, src := range []string{"x = @", `"unterminated`, "x = 1 ! 2", `"bad \q escape"`} {
		if _, err := Lex(src); err == nil {
			t.Errorf("%q lexed without error", src)
		}
	}
}

func TestLexPositions(t *testing.T) {
	toks, err := Lex("a = 1\n  b = 2")
	if err != nil {
		t.Fatal(err)
	}
	// Token "b" is on line 2, col 3.
	var b Token
	for _, tok := range toks {
		if tok.Kind == TokIdent && tok.Text == "b" {
			b = tok
		}
	}
	if b.Line != 2 || b.Col != 3 {
		t.Errorf("b at %d:%d, want 2:3", b.Line, b.Col)
	}
}

func TestSyntaxErrorFormat(t *testing.T) {
	_, err := Lex("x = @")
	se, ok := err.(*SyntaxError)
	if !ok {
		t.Fatalf("error type %T", err)
	}
	if se.Line != 1 || se.Col != 5 {
		t.Errorf("position %d:%d", se.Line, se.Col)
	}
	if se.Error() == "" {
		t.Error("empty error text")
	}
}
