package pits

import (
	"fmt"
	"strconv"
	"strings"
)

// Value is a PITS runtime value: a scalar number, a vector, a boolean
// or a string (strings exist for print labels).
type Value interface {
	// TypeName is the user-visible type name used in error messages.
	TypeName() string
	String() string
}

// Num is a floating-point scalar, the calculator's native type.
type Num float64

// Vec is a vector of floats with 1-based user-level indexing.
type Vec []float64

// BoolV is a boolean value.
type BoolV bool

// StrV is a string value.
type StrV string

// TypeName implements Value.
func (Num) TypeName() string { return "number" }

// TypeName implements Value.
func (Vec) TypeName() string { return "vector" }

// TypeName implements Value.
func (BoolV) TypeName() string { return "boolean" }

// TypeName implements Value.
func (StrV) TypeName() string { return "string" }

// String formats the number the way a calculator display would:
// integers without a decimal point, others with up to 10 significant
// digits.
func (n Num) String() string {
	f := float64(n)
	if f == float64(int64(f)) && f < 1e15 && f > -1e15 {
		return strconv.FormatInt(int64(f), 10)
	}
	return strconv.FormatFloat(f, 'g', 10, 64)
}

// String implements Value.
func (v Vec) String() string {
	parts := make([]string, len(v))
	for i, x := range v {
		parts[i] = Num(x).String()
	}
	return "[" + strings.Join(parts, ", ") + "]"
}

// String implements Value.
func (b BoolV) String() string {
	if b {
		return "true"
	}
	return "false"
}

// String implements Value.
func (s StrV) String() string { return string(s) }

// Env is a variable environment. PITS has a single flat scope per
// routine — the calculator's variable windows.
type Env map[string]Value

// Clone returns a shallow copy of the environment (vectors are copied
// so callers can't alias task-local state).
func (e Env) Clone() Env {
	c := make(Env, len(e))
	for k, v := range e {
		if vec, ok := v.(Vec); ok {
			c[k] = append(Vec(nil), vec...)
			continue
		}
		c[k] = v
	}
	return c
}

// RuntimeError is an execution error with the source line it occurred
// on.
type RuntimeError struct {
	Line int
	Msg  string
}

// Error implements error.
func (e *RuntimeError) Error() string {
	return fmt.Sprintf("pits: line %d: %s", e.Line, e.Msg)
}

func rtErr(line int, format string, args ...any) error {
	return &RuntimeError{Line: line, Msg: fmt.Sprintf(format, args...)}
}
