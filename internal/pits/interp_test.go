package pits

import (
	"math"
	"strings"
	"testing"
)

// run executes src with the given inputs and returns the final env.
func run(t *testing.T, src string, inputs Env) Env {
	t.Helper()
	prog, err := Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	env := inputs.Clone()
	if env == nil {
		env = Env{}
	}
	in := NewInterp()
	if err := in.Run(prog, env); err != nil {
		t.Fatalf("run: %v", err)
	}
	return env
}

func wantNum(t *testing.T, env Env, name string, want float64) {
	t.Helper()
	v, ok := env[name]
	if !ok {
		t.Fatalf("%s undefined", name)
	}
	n, ok := v.(Num)
	if !ok {
		t.Fatalf("%s is %s", name, v.TypeName())
	}
	if math.Abs(float64(n)-want) > 1e-9 {
		t.Errorf("%s = %v, want %v", name, float64(n), want)
	}
}

func TestArithmeticAndPrecedence(t *testing.T) {
	env := run(t, `
a = 2 + 3 * 4
b = (2 + 3) * 4
c = 2 ^ 3 ^ 2
d = -2 ^ 2
e2 = 10 % 3
f = 7 / 2
`, nil)
	wantNum(t, env, "a", 14)
	wantNum(t, env, "b", 20)
	wantNum(t, env, "c", 512) // right-assoc: 2^(3^2)
	wantNum(t, env, "d", -4)  // unary binds tighter: (-2)^2? No: -(2^2)
	wantNum(t, env, "e2", 1)
	wantNum(t, env, "f", 3.5)
}

func TestUnaryMinusBindsLooserThanPower(t *testing.T) {
	// -2^2: our grammar parses unary before binary so -(2)^2 = (-2)^2 = 4?
	// The test above pinned -4; verify which way the parser actually
	// resolved it and that it is stable: -2^2 must equal d above.
	env := run(t, "x = -2 ^ 2\ny = (-2) ^ 2", nil)
	wantNum(t, env, "y", 4)
	x := float64(env["x"].(Num))
	if x != -4 && x != 4 {
		t.Errorf("x = %v", x)
	}
}

func TestComparisonAndLogic(t *testing.T) {
	env := run(t, `
a = 1 < 2
b = 2 <= 1
c = 1 == 1 and 2 != 3
d = false or not false
`, nil)
	if env["a"] != BoolV(true) || env["b"] != BoolV(false) ||
		env["c"] != BoolV(true) || env["d"] != BoolV(true) {
		t.Errorf("logic: a=%v b=%v c=%v d=%v", env["a"], env["b"], env["c"], env["d"])
	}
}

func TestShortCircuit(t *testing.T) {
	// Division by zero on the right side must not be reached.
	env := run(t, `
x = 0
ok = x == 0 or 1 / x > 1
ok2 = x != 0 and 1 / x > 1
`, nil)
	if env["ok"] != BoolV(true) || env["ok2"] != BoolV(false) {
		t.Errorf("short circuit failed: %v %v", env["ok"], env["ok2"])
	}
}

func TestIfElseChain(t *testing.T) {
	src := `
if x < 0 then
  sign = -1
elseif x == 0 then
  sign = 0
else
  sign = 1
end
`
	for x, want := range map[float64]float64{-5: -1, 0: 0, 7: 1} {
		env := run(t, src, Env{"x": Num(x)})
		wantNum(t, env, "sign", want)
	}
}

func TestWhileLoop(t *testing.T) {
	env := run(t, `
n = 10
total = 0
i = 1
while i <= n do
  total = total + i
  i = i + 1
end
`, nil)
	wantNum(t, env, "total", 55)
}

func TestRepeatLoop(t *testing.T) {
	env := run(t, `
x = 1
repeat 8 do
  x = x * 2
end
`, nil)
	wantNum(t, env, "x", 256)
}

func TestForLoopWithStep(t *testing.T) {
	env := run(t, `
s = 0
for i = 10 to 2 step -2 do
  s = s + i
end
`, nil)
	wantNum(t, env, "s", 30) // 10+8+6+4+2
}

func TestForLoopZeroTrips(t *testing.T) {
	env := run(t, `
s = 42
for i = 5 to 1 do
  s = 0
end
`, nil)
	wantNum(t, env, "s", 42)
}

func TestVectors(t *testing.T) {
	env := run(t, `
v = [1, 2, 3]
v[2] = 20
first = v[1]
s = sum(v)
scaled = v * 2
combo = v + [10, 10, 10]
n = len(v)
`, nil)
	wantNum(t, env, "first", 1)
	wantNum(t, env, "s", 24)
	wantNum(t, env, "n", 3)
	if got := env["scaled"].(Vec); got[1] != 40 {
		t.Errorf("scaled = %v", got)
	}
	if got := env["combo"].(Vec); got[0] != 11 {
		t.Errorf("combo = %v", got)
	}
}

func TestVectorAssignmentCopies(t *testing.T) {
	env := run(t, `
a = [1, 2]
b = a
b[1] = 99
keep = a[1]
`, nil)
	wantNum(t, env, "keep", 1)
}

func TestNewtonRaphsonSqrtFigure4(t *testing.T) {
	// The paper's Figure 4 task: x = sqrt(a) by Newton–Raphson.
	src := `
# SquareRoot task (Figure 4): compute x such that x*x = a
x = a
eps = 1e-12
err = 1
while err > eps do
  xold = x
  x = 0.5 * (xold + a / xold)
  err = abs(x - xold)
end
`
	env := run(t, src, Env{"a": Num(2)})
	wantNum(t, env, "x", math.Sqrt2)
	env = run(t, src, Env{"a": Num(144)})
	wantNum(t, env, "x", 12)
}

func TestBuiltins(t *testing.T) {
	env := run(t, `
a = sqrt(16)
b = abs(-3)
c = min(4, 2, 9)
d = max([1, 7, 3])
e2 = floor(2.9)
f = ceil(2.1)
g = round(2.5)
h = pow(2, 10)
i2 = atan2(1, 1)
j = mod(7, 3)
k = dot([1, 2], [3, 4])
l = norm([3, 4])
m = mean([2, 4, 6])
n = ln(e)
o = log10(1000)
p = zeros(3)
q = ones(2)
r = sort([3, 1, 2])
`, nil)
	wantNum(t, env, "a", 4)
	wantNum(t, env, "b", 3)
	wantNum(t, env, "c", 2)
	wantNum(t, env, "d", 7)
	wantNum(t, env, "e2", 2)
	wantNum(t, env, "f", 3)
	wantNum(t, env, "g", 3)
	wantNum(t, env, "h", 1024)
	wantNum(t, env, "i2", math.Pi/4)
	wantNum(t, env, "j", 1)
	wantNum(t, env, "k", 11)
	wantNum(t, env, "l", 5)
	wantNum(t, env, "m", 4)
	wantNum(t, env, "n", 1)
	wantNum(t, env, "o", 3)
	if v := env["p"].(Vec); len(v) != 3 || v[0] != 0 {
		t.Errorf("zeros = %v", v)
	}
	if v := env["q"].(Vec); len(v) != 2 || v[1] != 1 {
		t.Errorf("ones = %v", v)
	}
	if v := env["r"].(Vec); v[0] != 1 || v[2] != 3 {
		t.Errorf("sort = %v", v)
	}
}

func TestConstants(t *testing.T) {
	env := run(t, "tau = 2 * pi\nen = e", nil)
	wantNum(t, env, "tau", 2*math.Pi)
	wantNum(t, env, "en", math.E)
}

func TestPrintCollectsOutput(t *testing.T) {
	prog := MustParse(`print "x is", 42
print [1, 2]
print`)
	in := NewInterp()
	if err := in.Run(prog, Env{}); err != nil {
		t.Fatal(err)
	}
	out := in.Output()
	if len(out) != 3 || out[0] != "x is 42" || out[1] != "[1, 2]" || out[2] != "" {
		t.Errorf("output = %q", out)
	}
}

func TestRandDeterministicPerSeed(t *testing.T) {
	prog := MustParse("x = rand()\ny = rand()")
	run1 := Env{}
	in1 := &Interp{Seed: 7}
	if err := in1.Run(prog, run1); err != nil {
		t.Fatal(err)
	}
	run2 := Env{}
	in2 := &Interp{Seed: 7}
	if err := in2.Run(prog, run2); err != nil {
		t.Fatal(err)
	}
	if run1["x"] != run2["x"] || run1["y"] != run2["y"] {
		t.Error("same seed produced different rand() streams")
	}
	run3 := Env{}
	in3 := &Interp{Seed: 8}
	if err := in3.Run(prog, run3); err != nil {
		t.Fatal(err)
	}
	if run1["x"] == run3["x"] && run1["y"] == run3["y"] {
		t.Error("different seeds produced identical rand() streams")
	}
	if x := float64(run1["x"].(Num)); x < 0 || x >= 1 {
		t.Errorf("rand out of range: %v", x)
	}
}

func TestStepLimitStopsInfiniteLoop(t *testing.T) {
	prog := MustParse("x = 0\nwhile true do\n  x = x + 1\nend")
	in := &Interp{MaxSteps: 1000}
	err := in.Run(prog, Env{})
	if err == nil {
		t.Fatal("infinite loop not stopped")
	}
	if !strings.Contains(err.Error(), "step limit") {
		t.Errorf("error = %v", err)
	}
}

func TestRuntimeErrors(t *testing.T) {
	cases := []struct {
		name   string
		src    string
		inputs Env
		want   string
	}{
		{"undefined variable", "y = x + 1", nil, "undefined variable"},
		{"division by zero", "y = 1 / 0", nil, "division by zero"},
		{"modulo by zero", "y = 1 % 0", nil, "modulo by zero"},
		{"bad index type", "v = [1]\ny = v[true]", nil, "index must be a number"},
		{"fractional index", "v = [1]\ny = v[1.5]", nil, "integer"},
		{"index out of range", "v = [1, 2]\ny = v[3]", nil, "out of range"},
		{"index zero (1-based)", "v = [1, 2]\ny = v[0]", nil, "out of range"},
		{"index non-vector", "x = 5\ny = x[1]", nil, "cannot index"},
		{"assign into undefined vector", "v[1] = 5", nil, "undefined vector"},
		{"assign into scalar", "x = 1\nx[1] = 5", nil, "not a vector"},
		{"unknown function", "y = nosuch(1)", nil, "unknown function"},
		{"wrong arity", "y = sqrt(1, 2)", nil, "takes 1 argument"},
		{"sqrt domain", "y = sqrt(-1)", nil, "not a finite"},
		{"bad condition type", "if 1 then\n  x = 1\nend", nil, "condition must be a boolean"},
		{"vector length mismatch", "y = [1, 2] + [1, 2, 3]", nil, "lengths"},
		{"repeat negative", "repeat -1 do\n  x = 1\nend", nil, "repeat count"},
		{"for zero step", "for i = 1 to 3 step 0 do\n  x = 1\nend", nil, "non-zero"},
		{"bool arithmetic", "y = true + 1", nil, "cannot apply"},
		{"negate string", `y = -"a"`, nil, "cannot negate"},
		{"not a number", "y = not 3", nil, "'not' needs a boolean"},
		{"compare mixed", "y = 1 < true", nil, "cannot compare"},
		{"eq mixed", "y = 1 == true", nil, "cannot compare"},
		{"min empty vector", "y = min([])", nil, "empty vector"},
		{"dot mismatch", "y = dot([1], [1, 2])", nil, "lengths"},
		{"zeros negative", "y = zeros(-2)", nil, "bad size"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			prog, err := Parse(tc.src)
			if err != nil {
				t.Fatalf("parse: %v", err)
			}
			in := NewInterp()
			env := tc.inputs.Clone()
			if env == nil {
				env = Env{}
			}
			err = in.Run(prog, env)
			if err == nil {
				t.Fatal("no error")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

func TestRuntimeErrorHasLine(t *testing.T) {
	prog := MustParse("a = 1\nb = 2\nc = 1 / 0")
	in := NewInterp()
	err := in.Run(prog, Env{})
	re, ok := err.(*RuntimeError)
	if !ok {
		t.Fatalf("error type %T", err)
	}
	if re.Line != 3 {
		t.Errorf("line = %d, want 3", re.Line)
	}
}

func TestOpsCounting(t *testing.T) {
	prog := MustParse("x = 1 + 2")
	in := NewInterp()
	if err := in.Run(prog, Env{}); err != nil {
		t.Fatal(err)
	}
	if in.Ops() < 2 { // one add, one assign at minimum
		t.Errorf("ops = %d", in.Ops())
	}
	// A loop body scales the count.
	loop := MustParse("s = 0\nrepeat 100 do\n  s = s + 1\nend")
	in2 := NewInterp()
	if err := in2.Run(loop, Env{}); err != nil {
		t.Fatal(err)
	}
	if in2.Ops() < 200 {
		t.Errorf("loop ops = %d, want >= 200", in2.Ops())
	}
	if in2.Ops() > 1000 {
		t.Errorf("loop ops = %d, implausibly high", in2.Ops())
	}
}

func TestEnvCloneIsolation(t *testing.T) {
	orig := Env{"v": Vec{1, 2}, "x": Num(5)}
	c := orig.Clone()
	c["v"].(Vec)[0] = 99
	c["x"] = Num(6)
	if orig["v"].(Vec)[0] != 1 {
		t.Error("clone aliases vector")
	}
	if orig["x"] != Num(5) {
		t.Error("clone aliases scalar map entry")
	}
}

func TestValueStrings(t *testing.T) {
	cases := map[string]Value{
		"3":        Num(3),
		"3.5":      Num(3.5),
		"[1, 2.5]": Vec{1, 2.5},
		"true":     BoolV(true),
		"false":    BoolV(false),
		"hi":       StrV("hi"),
		"1e+20":    Num(1e20),
		"-7":       Num(-7),
	}
	for want, v := range cases {
		if got := v.String(); got != want {
			t.Errorf("%T.String() = %q, want %q", v, got, want)
		}
	}
}
