package machine

import (
	"math/bits"
	"testing"
	"testing/quick"
)

func TestHypercubeStructure(t *testing.T) {
	for dim := 0; dim <= 4; dim++ {
		h, err := Hypercube(dim)
		if err != nil {
			t.Fatalf("dim %d: %v", dim, err)
		}
		n := 1 << dim
		if h.N != n {
			t.Errorf("dim %d: N = %d", dim, h.N)
		}
		if links := h.NumLinks(); links != dim*n/2 {
			t.Errorf("dim %d: links = %d, want %d", dim, links, dim*n/2)
		}
		for p := 0; p < n; p++ {
			if h.Degree(p) != dim {
				t.Errorf("dim %d: degree(%d) = %d", dim, p, h.Degree(p))
			}
		}
		if d := h.Diameter(); d != dim {
			t.Errorf("dim %d: diameter = %d", dim, d)
		}
	}
}

// The defining property of a hypercube: hop distance equals Hamming
// distance of the processor indices.
func TestHypercubeHopsAreHammingDistance(t *testing.T) {
	h, err := Hypercube(4)
	if err != nil {
		t.Fatal(err)
	}
	f := func(a, b uint8) bool {
		p, q := int(a%16), int(b%16)
		return h.Hops(p, q) == bits.OnesCount(uint(p^q))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Mesh distance is Manhattan distance.
func TestMeshHopsAreManhattan(t *testing.T) {
	rows, cols := 4, 5
	m, err := Mesh(rows, cols)
	if err != nil {
		t.Fatal(err)
	}
	abs := func(x int) int {
		if x < 0 {
			return -x
		}
		return x
	}
	for p := 0; p < m.N; p++ {
		for q := 0; q < m.N; q++ {
			pr, pc := p/cols, p%cols
			qr, qc := q/cols, q%cols
			want := abs(pr-qr) + abs(pc-qc)
			if got := m.Hops(p, q); got != want {
				t.Fatalf("Hops(%d,%d) = %d, want %d", p, q, got, want)
			}
		}
	}
}

func TestTorusWrapsAround(t *testing.T) {
	m, err := Torus(4, 4)
	if err != nil {
		t.Fatal(err)
	}
	// Opposite corners are 2 hops in a 4x4 torus (wrap both ways).
	if got := m.Hops(0, 15); got != 2 {
		t.Errorf("Hops(0,15) = %d, want 2", got)
	}
	if d := m.Diameter(); d != 4 {
		t.Errorf("diameter = %d, want 4", d)
	}
}

func TestStarProperties(t *testing.T) {
	s, err := Star(8)
	if err != nil {
		t.Fatal(err)
	}
	if s.Degree(0) != 7 {
		t.Errorf("hub degree = %d", s.Degree(0))
	}
	for i := 1; i < 8; i++ {
		if s.Degree(i) != 1 {
			t.Errorf("satellite %d degree = %d", i, s.Degree(i))
		}
		if s.Hops(0, i) != 1 {
			t.Errorf("Hops(0,%d) = %d", i, s.Hops(0, i))
		}
	}
	if s.Hops(1, 2) != 2 {
		t.Errorf("satellite-satellite hops = %d, want 2", s.Hops(1, 2))
	}
	if d := s.Diameter(); d != 2 {
		t.Errorf("diameter = %d", d)
	}
}

func TestTreeProperties(t *testing.T) {
	tr, err := Tree(2, 3)
	if err != nil {
		t.Fatal(err)
	}
	if tr.N != 7 {
		t.Fatalf("N = %d, want 7", tr.N)
	}
	if tr.NumLinks() != 6 {
		t.Errorf("links = %d, want 6", tr.NumLinks())
	}
	// Leaf 3 to leaf 6 passes through the root: 2 up + 2 down.
	if got := tr.Hops(3, 6); got != 4 {
		t.Errorf("Hops(3,6) = %d, want 4", got)
	}
}

func TestRingChainFull(t *testing.T) {
	r, _ := Ring(6)
	if r.Hops(0, 3) != 3 || r.Hops(0, 5) != 1 {
		t.Errorf("ring hops wrong: %d %d", r.Hops(0, 3), r.Hops(0, 5))
	}
	c, _ := Chain(6)
	if c.Hops(0, 5) != 5 {
		t.Errorf("chain hops = %d", c.Hops(0, 5))
	}
	f, _ := Full(6)
	if f.Diameter() != 1 {
		t.Errorf("full diameter = %d", f.Diameter())
	}
	if f.NumLinks() != 15 {
		t.Errorf("full links = %d", f.NumLinks())
	}
}

func TestSingleProcessorTopologies(t *testing.T) {
	for _, mk := range []func() (*Topology, error){
		func() (*Topology, error) { return Hypercube(0) },
		func() (*Topology, error) { return Mesh(1, 1) },
		func() (*Topology, error) { return Star(1) },
		func() (*Topology, error) { return Ring(1) },
		func() (*Topology, error) { return Full(1) },
		func() (*Topology, error) { return Tree(2, 1) },
	} {
		topo, err := mk()
		if err != nil {
			t.Fatal(err)
		}
		if topo.N != 1 || topo.Diameter() != 0 || !topo.IsConnected() {
			t.Errorf("%s: bad single-PE topology", topo.Name)
		}
		if topo.AvgDist() != 0 {
			t.Errorf("%s: AvgDist = %f", topo.Name, topo.AvgDist())
		}
	}
}

func TestConstructorArgumentValidation(t *testing.T) {
	cases := []func() (*Topology, error){
		func() (*Topology, error) { return Hypercube(-1) },
		func() (*Topology, error) { return Hypercube(21) },
		func() (*Topology, error) { return Mesh(0, 3) },
		func() (*Topology, error) { return Torus(3, 0) },
		func() (*Topology, error) { return Tree(0, 2) },
		func() (*Topology, error) { return Star(0) },
		func() (*Topology, error) { return Ring(0) },
		func() (*Topology, error) { return Chain(0) },
		func() (*Topology, error) { return Full(0) },
		func() (*Topology, error) { return Custom("c", 0, nil) },
		func() (*Topology, error) { return Custom("c", 2, [][2]int{{0, 5}}) },
		func() (*Topology, error) { return Custom("c", 2, [][2]int{{1, 1}}) },
	}
	for i, mk := range cases {
		if _, err := mk(); err == nil {
			t.Errorf("case %d: invalid arguments accepted", i)
		}
	}
}

func TestCustomAndDisconnected(t *testing.T) {
	topo, err := Custom("pair", 4, [][2]int{{0, 1}, {2, 3}})
	if err != nil {
		t.Fatal(err)
	}
	if topo.IsConnected() {
		t.Error("disconnected topology reported connected")
	}
	if err := topo.Validate(); err == nil {
		t.Error("Validate accepted disconnected topology")
	}
	if topo.Hops(0, 2) != -1 {
		t.Errorf("Hops across components = %d, want -1", topo.Hops(0, 2))
	}
	if topo.Diameter() != -1 {
		t.Errorf("Diameter = %d, want -1", topo.Diameter())
	}
	if topo.Route(0, 2) != nil {
		t.Error("Route across components should be nil")
	}
}

func TestRouteEndpointsAndLength(t *testing.T) {
	h, _ := Hypercube(3)
	for p := 0; p < 8; p++ {
		for q := 0; q < 8; q++ {
			route := h.Route(p, q)
			if route[0] != p || route[len(route)-1] != q {
				t.Fatalf("route %d->%d = %v", p, q, route)
			}
			if len(route)-1 != h.Hops(p, q) {
				t.Fatalf("route length %d != hops %d", len(route)-1, h.Hops(p, q))
			}
			// Consecutive route elements must be adjacent.
			for i := 1; i < len(route); i++ {
				adj := false
				for _, x := range h.Neighbors(route[i-1]) {
					if x == route[i] {
						adj = true
					}
				}
				if !adj {
					t.Fatalf("route %v has non-adjacent step %d->%d", route, route[i-1], route[i])
				}
			}
		}
	}
}

// Hop distances form a metric: symmetric, zero iff equal, triangle
// inequality. Checked across every built-in topology family.
func TestHopsIsAMetric(t *testing.T) {
	topos := []*Topology{}
	mk := func(tp *Topology, err error) {
		if err != nil {
			t.Fatal(err)
		}
		topos = append(topos, tp)
	}
	mk(Hypercube(3))
	mk(Mesh(3, 3))
	mk(Torus(3, 3))
	mk(Tree(2, 3))
	mk(Star(7))
	mk(Ring(7))
	mk(Chain(5))
	mk(Full(6))
	for _, tp := range topos {
		for p := 0; p < tp.N; p++ {
			if tp.Hops(p, p) != 0 {
				t.Errorf("%s: Hops(%d,%d) != 0", tp.Name, p, p)
			}
			for q := 0; q < tp.N; q++ {
				if tp.Hops(p, q) != tp.Hops(q, p) {
					t.Errorf("%s: asymmetric %d,%d", tp.Name, p, q)
				}
				if p != q && tp.Hops(p, q) < 1 {
					t.Errorf("%s: Hops(%d,%d) = %d", tp.Name, p, q, tp.Hops(p, q))
				}
				for r := 0; r < tp.N; r++ {
					if tp.Hops(p, q)+tp.Hops(q, r) < tp.Hops(p, r) {
						t.Errorf("%s: triangle violated %d,%d,%d", tp.Name, p, q, r)
					}
				}
			}
		}
	}
}

func TestAvgDistOrdering(t *testing.T) {
	// For 8 PEs: full < hypercube < mesh-2x4 <= chain in average distance.
	full, _ := Full(8)
	hc, _ := Hypercube(3)
	mesh, _ := Mesh(2, 4)
	chain, _ := Chain(8)
	if !(full.AvgDist() < hc.AvgDist() && hc.AvgDist() < mesh.AvgDist() && mesh.AvgDist() < chain.AvgDist()) {
		t.Errorf("avg dist ordering violated: full=%.2f hc=%.2f mesh=%.2f chain=%.2f",
			full.AvgDist(), hc.AvgDist(), mesh.AvgDist(), chain.AvgDist())
	}
}
