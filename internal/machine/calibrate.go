package machine

import "fmt"

// Calibration carries communication costs measured on a real message
// plane — the distributed runtime's echo probes over its TCP transport
// — expressed in the machine model's own terms. Applying a calibration
// replaces the machine's assumed message startup and per-word
// transmission time with the measured ones, so schedules (and the
// watchdog deadlines derived from their predicted arrival times) are
// built from the latency the wire actually exhibits.
type Calibration struct {
	// MsgStartup is the measured per-message software latency
	// (microseconds): half the round-trip time of a minimal frame.
	MsgStartup Time
	// WordTime is the measured per-word transmission time
	// (microseconds per word per hop), derived from the round-trip
	// difference between a large and a minimal frame.
	WordTime Time
}

// Validate checks the calibration is physically meaningful.
func (c Calibration) Validate() error {
	if c.MsgStartup < 0 || c.WordTime < 0 {
		return fmt.Errorf("machine calibration: negative latency (%+v)", c)
	}
	if c.MsgStartup == 0 && c.WordTime == 0 {
		return fmt.Errorf("machine calibration: empty (no measured costs)")
	}
	return nil
}

// String renders the calibration compactly.
func (c Calibration) String() string {
	return fmt.Sprintf("msg startup=%v, word time=%v", c.MsgStartup, c.WordTime)
}

// Calibrated returns a machine identical to m but with communication
// parameters replaced by the measured ones. A measured word time of
// zero (transmission too fast to resolve in integer microseconds)
// keeps the model's word time so communication never becomes free.
func (m *Machine) Calibrated(c Calibration) (*Machine, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	p := m.Params
	if c.MsgStartup > 0 {
		p.MsgStartup = c.MsgStartup
	}
	if c.WordTime > 0 {
		p.WordTime = c.WordTime
	}
	nm, err := New(m.Name+"/calibrated", m.Topo, p)
	if err != nil {
		return nil, err
	}
	if m.Speeds != nil {
		if err := nm.SetSpeeds(m.Speeds); err != nil {
			return nil, err
		}
	}
	nm.Rel = m.Rel
	return nm, nil
}
