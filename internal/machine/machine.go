// Package machine models Banger's target parallel machines.
//
// Following the paper, a program is tailored to a machine by exactly
// four characteristics — processor speed, process startup time, message
// passing startup time, and message transmission speed — plus, for
// distributed-memory machines, an interconnection network topology
// entered as a graph. Supported topologies match the paper (hypercube,
// mesh, tree, star, fully-connected) plus ring, chain, torus and
// user-defined graphs.
package machine

import (
	"fmt"
	"strings"
	"sync"
)

// Time is simulated time in integer microseconds. All scheduling and
// simulation arithmetic is integral so results are exact and
// deterministic.
type Time int64

// String formats the time as microseconds.
func (t Time) String() string { return fmt.Sprintf("%dus", int64(t)) }

// Params are the paper's four target-machine characteristics.
type Params struct {
	// ProcSpeed is processor speed in abstract operations per
	// microsecond. Task execution time is ceil(work/ProcSpeed).
	ProcSpeed int64
	// TaskStartup is the process startup time charged once per task
	// instance placed on a processor.
	TaskStartup Time
	// MsgStartup is the message-passing startup (software latency)
	// charged once per message.
	MsgStartup Time
	// WordTime is the transmission time per word per hop (the inverse
	// of message transmission speed).
	WordTime Time
}

// Validate checks that the parameters are physically meaningful.
func (p Params) Validate() error {
	if p.ProcSpeed <= 0 {
		return fmt.Errorf("machine params: ProcSpeed must be positive, got %d", p.ProcSpeed)
	}
	if p.TaskStartup < 0 || p.MsgStartup < 0 || p.WordTime < 0 {
		return fmt.Errorf("machine params: negative latency (%+v)", p)
	}
	return nil
}

// DefaultParams returns the parameter set used throughout the
// reproduction harness: unit-speed processors, small task startup, and
// message costs that make communication matter without dominating.
func DefaultParams() Params {
	return Params{ProcSpeed: 1, TaskStartup: 1, MsgStartup: 5, WordTime: 1}
}

// Reliability optionally characterises how failure-prone a machine is.
// The fields are advisory: the runtime uses them to pick default
// watchdog grace factors (flakier links get more slack before a
// missing message is declared lost), and the chaos harness may use the
// probabilities to draw random fault plans. A nil Reliability means
// the machine is assumed dependable.
type Reliability struct {
	// PEFail is the probability that any one processor crashes during
	// a run.
	PEFail float64 `json:"pe_fail,omitempty"`
	// LinkDrop is the probability that any one message is lost in
	// transit.
	LinkDrop float64 `json:"link_drop,omitempty"`
	// Grace overrides the default watchdog grace factor (0 = derive
	// from the probabilities).
	Grace float64 `json:"grace,omitempty"`
}

// Validate checks the reliability parameters.
func (r *Reliability) Validate() error {
	if r == nil {
		return nil
	}
	if r.PEFail < 0 || r.PEFail > 1 || r.LinkDrop < 0 || r.LinkDrop > 1 {
		return fmt.Errorf("machine reliability: probabilities must be in [0,1], got %+v", *r)
	}
	if r.Grace < 0 {
		return fmt.Errorf("machine reliability: negative grace factor %g", r.Grace)
	}
	return nil
}

// GraceFactor returns the watchdog grace multiplier for this machine:
// how many times the predicted arrival time of a message the runtime
// waits before declaring it lost. Dependable machines get 4; machines
// declared lossy get 8 so retransmissions have room to land; an
// explicit Reliability.Grace wins over both.
func (m *Machine) GraceFactor() float64 {
	if m.Rel != nil {
		if m.Rel.Grace > 0 {
			return m.Rel.Grace
		}
		if m.Rel.LinkDrop > 0 || m.Rel.PEFail > 0 {
			return 8
		}
	}
	return 4
}

// Machine is a target machine: a topology plus the four parameters.
// Shared-memory machines are modelled as fully-connected topologies
// with zero-cost communication parameters.
type Machine struct {
	Name   string
	Topo   *Topology
	Params Params
	// Speeds optionally overrides ProcSpeed per processor for
	// heterogeneous machines. When nil the machine is homogeneous.
	Speeds []int64
	// Rel optionally declares the machine's failure characteristics;
	// nil means dependable. See GraceFactor.
	Rel *Reliability

	// comm memoizes the CommCoeffs table. It sits behind a pointer so
	// Machine values stay copyable (UnmarshalJSON assigns *m = *nm).
	comm *commTable
}

// commTable is the lazily-built fast-path communication table.
type commTable struct {
	once    sync.Once
	perWord []Time // flat N×N: hops(p,q) · WordTime
}

// New returns a machine over the given topology with the given
// parameters, or an error if either is invalid.
func New(name string, topo *Topology, p Params) (*Machine, error) {
	if topo == nil {
		return nil, fmt.Errorf("machine %q: nil topology", name)
	}
	if err := topo.Validate(); err != nil {
		return nil, err
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return &Machine{Name: name, Topo: topo, Params: p, comm: &commTable{}}, nil
}

// MustNew is New that panics on error; for literal example machines.
func MustNew(name string, topo *Topology, p Params) *Machine {
	m, err := New(name, topo, p)
	if err != nil {
		panic(err)
	}
	return m
}

// SetSpeeds makes the machine heterogeneous with the given per-PE
// speeds (operations per microsecond, all positive).
func (m *Machine) SetSpeeds(speeds []int64) error {
	if len(speeds) != m.Topo.N {
		return fmt.Errorf("machine %q: %d speeds for %d processors", m.Name, len(speeds), m.Topo.N)
	}
	for i, s := range speeds {
		if s <= 0 {
			return fmt.Errorf("machine %q: processor %d speed %d must be positive", m.Name, i, s)
		}
	}
	m.Speeds = append([]int64(nil), speeds...)
	return nil
}

// NumPE returns the number of processing elements.
func (m *Machine) NumPE() int { return m.Topo.N }

// Speed returns the operation rate of processor pe.
func (m *Machine) Speed(pe int) int64 {
	if m.Speeds != nil {
		return m.Speeds[pe]
	}
	return m.Params.ProcSpeed
}

// ExecTime returns the time to run a task with the given abstract work
// on processor pe: process startup plus ceil(work/speed).
func (m *Machine) ExecTime(work int64, pe int) Time {
	if work < 0 {
		work = 0
	}
	s := m.Speed(pe)
	return m.Params.TaskStartup + Time((work+s-1)/s)
}

// CommTime returns the time for a message of the given word count from
// processor p to processor q: zero when co-located (the PPSE
// convention), otherwise message startup plus per-word transmission
// accumulated over every hop of the route.
func (m *Machine) CommTime(words int64, p, q int) Time {
	if p == q {
		return 0
	}
	if words < 0 {
		words = 0
	}
	h := Time(m.Topo.Hops(p, q))
	return m.Params.MsgStartup + h*Time(words)*m.Params.WordTime
}

// CommCoeffs is the allocation-free fast path behind CommTime for
// schedulers that evaluate millions of candidate placements: it returns
// the per-message startup and a flat N×N table of per-word transfer
// costs such that, for p != q,
//
//	CommTime(words, p, q) == startup + Time(words)*perWord[p*N+q]
//
// (and 0 when p == q). The table is built once and shared; callers must
// treat it as read-only. Safe for concurrent use on machines built by
// New.
func (m *Machine) CommCoeffs() (startup Time, perWord []Time) {
	if m.comm == nil {
		// Hand-assembled machine value: no memo slot, build unshared.
		m.comm = &commTable{}
	}
	m.comm.once.Do(func() {
		n := m.Topo.N
		tbl := make([]Time, n*n)
		for p := 0; p < n; p++ {
			for q := 0; q < n; q++ {
				if p != q {
					tbl[p*n+q] = Time(m.Topo.Hops(p, q)) * m.Params.WordTime
				}
			}
		}
		m.comm.perWord = tbl
	})
	return m.Params.MsgStartup, m.comm.perWord
}

// Scale returns a machine identical to m but over a different topology
// (used for speedup sweeps that grow the same machine family).
func (m *Machine) Scale(topo *Topology) (*Machine, error) {
	nm, err := New(fmt.Sprintf("%s/%s", m.Name, topo.Name), topo, m.Params)
	if err != nil {
		return nil, err
	}
	nm.Rel = m.Rel
	return nm, nil
}

// String describes the machine compactly.
func (m *Machine) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s: %d PEs on %s, speed=%d ops/us, task startup=%v, msg startup=%v, word time=%v",
		m.Name, m.Topo.N, m.Topo.Name, m.Params.ProcSpeed, m.Params.TaskStartup, m.Params.MsgStartup, m.Params.WordTime)
	if m.Speeds != nil {
		fmt.Fprintf(&b, ", heterogeneous speeds=%v", m.Speeds)
	}
	return b.String()
}
