package machine

import (
	"fmt"
	"sort"
	"sync"
)

// Topology is an undirected interconnection network over N processors
// numbered 0..N-1. Distances and routes are computed lazily by BFS and
// cached; a Topology must not be mutated after first use.
type Topology struct {
	Name string
	N    int
	adj  [][]int // sorted neighbor lists

	dist  [][]int // all-pairs hop counts, built on demand
	nextH [][]int // nextH[p][q]: first hop from p toward q (-1 when p==q or unreachable)

	// routes memoizes the full shortest path of every (p,q) pair as a
	// shared immutable slice (flat index p*N+q), so the schedulers'
	// hop-by-hop routing stops rebuilding path slices per evaluation.
	// Built once, protected by routesOnce so concurrent schedulers may
	// trigger it safely.
	routesOnce sync.Once
	routes     [][]int
}

// newTopology allocates a topology with empty adjacency.
func newTopology(name string, n int) *Topology {
	return &Topology{Name: name, N: n, adj: make([][]int, n)}
}

// addEdge inserts the undirected edge {a,b} once.
func (t *Topology) addEdge(a, b int) {
	for _, x := range t.adj[a] {
		if x == b {
			return
		}
	}
	t.adj[a] = append(t.adj[a], b)
	t.adj[b] = append(t.adj[b], a)
}

func (t *Topology) sortAdj() {
	for i := range t.adj {
		sort.Ints(t.adj[i])
	}
}

// Custom builds a topology from an explicit undirected edge list.
// Edges are pairs of processor indices; duplicates are ignored.
func Custom(name string, n int, edges [][2]int) (*Topology, error) {
	if n < 1 {
		return nil, fmt.Errorf("topology %q: need at least one processor, got %d", name, n)
	}
	t := newTopology(name, n)
	for _, e := range edges {
		a, b := e[0], e[1]
		if a < 0 || a >= n || b < 0 || b >= n {
			return nil, fmt.Errorf("topology %q: edge (%d,%d) out of range [0,%d)", name, a, b, n)
		}
		if a == b {
			return nil, fmt.Errorf("topology %q: self-loop on %d", name, a)
		}
		t.addEdge(a, b)
	}
	t.sortAdj()
	return t, nil
}

// Hypercube returns a binary d-cube with 2^d processors; processors are
// adjacent iff their indices differ in exactly one bit. Dimension 0 is
// a single processor.
func Hypercube(dim int) (*Topology, error) {
	if dim < 0 || dim > 20 {
		return nil, fmt.Errorf("hypercube dimension %d out of range [0,20]", dim)
	}
	n := 1 << dim
	t := newTopology(fmt.Sprintf("hypercube-%d", dim), n)
	for p := 0; p < n; p++ {
		for b := 0; b < dim; b++ {
			q := p ^ (1 << b)
			if p < q {
				t.addEdge(p, q)
			}
		}
	}
	t.sortAdj()
	return t, nil
}

// Mesh returns a rows×cols 2-D grid (no wraparound).
func Mesh(rows, cols int) (*Topology, error) {
	if rows < 1 || cols < 1 {
		return nil, fmt.Errorf("mesh %dx%d: dimensions must be positive", rows, cols)
	}
	t := newTopology(fmt.Sprintf("mesh-%dx%d", rows, cols), rows*cols)
	id := func(r, c int) int { return r*cols + c }
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if c+1 < cols {
				t.addEdge(id(r, c), id(r, c+1))
			}
			if r+1 < rows {
				t.addEdge(id(r, c), id(r+1, c))
			}
		}
	}
	t.sortAdj()
	return t, nil
}

// Torus returns a rows×cols 2-D grid with wraparound links.
func Torus(rows, cols int) (*Topology, error) {
	if rows < 1 || cols < 1 {
		return nil, fmt.Errorf("torus %dx%d: dimensions must be positive", rows, cols)
	}
	t := newTopology(fmt.Sprintf("torus-%dx%d", rows, cols), rows*cols)
	id := func(r, c int) int { return r*cols + c }
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if cols > 1 {
				t.addEdge(id(r, c), id(r, (c+1)%cols))
			}
			if rows > 1 {
				t.addEdge(id(r, c), id((r+1)%rows, c))
			}
		}
	}
	t.sortAdj()
	return t, nil
}

// Tree returns a complete rooted tree with the given branching factor
// and number of levels; processor 0 is the root, children of node i are
// branch*i+1 .. branch*i+branch (heap numbering).
func Tree(branch, levels int) (*Topology, error) {
	if branch < 1 || levels < 1 {
		return nil, fmt.Errorf("tree branch=%d levels=%d: both must be >= 1", branch, levels)
	}
	n := 0
	pow := 1
	for l := 0; l < levels; l++ {
		n += pow
		pow *= branch
	}
	t := newTopology(fmt.Sprintf("tree-b%d-l%d", branch, levels), n)
	for i := 0; i < n; i++ {
		for c := 1; c <= branch; c++ {
			child := branch*i + c
			if child < n {
				t.addEdge(i, child)
			}
		}
	}
	t.sortAdj()
	return t, nil
}

// Star returns a hub-and-spoke network: processor 0 is the hub directly
// connected to each of the n-1 satellites.
func Star(n int) (*Topology, error) {
	if n < 1 {
		return nil, fmt.Errorf("star size %d: must be >= 1", n)
	}
	t := newTopology(fmt.Sprintf("star-%d", n), n)
	for i := 1; i < n; i++ {
		t.addEdge(0, i)
	}
	t.sortAdj()
	return t, nil
}

// Ring returns a cycle of n processors.
func Ring(n int) (*Topology, error) {
	if n < 1 {
		return nil, fmt.Errorf("ring size %d: must be >= 1", n)
	}
	t := newTopology(fmt.Sprintf("ring-%d", n), n)
	if n > 1 {
		for i := 0; i < n; i++ {
			t.addEdge(i, (i+1)%n)
		}
	}
	t.sortAdj()
	return t, nil
}

// Chain returns a linear array of n processors.
func Chain(n int) (*Topology, error) {
	if n < 1 {
		return nil, fmt.Errorf("chain size %d: must be >= 1", n)
	}
	t := newTopology(fmt.Sprintf("chain-%d", n), n)
	for i := 0; i+1 < n; i++ {
		t.addEdge(i, i+1)
	}
	t.sortAdj()
	return t, nil
}

// Full returns the fully-connected network on n processors.
func Full(n int) (*Topology, error) {
	if n < 1 {
		return nil, fmt.Errorf("full size %d: must be >= 1", n)
	}
	t := newTopology(fmt.Sprintf("full-%d", n), n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			t.addEdge(i, j)
		}
	}
	t.sortAdj()
	return t, nil
}

// Neighbors returns the sorted neighbor list of processor p. The slice
// is shared; callers must not modify it.
func (t *Topology) Neighbors(p int) []int { return t.adj[p] }

// Degree returns the number of direct links of processor p.
func (t *Topology) Degree(p int) int { return len(t.adj[p]) }

// NumLinks returns the number of undirected links.
func (t *Topology) NumLinks() int {
	total := 0
	for _, a := range t.adj {
		total += len(a)
	}
	return total / 2
}

// Precompute forces the lazy BFS routing tables (and the memoized
// full-path table) to be built now. The dist/nextH build is not
// synchronized, so any code that shares a Topology across goroutines
// (the scheduler registry's comparison sweeps, the runner's workers)
// must call Precompute on one goroutine first.
func (t *Topology) Precompute() {
	t.buildRoutes()
	t.routesOnce.Do(t.buildPaths)
}

// buildRoutes runs BFS from every source, filling dist and nextH.
func (t *Topology) buildRoutes() {
	if t.dist != nil {
		return
	}
	t.dist = make([][]int, t.N)
	t.nextH = make([][]int, t.N)
	for s := 0; s < t.N; s++ {
		dist := make([]int, t.N)
		next := make([]int, t.N)
		for i := range dist {
			dist[i] = -1
			next[i] = -1
		}
		dist[s] = 0
		queue := []int{s}
		for len(queue) > 0 {
			u := queue[0]
			queue = queue[1:]
			for _, v := range t.adj[u] {
				if dist[v] == -1 {
					dist[v] = dist[u] + 1
					if u == s {
						next[v] = v
					} else {
						next[v] = next[u]
					}
					queue = append(queue, v)
				}
			}
		}
		t.dist[s] = dist
		t.nextH[s] = next
	}
}

// Hops returns the shortest-path hop count between p and q, or -1 if
// they are disconnected.
func (t *Topology) Hops(p, q int) int {
	t.buildRoutes()
	return t.dist[p][q]
}

// NextHop returns the first processor on a shortest route from p toward
// q (BFS over sorted neighbor lists, so routes are deterministic), or
// -1 when p == q or q is unreachable.
func (t *Topology) NextHop(p, q int) int {
	t.buildRoutes()
	return t.nextH[p][q]
}

// Route returns the full shortest path from p to q including both
// endpoints, or nil if unreachable. The path is memoized and shared:
// callers must treat it as read-only.
func (t *Topology) Route(p, q int) []int {
	t.buildRoutes()
	t.routesOnce.Do(t.buildPaths)
	return t.routes[p*t.N+q]
}

// buildPaths materialises every shortest path once. dist and nextH must
// already be built.
func (t *Topology) buildPaths() {
	routes := make([][]int, t.N*t.N)
	for p := 0; p < t.N; p++ {
		for q := 0; q < t.N; q++ {
			if t.dist[p][q] < 0 {
				continue // unreachable: stays nil
			}
			path := make([]int, 0, t.dist[p][q]+1)
			path = append(path, p)
			for cur := p; cur != q; {
				cur = t.nextH[cur][q]
				path = append(path, cur)
			}
			routes[p*t.N+q] = path
		}
	}
	t.routes = routes
}

// Diameter returns the largest pairwise hop count, or -1 if the network
// is disconnected.
func (t *Topology) Diameter() int {
	t.buildRoutes()
	d := 0
	for p := 0; p < t.N; p++ {
		for q := 0; q < t.N; q++ {
			if t.dist[p][q] < 0 {
				return -1
			}
			if t.dist[p][q] > d {
				d = t.dist[p][q]
			}
		}
	}
	return d
}

// AvgDist returns the mean hop count over ordered pairs of distinct
// processors (0 for a single-processor network).
func (t *Topology) AvgDist() float64 {
	t.buildRoutes()
	if t.N < 2 {
		return 0
	}
	sum, cnt := 0, 0
	for p := 0; p < t.N; p++ {
		for q := 0; q < t.N; q++ {
			if p != q && t.dist[p][q] > 0 {
				sum += t.dist[p][q]
				cnt++
			}
		}
	}
	if cnt == 0 {
		return 0
	}
	return float64(sum) / float64(cnt)
}

// IsConnected reports whether every processor can reach every other.
func (t *Topology) IsConnected() bool {
	t.buildRoutes()
	for _, d := range t.dist[0] {
		if d < 0 {
			return false
		}
	}
	return true
}

// Validate checks the topology is non-empty and connected (Banger
// schedules assume any processor can reach any other).
func (t *Topology) Validate() error {
	if t.N < 1 {
		return fmt.Errorf("topology %q: no processors", t.Name)
	}
	if !t.IsConnected() {
		return fmt.Errorf("topology %q: network is disconnected", t.Name)
	}
	return nil
}

// String summarises the topology.
func (t *Topology) String() string {
	return fmt.Sprintf("%s: %d PEs, %d links, diameter %d", t.Name, t.N, t.NumLinks(), t.Diameter())
}
