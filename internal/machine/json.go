package machine

import (
	"encoding/json"
	"fmt"
	"strings"
)

// jsonMachine is the wire form of a Machine. Topologies are stored as
// either a spec string ("hypercube:3", "mesh:2x4", ...) or an explicit
// edge list for custom networks.
type jsonMachine struct {
	Name     string   `json:"name"`
	Topology string   `json:"topology,omitempty"`
	N        int      `json:"n,omitempty"`
	Edges    [][2]int `json:"edges,omitempty"`
	Params   Params   `json:"params"`
	Speeds   []int64  `json:"speeds,omitempty"`

	Reliability *Reliability `json:"reliability,omitempty"`
}

// ParseTopology builds a topology from a compact spec string:
//
//	hypercube:D   mesh:RxC   torus:RxC   tree:BxL
//	star:N        ring:N     chain:N     full:N
func ParseTopology(spec string) (*Topology, error) {
	kind, arg, ok := strings.Cut(spec, ":")
	if !ok {
		return nil, fmt.Errorf("topology spec %q: want kind:args", spec)
	}
	atoi := func(s string) (int, error) {
		var v int
		if _, err := fmt.Sscanf(s, "%d", &v); err != nil {
			return 0, fmt.Errorf("topology spec %q: bad number %q", spec, s)
		}
		return v, nil
	}
	pair := func() (int, int, error) {
		a, b, ok := strings.Cut(arg, "x")
		if !ok {
			return 0, 0, fmt.Errorf("topology spec %q: want AxB", spec)
		}
		x, err := atoi(a)
		if err != nil {
			return 0, 0, err
		}
		y, err := atoi(b)
		if err != nil {
			return 0, 0, err
		}
		return x, y, nil
	}
	switch kind {
	case "hypercube":
		d, err := atoi(arg)
		if err != nil {
			return nil, err
		}
		return Hypercube(d)
	case "mesh":
		r, c, err := pair()
		if err != nil {
			return nil, err
		}
		return Mesh(r, c)
	case "torus":
		r, c, err := pair()
		if err != nil {
			return nil, err
		}
		return Torus(r, c)
	case "tree":
		b, l, err := pair()
		if err != nil {
			return nil, err
		}
		return Tree(b, l)
	case "star":
		n, err := atoi(arg)
		if err != nil {
			return nil, err
		}
		return Star(n)
	case "ring":
		n, err := atoi(arg)
		if err != nil {
			return nil, err
		}
		return Ring(n)
	case "chain":
		n, err := atoi(arg)
		if err != nil {
			return nil, err
		}
		return Chain(n)
	case "full":
		n, err := atoi(arg)
		if err != nil {
			return nil, err
		}
		return Full(n)
	default:
		return nil, fmt.Errorf("topology spec %q: unknown kind %q", spec, kind)
	}
}

// Spec returns the compact spec string for a built-in topology name, or
// "" if the topology was custom-built.
func (t *Topology) Spec() string {
	for _, prefix := range []string{"hypercube-", "mesh-", "torus-", "tree-", "star-", "ring-", "chain-", "full-"} {
		if strings.HasPrefix(t.Name, prefix) {
			kind := strings.TrimSuffix(prefix, "-")
			arg := strings.TrimPrefix(t.Name, prefix)
			if kind == "tree" {
				// tree-b2-l3 -> tree:2x3
				var b, l int
				if n, _ := fmt.Sscanf(arg, "b%d-l%d", &b, &l); n == 2 {
					return fmt.Sprintf("tree:%dx%d", b, l)
				}
				return ""
			}
			return kind + ":" + arg
		}
	}
	return ""
}

// MarshalJSON implements json.Marshaler.
func (m *Machine) MarshalJSON() ([]byte, error) {
	jm := jsonMachine{Name: m.Name, Params: m.Params, Speeds: m.Speeds, Reliability: m.Rel}
	if spec := m.Topo.Spec(); spec != "" {
		jm.Topology = spec
	} else {
		jm.N = m.Topo.N
		for p := 0; p < m.Topo.N; p++ {
			for _, q := range m.Topo.adj[p] {
				if p < q {
					jm.Edges = append(jm.Edges, [2]int{p, q})
				}
			}
		}
	}
	return json.Marshal(jm)
}

// UnmarshalJSON implements json.Unmarshaler.
func (m *Machine) UnmarshalJSON(data []byte) error {
	var jm jsonMachine
	if err := json.Unmarshal(data, &jm); err != nil {
		return err
	}
	var topo *Topology
	var err error
	if jm.Topology != "" {
		topo, err = ParseTopology(jm.Topology)
	} else {
		topo, err = Custom(jm.Name+"-net", jm.N, jm.Edges)
	}
	if err != nil {
		return err
	}
	nm, err := New(jm.Name, topo, jm.Params)
	if err != nil {
		return err
	}
	if jm.Speeds != nil {
		if err := nm.SetSpeeds(jm.Speeds); err != nil {
			return err
		}
	}
	if jm.Reliability != nil {
		if err := jm.Reliability.Validate(); err != nil {
			return err
		}
		nm.Rel = jm.Reliability
	}
	*m = *nm
	return nil
}
