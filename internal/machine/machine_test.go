package machine

import (
	"encoding/json"
	"strings"
	"testing"
	"testing/quick"
)

func testMachine(t *testing.T, dim int) *Machine {
	t.Helper()
	topo, err := Hypercube(dim)
	if err != nil {
		t.Fatal(err)
	}
	m, err := New("test", topo, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestParamsValidate(t *testing.T) {
	good := DefaultParams()
	if err := good.Validate(); err != nil {
		t.Errorf("default params invalid: %v", err)
	}
	bad := []Params{
		{ProcSpeed: 0},
		{ProcSpeed: -1},
		{ProcSpeed: 1, TaskStartup: -1},
		{ProcSpeed: 1, MsgStartup: -1},
		{ProcSpeed: 1, WordTime: -1},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("bad params %d accepted: %+v", i, p)
		}
	}
}

func TestNewRejectsInvalid(t *testing.T) {
	topo, _ := Hypercube(2)
	if _, err := New("m", nil, DefaultParams()); err == nil {
		t.Error("nil topology accepted")
	}
	if _, err := New("m", topo, Params{}); err == nil {
		t.Error("zero params accepted")
	}
	disc, _ := Custom("d", 4, [][2]int{{0, 1}})
	if _, err := New("m", disc, DefaultParams()); err == nil {
		t.Error("disconnected topology accepted")
	}
}

func TestExecTime(t *testing.T) {
	m := testMachine(t, 2)
	// speed 1, startup 1: work 10 -> 11us.
	if got := m.ExecTime(10, 0); got != 11 {
		t.Errorf("ExecTime(10) = %v", got)
	}
	if got := m.ExecTime(0, 0); got != 1 {
		t.Errorf("ExecTime(0) = %v", got)
	}
	if got := m.ExecTime(-5, 0); got != 1 {
		t.Errorf("ExecTime(-5) = %v", got)
	}
}

func TestExecTimeCeilingDivision(t *testing.T) {
	topo, _ := Full(2)
	m, err := New("fast", topo, Params{ProcSpeed: 3, TaskStartup: 0, MsgStartup: 0, WordTime: 0})
	if err != nil {
		t.Fatal(err)
	}
	// 10 ops at 3 ops/us = ceil(10/3) = 4us.
	if got := m.ExecTime(10, 0); got != 4 {
		t.Errorf("ExecTime(10) = %v, want 4us", got)
	}
	if got := m.ExecTime(9, 0); got != 3 {
		t.Errorf("ExecTime(9) = %v, want 3us", got)
	}
}

func TestCommTime(t *testing.T) {
	m := testMachine(t, 3) // startup 5, word time 1
	// Co-located: free.
	if got := m.CommTime(100, 4, 4); got != 0 {
		t.Errorf("co-located comm = %v", got)
	}
	// 1 hop (0->1): 5 + 1*10*1 = 15.
	if got := m.CommTime(10, 0, 1); got != 15 {
		t.Errorf("1-hop comm = %v", got)
	}
	// 3 hops (0->7): 5 + 3*10*1 = 35.
	if got := m.CommTime(10, 0, 7); got != 35 {
		t.Errorf("3-hop comm = %v", got)
	}
	// Zero/negative words still cost startup across PEs.
	if got := m.CommTime(0, 0, 1); got != 5 {
		t.Errorf("0-word comm = %v", got)
	}
	if got := m.CommTime(-3, 0, 1); got != 5 {
		t.Errorf("negative-word comm = %v", got)
	}
}

func TestCommTimeMonotoneInDistanceAndSize(t *testing.T) {
	m := testMachine(t, 4)
	f := func(w uint16, a, b, c uint8) bool {
		words := int64(w % 1000)
		p, q := int(a%16), int(b%16)
		// More words never cheaper.
		if m.CommTime(words+1, p, q) < m.CommTime(words, p, q) {
			return false
		}
		// Farther destination never cheaper (same words).
		r := int(c % 16)
		if m.Topo.Hops(p, q) <= m.Topo.Hops(p, r) {
			return m.CommTime(words, p, q) <= m.CommTime(words, p, r)
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestHeterogeneousSpeeds(t *testing.T) {
	m := testMachine(t, 1)
	if err := m.SetSpeeds([]int64{1, 4}); err != nil {
		t.Fatal(err)
	}
	if got := m.ExecTime(8, 0); got != 9 {
		t.Errorf("slow PE: %v", got)
	}
	if got := m.ExecTime(8, 1); got != 3 {
		t.Errorf("fast PE: %v (want 1 + 8/4 = 3)", got)
	}
	if err := m.SetSpeeds([]int64{1}); err == nil {
		t.Error("wrong-length speeds accepted")
	}
	if err := m.SetSpeeds([]int64{1, 0}); err == nil {
		t.Error("zero speed accepted")
	}
}

func TestScale(t *testing.T) {
	m := testMachine(t, 2)
	big, _ := Hypercube(3)
	m2, err := m.Scale(big)
	if err != nil {
		t.Fatal(err)
	}
	if m2.NumPE() != 8 || m2.Params != m.Params {
		t.Errorf("scaled machine wrong: %v", m2)
	}
}

func TestMachineString(t *testing.T) {
	m := testMachine(t, 2)
	s := m.String()
	for _, want := range []string{"test", "4 PEs", "hypercube-2"} {
		if !strings.Contains(s, want) {
			t.Errorf("String %q missing %q", s, want)
		}
	}
}

func TestParseTopology(t *testing.T) {
	cases := map[string]int{
		"hypercube:3": 8,
		"mesh:2x4":    8,
		"torus:2x2":   4,
		"tree:2x3":    7,
		"star:5":      5,
		"ring:6":      6,
		"chain:4":     4,
		"full:3":      3,
	}
	for spec, n := range cases {
		topo, err := ParseTopology(spec)
		if err != nil {
			t.Errorf("%s: %v", spec, err)
			continue
		}
		if topo.N != n {
			t.Errorf("%s: N = %d, want %d", spec, topo.N, n)
		}
		// Spec round-trips.
		if got := topo.Spec(); got != spec {
			t.Errorf("Spec() = %q, want %q", got, spec)
		}
	}
	for _, bad := range []string{"", "hypercube", "mesh:2", "blah:3", "star:x", "mesh:axb"} {
		if _, err := ParseTopology(bad); err == nil {
			t.Errorf("bad spec %q accepted", bad)
		}
	}
}

func TestMachineJSONRoundTrip(t *testing.T) {
	m := testMachine(t, 3)
	if err := m.SetSpeeds([]int64{1, 2, 3, 4, 5, 6, 7, 8}); err != nil {
		t.Fatal(err)
	}
	data, err := json.Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	var back Machine
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Name != m.Name || back.NumPE() != m.NumPE() || back.Params != m.Params {
		t.Errorf("round trip changed machine: %v vs %v", &back, m)
	}
	if back.Speed(7) != 8 {
		t.Errorf("speeds lost: %v", back.Speeds)
	}
	if back.Topo.Hops(0, 7) != m.Topo.Hops(0, 7) {
		t.Error("topology changed in round trip")
	}
}

func TestMachineJSONCustomTopology(t *testing.T) {
	topo, err := Custom("oddnet", 3, [][2]int{{0, 1}, {1, 2}})
	if err != nil {
		t.Fatal(err)
	}
	m, err := New("custom", topo, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	data, err := json.Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "edges") {
		t.Errorf("custom topology should serialise edges: %s", data)
	}
	var back Machine
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.NumPE() != 3 || back.Topo.Hops(0, 2) != 2 {
		t.Errorf("custom topology lost: %v", back.Topo)
	}
}

func TestTopologyASCIIAndDOT(t *testing.T) {
	mesh, _ := Mesh(2, 3)
	s := mesh.ASCII()
	for _, want := range []string{"[ 0]", "[ 5]", "--", "|"} {
		if !strings.Contains(s, want) {
			t.Errorf("mesh ASCII missing %q:\n%s", want, s)
		}
	}
	hc, _ := Hypercube(2)
	s = hc.ASCII()
	if !strings.Contains(s, "PE0") || !strings.Contains(s, "PE3") {
		t.Errorf("hypercube ASCII:\n%s", s)
	}
	dot := hc.DOT()
	if !strings.Contains(dot, "graph") || !strings.Contains(dot, "0 -- 1") {
		t.Errorf("DOT:\n%s", dot)
	}
	torus, _ := Torus(2, 2)
	if s := torus.ASCII(); !strings.Contains(s, "wrap") {
		t.Errorf("torus ASCII missing wrap note:\n%s", s)
	}
}

func TestTimeString(t *testing.T) {
	if got := Time(42).String(); got != "42us" {
		t.Errorf("Time.String = %q", got)
	}
}

// ParseTopology must reject garbage without panicking.
func TestParseTopologyNeverPanics(t *testing.T) {
	f := func(spec string) (ok bool) {
		defer func() {
			if r := recover(); r != nil {
				t.Logf("panic on %q: %v", spec, r)
				ok = false
			}
		}()
		_, _ = ParseTopology(spec)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
	// Degenerate-but-wellformed specs.
	for _, spec := range []string{"hypercube:0", "mesh:1x1", "full:1", "tree:1x1", "hypercube:-1", "mesh:0x5", "star:-3"} {
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Errorf("panic on %q: %v", spec, r)
				}
			}()
			_, _ = ParseTopology(spec)
		}()
	}
}
