package machine

import (
	"strings"
	"testing"
)

func TestCalibrated(t *testing.T) {
	topo, err := Hypercube(2)
	if err != nil {
		t.Fatal(err)
	}
	m, err := New("test", topo, Params{ProcSpeed: 2, TaskStartup: 3, MsgStartup: 5, WordTime: 1})
	if err != nil {
		t.Fatal(err)
	}
	cm, err := m.Calibrated(Calibration{MsgStartup: 120, WordTime: 2})
	if err != nil {
		t.Fatal(err)
	}
	if cm.Params.MsgStartup != 120 || cm.Params.WordTime != 2 {
		t.Errorf("calibrated params = %+v", cm.Params)
	}
	if cm.Params.ProcSpeed != 2 || cm.Params.TaskStartup != 3 {
		t.Errorf("compute params changed: %+v", cm.Params)
	}
	if m.Params.MsgStartup != 5 {
		t.Error("original machine mutated")
	}
	if !strings.HasSuffix(cm.Name, "/calibrated") {
		t.Errorf("name %q", cm.Name)
	}
	// CommTime uses the calibrated costs: 1 hop, 4 words.
	if got := cm.CommTime(4, 0, 1); got != 120+4*2 {
		t.Errorf("CommTime = %v", got)
	}

	// Zero word time keeps the model's: the wire was too fast to
	// resolve, but communication must not become free.
	cm2, err := m.Calibrated(Calibration{MsgStartup: 40})
	if err != nil {
		t.Fatal(err)
	}
	if cm2.Params.WordTime != 1 {
		t.Errorf("word time = %v, want model's 1", cm2.Params.WordTime)
	}

	if _, err := m.Calibrated(Calibration{}); err == nil {
		t.Error("empty calibration accepted")
	}
	if _, err := m.Calibrated(Calibration{MsgStartup: -1}); err == nil {
		t.Error("negative calibration accepted")
	}
}
