package machine

import (
	"fmt"
	"strings"
)

// ASCII renders the topology as an adjacency diagram — the terminal
// stand-in for the paper's Figure 2 drawings. Mesh and torus networks
// get a 2-D grid picture; everything else gets an adjacency list.
func (t *Topology) ASCII() string {
	var rows, cols int
	if n, _ := fmt.Sscanf(t.Name, "mesh-%dx%d", &rows, &cols); n == 2 {
		return t.gridASCII(rows, cols, false)
	}
	if n, _ := fmt.Sscanf(t.Name, "torus-%dx%d", &rows, &cols); n == 2 {
		return t.gridASCII(rows, cols, true)
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", t.String())
	for p := 0; p < t.N; p++ {
		fmt.Fprintf(&b, "  PE%-3d --", p)
		var links []string
		for _, q := range t.adj[p] {
			links = append(links, fmt.Sprintf("PE%d", q))
		}
		b.WriteString(" " + strings.Join(links, ", ") + "\n")
	}
	return b.String()
}

func (t *Topology) gridASCII(rows, cols int, wrap bool) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", t.String())
	for r := 0; r < rows; r++ {
		var cells []string
		for c := 0; c < cols; c++ {
			cells = append(cells, fmt.Sprintf("[%2d]", r*cols+c))
		}
		sep := " -- "
		line := "  " + strings.Join(cells, sep)
		if wrap && cols > 1 {
			line += " --*"
		}
		b.WriteString(line + "\n")
		if r+1 < rows {
			var bars []string
			for c := 0; c < cols; c++ {
				bars = append(bars, "  | ")
			}
			b.WriteString("  " + strings.Join(bars, "    ") + "\n")
		}
	}
	if wrap && rows > 1 {
		b.WriteString("  (column links wrap around)\n")
	}
	return b.String()
}

// DOT renders the topology in Graphviz dot syntax.
func (t *Topology) DOT() string {
	var b strings.Builder
	fmt.Fprintf(&b, "graph %q {\n", t.Name)
	b.WriteString("  node [shape=circle];\n")
	for p := 0; p < t.N; p++ {
		fmt.Fprintf(&b, "  %d;\n", p)
	}
	for p := 0; p < t.N; p++ {
		for _, q := range t.adj[p] {
			if p < q {
				fmt.Fprintf(&b, "  %d -- %d;\n", p, q)
			}
		}
	}
	b.WriteString("}\n")
	return b.String()
}
