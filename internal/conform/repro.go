package conform

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"repro/internal/exec"
	"repro/internal/graph"
	"repro/internal/machine"
	"repro/internal/pits"
)

// A repro directory is self-contained: design.json and machine.json
// are the standard graph/machine encodings the rest of the toolchain
// reads, case.json carries the scalar knobs (seed, heuristic, fault
// spec, skew, inputs), report.txt is the human summary, and
// <engine>.trace.json files hold the observed event streams. Replaying
// needs nothing outside the directory: `banger conform -repro DIR`.
const (
	reproDesignFile  = "design.json"
	reproMachineFile = "machine.json"
	reproCaseFile    = "case.json"
	reproReportFile  = "report.txt"
)

// caseJSON is the on-disk form of a Case's scalar fields. Inputs are
// plain numbers: the conform generator only ever draws Num inputs, so
// the repro format does not need the full binary value codec.
type caseJSON struct {
	Seed      int64              `json:"seed"`
	Heuristic string             `json:"heuristic"`
	Faults    string             `json:"faults,omitempty"`
	SkewComm  int64              `json:"skew_comm,omitempty"`
	Churn     string             `json:"churn,omitempty"`
	Inputs    map[string]float64 `json:"inputs"`
}

// WriteRepro writes a self-contained repro directory for the report.
func WriteRepro(dir string, rep *Report) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	c := rep.Case
	if err := writeJSON(filepath.Join(dir, reproDesignFile), c.Design); err != nil {
		return err
	}
	if err := writeJSON(filepath.Join(dir, reproMachineFile), c.Machine); err != nil {
		return err
	}
	cj := caseJSON{
		Seed:      c.Seed,
		Heuristic: c.Heuristic,
		SkewComm:  int64(c.SkewComm),
		Inputs:    map[string]float64{},
	}
	if c.Faults != nil {
		cj.Faults = c.Faults.String()
	}
	if len(c.Churn) > 0 {
		cj.Churn = ChurnString(c.Churn)
	}
	for k, v := range c.Inputs {
		n, ok := v.(pits.Num)
		if !ok {
			return fmt.Errorf("conform: input %q is %T; repro inputs must be numbers", k, v)
		}
		cj.Inputs[k] = float64(n)
	}
	if err := writeJSON(filepath.Join(dir, reproCaseFile), cj); err != nil {
		return err
	}
	for _, e := range rep.Engines {
		if e.Trace == nil {
			continue
		}
		f, err := os.Create(filepath.Join(dir, e.Name+".trace.json"))
		if err != nil {
			return err
		}
		err = e.Trace.Encode(f)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return err
		}
	}
	return os.WriteFile(filepath.Join(dir, reproReportFile), []byte(reportText(rep)), 0o644)
}

// reportText renders the human-readable summary.
func reportText(rep *Report) string {
	c := rep.Case
	var b strings.Builder
	fmt.Fprintf(&b, "conform case seed=%d heuristic=%s machine=%s tasks=%d\n",
		c.Seed, c.Heuristic, c.Machine.Name, len(c.Design.Tasks()))
	if c.Faults != nil {
		fmt.Fprintf(&b, "faults: %s\n", c.Faults)
	}
	if c.SkewComm != 0 {
		fmt.Fprintf(&b, "skew-comm: %s (runner engine only)\n", c.SkewComm)
	}
	if len(c.Churn) > 0 {
		fmt.Fprintf(&b, "churn: %s (distributed engines only)\n", ChurnString(c.Churn))
	}
	if rep.Schedule != nil {
		fmt.Fprintf(&b, "schedule: makespan=%s slots=%d msgs=%d\n",
			rep.Schedule.Makespan(), len(rep.Schedule.Slots), len(rep.Schedule.Msgs))
	}
	if len(rep.Divergences) == 0 {
		b.WriteString("PASS: all oracles held\n")
		return b.String()
	}
	fmt.Fprintf(&b, "FAIL: %d divergence(s)\n", len(rep.Divergences))
	for _, d := range rep.Divergences {
		fmt.Fprintf(&b, "  %s\n", d)
	}
	names := make([]string, 0, len(rep.Engines))
	for _, e := range rep.Engines {
		names = append(names, e.Name)
	}
	sort.Strings(names)
	fmt.Fprintf(&b, "engines: %s\n", strings.Join(names, ", "))
	return b.String()
}

func writeJSON(path string, v any) error {
	b, err := json.MarshalIndent(v, "", " ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}

// LoadRepro reads a repro directory back into a runnable Case.
func LoadRepro(dir string) (*Case, error) {
	c := &Case{Design: &graph.Graph{}, Machine: &machine.Machine{}, Inputs: pits.Env{}}
	if err := readJSON(filepath.Join(dir, reproDesignFile), c.Design); err != nil {
		return nil, err
	}
	if err := readJSON(filepath.Join(dir, reproMachineFile), c.Machine); err != nil {
		return nil, err
	}
	var cj caseJSON
	if err := readJSON(filepath.Join(dir, reproCaseFile), &cj); err != nil {
		return nil, err
	}
	c.Seed = cj.Seed
	c.Heuristic = cj.Heuristic
	c.SkewComm = machine.Time(cj.SkewComm)
	for k, v := range cj.Inputs {
		c.Inputs[k] = pits.Num(v)
	}
	if cj.Faults != "" {
		plan, err := exec.ParseFaults(cj.Faults)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", reproCaseFile, err)
		}
		c.Faults = plan
	}
	if cj.Churn != "" {
		ops, err := ParseChurn(cj.Churn)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", reproCaseFile, err)
		}
		c.Churn = ops
	}
	return c, nil
}

func readJSON(path string, v any) error {
	b, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	if err := json.Unmarshal(b, v); err != nil {
		return fmt.Errorf("%s: %w", filepath.Base(path), err)
	}
	return nil
}

// Replay loads a repro directory and re-runs its case through every
// engine, returning the fresh report.
func Replay(ctx context.Context, dir string) (*Report, error) {
	c, err := LoadRepro(dir)
	if err != nil {
		return nil, err
	}
	return RunCase(ctx, c)
}
