package conform

import (
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestGenerateMultiDeterministic: same seed, same scenario — sub-case
// count, sub-seeds, heuristics, fault specs and churn scripts all
// reproduce exactly.
func TestGenerateMultiDeterministic(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		a, err := GenerateMulti(seed)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		b, err := GenerateMulti(seed)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if len(a.Cases) != len(b.Cases) {
			t.Fatalf("seed %d: %d vs %d cases", seed, len(a.Cases), len(b.Cases))
		}
		for i := range a.Cases {
			ca, cb := a.Cases[i], b.Cases[i]
			if ca.Seed != cb.Seed || ca.Heuristic != cb.Heuristic {
				t.Errorf("seed %d case %d: (%d,%s) vs (%d,%s)",
					seed, i, ca.Seed, ca.Heuristic, cb.Seed, cb.Heuristic)
			}
			fa, fb := "", ""
			if ca.Faults != nil {
				fa = ca.Faults.String()
			}
			if cb.Faults != nil {
				fb = cb.Faults.String()
			}
			if fa != fb {
				t.Errorf("seed %d case %d: faults %q vs %q", seed, i, fa, fb)
			}
			if ChurnString(ca.Churn) != ChurnString(cb.Churn) {
				t.Errorf("seed %d case %d: churn %q vs %q",
					seed, i, ChurnString(ca.Churn), ChurnString(cb.Churn))
			}
		}
	}
}

// TestGenerateMultiNormalised: every scenario keeps at least one clean
// sub-case (the isolation witness) and at most one churned one (the
// fleet is shared; concurrent drain scripts would race the floor).
func TestGenerateMultiNormalised(t *testing.T) {
	sawChurn, sawFaults := false, false
	for seed := int64(0); seed < 30; seed++ {
		mc, err := GenerateMulti(seed)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if n := len(mc.Cases); n < 2 || n > 3 {
			t.Errorf("seed %d: %d cases, want 2-3", seed, n)
		}
		clean, churned := 0, 0
		for _, c := range mc.Cases {
			if c.Faults == nil && len(c.Churn) == 0 {
				clean++
			}
			if len(c.Churn) > 0 {
				churned++
				sawChurn = true
			}
			if c.Faults != nil {
				sawFaults = true
			}
		}
		if clean == 0 {
			t.Errorf("seed %d: no clean sub-case", seed)
		}
		if churned > 1 {
			t.Errorf("seed %d: %d churned sub-cases, want at most 1", seed, churned)
		}
	}
	if !sawChurn {
		t.Error("no seed in 0..29 drew churn; generator too weak")
	}
	if !sawFaults {
		t.Error("no seed in 0..29 drew faults; generator too weak")
	}
}

// TestMultiConform runs a few multi-run scenarios for real: concurrent
// cases on one shared fleet, every run byte-identical to its solo
// baseline. Seeds are chosen from the deterministic generator, so
// together with TestGenerateMultiNormalised this covers clean
// neighbours running beside faulted and churned ones.
func TestMultiConform(t *testing.T) {
	seeds := []int64{0, 1, 4}
	if testing.Short() {
		seeds = seeds[:1]
	}
	for _, seed := range seeds {
		mc, err := GenerateMulti(seed)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		rep, err := RunMulti(context.Background(), mc)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if rep.Failed() {
			t.Errorf("seed %d diverged: %v", seed, rep.Divergences)
		}
		if len(rep.Runs) != len(mc.Cases) {
			t.Errorf("seed %d: %d runs for %d cases", seed, len(rep.Runs), len(mc.Cases))
		}
	}
}

// TestSweepMultiLeg: the sweep's multi leg runs for seeds divisible by
// MultiEvery and counts into the result.
func TestSweepMultiLeg(t *testing.T) {
	if testing.Short() {
		t.Skip("full sweep leg in -short")
	}
	res := Sweep(context.Background(), SweepOptions{
		Start: 0, Seeds: 2, Jobs: 2, MultiEvery: 2, Log: t.Logf,
	})
	for _, err := range res.Errors {
		t.Errorf("harness error: %v", err)
	}
	if res.MultiRan != 1 {
		t.Errorf("multi ran %d times, want 1 (seeds 0-1, every 2nd)", res.MultiRan)
	}
	if len(res.Failures) > 0 || len(res.MultiFailures) > 0 {
		t.Errorf("unexpected divergences: %v / %v", res.Failures, res.MultiFailures)
	}
}

// TestMultiReductionsDropRunFirst: the cheapest reductions — tried
// before any per-case surgery — drop one concurrent run each.
func TestMultiReductionsDropRunFirst(t *testing.T) {
	mc, err := GenerateMulti(0)
	if err != nil {
		t.Fatal(err)
	}
	reds := multiReductions(mc)
	if len(reds) < len(mc.Cases) {
		t.Fatalf("%d reductions for %d cases", len(reds), len(mc.Cases))
	}
	for i := 0; i < len(mc.Cases); i++ {
		if len(reds[i].Cases) != len(mc.Cases)-1 {
			t.Errorf("reduction %d has %d cases, want %d (a run-drop)",
				i, len(reds[i].Cases), len(mc.Cases)-1)
		}
	}
	// Everything after the run-drops keeps the full case count.
	for i := len(mc.Cases); i < len(reds); i++ {
		if len(reds[i].Cases) != len(mc.Cases) {
			t.Errorf("reduction %d has %d cases, want %d (per-case surgery)",
				i, len(reds[i].Cases), len(mc.Cases))
		}
	}
}

// TestShrinkMultiDropsRuns drives ShrinkMulti with an injected oracle
// (via the runMultiForShrink seam): the divergence "reproduces"
// whenever a target sub-case is present, so the minimizer must strip
// every other concurrent run and end at exactly one.
func TestShrinkMultiDropsRuns(t *testing.T) {
	mc, err := GenerateMulti(2)
	if err != nil {
		t.Fatal(err)
	}
	if len(mc.Cases) < 2 {
		t.Fatalf("seed 2 drew %d cases; test wants 2+", len(mc.Cases))
	}
	target := mc.Cases[len(mc.Cases)-1].Seed

	orig := runMultiForShrink
	defer func() { runMultiForShrink = orig }()
	runMultiForShrink = func(ctx context.Context, m *MultiCase) (*MultiReport, error) {
		rep := &MultiReport{Multi: m}
		for _, c := range m.Cases {
			if c.Seed == target {
				rep.Divergences = append(rep.Divergences,
					Divergence{Oracle: "outputs", Engine: "fleet[0]", Detail: "injected"})
			}
		}
		return rep, nil
	}

	rep := &MultiReport{Multi: mc, Divergences: []Divergence{
		{Oracle: "outputs", Engine: "fleet[0]", Detail: "injected"}}}
	min, minRep := ShrinkMulti(context.Background(), rep, 30)
	if len(min.Cases) != 1 {
		t.Fatalf("minimized to %d cases, want 1", len(min.Cases))
	}
	if min.Cases[0].Seed != target {
		t.Errorf("kept case seed %d, want %d", min.Cases[0].Seed, target)
	}
	if !minRep.Failed() {
		t.Error("minimized report no longer fails")
	}
}

// TestWriteMultiRepro: a multi repro directory holds one individually
// replayable sub-directory per run plus the scenario summary.
func TestWriteMultiRepro(t *testing.T) {
	mc, err := GenerateMulti(3)
	if err != nil {
		t.Fatal(err)
	}
	rep := &MultiReport{Multi: mc}
	for i, c := range mc.Cases {
		rep.Runs = append(rep.Runs, &MultiRun{Case: c,
			Solo:  &EngineRun{Name: "solo"},
			Fleet: &EngineRun{Name: "fleet"}})
		_ = i
	}
	rep.Divergences = []Divergence{{Oracle: "outputs", Engine: "fleet[0] (seed 1)", Detail: "x"}}

	dir := t.TempDir()
	if err := WriteMultiRepro(dir, rep); err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(filepath.Join(dir, "multi.txt"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(b), "FAIL: 1 divergence(s)") {
		t.Errorf("multi.txt missing failure summary:\n%s", b)
	}
	for i := range mc.Cases {
		sub := filepath.Join(dir, "case-"+string(rune('0'+i)))
		c, err := LoadRepro(sub)
		if err != nil {
			t.Fatalf("case-%d: %v", i, err)
		}
		if c.Seed != mc.Cases[i].Seed {
			t.Errorf("case-%d round-tripped seed %d, want %d", i, c.Seed, mc.Cases[i].Seed)
		}
	}
}
