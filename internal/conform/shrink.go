package conform

import (
	"context"
	"fmt"
	"sort"

	"repro/internal/exec"
	"repro/internal/graph"
)

// Shrink reduces a diverging case to a local minimum that still shows
// at least one of the original report's oracle classes. It first
// rewrites the case onto its flattened design (dissolving hierarchy so
// reductions are simple node/arc surgery), then repeatedly applies the
// first reduction that keeps the case bad:
//
//   - drop one churn op;
//   - drop one injected fault;
//   - delete a task no other task depends on (and its arcs);
//   - delete one task-to-task arc, seeding the consumer's lost
//     variable with a constant so its routine still runs.
//
// budget bounds the number of candidate re-executions (each one runs
// all five engines). Shrink never returns a passing case: if a
// reduction stops reproducing the divergence it is discarded.
func Shrink(ctx context.Context, rep *Report, budget int) (*Case, *Report) {
	classes := rep.Classes()
	bad := func(c *Case) *Report {
		r, err := RunCase(ctx, c)
		if err != nil {
			return nil // infeasible reduction, not a divergence
		}
		for o := range r.Classes() {
			if classes[o] {
				return r
			}
		}
		return nil
	}

	best, bestRep := rep.Case, rep
	if flatCase, err := rebuildFlat(rep.Case); err == nil && budget > 0 {
		budget--
		if r := bad(flatCase); r != nil {
			best, bestRep = flatCase, r
		}
	}

	for budget > 0 {
		improved := false
		for _, cand := range reductions(best) {
			if budget == 0 {
				break
			}
			budget--
			if r := bad(cand); r != nil {
				best, bestRep = cand, r
				improved = true
				break // restart from the reduced case
			}
		}
		if !improved {
			break
		}
	}
	return best, bestRep
}

// rebuildFlat rewrites the case onto its flattened design: hierarchy is
// dissolved, storage cells are re-attached as one IN cell feeding every
// external input and one OUT cell collecting every external output.
// Re-flattening the rebuilt design yields the same task graph, so the
// case's behaviour is unchanged — but reductions no longer have to
// reason about sub-node port binding.
func rebuildFlat(c *Case) (*Case, error) {
	flat, err := c.Design.Flatten()
	if err != nil {
		return nil, err
	}
	g := graph.New(c.Design.Name + "~flat")
	for _, n := range flat.Graph.Nodes() {
		t := g.MustAddTask(n.ID, n.Label, 1)
		t.Routine = n.Routine
	}
	for _, a := range flat.Graph.Arcs() {
		g.MustConnect(a.From, a.To, a.Var, a.Words)
	}
	attachStorage(g, flat)
	cc := *c
	cc.Design = g
	return &cc, nil
}

// attachStorage adds IN/OUT storage cells wired to the flat graph's
// external bindings.
func attachStorage(g *graph.Graph, flat *graph.Flat) {
	var haveIn bool
	for _, id := range sortedKeys(flat.ExternalIn) {
		for _, v := range flat.ExternalIn[id] {
			if !haveIn {
				g.MustAddStorage("IN", "inputs")
				haveIn = true
			}
			g.MustConnect("IN", id, v, 1)
		}
	}
	// One cell per output variable: a storage cell may have at most one
	// writer, and distinct tasks may export distinct results.
	for _, id := range sortedKeys(flat.ExternalOut) {
		for _, v := range flat.ExternalOut[id] {
			cell := graph.NodeID("OUT:" + v)
			if g.Node(cell) == nil {
				g.MustAddStorage(cell, v)
			}
			g.MustConnect(id, cell, v, 1)
		}
	}
}

func sortedKeys(m map[graph.NodeID][]string) []graph.NodeID {
	ids := make([]graph.NodeID, 0, len(m))
	for id := range m {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// reductions enumerates the one-step simplifications of a flat-design
// case, cheapest first.
func reductions(c *Case) []*Case {
	var out []*Case

	// Churn ops drop first: they are the cheapest reduction, and a
	// divergence that survives without its fleet changes implicates the
	// engines, not the elasticity machinery.
	for i := range c.Churn {
		cc := *c
		cc.Churn = append(append([]ChurnOp(nil), c.Churn[:i]...), c.Churn[i+1:]...)
		if len(cc.Churn) == 0 {
			cc.Churn = nil
		}
		out = append(out, &cc)
	}

	if c.Faults != nil {
		for i := range c.Faults.Faults {
			cc := *c
			p := &exec.FaultPlan{Faults: append([]exec.Fault(nil), c.Faults.Faults...)}
			p.Faults = append(p.Faults[:i], p.Faults[i+1:]...)
			if len(p.Faults) == 0 {
				cc.Faults = nil
			} else {
				cc.Faults = p
			}
			out = append(out, &cc)
		}
	}

	g := c.Design
	taskCount := len(g.Tasks())
	for _, n := range g.Tasks() {
		if taskCount <= 1 {
			break
		}
		dependedOn := false
		for _, a := range g.SuccArcs(n.ID) {
			if t := g.Node(a.To); t != nil && t.Kind == graph.KindTask {
				dependedOn = true
				break
			}
		}
		if dependedOn {
			continue
		}
		if cc, ok := withoutTask(c, n.ID); ok {
			out = append(out, cc)
		}
	}

	for _, a := range g.Arcs() {
		from, to := g.Node(a.From), g.Node(a.To)
		if from == nil || to == nil || from.Kind != graph.KindTask || to.Kind != graph.KindTask {
			continue
		}
		out = append(out, withoutArc(c, a))
	}
	return out
}

// withoutTask rebuilds the design with one task (and its arcs) removed.
// Storage cells left with no arcs are dropped too.
func withoutTask(c *Case, victim graph.NodeID) (*Case, bool) {
	g := c.Design
	ng := graph.New(g.Name)
	for _, n := range g.Nodes() {
		if n.ID == victim {
			continue
		}
		switch n.Kind {
		case graph.KindTask:
			t := ng.MustAddTask(n.ID, n.Label, 1)
			t.Routine = n.Routine
		case graph.KindStorage:
			if storageOrphaned(g, n.ID, victim) {
				continue
			}
			ng.MustAddStorage(n.ID, n.Label)
		default:
			return nil, false // hierarchy: only flat designs are reduced
		}
	}
	for _, a := range g.Arcs() {
		if a.From == victim || a.To == victim {
			continue
		}
		if ng.Node(a.From) == nil || ng.Node(a.To) == nil {
			continue
		}
		ng.MustConnect(a.From, a.To, a.Var, a.Words)
	}
	cc := *c
	cc.Design = ng
	return &cc, true
}

// storageOrphaned reports whether removing victim leaves the storage
// cell with no arcs at all.
func storageOrphaned(g *graph.Graph, cell, victim graph.NodeID) bool {
	for _, a := range g.SuccArcs(cell) {
		if a.To != victim {
			return false
		}
	}
	for _, a := range g.PredArcs(cell) {
		if a.From != victim {
			return false
		}
	}
	return true
}

// withoutArc rebuilds the design with one task-to-task arc removed; the
// consumer's routine gains a constant binding for the variable it no
// longer receives, so it still evaluates.
func withoutArc(c *Case, victim graph.Arc) *Case {
	g := c.Design
	ng := graph.New(g.Name)
	for _, n := range g.Nodes() {
		switch n.Kind {
		case graph.KindTask:
			t := ng.MustAddTask(n.ID, n.Label, 1)
			t.Routine = n.Routine
			if n.ID == victim.To {
				t.Routine = fmt.Sprintf("%s = 1\n%s", victim.Var, n.Routine)
			}
		case graph.KindStorage:
			ng.MustAddStorage(n.ID, n.Label)
		}
	}
	skipped := false
	for _, a := range g.Arcs() {
		if !skipped && a == victim {
			skipped = true
			continue
		}
		if ng.Node(a.From) == nil || ng.Node(a.To) == nil {
			continue
		}
		ng.MustConnect(a.From, a.To, a.Var, a.Words)
	}
	cc := *c
	cc.Design = ng
	return &cc
}
