package conform

import (
	"context"
	"fmt"
	"math/rand"
	"strconv"
	"strings"
	"time"

	"repro/internal/wire"
)

// ChurnOp is one fleet change fired against a distributed engine
// mid-run: a worker joining through the coordinator's control plane,
// or a graceful drain of one original worker. Ops are best-effort by
// construction — a conform run may finish before the op's offset, and
// the coordinator rightly rejects fleet changes on a finishing run —
// so the oracle is not "the op landed" but "outputs are byte-identical
// whether or not it did".
type ChurnOp struct {
	AtMS   int    // wall-clock offset from run start, in milliseconds
	Op     string // "join" or "drain"
	Worker int    // drain target, modulo the fleet size
}

func (o ChurnOp) String() string {
	if o.Op == "drain" {
		return fmt.Sprintf("drain:%d@%d", o.Worker, o.AtMS)
	}
	return fmt.Sprintf("%s@%d", o.Op, o.AtMS)
}

// ChurnString renders a churn script as its comma-separated spec, the
// inverse of ParseChurn.
func ChurnString(ops []ChurnOp) string {
	parts := make([]string, len(ops))
	for i, o := range ops {
		parts[i] = o.String()
	}
	return strings.Join(parts, ",")
}

// ParseChurn parses a churn spec: comma-separated "join@MS" and
// "drain:WORKER@MS" ops, e.g. "join@5,drain:1@12".
func ParseChurn(s string) ([]ChurnOp, error) {
	var ops []ChurnOp
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		head, at, ok := strings.Cut(part, "@")
		if !ok {
			return nil, fmt.Errorf("conform: churn op %q has no @MS offset", part)
		}
		ms, err := strconv.Atoi(at)
		if err != nil || ms < 0 {
			return nil, fmt.Errorf("conform: churn op %q has bad offset %q", part, at)
		}
		op := ChurnOp{AtMS: ms}
		switch {
		case head == "join":
			op.Op = "join"
		case strings.HasPrefix(head, "drain:"):
			w, err := strconv.Atoi(head[len("drain:"):])
			if err != nil || w < 0 {
				return nil, fmt.Errorf("conform: churn op %q has bad worker index", part)
			}
			op.Op, op.Worker = "drain", w
		default:
			return nil, fmt.Errorf("conform: unknown churn op %q", part)
		}
		ops = append(ops, op)
	}
	if len(ops) == 0 {
		return nil, fmt.Errorf("conform: empty churn spec %q", s)
	}
	return ops, nil
}

// churnNeedsJoin reports whether any op wants a spare worker to offer.
func churnNeedsJoin(ops []ChurnOp) bool {
	for _, o := range ops {
		if o.Op == "join" {
			return true
		}
	}
	return false
}

// drawChurn draws a churn script: a lone drain, a lone join, or a join
// followed by a drain — the elastic replace move.
func drawChurn(rng *rand.Rand, workers int) []ChurnOp {
	switch rng.Intn(3) {
	case 0:
		return []ChurnOp{{Op: "drain", Worker: rng.Intn(workers), AtMS: 1 + rng.Intn(20)}}
	case 1:
		return []ChurnOp{{Op: "join", AtMS: 1 + rng.Intn(20)}}
	default:
		at := 1 + rng.Intn(15)
		return []ChurnOp{
			{Op: "join", AtMS: at},
			{Op: "drain", Worker: rng.Intn(workers), AtMS: at + 1 + rng.Intn(10)},
		}
	}
}

// applyChurn fires the ops at their offsets against the run's control
// listener. Rejections are ultimately swallowed: "run is finishing"
// means the op raced the run's natural completion, which is a
// legitimate interleaving the outputs oracle must survive, not a
// harness failure. Transient rejections — a replan in flight, no free
// capacity yet (a join only lands once a crash or departure frees
// processors), the control listener not up — are retried briefly so an
// op scheduled inside the run's window usually lands.
func applyChurn(ctx context.Context, tr wire.Transport, ctl <-chan string, joiner string, ops []ChurnOp, workers int) {
	var control string
	select {
	case control = <-ctl:
	case <-ctx.Done():
		return
	}
	transient := func(err error) bool {
		for _, s := range []string{"retry", "capacity", "dial", "refused", "no listener"} {
			if strings.Contains(err.Error(), s) {
				return true
			}
		}
		return false
	}
	start := time.Now()
	for _, op := range ops {
		select {
		case <-time.After(time.Duration(op.AtMS)*time.Millisecond - time.Since(start)):
		case <-ctx.Done():
			return
		}
		for attempt := 0; attempt < 40 && ctx.Err() == nil; attempt++ {
			octx, cancel := context.WithTimeout(ctx, time.Second)
			var err error
			switch op.Op {
			case "join":
				err = wire.Announce(octx, tr, control, joiner)
			case "drain":
				err = wire.Drain(octx, tr, control, op.Worker%workers, "")
			}
			cancel()
			if err == nil || !transient(err) {
				break
			}
			time.Sleep(5 * time.Millisecond)
		}
	}
}
