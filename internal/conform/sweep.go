package conform

import (
	"context"
	"fmt"
	"path/filepath"
	"sort"
	"sync"

	"repro/internal/machine"
)

// SweepOptions configures a deterministic multi-seed sweep.
type SweepOptions struct {
	// Start is the first seed; Seeds is how many consecutive seeds to
	// run. The sweep's outcome is a pure function of (Start, Seeds,
	// SkewComm) — job count and scheduling do not affect it.
	Start, Seeds int64
	// Jobs is the number of cases run concurrently (min 1). Each case
	// already runs many goroutines (workers, processors), so a small
	// number goes a long way.
	Jobs int
	// OutDir, when non-empty, receives one repro directory per failing
	// case, named seed-<N>.
	OutDir string
	// SkewComm is applied to every generated case (the deliberate
	// model-divergence hook; zero in normal sweeps).
	SkewComm machine.Time
	// ShrinkBudget bounds minimization re-executions per failure
	// (0 = 40).
	ShrinkBudget int
	// MultiEvery, when positive, also runs the multi-run concurrency
	// scenario (GenerateMulti/RunMulti: several cases multiplexed on one
	// shared fleet) for every seed divisible by it. Zero disables the
	// multi leg. Multi scenarios skip SkewComm: the skew hook targets
	// the trace-vs-sim oracle, which the isolation oracle does not use.
	MultiEvery int64
	// Log, when set, receives progress lines.
	Log func(format string, args ...any)
}

// SweepResult summarises a sweep.
type SweepResult struct {
	Ran       int
	Failures  []*Report // minimized reports, ordered by seed
	ReproDirs []string  // where each failure was written (parallel to Failures; "" when OutDir unset)
	Errors    []error   // harness errors (generation/setup), not divergences

	MultiRan      int
	MultiFailures []*MultiReport // minimized multi-run reports, ordered by seed
	MultiDirs     []string       // parallel to MultiFailures; "" when OutDir unset
}

// Failed reports whether any case diverged or the harness errored.
func (r *SweepResult) Failed() bool {
	return len(r.Failures) > 0 || len(r.MultiFailures) > 0 || len(r.Errors) > 0
}

// Sweep generates and runs cases for opt.Seeds consecutive seeds,
// minimizing every divergence it finds and (optionally) writing repro
// directories. The result is deterministic for a given option set.
func Sweep(ctx context.Context, opt SweepOptions) *SweepResult {
	jobs := opt.Jobs
	if jobs < 1 {
		jobs = 1
	}
	budget := opt.ShrinkBudget
	if budget <= 0 {
		budget = 40
	}
	logf := opt.Log
	if logf == nil {
		logf = func(string, ...any) {}
	}

	type outcome struct {
		seed     int64
		rep      *Report
		dir      string
		err      error
		multiRan bool
		mrep     *MultiReport
		mdir     string
	}
	var (
		mu       sync.Mutex
		outcomes []outcome
		wg       sync.WaitGroup
	)
	sem := make(chan struct{}, jobs)
	for i := int64(0); i < opt.Seeds; i++ {
		seed := opt.Start + i
		wg.Add(1)
		sem <- struct{}{}
		go func(seed int64) {
			defer wg.Done()
			defer func() { <-sem }()
			o := outcome{seed: seed}
			defer func() {
				mu.Lock()
				outcomes = append(outcomes, o)
				mu.Unlock()
			}()
			c, err := Generate(seed)
			if err != nil {
				o.err = fmt.Errorf("seed %d: generate: %w", seed, err)
				return
			}
			c.SkewComm = opt.SkewComm
			rep, err := RunCase(ctx, c)
			if err != nil {
				o.err = fmt.Errorf("seed %d: %w", seed, err)
				return
			}
			if !rep.Failed() {
				logf("seed %d: ok (%d tasks, %s, %s)", seed,
					len(c.Design.Tasks()), c.Heuristic, c.Machine.Name)
			} else {
				logf("seed %d: DIVERGED (%d oracle hits), minimizing...", seed, len(rep.Divergences))
				_, min := Shrink(ctx, rep, budget)
				o.rep = min
				if opt.OutDir != "" {
					dir := filepath.Join(opt.OutDir, fmt.Sprintf("seed-%d", seed))
					if err := WriteRepro(dir, min); err != nil {
						o.err = fmt.Errorf("seed %d: writing repro: %w", seed, err)
						return
					}
					o.dir = dir
					logf("seed %d: repro written to %s", seed, dir)
				}
			}

			if opt.MultiEvery <= 0 || seed%opt.MultiEvery != 0 {
				return
			}
			mc, err := GenerateMulti(seed)
			if err != nil {
				o.err = fmt.Errorf("multi seed %d: generate: %w", seed, err)
				return
			}
			o.multiRan = true
			mrep, err := RunMulti(ctx, mc)
			if err != nil {
				o.err = fmt.Errorf("multi seed %d: %w", seed, err)
				return
			}
			if !mrep.Failed() {
				logf("seed %d: multi ok (%d concurrent runs)", seed, len(mc.Cases))
				return
			}
			logf("seed %d: multi DIVERGED (%d oracle hits), minimizing...", seed, len(mrep.Divergences))
			_, mmin := ShrinkMulti(ctx, mrep, budget)
			o.mrep = mmin
			if opt.OutDir != "" {
				dir := filepath.Join(opt.OutDir, fmt.Sprintf("seed-%d-multi", seed))
				if err := WriteMultiRepro(dir, mmin); err != nil {
					o.err = fmt.Errorf("multi seed %d: writing repro: %w", seed, err)
					return
				}
				o.mdir = dir
				logf("seed %d: multi repro written to %s", seed, dir)
			}
		}(seed)
	}
	wg.Wait()

	sort.Slice(outcomes, func(i, j int) bool { return outcomes[i].seed < outcomes[j].seed })
	res := &SweepResult{Ran: int(opt.Seeds)}
	for _, o := range outcomes {
		if o.err != nil {
			res.Errors = append(res.Errors, o.err)
		}
		if o.rep != nil {
			res.Failures = append(res.Failures, o.rep)
			res.ReproDirs = append(res.ReproDirs, o.dir)
		}
		if o.multiRan {
			res.MultiRan++
		}
		if o.mrep != nil {
			res.MultiFailures = append(res.MultiFailures, o.mrep)
			res.MultiDirs = append(res.MultiDirs, o.mdir)
		}
	}
	return res
}
