package conform

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"

	"repro/internal/exec"
	"repro/internal/graph"
	"repro/internal/machine"
	"repro/internal/pits"
	"repro/internal/sched"
)

// topologies is the pool of target-machine shapes a case may draw,
// covering every built-in topology kind at small sizes.
var topologies = []string{
	"full:2", "full:3", "full:4",
	"hypercube:1", "hypercube:2", "hypercube:3",
	"star:3", "star:4",
	"ring:4", "chain:3",
	"mesh:2x2", "torus:2x2", "tree:2x3",
}

// heuristics is the pool of schedulers a case may draw. MH is excluded:
// it charges link contention, which the contention-free replay engines
// deliberately do not model, so its schedules are not exact-replay
// comparable (see docs/TESTING.md).
var heuristics = []string{"serial", "hlfet", "etf", "ish", "dsh", "pack", "bsp"}

// Generate draws the conformance case for a seed. The same seed always
// yields the same case: design shape, routines, machine, heuristic,
// inputs and fault plan are all functions of the seed alone.
func Generate(seed int64) (*Case, error) {
	rng := rand.New(rand.NewSource(seed))
	c := &Case{Seed: seed, Inputs: pits.Env{}}

	nIn := 1 + rng.Intn(2)
	inVars := make([]string, nIn)
	for i := range inVars {
		inVars[i] = fmt.Sprintf("x%d", i)
		c.Inputs[inVars[i]] = pits.Num(float64(1 + rng.Intn(9)))
	}
	c.Design = genDesign(rng, seed, inVars)

	spec := topologies[rng.Intn(len(topologies))]
	topo, err := machine.ParseTopology(spec)
	if err != nil {
		return nil, err
	}
	p := machine.Params{
		ProcSpeed:   int64(1 + rng.Intn(2)),
		TaskStartup: machine.Time(rng.Intn(3)),
		MsgStartup:  machine.Time(1 + rng.Intn(8)),
		WordTime:    machine.Time(1 + rng.Intn(2)),
	}
	c.Machine, err = machine.New(spec, topo, p)
	if err != nil {
		return nil, err
	}
	c.Heuristic = heuristics[rng.Intn(len(heuristics))]

	// Fault plans are drawn against the actual schedule so they name
	// real processors and real cross-processor messages.
	_, sc, err := c.prepare()
	if err != nil {
		return nil, fmt.Errorf("seed %d: %w", seed, err)
	}
	if rng.Intn(100) < 40 {
		c.Faults = drawFaults(rng, sc)
	}
	// Fleet churn stays separate from fault plans: a replan barrier
	// re-sends in-flight messages outside the fault injector, so mixing
	// the two would blur which mechanism an oracle failure implicates.
	// Churn needs at least two workers, i.e. a multi-processor machine.
	if c.Faults == nil && c.Machine.NumPE() > 1 && rng.Intn(100) < 25 {
		c.Churn = drawChurn(rng, 2)
	}
	return c, nil
}

// genDesign builds a random layered dataflow design: input storage
// feeding a first layer, 1–3 middle layers combining their
// predecessors with straight-line arithmetic, optionally one layer
// wrapped in a decomposable sub-node (exercising hierarchy and port
// binding through Flatten), and one or two sinks writing external
// outputs, sometimes printing. Routines are deterministic PITS — no
// rand(), no division — so every engine computes identical values and
// calibration is exact.
func genDesign(rng *rand.Rand, seed int64, inVars []string) *graph.Graph {
	g := graph.New(fmt.Sprintf("conform-%d", seed))
	g.MustAddStorage("IN", "inputs")
	layers := 2 + rng.Intn(3)
	width := 1 + rng.Intn(3)
	words := func() int64 { return int64(1 + rng.Intn(3)) }

	prevVars := make([]string, width)
	prevNode := make([]graph.NodeID, width)
	for i := 0; i < width; i++ {
		id := graph.NodeID(fmt.Sprintf("t0_%d", i))
		v := fmt.Sprintf("v0_%d", i)
		x := inVars[rng.Intn(len(inVars))]
		n := g.MustAddTask(id, v, 1)
		n.Routine = fmt.Sprintf("%s = %s * %d + %d", v, x, 1+rng.Intn(4), rng.Intn(5))
		g.MustConnect("IN", id, x, words())
		prevVars[i], prevNode[i] = v, id
	}

	subLayer := -1
	if layers >= 3 && rng.Intn(2) == 0 {
		subLayer = 1 + rng.Intn(layers-2)
	}
	ops := []string{"+", "-", "*"}
	for l := 1; l < layers; l++ {
		type taskSpec struct {
			v, routine string
			uses       []int
		}
		specs := make([]taskSpec, width)
		curVars := make([]string, width)
		for i := 0; i < width; i++ {
			v := fmt.Sprintf("v%d_%d", l, i)
			uses := []int{i}
			if width > 1 && rng.Intn(2) == 0 {
				uses = append(uses, (i+1)%width)
			}
			var routine string
			if len(uses) == 2 {
				routine = fmt.Sprintf("%s = %s %s %s * %d",
					v, prevVars[uses[0]], ops[rng.Intn(len(ops))], prevVars[uses[1]], 1+rng.Intn(3))
			} else {
				routine = fmt.Sprintf("%s = %s %s %d",
					v, prevVars[uses[0]], ops[rng.Intn(len(ops))], 1+rng.Intn(5))
			}
			specs[i] = taskSpec{v: v, routine: routine, uses: uses}
			curVars[i] = v
		}
		curNode := make([]graph.NodeID, width)
		if l == subLayer {
			// Wrap the whole layer in one decomposable node. Boundary
			// port ids double as the variable names they carry: the
			// enclosing arcs bind to them by name during Flatten.
			sub := graph.New(fmt.Sprintf("layer%d", l))
			used := map[int]bool{}
			for _, s := range specs {
				for _, u := range s.uses {
					used[u] = true
				}
			}
			cols := make([]int, 0, len(used))
			for u := range used {
				cols = append(cols, u)
			}
			sort.Ints(cols)
			for _, u := range cols {
				sub.MustAddInput(graph.NodeID(prevVars[u]))
			}
			for i, s := range specs {
				id := graph.NodeID(fmt.Sprintf("i%d_%d", l, i))
				n := sub.MustAddTask(id, s.v, 1)
				n.Routine = s.routine
				for _, u := range s.uses {
					sub.MustConnect(graph.NodeID(prevVars[u]), id, prevVars[u], words())
				}
				sub.MustAddOutput(graph.NodeID(s.v))
				sub.MustConnect(id, graph.NodeID(s.v), s.v, words())
			}
			subID := graph.NodeID(fmt.Sprintf("sub%d", l))
			g.MustAddSub(subID, fmt.Sprintf("layer %d", l), sub)
			for _, u := range cols {
				g.MustConnect(prevNode[u], subID, prevVars[u], words())
			}
			for i := range specs {
				curNode[i] = subID
			}
		} else {
			for i, s := range specs {
				id := graph.NodeID(fmt.Sprintf("t%d_%d", l, i))
				n := g.MustAddTask(id, s.v, 1)
				n.Routine = s.routine
				for _, u := range s.uses {
					g.MustConnect(prevNode[u], id, prevVars[u], words())
				}
				curNode[i] = id
			}
		}
		prevVars, prevNode = curVars, curNode
	}

	snk := g.MustAddTask("snk", "sink", 1)
	terms := make([]string, width)
	for i := 0; i < width; i++ {
		terms[i] = prevVars[i]
		g.MustConnect(prevNode[i], "snk", prevVars[i], words())
	}
	snk.Routine = "out = " + strings.Join(terms, " + ")
	if rng.Intn(2) == 0 {
		snk.Routine += "\nprint \"sum \", out"
	}
	g.MustAddStorage("OUT", "result")
	g.MustConnect("snk", "OUT", "out", 1)

	if rng.Intn(100) < 40 {
		// A second sink taps one final-layer variable into its own
		// external output, so some cases have multiple result cells.
		i := rng.Intn(width)
		snk2 := g.MustAddTask("snk2", "sink 2", 1)
		snk2.Routine = fmt.Sprintf("out2 = %s * 3 + 1", prevVars[i])
		g.MustConnect(prevNode[i], "snk2", prevVars[i], words())
		g.MustAddStorage("OUT2", "result 2")
		g.MustConnect("snk2", "OUT2", "out2", 1)
	}
	return g
}

// drawFaults derives a fault plan from the schedule: possibly a crash
// of a busy processor (never on a single-processor machine — nothing
// could recover), plus up to two message faults on cross-processor
// messages. Returns nil when the schedule offers nothing to break.
func drawFaults(rng *rand.Rand, sc *sched.Schedule) *exec.FaultPlan {
	plan := &exec.FaultPlan{}
	if sc.Machine.NumPE() > 1 && rng.Intn(100) < 50 {
		var busy []int
		for pe := 0; pe < sc.Machine.NumPE(); pe++ {
			if len(sc.PESlots(pe)) > 0 {
				busy = append(busy, pe)
			}
		}
		// Only crash when at least two processors hold work: recovery
		// needs both a survivor and surviving results to matter.
		if len(busy) > 1 {
			pe := busy[rng.Intn(len(busy))]
			plan.Faults = append(plan.Faults, exec.Fault{
				Kind: exec.FaultCrash, PE: pe, Slot: rng.Intn(len(sc.PESlots(pe))),
			})
		}
	}
	var cross []sched.Msg
	for _, m := range sc.Msgs {
		if m.FromPE != m.ToPE {
			cross = append(cross, m)
		}
	}
	kinds := []exec.FaultKind{exec.FaultDrop, exec.FaultDup, exec.FaultDelay, exec.FaultCorrupt}
	for n := rng.Intn(3); n > 0 && len(cross) > 0; n-- {
		m := cross[rng.Intn(len(cross))]
		f := exec.Fault{Kind: kinds[rng.Intn(len(kinds))], From: m.From, To: m.To, Var: m.Var, Count: 1}
		if f.Kind == exec.FaultDelay {
			f.Delay = machine.Time(50 + rng.Intn(450))
		}
		plan.Faults = append(plan.Faults, f)
	}
	if len(plan.Faults) == 0 {
		return nil
	}
	return plan
}
