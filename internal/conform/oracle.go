package conform

import (
	"fmt"
	"sort"

	"repro/internal/graph"
	"repro/internal/machine"
	"repro/internal/trace"
)

// check runs every oracle over the engines' observations and appends
// the violations to the report.
func check(rep *Report, flat *graph.Flat) {
	_ = flat
	c := rep.Case
	for _, e := range rep.Engines {
		if e.Err != nil {
			rep.Divergences = append(rep.Divergences, Divergence{
				Oracle: "error", Engine: e.Name, Detail: e.Err.Error()})
		}
	}
	run := rep.Engine("runner")
	sim := rep.Engine("simulate")

	// Oracle: external outputs and printed lines are identical across
	// every engine that actually executes data. The runner is the
	// baseline; the distributed engines must match it byte for byte
	// (outputs compare via their canonical wire encoding).
	if run.Err == nil {
		for _, name := range []string{"inproc", "mesh", "tcp"} {
			e := rep.Engine(name)
			if e == nil || e.Err != nil {
				continue
			}
			if !sameBytes(e.OutBytes, run.OutBytes) {
				rep.Divergences = append(rep.Divergences, Divergence{
					Oracle: "outputs", Engine: name,
					Detail: fmt.Sprintf("runner %v != %s %v", run.Outputs, name, e.Outputs)})
			}
			if !stringsEqual(e.Printed, run.Printed) {
				rep.Divergences = append(rep.Divergences, Divergence{
					Oracle: "printed", Engine: name,
					Detail: fmt.Sprintf("runner %q != %s %q", run.Printed, name, e.Printed)})
			}
		}
	}

	// Oracle: fault-free, the virtual-time trace equals the simulated
	// one event for event, and its makespan equals the schedule's. A
	// non-zero SkewComm is expected to trip exactly these two.
	if run.Err == nil && sim.Err == nil && c.Faults == nil {
		compareTraces(rep, sim.Trace, run.Trace)
		want := rep.Schedule.Makespan()
		if got := maxTaskEnd(run.Trace); got != want {
			rep.Divergences = append(rep.Divergences, Divergence{
				Oracle: "makespan", Engine: "runner",
				Detail: fmt.Sprintf("trace makespan %s != scheduled %s", got, want)})
		}
	}

	if run.Err == nil {
		checkCausality(rep, run.Trace)
		checkConservation(rep, run.Trace)
	}
}

// compareTraces diffs the simulated and executed traces. Sequence
// numbers are zeroed on the run side: they are allocation order, which
// depends on goroutine interleaving, and the simulator leaves them 0.
func compareTraces(rep *Report, sim, run *trace.Trace) {
	if len(run.Events) != len(sim.Events) {
		rep.Divergences = append(rep.Divergences, Divergence{
			Oracle: "trace-vs-sim", Engine: "runner",
			Detail: fmt.Sprintf("%d run events vs %d simulated", len(run.Events), len(sim.Events))})
		return
	}
	const maxDiffs = 3
	diffs := 0
	for i := range sim.Events {
		ge := run.Events[i]
		ge.Seq = 0
		if ge != sim.Events[i] {
			rep.Divergences = append(rep.Divergences, Divergence{
				Oracle: "trace-vs-sim", Engine: "runner",
				Detail: fmt.Sprintf("event %d: run %+v != simulated %+v", i, run.Events[i], sim.Events[i])})
			if diffs++; diffs >= maxDiffs {
				return
			}
		}
	}
}

// maxTaskEnd returns the latest task completion in the trace.
func maxTaskEnd(tr *trace.Trace) (end machine.Time) {
	for _, e := range tr.Events {
		if e.Kind == trace.TaskEnd && e.At > end {
			end = e.At
		}
	}
	return end
}

// checkCausality verifies the runner trace is causally sound: every
// receive matches a recorded send by sequence number, and — when no
// crash rewinds an era — no receive precedes its send and each
// processor's task intervals are disjoint.
func checkCausality(rep *Report, tr *trace.Trace) {
	c := rep.Case
	sends := map[uint64]trace.Event{}
	for _, e := range tr.Events {
		if e.Kind == trace.MsgSend {
			sends[e.Seq] = e
		}
	}
	for _, e := range tr.Events {
		if e.Kind != trace.MsgRecv {
			continue
		}
		s, ok := sends[e.Seq]
		if !ok {
			rep.Divergences = append(rep.Divergences, Divergence{
				Oracle: "causality", Engine: "runner",
				Detail: fmt.Sprintf("receive of %s (seq %d) has no matching send", e.Var, e.Seq)})
			continue
		}
		if !c.HasCrash() && e.At < s.At {
			rep.Divergences = append(rep.Divergences, Divergence{
				Oracle: "causality", Engine: "runner",
				Detail: fmt.Sprintf("receive of %s at %s precedes its send at %s", e.Var, e.At, s.At)})
		}
	}
	if c.Faults != nil {
		return
	}
	// Per-PE slot monotonicity: pair each task's start and end on its
	// processor and require the intervals not to overlap.
	type span struct{ start, end machine.Time }
	perPE := map[int][]span{}
	open := map[int]map[graph.NodeID]machine.Time{}
	for _, e := range tr.Events {
		switch e.Kind {
		case trace.TaskStart:
			if open[e.PE] == nil {
				open[e.PE] = map[graph.NodeID]machine.Time{}
			}
			open[e.PE][e.Task] = e.At
		case trace.TaskEnd:
			st, ok := open[e.PE][e.Task]
			if !ok {
				rep.Divergences = append(rep.Divergences, Divergence{
					Oracle: "causality", Engine: "runner",
					Detail: fmt.Sprintf("task %s ends on PE %d without starting", e.Task, e.PE)})
				continue
			}
			delete(open[e.PE], e.Task)
			perPE[e.PE] = append(perPE[e.PE], span{st, e.At})
		}
	}
	for pe, opens := range open {
		for task := range opens {
			rep.Divergences = append(rep.Divergences, Divergence{
				Oracle: "causality", Engine: "runner",
				Detail: fmt.Sprintf("task %s starts on PE %d and never ends", task, pe)})
		}
	}
	for pe, spans := range perPE {
		sort.Slice(spans, func(i, j int) bool { return spans[i].start < spans[j].start })
		for i := 1; i < len(spans); i++ {
			if spans[i].start < spans[i-1].end {
				rep.Divergences = append(rep.Divergences, Divergence{
					Oracle: "causality", Engine: "runner",
					Detail: fmt.Sprintf("PE %d runs overlapping tasks (%s < %s)", pe, spans[i].start, spans[i-1].end)})
			}
		}
	}
}

// checkConservation verifies message conservation in the runner trace.
// Crash-free, every logical delivery is sent exactly once and consumed
// exactly once — acknowledged retransmission heals injected drops,
// duplicates and corruptions without extra MsgSend/MsgRecv events, so
// the counts match per (producer, consumer, variable) key even under
// message faults. After a crash, re-executed eras re-send work whose
// receipts the new epoch may discard, so sends may only exceed
// receives, never undershoot them.
func checkConservation(rep *Report, tr *trace.Trace) {
	type key struct {
		task graph.NodeID
		v    string
	}
	sends, recvs := map[key]int{}, map[key]int{}
	var totalSend, totalRecv int
	for _, e := range tr.Events {
		switch e.Kind {
		case trace.MsgSend:
			sends[key{e.Task, e.Var}]++
			totalSend++
		case trace.MsgRecv:
			// MsgRecv events carry the producer task, same as MsgSend,
			// so the per-key counts are directly comparable.
			recvs[key{e.Task, e.Var}]++
			totalRecv++
		}
	}
	if rep.Case.HasCrash() {
		if totalSend < totalRecv {
			rep.Divergences = append(rep.Divergences, Divergence{
				Oracle: "conservation", Engine: "runner",
				Detail: fmt.Sprintf("%d sends < %d receives after crash recovery", totalSend, totalRecv)})
		}
		return
	}
	if totalSend != totalRecv {
		rep.Divergences = append(rep.Divergences, Divergence{
			Oracle: "conservation", Engine: "runner",
			Detail: fmt.Sprintf("%d sends != %d receives", totalSend, totalRecv)})
		return
	}
	for k, n := range sends {
		if recvs[k] != n {
			rep.Divergences = append(rep.Divergences, Divergence{
				Oracle: "conservation", Engine: "runner",
				Detail: fmt.Sprintf("%s/%s sent %d times, received %d", k.task, k.v, n, recvs[k])})
		}
	}
}

func stringsEqual(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
