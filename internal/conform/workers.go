package conform

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/wire"
)

// startWorkers launches n worker daemons on the given transport and
// returns their bound addresses plus a shutdown function that waits for
// them to exit and reports any worker failure. listen maps a worker
// index to the address it should listen on ("127.0.0.1:0" for TCP; any
// distinct name for inproc).
func startWorkers(tr wire.Transport, listen func(i int) string, n int) ([]string, func() error, error) {
	ctx, cancel := context.WithCancel(context.Background())
	addrs := make([]string, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		ready := make(chan struct{})
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			err := wire.ServeWorker(ctx, tr, listen(i), wire.WorkerOptions{}, func(bound string) {
				addrs[i] = bound
				close(ready)
			})
			if err != nil && !errors.Is(err, context.Canceled) {
				errs[i] = err
			}
		}(i)
		select {
		case <-ready:
		case <-time.After(10 * time.Second):
			cancel()
			wg.Wait()
			return nil, nil, fmt.Errorf("worker %d never came up", i)
		}
	}
	return addrs, func() error {
		cancel()
		wg.Wait()
		return errors.Join(errs...)
	}, nil
}
