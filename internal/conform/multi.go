package conform

import (
	"context"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"time"

	"repro/internal/graph"
	"repro/internal/sched"
	"repro/internal/wire"
)

// MultiCase is a concurrency conformance scenario: several independent
// seeded cases executed at the same time on ONE shared worker fleet.
// The oracle is isolation — every run must compute exactly what it
// computes alone. Worker daemons multiplex runs keyed by run ID, so a
// frame, checkpoint or barrier leaking between concurrent runs shows
// up here as an outputs/printed divergence against the solo baseline.
type MultiCase struct {
	Seed  int64
	Cases []*Case
}

// GenerateMulti draws the multi-run scenario for a seed: two or three
// sub-cases (each a normal Generate case under a derived sub-seed)
// destined for one shared two-worker fleet. Determinism matches
// Generate: the same seed always yields the same scenario.
//
// Two normalisations keep the oracle sharp. At least one sub-case is
// always clean (no faults, no churn): a run with fault injection or
// fleet churn active must never disturb a clean neighbour, which is
// the isolation property this suite exists to check. And at most one
// sub-case keeps a churn script: churn is fleet-level here (the fleet
// is shared), and concurrent drain scripts would race each other over
// the membership floor, turning placement noise into spurious
// harness-side rejections.
func GenerateMulti(seed int64) (*MultiCase, error) {
	rng := rand.New(rand.NewSource(seed ^ 0x6d756c7469)) // "multi"
	k := 2 + rng.Intn(2)
	mc := &MultiCase{Seed: seed}
	for i := 0; i < k; i++ {
		sub := seed*131 + int64(i)*17 + 1
		c, err := Generate(sub)
		if err != nil {
			return nil, fmt.Errorf("multi seed %d: sub-case %d: %w", seed, i, err)
		}
		mc.Cases = append(mc.Cases, c)
	}
	churned := false
	for _, c := range mc.Cases {
		if len(c.Churn) > 0 {
			if churned {
				c.Churn = nil
			}
			churned = true
		}
	}
	clean := false
	for _, c := range mc.Cases {
		if c.Faults == nil && len(c.Churn) == 0 {
			clean = true
			break
		}
	}
	if !clean {
		last := mc.Cases[len(mc.Cases)-1]
		last.Faults = nil
		last.Churn = nil
	}
	return mc, nil
}

// MultiRun is one sub-case's pair of observations: the solo baseline
// (the virtual-time single-process runner, fully deterministic) and
// the same case executed concurrently with its neighbours on the
// shared fleet.
type MultiRun struct {
	Case  *Case
	Solo  *EngineRun
	Fleet *EngineRun
}

// MultiReport is the outcome of running a MultiCase.
type MultiReport struct {
	Multi       *MultiCase
	Runs        []*MultiRun
	Divergences []Divergence
}

// Failed reports whether any oracle fired.
func (r *MultiReport) Failed() bool { return len(r.Divergences) > 0 }

// Classes returns the distinct oracle classes that fired.
func (r *MultiReport) Classes() map[string]bool {
	cs := map[string]bool{}
	for _, d := range r.Divergences {
		cs[d.Oracle] = true
	}
	return cs
}

// RunMulti executes every sub-case concurrently on one shared
// two-worker in-process fleet and checks the isolation oracle: each
// run's external outputs and printed lines must be byte-identical to
// its own solo baseline, exactly as if the neighbours did not exist.
// Traces are not compared — fleet runs are wall-clock and their
// timings legitimately differ run to run (the same reason RunCase
// checks trace-vs-sim only on the virtual-time engine) — but outputs
// and printed lines are timing-independent, so they are THE isolation
// oracle, mirroring how the elasticity oracle works for churn.
//
// Churn scripts (at most one sub-case has one, see GenerateMulti) fire
// against the fleet's persistent control listener, so a drain
// evacuates the worker from EVERY run it hosts while the clean
// neighbours are mid-flight — the strongest version of the oracle.
//
// A non-nil error means the harness could not set the scenario up;
// engine failures are "error"-class divergences in the report.
func RunMulti(ctx context.Context, mc *MultiCase) (*MultiReport, error) {
	rep := &MultiReport{Multi: mc}

	// Prepare every sub-case and take its solo baseline first: the
	// baseline is single-process and deterministic, so running it before
	// the fleet exists keeps "solo" honest.
	type prepared struct {
		flat *graph.Flat
		sc   *sched.Schedule
	}
	preps := make([]prepared, len(mc.Cases))
	for i, c := range mc.Cases {
		flat, sc, err := c.prepare()
		if err != nil {
			return nil, fmt.Errorf("multi seed %d: case %d (seed %d): %w", mc.Seed, i, c.Seed, err)
		}
		preps[i] = prepared{flat: flat, sc: sc}
		solo := &EngineRun{Name: fmt.Sprintf("solo[%d]", i)}
		if res, err := c.runner(true).Run(sc, flat); err != nil {
			solo.Err = err
		} else {
			fillEngine(solo, res)
		}
		rep.Runs = append(rep.Runs, &MultiRun{Case: c, Solo: solo})
	}

	tr := wire.Inproc()
	listen := func(i int) string { return fmt.Sprintf("conform-multi-%d-w%d", mc.Seed, i) }
	addrs, stop, err := startWorkers(tr, listen, 2)
	if err != nil {
		return nil, fmt.Errorf("multi seed %d: workers: %w", mc.Seed, err)
	}
	defer stop()

	f := &wire.Fleet{
		Transport:      tr,
		Control:        fmt.Sprintf("conform-multi-%d-ctl", mc.Seed),
		Seed:           addrs,
		HeartbeatEvery: 50 * time.Millisecond,
		PeerTimeout:    5 * time.Second,
		Mesh:           true,
	}
	if err := f.Start(); err != nil {
		return nil, fmt.Errorf("multi seed %d: fleet: %w", mc.Seed, err)
	}
	defer f.Close()

	rctx, cancel := context.WithTimeout(ctx, 2*time.Minute)
	defer cancel()

	// Fire the (single) churn script against the fleet control plane.
	// Fleet drains are addressed by worker address, not index — the
	// fleet hosts many runs at once, so "worker 1" is only meaningful
	// relative to the original seed membership.
	for _, c := range mc.Cases {
		if len(c.Churn) == 0 {
			continue
		}
		joiner := ""
		if churnNeedsJoin(c.Churn) {
			jaddrs, jstop, err := startWorkers(tr, func(int) string {
				return fmt.Sprintf("conform-multi-%d-joiner", mc.Seed)
			}, 1)
			if err != nil {
				return nil, fmt.Errorf("multi seed %d: joiner: %w", mc.Seed, err)
			}
			defer jstop()
			joiner = jaddrs[0]
		}
		go applyFleetChurn(rctx, tr, f.Addr(), joiner, c.Churn, addrs)
		break
	}

	var wg sync.WaitGroup
	for i, c := range mc.Cases {
		wg.Add(1)
		go func(i int, c *Case) {
			defer wg.Done()
			fleet := &EngineRun{Name: fmt.Sprintf("fleet[%d]", i)}
			res, err := f.Run(rctx, c.runner(false), preps[i].sc, preps[i].flat)
			if err != nil {
				fleet.Err = err
			} else {
				fillEngine(fleet, res)
			}
			rep.Runs[i].Fleet = fleet
		}(i, c)
	}
	wg.Wait()

	checkMulti(rep)
	return rep, nil
}

// checkMulti runs the isolation oracle over every sub-run.
func checkMulti(rep *MultiReport) {
	for i, r := range rep.Runs {
		name := fmt.Sprintf("fleet[%d] (seed %d)", i, r.Case.Seed)
		if r.Solo.Err != nil {
			rep.Divergences = append(rep.Divergences, Divergence{
				Oracle: "error", Engine: fmt.Sprintf("solo[%d]", i), Detail: r.Solo.Err.Error()})
			continue
		}
		if r.Fleet.Err != nil {
			rep.Divergences = append(rep.Divergences, Divergence{
				Oracle: "error", Engine: name, Detail: r.Fleet.Err.Error()})
			continue
		}
		if !sameBytes(r.Fleet.OutBytes, r.Solo.OutBytes) {
			rep.Divergences = append(rep.Divergences, Divergence{
				Oracle: "outputs", Engine: name,
				Detail: fmt.Sprintf("outputs differ from solo run: solo %v, fleet %v",
					r.Solo.Outputs, r.Fleet.Outputs)})
		}
		if !samePrinted(r.Fleet.Printed, r.Solo.Printed) {
			rep.Divergences = append(rep.Divergences, Divergence{
				Oracle: "printed", Engine: name,
				Detail: fmt.Sprintf("printed lines differ from solo run: solo %q, fleet %q",
					r.Solo.Printed, r.Fleet.Printed)})
		}
	}
}

// samePrinted compares printed-line slices treating nil and empty as
// equal.
func samePrinted(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// applyFleetChurn fires churn ops against the FLEET control listener
// (rather than a single run's): joins announce a spare member, drains
// name the victim by address and evacuate it from every run it hosts.
// Same best-effort semantics as applyChurn — the oracle is not "the op
// landed" but "no run's outputs moved whether or not it did".
func applyFleetChurn(ctx context.Context, tr wire.Transport, control, joiner string, ops []ChurnOp, members []string) {
	transient := func(err error) bool {
		for _, s := range []string{"retry", "capacity", "dial", "refused", "no listener"} {
			if strings.Contains(err.Error(), s) {
				return true
			}
		}
		return false
	}
	start := time.Now()
	for _, op := range ops {
		select {
		case <-time.After(time.Duration(op.AtMS)*time.Millisecond - time.Since(start)):
		case <-ctx.Done():
			return
		}
		for attempt := 0; attempt < 40 && ctx.Err() == nil; attempt++ {
			octx, cancel := context.WithTimeout(ctx, time.Second)
			var err error
			switch op.Op {
			case "join":
				err = wire.Announce(octx, tr, control, joiner)
			case "drain":
				err = wire.Drain(octx, tr, control, -1, members[op.Worker%len(members)])
			}
			cancel()
			if err == nil || !transient(err) {
				break
			}
			time.Sleep(5 * time.Millisecond)
		}
	}
}

// runMultiForShrink is RunMulti behind a seam so ShrinkMulti's loop
// can be exercised with an injected oracle in tests.
var runMultiForShrink = RunMulti

// ShrinkMulti reduces a diverging multi-run scenario to a local
// minimum showing at least one of the original oracle classes. The
// cheapest reduction — tried before anything else — is dropping one
// concurrent run entirely: a divergence that survives alone implicates
// the engines, not the multiplexing, and every dropped run removes a
// whole coordinator's worth of re-execution cost from the remaining
// search. Only then does it descend into the per-case reductions
// (churn op, fault, leaf task, arc — see Shrink).
//
// budget bounds candidate re-executions; each one re-runs the whole
// concurrent scenario.
func ShrinkMulti(ctx context.Context, rep *MultiReport, budget int) (*MultiCase, *MultiReport) {
	classes := rep.Classes()
	bad := func(mc *MultiCase) *MultiReport {
		r, err := runMultiForShrink(ctx, mc)
		if err != nil {
			return nil
		}
		for o := range r.Classes() {
			if classes[o] {
				return r
			}
		}
		return nil
	}

	best, bestRep := rep.Multi, rep
	// Dissolve hierarchy first, like Shrink: per-case reductions only
	// operate on flat designs.
	if flat, err := flattenMulti(rep.Multi); err == nil && budget > 0 {
		budget--
		if r := bad(flat); r != nil {
			best, bestRep = flat, r
		}
	}

	for budget > 0 {
		improved := false
		for _, cand := range multiReductions(best) {
			if budget == 0 {
				break
			}
			budget--
			if r := bad(cand); r != nil {
				best, bestRep = cand, r
				improved = true
				break
			}
		}
		if !improved {
			break
		}
	}
	return best, bestRep
}

// flattenMulti rewrites every sub-case onto its flattened design.
func flattenMulti(mc *MultiCase) (*MultiCase, error) {
	out := &MultiCase{Seed: mc.Seed}
	for _, c := range mc.Cases {
		fc, err := rebuildFlat(c)
		if err != nil {
			return nil, err
		}
		out.Cases = append(out.Cases, fc)
	}
	return out, nil
}

// multiReductions enumerates one-step simplifications of a multi-run
// scenario, cheapest first: drop a concurrent run, then every
// per-case reduction applied to each sub-case in place.
func multiReductions(mc *MultiCase) []*MultiCase {
	var out []*MultiCase
	if len(mc.Cases) > 1 {
		for i := range mc.Cases {
			cc := &MultiCase{Seed: mc.Seed}
			cc.Cases = append(cc.Cases, mc.Cases[:i]...)
			cc.Cases = append(cc.Cases, mc.Cases[i+1:]...)
			out = append(out, cc)
		}
	}
	for i, c := range mc.Cases {
		for _, rc := range reductions(c) {
			cc := &MultiCase{Seed: mc.Seed, Cases: append([]*Case(nil), mc.Cases...)}
			cc.Cases[i] = rc
			out = append(out, cc)
		}
	}
	return out
}

// HasFaultsOrChurn reports whether any sub-case injects faults or
// churn (used by callers deciding how loudly to log).
func (mc *MultiCase) HasFaultsOrChurn() bool {
	for _, c := range mc.Cases {
		if c.Faults != nil || len(c.Churn) > 0 {
			return true
		}
	}
	return false
}

// WriteMultiRepro writes a repro directory for a diverging multi-run
// scenario: one standard (individually replayable) repro subdirectory
// per sub-case, plus multi.txt summarising the concurrent scenario.
// There is no single-command multi replay — isolation failures are
// timing-dependent by nature — but each sub-case replays solo with
// `banger conform -repro DIR/case-K`, which immediately answers the
// first triage question: does the case diverge alone, or only when
// multiplexed?
func WriteMultiRepro(dir string, rep *MultiReport) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	for i, r := range rep.Runs {
		sub := &Report{Case: r.Case, Engines: []*EngineRun{r.Solo, r.Fleet}}
		for _, d := range rep.Divergences {
			if strings.Contains(d.Engine, fmt.Sprintf("[%d]", i)) {
				sub.Divergences = append(sub.Divergences, d)
			}
		}
		if err := WriteRepro(filepath.Join(dir, fmt.Sprintf("case-%d", i)), sub); err != nil {
			return err
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "conform multi-run scenario seed=%d: %d concurrent runs on one shared 2-worker fleet\n",
		rep.Multi.Seed, len(rep.Multi.Cases))
	for i, c := range rep.Multi.Cases {
		fmt.Fprintf(&b, "  case-%d: seed=%d heuristic=%s machine=%s tasks=%d",
			i, c.Seed, c.Heuristic, c.Machine.Name, len(c.Design.Tasks()))
		if c.Faults != nil {
			fmt.Fprintf(&b, " faults=%s", c.Faults)
		}
		if len(c.Churn) > 0 {
			fmt.Fprintf(&b, " churn=%s", ChurnString(c.Churn))
		}
		b.WriteString("\n")
	}
	if len(rep.Divergences) == 0 {
		b.WriteString("PASS: every run matched its solo baseline\n")
	} else {
		fmt.Fprintf(&b, "FAIL: %d divergence(s)\n", len(rep.Divergences))
		for _, d := range rep.Divergences {
			fmt.Fprintf(&b, "  %s\n", d)
		}
	}
	b.WriteString("replay a sub-case alone: banger conform -repro <dir>/case-K\n")
	return os.WriteFile(filepath.Join(dir, "multi.txt"), []byte(b.String()), 0o644)
}
