package conform

import (
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

// TestGenerateDeterministic: a case is a pure function of its seed.
func TestGenerateDeterministic(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		a, err := Generate(seed)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		b, err := Generate(seed)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		aj, _ := json.Marshal(a.Design)
		bj, _ := json.Marshal(b.Design)
		if string(aj) != string(bj) {
			t.Fatalf("seed %d: designs differ", seed)
		}
		if a.Heuristic != b.Heuristic || a.Machine.Name != b.Machine.Name {
			t.Fatalf("seed %d: heuristic/machine differ", seed)
		}
		af, bf := "", ""
		if a.Faults != nil {
			af = a.Faults.String()
		}
		if b.Faults != nil {
			bf = b.Faults.String()
		}
		if af != bf {
			t.Fatalf("seed %d: fault plans differ: %q != %q", seed, af, bf)
		}
		if !reflect.DeepEqual(a.Inputs, b.Inputs) {
			t.Fatalf("seed %d: inputs differ", seed)
		}
	}
}

// TestGenerateCoversFeatures: across a modest seed range the generator
// exercises hierarchy, fault plans, printing sinks and several
// heuristics — the variety the differential harness depends on.
func TestGenerateCoversFeatures(t *testing.T) {
	var subs, faults, crashes, prints int
	heuristics := map[string]bool{}
	for seed := int64(0); seed < 50; seed++ {
		c, err := Generate(seed)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		heuristics[c.Heuristic] = true
		for _, n := range c.Design.Nodes() {
			if n.Sub != nil {
				subs++
			}
		}
		if c.Faults != nil {
			faults++
			if c.HasCrash() {
				crashes++
			}
		}
		if n := c.Design.Node("snk"); n != nil && len(n.Routine) > 0 {
			for i := 0; i+5 <= len(n.Routine); i++ {
				if n.Routine[i:i+5] == "print" {
					prints++
					break
				}
			}
		}
	}
	if subs == 0 {
		t.Error("no generated case used hierarchy")
	}
	if faults == 0 {
		t.Error("no generated case had a fault plan")
	}
	if crashes == 0 {
		t.Error("no generated case crashed a processor")
	}
	if prints == 0 {
		t.Error("no generated case printed")
	}
	if len(heuristics) < 3 {
		t.Errorf("only %d heuristics drawn across 50 seeds", len(heuristics))
	}
}

// TestSweepSmoke: a small deterministic sweep across all five engines
// finds zero divergences. The full 25-seed acceptance sweep runs via
// `make conform`; this keeps the unit suite fast.
func TestSweepSmoke(t *testing.T) {
	seeds := int64(8)
	if testing.Short() {
		seeds = 3
	}
	res := Sweep(context.Background(), SweepOptions{
		Start: 0, Seeds: seeds, Jobs: 2, Log: t.Logf,
	})
	for _, err := range res.Errors {
		t.Errorf("harness error: %v", err)
	}
	for i, rep := range res.Failures {
		t.Errorf("seed %d diverged: %v", rep.Case.Seed, rep.Divergences)
		_ = i
	}
	if res.Ran != int(seeds) {
		t.Errorf("ran %d cases, want %d", res.Ran, seeds)
	}
}

// findSkewCase locates the first seed whose schedule actually moves
// messages between processors, so a communication-cost skew must show
// up as a trace/makespan divergence.
func findSkewCase(t *testing.T) *Report {
	t.Helper()
	for seed := int64(0); seed < 60; seed++ {
		c, err := Generate(seed)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		c.Faults = nil // keep the trace oracles armed
		c.SkewComm = 1000
		rep, err := RunCase(context.Background(), c)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if rep.Failed() {
			return rep
		}
	}
	t.Fatal("no seed in 0..59 produced a cross-processor schedule; generator too weak")
	return nil
}

// TestSkewCommProducesMinimizedReplayableRepro is the harness's
// acceptance loop: deliberately breaking one engine's communication
// cost yields a divergence, the minimizer shrinks the case while
// preserving the divergence class, the repro directory round-trips
// through disk, and replaying it reproduces the same divergence.
func TestSkewCommProducesMinimizedReplayableRepro(t *testing.T) {
	if testing.Short() {
		t.Skip("runs many full cases")
	}
	ctx := context.Background()
	rep := findSkewCase(t)
	wantClasses := rep.Classes()
	if !wantClasses["trace-vs-sim"] && !wantClasses["makespan"] {
		t.Fatalf("skew produced unexpected divergence classes: %v", rep.Divergences)
	}
	for _, d := range rep.Divergences {
		if d.Oracle == "outputs" || d.Oracle == "printed" || d.Oracle == "error" {
			t.Fatalf("skewing the model must not change data: %v", d)
		}
	}

	origTasks := len(rep.Case.Design.Tasks())
	minCase, minRep := Shrink(ctx, rep, 40)
	if !minRep.Failed() {
		t.Fatal("minimized case no longer diverges")
	}
	overlap := false
	for o := range minRep.Classes() {
		if wantClasses[o] {
			overlap = true
		}
	}
	if !overlap {
		t.Fatalf("minimized divergence classes %v share nothing with original %v",
			minRep.Classes(), wantClasses)
	}
	if got := len(minCase.Design.Tasks()); got > origTasks {
		t.Errorf("minimization grew the design: %d -> %d tasks", origTasks, got)
	}

	dir := filepath.Join(t.TempDir(), "repro")
	if err := WriteRepro(dir, minRep); err != nil {
		t.Fatal(err)
	}
	for _, f := range []string{reproDesignFile, reproMachineFile, reproCaseFile, reproReportFile} {
		if _, err := os.Stat(filepath.Join(dir, f)); err != nil {
			t.Errorf("repro dir missing %s: %v", f, err)
		}
	}

	replayed, err := Replay(ctx, dir)
	if err != nil {
		t.Fatal(err)
	}
	if !replayed.Failed() {
		t.Fatal("replayed repro did not diverge")
	}
	overlap = false
	for o := range replayed.Classes() {
		if minRep.Classes()[o] {
			overlap = true
		}
	}
	if !overlap {
		t.Fatalf("replay diverged differently: %v vs %v", replayed.Classes(), minRep.Classes())
	}
}

// TestReproRoundTrip: writing and loading a repro preserves the case.
func TestReproRoundTrip(t *testing.T) {
	c, err := Generate(1)
	if err != nil {
		t.Fatal(err)
	}
	c.SkewComm = 7
	rep := &Report{Case: c}
	dir := t.TempDir()
	if err := WriteRepro(dir, rep); err != nil {
		t.Fatal(err)
	}
	got, err := LoadRepro(dir)
	if err != nil {
		t.Fatal(err)
	}
	if got.Seed != c.Seed || got.Heuristic != c.Heuristic || got.SkewComm != c.SkewComm {
		t.Errorf("scalars did not round-trip: %+v", got)
	}
	if !reflect.DeepEqual(got.Inputs, c.Inputs) {
		t.Errorf("inputs did not round-trip: %v != %v", got.Inputs, c.Inputs)
	}
	aj, _ := json.Marshal(c.Design)
	bj, _ := json.Marshal(got.Design)
	if string(aj) != string(bj) {
		t.Error("design did not round-trip")
	}
	wantF, gotF := "", ""
	if c.Faults != nil {
		wantF = c.Faults.String()
	}
	if got.Faults != nil {
		gotF = got.Faults.String()
	}
	if wantF != gotF {
		t.Errorf("faults did not round-trip: %q != %q", gotF, wantF)
	}
	// The loaded case must actually run.
	if _, _, err := got.prepare(); err != nil {
		t.Errorf("loaded case does not prepare: %v", err)
	}
}

// FuzzConform: the differential harness as a native fuzz target. Any
// seed the fuzzer invents must run through all five engines with every
// oracle holding.
func FuzzConform(f *testing.F) {
	for seed := int64(0); seed < 4; seed++ {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, seed int64) {
		c, err := Generate(seed)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		rep, err := RunCase(context.Background(), c)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if rep.Failed() {
			t.Fatalf("seed %d diverged: %v", seed, rep.Divergences)
		}
	})
}
