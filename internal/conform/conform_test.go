package conform

import (
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/exec"
	"repro/internal/graph"
	"repro/internal/sched"
	"repro/internal/trace"
)

// TestGenerateDeterministic: a case is a pure function of its seed.
func TestGenerateDeterministic(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		a, err := Generate(seed)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		b, err := Generate(seed)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		aj, _ := json.Marshal(a.Design)
		bj, _ := json.Marshal(b.Design)
		if string(aj) != string(bj) {
			t.Fatalf("seed %d: designs differ", seed)
		}
		if a.Heuristic != b.Heuristic || a.Machine.Name != b.Machine.Name {
			t.Fatalf("seed %d: heuristic/machine differ", seed)
		}
		af, bf := "", ""
		if a.Faults != nil {
			af = a.Faults.String()
		}
		if b.Faults != nil {
			bf = b.Faults.String()
		}
		if af != bf {
			t.Fatalf("seed %d: fault plans differ: %q != %q", seed, af, bf)
		}
		if !reflect.DeepEqual(a.Inputs, b.Inputs) {
			t.Fatalf("seed %d: inputs differ", seed)
		}
		if ChurnString(a.Churn) != ChurnString(b.Churn) {
			t.Fatalf("seed %d: churn scripts differ: %q != %q",
				seed, ChurnString(a.Churn), ChurnString(b.Churn))
		}
	}
}

// TestGenerateCoversFeatures: across a modest seed range the generator
// exercises hierarchy, fault plans, fleet churn, printing sinks and
// several heuristics — the variety the differential harness depends on.
func TestGenerateCoversFeatures(t *testing.T) {
	var subs, faults, crashes, prints, churns int
	heuristics := map[string]bool{}
	for seed := int64(0); seed < 50; seed++ {
		c, err := Generate(seed)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		heuristics[c.Heuristic] = true
		if len(c.Churn) > 0 {
			churns++
		}
		for _, n := range c.Design.Nodes() {
			if n.Sub != nil {
				subs++
			}
		}
		if c.Faults != nil {
			faults++
			if c.HasCrash() {
				crashes++
			}
		}
		if n := c.Design.Node("snk"); n != nil && len(n.Routine) > 0 {
			for i := 0; i+5 <= len(n.Routine); i++ {
				if n.Routine[i:i+5] == "print" {
					prints++
					break
				}
			}
		}
	}
	if subs == 0 {
		t.Error("no generated case used hierarchy")
	}
	if faults == 0 {
		t.Error("no generated case had a fault plan")
	}
	if crashes == 0 {
		t.Error("no generated case crashed a processor")
	}
	if prints == 0 {
		t.Error("no generated case printed")
	}
	if churns == 0 {
		t.Error("no generated case churned the fleet")
	}
	if len(heuristics) < 3 {
		t.Errorf("only %d heuristics drawn across 50 seeds", len(heuristics))
	}
}

// TestChurnSpecRoundTrip: churn scripts survive the spec string.
func TestChurnSpecRoundTrip(t *testing.T) {
	ops := []ChurnOp{{Op: "join", AtMS: 5}, {Op: "drain", Worker: 1, AtMS: 12}}
	spec := ChurnString(ops)
	if spec != "join@5,drain:1@12" {
		t.Errorf("spec rendered as %q", spec)
	}
	got, err := ParseChurn(spec)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, ops) {
		t.Errorf("round trip changed ops: %v != %v", got, ops)
	}
	for _, bad := range []string{"", "join", "drain@3", "drain:x@3", "flee@2", "join@-1"} {
		if _, err := ParseChurn(bad); err == nil {
			t.Errorf("ParseChurn(%q) accepted a bad spec", bad)
		}
	}
}

// churnEvents counts landed joins and drains across a report's engines.
func churnEvents(rep *Report) (joins, drains int) {
	for _, e := range rep.Engines {
		if e.Trace == nil {
			continue
		}
		for _, ev := range e.Trace.Events {
			switch {
			case ev.Kind == trace.WorkerDrained:
				drains++
			case ev.Kind == trace.PeerConnected && ev.Note == "join":
				joins++
			}
		}
	}
	return joins, drains
}

// holdOpen adds ~40ms delays on cross-processor messages so churn ops
// fire while work is genuinely in flight. It installs a chained pair
// when the schedule offers one — a second delayed message whose
// producer sits downstream of the first delay's consumer. The chain is
// what keeps a run open across a crash-recovery barrier: the barrier
// re-sends the first (already-sent) message outside the fault
// injector, collapsing that hold, but the second producer then sends
// fresh and re-arms the delay. Returns whether any hold was installed
// and whether it chains.
func holdOpen(c *Case, t *testing.T) (held, chained bool) {
	t.Helper()
	_, sc, err := c.prepare()
	if err != nil {
		t.Fatalf("seed %d: %v", c.Seed, err)
	}
	hold := func(m sched.Msg) {
		if c.Faults == nil {
			c.Faults = &exec.FaultPlan{}
		}
		c.Faults.Faults = append(c.Faults.Faults, exec.Fault{
			Kind: exec.FaultDelay, From: m.From, To: m.To, Var: m.Var,
			Delay: 40000, Count: 1})
	}
	first := -1
	for i, m := range sc.Msgs {
		if m.FromPE != m.ToPE {
			first = i
			break
		}
	}
	if first < 0 {
		return false, false
	}
	hold(sc.Msgs[first])
	// Transitive successors of the first hold's consumer, over the
	// schedule's message records (the task graph's data dependencies).
	down := map[graph.NodeID]bool{sc.Msgs[first].To: true}
	queue := []graph.NodeID{sc.Msgs[first].To}
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		for _, m := range sc.Msgs {
			if m.From == n && !down[m.To] {
				down[m.To] = true
				queue = append(queue, m.To)
			}
		}
	}
	for _, m := range sc.Msgs {
		if m.FromPE != m.ToPE && down[m.From] {
			hold(m)
			return true, true
		}
	}
	return true, false
}

// TestChurnCasesStayConformant forces churn scripts onto generated
// cases held open by a delayed cross-processor message, so the ops land
// mid-run (not just race the finish). Every engine must still agree on
// outputs and printed lines, and across the batch at least one drain
// and one join must actually land — the drain against a healthy fleet,
// the join reviving a processor a crash fault killed (a join on a
// healthy fleet is rightly rejected for lack of capacity).
func TestChurnCasesStayConformant(t *testing.T) {
	if testing.Short() {
		t.Skip("runs full multi-engine cases")
	}
	tried, joins, drains := 0, 0, 0
	for seed := int64(0); seed < 60 && tried < 3; seed++ {
		c, err := Generate(seed)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if c.Machine.NumPE() < 2 {
			continue
		}
		c.Faults = nil
		held, chained := holdOpen(c, t)
		if !held || !chained {
			continue // the crash+join leg below needs a chained hold to survive recovery
		}
		tried++
		c.Churn = []ChurnOp{{Op: "drain", Worker: 0, AtMS: 4}}
		rep, err := RunCase(context.Background(), c)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if rep.Failed() {
			t.Errorf("seed %d diverged under churn drain: %v", seed, rep.Divergences)
		}
		j, d := churnEvents(rep)
		joins, drains = joins+j, drains+d

		// Same case again, now with a crash clearing a processor and a
		// join reviving it on a spare worker.
		crashed := false
		for pe := 0; pe < c.Machine.NumPE() && !crashed; pe++ {
			if len(rep.Schedule.PESlots(pe)) > 0 {
				c.Faults.Faults = append(c.Faults.Faults, exec.Fault{
					Kind: exec.FaultCrash, PE: pe, Slot: 0})
				crashed = true
			}
		}
		if !crashed {
			continue
		}
		c.Churn = []ChurnOp{{Op: "join", AtMS: 2}}
		rep, err = RunCase(context.Background(), c)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if rep.Failed() {
			t.Errorf("seed %d diverged under crash+join: %v", seed, rep.Divergences)
		}
		j, d = churnEvents(rep)
		joins, drains = joins+j, drains+d
	}
	if tried == 0 {
		t.Fatal("no multi-processor case with cross-processor traffic found in seeds 0..29")
	}
	if drains == 0 {
		t.Error("no churn drain landed mid-run in any engine")
	}
	if joins == 0 {
		t.Error("no churn join landed mid-run in any engine")
	}
}

// TestSweepSmoke: a small deterministic sweep across all five engines
// finds zero divergences. The full 25-seed acceptance sweep runs via
// `make conform`; this keeps the unit suite fast.
func TestSweepSmoke(t *testing.T) {
	seeds := int64(8)
	if testing.Short() {
		seeds = 3
	}
	res := Sweep(context.Background(), SweepOptions{
		Start: 0, Seeds: seeds, Jobs: 2, Log: t.Logf,
	})
	for _, err := range res.Errors {
		t.Errorf("harness error: %v", err)
	}
	for i, rep := range res.Failures {
		t.Errorf("seed %d diverged: %v", rep.Case.Seed, rep.Divergences)
		_ = i
	}
	if res.Ran != int(seeds) {
		t.Errorf("ran %d cases, want %d", res.Ran, seeds)
	}
}

// findSkewCase locates the first seed whose schedule actually moves
// messages between processors, so a communication-cost skew must show
// up as a trace/makespan divergence.
func findSkewCase(t *testing.T) *Report {
	t.Helper()
	for seed := int64(0); seed < 60; seed++ {
		c, err := Generate(seed)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		c.Faults = nil // keep the trace oracles armed
		c.SkewComm = 1000
		rep, err := RunCase(context.Background(), c)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if rep.Failed() {
			return rep
		}
	}
	t.Fatal("no seed in 0..59 produced a cross-processor schedule; generator too weak")
	return nil
}

// TestSkewCommProducesMinimizedReplayableRepro is the harness's
// acceptance loop: deliberately breaking one engine's communication
// cost yields a divergence, the minimizer shrinks the case while
// preserving the divergence class, the repro directory round-trips
// through disk, and replaying it reproduces the same divergence.
func TestSkewCommProducesMinimizedReplayableRepro(t *testing.T) {
	if testing.Short() {
		t.Skip("runs many full cases")
	}
	ctx := context.Background()
	rep := findSkewCase(t)
	wantClasses := rep.Classes()
	if !wantClasses["trace-vs-sim"] && !wantClasses["makespan"] {
		t.Fatalf("skew produced unexpected divergence classes: %v", rep.Divergences)
	}
	for _, d := range rep.Divergences {
		if d.Oracle == "outputs" || d.Oracle == "printed" || d.Oracle == "error" {
			t.Fatalf("skewing the model must not change data: %v", d)
		}
	}

	origTasks := len(rep.Case.Design.Tasks())
	minCase, minRep := Shrink(ctx, rep, 40)
	if !minRep.Failed() {
		t.Fatal("minimized case no longer diverges")
	}
	overlap := false
	for o := range minRep.Classes() {
		if wantClasses[o] {
			overlap = true
		}
	}
	if !overlap {
		t.Fatalf("minimized divergence classes %v share nothing with original %v",
			minRep.Classes(), wantClasses)
	}
	if got := len(minCase.Design.Tasks()); got > origTasks {
		t.Errorf("minimization grew the design: %d -> %d tasks", origTasks, got)
	}

	dir := filepath.Join(t.TempDir(), "repro")
	if err := WriteRepro(dir, minRep); err != nil {
		t.Fatal(err)
	}
	for _, f := range []string{reproDesignFile, reproMachineFile, reproCaseFile, reproReportFile} {
		if _, err := os.Stat(filepath.Join(dir, f)); err != nil {
			t.Errorf("repro dir missing %s: %v", f, err)
		}
	}

	replayed, err := Replay(ctx, dir)
	if err != nil {
		t.Fatal(err)
	}
	if !replayed.Failed() {
		t.Fatal("replayed repro did not diverge")
	}
	overlap = false
	for o := range replayed.Classes() {
		if minRep.Classes()[o] {
			overlap = true
		}
	}
	if !overlap {
		t.Fatalf("replay diverged differently: %v vs %v", replayed.Classes(), minRep.Classes())
	}
}

// TestReproRoundTrip: writing and loading a repro preserves the case.
func TestReproRoundTrip(t *testing.T) {
	c, err := Generate(1)
	if err != nil {
		t.Fatal(err)
	}
	c.SkewComm = 7
	rep := &Report{Case: c}
	dir := t.TempDir()
	if err := WriteRepro(dir, rep); err != nil {
		t.Fatal(err)
	}
	got, err := LoadRepro(dir)
	if err != nil {
		t.Fatal(err)
	}
	if got.Seed != c.Seed || got.Heuristic != c.Heuristic || got.SkewComm != c.SkewComm {
		t.Errorf("scalars did not round-trip: %+v", got)
	}
	if !reflect.DeepEqual(got.Inputs, c.Inputs) {
		t.Errorf("inputs did not round-trip: %v != %v", got.Inputs, c.Inputs)
	}
	aj, _ := json.Marshal(c.Design)
	bj, _ := json.Marshal(got.Design)
	if string(aj) != string(bj) {
		t.Error("design did not round-trip")
	}
	wantF, gotF := "", ""
	if c.Faults != nil {
		wantF = c.Faults.String()
	}
	if got.Faults != nil {
		gotF = got.Faults.String()
	}
	if wantF != gotF {
		t.Errorf("faults did not round-trip: %q != %q", gotF, wantF)
	}
	// The loaded case must actually run.
	if _, _, err := got.prepare(); err != nil {
		t.Errorf("loaded case does not prepare: %v", err)
	}
}

// FuzzConform: the differential harness as a native fuzz target. Any
// seed the fuzzer invents must run through all five engines with every
// oracle holding.
func FuzzConform(f *testing.F) {
	for seed := int64(0); seed < 4; seed++ {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, seed int64) {
		c, err := Generate(seed)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		rep, err := RunCase(context.Background(), c)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if rep.Failed() {
			t.Fatalf("seed %d diverged: %v", seed, rep.Divergences)
		}
		// Every 4th seed also runs the multi-run concurrency scenario:
		// the same generator-grade cases multiplexed on a shared fleet,
		// each checked byte-identical to its solo baseline. Sampled, not
		// universal, to keep fuzz throughput on the single-case oracles.
		if seed%4 == 0 {
			mc, err := GenerateMulti(seed)
			if err != nil {
				t.Fatalf("multi seed %d: %v", seed, err)
			}
			mrep, err := RunMulti(context.Background(), mc)
			if err != nil {
				t.Fatalf("multi seed %d: %v", seed, err)
			}
			if mrep.Failed() {
				t.Fatalf("multi seed %d diverged: %v", seed, mrep.Divergences)
			}
		}
	})
}
