// Package conform is Banger's differential conformance harness: it
// generates random (design, machine, heuristic, fault-plan) tuples,
// runs each through every execution engine the repo has — the analytic
// simulator, the virtual-time in-process runner, the distributed
// coordinator over the in-process transport (data relayed through the
// coordinator), the same coordinator with the peer-to-peer mesh data
// plane, and the mesh again over real TCP workers — and checks that
// they agree wherever the machine model says they must:
//
//   - external outputs are byte-identical across all executing engines;
//   - printed lines are identical across all executing engines;
//   - the schedule passes sched.Validate;
//   - fault-free, the virtual-time trace is event-for-event equal to
//     the simulator's, and its makespan equals the schedule's;
//   - the trace is causal: every receive has a matching send, receives
//     never precede their sends, and per-processor slots are monotone;
//   - messages are conserved: sends equal receives exactly for
//     crash-free runs (retransmission heals injected drops, duplicates
//     and corruptions), and sends never undershoot receives after a
//     crash (re-executed eras re-send).
//
// When a case diverges, Shrink reduces it to a local minimum that
// still shows the same divergence class, and WriteRepro emits a
// self-contained directory replayable with `banger conform -repro`.
package conform

import (
	"bytes"
	"context"
	"fmt"
	"time"

	"repro/internal/exec"
	"repro/internal/graph"
	"repro/internal/machine"
	"repro/internal/pits"
	"repro/internal/sched"
	"repro/internal/trace"
	"repro/internal/wire"
)

// Case is one self-contained conformance scenario. Everything an
// engine needs is derivable from these fields alone, which is what
// makes a written-out case replayable: task work is re-measured from
// the routines (see Calibrate), the schedule is recomputed from the
// named heuristic, and the fault plan replays from its spec string.
type Case struct {
	Seed      int64
	Design    *graph.Graph
	Machine   *machine.Machine
	Heuristic string
	Faults    *exec.FaultPlan
	Inputs    pits.Env

	// SkewComm deliberately skews the virtual-time runner's message
	// startup cost by this amount while every other engine keeps the
	// real machine. Zero in normal operation; a non-zero skew is the
	// harness's own fault injection — it must surface as a
	// trace-vs-sim/makespan divergence, which is how the minimizer and
	// the repro loop are exercised end to end.
	SkewComm machine.Time

	// Churn drives the distributed engines' elastic fleet machinery
	// mid-run: worker joins and graceful drains fired at wall-clock
	// offsets (see ChurnOp). The single-process engines ignore it, so
	// the outputs/printed oracles double as the elasticity oracle: a
	// fleet change must never alter what the run computes.
	Churn []ChurnOp
}

// HasCrash reports whether the case's fault plan kills a processor.
func (c *Case) HasCrash() bool {
	if c.Faults == nil {
		return false
	}
	for _, f := range c.Faults.Faults {
		if f.Kind == exec.FaultCrash {
			return true
		}
	}
	return false
}

// Divergence is one oracle violation. Oracle is a stable class name
// ("outputs", "printed", "trace-vs-sim", "makespan", "causality",
// "conservation", "validate", "error"); the minimizer considers two
// reports equivalent when they share a class.
type Divergence struct {
	Oracle string
	Engine string
	Detail string
}

func (d Divergence) String() string {
	if d.Engine != "" {
		return fmt.Sprintf("[%s] %s: %s", d.Oracle, d.Engine, d.Detail)
	}
	return fmt.Sprintf("[%s] %s", d.Oracle, d.Detail)
}

// EngineRun is one engine's observation of a case.
type EngineRun struct {
	Name     string
	Err      error
	Outputs  pits.Env
	OutBytes []byte // wire.EncodeEnv of Outputs (canonical, comparable)
	Printed  []string
	Trace    *trace.Trace
}

// Report is the outcome of running a case through every engine.
type Report struct {
	Case        *Case
	Schedule    *sched.Schedule
	Engines     []*EngineRun
	Divergences []Divergence
}

// Failed reports whether any oracle fired.
func (r *Report) Failed() bool { return len(r.Divergences) > 0 }

// Engine returns the named engine's run, or nil.
func (r *Report) Engine(name string) *EngineRun {
	for _, e := range r.Engines {
		if e.Name == name {
			return e
		}
	}
	return nil
}

// Classes returns the distinct oracle classes that fired.
func (r *Report) Classes() map[string]bool {
	cs := map[string]bool{}
	for _, d := range r.Divergences {
		cs[d.Oracle] = true
	}
	return cs
}

// Calibrate runs every routine once in topological order (a miniature
// rehearsal, mirroring what `banger run -calibrate` does) and sets each
// task's Work to its measured interpreter ops, so the virtual-time
// runner and the machine model agree exactly. Conform designs are
// always calibrated: the makespan and trace oracles require it.
func Calibrate(flat *graph.Flat, inputs pits.Env) error {
	order, err := flat.Graph.TopoSort()
	if err != nil {
		return err
	}
	produced := map[graph.NodeID]pits.Env{}
	for _, id := range order {
		n := flat.Graph.Node(id)
		env := pits.Env{}
		for _, v := range flat.ExternalIn[id] {
			env[v] = inputs[v]
		}
		for _, a := range flat.Graph.PredArcs(id) {
			env[a.Var] = produced[a.From][a.Var]
		}
		prog, err := pits.Parse(n.Routine)
		if err != nil {
			return fmt.Errorf("task %s: %w", id, err)
		}
		ops, out, _, err := pits.Measure(prog, env)
		if err != nil {
			return fmt.Errorf("task %s: %w", id, err)
		}
		produced[id] = out
		n.Work = ops
		if n.Work < 1 {
			n.Work = 1
		}
	}
	return nil
}

// prepare flattens, calibrates and schedules the case.
func (c *Case) prepare() (*graph.Flat, *sched.Schedule, error) {
	flat, err := c.Design.Flatten()
	if err != nil {
		return nil, nil, fmt.Errorf("flatten: %w", err)
	}
	if err := Calibrate(flat, c.Inputs); err != nil {
		return nil, nil, fmt.Errorf("calibrate: %w", err)
	}
	s, err := sched.ByName(c.Heuristic)
	if err != nil {
		return nil, nil, err
	}
	sc, err := s.Schedule(flat.Graph, c.Machine)
	if err != nil {
		return nil, nil, fmt.Errorf("schedule(%s): %w", c.Heuristic, err)
	}
	return flat, sc, nil
}

// runner returns the single-process runner configured for the case.
// Fault plans always run with acknowledged retransmission: drops,
// duplicates and corruptions are only survivable with it on.
func (c *Case) runner(virtual bool) *exec.Runner {
	r := &exec.Runner{Inputs: c.Inputs, VirtualTime: virtual}
	if c.Faults != nil {
		r.Faults = c.Faults
		r.Retry = true
		r.RetryBase = 2 * time.Millisecond
		r.RetryCap = 20 * time.Millisecond
	}
	return r
}

// skewed returns the schedule the virtual-time runner engine should
// execute: the real schedule, or a copy whose machine has the message
// startup skewed by SkewComm. Only the machine differs — the slots and
// messages are shared, so the runner replays the same placement
// decisions under a subtly different cost model. That is exactly the
// class of bug the trace-vs-sim oracle exists to catch.
func (c *Case) skewed(sc *sched.Schedule) (*sched.Schedule, error) {
	if c.SkewComm == 0 {
		return sc, nil
	}
	p := sc.Machine.Params
	p.MsgStartup += c.SkewComm
	m, err := machine.New(sc.Machine.Name+"+skew", sc.Machine.Topo, p)
	if err != nil {
		return nil, err
	}
	return &sched.Schedule{
		Graph: sc.Graph, Machine: m, Algorithm: sc.Algorithm,
		Slots: sc.Slots, Msgs: sc.Msgs,
	}, nil
}

// RunCase executes the case on all five engines and checks every
// oracle. A non-nil error means the harness itself could not set the
// case up (unschedulable design, unknown heuristic); engine failures
// are not errors — they are "error"-class divergences in the report.
// The distributed engines cover both data planes: "inproc" relays
// every cross-worker message through the coordinator, "mesh" runs the
// peer-to-peer data plane on the in-process transport, and "tcp" runs
// the mesh over real sockets.
func RunCase(ctx context.Context, c *Case) (*Report, error) {
	flat, sc, err := c.prepare()
	if err != nil {
		return nil, err
	}
	rep := &Report{Case: c, Schedule: sc}

	if err := sc.Validate(); err != nil {
		rep.Divergences = append(rep.Divergences, Divergence{
			Oracle: "validate", Detail: err.Error()})
	}

	rep.Engines = append(rep.Engines,
		runSimulate(sc),
		runRunner(c, sc, flat),
		runDist(ctx, c, sc, flat, "inproc", false),
		runDist(ctx, c, sc, flat, "mesh", true),
		runDist(ctx, c, sc, flat, "tcp", true),
	)
	check(rep, flat)
	return rep, nil
}

// runSimulate replays the schedule analytically. It produces no data —
// only the predicted trace.
func runSimulate(sc *sched.Schedule) *EngineRun {
	er := &EngineRun{Name: "simulate"}
	tr, err := exec.Simulate(sc)
	if err != nil {
		er.Err = err
		return er
	}
	tr.Sort()
	er.Trace = tr
	return er
}

// runRunner executes the case on the virtual-time in-process runner.
func runRunner(c *Case, sc *sched.Schedule, flat *graph.Flat) *EngineRun {
	er := &EngineRun{Name: "runner"}
	rsc, err := c.skewed(sc)
	if err != nil {
		er.Err = err
		return er
	}
	res, err := c.runner(true).Run(rsc, flat)
	if err != nil {
		er.Err = err
		return er
	}
	fillEngine(er, res)
	return er
}

// runDist executes the case across worker daemons over the transport
// the engine name implies ("tcp" dials real sockets, anything else the
// in-process transport), with the mesh data plane on or off.
func runDist(ctx context.Context, c *Case, sc *sched.Schedule, flat *graph.Flat, name string, mesh bool) *EngineRun {
	er := &EngineRun{Name: name}
	workers := sc.Machine.NumPE()
	if workers > 2 {
		workers = 2
	}
	var tr wire.Transport
	listen := func(i int) string { return fmt.Sprintf("conform-%s-%d-w%d", name, c.Seed, i) }
	if name == "tcp" {
		tr = wire.TCP()
		listen = func(int) string { return "127.0.0.1:0" }
	} else {
		tr = wire.Inproc()
	}
	addrs, stop, err := startWorkers(tr, listen, workers)
	if err != nil {
		er.Err = err
		return er
	}
	defer func() {
		if serr := stop(); serr != nil && er.Err == nil {
			er.Err = fmt.Errorf("worker shutdown: %w", serr)
		}
	}()
	co := &wire.Coordinator{
		Transport: tr, Addrs: addrs,
		Runner:         c.runner(false),
		HeartbeatEvery: 50 * time.Millisecond,
		PeerTimeout:    5 * time.Second,
		Mesh:           mesh,
	}
	rctx, cancel := context.WithTimeout(ctx, 2*time.Minute)
	defer cancel()
	if len(c.Churn) > 0 {
		ctlCh := make(chan string, 1)
		if name == "tcp" {
			co.Control = "127.0.0.1:0"
			co.ControlReady = func(addr string) { ctlCh <- addr }
		} else {
			co.Control = fmt.Sprintf("conform-%s-%d-ctl", name, c.Seed)
			ctlCh <- co.Control
		}
		joiner := ""
		if churnNeedsJoin(c.Churn) {
			// The spare worker the join op offers. It idles until (and
			// unless) its announce lands.
			jaddrs, jstop, err := startWorkers(tr, func(int) string {
				if name == "tcp" {
					return "127.0.0.1:0"
				}
				return fmt.Sprintf("conform-%s-%d-joiner", name, c.Seed)
			}, 1)
			if err != nil {
				er.Err = err
				return er
			}
			defer func() {
				if serr := jstop(); serr != nil && er.Err == nil {
					er.Err = fmt.Errorf("joiner shutdown: %w", serr)
				}
			}()
			joiner = jaddrs[0]
		}
		go applyChurn(rctx, tr, ctlCh, joiner, c.Churn, workers)
	}
	res, err := co.Run(rctx, sc, flat)
	if err != nil {
		er.Err = err
		return er
	}
	fillEngine(er, res)
	return er
}

func fillEngine(er *EngineRun, res *exec.Result) {
	er.Outputs = res.Outputs
	er.Printed = res.Printed
	er.Trace = res.Trace
	er.Trace.Sort()
	b, err := wire.EncodeEnv(res.Outputs)
	if err != nil {
		er.Err = fmt.Errorf("encoding outputs: %w", err)
		return
	}
	er.OutBytes = b
}

// sameBytes is bytes.Equal treating nil and empty as equal.
func sameBytes(a, b []byte) bool { return bytes.Equal(a, b) }
