package wire

import (
	"encoding/binary"
	"fmt"
	"math"
	"sort"

	"repro/internal/exec"
	"repro/internal/graph"
	"repro/internal/machine"
	"repro/internal/pits"
)

// Binary codec for PITS values and scheduled messages. JSON is used for
// control payloads (handshakes, recovery plans), but data payloads need
// an exact float representation — NaN and the infinities are legal PITS
// values and JSON cannot carry them — so values travel as raw IEEE-754
// bits.

// Value type tags.
const (
	tagNum byte = iota + 1
	tagVec
	tagBool
	tagStr
)

// AppendValue appends the binary encoding of v.
func AppendValue(b []byte, v pits.Value) ([]byte, error) {
	switch x := v.(type) {
	case pits.Num:
		b = append(b, tagNum)
		b = binary.BigEndian.AppendUint64(b, math.Float64bits(float64(x)))
	case pits.Vec:
		b = append(b, tagVec)
		b = binary.BigEndian.AppendUint32(b, uint32(len(x)))
		for _, f := range x {
			b = binary.BigEndian.AppendUint64(b, math.Float64bits(f))
		}
	case pits.BoolV:
		b = append(b, tagBool)
		if x {
			b = append(b, 1)
		} else {
			b = append(b, 0)
		}
	case pits.StrV:
		b = append(b, tagStr)
		b = appendString(b, string(x))
	default:
		return nil, fmt.Errorf("wire: cannot encode %T value", v)
	}
	return b, nil
}

// DecodeValue decodes one value and returns the remaining bytes.
func DecodeValue(b []byte) (pits.Value, []byte, error) {
	if len(b) == 0 {
		return nil, nil, fmt.Errorf("wire: truncated value")
	}
	tag, b := b[0], b[1:]
	switch tag {
	case tagNum:
		if len(b) < 8 {
			return nil, nil, fmt.Errorf("wire: truncated number")
		}
		return pits.Num(math.Float64frombits(binary.BigEndian.Uint64(b))), b[8:], nil
	case tagVec:
		if len(b) < 4 {
			return nil, nil, fmt.Errorf("wire: truncated vector length")
		}
		n := int(binary.BigEndian.Uint32(b))
		b = b[4:]
		if len(b) < 8*n {
			return nil, nil, fmt.Errorf("wire: truncated vector of %d elements", n)
		}
		v := make(pits.Vec, n)
		for i := 0; i < n; i++ {
			v[i] = math.Float64frombits(binary.BigEndian.Uint64(b[8*i:]))
		}
		return v, b[8*n:], nil
	case tagBool:
		if len(b) < 1 {
			return nil, nil, fmt.Errorf("wire: truncated boolean")
		}
		return pits.BoolV(b[0] != 0), b[1:], nil
	case tagStr:
		s, rest, err := decodeString(b)
		if err != nil {
			return nil, nil, err
		}
		return pits.StrV(s), rest, nil
	default:
		return nil, nil, fmt.Errorf("wire: unknown value tag %d", tag)
	}
}

// EncodeEnv encodes an environment with sorted keys (deterministic
// bytes for identical environments).
func EncodeEnv(e pits.Env) ([]byte, error) {
	keys := make([]string, 0, len(e))
	for k := range e {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	b := binary.BigEndian.AppendUint32(nil, uint32(len(keys)))
	var err error
	for _, k := range keys {
		b = appendString(b, k)
		if b, err = AppendValue(b, e[k]); err != nil {
			return nil, err
		}
	}
	return b, nil
}

// DecodeEnv decodes an environment.
func DecodeEnv(b []byte) (pits.Env, error) {
	if len(b) < 4 {
		return nil, fmt.Errorf("wire: truncated environment")
	}
	n := int(binary.BigEndian.Uint32(b))
	b = b[4:]
	// The count is untrusted input: cap the allocation hint by what the
	// buffer could possibly hold (every entry needs a 4-byte key length,
	// at least an empty key, and a 1-byte value tag), so a corrupted
	// count cannot demand gigabytes before the first entry fails.
	hint := n
	if max := len(b) / 5; hint > max {
		hint = max
	}
	e := make(pits.Env, hint)
	for i := 0; i < n; i++ {
		k, rest, err := decodeString(b)
		if err != nil {
			return nil, err
		}
		v, rest, err := DecodeValue(rest)
		if err != nil {
			return nil, err
		}
		e[k] = v
		b = rest
	}
	if len(b) != 0 {
		return nil, fmt.Errorf("wire: %d trailing bytes after environment", len(b))
	}
	return e, nil
}

// EncodeMsg encodes one scheduled cross-process message. The consumer
// processor sits at a fixed offset so the coordinator can route a Data
// frame without decoding the payload (see MsgDest).
func EncodeMsg(m exec.RemoteMsg) ([]byte, error) {
	b := binary.BigEndian.AppendUint32(nil, uint32(m.ToPE))
	b = binary.BigEndian.AppendUint32(b, uint32(m.FromPE))
	b = binary.BigEndian.AppendUint64(b, m.Seq)
	b = binary.BigEndian.AppendUint64(b, uint64(m.Epoch))
	b = binary.BigEndian.AppendUint64(b, uint64(m.At))
	b = binary.BigEndian.AppendUint64(b, m.Sum)
	b = appendString(b, string(m.From))
	b = appendString(b, string(m.To))
	b = appendString(b, m.Var)
	return AppendValue(b, m.Val)
}

// MsgDest reads the consumer processor from an encoded message without
// decoding the rest.
func MsgDest(b []byte) (int, error) {
	if len(b) < 4 {
		return 0, fmt.Errorf("wire: truncated message")
	}
	return int(binary.BigEndian.Uint32(b)), nil
}

// DecodeMsg decodes one scheduled cross-process message.
func DecodeMsg(b []byte) (exec.RemoteMsg, error) {
	var m exec.RemoteMsg
	if len(b) < 40 {
		return m, fmt.Errorf("wire: truncated message header")
	}
	m.ToPE = int(binary.BigEndian.Uint32(b[0:]))
	m.FromPE = int(binary.BigEndian.Uint32(b[4:]))
	m.Seq = binary.BigEndian.Uint64(b[8:])
	m.Epoch = int64(binary.BigEndian.Uint64(b[16:]))
	m.At = machine.Time(binary.BigEndian.Uint64(b[24:]))
	m.Sum = binary.BigEndian.Uint64(b[32:])
	b = b[40:]
	var s string
	var err error
	if s, b, err = decodeString(b); err != nil {
		return m, err
	}
	m.From = graph.NodeID(s)
	if s, b, err = decodeString(b); err != nil {
		return m, err
	}
	m.To = graph.NodeID(s)
	if m.Var, b, err = decodeString(b); err != nil {
		return m, err
	}
	if m.Val, b, err = DecodeValue(b); err != nil {
		return m, err
	}
	if len(b) != 0 {
		return m, fmt.Errorf("wire: %d trailing bytes after message", len(b))
	}
	return m, nil
}

func appendString(b []byte, s string) []byte {
	b = binary.BigEndian.AppendUint32(b, uint32(len(s)))
	return append(b, s...)
}

func decodeString(b []byte) (string, []byte, error) {
	if len(b) < 4 {
		return "", nil, fmt.Errorf("wire: truncated string length")
	}
	n := int(binary.BigEndian.Uint32(b))
	b = b[4:]
	if len(b) < n {
		return "", nil, fmt.Errorf("wire: truncated string of %d bytes", n)
	}
	return string(b[:n]), b[n:], nil
}
