package wire

import (
	"encoding/binary"
	"fmt"
	"math"
	"sort"

	"repro/internal/exec"
	"repro/internal/graph"
	"repro/internal/machine"
	"repro/internal/pits"
	"repro/internal/sched"
	"repro/internal/trace"
)

// Binary codec for PITS values and scheduled messages. JSON is used for
// control payloads (handshakes, recovery plans), but data payloads need
// an exact float representation — NaN and the infinities are legal PITS
// values and JSON cannot carry them — so values travel as raw IEEE-754
// bits.

// Value type tags.
const (
	tagNum byte = iota + 1
	tagVec
	tagBool
	tagStr
)

// AppendValue appends the binary encoding of v.
func AppendValue(b []byte, v pits.Value) ([]byte, error) {
	switch x := v.(type) {
	case pits.Num:
		b = append(b, tagNum)
		b = binary.BigEndian.AppendUint64(b, math.Float64bits(float64(x)))
	case pits.Vec:
		b = append(b, tagVec)
		b = binary.BigEndian.AppendUint32(b, uint32(len(x)))
		for _, f := range x {
			b = binary.BigEndian.AppendUint64(b, math.Float64bits(f))
		}
	case pits.BoolV:
		b = append(b, tagBool)
		if x {
			b = append(b, 1)
		} else {
			b = append(b, 0)
		}
	case pits.StrV:
		b = append(b, tagStr)
		b = appendString(b, string(x))
	default:
		return nil, fmt.Errorf("wire: cannot encode %T value", v)
	}
	return b, nil
}

// DecodeValue decodes one value and returns the remaining bytes.
func DecodeValue(b []byte) (pits.Value, []byte, error) {
	if len(b) == 0 {
		return nil, nil, fmt.Errorf("wire: truncated value")
	}
	tag, b := b[0], b[1:]
	switch tag {
	case tagNum:
		if len(b) < 8 {
			return nil, nil, fmt.Errorf("wire: truncated number")
		}
		return pits.Num(math.Float64frombits(binary.BigEndian.Uint64(b))), b[8:], nil
	case tagVec:
		if len(b) < 4 {
			return nil, nil, fmt.Errorf("wire: truncated vector length")
		}
		n := int(binary.BigEndian.Uint32(b))
		b = b[4:]
		if len(b) < 8*n {
			return nil, nil, fmt.Errorf("wire: truncated vector of %d elements", n)
		}
		v := make(pits.Vec, n)
		for i := 0; i < n; i++ {
			v[i] = math.Float64frombits(binary.BigEndian.Uint64(b[8*i:]))
		}
		return v, b[8*n:], nil
	case tagBool:
		if len(b) < 1 {
			return nil, nil, fmt.Errorf("wire: truncated boolean")
		}
		return pits.BoolV(b[0] != 0), b[1:], nil
	case tagStr:
		s, rest, err := decodeString(b)
		if err != nil {
			return nil, nil, err
		}
		return pits.StrV(s), rest, nil
	default:
		return nil, nil, fmt.Errorf("wire: unknown value tag %d", tag)
	}
}

// EncodeEnv encodes an environment with sorted keys (deterministic
// bytes for identical environments).
func EncodeEnv(e pits.Env) ([]byte, error) {
	keys := make([]string, 0, len(e))
	for k := range e {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	b := binary.BigEndian.AppendUint32(nil, uint32(len(keys)))
	var err error
	for _, k := range keys {
		b = appendString(b, k)
		if b, err = AppendValue(b, e[k]); err != nil {
			return nil, err
		}
	}
	return b, nil
}

// DecodeEnv decodes an environment.
func DecodeEnv(b []byte) (pits.Env, error) {
	if len(b) < 4 {
		return nil, fmt.Errorf("wire: truncated environment")
	}
	n := int(binary.BigEndian.Uint32(b))
	b = b[4:]
	// The count is untrusted input: cap the allocation hint by what the
	// buffer could possibly hold (every entry needs a 4-byte key length,
	// at least an empty key, and a 1-byte value tag), so a corrupted
	// count cannot demand gigabytes before the first entry fails.
	hint := n
	if max := len(b) / 5; hint > max {
		hint = max
	}
	e := make(pits.Env, hint)
	for i := 0; i < n; i++ {
		k, rest, err := decodeString(b)
		if err != nil {
			return nil, err
		}
		v, rest, err := DecodeValue(rest)
		if err != nil {
			return nil, err
		}
		e[k] = v
		b = rest
	}
	if len(b) != 0 {
		return nil, fmt.Errorf("wire: %d trailing bytes after environment", len(b))
	}
	return e, nil
}

// EncodeCheckpoint encodes a drain target's worker-local env
// checkpoint (task -> full output environment) with sorted task keys,
// so identical checkpoints encode to identical bytes.
func EncodeCheckpoint(local map[graph.NodeID]pits.Env) ([]byte, error) {
	tasks := make([]string, 0, len(local))
	for t := range local {
		tasks = append(tasks, string(t))
	}
	sort.Strings(tasks)
	b := binary.BigEndian.AppendUint32(nil, uint32(len(tasks)))
	for _, t := range tasks {
		b = appendString(b, t)
		eb, err := EncodeEnv(local[graph.NodeID(t)])
		if err != nil {
			return nil, err
		}
		b = binary.BigEndian.AppendUint32(b, uint32(len(eb)))
		b = append(b, eb...)
	}
	return b, nil
}

// DecodeCheckpoint decodes an EncodeCheckpoint payload.
func DecodeCheckpoint(b []byte) (map[graph.NodeID]pits.Env, error) {
	if len(b) < 4 {
		return nil, fmt.Errorf("wire: truncated checkpoint")
	}
	n := int(binary.BigEndian.Uint32(b))
	b = b[4:]
	// Untrusted count: cap the allocation hint by what the buffer could
	// hold (each entry needs two 4-byte lengths at minimum).
	hint := n
	if max := len(b) / 8; hint > max {
		hint = max
	}
	local := make(map[graph.NodeID]pits.Env, hint)
	for i := 0; i < n; i++ {
		t, rest, err := decodeString(b)
		if err != nil {
			return nil, err
		}
		if len(rest) < 4 {
			return nil, fmt.Errorf("wire: truncated checkpoint env length")
		}
		en := int(binary.BigEndian.Uint32(rest))
		rest = rest[4:]
		if en > len(rest) {
			return nil, fmt.Errorf("wire: checkpoint env of %d bytes exceeds payload", en)
		}
		env, err := DecodeEnv(rest[:en])
		if err != nil {
			return nil, err
		}
		local[graph.NodeID(t)] = env
		b = rest[en:]
	}
	if len(b) != 0 {
		return nil, fmt.Errorf("wire: %d trailing bytes after checkpoint", len(b))
	}
	return local, nil
}

// EncodeMsg encodes one scheduled cross-process message. The consumer
// processor sits at a fixed offset so the coordinator can route a Data
// frame without decoding the payload (see MsgDest).
func EncodeMsg(m exec.RemoteMsg) ([]byte, error) { return AppendMsg(nil, m) }

// AppendMsg appends the encoding of m to b (which may be a recycled
// buffer), for senders that pool payload buffers.
func AppendMsg(b []byte, m exec.RemoteMsg) ([]byte, error) {
	b = binary.BigEndian.AppendUint32(b, uint32(m.ToPE))
	b = binary.BigEndian.AppendUint32(b, uint32(m.FromPE))
	b = binary.BigEndian.AppendUint64(b, m.Seq)
	b = binary.BigEndian.AppendUint64(b, uint64(m.Epoch))
	b = binary.BigEndian.AppendUint64(b, uint64(m.At))
	b = binary.BigEndian.AppendUint64(b, m.Sum)
	b = appendString(b, string(m.From))
	b = appendString(b, string(m.To))
	b = appendString(b, m.Var)
	return AppendValue(b, m.Val)
}

// MsgDest reads the consumer processor from an encoded message without
// decoding the rest.
func MsgDest(b []byte) (int, error) {
	if len(b) < 4 {
		return 0, fmt.Errorf("wire: truncated message")
	}
	return int(binary.BigEndian.Uint32(b)), nil
}

// DecodeMsg decodes one scheduled cross-process message.
func DecodeMsg(b []byte) (exec.RemoteMsg, error) {
	var m exec.RemoteMsg
	if len(b) < 40 {
		return m, fmt.Errorf("wire: truncated message header")
	}
	m.ToPE = int(binary.BigEndian.Uint32(b[0:]))
	m.FromPE = int(binary.BigEndian.Uint32(b[4:]))
	m.Seq = binary.BigEndian.Uint64(b[8:])
	m.Epoch = int64(binary.BigEndian.Uint64(b[16:]))
	m.At = machine.Time(binary.BigEndian.Uint64(b[24:]))
	m.Sum = binary.BigEndian.Uint64(b[32:])
	b = b[40:]
	var s string
	var err error
	if s, b, err = decodeString(b); err != nil {
		return m, err
	}
	m.From = graph.NodeID(s)
	if s, b, err = decodeString(b); err != nil {
		return m, err
	}
	m.To = graph.NodeID(s)
	if m.Var, b, err = decodeString(b); err != nil {
		return m, err
	}
	if m.Val, b, err = DecodeValue(b); err != nil {
		return m, err
	}
	if len(b) != 0 {
		return m, fmt.Errorf("wire: %d trailing bytes after message", len(b))
	}
	return m, nil
}

// ---------------------------------------------------------------------
// Blob envelopes. Start bundles and results pair a small control JSON
// document with bulk binary blobs (encoded schedule, environments,
// trace events). Embedding those blobs in the JSON costs a base64
// round trip plus a byte-by-byte validity scan of the largest part of
// the payload; the envelope carries them out of band instead. A JSON
// document can never begin with 0x00, so the magic byte keeps plain
// JSON payloads from older senders decodable by the same entry point.

const blobEnvelopeMagic = 0x00

// encBlobEnvelope frames a JSON document and its out-of-band blobs.
func encBlobEnvelope(js []byte, blobs ...[]byte) []byte {
	n := 1 + 4 + len(js) + 4
	for _, b := range blobs {
		n += 4 + len(b)
	}
	out := make([]byte, 0, n)
	out = append(out, blobEnvelopeMagic)
	out = binary.BigEndian.AppendUint32(out, uint32(len(js)))
	out = append(out, js...)
	out = binary.BigEndian.AppendUint32(out, uint32(len(blobs)))
	for _, b := range blobs {
		out = binary.BigEndian.AppendUint32(out, uint32(len(b)))
		out = append(out, b...)
	}
	return out
}

// decBlobEnvelope splits an envelope payload. A payload that does not
// start with the magic byte is plain JSON: it comes back unchanged
// with no blobs. Returned slices alias the payload.
func decBlobEnvelope(p []byte) (js []byte, blobs [][]byte, err error) {
	if len(p) == 0 || p[0] != blobEnvelopeMagic {
		return p, nil, nil
	}
	take := func(b []byte) ([]byte, []byte, error) {
		if len(b) < 4 {
			return nil, nil, fmt.Errorf("wire: truncated blob envelope")
		}
		n := int(binary.BigEndian.Uint32(b))
		b = b[4:]
		if n < 0 || n > len(b) {
			return nil, nil, fmt.Errorf("wire: blob envelope length %d exceeds payload", n)
		}
		return b[:n], b[n:], nil
	}
	b := p[1:]
	if js, b, err = take(b); err != nil {
		return nil, nil, err
	}
	if len(b) < 4 {
		return nil, nil, fmt.Errorf("wire: truncated blob envelope")
	}
	nBlobs := int(binary.BigEndian.Uint32(b))
	b = b[4:]
	hint := nBlobs
	if max := len(b) / 4; hint > max {
		hint = max
	}
	blobs = make([][]byte, 0, hint)
	for i := 0; i < nBlobs; i++ {
		var blob []byte
		if blob, b, err = take(b); err != nil {
			return nil, nil, err
		}
		blobs = append(blobs, blob)
	}
	if len(b) != 0 {
		return nil, nil, fmt.Errorf("wire: %d trailing bytes after blob envelope", len(b))
	}
	return js, blobs, nil
}

// ---------------------------------------------------------------------
// Binary schedules. The start bundle ships a self-contained schedule —
// flattened graph, machine, slots, messages — to every worker, and the
// JSON form made its decode the single most expensive step of starting
// a distributed run. The binary form routes every node ID, variable
// name, label and routine through one string table (task IDs repeat
// across nodes, arcs, slots and messages; identical routines collapse
// to one entry), with fixed-layout records around it. The machine
// document is small and stays JSON inside the binary envelope.

const schedCodecVersion = 1

// stringTable interns strings during encoding.
type stringTable struct {
	table []string
	index map[string]uint32
}

func newStringTable() *stringTable {
	return &stringTable{index: map[string]uint32{}}
}

func (t *stringTable) ref(s string) uint32 {
	if i, ok := t.index[s]; ok {
		return i
	}
	i := uint32(len(t.table))
	t.index[s] = i
	t.table = append(t.table, s)
	return i
}

func (t *stringTable) encode(b []byte) []byte {
	b = binary.BigEndian.AppendUint32(b, uint32(len(t.table)))
	for _, s := range t.table {
		b = appendString(b, s)
	}
	return b
}

func decodeStringTable(b []byte) ([]string, []byte, error) {
	if len(b) < 4 {
		return nil, nil, fmt.Errorf("wire: truncated string table")
	}
	n := int(binary.BigEndian.Uint32(b))
	b = b[4:]
	// Untrusted count: every entry needs at least its 4 length bytes.
	hint := n
	if max := len(b) / 4; hint > max {
		hint = max
	}
	table := make([]string, 0, hint)
	for i := 0; i < n; i++ {
		s, rest, err := decodeString(b)
		if err != nil {
			return nil, nil, err
		}
		table = append(table, s)
		b = rest
	}
	return table, b, nil
}

// EncodeSchedule encodes a schedule for the start bundle. Scheduled
// graphs are flat — Flatten dissolves decomposable nodes before any
// scheduler runs — so KindSub nodes are rejected rather than encoded.
func EncodeSchedule(s *sched.Schedule) ([]byte, error) {
	mb, err := s.Machine.MarshalJSON()
	if err != nil {
		return nil, fmt.Errorf("wire: marshal machine: %w", err)
	}
	t := newStringTable()
	// Intern everything first; the table is written before the records.
	algRef := t.ref(s.Algorithm)
	nameRef := t.ref(s.Graph.Name)
	nodes := s.Graph.Nodes()
	nodeRefs := make([][3]uint32, len(nodes))
	for i, n := range nodes {
		if n.Kind == graph.KindSub {
			return nil, fmt.Errorf("wire: cannot encode unflattened graph (sub node %s)", n.ID)
		}
		nodeRefs[i] = [3]uint32{t.ref(string(n.ID)), t.ref(n.Label), t.ref(n.Routine)}
	}
	arcs := s.Graph.Arcs()
	arcRefs := make([][3]uint32, len(arcs))
	for i, a := range arcs {
		arcRefs[i] = [3]uint32{t.ref(string(a.From)), t.ref(string(a.To)), t.ref(a.Var)}
	}
	slotRefs := make([]uint32, len(s.Slots))
	for i, sl := range s.Slots {
		slotRefs[i] = t.ref(string(sl.Task))
	}
	msgRefs := make([][3]uint32, len(s.Msgs))
	for i, m := range s.Msgs {
		msgRefs[i] = [3]uint32{t.ref(string(m.From)), t.ref(string(m.To)), t.ref(m.Var)}
	}

	b := []byte{schedCodecVersion}
	b = t.encode(b)
	b = binary.BigEndian.AppendUint32(b, algRef)
	b = appendString(b, string(mb))
	b = binary.BigEndian.AppendUint32(b, nameRef)
	b = binary.BigEndian.AppendUint32(b, uint32(len(nodes)))
	for i, n := range nodes {
		b = binary.BigEndian.AppendUint32(b, nodeRefs[i][0])
		b = binary.BigEndian.AppendUint32(b, nodeRefs[i][1])
		b = append(b, byte(n.Kind))
		b = binary.BigEndian.AppendUint64(b, uint64(n.Work))
		b = binary.BigEndian.AppendUint32(b, nodeRefs[i][2])
	}
	b = binary.BigEndian.AppendUint32(b, uint32(len(arcs)))
	for i, a := range arcs {
		b = binary.BigEndian.AppendUint32(b, arcRefs[i][0])
		b = binary.BigEndian.AppendUint32(b, arcRefs[i][1])
		b = binary.BigEndian.AppendUint32(b, arcRefs[i][2])
		b = binary.BigEndian.AppendUint64(b, uint64(a.Words))
	}
	b = binary.BigEndian.AppendUint32(b, uint32(len(s.Slots)))
	for i, sl := range s.Slots {
		b = binary.BigEndian.AppendUint32(b, slotRefs[i])
		b = binary.BigEndian.AppendUint32(b, uint32(int32(sl.PE)))
		b = binary.BigEndian.AppendUint64(b, uint64(sl.Start))
		b = binary.BigEndian.AppendUint64(b, uint64(sl.Finish))
		if sl.Dup {
			b = append(b, 1)
		} else {
			b = append(b, 0)
		}
	}
	b = binary.BigEndian.AppendUint32(b, uint32(len(s.Msgs)))
	for i, m := range s.Msgs {
		b = binary.BigEndian.AppendUint32(b, msgRefs[i][0])
		b = binary.BigEndian.AppendUint32(b, msgRefs[i][1])
		b = binary.BigEndian.AppendUint32(b, msgRefs[i][2])
		b = binary.BigEndian.AppendUint32(b, uint32(int32(m.FromPE)))
		b = binary.BigEndian.AppendUint32(b, uint32(int32(m.ToPE)))
		b = binary.BigEndian.AppendUint64(b, uint64(m.Words))
		b = binary.BigEndian.AppendUint64(b, uint64(m.Send))
		b = binary.BigEndian.AppendUint64(b, uint64(m.Recv))
		b = binary.BigEndian.AppendUint32(b, uint32(int32(m.Hops)))
	}
	return b, nil
}

// DecodeSchedule decodes an EncodeSchedule payload and re-validates it,
// exactly as the JSON path does: a tampered bundle cannot produce an
// inconsistent schedule silently.
func DecodeSchedule(b []byte) (*sched.Schedule, error) {
	fail := func(what string) (*sched.Schedule, error) {
		return nil, fmt.Errorf("wire: truncated schedule (%s)", what)
	}
	if len(b) < 1 {
		return fail("version")
	}
	if b[0] != schedCodecVersion {
		return nil, fmt.Errorf("wire: schedule codec version %d, want %d", b[0], schedCodecVersion)
	}
	table, b, err := decodeStringTable(b[1:])
	if err != nil {
		return nil, err
	}
	str := func(b []byte) (string, error) {
		i := binary.BigEndian.Uint32(b)
		if int(i) >= len(table) {
			return "", fmt.Errorf("wire: schedule string reference %d outside table of %d", i, len(table))
		}
		return table[i], nil
	}
	if len(b) < 4 {
		return fail("algorithm")
	}
	alg, err := str(b)
	if err != nil {
		return nil, err
	}
	mb, b, err := decodeString(b[4:])
	if err != nil {
		return nil, err
	}
	m := &machine.Machine{}
	if err := m.UnmarshalJSON([]byte(mb)); err != nil {
		return nil, fmt.Errorf("wire: schedule machine: %w", err)
	}
	if len(b) < 8 {
		return fail("graph header")
	}
	name, err := str(b)
	if err != nil {
		return nil, err
	}
	g := graph.New(name)
	nNodes := int(binary.BigEndian.Uint32(b[4:]))
	b = b[8:]
	for i := 0; i < nNodes; i++ {
		const rec = 4 + 4 + 1 + 8 + 4
		if len(b) < rec {
			return fail("node record")
		}
		id, err := str(b)
		if err != nil {
			return nil, err
		}
		label, err := str(b[4:])
		if err != nil {
			return nil, err
		}
		kind := graph.Kind(b[8])
		work := int64(binary.BigEndian.Uint64(b[9:]))
		routine, err := str(b[17:])
		if err != nil {
			return nil, err
		}
		b = b[rec:]
		var n *graph.Node
		switch kind {
		case graph.KindTask:
			n, err = g.AddTask(graph.NodeID(id), label, work)
		case graph.KindStorage:
			n, err = g.AddStorage(graph.NodeID(id), label)
		case graph.KindInput:
			n, err = g.AddInput(graph.NodeID(id))
		case graph.KindOutput:
			n, err = g.AddOutput(graph.NodeID(id))
		default:
			return nil, fmt.Errorf("wire: schedule node %s has kind %d", id, kind)
		}
		if err != nil {
			return nil, fmt.Errorf("wire: schedule graph: %w", err)
		}
		n.Label, n.Work, n.Routine = label, work, routine
	}
	if len(b) < 4 {
		return fail("arc count")
	}
	nArcs := int(binary.BigEndian.Uint32(b))
	b = b[4:]
	for i := 0; i < nArcs; i++ {
		const rec = 4 + 4 + 4 + 8
		if len(b) < rec {
			return fail("arc record")
		}
		from, err := str(b)
		if err != nil {
			return nil, err
		}
		to, err := str(b[4:])
		if err != nil {
			return nil, err
		}
		v, err := str(b[8:])
		if err != nil {
			return nil, err
		}
		words := int64(binary.BigEndian.Uint64(b[12:]))
		b = b[rec:]
		if err := g.Connect(graph.NodeID(from), graph.NodeID(to), v, words); err != nil {
			return nil, fmt.Errorf("wire: schedule graph: %w", err)
		}
	}
	s := &sched.Schedule{Graph: g, Machine: m, Algorithm: alg}
	if len(b) < 4 {
		return fail("slot count")
	}
	nSlots := int(binary.BigEndian.Uint32(b))
	b = b[4:]
	if hint := len(b) / (4 + 4 + 8 + 8 + 1); nSlots <= hint {
		s.Slots = make([]sched.Slot, 0, nSlots)
	}
	for i := 0; i < nSlots; i++ {
		const rec = 4 + 4 + 8 + 8 + 1
		if len(b) < rec {
			return fail("slot record")
		}
		task, err := str(b)
		if err != nil {
			return nil, err
		}
		s.Slots = append(s.Slots, sched.Slot{
			Task:   graph.NodeID(task),
			PE:     int(int32(binary.BigEndian.Uint32(b[4:]))),
			Start:  machine.Time(binary.BigEndian.Uint64(b[8:])),
			Finish: machine.Time(binary.BigEndian.Uint64(b[16:])),
			Dup:    b[24] != 0,
		})
		b = b[rec:]
	}
	if len(b) < 4 {
		return fail("message count")
	}
	nMsgs := int(binary.BigEndian.Uint32(b))
	b = b[4:]
	if hint := len(b) / (3*4 + 2*4 + 3*8 + 4); nMsgs <= hint {
		s.Msgs = make([]sched.Msg, 0, nMsgs)
	}
	for i := 0; i < nMsgs; i++ {
		const rec = 3*4 + 2*4 + 3*8 + 4
		if len(b) < rec {
			return fail("message record")
		}
		from, err := str(b)
		if err != nil {
			return nil, err
		}
		to, err := str(b[4:])
		if err != nil {
			return nil, err
		}
		v, err := str(b[8:])
		if err != nil {
			return nil, err
		}
		s.Msgs = append(s.Msgs, sched.Msg{
			From: graph.NodeID(from), To: graph.NodeID(to), Var: v,
			FromPE: int(int32(binary.BigEndian.Uint32(b[12:]))),
			ToPE:   int(int32(binary.BigEndian.Uint32(b[16:]))),
			Words:  int64(binary.BigEndian.Uint64(b[20:])),
			Send:   machine.Time(binary.BigEndian.Uint64(b[28:])),
			Recv:   machine.Time(binary.BigEndian.Uint64(b[36:])),
			Hops:   int(int32(binary.BigEndian.Uint32(b[44:]))),
		})
		b = b[rec:]
	}
	if len(b) != 0 {
		return nil, fmt.Errorf("wire: %d trailing bytes after schedule", len(b))
	}
	if err := s.Validate(); err != nil {
		return nil, fmt.Errorf("wire: shipped schedule invalid: %w", err)
	}
	return s, nil
}

// ---------------------------------------------------------------------
// Binary trace-event lists. A run's result carries thousands of events
// whose task IDs, variable names and notes repeat constantly; encoding
// them through a string table makes the result payload a fraction of
// its JSON size and lets the decoder allocate each distinct string
// once instead of once per event.

// EncodeEvents encodes a trace event list: a string table followed by
// fixed-layout event records referencing it.
func EncodeEvents(evs []trace.Event) []byte {
	t := newStringTable()
	// Intern first so the table precedes the records in the buffer.
	refs := make([][3]uint32, len(evs))
	for i, e := range evs {
		refs[i] = [3]uint32{t.ref(string(e.Task)), t.ref(e.Var), t.ref(e.Note)}
	}
	b := t.encode(nil)
	b = binary.BigEndian.AppendUint32(b, uint32(len(evs)))
	for i, e := range evs {
		b = append(b, byte(e.Kind))
		b = binary.BigEndian.AppendUint64(b, uint64(e.At))
		b = binary.BigEndian.AppendUint32(b, refs[i][0])
		b = binary.BigEndian.AppendUint32(b, uint32(int32(e.PE)))
		b = binary.BigEndian.AppendUint32(b, refs[i][1])
		b = binary.BigEndian.AppendUint32(b, uint32(int32(e.Peer)))
		b = binary.BigEndian.AppendUint64(b, e.Seq)
		if e.Dup {
			b = append(b, 1)
		} else {
			b = append(b, 0)
		}
		b = binary.BigEndian.AppendUint32(b, refs[i][2])
		b = binary.BigEndian.AppendUint64(b, uint64(e.Bytes))
	}
	return b
}

// eventRecLen is the fixed size of one encoded event record.
const eventRecLen = 1 + 8 + 4 + 4 + 4 + 4 + 8 + 1 + 4 + 8

// DecodeEvents decodes an EncodeEvents payload.
func DecodeEvents(b []byte) ([]trace.Event, error) {
	table, b, err := decodeStringTable(b)
	if err != nil {
		return nil, err
	}
	str := func(i uint32) (string, error) {
		if int(i) >= len(table) {
			return "", fmt.Errorf("wire: event string reference %d outside table of %d", i, len(table))
		}
		return table[i], nil
	}
	if len(b) < 4 {
		return nil, fmt.Errorf("wire: truncated event count")
	}
	n := int(binary.BigEndian.Uint32(b))
	b = b[4:]
	if len(b) != n*eventRecLen {
		return nil, fmt.Errorf("wire: %d bytes for %d event records of %d", len(b), n, eventRecLen)
	}
	evs := make([]trace.Event, n)
	for i := range evs {
		e := &evs[i]
		e.Kind = trace.Kind(b[0])
		e.At = machine.Time(binary.BigEndian.Uint64(b[1:]))
		var task, v, note string
		if task, err = str(binary.BigEndian.Uint32(b[9:])); err != nil {
			return nil, err
		}
		e.Task = graph.NodeID(task)
		e.PE = int(int32(binary.BigEndian.Uint32(b[13:])))
		if v, err = str(binary.BigEndian.Uint32(b[17:])); err != nil {
			return nil, err
		}
		e.Var = v
		e.Peer = int(int32(binary.BigEndian.Uint32(b[21:])))
		e.Seq = binary.BigEndian.Uint64(b[25:])
		e.Dup = b[33] != 0
		if note, err = str(binary.BigEndian.Uint32(b[34:])); err != nil {
			return nil, err
		}
		e.Note = note
		e.Bytes = int64(binary.BigEndian.Uint64(b[38:]))
		b = b[eventRecLen:]
	}
	return evs, nil
}

func appendString(b []byte, s string) []byte {
	b = binary.BigEndian.AppendUint32(b, uint32(len(s)))
	return append(b, s...)
}

func decodeString(b []byte) (string, []byte, error) {
	if len(b) < 4 {
		return "", nil, fmt.Errorf("wire: truncated string length")
	}
	n := int(binary.BigEndian.Uint32(b))
	b = b[4:]
	if len(b) < n {
		return "", nil, fmt.Errorf("wire: truncated string of %d bytes", n)
	}
	return string(b[:n]), b[n:], nil
}
