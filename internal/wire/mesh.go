package wire

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/exec"
)

// The mesh data plane. With the star topology every cross-worker
// message pays two hops (sender -> coordinator -> consumer); the mesh
// lets workers dial each other directly and send destination-prefixed
// Data frames point-to-point, while the coordinator keeps arbitrating
// membership, heartbeats and the recovery barrier over its own links.
//
// Topology: worker i dials every lower-indexed worker j < i (one
// connection per pair, shared by both directions), using the same
// transport and listener the worker daemon already runs. A mesh link
// reuses the Link machinery — wids, cumulative acks, outbox replay
// after a reconnect — so a broken worker-to-worker connection heals
// exactly like a broken coordinator connection.
//
// Fallback: until a pair's link is established (the peer hasn't
// received its start bundle yet, or worker-to-worker dialing fails
// outright while the coordinator can still reach both), data frames
// fall back to the coordinator relay. Correctness never depends on
// the mesh: each message travels on exactly one link, is sequenced
// there, and replays there after a reconnect.

// defaultFlushEvery is the frame-coalescing window: small data frames
// buffer per peer until the sender's slot ends, the link goes idle, or
// this much time passes, whichever is first.
const defaultFlushEvery = 200 * time.Microsecond

// meshConfig is the initial wiring of a worker's mesh.
type meshConfig struct {
	transport Transport
	runID     string
	self      int      // this worker's index
	addrs     []string // worker listen addresses by index
	peerOf    []int    // pe -> worker index
	flushery  time.Duration
	logf      func(format string, args ...any)
}

// mesh is one worker's set of direct links to its peers.
type mesh struct {
	cfg     meshConfig
	deliver func(exec.RemoteMsg) error // the session's Deliver

	ctx    context.Context
	cancel context.CancelFunc

	// wg tracks the dial loops and connection readers so close can
	// wait them out: a straggler would outlive the run that owns
	// deliver and logf (a test's t.Logf, typically).
	wg sync.WaitGroup

	mu sync.Mutex
	// addrs and peerOf are the live membership, seeded from cfg and
	// updated when a worker joins mid-run (the joiner, holding the
	// highest index, dials us — existing dial loops never change).
	addrs  []string
	peerOf []int
	peers  map[int]*meshPeer // established links by worker index
	lost   map[int]bool      // workers declared dead or departed
	closed bool
}

// meshPeer is one established (possibly detached) direct link.
type meshPeer struct {
	link *Link
	// ackDue batches acks: readers set it after accepting sequenced
	// frames, the flusher folds one cumulative ack into the next flush.
	ackDue atomic.Bool
}

// newMesh starts the dial loops toward lower-indexed peers and returns
// the mesh. Higher-indexed peers dial us; their connections arrive
// through the worker daemon's accept path (acceptPeer).
func newMesh(cfg meshConfig, deliver func(exec.RemoteMsg) error) *mesh {
	if cfg.flushery <= 0 {
		cfg.flushery = defaultFlushEvery
	}
	ctx, cancel := context.WithCancel(context.Background())
	m := &mesh{cfg: cfg, deliver: deliver, ctx: ctx, cancel: cancel,
		addrs:  append([]string(nil), cfg.addrs...),
		peerOf: append([]int(nil), cfg.peerOf...),
		peers:  map[int]*meshPeer{}, lost: map[int]bool{}}
	for j, addr := range cfg.addrs {
		if j < cfg.self && addr != "" {
			m.spawn(func() { m.dialLoop(j, addr) })
		}
	}
	return m
}

// spawn runs fn on a goroutine tracked by the close barrier. It
// refuses (returning false) once the mesh is closed, so close never
// races a late wg.Add against its Wait.
func (m *mesh) spawn(fn func()) bool {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return false
	}
	m.wg.Add(1)
	m.mu.Unlock()
	go func() {
		defer m.wg.Done()
		fn()
	}()
	return true
}

// update installs new membership after a mid-run join: the address
// list grows and revived processors map to the new worker. No dial
// loops start here — the joiner holds the highest index and dials us.
func (m *mesh) update(addrs []string, peerOf []int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return
	}
	if len(addrs) > 0 {
		m.addrs = append([]string(nil), addrs...)
	}
	if len(peerOf) > 0 {
		m.peerOf = append([]int(nil), peerOf...)
	}
}

// linkFor returns the direct link to the worker hosting pe, or nil
// when the frame should fall back to the coordinator relay (processor
// hosted locally — a caller bug —, link not yet established, or peer
// declared dead: the relay drops frames for dead workers, which is
// what recovery wants).
func (m *mesh) linkFor(pe int) *Link {
	m.mu.Lock()
	defer m.mu.Unlock()
	if pe < 0 || pe >= len(m.peerOf) {
		return nil
	}
	j := m.peerOf[pe]
	if j == m.cfg.self {
		return nil
	}
	if m.lost[j] || m.closed {
		return nil
	}
	p := m.peers[j]
	if p == nil {
		return nil
	}
	return p.link
}

// peer returns (creating if needed) the state for worker j, or nil if
// j is dead or the mesh is closed.
func (m *mesh) peer(j int) *meshPeer {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed || m.lost[j] {
		return nil
	}
	p := m.peers[j]
	if p == nil {
		p = &meshPeer{link: NewLink(nil)}
		m.peers[j] = p
	}
	return p
}

// dialLoop establishes and maintains the link to lower-indexed worker
// j: dial, handshake, attach, read until the connection breaks, redial.
// A handshake rejection usually means the peer hasn't received its
// start bundle yet; retry with backoff until the run ends.
func (m *mesh) dialLoop(j int, addr string) {
	backoff := 5 * time.Millisecond
	const backoffCap = 500 * time.Millisecond
	for m.ctx.Err() == nil {
		c, err := dialBackoff(m.ctx, m.cfg.transport, addr, 25*time.Millisecond, backoffCap)
		if err != nil {
			return // ctx cancelled
		}
		p := m.peer(j)
		if p == nil {
			c.Close()
			return
		}
		rcvd, err := m.helloPeer(c, p.link.Rcvd())
		if err != nil {
			c.Close()
			select {
			case <-time.After(backoff):
			case <-m.ctx.Done():
				return
			}
			if backoff *= 2; backoff > backoffCap {
				backoff = backoffCap
			}
			continue
		}
		backoff = 5 * time.Millisecond
		if err := p.link.Reattach(c, rcvd); err != nil {
			p.link.Detach()
			continue
		}
		m.cfg.logf("mesh link to worker %d (%s) up", j, addr)
		m.readConn(j, p, c)
	}
}

// helloPeer performs the mesh handshake on a fresh connection and
// returns the peer's receive watermark, bounded by a timeout.
func (m *mesh) helloPeer(c Conn, rcvd uint64) (uint64, error) {
	h := Hello{Proto: ProtoVersion, Run: m.cfg.runID, Rcvd: rcvd, Peer: m.cfg.self + 1}
	type res struct {
		rcvd uint64
		err  error
	}
	ch := make(chan res, 1)
	go func() {
		r, err := reHandshake(c, h)
		ch <- res{r, err}
	}()
	select {
	case r := <-ch:
		return r.rcvd, r.err
	case <-time.After(5 * time.Second):
		c.Close()
		return 0, fmt.Errorf("wire: mesh handshake timed out")
	case <-m.ctx.Done():
		c.Close()
		return 0, m.ctx.Err()
	}
}

// acceptPeer attaches an inbound mesh connection from worker j (the
// daemon already read its Hello). The Welcome carries our watermark
// and must precede the outbox replay that Reattach performs.
func (m *mesh) acceptPeer(j int, c Conn, peerRcvd uint64, frames <-chan Frame, rerr <-chan error) error {
	m.mu.Lock()
	known := len(m.addrs)
	m.mu.Unlock()
	if j < 0 || j >= known || j == m.cfg.self {
		return fmt.Errorf("wire: mesh hello from out-of-range worker %d", j)
	}
	p := m.peer(j)
	if p == nil {
		return fmt.Errorf("wire: mesh hello from dead worker %d", j)
	}
	if err := c.WriteFrame(Frame{Type: TWelcome, Payload: encJSON(Welcome{Proto: ProtoVersion, Rcvd: p.link.Rcvd()})}); err != nil {
		return err
	}
	if err := p.link.Reattach(c, peerRcvd); err != nil {
		p.link.Detach()
		return err
	}
	m.cfg.logf("mesh link from worker %d up", j)
	if !m.spawn(func() { m.readChan(j, p, c, frames, rerr) }) {
		return fmt.Errorf("wire: mesh closed")
	}
	return nil
}

// readConn pumps a dialed connection until it breaks.
func (m *mesh) readConn(j int, p *meshPeer, c Conn) {
	for {
		f, err := c.ReadFrame()
		if err != nil {
			p.link.DetachIf(c)
			return
		}
		m.handleFrame(j, p, f)
	}
}

// readChan pumps an accepted connection (frames arrive through the
// daemon's hello reader) until it breaks.
func (m *mesh) readChan(j int, p *meshPeer, c Conn, frames <-chan Frame, rerr <-chan error) {
	for {
		select {
		case f := <-frames:
			m.handleFrame(j, p, f)
		case <-rerr:
			p.link.DetachIf(c)
			return
		case <-m.ctx.Done():
			return
		}
	}
}

// handleFrame processes one frame from mesh peer j: data is delivered
// straight into the session, acks prune the outbox, a goodbye tears
// the link down immediately (the peer departed gracefully, so nothing
// waits out the heartbeat budget), anything else is connection noise.
func (m *mesh) handleFrame(j int, p *meshPeer, f Frame) {
	switch f.Type {
	case TData:
		if !p.link.Accept(f) {
			p.ackDue.Store(true) // replay overlap: re-ack
			return
		}
		msg, err := DecodeMsg(f.Payload)
		p.ackDue.Store(true)
		if err != nil {
			m.cfg.logf("mesh: bad data frame: %v", err)
			return
		}
		putBuf(f.Payload) // DecodeMsg copies everything out
		if err := m.deliver(msg); err != nil {
			m.cfg.logf("mesh: deliver: %v", err)
		}
	case TAck:
		if wid, err := decU64(f.Payload); err == nil {
			p.link.Acked(wid)
		}
	case TBye:
		m.cfg.logf("mesh: worker %d departed; closing link", j)
		m.markLost(j)
	case THeartbeat, TPing, TPong:
		// Liveness is the coordinator's job; ignore.
	default:
		m.cfg.logf("mesh: unexpected %s frame", f.Type)
	}
}

// flushAll drives every peer's coalescing buffer onto the wire, each
// flush carrying at most one batched cumulative ack. Called at slot
// boundaries, on idle/pause barriers, and by the run's flush ticker.
func (m *mesh) flushAll() {
	m.mu.Lock()
	peers := make([]*meshPeer, 0, len(m.peers))
	for _, p := range m.peers {
		peers = append(peers, p)
	}
	m.mu.Unlock()
	for _, p := range peers {
		if p.ackDue.Swap(false) {
			// A detached link drops the ack; the reconnect handshake
			// re-exchanges watermarks, so nothing is lost.
			p.link.SendRawBuffered(Frame{Type: TAck, Payload: encU64(p.link.Rcvd())})
		}
		if err := p.link.Flush(); err != nil {
			p.link.Detach()
		}
	}
}

// pruneDead closes links to workers the recovery plan declared dead:
// every processor they hosted is dead, so nothing routes there again.
func (m *mesh) pruneDead(dead []bool) {
	m.mu.Lock()
	n := len(m.addrs)
	peerOf := append([]int(nil), m.peerOf...)
	m.mu.Unlock()
	for j := 0; j < n; j++ {
		if j == m.cfg.self {
			continue
		}
		gone := false
		for pe, w := range peerOf {
			if w != j || pe >= len(dead) {
				continue
			}
			if !dead[pe] {
				gone = false
				break
			}
			gone = true
		}
		if gone {
			m.markLost(j)
		}
	}
}

// markLost drops worker j from the mesh.
func (m *mesh) markLost(j int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.lost[j] {
		return
	}
	m.lost[j] = true
	if p := m.peers[j]; p != nil {
		p.link.Close()
		delete(m.peers, j)
	}
}

// close tears the mesh down: dial loops stop, links close, pooled
// outbox payloads return to the pool. Attached peers get a goodbye
// frame first, so a graceful departure tears down the remote end of
// each link immediately instead of leaving it to rot until the next
// membership update.
func (m *mesh) close() {
	m.cancel()
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return
	}
	m.closed = true
	for j, p := range m.peers {
		p.link.SendRaw(Frame{Type: TBye}) // best effort; detached links just skip it
		p.link.Close()
		delete(m.peers, j)
	}
	m.mu.Unlock()
	// Closing the links broke every blocking read, so this terminates:
	// wait out the dial loops and readers before the caller moves on to
	// recycle the run (and, in tests, finish the t that owns logf).
	m.wg.Wait()
}
