package wire

import (
	"context"
	"fmt"
	"math/rand"
	"os"
	"reflect"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/exec"
	"repro/internal/graph"
	"repro/internal/machine"
	"repro/internal/pits"
	"repro/internal/sched"
)

// waitNoWorkerRuns polls until every worker daemon in the process has
// emptied its session table. Teardown is asynchronous on the worker
// side (a TBye lands after the coordinator returns), so results-in-hand
// does not yet mean tables-empty.
func waitNoWorkerRuns(t *testing.T, patience time.Duration) {
	t.Helper()
	deadline := time.Now().Add(patience)
	for ActiveWorkerRuns() != 0 && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if n := ActiveWorkerRuns(); n != 0 {
		t.Fatalf("worker session tables still hold %d runs after %v", n, patience)
	}
}

// TestMultiplexedRunTeardownNoLeak: 50 run/teardown cycles multiplexed
// over one persistent fleet — waves of concurrent runs sharing the same
// two daemons — must leave the session tables empty and the goroutine
// count flat. This is the multi-session variant of
// TestRepeatedRunTeardownNoLeak: every cycle's session, mesh, link,
// flush ticker and orphan timer must unwind even though the daemons
// (and other runs) live on.
func TestMultiplexedRunTeardownNoLeak(t *testing.T) {
	tr := Inproc()
	addrs, stop := startWorkers(t, tr, 2)
	defer stop()
	f := startFleet(t, tr, addrs)
	ctx := context.Background()

	flat, inputs := distDesign(t, 3, 3)
	m := distMachine(t, "hypercube:2")
	sc, err := sched.ETF{}.Schedule(flat.Graph, m)
	if err != nil {
		t.Fatal(err)
	}

	wave := func(n int) {
		t.Helper()
		errs := make(chan error, n)
		for i := 0; i < n; i++ {
			go func() {
				_, err := f.Run(ctx, &exec.Runner{Inputs: inputs}, sc, flat)
				errs <- err
			}()
		}
		for i := 0; i < n; i++ {
			if err := <-errs; err != nil {
				t.Fatalf("multiplexed run: %v", err)
			}
		}
	}

	// Warm-up waves populate caches and let teardown stragglers settle
	// before the baseline.
	wave(5)
	wave(5)
	waitNoWorkerRuns(t, 5*time.Second)
	base := settleGoroutines(t, runtime.NumGoroutine(), 2*time.Second)

	const waves, perWave = 10, 5 // 50 multiplexed run/teardown cycles
	for i := 0; i < waves; i++ {
		wave(perWave)
	}

	waitNoWorkerRuns(t, 5*time.Second)
	const slack = 3
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > base+slack && time.Now().Before(deadline) {
		time.Sleep(20 * time.Millisecond)
	}
	if n := runtime.NumGoroutine(); n > base+slack {
		var sb strings.Builder
		pprof.Lookup("goroutine").WriteTo(&sb, 1)
		t.Fatalf("goroutines grew from %d to %d over %d multiplexed cycles; dump:\n%s",
			base, n, waves*perWave, sb.String())
	}
}

// TestMisroutedFrameRejected: the session table routes purely on the
// handshake's run ID, so a frame stamped for run A can never land in
// run B's inbox. Inject the corruption at both entry points: a mesh
// dial whose run ID matches nothing is rejected before it can touch any
// run, and a start bundle whose run field disagrees with its own
// connection's handshake is refused instead of cross-wiring two runs.
func TestMisroutedFrameRejected(t *testing.T) {
	tr := Inproc()
	addrs, stop := startWorkers(t, tr, 1)
	defer stop()
	ctx := context.Background()

	// Hold a real run open on the daemon so the table is non-empty: the
	// corrupt connections below must bounce off without disturbing it.
	flat, inputs := distDesign(t, 3, 3)
	m := distMachine(t, "hypercube:1")
	sc, err := sched.ETF{}.Schedule(flat.Graph, m)
	if err != nil {
		t.Fatal(err)
	}
	want, err := (&exec.Runner{Inputs: inputs}).Run(sc, flat)
	if err != nil {
		t.Fatal(err)
	}
	var hold *exec.FaultPlan
	if len(sc.Msgs) > 0 {
		msg := sc.Msgs[0]
		hold = &exec.FaultPlan{Faults: []exec.Fault{{Kind: exec.FaultDelay,
			From: msg.From, To: msg.To, Var: msg.Var, Delay: 800000, Count: 99}}}
	}
	resCh := make(chan *exec.Result, 1)
	errCh := make(chan error, 1)
	go func() {
		co := &Coordinator{Transport: tr, Addrs: addrs,
			Runner:         &exec.Runner{Inputs: inputs, Faults: hold, WatchdogMin: 10 * time.Second},
			HeartbeatEvery: 50 * time.Millisecond, PeerTimeout: 5 * time.Second, Logf: t.Logf}
		res, err := co.Run(ctx, sc, flat)
		resCh <- res
		errCh <- err
	}()
	deadline := time.Now().Add(5 * time.Second)
	for ActiveWorkerRuns() == 0 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if ActiveWorkerRuns() == 0 {
		t.Fatal("run never reached the worker")
	}

	readError := func(c Conn) string {
		t.Helper()
		for {
			f, err := c.ReadFrame()
			if err != nil {
				t.Fatalf("connection closed without an error frame: %v", err)
			}
			switch f.Type {
			case TError:
				note, _ := decJSON[ErrorNote](f.Payload, "error")
				return note.Msg
			case TWelcome, THeartbeat, TAck:
				continue
			default:
				t.Fatalf("got %s frame, want an error", f.Type)
			}
		}
	}

	// A mesh dial naming a run the daemon does not host: rejected at the
	// table, never delivered anywhere.
	c, err := tr.Dial(ctx, addrs[0])
	if err != nil {
		t.Fatal(err)
	}
	if err := c.WriteFrame(Frame{Type: THello, Payload: encJSON(Hello{
		Proto: ProtoVersion, Run: "corrupted-run-id", Peer: 1})}); err != nil {
		t.Fatal(err)
	}
	if msg := readError(c); !strings.Contains(msg, "unknown run") {
		t.Fatalf("corrupt mesh run ID rejected with %q, want an unknown-run rejection", msg)
	}
	c.Close()

	// A coordinator handshake for run B carrying a start bundle stamped
	// run A: the daemon must refuse to cross-wire the two, because the
	// connection's frames all route to the run its handshake named.
	c, err = tr.Dial(ctx, addrs[0])
	if err != nil {
		t.Fatal(err)
	}
	if err := c.WriteFrame(Frame{Type: THello, Payload: encJSON(Hello{
		Proto: ProtoVersion, Run: "run-b"})}); err != nil {
		t.Fatal(err)
	}
	bundle := encJSON(StartBundle{Run: "run-a", Workers: 1, Hosted: []bool{true}})
	if err := c.WriteFrame(Frame{Type: TStart, Wid: 1, Payload: encBlobEnvelope(bundle)}); err != nil {
		t.Fatal(err)
	}
	if msg := readError(c); !strings.Contains(msg, "start bundle for run") {
		t.Fatalf("mismatched start bundle rejected with %q, want a run-mismatch rejection", msg)
	}
	c.Close()

	// The hosted run sailed through both injections untouched.
	select {
	case err := <-errCh:
		if err != nil {
			t.Fatalf("hosted run failed during frame injection: %v", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("hosted run did not finish")
	}
	if res := <-resCh; !reflect.DeepEqual(res.Outputs, want.Outputs) {
		t.Fatalf("hosted run outputs = %v, want %v", res.Outputs, want.Outputs)
	}
	waitNoWorkerRuns(t, 5*time.Second)
}

// chokeTransport wraps a Transport with a kill switch: trip() abruptly
// closes every connection it ever dialed and refuses new dials,
// simulating a coordinator process dying without a goodbye.
type chokeTransport struct {
	Transport
	mu      sync.Mutex
	conns   []Conn
	tripped bool
}

func (ct *chokeTransport) Dial(ctx context.Context, addr string) (Conn, error) {
	ct.mu.Lock()
	if ct.tripped {
		ct.mu.Unlock()
		return nil, fmt.Errorf("choke: transport tripped")
	}
	ct.mu.Unlock()
	c, err := ct.Transport.Dial(ctx, addr)
	if err != nil {
		return nil, err
	}
	ct.mu.Lock()
	defer ct.mu.Unlock()
	if ct.tripped {
		c.Close()
		return nil, fmt.Errorf("choke: transport tripped")
	}
	ct.conns = append(ct.conns, c)
	return c, nil
}

func (ct *chokeTransport) trip() {
	ct.mu.Lock()
	ct.tripped = true
	conns := ct.conns
	ct.conns = nil
	ct.mu.Unlock()
	for _, c := range conns {
		c.Close()
	}
}

// TestOrphanAbandonPerRun: the abandon-on-coordinator-silence timer is
// per-run state, not daemon-global. One hosted run whose coordinator
// vanishes without a goodbye is abandoned after ITS silence budget;
// a co-hosted run mid-flight on the same daemon never notices and
// completes with correct outputs. (Regression: the single-session
// daemon kept one global timer, so any coordinator's silence was every
// run's problem.)
func TestOrphanAbandonPerRun(t *testing.T) {
	tr := Inproc()
	addrs, stop := startWorkers(t, tr, 1)
	defer stop()
	ctx := context.Background()

	flat, inputs := distDesign(t, 3, 3)
	m := distMachine(t, "hypercube:1")
	sc, err := sched.ETF{}.Schedule(flat.Graph, m)
	if err != nil {
		t.Fatal(err)
	}
	want, err := (&exec.Runner{Inputs: inputs}).Run(sc, flat)
	if err != nil {
		t.Fatal(err)
	}
	if len(sc.Msgs) == 0 {
		t.Skip("schedule has no message to delay")
	}
	holdPlan := func(usec int64) *exec.FaultPlan {
		msg := sc.Msgs[0]
		return &exec.FaultPlan{Faults: []exec.Fault{{Kind: exec.FaultDelay,
			From: msg.From, To: msg.To, Var: msg.Var, Delay: machine.Time(usec), Count: 99}}}
	}

	// Run A dials through the choke and holds itself open ~3s; its
	// silence budget (PeerTimeout, which the worker adopts as the orphan
	// timer) is short.
	choke := &chokeTransport{Transport: tr}
	aErr := make(chan error, 1)
	actx, acancel := context.WithCancel(ctx)
	defer acancel()
	go func() {
		co := &Coordinator{Transport: choke, Addrs: addrs,
			Runner:         &exec.Runner{Inputs: inputs, Faults: holdPlan(3000000), WatchdogMin: 10 * time.Second},
			HeartbeatEvery: 50 * time.Millisecond, PeerTimeout: 400 * time.Millisecond, Logf: t.Logf}
		_, err := co.Run(actx, sc, flat)
		aErr <- err
	}()
	deadline := time.Now().Add(5 * time.Second)
	for ActiveWorkerRuns() == 0 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if ActiveWorkerRuns() == 0 {
		t.Fatal("run A never reached the worker")
	}

	// Run B co-hosted on the same daemon, over the healthy transport,
	// held open ~1.5s so it is mid-flight when A's orphan timer fires.
	bRes := make(chan *exec.Result, 1)
	bErr := make(chan error, 1)
	go func() {
		co := &Coordinator{Transport: tr, Addrs: addrs,
			Runner:         &exec.Runner{Inputs: inputs, Faults: holdPlan(1500000), WatchdogMin: 10 * time.Second},
			HeartbeatEvery: 50 * time.Millisecond, PeerTimeout: 10 * time.Second, Logf: t.Logf}
		res, err := co.Run(ctx, sc, flat)
		bRes <- res
		bErr <- err
	}()
	deadline = time.Now().Add(5 * time.Second)
	for ActiveWorkerRuns() < 2 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if ActiveWorkerRuns() < 2 {
		t.Fatal("run B never reached the worker")
	}

	// Kill A's coordinator abruptly: connections die, no goodbye, no
	// reconnect possible. Cancel its context too so the goroutine exits.
	time.Sleep(200 * time.Millisecond)
	choke.trip()
	acancel()
	if err := <-aErr; err == nil {
		t.Fatal("run A succeeded despite its coordinator dying")
	}

	// B must complete correctly — its barrier, session and timer are its
	// own, untouched by A's abandonment.
	select {
	case err := <-bErr:
		if err != nil {
			t.Fatalf("run B failed after run A's coordinator died: %v", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("run B hung after run A's coordinator died")
	}
	if res := <-bRes; !reflect.DeepEqual(res.Outputs, want.Outputs) {
		t.Fatalf("run B outputs = %v, want %v", res.Outputs, want.Outputs)
	}

	// A is reaped by its own orphan timer: both table slots empty soon.
	waitNoWorkerRuns(t, 5*time.Second)
}

// TestMultiSoak repeats a seeded round of concurrent fleet runs —
// distinct designs and inputs multiplexed over one shared fleet, one
// run held open by wall-clock faults, a worker daemon killed mid-round
// and a replacement announced in — and asserts every run's outputs and
// printed lines are byte-identical to its solo baseline every round.
// The round count defaults low for the regular suite; `make multisoak`
// raises it via MULTISOAK_ROUNDS.
func TestMultiSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test; skipped in -short")
	}
	rounds := 3
	if s := os.Getenv("MULTISOAK_ROUNDS"); s != "" {
		n, err := strconv.Atoi(s)
		if err != nil {
			t.Fatalf("bad MULTISOAK_ROUNDS %q: %v", s, err)
		}
		rounds = n
	}
	seed := int64(1)
	if s := os.Getenv("MULTISOAK_SEED"); s != "" {
		n, err := strconv.ParseInt(s, 10, 64)
		if err != nil {
			t.Fatalf("bad MULTISOAK_SEED %q: %v", s, err)
		}
		seed = n
	}

	// Three run slots with distinct designs and inputs: slot 0 is deep
	// enough for chained holds (it rides through the churn); 1 and 2 are
	// the clean bystanders whose results prove isolation.
	type slot struct {
		flat   *graph.Flat
		inputs pits.Env
		sc     *sched.Schedule
		want   *exec.Result
	}
	specs := []struct {
		layers, width int
		x             int64
	}{{8, 3, 3}, {4, 3, 5}, {5, 3, 7}}
	m := distMachine(t, "hypercube:2")
	slots := make([]slot, len(specs))
	for i, sp := range specs {
		flat, _ := distDesign(t, sp.layers, sp.width)
		inputs := pits.Env{"x": pits.Num(sp.x)}
		sc, err := sched.ETF{}.Schedule(flat.Graph, m)
		if err != nil {
			t.Fatal(err)
		}
		want, err := (&exec.Runner{Inputs: inputs}).Run(sc, flat)
		if err != nil {
			t.Fatal(err)
		}
		slots[i] = slot{flat: flat, inputs: inputs, sc: sc, want: want}
	}

	rng := rand.New(rand.NewSource(seed))
	for round := 0; round < rounds; round++ {
		holdUsec := int64(900000 + rng.Intn(600000))
		killAt := time.Duration(150+rng.Intn(200)) * time.Millisecond
		mesh := rng.Intn(2) == 0
		t.Run(fmt.Sprintf("round%d", round), func(t *testing.T) {
			tr := Inproc()
			addrs, stop := startWorkers(t, tr, 2)
			defer stop()
			// The victim sorts after worker-0/worker-1 so placement gives
			// it worker index 2; the holds avoid its endpoints so killing
			// it never releases them.
			victimCtx, killVictim := context.WithCancel(context.Background())
			defer killVictim()
			ready := make(chan struct{})
			victimDown := make(chan struct{})
			go func() {
				defer close(victimDown)
				ServeWorker(victimCtx, tr, "worker-9-victim", WorkerOptions{Logf: t.Logf}, func(string) { close(ready) })
			}()
			<-ready

			f := &Fleet{Transport: tr, Control: "fleet-control", Logf: t.Logf,
				Seed:           append(append([]string{}, addrs...), "worker-9-victim"),
				HeartbeatEvery: 50 * time.Millisecond, PeerTimeout: 500 * time.Millisecond,
				Mesh: mesh}
			if err := f.Start(); err != nil {
				t.Fatal(err)
			}
			defer f.Close()
			ctx := context.Background()

			plan := holdChain(t, slots[0].sc, 3, 3, holdUsec, 2)
			runners := []*exec.Runner{
				{Inputs: slots[0].inputs, Faults: plan, WatchdogMin: 10 * time.Second},
				{Inputs: slots[1].inputs},
				{Inputs: slots[2].inputs},
			}

			type outcome struct {
				i   int
				res *exec.Result
				err error
			}
			results := make(chan outcome, len(slots))
			for i := range slots {
				go func(i int) {
					res, err := f.Run(ctx, runners[i], slots[i].sc, slots[i].flat)
					results <- outcome{i, res, err}
				}(i)
			}

			// Mid-round churn: SIGKILL-equivalent on the victim daemon,
			// then a replacement announces in (the fleet records it and
			// offers it to the run that lost a worker).
			churnDone := make(chan struct{})
			var jstop func()
			go func() {
				defer close(churnDone)
				time.Sleep(killAt)
				killVictim()
				<-victimDown
				time.Sleep(50 * time.Millisecond)
				jstop = startNamedWorker(t, tr, "worker-9-joiner")
				if err := Announce(context.Background(), tr, f.Addr(), "worker-9-joiner"); err != nil {
					t.Errorf("rejoin announce: %v", err)
				}
			}()

			for range slots {
				out := <-results
				if out.err != nil {
					t.Fatalf("run %d: %v", out.i, out.err)
				}
				if !reflect.DeepEqual(out.res.Outputs, slots[out.i].want.Outputs) {
					t.Errorf("run %d outputs diverged from its solo baseline:\n got  %v\n want %v",
						out.i, out.res.Outputs, slots[out.i].want.Outputs)
				}
				if !reflect.DeepEqual(out.res.Printed, slots[out.i].want.Printed) {
					t.Errorf("run %d printed lines diverged:\n got  %q\n want %q",
						out.i, out.res.Printed, slots[out.i].want.Printed)
				}
			}
			<-churnDone
			if jstop != nil {
				defer jstop()
			}
			waitNoWorkerRuns(t, 5*time.Second)
		})
	}
}
