package wire

import (
	"reflect"
	"testing"
	"time"

	"repro/internal/exec"
	"repro/internal/pits"
)

// acceptMeshConns runs a minimal stand-in for the worker daemon's
// accept path: every inbound connection's Hello is read and routed into
// the mesh, with a pump goroutine feeding subsequent frames.
func acceptMeshConns(t *testing.T, ln Listener, m *mesh) {
	t.Helper()
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			go func(c Conn) {
				f, err := c.ReadFrame()
				if err != nil || f.Type != THello {
					c.Close()
					return
				}
				h, err := decJSON[Hello](f.Payload, "hello")
				if err != nil || h.Peer == 0 {
					c.Close()
					return
				}
				frames := make(chan Frame, 64)
				rerr := make(chan error, 1)
				go func() {
					for {
						f, err := c.ReadFrame()
						if err != nil {
							rerr <- err
							return
						}
						frames <- f
					}
				}()
				if err := m.acceptPeer(h.Peer-1, c, h.Rcvd, frames, rerr); err != nil {
					t.Logf("acceptPeer: %v", err)
					c.Close()
				}
			}(c)
		}
	}()
}

// TestMeshDirectDelivery pins the peer-to-peer path end to end without
// a coordinator: worker 1 dials worker 0, data frames coalesce until an
// explicit flush, arrive in order, and the batched cumulative ack
// prunes the sender's outbox.
func TestMeshDirectDelivery(t *testing.T) {
	tr := Inproc()
	ln, err := tr.Listen("w0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()

	cfg := meshConfig{transport: tr, runID: "r1",
		addrs: []string{"w0", "w1"}, peerOf: []int{0, 1}, logf: t.Logf}

	got := make(chan exec.RemoteMsg, 16)
	cfg0 := cfg
	cfg0.self = 0
	m0 := newMesh(cfg0, func(m exec.RemoteMsg) error { got <- m; return nil })
	defer m0.close()
	acceptMeshConns(t, ln, m0)

	cfg1 := cfg
	cfg1.self = 1
	m1 := newMesh(cfg1, func(exec.RemoteMsg) error { return nil })
	defer m1.close()

	var l *Link
	for deadline := time.Now().Add(5 * time.Second); time.Now().Before(deadline); time.Sleep(2 * time.Millisecond) {
		if l = m1.linkFor(0); l != nil {
			break
		}
	}
	if l == nil {
		t.Fatal("mesh link from worker 1 to worker 0 never came up")
	}

	want := make([]exec.RemoteMsg, 3)
	for i := range want {
		want[i] = exec.RemoteMsg{From: "a", To: "b", Var: "x",
			FromPE: 1, ToPE: 0, Seq: uint64(i + 1), Epoch: 1, Val: pits.Num(float64(40 + i))}
		b, err := AppendMsg(getBuf(), want[i])
		if err != nil {
			t.Fatal(err)
		}
		if err := l.SendData(TData, b, true); err != nil {
			t.Fatal(err)
		}
	}
	// Frames are coalescing in the peer buffer: nothing may arrive
	// before the flush.
	select {
	case m := <-got:
		t.Fatalf("message %v arrived before flush", m)
	case <-time.After(20 * time.Millisecond):
	}
	m1.flushAll()
	for i := range want {
		select {
		case m := <-got:
			if !reflect.DeepEqual(m, want[i]) {
				t.Errorf("message %d: got %+v, want %+v", i, m, want[i])
			}
		case <-time.After(5 * time.Second):
			t.Fatalf("message %d never delivered", i)
		}
	}

	// The receiver owes one batched cumulative ack; its flush must
	// prune the sender's outbox.
	m0.flushAll()
	for deadline := time.Now().Add(5 * time.Second); ; time.Sleep(2 * time.Millisecond) {
		l.mu.Lock()
		n := len(l.outbox)
		l.mu.Unlock()
		if n == 0 {
			break
		}
		if !time.Now().Before(deadline) {
			t.Fatalf("sender outbox still holds %d frames after ack flush", n)
		}
	}
}

// TestMeshLostPeerFallsBack: once the recovery plan declares a worker
// dead, linkFor routes its processors back to the relay (nil).
func TestMeshLostPeerFallsBack(t *testing.T) {
	tr := Inproc()
	cfg := meshConfig{transport: tr, runID: "r2", self: 1,
		addrs: []string{"", "w1", ""}, peerOf: []int{0, 1, 2}, logf: t.Logf}
	m := newMesh(cfg, func(exec.RemoteMsg) error { return nil })
	defer m.close()

	// Fake an established link to worker 2.
	p := m.peer(2)
	if p == nil {
		t.Fatal("peer(2) returned nil")
	}
	if m.linkFor(2) == nil {
		t.Fatal("linkFor(2) should route to the fake established link")
	}
	// pe 0 hosted by worker 0 (no link): relay. pe 1 is local: relay.
	if m.linkFor(0) != nil || m.linkFor(1) != nil {
		t.Error("unestablished and local processors must fall back to relay")
	}

	m.pruneDead([]bool{false, false, true})
	if m.linkFor(2) != nil {
		t.Error("linkFor must return nil for a worker declared dead")
	}
	if m.peer(2) != nil {
		t.Error("peer must not resurrect a dead worker")
	}
}
