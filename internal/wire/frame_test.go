package wire

import (
	"bytes"
	"encoding/binary"
	"strings"
	"testing"
)

func TestFrameRoundTrip(t *testing.T) {
	frames := []Frame{
		{Type: THello, Payload: []byte(`{"proto":1}`)},
		{Type: TData, Wid: 42, Payload: []byte{0, 1, 2, 3, 255}},
		{Type: TIdle, Wid: 7},
		{Type: THeartbeat, Payload: encU64(123456)},
	}
	var buf bytes.Buffer
	total := 0
	for _, f := range frames {
		n, err := WriteFrame(&buf, f)
		if err != nil {
			t.Fatalf("write %s: %v", f.Type, err)
		}
		if n != HeaderLen+len(f.Payload) {
			t.Errorf("write %s: %d bytes, want %d", f.Type, n, HeaderLen+len(f.Payload))
		}
		total += n
	}
	if buf.Len() != total {
		t.Fatalf("buffer holds %d bytes, wrote %d", buf.Len(), total)
	}
	for _, want := range frames {
		got, n, err := ReadFrame(&buf)
		if err != nil {
			t.Fatalf("read %s: %v", want.Type, err)
		}
		if n != HeaderLen+len(want.Payload) {
			t.Errorf("read %s: %d bytes, want %d", want.Type, n, HeaderLen+len(want.Payload))
		}
		if got.Type != want.Type || got.Wid != want.Wid || !bytes.Equal(got.Payload, want.Payload) {
			t.Errorf("round trip: got %+v want %+v", got, want)
		}
	}
}

// encodeFrame renders a frame to bytes for corruption tests.
func encodeFrame(t *testing.T, f Frame) []byte {
	t.Helper()
	var buf bytes.Buffer
	if _, err := WriteFrame(&buf, f); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestFrameRejectsCorruption(t *testing.T) {
	good := encodeFrame(t, Frame{Type: TData, Wid: 9, Payload: []byte("payload-bytes")})

	cases := []struct {
		name    string
		mutate  func([]byte)
		wantErr string
	}{
		{"flipped payload bit", func(b []byte) { b[HeaderLen] ^= 0x01 }, "checksum"},
		{"bad magic", func(b []byte) { b[0] = 0x00 }, "bad magic"},
		{"future version", func(b []byte) { b[2] = ProtoVersion + 1 }, "protocol version"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			b := append([]byte(nil), good...)
			c.mutate(b)
			_, _, err := ReadFrame(bytes.NewReader(b))
			if err == nil || !strings.Contains(err.Error(), c.wantErr) {
				t.Fatalf("got %v, want error containing %q", err, c.wantErr)
			}
		})
	}

	t.Run("oversize length", func(t *testing.T) {
		b := append([]byte(nil), good...)
		binary.BigEndian.PutUint32(b[12:], MaxPayload+1)
		_, _, err := ReadFrame(bytes.NewReader(b))
		if err == nil || !strings.Contains(err.Error(), "payload") {
			t.Fatalf("got %v, want oversize payload error", err)
		}
	})

	t.Run("truncated stream", func(t *testing.T) {
		_, _, err := ReadFrame(bytes.NewReader(good[:len(good)-3]))
		if err == nil {
			t.Fatal("truncated frame read succeeded")
		}
	})
}
