package wire

import (
	"bytes"
	"context"
	"testing"
)

func TestLinkReplayAfterReattach(t *testing.T) {
	a, b := inprocPair()
	l := NewLink(a)
	for _, p := range []string{"one", "two", "three"} {
		if err := l.Send(TData, []byte(p)); err != nil {
			t.Fatal(err)
		}
	}
	// The peer saw all three but only acked the second.
	for i := 0; i < 3; i++ {
		if _, err := b.ReadFrame(); err != nil {
			t.Fatal(err)
		}
	}
	l.Acked(2)

	// The connection dies; a frame sent while detached queues silently.
	l.Detach()
	if err := l.Send(TData, []byte("four")); err != nil {
		t.Fatalf("send while detached: %v", err)
	}
	if err := l.SendRaw(Frame{Type: THeartbeat, Payload: encU64(0)}); err == nil {
		t.Error("unsequenced send while detached did not error")
	}

	// Reattach on a fresh connection: the peer's watermark says it has
	// everything through wid 2, so wids 3 and 4 replay in order.
	c, d := inprocPair()
	if err := l.Reattach(c, 2); err != nil {
		t.Fatal(err)
	}
	for i, want := range []struct {
		wid     uint64
		payload string
	}{{3, "three"}, {4, "four"}} {
		f, err := d.ReadFrame()
		if err != nil {
			t.Fatalf("replay frame %d: %v", i, err)
		}
		if f.Wid != want.wid || !bytes.Equal(f.Payload, []byte(want.payload)) {
			t.Errorf("replay frame %d: wid %d payload %q, want wid %d payload %q",
				i, f.Wid, f.Payload, want.wid, want.payload)
		}
	}
}

func TestLinkAcceptDeduplicates(t *testing.T) {
	l := NewLink(nil)
	if !l.Accept(Frame{Type: THeartbeat}) {
		t.Error("unsequenced frame rejected")
	}
	if !l.Accept(Frame{Type: TData, Wid: 1}) {
		t.Error("fresh wid 1 rejected")
	}
	if l.Accept(Frame{Type: TData, Wid: 1}) {
		t.Error("replayed wid 1 accepted twice")
	}
	if !l.Accept(Frame{Type: TData, Wid: 2}) {
		t.Error("fresh wid 2 rejected")
	}
	if l.Rcvd() != 2 {
		t.Errorf("watermark %d, want 2", l.Rcvd())
	}
}

func TestInprocTransportConnectivity(t *testing.T) {
	tr := Inproc()
	lis, err := tr.Listen("w0")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tr.Listen("w0"); err == nil {
		t.Error("double listen on one inproc address succeeded")
	}
	done := make(chan error, 1)
	go func() {
		c, err := lis.Accept()
		if err != nil {
			done <- err
			return
		}
		f, err := c.ReadFrame()
		if err != nil {
			done <- err
			return
		}
		done <- c.WriteFrame(f)
	}()
	c, err := tr.Dial(context.Background(), "w0")
	if err != nil {
		t.Fatal(err)
	}
	if err := c.WriteFrame(Frame{Type: TPing, Payload: []byte("echo")}); err != nil {
		t.Fatal(err)
	}
	f, err := c.ReadFrame()
	if err != nil {
		t.Fatal(err)
	}
	if f.Type != TPing || string(f.Payload) != "echo" {
		t.Errorf("echo came back as %s %q", f.Type, f.Payload)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	lis.Close()
	if _, err := tr.Dial(context.Background(), "w0"); err == nil {
		t.Error("dial after listener close succeeded")
	}
}
