package wire

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestLinkReplayAfterReattach(t *testing.T) {
	a, b := inprocPair()
	l := NewLink(a)
	for _, p := range []string{"one", "two", "three"} {
		if err := l.Send(TData, []byte(p)); err != nil {
			t.Fatal(err)
		}
	}
	// The peer saw all three but only acked the second.
	for i := 0; i < 3; i++ {
		if _, err := b.ReadFrame(); err != nil {
			t.Fatal(err)
		}
	}
	l.Acked(2)

	// The connection dies; a frame sent while detached queues silently.
	l.Detach()
	if err := l.Send(TData, []byte("four")); err != nil {
		t.Fatalf("send while detached: %v", err)
	}
	if err := l.SendRaw(Frame{Type: THeartbeat, Payload: encU64(0)}); err == nil {
		t.Error("unsequenced send while detached did not error")
	}

	// Reattach on a fresh connection: the peer's watermark says it has
	// everything through wid 2, so wids 3 and 4 replay in order.
	c, d := inprocPair()
	if err := l.Reattach(c, 2); err != nil {
		t.Fatal(err)
	}
	for i, want := range []struct {
		wid     uint64
		payload string
	}{{3, "three"}, {4, "four"}} {
		f, err := d.ReadFrame()
		if err != nil {
			t.Fatalf("replay frame %d: %v", i, err)
		}
		if f.Wid != want.wid || !bytes.Equal(f.Payload, []byte(want.payload)) {
			t.Errorf("replay frame %d: wid %d payload %q, want wid %d payload %q",
				i, f.Wid, f.Payload, want.wid, want.payload)
		}
	}
}

func TestLinkAcceptDeduplicates(t *testing.T) {
	l := NewLink(nil)
	if !l.Accept(Frame{Type: THeartbeat}) {
		t.Error("unsequenced frame rejected")
	}
	if !l.Accept(Frame{Type: TData, Wid: 1}) {
		t.Error("fresh wid 1 rejected")
	}
	if l.Accept(Frame{Type: TData, Wid: 1}) {
		t.Error("replayed wid 1 accepted twice")
	}
	if !l.Accept(Frame{Type: TData, Wid: 2}) {
		t.Error("fresh wid 2 rejected")
	}
	if l.Rcvd() != 2 {
		t.Errorf("watermark %d, want 2", l.Rcvd())
	}
}

// TestLinkOutboxCap: a peer that never acks cannot grow the outbox
// without bound. Hitting the cap fails the link cleanly and stays
// failed — including across a reattach, so the coordinator eventually
// declares the peer lost instead of hoarding frames forever.
func TestLinkOutboxCap(t *testing.T) {
	l := NewLink(nil) // detached: frames queue without a reader
	l.SetMaxOutbox(4)
	for i := 0; i < 4; i++ {
		if err := l.Send(TData, []byte{byte(i)}); err != nil {
			t.Fatalf("send %d under the cap: %v", i, err)
		}
	}
	err := l.Send(TData, []byte{4})
	if !errors.Is(err, ErrOutboxOverflow) {
		t.Fatalf("send over the cap: got %v, want ErrOutboxOverflow", err)
	}
	if err := l.Send(TData, []byte{5}); !errors.Is(err, ErrOutboxOverflow) {
		t.Errorf("failure is not sticky: second send got %v", err)
	}
	a, _ := inprocPair()
	if err := l.Reattach(a, 0); !errors.Is(err, ErrOutboxOverflow) {
		t.Errorf("reattach on a failed link got %v, want ErrOutboxOverflow", err)
	}

	// Acks prune the outbox, so a healthy peer never trips the cap.
	l2 := NewLink(nil)
	l2.SetMaxOutbox(4)
	for i := 0; i < 32; i++ {
		if err := l2.Send(TData, []byte{byte(i)}); err != nil {
			t.Fatalf("acked send %d: %v", i, err)
		}
		l2.Acked(uint64(i + 1))
	}
}

// TestLinkConcurrentSendReattach hammers Send against Detach/Reattach
// replay cycles; the race detector pins the locking, and every wid must
// come out exactly once per connection epoch (replays excepted).
func TestLinkConcurrentSendReattach(t *testing.T) {
	a, b := inprocPair()
	l := NewLink(a)
	// The overflow cap is TestLinkOutboxCap's subject; here unthrottled
	// senders can outrun the 50µs acker on a loaded machine, and the
	// test must die by deadline, not by a spurious overflow.
	l.SetMaxOutbox(1 << 22)
	var stop atomic.Bool
	var wg sync.WaitGroup

	// Drain whatever connection currently backs the link so writes
	// never block; remember the highest wid actually read, which is the
	// watermark an honest peer would hand back in the reconnect
	// handshake. Acking happens on a separate goroutine, like a real
	// peer's batched cumulative acks: the drain must never wait on the
	// link lock, or it stops emptying the very queue a locked replay is
	// trying to fill.
	var seen atomic.Uint64
	drain := func(c *inprocConn) {
		defer wg.Done()
		for {
			f, err := c.ReadFrame()
			if err != nil {
				return // Detach closed this connection
			}
			for {
				cur := seen.Load()
				if f.Wid <= cur || seen.CompareAndSwap(cur, f.Wid) {
					break
				}
			}
		}
	}
	wg.Add(1)
	go drain(b)
	wg.Add(1)
	go func() {
		defer wg.Done()
		for !stop.Load() {
			l.Acked(seen.Load())
			time.Sleep(50 * time.Microsecond)
		}
	}()

	const senders = 4
	var sent atomic.Int64
	for s := 0; s < senders; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			for i := 0; !stop.Load(); i++ {
				if err := l.Send(TData, []byte(fmt.Sprintf("s%d-%d", s, i))); err != nil {
					t.Errorf("sender %d: %v", s, err)
					return
				}
				sent.Add(1)
			}
		}(s)
	}

	for cycle := 0; cycle < 25; cycle++ {
		// Let the senders race the attached connection for a moment
		// before tearing it down again.
		for target := sent.Load() + 10; sent.Load() < target; {
			time.Sleep(100 * time.Microsecond)
		}
		l.Detach()
		c, d := inprocPair()
		wg.Add(1)
		go drain(d)
		if err := l.Reattach(c, seen.Load()); err != nil {
			t.Fatalf("reattach cycle %d: %v", cycle, err)
		}
	}
	stop.Store(true)
	l.Close()
	wg.Wait()
	if sent.Load() == 0 {
		t.Error("senders made no progress across reattach cycles")
	}
}

func TestInprocTransportConnectivity(t *testing.T) {
	tr := Inproc()
	lis, err := tr.Listen("w0")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tr.Listen("w0"); err == nil {
		t.Error("double listen on one inproc address succeeded")
	}
	done := make(chan error, 1)
	go func() {
		c, err := lis.Accept()
		if err != nil {
			done <- err
			return
		}
		f, err := c.ReadFrame()
		if err != nil {
			done <- err
			return
		}
		done <- c.WriteFrame(f)
	}()
	c, err := tr.Dial(context.Background(), "w0")
	if err != nil {
		t.Fatal(err)
	}
	if err := c.WriteFrame(Frame{Type: TPing, Payload: []byte("echo")}); err != nil {
		t.Fatal(err)
	}
	f, err := c.ReadFrame()
	if err != nil {
		t.Fatal(err)
	}
	if f.Type != TPing || string(f.Payload) != "echo" {
		t.Errorf("echo came back as %s %q", f.Type, f.Payload)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	lis.Close()
	if _, err := tr.Dial(context.Background(), "w0"); err == nil {
		t.Error("dial after listener close succeeded")
	}
}
