package wire

import (
	"context"
	"fmt"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/exec"
	"repro/internal/graph"
	"repro/internal/machine"
	"repro/internal/pits"
	"repro/internal/sched"
	"repro/internal/trace"
)

// distDesign builds a layered design with real routines and printed
// output: layers*width compute tasks plus a printing sink.
func distDesign(t *testing.T, layers, width int) (*graph.Flat, pits.Env) {
	t.Helper()
	g := graph.New("dist-calc")
	g.MustAddStorage("IN", "x")
	for l := 0; l < layers; l++ {
		for i := 0; i < width; i++ {
			id := graph.NodeID(fmt.Sprintf("t%d_%d", l, i))
			n := g.MustAddTask(id, string(id), int64(10+(l*7+i*3)%20))
			v := fmt.Sprintf("v%d_%d", l, i)
			if l == 0 {
				n.Routine = fmt.Sprintf("%s = x + %d", v, i)
				g.MustConnect("IN", id, "x", 1)
				continue
			}
			left := fmt.Sprintf("v%d_%d", l-1, i)
			right := fmt.Sprintf("v%d_%d", l-1, (i+1)%width)
			n.Routine = fmt.Sprintf("%s = %s + %s * 2", v, left, right)
			g.MustConnect(graph.NodeID(fmt.Sprintf("t%d_%d", l-1, i)), id, left, 1)
			g.MustConnect(graph.NodeID(fmt.Sprintf("t%d_%d", l-1, (i+1)%width)), id, right, 1)
		}
	}
	snk := g.MustAddTask("snk", "sink", 20)
	terms := make([]string, width)
	for i := 0; i < width; i++ {
		terms[i] = fmt.Sprintf("v%d_%d", layers-1, i)
		g.MustConnect(graph.NodeID(fmt.Sprintf("t%d_%d", layers-1, i)), "snk", terms[i], 1)
	}
	snk.Routine = "out = " + strings.Join(terms, " + ") + "\nprint \"total \", out"
	g.MustAddStorage("OUT", "out")
	g.MustConnect("snk", "OUT", "out", 1)
	flat, err := g.Flatten()
	if err != nil {
		t.Fatal(err)
	}
	return flat, pits.Env{"x": pits.Num(3)}
}

func distMachine(t *testing.T, spec string) *machine.Machine {
	t.Helper()
	topo, err := machine.ParseTopology(spec)
	if err != nil {
		t.Fatal(err)
	}
	m, err := machine.New(spec, topo, machine.Params{ProcSpeed: 1, TaskStartup: 1, MsgStartup: 5, WordTime: 1})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// startWorkers launches n in-process worker daemons on one inproc
// transport namespace and returns their addresses plus a shutdown
// function that waits for them to exit.
func startWorkers(t *testing.T, tr Transport, n int) ([]string, func()) {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	addrs := make([]string, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		addrs[i] = fmt.Sprintf("worker-%d", i)
		ready := make(chan struct{})
		wg.Add(1)
		go func(addr string) {
			defer wg.Done()
			if err := ServeWorker(ctx, tr, addr, WorkerOptions{Logf: t.Logf}, func(string) { close(ready) }); err != nil {
				t.Errorf("worker %s: %v", addr, err)
			}
		}(addrs[i])
		select {
		case <-ready:
		case <-time.After(5 * time.Second):
			t.Fatalf("worker %d never came up", i)
		}
	}
	return addrs, func() {
		cancel()
		wg.Wait()
	}
}

// TestDistEquivalence: a run distributed over worker daemons produces
// byte-identical outputs and printed lines to the single-process
// runner.
func TestDistEquivalence(t *testing.T) {
	flat, inputs := distDesign(t, 4, 3)
	for _, tc := range []struct {
		mspec   string
		workers int
		mesh    bool
	}{
		{"hypercube:2", 2, false},
		{"hypercube:3", 3, false},
		{"star:4", 2, false},
		{"hypercube:2", 2, true},
		{"hypercube:3", 3, true},
		{"star:4", 2, true},
	} {
		name := fmt.Sprintf("%s-%dw", tc.mspec, tc.workers)
		if tc.mesh {
			name += "-mesh"
		}
		t.Run(name, func(t *testing.T) {
			m := distMachine(t, tc.mspec)
			sc, err := sched.ETF{}.Schedule(flat.Graph, m)
			if err != nil {
				t.Fatal(err)
			}
			single, err := (&exec.Runner{Inputs: inputs}).Run(sc, flat)
			if err != nil {
				t.Fatal(err)
			}

			tr := Inproc()
			addrs, stop := startWorkers(t, tr, tc.workers)
			defer stop()
			co := &Coordinator{
				Transport: tr, Addrs: addrs,
				Runner:         &exec.Runner{Inputs: inputs},
				HeartbeatEvery: 50 * time.Millisecond,
				PeerTimeout:    2 * time.Second,
				Mesh:           tc.mesh,
			}
			dist, err := co.Run(context.Background(), sc, flat)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(dist.Outputs, single.Outputs) {
				t.Errorf("outputs diverged:\n dist   %v\n single %v", dist.Outputs, single.Outputs)
			}
			if !reflect.DeepEqual(dist.Printed, single.Printed) {
				t.Errorf("printed lines diverged:\n dist   %q\n single %q", dist.Printed, single.Printed)
			}

			st, err := dist.Trace.Summarize(m.NumPE())
			if err != nil {
				t.Fatal(err)
			}
			if st.Peers != tc.workers {
				t.Errorf("trace records %d peers, want %d", st.Peers, tc.workers)
			}
			if st.WireBytes == 0 {
				t.Error("trace records no wire bytes")
			}
		})
	}
}

// TestDistCrashRecovery: an injected processor crash on one worker
// drives the global pause/replan/resume path and the run still produces
// the fault-free outputs.
func TestDistCrashRecovery(t *testing.T) {
	for _, mesh := range []bool{false, true} {
		name := "relay"
		if mesh {
			name = "mesh"
		}
		t.Run(name, func(t *testing.T) {
			flat, inputs := distDesign(t, 4, 3)
			m := distMachine(t, "hypercube:2")
			sc, err := sched.ETF{}.Schedule(flat.Graph, m)
			if err != nil {
				t.Fatal(err)
			}
			single, err := (&exec.Runner{Inputs: inputs}).Run(sc, flat)
			if err != nil {
				t.Fatal(err)
			}

			// Crash a processor that actually has work, partway into its slot
			// list, so surviving results and replanned work both exist.
			crashPE, slots := -1, 0
			for pe := 0; pe < m.NumPE(); pe++ {
				n := 0
				for _, sl := range sc.Slots {
					if sl.PE == pe {
						n++
					}
				}
				if n > slots {
					crashPE, slots = pe, n
				}
			}
			if crashPE < 0 || slots < 2 {
				t.Fatal("schedule has no busy processor to crash")
			}
			plan, err := exec.ParseFaults(fmt.Sprintf("crash:%d@1", crashPE))
			if err != nil {
				t.Fatal(err)
			}

			tr := Inproc()
			addrs, stop := startWorkers(t, tr, 2)
			defer stop()
			co := &Coordinator{
				Transport: tr, Addrs: addrs,
				Runner: &exec.Runner{Inputs: inputs, Faults: plan,
					Retry: true, RetryBase: 2 * time.Millisecond, RetryCap: 20 * time.Millisecond},
				HeartbeatEvery: 50 * time.Millisecond,
				PeerTimeout:    2 * time.Second,
				Mesh:           mesh,
			}
			dist, err := co.Run(context.Background(), sc, flat)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(dist.Outputs, single.Outputs) {
				t.Errorf("outputs diverged after crash recovery:\n dist   %v\n single %v", dist.Outputs, single.Outputs)
			}
			if !reflect.DeepEqual(dist.Printed, single.Printed) {
				t.Errorf("printed lines diverged after crash recovery:\n dist   %q\n single %q", dist.Printed, single.Printed)
			}
			st, err := dist.Trace.Summarize(m.NumPE())
			if err != nil {
				t.Fatal(err)
			}
			if st.Faults == 0 {
				t.Error("trace records no injected fault")
			}
			if st.Rescheduled == 0 {
				t.Error("crash recovery recorded no rescheduled tasks")
			}
		})
	}
}

// TestDistWorkerLost: a worker daemon that dies mid-run is declared
// dead by heartbeat loss and the run completes on the survivors with
// the fault-free outputs.
func TestDistWorkerLost(t *testing.T) {
	for _, mesh := range []bool{false, true} {
		name := "relay"
		if mesh {
			name = "mesh"
		}
		t.Run(name, func(t *testing.T) { distWorkerLost(t, mesh) })
	}
}

// distWorkerLost runs the worker-death scenario on either data plane.
// With mesh on, the dying worker also takes its peer links down, so the
// survivors must fall back to coordinator relay for replayed sends.
func distWorkerLost(t *testing.T, mesh bool) {
	flat, inputs := distDesign(t, 6, 3)
	m := distMachine(t, "hypercube:2")
	sc, err := sched.ETF{}.Schedule(flat.Graph, m)
	if err != nil {
		t.Fatal(err)
	}
	single, err := (&exec.Runner{Inputs: inputs}).Run(sc, flat)
	if err != nil {
		t.Fatal(err)
	}

	// Wall-clock runs of this design finish in milliseconds — too fast
	// for a mid-run kill. Hold the run open with a wall-time delay
	// fault on a message that crosses the two worker blocks, and kill
	// the worker hosting the consumer while it waits. The blocks come
	// from the same traffic-aware placement the coordinator uses.
	workerOf := sched.Place(sc, 2)
	victim := -1
	var spec string
	for _, msg := range sc.Msgs {
		if workerOf[msg.FromPE] != workerOf[msg.ToPE] {
			victim = workerOf[msg.ToPE]
			spec = fmt.Sprintf("delay:%s->%s:%s@1500000", msg.From, msg.To, msg.Var)
			break
		}
	}
	if victim < 0 {
		t.Skip("schedule has no cross-worker message to delay")
	}
	plan, err := exec.ParseFaults(spec)
	if err != nil {
		t.Fatal(err)
	}

	tr := Inproc()
	// The survivor runs under the shared shutdown; the victim gets a
	// private context so the test can kill it mid-run.
	addrs, stop := startWorkers(t, tr, 1)
	defer stop()
	victimCtx, killVictim := context.WithCancel(context.Background())
	defer killVictim()
	ready := make(chan struct{})
	victimDone := make(chan struct{})
	go func() {
		defer close(victimDone)
		ServeWorker(victimCtx, tr, "victim", WorkerOptions{Logf: t.Logf}, func(string) { close(ready) })
	}()
	select {
	case <-ready:
	case <-time.After(5 * time.Second):
		t.Fatal("victim worker never came up")
	}
	// Place the victim dameon at the worker index hosting the delayed
	// message's consumer.
	if victim == 0 {
		addrs = []string{"victim", addrs[0]}
	} else {
		addrs = append(addrs, "victim")
	}

	go func() {
		time.Sleep(300 * time.Millisecond)
		killVictim()
	}()

	co := &Coordinator{
		Transport: tr, Addrs: addrs,
		Runner:         &exec.Runner{Inputs: inputs, Faults: plan},
		HeartbeatEvery: 50 * time.Millisecond,
		PeerTimeout:    400 * time.Millisecond,
		Mesh:           mesh,
	}
	dist, err := co.Run(context.Background(), sc, flat)
	<-victimDone
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(dist.Outputs, single.Outputs) {
		t.Errorf("outputs diverged after losing a worker:\n dist   %v\n single %v", dist.Outputs, single.Outputs)
	}
	if !reflect.DeepEqual(dist.Printed, single.Printed) {
		t.Errorf("printed lines diverged after losing a worker:\n dist   %q\n single %q", dist.Printed, single.Printed)
	}
	lost := 0
	for _, e := range dist.Trace.Events {
		if e.Kind == trace.PeerLost {
			lost++
		}
	}
	if lost == 0 {
		t.Error("trace records no lost peer")
	}
}

// TestCoordinatorCalibrate measures wire latency against a live worker
// and yields a usable machine calibration.
func TestCoordinatorCalibrate(t *testing.T) {
	tr := Inproc()
	addrs, stop := startWorkers(t, tr, 1)
	defer stop()
	co := &Coordinator{Transport: tr, Addrs: addrs}
	cal, err := co.Calibrate(context.Background(), 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := cal.Validate(); err != nil {
		t.Fatalf("calibration invalid: %v", err)
	}
	m := distMachine(t, "hypercube:2")
	cm, err := m.Calibrated(cal)
	if err != nil {
		t.Fatal(err)
	}
	if cm.NumPE() != m.NumPE() {
		t.Errorf("calibrated machine changed size: %d != %d", cm.NumPE(), m.NumPE())
	}
}
