package wire

import (
	"bytes"
	"context"
	"fmt"
	"math/rand"
	"os"
	"reflect"
	"sort"
	"strconv"
	"strings"
	"testing"
	"time"

	"repro/internal/exec"
	"repro/internal/machine"
	"repro/internal/sched"
	"repro/internal/trace"
)

// ctlRequest dials the coordinator's control listener, sends one
// request frame, and returns the reply type and any error message.
func ctlRequest(t *testing.T, tr Transport, addr string, typ Type, payload []byte) (Type, string) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	c, err := tr.Dial(ctx, addr)
	if err != nil {
		return 0, err.Error()
	}
	defer c.Close()
	if err := c.WriteFrame(Frame{Type: typ, Payload: payload}); err != nil {
		return 0, err.Error()
	}
	f, err := c.ReadFrame()
	if err != nil {
		return 0, err.Error()
	}
	if f.Type == TError {
		note, _ := decJSON[ErrorNote](f.Payload, "error")
		return f.Type, note.Msg
	}
	return f.Type, ""
}

// ctlRetry repeats a control request until it is welcomed, retrying
// rejections that name a transient condition, and reports the outcome.
func ctlRetry(t *testing.T, tr Transport, addr string, typ Type, payload []byte, deadline time.Duration) error {
	t.Helper()
	until := time.Now().Add(deadline)
	for {
		got, msg := ctlRequest(t, tr, addr, typ, payload)
		if got == TWelcome {
			return nil
		}
		retryable := strings.Contains(msg, "retry") || strings.Contains(msg, "dial") ||
			strings.Contains(msg, "refused") || strings.Contains(msg, "no listener") ||
			strings.Contains(msg, "capacity")
		if !retryable || time.Now().After(until) {
			return fmt.Errorf("%s request rejected: %s", typ, msg)
		}
		time.Sleep(25 * time.Millisecond)
	}
}

// startNamedWorker launches one worker daemon at addr and returns a
// shutdown function that waits for it to exit. Safe off the test
// goroutine (join sequences run from timers).
func startNamedWorker(t *testing.T, tr Transport, addr string) func() {
	ctx, cancel := context.WithCancel(context.Background())
	ready := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		if err := ServeWorker(ctx, tr, addr, WorkerOptions{Logf: t.Logf}, func(string) { close(ready) }); err != nil {
			t.Errorf("worker %s: %v", addr, err)
		}
	}()
	select {
	case <-ready:
	case <-time.After(5 * time.Second):
		t.Errorf("worker %s never came up", addr)
	}
	return func() {
		cancel()
		<-done
	}
}

// holdOpen builds a fault plan that holds the run open: a wall-clock
// delay on a message crossing the traffic-aware placement, with a
// count high enough that every post-barrier re-send re-arms the hold
// (otherwise the first pause/resume releases it and the run finishes
// before the churn sequence lands). Workers in avoid are excluded from
// both endpoints, so killing them does not release the hold either.
// Returns the plan and the worker hosting the delayed consumer.
func holdOpen(t *testing.T, sc *sched.Schedule, workers int, usec int64, avoid int) (*exec.FaultPlan, int) {
	t.Helper()
	workerOf := sched.Place(sc, workers)
	for _, msg := range sc.Msgs {
		fw, tw := workerOf[msg.FromPE], workerOf[msg.ToPE]
		if fw != tw && fw != avoid && tw != avoid {
			return &exec.FaultPlan{Faults: []exec.Fault{{Kind: exec.FaultDelay,
				From: msg.From, To: msg.To, Var: msg.Var,
				Delay: machine.Time(usec), Count: 99}}}, tw
		}
	}
	t.Skip("schedule has no suitable cross-worker message to delay")
	return nil, -1
}

// holdChain builds n wall-clock delay faults on cross-worker edges at
// increasing depths of the layered design, each downstream of the
// previous hold's consumer. A pause/resume barrier re-sends held
// messages immediately (resends bypass fault injection), so a single
// hold dies at the first barrier; a chain arms its next hold only
// after the previous one releases, keeping the run open across a whole
// churn sequence. Workers in avoid are excluded from the endpoints.
func holdChain(t *testing.T, sc *sched.Schedule, workers, n int, usec int64, avoid int) *exec.FaultPlan {
	t.Helper()
	workerOf := sched.Place(sc, workers)
	parse := func(id string) (layer, idx int, ok bool) {
		_, err := fmt.Sscanf(id, "t%d_%d", &layer, &idx)
		return layer, idx, err == nil
	}
	type cand struct {
		msg            sched.Msg
		fl, fi, tl, ti int
		sink           bool
	}
	var cands []cand
	width := 0
	for _, m := range sc.Msgs {
		fw, tw := workerOf[m.FromPE], workerOf[m.ToPE]
		if fw == tw || fw == avoid || tw == avoid {
			continue
		}
		fl, fi, ok := parse(string(m.From))
		if !ok {
			continue
		}
		if fi+1 > width {
			width = fi + 1
		}
		c := cand{msg: m, fl: fl, fi: fi}
		if tl, ti, ok := parse(string(m.To)); ok {
			c.tl, c.ti = tl, ti
		} else if string(m.To) == "snk" {
			c.sink = true
		} else {
			continue
		}
		cands = append(cands, c)
	}
	sort.Slice(cands, func(i, j int) bool {
		a, b := cands[i], cands[j]
		if a.fl != b.fl {
			return a.fl < b.fl
		}
		if a.msg.From != b.msg.From {
			return a.msg.From < b.msg.From
		}
		return a.msg.To < b.msg.To
	})
	plan := &exec.FaultPlan{}
	// prev is the consumer of the last accepted hold; a candidate joins
	// the chain only if its producer is (transitively) downstream: the
	// dependency cone of t(l)_c at layer l' spans indices c..c+(l'-l).
	prevSet, prevSink := false, false
	var cl, ci int
	for _, c := range cands {
		if len(plan.Faults) == n {
			break
		}
		if prevSink {
			break // nothing is downstream of the sink
		}
		if prevSet {
			if c.fl < cl || (c.fi-ci)%width < 0 || (c.fi-ci+width)%width > c.fl-cl {
				continue
			}
		}
		plan.Faults = append(plan.Faults, exec.Fault{Kind: exec.FaultDelay,
			From: c.msg.From, To: c.msg.To, Var: c.msg.Var, Delay: machine.Time(usec)})
		prevSet, prevSink, cl, ci = true, c.sink, c.tl, c.ti
	}
	if len(plan.Faults) < n {
		t.Skipf("schedule yields only %d of %d chained cross-worker holds", len(plan.Faults), n)
	}
	return plan
}

// TestDistDrain: `drain` evacuates a worker mid-run with zero lost
// state. The run completes with fault-free outputs, the departure is a
// planned WorkerDrained (not a crash recovery), and nothing waits out
// the peer timeout (set to 60s to prove it).
func TestDistDrain(t *testing.T) {
	for _, mesh := range []bool{false, true} {
		name := "relay"
		if mesh {
			name = "mesh"
		}
		t.Run(name, func(t *testing.T) {
			flat, inputs := distDesign(t, 6, 3)
			m := distMachine(t, "hypercube:2")
			sc, err := sched.ETF{}.Schedule(flat.Graph, m)
			if err != nil {
				t.Fatal(err)
			}
			single, err := (&exec.Runner{Inputs: inputs}).Run(sc, flat)
			if err != nil {
				t.Fatal(err)
			}
			plan, target := holdOpen(t, sc, 2, 1200000, -1)

			tr := Inproc()
			addrs, stop := startWorkers(t, tr, 2)
			defer stop()
			co := &Coordinator{
				Transport: tr, Addrs: addrs, Control: "ctl",
				Runner:         &exec.Runner{Inputs: inputs, Faults: plan, WatchdogMin: 10 * time.Second},
				HeartbeatEvery: 50 * time.Millisecond,
				// A long silence budget proves the drain never leans on
				// heartbeat-loss detection or peer-timeout expiry.
				PeerTimeout: 60 * time.Second,
				Mesh:        mesh,
				Logf:        t.Logf,
			}
			drained := make(chan error, 1)
			go func() {
				time.Sleep(300 * time.Millisecond)
				drained <- ctlRetry(t, tr, "ctl", TDrain, encJSON(DrainNote{Worker: target}), 5*time.Second)
			}()
			dist, err := co.Run(context.Background(), sc, flat)
			if err != nil {
				t.Fatal(err)
			}
			if err := <-drained; err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(dist.Outputs, single.Outputs) {
				t.Errorf("outputs diverged after drain:\n dist   %v\n single %v", dist.Outputs, single.Outputs)
			}
			if !reflect.DeepEqual(dist.Printed, single.Printed) {
				t.Errorf("printed lines diverged after drain:\n dist   %q\n single %q", dist.Printed, single.Printed)
			}
			var drainedEv, crashResched, lost int
			for _, e := range dist.Trace.Events {
				switch {
				case e.Kind == trace.WorkerDrained:
					drainedEv++
				case e.Kind == trace.TaskRescheduled && e.Note == "recovery":
					crashResched++
				case e.Kind == trace.PeerLost:
					lost++
				}
			}
			if drainedEv == 0 {
				t.Error("trace records no WorkerDrained event")
			}
			if crashResched != 0 {
				t.Errorf("drain produced %d crash-recovery reschedules; want 0 (all should be planned)", crashResched)
			}
			if lost != 0 {
				t.Errorf("drain lost %d peers; a graceful departure must not look like a crash", lost)
			}
		})
	}
}

// TestDistJoinExpand: a worker joining mid-run revives dead processors
// through an expand replan and the run completes with fault-free
// outputs on the expanded fleet.
func TestDistJoinExpand(t *testing.T) {
	for _, mesh := range []bool{false, true} {
		name := "relay"
		if mesh {
			name = "mesh"
		}
		t.Run(name, func(t *testing.T) {
			flat, inputs := distDesign(t, 6, 3)
			m := distMachine(t, "hypercube:3")
			sc, err := sched.ETF{}.Schedule(flat.Graph, m)
			if err != nil {
				t.Fatal(err)
			}
			single, err := (&exec.Runner{Inputs: inputs}).Run(sc, flat)
			if err != nil {
				t.Fatal(err)
			}
			// Three workers; the delayed edges run between the two
			// survivors so the victim's death cannot release the holds.
			plan := holdChain(t, sc, 3, 2, 1000000, 2)

			tr := Inproc()
			addrs, stop := startWorkers(t, tr, 2)
			defer stop()
			// The third worker dies early; its processors revive on the
			// joiner announced after the recovery settles.
			victimCtx, killVictim := context.WithCancel(context.Background())
			defer killVictim()
			ready := make(chan struct{})
			go ServeWorker(victimCtx, tr, "victim", WorkerOptions{Logf: t.Logf}, func(string) { close(ready) })
			<-ready
			co := &Coordinator{
				Transport: tr, Addrs: []string{addrs[0], addrs[1], "victim"}, Control: "ctl",
				Runner:         &exec.Runner{Inputs: inputs, Faults: plan, WatchdogMin: 10 * time.Second},
				HeartbeatEvery: 50 * time.Millisecond,
				PeerTimeout:    400 * time.Millisecond,
				Mesh:           mesh,
				Logf:           t.Logf,
			}
			joined := make(chan error, 1)
			go func() {
				time.Sleep(200 * time.Millisecond)
				killVictim()
				// Announce right away: the retry loop rides out "no free
				// capacity" until heartbeat loss frees the victim's
				// processors, then lands during the next hold.
				time.Sleep(50 * time.Millisecond)
				jstop := startNamedWorker(t, tr, "joiner")
				t.Cleanup(jstop)
				joined <- ctlRetry(t, tr, "ctl", TJoin, encJSON(JoinNote{Addr: "joiner"}), 5*time.Second)
			}()
			dist, err := co.Run(context.Background(), sc, flat)
			if err != nil {
				t.Fatal(err)
			}
			if err := <-joined; err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(dist.Outputs, single.Outputs) {
				t.Errorf("outputs diverged after join:\n dist   %v\n single %v", dist.Outputs, single.Outputs)
			}
			if !reflect.DeepEqual(dist.Printed, single.Printed) {
				t.Errorf("printed lines diverged after join:\n dist   %q\n single %q", dist.Printed, single.Printed)
			}
			joins := 0
			for _, e := range dist.Trace.Events {
				if e.Kind == trace.PeerConnected && e.Note == "join" {
					joins++
				}
			}
			if joins == 0 {
				t.Error("trace records no joined peer")
			}
		})
	}
}

// TestDistElasticChurn: one SIGKILL-style worker death, one mid-run
// join, and one graceful drain in a single run, which still produces
// outputs byte-identical to the undisturbed single-process run.
func TestDistElasticChurn(t *testing.T) {
	// Eight layers: the deeper stencil is what gives holdChain three
	// chained cross-worker edges on this machine (six layers yield two).
	flat, inputs := distDesign(t, 8, 3)
	m := distMachine(t, "hypercube:3")
	sc, err := sched.ETF{}.Schedule(flat.Graph, m)
	if err != nil {
		t.Fatal(err)
	}
	single, err := (&exec.Runner{Inputs: inputs}).Run(sc, flat)
	if err != nil {
		t.Fatal(err)
	}
	plan := holdChain(t, sc, 3, 3, 1000000, 2)

	tr := Inproc()
	addrs, stop := startWorkers(t, tr, 2)
	defer stop()
	victimCtx, killVictim := context.WithCancel(context.Background())
	defer killVictim()
	ready := make(chan struct{})
	go ServeWorker(victimCtx, tr, "victim", WorkerOptions{Logf: t.Logf}, func(string) { close(ready) })
	<-ready
	co := &Coordinator{
		Transport: tr, Addrs: []string{addrs[0], addrs[1], "victim"}, Control: "ctl",
		Runner:         &exec.Runner{Inputs: inputs, Faults: plan, WatchdogMin: 10 * time.Second},
		HeartbeatEvery: 50 * time.Millisecond,
		PeerTimeout:    400 * time.Millisecond,
		Mesh:           true,
		Logf:           t.Logf,
	}
	churn := make(chan error, 1)
	go func() {
		// Kill one worker, join a replacement, then drain one of the
		// original survivors — each op driven off the previous one's
		// completion, each landing inside the next chained hold.
		time.Sleep(200 * time.Millisecond)
		killVictim()
		time.Sleep(50 * time.Millisecond)
		jstop := startNamedWorker(t, tr, "joiner")
		t.Cleanup(jstop)
		if err := ctlRetry(t, tr, "ctl", TJoin, encJSON(JoinNote{Addr: "joiner"}), 5*time.Second); err != nil {
			churn <- fmt.Errorf("join: %w", err)
			return
		}
		time.Sleep(100 * time.Millisecond)
		churn <- ctlRetry(t, tr, "ctl", TDrain, encJSON(DrainNote{Worker: 0}), 5*time.Second)
	}()
	dist, err := co.Run(context.Background(), sc, flat)
	if err != nil {
		t.Fatal(err)
	}
	if err := <-churn; err != nil {
		t.Fatal(err)
	}
	distBytes, err := EncodeEnv(dist.Outputs)
	if err != nil {
		t.Fatal(err)
	}
	singleBytes, err := EncodeEnv(single.Outputs)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(distBytes, singleBytes) {
		t.Errorf("outputs not byte-identical after churn:\n dist   %v\n single %v", dist.Outputs, single.Outputs)
	}
	if !reflect.DeepEqual(dist.Printed, single.Printed) {
		t.Errorf("printed lines diverged after churn:\n dist   %q\n single %q", dist.Printed, single.Printed)
	}
	st, err := dist.Trace.Summarize(m.NumPE())
	if err != nil {
		t.Fatal(err)
	}
	if st.Drained == 0 {
		t.Error("churn run records no drained worker")
	}
}

// TestChurnSoak repeats a seeded random join/drain/kill sequence
// against full runs and asserts fault-free outputs every round. The
// round count defaults low for the regular suite; `make churn` raises
// it via CHURN_ROUNDS.
func TestChurnSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test; skipped in -short")
	}
	rounds := 3
	if s := os.Getenv("CHURN_ROUNDS"); s != "" {
		n, err := strconv.Atoi(s)
		if err != nil {
			t.Fatalf("bad CHURN_ROUNDS %q: %v", s, err)
		}
		rounds = n
	}
	seed := int64(1)
	if s := os.Getenv("CHURN_SEED"); s != "" {
		n, err := strconv.ParseInt(s, 10, 64)
		if err != nil {
			t.Fatalf("bad CHURN_SEED %q: %v", s, err)
		}
		seed = n
	}

	flat, inputs := distDesign(t, 6, 3)
	m := distMachine(t, "hypercube:2")
	sc, err := sched.ETF{}.Schedule(flat.Graph, m)
	if err != nil {
		t.Fatal(err)
	}
	single, err := (&exec.Runner{Inputs: inputs}).Run(sc, flat)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(seed))
	for round := 0; round < rounds; round++ {
		holdUsec := int64(900000 + rng.Intn(600000))
		firstAt := time.Duration(150+rng.Intn(200)) * time.Millisecond
		op := rng.Intn(3)          // 0: drain, 1: kill, 2: kill then join
		drainTarget := rng.Intn(2) // drains pick one of the two survivors
		mesh := rng.Intn(2) == 0
		t.Run(fmt.Sprintf("round%d-op%d", round, op), func(t *testing.T) {
			plan := holdChain(t, sc, 3, 3, holdUsec, 2)
			tr := Inproc()
			addrs, stop := startWorkers(t, tr, 2)
			defer stop()
			victimCtx, killVictim := context.WithCancel(context.Background())
			defer killVictim()
			ready := make(chan struct{})
			done := make(chan struct{})
			go func() {
				defer close(done)
				ServeWorker(victimCtx, tr, "victim", WorkerOptions{Logf: t.Logf}, func(string) { close(ready) })
			}()
			<-ready
			co := &Coordinator{
				Transport: tr, Addrs: []string{addrs[0], addrs[1], "victim"}, Control: "ctl",
				Runner:         &exec.Runner{Inputs: inputs, Faults: plan, WatchdogMin: 10 * time.Second},
				HeartbeatEvery: 50 * time.Millisecond,
				PeerTimeout:    400 * time.Millisecond,
				Mesh:           mesh,
				Logf:           t.Logf,
			}
			churn := make(chan error, 1)
			jstops := make(chan func(), 1)
			go func() {
				time.Sleep(firstAt)
				switch op {
				case 0:
					churn <- ctlRetry(t, tr, "ctl", TDrain, encJSON(DrainNote{Worker: drainTarget}), 5*time.Second)
				case 1:
					killVictim()
					churn <- nil
				default:
					killVictim()
					time.Sleep(50 * time.Millisecond)
					jstops <- startNamedWorker(t, tr, "joiner")
					churn <- ctlRetry(t, tr, "ctl", TJoin, encJSON(JoinNote{Addr: "joiner"}), 5*time.Second)
				}
			}()
			dist, err := co.Run(context.Background(), sc, flat)
			killVictim()
			<-done
			cerr := <-churn
			// The joined worker outlives the run; stop its daemon only
			// after the result is in hand.
			select {
			case jstop := <-jstops:
				jstop()
			default:
			}
			if err != nil {
				t.Fatal(err)
			}
			if cerr != nil {
				t.Fatal(cerr)
			}
			if !reflect.DeepEqual(dist.Outputs, single.Outputs) {
				t.Errorf("outputs diverged:\n dist   %v\n single %v", dist.Outputs, single.Outputs)
			}
			if !reflect.DeepEqual(dist.Printed, single.Printed) {
				t.Errorf("printed lines diverged:\n dist   %q\n single %q", dist.Printed, single.Printed)
			}
		})
	}
}

// TestCoordJoinWhileFinishing: a worker announcing itself while the
// run is finishing must be rejected explicitly — never silently
// admitted into the processor map with nothing left to start it with.
func TestCoordJoinWhileFinishing(t *testing.T) {
	w0, w1, errCh, resCh, tr := steerToFinishing(t)
	got, msg := ctlRequest(t, tr, "ctl", TJoin, encJSON(JoinNote{Addr: "latecomer"}))
	if got != TError || !strings.Contains(msg, "finishing") {
		t.Fatalf("join while finishing: got %s %q, want an explicit finishing rejection", got, msg)
	}
	got, msg = ctlRequest(t, tr, "ctl", TDrain, encJSON(DrainNote{Worker: 0}))
	if got != TError || !strings.Contains(msg, "finishing") {
		t.Fatalf("drain while finishing: got %s %q, want an explicit finishing rejection", got, msg)
	}
	empty, err := EncodeEnv(nil)
	if err != nil {
		t.Fatal(err)
	}
	res := encJSON(ResultNote{Outputs: empty})
	if err := w0.l.Send(TResult, res); err != nil {
		t.Fatal(err)
	}
	if err := w1.l.Send(TResult, res); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-errCh:
		if err != nil {
			t.Fatalf("run failed after a finishing-state join attempt: %v", err)
		}
		if r := <-resCh; r == nil {
			t.Fatal("run returned no result")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("coordinator hung after a finishing-state join attempt")
	}
}

// TestDrainRejectsBelowMinimum: MinWorkers bounds graceful shrink.
func TestDrainRejectsBelowMinimum(t *testing.T) {
	flat, inputs := distDesign(t, 6, 3)
	m := distMachine(t, "hypercube:2")
	sc, err := sched.ETF{}.Schedule(flat.Graph, m)
	if err != nil {
		t.Fatal(err)
	}
	plan, _ := holdOpen(t, sc, 2, 700000, -1)
	tr := Inproc()
	addrs, stop := startWorkers(t, tr, 2)
	defer stop()
	co := &Coordinator{
		Transport: tr, Addrs: addrs, Control: "ctl", MinWorkers: 2,
		Runner:         &exec.Runner{Inputs: inputs, Faults: plan, WatchdogMin: 10 * time.Second},
		HeartbeatEvery: 50 * time.Millisecond,
		PeerTimeout:    60 * time.Second,
		Logf:           t.Logf,
	}
	checked := make(chan error, 1)
	go func() {
		time.Sleep(200 * time.Millisecond)
		got, msg := ctlRequest(t, tr, "ctl", TDrain, encJSON(DrainNote{Worker: 1}))
		if got != TError || !strings.Contains(msg, "minimum") {
			checked <- fmt.Errorf("drain below minimum: got %s %q, want a minimum-workers rejection", got, msg)
			return
		}
		checked <- nil
	}()
	if _, err := co.Run(context.Background(), sc, flat); err != nil {
		t.Fatal(err)
	}
	if err := <-checked; err != nil {
		t.Fatal(err)
	}
}
