package wire

import (
	"errors"
	"fmt"
	"sync"
)

// Link is the reliable layer over one peer relationship. Frames that
// must survive a reconnect (Data, Idle, Crash, Parked, Resume, and the
// rest of the run protocol) are sequenced with wids; the receiver acks
// its cumulative watermark, the sender keeps unacked frames in an
// outbox, and after a reconnect the handshake exchanges watermarks and
// the outbox replays everything the peer missed. Unsequenced frames
// (handshake, acks, heartbeats, echoes) belong to the connection, not
// the relationship, and are never replayed.
//
// The same wid discipline the in-process reliable transport applies to
// messages (sequence numbers, cumulative dedup) applied to frames.
type Link struct {
	mu     sync.Mutex
	conn   Conn
	next   uint64     // last wid assigned
	outbox []outFrame // sent but unacked, ascending wid
	rcvd   uint64     // highest wid received (cumulative: TCP keeps order)
	max    int        // outbox cap; 0 means DefaultMaxOutbox
	failed error      // sticky: set when the outbox cap is exceeded
	dirty  bool       // buffered frames await a Flush

	// Accumulated byte counters of connections that came and went.
	pastIn, pastOut int64
}

// outFrame is an outbox entry. pooled marks payloads owned by the
// frame pool: they are recycled once the peer acks them (or the link
// closes). Payloads shared across several links — a broadcast control
// frame encoded once — must not carry the flag, or the same array
// would enter the pool once per link.
type outFrame struct {
	f      Frame
	pooled bool
}

// DefaultMaxOutbox is the per-link unacked-frame cap applied when
// MaxOutbox is not set. A mesh multiplies links, so an unreachable or
// never-acking peer must fail its link cleanly instead of queueing
// frames without bound.
const DefaultMaxOutbox = 1 << 15

// ErrLinkDetached reports an unsequenced send on a detached link. It
// marks the frame as merely dropped — the connection is mid-reconnect —
// as opposed to a write failure on a live connection.
var ErrLinkDetached = errors.New("wire: link detached")

// ErrOutboxOverflow is wrapped by the sticky error a link fails with
// when its unacked outbox exceeds the cap.
var ErrOutboxOverflow = errors.New("wire: link outbox overflow")

// NewLink wraps an established connection.
func NewLink(c Conn) *Link { return &Link{conn: c} }

// SetMaxOutbox caps the unacked outbox (0 restores the default).
func (l *Link) SetMaxOutbox(n int) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.max = n
}

// Send assigns the next wid, records the frame in the outbox and
// writes it immediately (flushing anything still coalescing first).
func (l *Link) Send(t Type, payload []byte) error {
	return l.sendSeq(t, payload, false, false)
}

// SendData assigns the next wid, records the frame in the outbox and
// queues it in the connection's write buffer, to share a flush with
// the rest of the burst. pooled marks a payload owned by the frame
// pool, recycled when the peer acks it.
func (l *Link) SendData(t Type, payload []byte, pooled bool) error {
	return l.sendSeq(t, payload, pooled, true)
}

func (l *Link) sendSeq(t Type, payload []byte, pooled, buffered bool) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.failed != nil {
		return l.failed
	}
	max := l.max
	if max <= 0 {
		max = DefaultMaxOutbox
	}
	if len(l.outbox) >= max {
		l.failed = fmt.Errorf("%w: %d unacked frames (peer detached or not acking)", ErrOutboxOverflow, len(l.outbox))
		return l.failed
	}
	l.next++
	f := Frame{Type: t, Wid: l.next, Payload: payload}
	l.outbox = append(l.outbox, outFrame{f: f, pooled: pooled})
	if l.conn == nil {
		// Detached mid-reconnect: the frame waits in the outbox and
		// replays on reattach.
		return nil
	}
	if buffered {
		l.dirty = true
		return l.conn.WriteFrameBuffered(f)
	}
	l.dirty = false
	return l.conn.WriteFrame(f)
}

// Flush drives buffered frames onto the wire. A no-op while detached
// or when nothing is buffered.
func (l *Link) Flush() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if !l.dirty || l.conn == nil {
		return nil
	}
	l.dirty = false
	return l.conn.Flush()
}

// SendRaw writes an unsequenced frame immediately. While detached it
// reports ErrLinkDetached (unsequenced frames are not replayed).
func (l *Link) SendRaw(f Frame) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.conn == nil {
		return ErrLinkDetached
	}
	l.dirty = false
	return l.conn.WriteFrame(f)
}

// SendRawBuffered queues an unsequenced frame behind any coalescing
// data frames; the next Flush carries all of them.
func (l *Link) SendRawBuffered(f Frame) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.conn == nil {
		return ErrLinkDetached
	}
	l.dirty = true
	return l.conn.WriteFrameBuffered(f)
}

// Accept runs the receive-side bookkeeping for a frame: an unsequenced
// frame always passes; a sequenced frame already seen (a replay
// overlap) is absorbed. The caller should ack l.Rcvd() after handling
// sequenced frames.
func (l *Link) Accept(f Frame) bool {
	if f.Wid == 0 {
		return true
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if f.Wid <= l.rcvd {
		return false
	}
	l.rcvd = f.Wid
	return true
}

// Rcvd returns the cumulative received watermark (the ack payload).
func (l *Link) Rcvd() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.rcvd
}

// Acked prunes the outbox up to the peer's cumulative watermark.
func (l *Link) Acked(wid uint64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.pruneLocked(wid)
}

func (l *Link) pruneLocked(wid uint64) {
	i := 0
	for i < len(l.outbox) && l.outbox[i].f.Wid <= wid {
		if l.outbox[i].pooled {
			putBuf(l.outbox[i].f.Payload)
			l.outbox[i] = outFrame{}
		}
		i++
	}
	l.outbox = l.outbox[i:]
}

// Detach drops the current connection (after an error), accumulating
// its byte counters. Sequenced sends keep queueing while detached.
func (l *Link) Detach() {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.detachLocked()
}

// DetachIf detaches only if c is still the current connection: a
// reader noticing an error on an old connection must not tear down
// the replacement that already took its place.
func (l *Link) DetachIf(c Conn) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.conn == c {
		l.detachLocked()
	}
}

func (l *Link) detachLocked() {
	if l.conn != nil {
		in, out := l.conn.Stats()
		l.pastIn += in
		l.pastOut += out
		l.conn.Close()
		l.conn = nil
		l.dirty = false
	}
}

// Reattach installs a fresh connection after a reconnect handshake:
// frames the peer confirmed (wid <= peerRcvd) are pruned, the rest of
// the outbox replays in order (coalesced into one flush).
func (l *Link) Reattach(c Conn, peerRcvd uint64) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.failed != nil {
		return l.failed
	}
	l.detachLocked()
	l.conn = c
	l.pruneLocked(peerRcvd)
	for _, of := range l.outbox {
		if err := c.WriteFrameBuffered(of.f); err != nil {
			return err
		}
	}
	return c.Flush()
}

// Conn returns the current connection (nil while detached).
func (l *Link) Conn() Conn {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.conn
}

// Stats returns total bytes in/out across every connection this link
// has used.
func (l *Link) Stats() (in, out int64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	in, out = l.pastIn, l.pastOut
	if l.conn != nil {
		ci, co := l.conn.Stats()
		in += ci
		out += co
	}
	return in, out
}

// Close detaches and drops the outbox, returning pooled payloads.
// Safe on a nil link (a peer that never finished its first dial).
func (l *Link) Close() {
	if l == nil {
		return
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	l.detachLocked()
	for i := range l.outbox {
		if l.outbox[i].pooled {
			putBuf(l.outbox[i].f.Payload)
		}
	}
	l.outbox = nil
}

// ---------------------------------------------------------------------
// Frame payload pool. Encode-side only: a sender encodes a message
// into a pooled buffer, hands it to SendData(..., pooled=true), and
// the link returns it to the pool once the peer's cumulative ack
// proves it will never be replayed. Transports copy at write time
// (bufio for TCP, an explicit copy for inproc), so the buffer's only
// other reference dies with the WriteFrame call.

var payloadPool sync.Pool

// poolBufCap bounds what re-enters the pool; pathological outliers
// (a giant vector value) are left for the garbage collector.
const poolBufCap = 64 << 10

func getBuf() []byte {
	if v := payloadPool.Get(); v != nil {
		return v.([]byte)[:0]
	}
	return make([]byte, 0, 512)
}

func putBuf(b []byte) {
	if cap(b) == 0 || cap(b) > poolBufCap {
		return
	}
	payloadPool.Put(b[:0]) //nolint:staticcheck // slice header boxing is far cheaper than the encode it saves
}
