package wire

import (
	"fmt"
	"sync"
)

// Link is the reliable layer over one peer relationship. Frames that
// must survive a reconnect (Data, Idle, Crash, Parked, Resume, and the
// rest of the run protocol) are sequenced with wids; the receiver acks
// its cumulative watermark, the sender keeps unacked frames in an
// outbox, and after a reconnect the handshake exchanges watermarks and
// the outbox replays everything the peer missed. Unsequenced frames
// (handshake, acks, heartbeats, echoes) belong to the connection, not
// the relationship, and are never replayed.
//
// The same wid discipline the in-process reliable transport applies to
// messages (sequence numbers, cumulative dedup) applied to frames.
type Link struct {
	mu     sync.Mutex
	conn   Conn
	next   uint64  // last wid assigned
	outbox []Frame // sent but unacked, ascending wid
	rcvd   uint64  // highest wid received (cumulative: TCP keeps order)

	// Accumulated byte counters of connections that came and went.
	pastIn, pastOut int64
}

// NewLink wraps an established connection.
func NewLink(c Conn) *Link { return &Link{conn: c} }

// Send assigns the next wid, records the frame in the outbox and
// writes it.
func (l *Link) Send(t Type, payload []byte) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.next++
	f := Frame{Type: t, Wid: l.next, Payload: payload}
	l.outbox = append(l.outbox, f)
	if l.conn == nil {
		// Detached mid-reconnect: the frame waits in the outbox and
		// replays on reattach.
		return nil
	}
	return l.conn.WriteFrame(f)
}

// SendRaw writes an unsequenced frame. Errors while detached are
// reported (unsequenced frames are not replayed).
func (l *Link) SendRaw(f Frame) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.conn == nil {
		return fmt.Errorf("wire: link detached")
	}
	return l.conn.WriteFrame(f)
}

// Accept runs the receive-side bookkeeping for a frame: an unsequenced
// frame always passes; a sequenced frame already seen (a replay
// overlap) is absorbed. The caller should ack l.Rcvd() after handling
// sequenced frames.
func (l *Link) Accept(f Frame) bool {
	if f.Wid == 0 {
		return true
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if f.Wid <= l.rcvd {
		return false
	}
	l.rcvd = f.Wid
	return true
}

// Rcvd returns the cumulative received watermark (the ack payload).
func (l *Link) Rcvd() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.rcvd
}

// Acked prunes the outbox up to the peer's cumulative watermark.
func (l *Link) Acked(wid uint64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.pruneLocked(wid)
}

func (l *Link) pruneLocked(wid uint64) {
	i := 0
	for i < len(l.outbox) && l.outbox[i].Wid <= wid {
		i++
	}
	l.outbox = l.outbox[i:]
}

// Detach drops the current connection (after an error), accumulating
// its byte counters. Sequenced sends keep queueing while detached.
func (l *Link) Detach() {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.conn != nil {
		in, out := l.conn.Stats()
		l.pastIn += in
		l.pastOut += out
		l.conn.Close()
		l.conn = nil
	}
}

// Reattach installs a fresh connection after a reconnect handshake:
// frames the peer confirmed (wid <= peerRcvd) are pruned, the rest of
// the outbox replays in order.
func (l *Link) Reattach(c Conn, peerRcvd uint64) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.conn != nil {
		in, out := l.conn.Stats()
		l.pastIn += in
		l.pastOut += out
		l.conn.Close()
	}
	l.conn = c
	l.pruneLocked(peerRcvd)
	for _, f := range l.outbox {
		if err := c.WriteFrame(f); err != nil {
			return err
		}
	}
	return nil
}

// Conn returns the current connection (nil while detached).
func (l *Link) Conn() Conn {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.conn
}

// Stats returns total bytes in/out across every connection this link
// has used.
func (l *Link) Stats() (in, out int64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	in, out = l.pastIn, l.pastOut
	if l.conn != nil {
		ci, co := l.conn.Stats()
		in += ci
		out += co
	}
	return in, out
}

// Close detaches and drops the outbox. Safe on a nil link (a peer
// that never finished its first dial).
func (l *Link) Close() {
	if l == nil {
		return
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.conn != nil {
		in, out := l.conn.Stats()
		l.pastIn += in
		l.pastOut += out
		l.conn.Close()
		l.conn = nil
	}
	l.outbox = nil
}
