package wire

import (
	"context"
	"fmt"
	"time"
)

// controlRequest opens a fresh connection to a coordinator's control
// listener, sends one request frame, and waits for the verdict: a
// Welcome (accepted) or an Error naming the reason.
func controlRequest(ctx context.Context, tr Transport, control string, f Frame) error {
	c, err := tr.Dial(ctx, control)
	if err != nil {
		return fmt.Errorf("wire: dialing control %s: %w", control, err)
	}
	defer c.Close()
	done := make(chan struct{})
	defer close(done)
	go func() {
		select {
		case <-ctx.Done():
			c.Close()
		case <-done:
		}
	}()
	if err := c.WriteFrame(f); err != nil {
		return fmt.Errorf("wire: control request: %w", err)
	}
	reply, err := c.ReadFrame()
	if err != nil {
		return fmt.Errorf("wire: control reply: %w", err)
	}
	switch reply.Type {
	case TWelcome:
		return nil
	case TError:
		note, _ := decJSON[ErrorNote](reply.Payload, "error")
		return fmt.Errorf("%s", note.Msg)
	default:
		return fmt.Errorf("wire: unexpected %s reply on the control connection", reply.Type)
	}
}

// Drain asks the coordinator whose control listener is at control to
// gracefully evacuate a worker: by index when worker >= 0, else by its
// listen address. It returns nil once the worker has departed with all
// its state handed over, or the coordinator's rejection reason.
func Drain(ctx context.Context, tr Transport, control string, worker int, addr string) error {
	return controlRequest(ctx, tr, control,
		Frame{Type: TDrain, Payload: encJSON(DrainNote{Worker: worker, Addr: addr})})
}

// Announce offers the worker daemon listening at addr to the run whose
// control listener is at control. It returns nil once the worker is
// part of the run (or already was), or the rejection reason.
func Announce(ctx context.Context, tr Transport, control, addr string) error {
	return controlRequest(ctx, tr, control,
		Frame{Type: TJoin, Payload: encJSON(JoinNote{Addr: addr})})
}

// AnnounceLoop re-announces addr to control until ctx ends. Rejections
// are expected steady-state noise — no free capacity, a recovery in
// flight, no coordinator up yet — so the loop logs only transitions.
// Announcing while already serving the run is an idempotent no-op, and
// a drained worker's next announce is how it re-enters the fleet.
func AnnounceLoop(ctx context.Context, tr Transport, control, addr string, every time.Duration, logf func(string, ...any)) {
	if every <= 0 {
		every = 2 * time.Second
	}
	if logf == nil {
		logf = func(string, ...any) {}
	}
	lastErr := ""
	for {
		actx, cancel := context.WithTimeout(ctx, every)
		err := Announce(actx, tr, control, addr)
		cancel()
		switch {
		case err == nil:
			if lastErr != "" {
				logf("announced to %s: accepted", control)
			}
			lastErr = ""
		case err.Error() != lastErr:
			logf("announcing to %s: %v", control, err)
			lastErr = err.Error()
		}
		select {
		case <-ctx.Done():
			return
		case <-time.After(every):
		}
	}
}
