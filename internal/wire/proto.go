package wire

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"sync"
	"time"

	"repro/internal/exec"
	"repro/internal/graph"
	"repro/internal/machine"
	"repro/internal/sched"
	"repro/internal/trace"
)

// Control payloads are JSON (small, evolvable, debuggable); data and
// heartbeat payloads are binary (exact floats, hot path). Every frame
// is integrity-checked by the frame-level fnv64a checksum.

// Hello opens a connection: the dialer — the coordinator, or a worker
// dialing into the mesh — identifies the run and, on a reconnect, its
// receive watermark so the accepting side can replay what was lost
// with the old connection. Peer distinguishes the two dialers: 0 is
// the coordinator, k > 0 is worker k-1 establishing a mesh link.
type Hello struct {
	Proto byte   `json:"proto"`
	Run   string `json:"run"`            // run id; empty before Start
	Rcvd  uint64 `json:"rcvd,omitempty"` // dialer's cumulative received wid
	Peer  int    `json:"peer,omitempty"` // 1+worker index of a mesh dialer
}

// Welcome answers a Hello with the worker's own watermark.
type Welcome struct {
	Proto byte   `json:"proto"`
	Rcvd  uint64 `json:"rcvd,omitempty"`
}

// RunOpts carries the Runner knobs a worker must reproduce. Durations
// travel in nanoseconds.
type RunOpts struct {
	VirtualTime  bool    `json:"virtual,omitempty"`
	FaultSpec    string  `json:"faults,omitempty"` // exec.FaultPlan.String() / ParseFaults grammar
	Retry        bool    `json:"retry,omitempty"`
	RetryBase    int64   `json:"retryBase,omitempty"`
	RetryCap     int64   `json:"retryCap,omitempty"`
	Grace        float64 `json:"grace,omitempty"`
	WatchdogMin  int64   `json:"watchdogMin,omitempty"`
	NoWatchdog   bool    `json:"noWatchdog,omitempty"`
	StallTimeout int64   `json:"stallTimeout,omitempty"`
	MaxSteps     int64   `json:"maxSteps,omitempty"`
}

// Runner builds an exec.Runner from the shipped options.
func (o RunOpts) Runner() (*exec.Runner, error) {
	r := &exec.Runner{
		VirtualTime: o.VirtualTime, Retry: o.Retry,
		RetryBase: time.Duration(o.RetryBase), RetryCap: time.Duration(o.RetryCap),
		Grace: o.Grace, WatchdogMin: time.Duration(o.WatchdogMin),
		NoWatchdog: o.NoWatchdog, StallTimeout: time.Duration(o.StallTimeout),
		MaxSteps: o.MaxSteps,
	}
	if o.FaultSpec != "" {
		p, err := exec.ParseFaults(o.FaultSpec)
		if err != nil {
			return nil, fmt.Errorf("wire: shipped fault plan: %w", err)
		}
		r.Faults = p
	}
	return r, nil
}

// OptsFor captures a Runner's knobs for shipping. The fault plan
// travels as its spec string (the ParseFaults grammar round-trips).
func OptsFor(r *exec.Runner) RunOpts {
	o := RunOpts{
		VirtualTime: r.VirtualTime, Retry: r.Retry,
		RetryBase: int64(r.RetryBase), RetryCap: int64(r.RetryCap),
		Grace: r.Grace, WatchdogMin: int64(r.WatchdogMin),
		NoWatchdog: r.NoWatchdog, StallTimeout: int64(r.StallTimeout),
		MaxSteps: r.MaxSteps,
	}
	if r.Faults != nil {
		o.FaultSpec = r.Faults.String()
	}
	return o
}

// StartBundle is everything a worker needs to host its share of a run:
// the self-contained schedule (graph and machine embedded), the
// flattening's external bindings, the input data, its hosted processor
// mask and the runner options.
type StartBundle struct {
	Run      string          `json:"run"`
	Worker   int             `json:"worker"`  // this worker's index
	Workers  int             `json:"workers"` // total worker count
	Hosted   []bool          `json:"hosted"`
	Schedule json.RawMessage `json:"schedule,omitempty"`
	// ScheduleBin is the EncodeSchedule form; when present it replaces
	// Schedule (the JSON form remains decodable for older senders).
	ScheduleBin []byte                    `json:"scheduleBin,omitempty"`
	ExternalIn  map[graph.NodeID][]string `json:"externalIn,omitempty"`
	ExternalOut map[graph.NodeID][]string `json:"externalOut,omitempty"`
	Inputs      []byte                    `json:"inputs"` // EncodeEnv bytes
	Opts        RunOpts                   `json:"opts"`
	// Heartbeat cadence and the silence budget after which a peer is
	// declared dead (nanoseconds).
	HeartbeatEvery int64 `json:"heartbeatEvery"`
	PeerTimeout    int64 `json:"peerTimeout"`
	// Mesh data plane. Peers lists every worker's listen address by
	// worker index (empty: relay all data through the coordinator) and
	// PeerOf maps each processor to the worker hosting it, so a sender
	// can route a data frame point-to-point. FlushEvery is the frame
	// coalescing window in nanoseconds (0 picks the default).
	Peers      []string `json:"peers,omitempty"`
	PeerOf     []int    `json:"peerOf,omitempty"`
	FlushEvery int64    `json:"flushEvery,omitempty"`
	// Plan is set for a worker joining a run already in flight: the
	// same global replan the surviving sessions install with Resume.
	// The new session starts directly in Plan.Epoch with its virtual
	// clocks at Clock (the run's global maximum at the barrier).
	Plan  *ResumeNote  `json:"plan,omitempty"`
	Clock machine.Time `json:"clock,omitempty"`
}

// Workers see the same schedule bytes on every run of a given design
// (the coordinator encodes once per Run call), and a decoded Schedule
// is immutable during execution — every engine shares one instance
// across processors already. Caching the decode turns repeated runs'
// graph rebuild + validation into a map hit.
var (
	schedCacheMu sync.Mutex
	schedCache   = map[string]*sched.Schedule{}
)

const schedCacheMax = 64

// DecodeScheduleBundle returns the bundle's schedule, preferring the
// binary form.
func (b *StartBundle) DecodeScheduleBundle() (*sched.Schedule, error) {
	if len(b.ScheduleBin) > 0 {
		schedCacheMu.Lock()
		// The in-place string conversion makes the lookup allocation-free;
		// the key is only materialized on a miss.
		if s, ok := schedCache[string(b.ScheduleBin)]; ok {
			schedCacheMu.Unlock()
			return s, nil
		}
		schedCacheMu.Unlock()
		s, err := DecodeSchedule(b.ScheduleBin)
		if err != nil {
			return nil, err
		}
		schedCacheMu.Lock()
		if len(schedCache) >= schedCacheMax {
			schedCache = map[string]*sched.Schedule{}
		}
		schedCache[string(b.ScheduleBin)] = s
		schedCacheMu.Unlock()
		return s, nil
	}
	s := &sched.Schedule{}
	if err := json.Unmarshal(b.Schedule, s); err != nil {
		return nil, fmt.Errorf("wire: bad schedule in start bundle: %w", err)
	}
	return s, nil
}

// CrashNote reports an injected crash of a hosted processor.
type CrashNote struct {
	PE int `json:"pe"`
}

// PauseNote qualifies a Pause order. A nil/empty Pause payload is the
// plain recovery barrier; Checkpoint asks the worker (a graceful drain
// target) to pack its full local state into the Parked reply.
type PauseNote struct {
	Checkpoint bool `json:"checkpoint,omitempty"`
}

// JoinNote announces a worker on the coordinator's control listener:
// Addr is the worker daemon's listen address, which the coordinator
// dials back exactly like a configured worker. The control connection
// is answered with Welcome once the worker is integrated into the run,
// or Error when the run cannot take it (finishing, no free capacity,
// another fleet change in flight).
type JoinNote struct {
	Addr string `json:"addr"`
}

// DrainNote asks the coordinator to gracefully evacuate a worker:
// by index (Worker >= 0) or by listen address. The control connection
// is answered with Welcome once the worker has departed with all its
// state handed over, or Error when the drain is not possible.
type DrainNote struct {
	Worker int    `json:"worker"`
	Addr   string `json:"addr,omitempty"`
}

// ParkedNote is a session's PauseState: the worker's answer to Pause.
// A checkpoint reply (graceful drain) travels as a blob envelope:
// this JSON plus Printed/PrintedPE, with the worker-local env
// checkpoint (EncodeCheckpoint) and trace events (EncodeEvents) out of
// band.
type ParkedNote struct {
	Done  map[graph.NodeID]int `json:"done,omitempty"`
	Held  []string             `json:"held,omitempty"`
	Dead  []int                `json:"dead,omitempty"`
	Clock machine.Time         `json:"clock,omitempty"`
	// Checkpoint-only: the drain target's print lines so far, tagged by
	// processor (its final partial will never arrive).
	Printed   []string `json:"printed,omitempty"`
	PrintedPE []int    `json:"printedPE,omitempty"`
}

// ImportRef names one surviving task result re-homed by a drain: the
// env bytes ride out of band, one blob per import, in Imports order.
type ImportRef struct {
	Task graph.NodeID `json:"task"`
	PE   int          `json:"pe"`
}

// ResumeNote is the global recovery plan a worker installs at the
// barrier (exec.ResumePlan over the wire). When Imports is non-empty
// the note travels as a blob envelope with one EncodeEnv blob per
// import; a plain JSON payload stays decodable by the same path.
type ResumeNote struct {
	Epoch int64                `json:"epoch"`
	Slots []sched.Slot         `json:"slots"`
	Msgs  []sched.Msg          `json:"msgs,omitempty"`
	Done  map[graph.NodeID]int `json:"done,omitempty"`
	Dead  []bool               `json:"dead"`
	Adopt []exec.Adoption      `json:"adopt,omitempty"`
	// Imports re-home a drained worker's surviving task results onto
	// live processors (see ImportRef).
	Imports []ImportRef `json:"imports,omitempty"`
	// Peers/PeerOf update the mesh membership after a join: the new
	// worker's address appends to the list and revived processors map
	// to it. Empty means no membership change.
	Peers  []string `json:"peers,omitempty"`
	PeerOf []int    `json:"peerOf,omitempty"`
}

// ResultNote is a worker's partial result at the end of a run.
// Events travel binary (EncodeEvents) in EventsBin; the JSON Events
// field remains decodable for older senders.
type ResultNote struct {
	Outputs []byte                  `json:"outputs"` // EncodeEnv bytes
	Exports map[string]graph.NodeID `json:"exports,omitempty"`
	Printed []string                `json:"printed,omitempty"`
	// PrintedPE tags each print line with its processor, so the merge
	// restores ascending-processor order under non-contiguous placement.
	PrintedPE []int         `json:"printedPE,omitempty"`
	Events    []trace.Event `json:"events,omitempty"`
	EventsBin []byte        `json:"eventsBin,omitempty"` // EncodeEvents bytes
}

// TraceEvents returns the note's events, preferring the binary form.
func (n *ResultNote) TraceEvents() ([]trace.Event, error) {
	if len(n.EventsBin) > 0 {
		return DecodeEvents(n.EventsBin)
	}
	return n.Events, nil
}

// ErrorNote aborts the run with a root cause.
type ErrorNote struct {
	Msg string `json:"msg"`
}

// encJSON marshals a control payload; the payload types above cannot
// fail to marshal.
func encJSON(v any) []byte {
	b, err := json.Marshal(v)
	if err != nil {
		panic(fmt.Sprintf("wire: marshal %T: %v", v, err))
	}
	return b
}

func decJSON[T any](payload []byte, what string) (T, error) {
	var v T
	if err := json.Unmarshal(payload, &v); err != nil {
		return v, fmt.Errorf("wire: bad %s payload: %w", what, err)
	}
	return v, nil
}

// Heartbeat payloads carry the sender's progress counter (8 bytes BE);
// ack payloads carry the cumulative received wid (8 bytes BE).

func encU64(v uint64) []byte { return binary.BigEndian.AppendUint64(nil, v) }

func decU64(b []byte) (uint64, error) {
	if len(b) != 8 {
		return 0, fmt.Errorf("wire: expected 8-byte payload, got %d", len(b))
	}
	return binary.BigEndian.Uint64(b), nil
}
