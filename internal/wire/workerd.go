package wire

import (
	"context"
	"encoding/json"
	"fmt"
	"time"

	"repro/internal/exec"
	"repro/internal/graph"
	"repro/internal/sched"
)

// WorkerOptions configures a worker daemon.
type WorkerOptions struct {
	// Logf receives operational log lines (nil = silent).
	Logf func(format string, args ...any)
	// HandshakeTimeout bounds how long an accepted connection may take
	// to say Hello (0 = 5s).
	HandshakeTimeout time.Duration
}

func (o WorkerOptions) logf(format string, args ...any) {
	if o.Logf != nil {
		o.Logf(format, args...)
	}
}

func (o WorkerOptions) handshakeTimeout() time.Duration {
	if o.HandshakeTimeout > 0 {
		return o.HandshakeTimeout
	}
	return 5 * time.Second
}

// sessOutcome is what a session's Wait produced.
type sessOutcome struct {
	p   *exec.Partial
	err error
}

// workerRun is the state of one run on a worker, surviving coordinator
// reconnects.
type workerRun struct {
	id          string
	link        *Link
	ses         *exec.Session
	hbEvery     time.Duration
	peerTimeout time.Duration
	resultCh    chan sessOutcome
	outcome     *sessOutcome // set once the session ended
	sentResult  bool
}

// abort tears the run down (session abort + drain the Wait goroutine).
func (r *workerRun) abort(reason string) {
	if r.ses != nil {
		r.ses.Abort(fmt.Errorf("wire: %s", reason))
		if r.outcome == nil {
			out := <-r.resultCh
			r.outcome = &out
		}
	}
	r.link.Close()
}

// ServeWorker runs a worker daemon: listen on addr, accept a
// coordinator, host the processors it assigns, and keep serving
// subsequent runs until ctx is cancelled. Returns the bound address via
// the ready callback (useful with ":0" listeners) before blocking.
func ServeWorker(ctx context.Context, t Transport, addr string, opt WorkerOptions, ready func(boundAddr string)) error {
	lis, err := t.Listen(addr)
	if err != nil {
		return err
	}
	defer lis.Close()
	if ready != nil {
		ready(lis.Addr())
	}
	opt.logf("worker listening on %s", lis.Addr())

	// Unblock Accept when ctx ends.
	stopping := make(chan struct{})
	defer close(stopping)
	go func() {
		select {
		case <-ctx.Done():
			lis.Close()
		case <-stopping:
		}
	}()

	conns := make(chan Conn)
	acceptErr := make(chan error, 1)
	go func() {
		for {
			c, err := lis.Accept()
			if err != nil {
				acceptErr <- err
				return
			}
			select {
			case conns <- c:
			case <-stopping:
				c.Close()
				return
			}
		}
	}()

	var run *workerRun
	for {
		// A run whose coordinator connection dropped waits for a
		// reconnect, but not forever.
		var orphan <-chan time.Time
		var orphanTimer *time.Timer
		if run != nil {
			orphanTimer = time.NewTimer(run.peerTimeout)
			orphan = orphanTimer.C
		}
		select {
		case <-ctx.Done():
			if run != nil {
				run.abort("worker shutting down")
			}
			return nil
		case err := <-acceptErr:
			if ctx.Err() != nil {
				if run != nil {
					run.abort("worker shutting down")
				}
				return nil
			}
			return fmt.Errorf("wire: accept: %w", err)
		case <-orphan:
			opt.logf("coordinator did not reconnect within %v; abandoning run %s", run.peerTimeout, run.id)
			run.abort("coordinator lost")
			run = nil
		case c := <-conns:
			if orphanTimer != nil {
				orphanTimer.Stop()
			}
			run = serveConn(ctx, c, run, opt)
		}
	}
}

// serveConn handshakes one coordinator connection and runs its frame
// loop. It returns the run to keep waiting for (non-nil after a
// connection drop mid-run) or nil when the run ended or never started.
func serveConn(ctx context.Context, c Conn, prev *workerRun, opt WorkerOptions) *workerRun {
	frames := make(chan Frame, 256)
	rerr := make(chan error, 1)
	go func() {
		for {
			f, err := c.ReadFrame()
			if err != nil {
				rerr <- err
				return
			}
			select {
			case frames <- f:
			case <-ctx.Done():
				return
			}
		}
	}()

	// Handshake: the first frame must be a Hello we can honour.
	var hello Hello
	hs := time.NewTimer(opt.handshakeTimeout())
	defer hs.Stop()
	select {
	case f := <-frames:
		if f.Type != THello {
			opt.logf("peer opened with %s, want hello; dropping", f.Type)
			c.Close()
			return prev
		}
		h, err := decJSON[Hello](f.Payload, "hello")
		if err != nil || h.Proto != ProtoVersion {
			c.WriteFrame(Frame{Type: TError, Payload: encJSON(ErrorNote{Msg: fmt.Sprintf(
				"handshake rejected: need protocol %d", ProtoVersion)})})
			c.Close()
			return prev
		}
		hello = h
	case <-hs.C:
		opt.logf("peer connected but never said hello; dropping")
		c.Close()
		return prev
	case <-rerr:
		c.Close()
		return prev
	case <-ctx.Done():
		c.Close()
		return prev
	}

	var run *workerRun
	switch {
	case prev != nil && hello.Run != "" && hello.Run == prev.id:
		// Reconnect to the run in flight: exchange watermarks, replay.
		run = prev
		if err := c.WriteFrame(Frame{Type: TWelcome, Payload: encJSON(Welcome{Proto: ProtoVersion, Rcvd: run.link.Rcvd()})}); err != nil {
			c.Close()
			return prev
		}
		if err := run.link.Reattach(c, hello.Rcvd); err != nil {
			run.link.Detach()
			return run
		}
		opt.logf("coordinator reconnected to run %s", run.id)
	default:
		if prev != nil {
			opt.logf("new coordinator supersedes run %s", prev.id)
			prev.abort("superseded by a new coordinator")
		}
		if err := c.WriteFrame(Frame{Type: TWelcome, Payload: encJSON(Welcome{Proto: ProtoVersion})}); err != nil {
			c.Close()
			return nil
		}
		run = &workerRun{link: NewLink(c), hbEvery: 250 * time.Millisecond, peerTimeout: 3 * time.Second}
	}

	return frameLoop(ctx, run, frames, rerr, opt)
}

// frameLoop drives one connected stretch of a run. Returns the run if
// the connection dropped mid-run (await reconnect), nil otherwise.
func frameLoop(ctx context.Context, run *workerRun, frames <-chan Frame, rerr <-chan error, opt WorkerOptions) *workerRun {
	hb := time.NewTicker(run.hbEvery)
	defer hb.Stop()
	cadence := run.hbEvery
	lastHeard := time.Now()
	for {
		// The start bundle may have changed the heartbeat cadence.
		if run.hbEvery != cadence {
			cadence = run.hbEvery
			hb.Reset(cadence)
		}
		var results chan sessOutcome
		if run.outcome == nil {
			results = run.resultCh
		}
		select {
		case <-ctx.Done():
			run.abort("worker shutting down")
			return nil
		case err := <-rerr:
			if run.id == "" || run.sentResult {
				// No run started, or it already ended: nothing to keep.
				run.link.Close()
				return nil
			}
			opt.logf("coordinator connection lost (%v); awaiting reconnect", err)
			run.link.Detach()
			return run
		case <-hb.C:
			run.link.SendRaw(Frame{Type: THeartbeat, Payload: encU64(run.progress())})
			if time.Since(lastHeard) > run.peerTimeout {
				opt.logf("no coordinator traffic for %v; abandoning run", run.peerTimeout)
				run.abort("coordinator heartbeat lost")
				return nil
			}
		case out := <-results:
			run.outcome = &out
			if out.err != nil {
				opt.logf("run failed locally: %v", out.err)
				run.link.Send(TError, encJSON(ErrorNote{Msg: out.err.Error()}))
			} else {
				note, err := resultNote(out.p)
				if err != nil {
					run.link.Send(TError, encJSON(ErrorNote{Msg: err.Error()}))
				} else {
					run.link.Send(TResult, note)
					run.sentResult = true
				}
			}
		case f := <-frames:
			lastHeard = time.Now()
			if !run.link.Accept(f) {
				// Replay overlap: already processed; re-ack.
				run.link.SendRaw(Frame{Type: TAck, Payload: encU64(run.link.Rcvd())})
				continue
			}
			done, err := handleFrame(run, f, opt)
			if f.Wid != 0 {
				run.link.SendRaw(Frame{Type: TAck, Payload: encU64(run.link.Rcvd())})
			}
			if err != nil {
				opt.logf("protocol error on %s frame: %v", f.Type, err)
				run.link.Send(TError, encJSON(ErrorNote{Msg: err.Error()}))
				run.abort(fmt.Sprintf("protocol error: %v", err))
				return nil
			}
			if done {
				run.abort("run complete")
				return nil
			}
		}
	}
}

// progress reports the session's progress counter for heartbeats.
func (r *workerRun) progress() uint64 {
	if r.ses == nil {
		return 0
	}
	return r.ses.Progress()
}

// handleFrame processes one accepted frame. done=true ends the
// connection's run cleanly.
func handleFrame(run *workerRun, f Frame, opt WorkerOptions) (bool, error) {
	switch f.Type {
	case TStart:
		if run.ses != nil {
			return false, fmt.Errorf("start frame while a run is active")
		}
		bundle, err := decJSON[StartBundle](f.Payload, "start")
		if err != nil {
			return false, err
		}
		return false, startRun(run, &bundle, opt)
	case TData:
		if run.ses == nil {
			return false, fmt.Errorf("data frame before start")
		}
		m, err := DecodeMsg(f.Payload)
		if err != nil {
			return false, err
		}
		return false, run.ses.Deliver(m)
	case TPause:
		if run.ses == nil {
			return false, fmt.Errorf("pause frame before start")
		}
		st, err := run.ses.Pause()
		if err != nil {
			return false, err
		}
		note := ParkedNote{Done: st.Done, Held: st.Held, Dead: st.Dead, Clock: st.Clock}
		return false, run.link.Send(TParked, encJSON(note))
	case TResume:
		if run.ses == nil {
			return false, fmt.Errorf("resume frame before start")
		}
		note, err := decJSON[ResumeNote](f.Payload, "resume")
		if err != nil {
			return false, err
		}
		plan := &exec.ResumePlan{Epoch: note.Epoch, Slots: note.Slots, Msgs: note.Msgs,
			Done: note.Done, Dead: note.Dead, Adopt: note.Adopt}
		return false, run.ses.Resume(plan)
	case TFinish:
		if run.ses == nil {
			return false, fmt.Errorf("finish frame before start")
		}
		run.ses.FinishRun()
		return false, nil
	case TAck:
		wid, err := decU64(f.Payload)
		if err != nil {
			return false, err
		}
		run.link.Acked(wid)
		return false, nil
	case THeartbeat:
		return false, nil
	case TPing:
		return false, run.link.SendRaw(Frame{Type: TPong, Payload: f.Payload})
	case TBye:
		return true, nil
	case TError:
		note, _ := decJSON[ErrorNote](f.Payload, "error")
		return false, fmt.Errorf("coordinator aborted the run: %s", note.Msg)
	default:
		return false, fmt.Errorf("unexpected %s frame", f.Type)
	}
}

// startRun builds the runner and session from a start bundle.
func startRun(run *workerRun, bundle *StartBundle, opt WorkerOptions) error {
	var s sched.Schedule
	if err := json.Unmarshal(bundle.Schedule, &s); err != nil {
		return fmt.Errorf("bad schedule in start bundle: %w", err)
	}
	inputs, err := DecodeEnv(bundle.Inputs)
	if err != nil {
		return fmt.Errorf("bad inputs in start bundle: %w", err)
	}
	runner, err := bundle.Opts.Runner()
	if err != nil {
		return err
	}
	runner.Inputs = inputs
	flat := &graph.Flat{Graph: s.Graph, ExternalIn: bundle.ExternalIn, ExternalOut: bundle.ExternalOut}
	if flat.ExternalIn == nil {
		flat.ExternalIn = map[graph.NodeID][]string{}
	}
	if flat.ExternalOut == nil {
		flat.ExternalOut = map[graph.NodeID][]string{}
	}
	ses, err := runner.StartSession(&s, flat, bundle.Hosted, workerPlane{link: run.link})
	if err != nil {
		return err
	}
	run.id = bundle.Run
	run.ses = ses
	if bundle.HeartbeatEvery > 0 {
		run.hbEvery = time.Duration(bundle.HeartbeatEvery)
	}
	if bundle.PeerTimeout > 0 {
		run.peerTimeout = time.Duration(bundle.PeerTimeout)
	}
	run.resultCh = make(chan sessOutcome, 1)
	go func() {
		p, err := ses.Wait()
		run.resultCh <- sessOutcome{p: p, err: err}
	}()
	hostedN := 0
	for _, h := range bundle.Hosted {
		if h {
			hostedN++
		}
	}
	opt.logf("run %s started: hosting %d of %d processors as worker %d/%d",
		run.id, hostedN, len(bundle.Hosted), bundle.Worker, bundle.Workers)
	return nil
}

// resultNote serializes a partial result.
func resultNote(p *exec.Partial) ([]byte, error) {
	outputs, err := EncodeEnv(p.Outputs)
	if err != nil {
		return nil, err
	}
	exports := make(map[string]graph.NodeID, len(p.Exports))
	for k, v := range p.Exports {
		exports[k] = v
	}
	return encJSON(ResultNote{Outputs: outputs, Exports: exports, Printed: p.Printed, Events: p.Events}), nil
}

// workerPlane adapts the run's link to the session's RemotePlane: all
// remote traffic goes to the coordinator, which routes it onward (star
// topology).
type workerPlane struct{ link *Link }

func (p workerPlane) DeliverRemote(m exec.RemoteMsg) error {
	b, err := EncodeMsg(m)
	if err != nil {
		return err
	}
	return p.link.Send(TData, b)
}

func (p workerPlane) LocalIdle() { p.link.Send(TIdle, nil) }

func (p workerPlane) LocalCrash(pe int) { p.link.Send(TCrash, encJSON(CrashNote{PE: pe})) }
