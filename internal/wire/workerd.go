package wire

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/exec"
	"repro/internal/graph"
)

// WorkerOptions configures a worker daemon.
type WorkerOptions struct {
	// Logf receives operational log lines (nil = silent).
	Logf func(format string, args ...any)
	// HandshakeTimeout bounds how long an accepted connection may take
	// to say Hello (0 = 5s).
	HandshakeTimeout time.Duration

	// transport is the transport the daemon listens on; the mesh dials
	// peers over the same one. Installed by ServeWorker.
	transport Transport
}

func (o WorkerOptions) logf(format string, args ...any) {
	if o.Logf != nil {
		o.Logf(format, args...)
	}
}

func (o WorkerOptions) handshakeTimeout() time.Duration {
	if o.HandshakeTimeout > 0 {
		return o.HandshakeTimeout
	}
	return 5 * time.Second
}

// activeWorkerRuns counts sessions hosted across every worker daemon in
// this process. Leak tests assert it returns to zero after teardown.
var activeWorkerRuns atomic.Int64

// ActiveWorkerRuns reports how many runs worker daemons in this process
// are currently hosting (attached or awaiting a coordinator reconnect).
func ActiveWorkerRuns() int64 { return activeWorkerRuns.Load() }

// sessOutcome is what a session's Wait produced.
type sessOutcome struct {
	p   *exec.Partial
	err error
}

// inboundConn is an accepted connection whose Hello has been read: a
// coordinator (hello.Peer == 0) or a mesh peer (hello.Peer == k+1 for
// worker k). The hello reader keeps pumping subsequent frames into
// frames until the connection breaks (rerr).
type inboundConn struct {
	c      Conn
	hello  Hello
	frames chan Frame
	rerr   chan error
}

// helloIn reads the handshake off a fresh connection and routes it;
// connections that never say a valid Hello are dropped here without
// disturbing any run.
func helloIn(ctx context.Context, c Conn, opt WorkerOptions, route func(inboundConn)) {
	frames := make(chan Frame, 256)
	rerr := make(chan error, 1)
	first := make(chan Frame, 1)
	go func() {
		f, err := c.ReadFrame()
		if err != nil {
			rerr <- err
			return
		}
		first <- f
		for {
			f, err := c.ReadFrame()
			if err != nil {
				rerr <- err
				return
			}
			select {
			case frames <- f:
			case <-ctx.Done():
				return
			}
		}
	}()

	hs := time.NewTimer(opt.handshakeTimeout())
	defer hs.Stop()
	select {
	case f := <-first:
		if f.Type != THello {
			opt.logf("peer opened with %s, want hello; dropping", f.Type)
			c.Close()
			return
		}
		h, err := decJSON[Hello](f.Payload, "hello")
		if err != nil || h.Proto != ProtoVersion {
			c.WriteFrame(Frame{Type: TError, Payload: encJSON(ErrorNote{Msg: fmt.Sprintf(
				"handshake rejected: need protocol %d", ProtoVersion)})})
			c.Close()
			return
		}
		route(inboundConn{c: c, hello: h, frames: frames, rerr: rerr})
	case <-hs.C:
		opt.logf("peer connected but never said hello; dropping")
		c.Close()
	case <-rerr:
		c.Close()
	case <-ctx.Done():
		c.Close()
	}
}

// rejectConn answers a connection the daemon cannot serve.
func rejectConn(c Conn, msg string) {
	c.WriteFrame(Frame{Type: TError, Payload: encJSON(ErrorNote{Msg: msg})})
	c.Close()
}

// workerRun is the state of one run hosted by a worker daemon,
// surviving coordinator reconnects. A daemon hosts any number of these
// concurrently, each with its own session, mesh, heartbeat cadence and
// orphan-abandonment timer; nothing here is shared across runs.
type workerRun struct {
	id          string
	link        *Link        // to the coordinator (nil until the first connection is adopted)
	reader      *inboundConn // the coordinator's current connection (nil while detached)
	ses         *exec.Session
	mesh        atomic.Pointer[mesh]
	hbEvery     time.Duration
	peerTimeout time.Duration
	flushEvery  time.Duration
	resultCh    chan sessOutcome
	outcome     *sessOutcome // set once the session ended
	sentResult  bool
	ackDue      atomic.Bool        // coordinator-link ack batching
	stopFlush   context.CancelFunc // the run's flush ticker

	// adopt receives coordinator connections for this run (reconnects,
	// or a replacement connection while one is attached); gone closes
	// when the run leaves the daemon's table, so a router blocked on
	// adopt can fall back to creating a fresh run.
	adopt chan inboundConn
	gone  chan struct{}
}

// abort tears the run down (session abort + drain the Wait goroutine).
func (r *workerRun) abort(reason string) {
	if r.stopFlush != nil {
		r.stopFlush()
		r.stopFlush = nil
	}
	// The session goes down before the mesh: mesh close waits for its
	// connection readers, and a reader blocked delivering into a live
	// session only unblocks when the session ends.
	if r.ses != nil {
		r.ses.Abort(fmt.Errorf("wire: %s", reason))
		if r.outcome == nil {
			out := <-r.resultCh
			r.outcome = &out
		}
	}
	if ms := r.mesh.Swap(nil); ms != nil {
		ms.close()
	}
	if r.link != nil {
		r.link.Close()
	}
}

// flushData drives coalescing data frames (mesh and coordinator link)
// onto the wire, folding in batched acks. Safe from any goroutine.
func (r *workerRun) flushData() {
	if ms := r.mesh.Load(); ms != nil {
		ms.flushAll()
	}
	if r.ackDue.Swap(false) {
		r.link.SendRawBuffered(Frame{Type: TAck, Payload: encU64(r.link.Rcvd())})
	}
	r.link.Flush()
}

// workerDaemon is the daemon-wide state: the table of hosted runs. All
// connection routing keys on Hello.Run — a frame, mesh dial, heartbeat
// or checkpoint for run A can only ever reach run A's state, because
// the only path from a connection to a session goes through this table.
type workerDaemon struct {
	opt    WorkerOptions
	ctx    context.Context
	cancel context.CancelFunc

	mu     sync.Mutex
	runs   map[string]*workerRun
	closed bool           // no further runs may be created
	wg     sync.WaitGroup // run loops
}

// ServeWorker runs a worker daemon: listen on addr, accept coordinator
// and mesh connections, and host every run the fleet places here —
// concurrently, each keyed by its run ID — until ctx is cancelled.
// Returns the bound address via the ready callback (useful with ":0"
// listeners) before blocking.
func ServeWorker(ctx context.Context, t Transport, addr string, opt WorkerOptions, ready func(boundAddr string)) error {
	lis, err := t.Listen(addr)
	if err != nil {
		return err
	}
	defer lis.Close()
	if ready != nil {
		ready(lis.Addr())
	}
	opt.transport = t
	opt.logf("worker listening on %s", lis.Addr())

	dctx, cancel := context.WithCancel(ctx)
	defer cancel()
	d := &workerDaemon{opt: opt, ctx: dctx, cancel: cancel, runs: map[string]*workerRun{}}
	// Every run loop aborts on dctx; wait them out before returning so
	// sessions, meshes and links never outlive the daemon. The closed
	// flag is published under d.mu before the Wait so no router can
	// wg.Add a fresh run once the Wait has begun.
	defer func() {
		cancel()
		d.mu.Lock()
		d.closed = true
		d.mu.Unlock()
		d.wg.Wait()
	}()

	// Unblock Accept when ctx ends.
	stopping := make(chan struct{})
	defer close(stopping)
	go func() {
		select {
		case <-dctx.Done():
			lis.Close()
		case <-stopping:
		}
	}()

	acceptErr := make(chan error, 1)
	go func() {
		for {
			c, err := lis.Accept()
			if err != nil {
				acceptErr <- err
				return
			}
			go helloIn(dctx, c, opt, d.route)
		}
	}()

	select {
	case <-ctx.Done():
		return nil
	case err := <-acceptErr:
		if ctx.Err() != nil {
			return nil
		}
		return fmt.Errorf("wire: accept: %w", err)
	}
}

// route dispatches one handshaken connection by its Hello: mesh peers
// and coordinators go to the run named by hello.Run; run-less
// connections (calibration probes) get an ephemeral echo handler.
// Runs in the connection's own goroutine.
func (d *workerDaemon) route(ic inboundConn) {
	h := ic.hello
	if h.Peer > 0 {
		d.mu.Lock()
		run := d.runs[h.Run]
		d.mu.Unlock()
		if h.Run == "" || run == nil {
			rejectConn(ic.c, "unknown run")
			return
		}
		attachMeshConn(run, ic, d.opt)
		return
	}
	if h.Run == "" {
		d.serveEphemeral(ic)
		return
	}
	for {
		d.mu.Lock()
		if d.closed || d.ctx.Err() != nil {
			d.mu.Unlock()
			ic.c.Close()
			return
		}
		run := d.runs[h.Run]
		if run == nil {
			run = &workerRun{id: h.Run,
				hbEvery: 250 * time.Millisecond, peerTimeout: 3 * time.Second, flushEvery: defaultFlushEvery,
				adopt: make(chan inboundConn), gone: make(chan struct{})}
			d.runs[h.Run] = run
			activeWorkerRuns.Add(1)
			d.wg.Add(1)
			d.mu.Unlock()
			go d.runLoop(run, ic)
			return
		}
		d.mu.Unlock()
		select {
		case run.adopt <- ic:
			return
		case <-run.gone:
			// The run ended while this connection was in flight; retry —
			// the next round creates a fresh run for it.
		case <-d.ctx.Done():
			ic.c.Close()
			return
		}
	}
}

// serveEphemeral answers a run-less connection: Welcome, echo pings
// (calibration probes measure RTT this way), and tear down on goodbye.
// It never touches the run table.
func (d *workerDaemon) serveEphemeral(ic inboundConn) {
	defer ic.c.Close()
	if err := ic.c.WriteFrame(Frame{Type: TWelcome, Payload: encJSON(Welcome{Proto: ProtoVersion})}); err != nil {
		return
	}
	for {
		select {
		case <-d.ctx.Done():
			return
		case <-ic.rerr:
			return
		case f := <-ic.frames:
			switch f.Type {
			case TPing:
				if err := ic.c.WriteFrame(Frame{Type: TPong, Payload: f.Payload}); err != nil {
					return
				}
			case TBye:
				return
			case THeartbeat, TAck:
				// Keepalive noise on a probe connection; ignore.
			default:
				d.opt.logf("unexpected %s frame on a run-less connection; dropping", f.Type)
				return
			}
		}
	}
}

// endRun removes the run from the table and flushes adoption attempts
// that raced the teardown.
func (d *workerDaemon) endRun(run *workerRun) {
	d.mu.Lock()
	if d.runs[run.id] == run {
		delete(d.runs, run.id)
	}
	d.mu.Unlock()
	activeWorkerRuns.Add(-1)
	close(run.gone)
	for {
		select {
		case ic := <-run.adopt:
			rejectConn(ic.c, "run ended")
		default:
			return
		}
	}
}

// runLoop owns one hosted run from its first coordinator connection to
// teardown: adopt connections, drive the frame loop while attached, and
// while detached wait out the run's own orphan timer — never another
// run's. One dead coordinator reaps exactly its run; co-hosted runs
// never notice.
func (d *workerDaemon) runLoop(run *workerRun, first inboundConn) {
	defer d.wg.Done()
	defer d.endRun(run)
	next := &first
	for {
		if next != nil {
			adoptCoord(*next, run, d.opt)
			next = nil
		}
		if run.reader != nil {
			var keep bool
			keep, next = d.frameLoop(run)
			if !keep {
				return
			}
			continue
		}
		// Detached: await a reconnect, but not forever.
		orphan := time.NewTimer(run.peerTimeout)
		select {
		case <-d.ctx.Done():
			orphan.Stop()
			run.abort("worker shutting down")
			return
		case <-orphan.C:
			d.opt.logf("coordinator did not reconnect within %v; abandoning run %s", run.peerTimeout, run.id)
			run.abort("coordinator lost")
			return
		case ic := <-run.adopt:
			orphan.Stop()
			next = &ic
		}
	}
}

// attachMeshConn hands an inbound mesh connection to the run's mesh.
func attachMeshConn(run *workerRun, ic inboundConn, opt WorkerOptions) {
	ms := run.mesh.Load()
	if ms == nil {
		rejectConn(ic.c, "mesh disabled")
		return
	}
	if err := ms.acceptPeer(ic.hello.Peer-1, ic.c, ic.hello.Rcvd, ic.frames, ic.rerr); err != nil {
		opt.logf("mesh attach from worker %d failed: %v", ic.hello.Peer-1, err)
		ic.c.Close()
	}
}

// adoptCoord installs a coordinator connection on the run: the first
// connection creates the link; later ones are reconnects (exchange
// watermarks, replay the outbox). On failure the run's reader stays
// nil and the orphan timer keeps counting.
func adoptCoord(ic inboundConn, run *workerRun, opt WorkerOptions) {
	if run.link != nil {
		// Reconnect to the run in flight. The Welcome must precede the
		// outbox replay Reattach performs.
		if err := ic.c.WriteFrame(Frame{Type: TWelcome, Payload: encJSON(Welcome{Proto: ProtoVersion, Rcvd: run.link.Rcvd()})}); err != nil {
			ic.c.Close()
			return
		}
		if err := run.link.Reattach(ic.c, ic.hello.Rcvd); err != nil {
			run.link.Detach()
			return
		}
		run.reader = &ic
		opt.logf("coordinator reconnected to run %s", run.id)
		return
	}
	if err := ic.c.WriteFrame(Frame{Type: TWelcome, Payload: encJSON(Welcome{Proto: ProtoVersion})}); err != nil {
		ic.c.Close()
		return
	}
	run.link = NewLink(ic.c)
	run.reader = &ic
}

// frameLoop drives one connected stretch of a run. keep=false means the
// run is torn down; keep=true with a nil conn means the connection
// dropped and the run awaits a reconnect; a non-nil conn is a
// replacement coordinator connection to adopt immediately.
func (d *workerDaemon) frameLoop(run *workerRun) (keep bool, next *inboundConn) {
	opt := d.opt
	rd := run.reader
	hb := time.NewTicker(run.hbEvery)
	defer hb.Stop()
	cadence := run.hbEvery
	lastHeard := time.Now()
	for {
		// The start bundle may have changed the heartbeat cadence.
		if run.hbEvery != cadence {
			cadence = run.hbEvery
			hb.Reset(cadence)
		}
		var results chan sessOutcome
		if run.outcome == nil {
			results = run.resultCh
		}
		select {
		case <-d.ctx.Done():
			run.abort("worker shutting down")
			return false, nil
		case err := <-rd.rerr:
			if run.ses == nil || run.sentResult {
				// No run started, or it already ended: nothing to keep.
				run.abort("connection closed")
				return false, nil
			}
			opt.logf("coordinator connection to run %s lost (%v); awaiting reconnect", run.id, err)
			run.link.Detach()
			run.reader = nil
			return true, nil
		case <-hb.C:
			run.flushData()
			run.link.SendRaw(Frame{Type: THeartbeat, Payload: encU64(run.progress())})
			if time.Since(lastHeard) > run.peerTimeout {
				opt.logf("no coordinator traffic for %v; abandoning run %s", run.peerTimeout, run.id)
				run.abort("coordinator heartbeat lost")
				return false, nil
			}
		case out := <-results:
			run.outcome = &out
			run.flushData()
			if out.err != nil {
				opt.logf("run %s failed locally: %v", run.id, out.err)
				run.link.Send(TError, encJSON(ErrorNote{Msg: out.err.Error()}))
			} else {
				note, err := resultNote(out.p)
				if err != nil {
					run.link.Send(TError, encJSON(ErrorNote{Msg: err.Error()}))
				} else {
					run.link.Send(TResult, note)
					run.sentResult = true
				}
			}
		case ic := <-run.adopt:
			// A replacement coordinator connection for this run while one
			// is attached: detach and adopt it.
			run.link.Detach()
			run.reader = nil
			return true, &ic
		case f := <-rd.frames:
			lastHeard = time.Now()
			if !run.link.Accept(f) {
				// Replay overlap: already processed; re-ack.
				run.link.SendRaw(Frame{Type: TAck, Payload: encU64(run.link.Rcvd())})
				continue
			}
			done, err := handleFrame(run, f, opt)
			if f.Wid != 0 {
				run.ackDue.Store(true)
			}
			if err != nil {
				opt.logf("protocol error on %s frame: %v", f.Type, err)
				run.link.Send(TError, encJSON(ErrorNote{Msg: err.Error()}))
				run.abort(fmt.Sprintf("protocol error: %v", err))
				return false, nil
			}
			if done {
				run.abort("run complete")
				return false, nil
			}
			if len(rd.frames) == 0 {
				// Inbound drained: flush coalesced data and batched acks.
				run.flushData()
			}
		}
	}
}

// progress reports the session's progress counter for heartbeats.
func (r *workerRun) progress() uint64 {
	if r.ses == nil {
		return 0
	}
	return r.ses.Progress()
}

// handleFrame processes one accepted frame. done=true ends the
// connection's run cleanly.
func handleFrame(run *workerRun, f Frame, opt WorkerOptions) (bool, error) {
	switch f.Type {
	case TStart:
		if run.ses != nil {
			return false, fmt.Errorf("start frame while a run is active")
		}
		js, blobs, err := decBlobEnvelope(f.Payload)
		if err != nil {
			return false, err
		}
		bundle, err := decJSON[StartBundle](js, "start")
		if err != nil {
			return false, err
		}
		if len(blobs) >= 2 {
			bundle.ScheduleBin, bundle.Inputs = blobs[0], blobs[1]
		}
		return false, startRun(run, &bundle, opt)
	case TData:
		if run.ses == nil {
			return false, fmt.Errorf("data frame before start")
		}
		m, err := DecodeMsg(f.Payload)
		if err != nil {
			return false, err
		}
		putBuf(f.Payload) // DecodeMsg copies everything out
		return false, run.ses.Deliver(m)
	case TPause:
		if run.ses == nil {
			return false, fmt.Errorf("pause frame before start")
		}
		var pn PauseNote
		if len(f.Payload) > 0 {
			var err error
			if pn, err = decJSON[PauseNote](f.Payload, "pause"); err != nil {
				return false, err
			}
		}
		if pn.Checkpoint {
			// Graceful drain: pack the full local state into the reply —
			// env checkpoint and trace events out of band, print lines
			// in the JSON — so this process can depart losing nothing.
			st, err := run.ses.PauseCheckpoint()
			if err != nil {
				return false, err
			}
			run.flushData()
			ckpt, err := EncodeCheckpoint(st.Local)
			if err != nil {
				return false, err
			}
			note := ParkedNote{Done: st.Done, Held: st.Held, Dead: st.Dead, Clock: st.Clock,
				Printed: st.Printed, PrintedPE: st.PrintedPE}
			return false, run.link.Send(TParked, encBlobEnvelope(encJSON(note), ckpt, EncodeEvents(st.Events)))
		}
		st, err := run.ses.Pause()
		if err != nil {
			return false, err
		}
		// The barrier: everything coalescing must be on the wire before
		// the coordinator sees Parked.
		run.flushData()
		note := ParkedNote{Done: st.Done, Held: st.Held, Dead: st.Dead, Clock: st.Clock}
		return false, run.link.Send(TParked, encJSON(note))
	case TResume:
		if run.ses == nil {
			return false, fmt.Errorf("resume frame before start")
		}
		js, blobs, err := decBlobEnvelope(f.Payload)
		if err != nil {
			return false, err
		}
		note, err := decJSON[ResumeNote](js, "resume")
		if err != nil {
			return false, err
		}
		plan := &exec.ResumePlan{Epoch: note.Epoch, Slots: note.Slots, Msgs: note.Msgs,
			Done: note.Done, Dead: note.Dead, Adopt: note.Adopt}
		if len(note.Imports) > 0 {
			if len(blobs) < len(note.Imports) {
				return false, fmt.Errorf("resume names %d imports but carries %d env blobs", len(note.Imports), len(blobs))
			}
			for i, ref := range note.Imports {
				env, err := DecodeEnv(blobs[i])
				if err != nil {
					return false, fmt.Errorf("bad import env for task %s: %w", ref.Task, err)
				}
				plan.Imports = append(plan.Imports, exec.Import{Task: ref.Task, PE: ref.PE, Env: env})
			}
		}
		if err := run.ses.Resume(plan); err != nil {
			return false, err
		}
		if ms := run.mesh.Load(); ms != nil {
			if len(note.Peers) > 0 {
				ms.update(note.Peers, note.PeerOf)
			}
			ms.pruneDead(note.Dead)
		}
		return false, nil
	case TFinish:
		if run.ses == nil {
			return false, fmt.Errorf("finish frame before start")
		}
		run.ses.FinishRun()
		return false, nil
	case TAck:
		wid, err := decU64(f.Payload)
		if err != nil {
			return false, err
		}
		run.link.Acked(wid)
		return false, nil
	case THeartbeat:
		return false, nil
	case TPing:
		return false, run.link.SendRaw(Frame{Type: TPong, Payload: f.Payload})
	case TBye:
		return true, nil
	case TError:
		note, _ := decJSON[ErrorNote](f.Payload, "error")
		return false, fmt.Errorf("coordinator aborted the run: %s", note.Msg)
	default:
		return false, fmt.Errorf("unexpected %s frame", f.Type)
	}
}

// startRun builds the runner and session from a start bundle.
func startRun(run *workerRun, bundle *StartBundle, opt WorkerOptions) error {
	if bundle.Run != run.id {
		// The session table routes by the Hello's run ID; a bundle naming
		// a different run would cross-wire two runs' state.
		return fmt.Errorf("start bundle for run %q on a connection handshaken for run %q", bundle.Run, run.id)
	}
	s, err := bundle.DecodeScheduleBundle()
	if err != nil {
		return err
	}
	inputs, err := DecodeEnv(bundle.Inputs)
	if err != nil {
		return fmt.Errorf("bad inputs in start bundle: %w", err)
	}
	runner, err := bundle.Opts.Runner()
	if err != nil {
		return err
	}
	runner.Inputs = inputs
	flat := &graph.Flat{Graph: s.Graph, ExternalIn: bundle.ExternalIn, ExternalOut: bundle.ExternalOut}
	if flat.ExternalIn == nil {
		flat.ExternalIn = map[graph.NodeID][]string{}
	}
	if flat.ExternalOut == nil {
		flat.ExternalOut = map[graph.NodeID][]string{}
	}
	var ses *exec.Session
	if bundle.Plan != nil {
		// Mid-run join: the bundle carries the resume plan every
		// surviving session installed at the barrier; this session
		// starts directly in that epoch with its clocks advanced.
		plan := &exec.ResumePlan{Epoch: bundle.Plan.Epoch, Slots: bundle.Plan.Slots,
			Msgs: bundle.Plan.Msgs, Done: bundle.Plan.Done, Dead: bundle.Plan.Dead,
			Adopt: bundle.Plan.Adopt}
		ses, err = runner.StartSessionFrom(s, flat, bundle.Hosted, workerPlane{run: run}, plan, bundle.Clock)
	} else {
		ses, err = runner.StartSession(s, flat, bundle.Hosted, workerPlane{run: run})
	}
	if err != nil {
		return err
	}
	run.ses = ses
	if bundle.HeartbeatEvery > 0 {
		run.hbEvery = time.Duration(bundle.HeartbeatEvery)
	}
	if bundle.PeerTimeout > 0 {
		run.peerTimeout = time.Duration(bundle.PeerTimeout)
	}
	if bundle.FlushEvery > 0 {
		run.flushEvery = time.Duration(bundle.FlushEvery)
	}
	if len(bundle.Peers) > 0 && bundle.Worker < len(bundle.Peers) && opt.transport != nil {
		run.mesh.Store(newMesh(meshConfig{
			transport: opt.transport, runID: bundle.Run, self: bundle.Worker,
			addrs: bundle.Peers, peerOf: bundle.PeerOf,
			flushery: run.flushEvery, logf: opt.logf,
		}, ses.Deliver))
	}
	// The flush ticker is the coalescing backstop: data waiting in a
	// peer buffer never waits longer than flushEvery, even when the
	// sending goroutine is off doing something else.
	fctx, cancel := context.WithCancel(context.Background())
	run.stopFlush = cancel
	go func() {
		t := time.NewTicker(run.flushEvery)
		defer t.Stop()
		for {
			select {
			case <-fctx.Done():
				return
			case <-t.C:
				run.flushData()
			}
		}
	}()
	run.resultCh = make(chan sessOutcome, 1)
	go func() {
		p, err := ses.Wait()
		run.resultCh <- sessOutcome{p: p, err: err}
	}()
	hostedN := 0
	for _, h := range bundle.Hosted {
		if h {
			hostedN++
		}
	}
	opt.logf("run %s started: hosting %d of %d processors as worker %d/%d",
		run.id, hostedN, len(bundle.Hosted), bundle.Worker, bundle.Workers)
	return nil
}

// resultNote serializes a partial result. The output environment and
// trace events ride out of band in the blob envelope.
func resultNote(p *exec.Partial) ([]byte, error) {
	outputs, err := EncodeEnv(p.Outputs)
	if err != nil {
		return nil, err
	}
	exports := make(map[string]graph.NodeID, len(p.Exports))
	for k, v := range p.Exports {
		exports[k] = v
	}
	js := encJSON(ResultNote{Exports: exports, Printed: p.Printed, PrintedPE: p.PrintedPE})
	return encBlobEnvelope(js, outputs, EncodeEvents(p.Events)), nil
}

// workerPlane adapts the run's links to the session's RemotePlane:
// data frames go point-to-point over the mesh when the destination's
// link is up, and fall back to the coordinator relay otherwise;
// control notifications always go to the coordinator.
type workerPlane struct{ run *workerRun }

func (p workerPlane) DeliverRemote(m exec.RemoteMsg) error {
	b, err := AppendMsg(getBuf(), m)
	if err != nil {
		return err
	}
	if ms := p.run.mesh.Load(); ms != nil {
		if l := ms.linkFor(m.ToPE); l != nil {
			return l.SendData(TData, b, true)
		}
	}
	return p.run.link.SendData(TData, b, true)
}

// FlushRemote implements exec.RemoteFlusher: the runner calls it at
// slot boundaries so a burst of sends shares one wire write.
func (p workerPlane) FlushRemote() { p.run.flushData() }

func (p workerPlane) LocalIdle() {
	p.run.flushData()
	p.run.link.Send(TIdle, nil)
}

func (p workerPlane) LocalCrash(pe int) { p.run.link.Send(TCrash, encJSON(CrashNote{PE: pe})) }
