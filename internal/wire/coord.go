package wire

import (
	"context"
	"fmt"
	"sort"
	"time"

	"repro/internal/exec"
	"repro/internal/graph"
	"repro/internal/machine"
	"repro/internal/sched"
	"repro/internal/trace"
)

// Coordinator drives a distributed run: it partitions the machine's
// processors over worker daemons in contiguous blocks, ships each its
// share of the schedule, relays cross-worker messages (star topology:
// every inter-process message passes through the coordinator, which
// routes Data frames by their destination processor without decoding
// them), and arbitrates recovery when a processor crashes or a whole
// worker process dies.
type Coordinator struct {
	Transport Transport
	Addrs     []string
	// Runner supplies the run options every worker reproduces (faults,
	// retry, grace, watchdogs, virtual time) and the run inputs.
	Runner *exec.Runner

	// HeartbeatEvery is the keepalive cadence (default 250ms);
	// PeerTimeout the silence budget after which a worker is declared
	// dead (default 3s); ConnectTimeout bounds the initial dials
	// (default 10s).
	HeartbeatEvery time.Duration
	PeerTimeout    time.Duration
	ConnectTimeout time.Duration

	Logf func(format string, args ...any)
}

func (co *Coordinator) logf(format string, args ...any) {
	if co.Logf != nil {
		co.Logf(format, args...)
	}
}

func (co *Coordinator) heartbeatEvery() time.Duration {
	if co.HeartbeatEvery > 0 {
		return co.HeartbeatEvery
	}
	return 250 * time.Millisecond
}

func (co *Coordinator) peerTimeout() time.Duration {
	if co.PeerTimeout > 0 {
		return co.PeerTimeout
	}
	return 3 * time.Second
}

func (co *Coordinator) connectTimeout() time.Duration {
	if co.ConnectTimeout > 0 {
		return co.ConnectTimeout
	}
	return 10 * time.Second
}

// Partition splits numPE processors over workers contiguous blocks
// (worker 0 gets the lowest processors). Contiguity keeps merged
// printed output in ascending-processor order, matching a
// single-process run line for line.
func Partition(numPE, workers int) [][]int {
	if workers > numPE {
		workers = numPE
	}
	blocks := make([][]int, workers)
	base, rem := numPE/workers, numPE%workers
	pe := 0
	for i := range blocks {
		n := base
		if i < rem {
			n++
		}
		for j := 0; j < n; j++ {
			blocks[i] = append(blocks[i], pe)
			pe++
		}
	}
	return blocks
}

// peer is the coordinator's view of one worker process.
type peer struct {
	i    int
	addr string
	link *Link
	pes  []int

	idle      bool
	lost      bool
	parked    *ParkedNote
	result    *ResultNote
	lastHeard time.Time
	redial    context.CancelFunc // non-nil while a reconnect is in flight
}

// coEvent is one occurrence on the coordinator's central loop: a frame
// from peer i, a connection error, or a successful reconnect.
type coEvent struct {
	i    int
	f    Frame
	err  error
	conn Conn   // reattach: fresh connection
	rcvd uint64 // reattach: worker's receive watermark
}

// run states of the coordinator loop.
const (
	stRunning = iota
	stPausing
	stFinishing
)

// coRun is the mutable state of one distributed run.
type coRun struct {
	co     *Coordinator
	s      *sched.Schedule
	flat   *graph.Flat
	id     string
	peers  []*peer
	peerOf []int // pe -> worker index
	dead   []bool
	epoch  int64
	state  int
	events chan coEvent
	start  time.Time
	extra  []trace.Event // coordinator-side trace events
	cancel context.CancelFunc
}

// Run executes schedule s distributed over the coordinator's workers
// and returns a result equivalent to Runner.Run's.
func (co *Coordinator) Run(ctx context.Context, s *sched.Schedule, flat *graph.Flat) (*exec.Result, error) {
	if co.Transport == nil {
		return nil, fmt.Errorf("wire: coordinator needs a transport")
	}
	if len(co.Addrs) == 0 {
		return nil, fmt.Errorf("wire: coordinator needs at least one worker address")
	}
	if co.Runner == nil {
		return nil, fmt.Errorf("wire: coordinator needs a runner for options and inputs")
	}
	if s == nil || s.Machine == nil {
		return nil, fmt.Errorf("wire: nil schedule")
	}
	s.Finalize()
	numPE := s.Machine.NumPE()
	blocks := Partition(numPE, len(co.Addrs))
	if len(blocks) < len(co.Addrs) {
		co.logf("machine has %d processors; using %d of %d workers", numPE, len(blocks), len(co.Addrs))
	}

	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	r := &coRun{
		co: co, s: s, flat: flat,
		id:     fmt.Sprintf("%s-%d", s.Algorithm, time.Now().UnixNano()),
		peerOf: make([]int, numPE),
		dead:   make([]bool, numPE),
		events: make(chan coEvent, 256),
		start:  time.Now(),
		cancel: cancel,
	}
	for i, block := range blocks {
		p := &peer{i: i, addr: co.Addrs[i], pes: block, lastHeard: time.Now()}
		r.peers = append(r.peers, p)
		for _, pe := range block {
			r.peerOf[pe] = i
		}
	}

	res, err := r.run(ctx)
	if err != nil {
		return nil, err
	}
	return res, nil
}

// now is the coordinator event timestamp: microseconds since run start.
func (r *coRun) now() machine.Time {
	return machine.Time(time.Since(r.start) / time.Microsecond)
}

// run connects, starts, and drives the central loop to completion.
func (r *coRun) run(ctx context.Context) (*exec.Result, error) {
	defer func() {
		for _, p := range r.peers {
			if p.redial != nil {
				p.redial()
			}
			p.link.Close()
		}
	}()

	if err := r.connectAll(ctx); err != nil {
		return nil, err
	}
	if err := r.startAll(); err != nil {
		return nil, err
	}

	hb := time.NewTicker(r.co.heartbeatEvery())
	defer hb.Stop()
	for {
		select {
		case <-ctx.Done():
			r.broadcast(TError, encJSON(ErrorNote{Msg: "run cancelled by coordinator"}))
			return nil, fmt.Errorf("wire: run cancelled: %w", ctx.Err())
		case <-hb.C:
			if err := r.heartbeat(); err != nil {
				return nil, err
			}
		case ev := <-r.events:
			p := r.peers[ev.i]
			switch {
			case p.lost:
				// Late traffic from a declared-dead worker: ignore.
			case ev.conn != nil:
				p.redial = nil
				if err := p.link.Reattach(ev.conn, ev.rcvd); err != nil {
					p.link.Detach()
					r.redialPeer(ctx, p)
					continue
				}
				p.lastHeard = time.Now()
				r.extra = append(r.extra, trace.Event{Kind: trace.PeerConnected, At: r.now(), Peer: p.i, Note: "reconnect"})
				r.co.logf("worker %d (%s) reconnected", p.i, p.addr)
				r.startReader(ctx, p)
			case ev.err != nil:
				// Connection broke: keep the run alive and redial until
				// the heartbeat budget declares the worker dead.
				p.link.Detach()
				r.redialPeer(ctx, p)
			default:
				p.lastHeard = time.Now()
				done, res, err := r.handleFrame(p, ev.f)
				if err != nil || done {
					return res, err
				}
			}
		}
	}
}

// connectAll dials and handshakes every worker.
func (r *coRun) connectAll(ctx context.Context) error {
	dctx, cancel := context.WithTimeout(ctx, r.co.connectTimeout())
	defer cancel()
	type dialRes struct {
		i    int
		conn Conn
		err  error
	}
	ch := make(chan dialRes, len(r.peers))
	for _, p := range r.peers {
		go func(p *peer) {
			c, err := dialBackoff(dctx, r.co.Transport, p.addr, 0, 0)
			if err == nil {
				err = handshake(c, Hello{Proto: ProtoVersion, Run: r.id})
				if err != nil {
					c.Close()
					c = nil
				}
			}
			ch <- dialRes{i: p.i, conn: c, err: err}
		}(p)
	}
	var firstErr error
	for range r.peers {
		dr := <-ch
		if dr.err != nil {
			if firstErr == nil {
				firstErr = fmt.Errorf("wire: worker %d (%s): %w", dr.i, r.peers[dr.i].addr, dr.err)
			}
			continue
		}
		p := r.peers[dr.i]
		p.link = NewLink(dr.conn)
		p.lastHeard = time.Now()
	}
	if firstErr != nil {
		for _, p := range r.peers {
			if p.link != nil {
				p.link.Close()
			}
		}
		return firstErr
	}
	for _, p := range r.peers {
		r.extra = append(r.extra, trace.Event{Kind: trace.PeerConnected, At: r.now(), Peer: p.i, Note: p.addr})
		r.startReader(ctx, p)
	}
	return nil
}

// handshake sends Hello and expects a Welcome on a fresh connection.
func handshake(c Conn, h Hello) error {
	if err := c.WriteFrame(Frame{Type: THello, Payload: encJSON(h)}); err != nil {
		return err
	}
	f, err := c.ReadFrame()
	if err != nil {
		return err
	}
	switch f.Type {
	case TWelcome:
		w, err := decJSON[Welcome](f.Payload, "welcome")
		if err != nil {
			return err
		}
		if w.Proto != ProtoVersion {
			return fmt.Errorf("wire: worker speaks protocol %d, need %d", w.Proto, ProtoVersion)
		}
		return nil
	case TError:
		n, _ := decJSON[ErrorNote](f.Payload, "error")
		return fmt.Errorf("wire: worker rejected handshake: %s", n.Msg)
	default:
		return fmt.Errorf("wire: expected welcome, got %s", f.Type)
	}
}

// reHandshake performs the reconnect handshake and returns the worker's
// receive watermark for outbox replay.
func reHandshake(c Conn, h Hello) (uint64, error) {
	if err := c.WriteFrame(Frame{Type: THello, Payload: encJSON(h)}); err != nil {
		return 0, err
	}
	f, err := c.ReadFrame()
	if err != nil {
		return 0, err
	}
	if f.Type != TWelcome {
		return 0, fmt.Errorf("wire: expected welcome, got %s", f.Type)
	}
	w, err := decJSON[Welcome](f.Payload, "welcome")
	if err != nil {
		return 0, err
	}
	return w.Rcvd, nil
}

// startReader pumps frames from the peer's current connection into the
// central loop.
func (r *coRun) startReader(ctx context.Context, p *peer) {
	c := p.link.Conn()
	go func() {
		for {
			f, err := c.ReadFrame()
			if err != nil {
				select {
				case r.events <- coEvent{i: p.i, err: err}:
				case <-ctx.Done():
				}
				return
			}
			select {
			case r.events <- coEvent{i: p.i, f: f}:
			case <-ctx.Done():
				return
			}
		}
	}()
}

// redialPeer reconnects to a worker in the background. The attempt is
// bounded by the peer timeout: past it the heartbeat check declares the
// worker lost and cancels the attempt.
func (r *coRun) redialPeer(ctx context.Context, p *peer) {
	if p.redial != nil {
		return // already dialing
	}
	rctx, cancel := context.WithTimeout(ctx, r.co.peerTimeout())
	p.redial = cancel
	hello := Hello{Proto: ProtoVersion, Run: r.id, Rcvd: p.link.Rcvd()}
	r.co.logf("worker %d (%s) connection lost; redialing", p.i, p.addr)
	go func() {
		defer cancel()
		for rctx.Err() == nil {
			c, err := dialBackoff(rctx, r.co.Transport, p.addr, 0, 0)
			if err != nil {
				return
			}
			rcvd, err := reHandshake(c, hello)
			if err != nil {
				c.Close()
				continue
			}
			select {
			case r.events <- coEvent{i: p.i, conn: c, rcvd: rcvd}:
			case <-rctx.Done():
				c.Close()
			}
			return
		}
	}()
}

// startAll ships every worker its start bundle.
func (r *coRun) startAll() error {
	schedJSON, err := r.s.MarshalJSON()
	if err != nil {
		return fmt.Errorf("wire: marshal schedule: %w", err)
	}
	inputs, err := EncodeEnv(r.co.Runner.Inputs)
	if err != nil {
		return fmt.Errorf("wire: encode inputs: %w", err)
	}
	numPE := r.s.Machine.NumPE()
	for _, p := range r.peers {
		hosted := make([]bool, numPE)
		for _, pe := range p.pes {
			hosted[pe] = true
		}
		bundle := StartBundle{
			Run: r.id, Worker: p.i, Workers: len(r.peers),
			Hosted: hosted, Schedule: schedJSON,
			ExternalIn: r.flat.ExternalIn, ExternalOut: r.flat.ExternalOut,
			Inputs: inputs, Opts: OptsFor(r.co.Runner),
			HeartbeatEvery: int64(r.co.heartbeatEvery()), PeerTimeout: int64(r.co.peerTimeout()),
		}
		if err := p.link.Send(TStart, encJSON(bundle)); err != nil {
			return fmt.Errorf("wire: starting worker %d: %w", p.i, err)
		}
	}
	return nil
}

// broadcast sends a sequenced frame to every non-lost worker.
func (r *coRun) broadcast(t Type, payload []byte) {
	for _, p := range r.peers {
		if !p.lost {
			p.link.Send(t, payload)
		}
	}
}

// heartbeat keeps attached links warm and declares silent workers dead.
func (r *coRun) heartbeat() error {
	now := time.Now()
	for _, p := range r.peers {
		if p.lost {
			continue
		}
		if p.link.Conn() != nil {
			p.link.SendRaw(Frame{Type: THeartbeat, Payload: encU64(0)})
		}
		if now.Sub(p.lastHeard) > r.co.peerTimeout() {
			if err := r.peerLost(p); err != nil {
				return err
			}
		}
	}
	return nil
}

// peerLost declares a worker process dead: its processors join the dead
// set and the run recovers onto the survivors, exactly as if every
// processor it hosted had crashed.
func (r *coRun) peerLost(p *peer) error {
	p.lost = true
	if p.redial != nil {
		p.redial()
		p.redial = nil
	}
	p.link.Close()
	r.extra = append(r.extra, trace.Event{Kind: trace.PeerLost, At: r.now(), Peer: p.i, Note: "heartbeat lost"})
	r.co.logf("worker %d (%s) declared dead: no traffic for %v", p.i, p.addr, r.co.peerTimeout())
	for _, pe := range p.pes {
		r.dead[pe] = true
	}
	if r.allDead() {
		return fmt.Errorf("exec: all processors crashed")
	}
	switch r.state {
	case stPausing:
		// It was being waited on at the barrier: stop waiting.
		return r.checkParked()
	case stFinishing:
		// Its partial result is unrecoverable after the sessions
		// finished: the run cannot complete.
		return fmt.Errorf("wire: worker %d lost while collecting results", p.i)
	default:
		return r.startPause()
	}
}

func (r *coRun) allDead() bool {
	for _, d := range r.dead {
		if !d {
			return false
		}
	}
	return true
}

// handleFrame processes one frame from peer p. A non-nil result or
// error ends the run.
func (r *coRun) handleFrame(p *peer, f Frame) (bool, *exec.Result, error) {
	if !p.link.Accept(f) {
		p.link.SendRaw(Frame{Type: TAck, Payload: encU64(p.link.Rcvd())})
		return false, nil, nil
	}
	if f.Wid != 0 {
		defer p.link.SendRaw(Frame{Type: TAck, Payload: encU64(p.link.Rcvd())})
	}
	switch f.Type {
	case TData:
		dest, err := MsgDest(f.Payload)
		if err != nil {
			return false, nil, err
		}
		if dest < 0 || dest >= len(r.peerOf) {
			return false, nil, fmt.Errorf("wire: data frame for unknown processor %d", dest)
		}
		q := r.peers[r.peerOf[dest]]
		if q.lost {
			// The consumer's worker is gone; recovery will replan the
			// consumer, so the message can drop.
			return false, nil, nil
		}
		return false, nil, q.link.Send(TData, f.Payload)
	case TIdle:
		if r.state == stRunning {
			p.idle = true
			if err := r.checkAllIdle(); err != nil {
				return false, nil, err
			}
		}
		return false, nil, nil
	case TCrash:
		note, err := decJSON[CrashNote](f.Payload, "crash")
		if err != nil {
			return false, nil, err
		}
		return false, nil, r.handleCrash(note.PE)
	case TParked:
		note, err := decJSON[ParkedNote](f.Payload, "parked")
		if err != nil {
			return false, nil, err
		}
		if r.state != stPausing {
			return false, nil, fmt.Errorf("wire: worker %d parked outside a pause", p.i)
		}
		p.parked = &note
		for _, pe := range note.Dead {
			if pe >= 0 && pe < len(r.dead) {
				r.dead[pe] = true
			}
		}
		if r.allDead() {
			return false, nil, fmt.Errorf("exec: all processors crashed")
		}
		return false, nil, r.checkParked()
	case TResult:
		note, err := decJSON[ResultNote](f.Payload, "result")
		if err != nil {
			return false, nil, err
		}
		p.result = &note
		return r.checkAllResults()
	case TError:
		note, _ := decJSON[ErrorNote](f.Payload, "error")
		return false, nil, fmt.Errorf("%s", note.Msg)
	case TAck:
		wid, err := decU64(f.Payload)
		if err != nil {
			return false, nil, err
		}
		p.link.Acked(wid)
		return false, nil, nil
	case THeartbeat, TPong:
		return false, nil, nil
	default:
		return false, nil, fmt.Errorf("wire: unexpected %s frame from worker %d", f.Type, p.i)
	}
}

// handleCrash starts (or folds into) a recovery after a processor
// crash.
func (r *coRun) handleCrash(pe int) error {
	if pe < 0 || pe >= len(r.dead) {
		return fmt.Errorf("wire: crash report for unknown processor %d", pe)
	}
	if r.dead[pe] {
		return nil
	}
	r.dead[pe] = true
	if r.allDead() {
		return fmt.Errorf("exec: all processors crashed")
	}
	if r.state == stPausing {
		// The pause barrier is already forming; the crash folds into
		// the plan when the parked states arrive.
		return nil
	}
	return r.startPause()
}

// startPause orders every surviving worker to the recovery barrier.
func (r *coRun) startPause() error {
	r.state = stPausing
	for _, p := range r.peers {
		if !p.lost {
			p.parked = nil
			p.link.Send(TPause, nil)
		}
	}
	return r.checkParked()
}

// checkParked completes the recovery once every surviving worker is at
// the barrier.
func (r *coRun) checkParked() error {
	for _, p := range r.peers {
		if !p.lost && p.parked == nil {
			return nil
		}
	}
	return r.finishRecovery()
}

// finishRecovery merges the parked states, replans the lost work with
// sched.Recover, and releases the workers into the next era.
func (r *coRun) finishRecovery() error {
	// Surviving task results: ascending worker order; each worker
	// already picked its lowest local holder, and worker blocks are
	// ascending, so first-wins attributes every task to its lowest
	// live holder globally — the same deterministic choice the
	// single-process runner makes.
	doneTasks := map[graph.NodeID]int{}
	held := map[string]bool{}
	var clock machine.Time
	for _, p := range r.peers {
		if p.lost {
			continue
		}
		for t, pe := range p.parked.Done {
			if _, ok := doneTasks[t]; !ok && !r.dead[pe] {
				doneTasks[t] = pe
			}
		}
		for _, q := range p.parked.Held {
			held[q] = true
		}
		if p.parked.Clock > clock {
			clock = p.parked.Clock
		}
	}
	liveMask := make([]bool, len(r.dead))
	for pe, d := range r.dead {
		liveMask[pe] = !d
	}
	plan, err := sched.Recover(r.s, sched.RecoverState{Live: liveMask, Done: doneTasks})
	if err != nil {
		return fmt.Errorf("exec: crash recovery failed: %w", err)
	}

	// Orphaned external outputs: a surviving task result whose
	// exporting copy died re-exports from its holder.
	tasks := make([]graph.NodeID, 0, len(doneTasks))
	for t := range doneTasks {
		tasks = append(tasks, t)
	}
	sort.Slice(tasks, func(i, j int) bool { return tasks[i] < tasks[j] })
	var adopt []exec.Adoption
	for _, t := range tasks {
		for _, v := range r.flat.ExternalOut[t] {
			if !held[string(t)+"."+v] {
				adopt = append(adopt, exec.Adoption{Task: t, Var: v, PE: doneTasks[t]})
			}
		}
	}

	at := r.now()
	if r.co.Runner.VirtualTime {
		at = clock
	}
	for _, sl := range plan.Slots {
		orig := sl.PE
		if ps, ok := r.s.PrimarySlot(sl.Task); ok {
			orig = ps.PE
		}
		r.extra = append(r.extra, trace.Event{Kind: trace.TaskRescheduled, At: at,
			Task: sl.Task, PE: sl.PE, Peer: orig, Note: "recovery"})
	}

	r.epoch++
	note := ResumeNote{Epoch: r.epoch, Slots: plan.Slots, Msgs: plan.Msgs,
		Done: doneTasks, Dead: append([]bool(nil), r.dead...), Adopt: adopt}
	r.co.logf("recovery: %d tasks replanned onto survivors (epoch %d)", len(plan.Moved), r.epoch)
	payload := encJSON(note)
	for _, p := range r.peers {
		if !p.lost {
			p.idle = false
			p.link.Send(TResume, payload)
		}
	}
	r.state = stRunning
	return nil
}

// checkAllIdle finishes the run once every surviving worker reports its
// hosted processors idle.
func (r *coRun) checkAllIdle() error {
	for _, p := range r.peers {
		if !p.lost && !p.idle {
			return nil
		}
	}
	r.state = stFinishing
	r.broadcast(TFinish, nil)
	return nil
}

// checkAllResults assembles the final result once every surviving
// worker delivered its partial.
func (r *coRun) checkAllResults() (bool, *exec.Result, error) {
	for _, p := range r.peers {
		if !p.lost && p.result == nil {
			return false, nil, nil
		}
	}
	var partials []*exec.Partial
	for _, p := range r.peers {
		if p.lost {
			continue
		}
		outputs, err := DecodeEnv(p.result.Outputs)
		if err != nil {
			return false, nil, fmt.Errorf("wire: worker %d result: %w", p.i, err)
		}
		partials = append(partials, &exec.Partial{
			Outputs: outputs, Exports: p.result.Exports,
			Printed: p.result.Printed, Events: p.result.Events,
		})
	}
	outputs, printed, err := exec.MergePartials(partials...)
	if err != nil {
		return false, nil, err
	}

	r.broadcast(TBye, nil)
	tr := &trace.Trace{Label: "run:" + r.s.Algorithm}
	for _, p := range partials {
		tr.Events = append(tr.Events, p.Events...)
	}
	at := r.now()
	for _, p := range r.peers {
		in, out := p.link.Stats()
		r.extra = append(r.extra, trace.Event{Kind: trace.WireBytes, At: at,
			Peer: p.i, Bytes: in + out, Note: p.addr})
	}
	tr.Events = append(tr.Events, r.extra...)
	tr.Sort()
	return true, &exec.Result{Outputs: outputs, Printed: printed, Trace: tr,
		Elapsed: time.Since(r.start)}, nil
}

// Calibrate measures round-trip latency to the first worker with empty
// and 4096-word ping payloads and derives a machine.Calibration
// (message startup cost and per-word transfer time): the paper's
// machine-model parameters measured from the actual wire.
func (co *Coordinator) Calibrate(ctx context.Context, probes int) (machine.Calibration, error) {
	if probes <= 0 {
		probes = 8
	}
	var cal machine.Calibration
	if len(co.Addrs) == 0 {
		return cal, fmt.Errorf("wire: no worker address to calibrate against")
	}
	dctx, cancel := context.WithTimeout(ctx, co.connectTimeout())
	defer cancel()
	c, err := dialBackoff(dctx, co.Transport, co.Addrs[0], 0, 0)
	if err != nil {
		return cal, err
	}
	defer c.Close()
	if err := handshake(c, Hello{Proto: ProtoVersion}); err != nil {
		return cal, err
	}

	const words = 4096
	small, err := minRTT(c, probes, nil)
	if err != nil {
		return cal, err
	}
	large, err := minRTT(c, probes, make([]byte, words*8))
	if err != nil {
		return cal, err
	}
	c.WriteFrame(Frame{Type: TBye, Wid: 1})

	// One-way cost is half the round trip; the model's units are
	// microseconds (per message, and per 8-byte word).
	cal.MsgStartup = machine.Time(small / 2 / time.Microsecond)
	if large > small {
		cal.WordTime = machine.Time((large - small) / 2 / words / time.Microsecond)
	}
	if cal.MsgStartup == 0 && cal.WordTime == 0 {
		// A wire faster than the model's microsecond resolution (the
		// in-memory transport, typically) still costs one tick.
		cal.MsgStartup = 1
	}
	return cal, nil
}

// minRTT measures the fastest of n ping round trips with the given
// payload.
func minRTT(c Conn, n int, payload []byte) (time.Duration, error) {
	best := time.Duration(0)
	for i := 0; i < n; i++ {
		t0 := time.Now()
		if err := c.WriteFrame(Frame{Type: TPing, Payload: payload}); err != nil {
			return 0, err
		}
		for {
			f, err := c.ReadFrame()
			if err != nil {
				return 0, err
			}
			if f.Type == TPong {
				break
			}
			// Heartbeats and acks interleave with pongs; skip them.
		}
		if rtt := time.Since(t0); best == 0 || rtt < best {
			best = rtt
		}
	}
	return best, nil
}
