package wire

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/exec"
	"repro/internal/graph"
	"repro/internal/machine"
	"repro/internal/pits"
	"repro/internal/sched"
	"repro/internal/trace"
)

// Coordinator drives a distributed run: it partitions the machine's
// processors over worker daemons in contiguous blocks, ships each its
// share of the schedule, relays cross-worker messages (star topology:
// every inter-process message passes through the coordinator, which
// routes Data frames by their destination processor without decoding
// them), and arbitrates recovery when a processor crashes or a whole
// worker process dies.
type Coordinator struct {
	Transport Transport
	Addrs     []string
	// Runner supplies the run options every worker reproduces (faults,
	// retry, grace, watchdogs, virtual time) and the run inputs.
	Runner *exec.Runner

	// HeartbeatEvery is the keepalive cadence (default 250ms);
	// PeerTimeout the silence budget after which a worker is declared
	// dead (default 3s); ConnectTimeout bounds the initial dials
	// (default 10s).
	HeartbeatEvery time.Duration
	PeerTimeout    time.Duration
	ConnectTimeout time.Duration

	// Mesh ships the worker address map in the start bundle so workers
	// dial each other and exchange data frames point-to-point instead
	// of relaying them through the coordinator. The coordinator still
	// arbitrates membership, heartbeats and recovery barriers, and
	// remains the routing fallback while a mesh link is down.
	Mesh bool
	// Control is an optional listen address for fleet-elasticity
	// commands: workers announce themselves with Join to enter a run in
	// flight, and `banger drain` asks for a graceful evacuation with
	// Drain. Empty disables the control listener.
	Control string
	// MinWorkers is the smallest live fleet a drain may leave behind
	// (0 means 1: the run must always keep at least one worker).
	MinWorkers int
	// ControlReady, when set, is called once with the control listener's
	// bound address, so a Control of "host:0" remains reachable.
	ControlReady func(addr string)
	// FlushEvery is the frame-coalescing window shipped to workers
	// (default 200µs): small data frames batch per peer until a slot
	// boundary, an idle/pause barrier, or this much time passes.
	FlushEvery time.Duration
	// MaxOutbox caps unacked frames per link (0 = DefaultMaxOutbox); a
	// link past the cap fails cleanly instead of queueing unboundedly.
	MaxOutbox int

	Logf func(format string, args ...any)

	// Single-entry schedule-encoding memo (see encodedSchedule).
	encMu  sync.Mutex
	encFor *sched.Schedule
	encBin []byte

	// The run in flight installs its event channel here so
	// SubmitJoin/SubmitDrain can reach it from outside (the fleet's
	// always-up control plane forwards joins and drains this way).
	ctlMu   sync.Mutex
	ctlCh   chan coEvent
	ctlDone chan struct{}
}

// runSeq makes run IDs collision-proof within a process: concurrent
// runs of the same algorithm can start in the same nanosecond, and the
// run ID is the key every worker daemon routes by.
var runSeq atomic.Uint64

// encodedSchedule memoizes EncodeSchedule for the last schedule seen:
// repeated runs of one design (benchmarks, parameter sweeps) re-ship
// identical bytes without re-interning every string. Sound because a
// schedule is immutable once Finalize has run.
func (co *Coordinator) encodedSchedule(s *sched.Schedule) ([]byte, error) {
	co.encMu.Lock()
	defer co.encMu.Unlock()
	if co.encFor == s && co.encBin != nil {
		return co.encBin, nil
	}
	b, err := EncodeSchedule(s)
	if err != nil {
		return nil, err
	}
	co.encFor, co.encBin = s, b
	return b, nil
}

func (co *Coordinator) logf(format string, args ...any) {
	if co.Logf != nil {
		co.Logf(format, args...)
	}
}

func (co *Coordinator) heartbeatEvery() time.Duration {
	if co.HeartbeatEvery > 0 {
		return co.HeartbeatEvery
	}
	return 250 * time.Millisecond
}

func (co *Coordinator) peerTimeout() time.Duration {
	if co.PeerTimeout > 0 {
		return co.PeerTimeout
	}
	return 3 * time.Second
}

func (co *Coordinator) connectTimeout() time.Duration {
	if co.ConnectTimeout > 0 {
		return co.ConnectTimeout
	}
	return 10 * time.Second
}

func (co *Coordinator) flushEvery() time.Duration {
	if co.FlushEvery > 0 {
		return co.FlushEvery
	}
	return defaultFlushEvery
}

// Partition splits numPE processors over workers contiguous blocks
// (worker 0 gets the lowest processors). The coordinator places with
// sched.Place — traffic-aware, never worse than contiguous — but the
// contiguous split remains the quota shape and the comparison
// baseline.
func Partition(numPE, workers int) [][]int {
	if workers > numPE {
		workers = numPE
	}
	blocks := make([][]int, workers)
	base, rem := numPE/workers, numPE%workers
	pe := 0
	for i := range blocks {
		n := base
		if i < rem {
			n++
		}
		for j := 0; j < n; j++ {
			blocks[i] = append(blocks[i], pe)
			pe++
		}
	}
	return blocks
}

// peer is the coordinator's view of one worker process.
type peer struct {
	i    int
	addr string
	link *Link
	pes  []int

	idle      bool
	lost      bool
	pending   bool // joined mid-run, not yet integrated at a barrier
	drained   bool // departed gracefully; state handed over
	parked    *ParkedNote
	result    *ResultNote
	lastHeard time.Time
	redial    context.CancelFunc // non-nil while a reconnect is in flight
	ackDue    bool               // a batched cumulative ack is owed (run loop only)

	// Drain checkpoint, decoded off the target's Parked envelope.
	ckptLocal  map[graph.NodeID]pits.Env
	ckptEvents []trace.Event
}

// active reports whether the peer takes part in the run protocol:
// lost and drained peers are out, pending joiners are not yet in.
func (p *peer) active() bool { return !p.lost && !p.drained && !p.pending }

// ctlReply carries a fleet-elasticity verdict back to whoever asked:
// welcome means accepted/completed, reject names the reason. The two
// implementations answer a control connection (the coordinator's own
// listener) or resolve an in-process request (a fleet-forwarded
// SubmitJoin/SubmitDrain).
type ctlReply interface {
	welcome()
	reject(msg string)
}

// connReply answers a control connection and closes it.
type connReply struct{ c Conn }

func (r connReply) welcome() {
	r.c.WriteFrame(Frame{Type: TWelcome, Payload: encJSON(Welcome{Proto: ProtoVersion})})
	r.c.Close()
}

func (r connReply) reject(msg string) { rejectConn(r.c, msg) }

// chanReply resolves an in-process control request. Buffered (cap 1)
// so the central loop never blocks delivering the verdict.
type chanReply chan error

func (r chanReply) welcome()          { r <- nil }
func (r chanReply) reject(msg string) { r <- errors.New(msg) }

// ctlReq is one fleet-elasticity request entering the central loop
// from the control listener (join announce, drain order), from a
// fleet-forwarded submission, or from the join dial goroutine (the
// dialed worker connection).
type ctlReq struct {
	join   *JoinNote
	drain  *DrainNote
	dialed Conn  // join phase 2: the handshaken worker connection
	err    error // join phase 2: dial failure
	addr   string
	reply  ctlReply // awaiting the outcome
}

// coEvent is one occurrence on the coordinator's central loop: a frame
// from peer i, a connection error, a successful reconnect, or a
// control request.
type coEvent struct {
	i    int
	f    Frame
	err  error
	conn Conn   // reattach: fresh connection
	rcvd uint64 // reattach: worker's receive watermark
	ctl  *ctlReq
}

// run states of the coordinator loop.
const (
	stRunning = iota
	stPausing
	stFinishing
)

// coRun is the mutable state of one distributed run.
type coRun struct {
	co     *Coordinator
	s      *sched.Schedule
	flat   *graph.Flat
	id     string
	peers  []*peer
	addrs  []string // worker listen addresses by index (grows on join)
	peerOf []int    // pe -> worker index
	dead   []bool
	epoch  int64
	state  int
	events chan coEvent
	start  time.Time
	extra  []trace.Event // coordinator-side trace events
	ctx    context.Context
	cancel context.CancelFunc

	// Fleet elasticity: at most one join or drain is in flight at a
	// time; crashes fold into whatever barrier is already forming.
	draining   *peer           // drain target awaiting the barrier
	drainReply ctlReply        // requester awaiting the drain outcome
	joinAddr   string          // join announce being dialed (phase 1->2)
	joining    *peer           // pending joiner awaiting integration
	joinReply  ctlReply        // requester awaiting the join outcome
	saved      []*exec.Partial // drained workers' print/trace contributions
}

// liveWorkers counts peers still taking part in the run.
func (r *coRun) liveWorkers() int {
	n := 0
	for _, p := range r.peers {
		if p.active() {
			n++
		}
	}
	return n
}

// Run executes schedule s distributed over the coordinator's workers
// and returns a result equivalent to Runner.Run's.
func (co *Coordinator) Run(ctx context.Context, s *sched.Schedule, flat *graph.Flat) (*exec.Result, error) {
	if co.Transport == nil {
		return nil, fmt.Errorf("wire: coordinator needs a transport")
	}
	if len(co.Addrs) == 0 {
		return nil, fmt.Errorf("wire: coordinator needs at least one worker address")
	}
	if co.Runner == nil {
		return nil, fmt.Errorf("wire: coordinator needs a runner for options and inputs")
	}
	if s == nil || s.Machine == nil {
		return nil, fmt.Errorf("wire: nil schedule")
	}
	s.Finalize()
	numPE := s.Machine.NumPE()
	workers := len(co.Addrs)
	if workers > numPE {
		workers = numPE
		co.logf("machine has %d processors; using %d of %d workers", numPE, workers, len(co.Addrs))
	}
	// Traffic-aware placement: same per-worker quotas as the contiguous
	// Partition, but grouped to minimize cross-worker bytes (and never
	// worse than contiguous; see sched.Place).
	peerOf := sched.Place(s, workers)
	blocks := make([][]int, workers)
	for pe, w := range peerOf {
		blocks[w] = append(blocks[w], pe)
	}

	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	r := &coRun{
		co: co, s: s, flat: flat,
		id:     fmt.Sprintf("%s-%d-%d", s.Algorithm, time.Now().UnixNano(), runSeq.Add(1)),
		addrs:  append([]string(nil), co.Addrs[:workers]...),
		peerOf: peerOf,
		dead:   make([]bool, numPE),
		events: make(chan coEvent, 256),
		start:  time.Now(),
		cancel: cancel,
	}
	for i, block := range blocks {
		p := &peer{i: i, addr: co.Addrs[i], pes: block, lastHeard: time.Now()}
		r.peers = append(r.peers, p)
	}

	res, err := r.run(ctx)
	if err != nil {
		return nil, err
	}
	return res, nil
}

// now is the coordinator event timestamp: microseconds since run start.
func (r *coRun) now() machine.Time {
	return machine.Time(time.Since(r.start) / time.Microsecond)
}

// run connects, starts, and drives the central loop to completion.
func (r *coRun) run(ctx context.Context) (*exec.Result, error) {
	r.ctx = ctx
	// Expose the event channel for fleet-forwarded joins and drains;
	// ctlDone lets a submitter whose request never got processed stop
	// waiting when the run ends.
	done := make(chan struct{})
	r.co.ctlMu.Lock()
	r.co.ctlCh, r.co.ctlDone = r.events, done
	r.co.ctlMu.Unlock()
	defer func() {
		r.co.ctlMu.Lock()
		r.co.ctlCh, r.co.ctlDone = nil, nil
		r.co.ctlMu.Unlock()
		close(done)
		for _, p := range r.peers {
			if p.redial != nil {
				p.redial()
			}
			p.link.Close()
		}
		for _, rp := range []ctlReply{r.drainReply, r.joinReply} {
			if rp != nil {
				rp.reject("run ended before the fleet change completed")
			}
		}
	}()

	if err := r.connectAll(ctx); err != nil {
		return nil, err
	}
	if r.co.Control != "" {
		lis, err := r.co.Transport.Listen(r.co.Control)
		if err != nil {
			return nil, fmt.Errorf("wire: control listener: %w", err)
		}
		defer lis.Close()
		r.co.logf("control listening on %s", lis.Addr())
		if r.co.ControlReady != nil {
			r.co.ControlReady(lis.Addr())
		}
		go r.acceptControl(ctx, lis)
	}
	if err := r.startAll(); err != nil {
		return nil, err
	}

	hb := time.NewTicker(r.co.heartbeatEvery())
	defer hb.Stop()
	handled := 0
	for {
		select {
		case <-ctx.Done():
			r.broadcast(TError, encJSON(ErrorNote{Msg: "run cancelled by coordinator"}))
			return nil, fmt.Errorf("wire: run cancelled: %w", ctx.Err())
		case <-hb.C:
			r.flushAll()
			if err := r.heartbeat(); err != nil {
				return nil, err
			}
		case ev := <-r.events:
			if ev.ctl != nil {
				if err := r.handleControl(ctx, ev.ctl); err != nil {
					return nil, err
				}
				if handled++; len(r.events) == 0 || handled >= 64 {
					handled = 0
					r.flushAll()
				}
				continue
			}
			p := r.peers[ev.i]
			switch {
			case p.lost || p.drained:
				// Late traffic from a departed worker: ignore.
			case ev.conn != nil:
				p.redial = nil
				if err := p.link.Reattach(ev.conn, ev.rcvd); err != nil {
					p.link.Detach()
					r.redialPeer(ctx, p)
					continue
				}
				p.lastHeard = time.Now()
				r.extra = append(r.extra, trace.Event{Kind: trace.PeerConnected, At: r.now(), Peer: p.i, Note: "reconnect"})
				r.co.logf("worker %d (%s) reconnected", p.i, p.addr)
				r.startReader(ctx, p)
			case ev.err != nil:
				// Connection broke: keep the run alive and redial until
				// the heartbeat budget declares the worker dead.
				p.link.Detach()
				r.redialPeer(ctx, p)
			default:
				p.lastHeard = time.Now()
				done, res, err := r.handleFrame(p, ev.f)
				if err != nil || done {
					return res, err
				}
			}
			// Flush coalesced relays and batched acks when the inbound
			// queue drains (and periodically inside long bursts, so a
			// sender's outbox doesn't wait on a saturated loop).
			if handled++; len(r.events) == 0 || handled >= 64 {
				handled = 0
				r.flushAll()
			}
		}
	}
}

// flushAll drives every peer's coalescing buffer onto the wire, each
// carrying at most one batched cumulative ack.
func (r *coRun) flushAll() {
	for _, p := range r.peers {
		if p.lost || p.drained {
			continue
		}
		if p.ackDue && p.link.Conn() != nil {
			p.ackDue = false
			p.link.SendRawBuffered(Frame{Type: TAck, Payload: encU64(p.link.Rcvd())})
		}
		if err := p.link.Flush(); err != nil {
			r.breakConn(p, err)
		}
	}
}

// breakConn treats a write failure on an attached connection as a
// connection break: detach now and redial, instead of waiting for the
// reader goroutine to notice much later. Sequenced frames already sit
// in the link outbox and replay on reattach.
func (r *coRun) breakConn(p *peer, err error) {
	if p.lost || errors.Is(err, ErrLinkDetached) {
		return
	}
	r.co.logf("worker %d (%s) write failed (%v); reconnecting", p.i, p.addr, err)
	p.link.Detach()
	r.redialPeer(r.ctx, p)
}

// connectAll dials and handshakes every worker.
func (r *coRun) connectAll(ctx context.Context) error {
	dctx, cancel := context.WithTimeout(ctx, r.co.connectTimeout())
	defer cancel()
	type dialRes struct {
		i    int
		conn Conn
		err  error
	}
	ch := make(chan dialRes, len(r.peers))
	for _, p := range r.peers {
		go func(p *peer) {
			c, err := dialBackoff(dctx, r.co.Transport, p.addr, 0, 0)
			if err == nil {
				err = handshake(c, Hello{Proto: ProtoVersion, Run: r.id})
				if err != nil {
					c.Close()
					c = nil
				}
			}
			ch <- dialRes{i: p.i, conn: c, err: err}
		}(p)
	}
	var firstErr error
	for range r.peers {
		dr := <-ch
		if dr.err != nil {
			if firstErr == nil {
				firstErr = fmt.Errorf("wire: worker %d (%s): %w", dr.i, r.peers[dr.i].addr, dr.err)
			}
			continue
		}
		p := r.peers[dr.i]
		p.link = NewLink(dr.conn)
		p.link.SetMaxOutbox(r.co.MaxOutbox)
		p.lastHeard = time.Now()
	}
	if firstErr != nil {
		for _, p := range r.peers {
			if p.link != nil {
				p.link.Close()
			}
		}
		return firstErr
	}
	for _, p := range r.peers {
		r.extra = append(r.extra, trace.Event{Kind: trace.PeerConnected, At: r.now(), Peer: p.i, Note: p.addr})
		r.startReader(ctx, p)
	}
	return nil
}

// handshake sends Hello and expects a Welcome on a fresh connection.
func handshake(c Conn, h Hello) error {
	if err := c.WriteFrame(Frame{Type: THello, Payload: encJSON(h)}); err != nil {
		return err
	}
	f, err := c.ReadFrame()
	if err != nil {
		return err
	}
	switch f.Type {
	case TWelcome:
		w, err := decJSON[Welcome](f.Payload, "welcome")
		if err != nil {
			return err
		}
		if w.Proto != ProtoVersion {
			return fmt.Errorf("wire: worker speaks protocol %d, need %d", w.Proto, ProtoVersion)
		}
		return nil
	case TError:
		n, _ := decJSON[ErrorNote](f.Payload, "error")
		return fmt.Errorf("wire: worker rejected handshake: %s", n.Msg)
	default:
		return fmt.Errorf("wire: expected welcome, got %s", f.Type)
	}
}

// reHandshake performs the reconnect handshake and returns the worker's
// receive watermark for outbox replay.
func reHandshake(c Conn, h Hello) (uint64, error) {
	if err := c.WriteFrame(Frame{Type: THello, Payload: encJSON(h)}); err != nil {
		return 0, err
	}
	f, err := c.ReadFrame()
	if err != nil {
		return 0, err
	}
	if f.Type != TWelcome {
		return 0, fmt.Errorf("wire: expected welcome, got %s", f.Type)
	}
	w, err := decJSON[Welcome](f.Payload, "welcome")
	if err != nil {
		return 0, err
	}
	return w.Rcvd, nil
}

// startReader pumps frames from the peer's current connection into the
// central loop.
func (r *coRun) startReader(ctx context.Context, p *peer) {
	c := p.link.Conn()
	go func() {
		for {
			f, err := c.ReadFrame()
			if err != nil {
				select {
				case r.events <- coEvent{i: p.i, err: err}:
				case <-ctx.Done():
				}
				return
			}
			select {
			case r.events <- coEvent{i: p.i, f: f}:
			case <-ctx.Done():
				return
			}
		}
	}()
}

// redialPeer reconnects to a worker in the background. The attempt is
// bounded by the peer timeout: past it the heartbeat check declares the
// worker lost and cancels the attempt.
func (r *coRun) redialPeer(ctx context.Context, p *peer) {
	if p.redial != nil {
		return // already dialing
	}
	rctx, cancel := context.WithTimeout(ctx, r.co.peerTimeout())
	p.redial = cancel
	hello := Hello{Proto: ProtoVersion, Run: r.id, Rcvd: p.link.Rcvd()}
	r.co.logf("worker %d (%s) connection lost; redialing", p.i, p.addr)
	go func() {
		defer cancel()
		for rctx.Err() == nil {
			c, err := dialBackoff(rctx, r.co.Transport, p.addr, 0, 0)
			if err != nil {
				return
			}
			rcvd, err := reHandshake(c, hello)
			if err != nil {
				c.Close()
				// Pace the retry: a listener that accepts but rejects
				// the handshake would otherwise be hammered in a spin.
				select {
				case <-time.After(50 * time.Millisecond):
				case <-rctx.Done():
					return
				}
				continue
			}
			select {
			case r.events <- coEvent{i: p.i, conn: c, rcvd: rcvd}:
			case <-rctx.Done():
				c.Close()
			}
			return
		}
	}()
}

// startAll ships every worker its start bundle.
func (r *coRun) startAll() error {
	schedBin, err := r.co.encodedSchedule(r.s)
	if err != nil {
		return fmt.Errorf("wire: encode schedule: %w", err)
	}
	inputs, err := EncodeEnv(r.co.Runner.Inputs)
	if err != nil {
		return fmt.Errorf("wire: encode inputs: %w", err)
	}
	numPE := r.s.Machine.NumPE()
	for _, p := range r.peers {
		hosted := make([]bool, numPE)
		for _, pe := range p.pes {
			hosted[pe] = true
		}
		// The schedule and inputs ride out of band: they dominate the
		// bundle and would otherwise be base64 inside the JSON.
		bundle := StartBundle{
			Run: r.id, Worker: p.i, Workers: len(r.peers),
			Hosted:     hosted,
			ExternalIn: r.flat.ExternalIn, ExternalOut: r.flat.ExternalOut,
			Opts:           OptsFor(r.co.Runner),
			HeartbeatEvery: int64(r.co.heartbeatEvery()), PeerTimeout: int64(r.co.peerTimeout()),
			FlushEvery: int64(r.co.flushEvery()),
		}
		if r.co.Mesh {
			bundle.Peers = append([]string(nil), r.addrs...)
			bundle.PeerOf = append([]int(nil), r.peerOf...)
		}
		if err := p.link.Send(TStart, encBlobEnvelope(encJSON(bundle), schedBin, inputs)); err != nil {
			return fmt.Errorf("wire: starting worker %d: %w", p.i, err)
		}
	}
	return nil
}

// broadcast sends a sequenced frame to every active worker. A write
// failure breaks the connection (the frame replays on reattach).
func (r *coRun) broadcast(t Type, payload []byte) {
	for _, p := range r.peers {
		if p.active() {
			if err := p.link.Send(t, payload); err != nil {
				r.breakConn(p, err)
			}
		}
	}
}

// heartbeat keeps attached links warm and declares silent workers dead
// (pending joiners included: their daemons time the coordinator out
// like any other, and a joiner dying mid-integration must be noticed).
func (r *coRun) heartbeat() error {
	now := time.Now()
	for _, p := range r.peers {
		if p.lost || p.drained {
			continue
		}
		if p.link.Conn() != nil {
			if err := p.link.SendRaw(Frame{Type: THeartbeat, Payload: encU64(0)}); err != nil {
				r.breakConn(p, err)
			}
		}
		if now.Sub(p.lastHeard) > r.co.peerTimeout() {
			if err := r.peerLost(p); err != nil {
				return err
			}
		}
	}
	return nil
}

// peerLost declares a worker process dead: its processors join the dead
// set and the run recovers onto the survivors, exactly as if every
// processor it hosted had crashed.
func (r *coRun) peerLost(p *peer) error {
	p.lost = true
	if p.redial != nil {
		p.redial()
		p.redial = nil
	}
	p.link.Close()
	r.extra = append(r.extra, trace.Event{Kind: trace.PeerLost, At: r.now(), Peer: p.i, Note: "heartbeat lost"})
	r.co.logf("worker %d (%s) declared dead: no traffic for %v", p.i, p.addr, r.co.peerTimeout())
	// A fleet change waiting on this worker degrades to a plain crash
	// recovery; the control connection learns why.
	if p == r.draining {
		r.draining = nil
		if r.drainReply != nil {
			r.drainReply.reject(fmt.Sprintf("worker %d crashed while draining; recovering instead", p.i))
			r.drainReply = nil
		}
	}
	if p == r.joining {
		r.joining = nil
		if r.joinReply != nil {
			r.joinReply.reject(fmt.Sprintf("joining worker %s died before integration", p.addr))
			r.joinReply = nil
		}
	}
	for _, pe := range p.pes {
		r.dead[pe] = true
	}
	if r.allDead() {
		return fmt.Errorf("exec: all processors crashed")
	}
	switch r.state {
	case stPausing:
		// It was being waited on at the barrier: stop waiting.
		return r.checkParked()
	case stFinishing:
		// Its partial result is unrecoverable after the sessions
		// finished: the run cannot complete.
		return fmt.Errorf("wire: worker %d lost while collecting results", p.i)
	default:
		return r.startPause()
	}
}

func (r *coRun) allDead() bool {
	for _, d := range r.dead {
		if !d {
			return false
		}
	}
	return true
}

// handleFrame processes one frame from peer p. A non-nil result or
// error ends the run.
func (r *coRun) handleFrame(p *peer, f Frame) (bool, *exec.Result, error) {
	if !p.link.Accept(f) {
		p.link.SendRaw(Frame{Type: TAck, Payload: encU64(p.link.Rcvd())})
		return false, nil, nil
	}
	if f.Wid != 0 {
		// Batched: the next flushAll sends one cumulative ack.
		p.ackDue = true
	}
	switch f.Type {
	case TData:
		dest, err := MsgDest(f.Payload)
		if err != nil {
			return false, nil, err
		}
		if dest < 0 || dest >= len(r.peerOf) {
			return false, nil, fmt.Errorf("wire: data frame for unknown processor %d", dest)
		}
		q := r.peers[r.peerOf[dest]]
		if q.lost || q.drained {
			// The consumer's worker is gone; recovery will replan the
			// consumer, so the message can drop.
			return false, nil, nil
		}
		if err := q.link.SendData(TData, f.Payload, false); err != nil {
			// The frame is in q's outbox and replays on reattach.
			r.breakConn(q, err)
		}
		return false, nil, nil
	case TIdle:
		if r.state == stRunning {
			p.idle = true
			if err := r.checkAllIdle(); err != nil {
				return false, nil, err
			}
		}
		return false, nil, nil
	case TCrash:
		note, err := decJSON[CrashNote](f.Payload, "crash")
		if err != nil {
			return false, nil, err
		}
		return false, nil, r.handleCrash(note.PE)
	case TParked:
		js, blobs, err := decBlobEnvelope(f.Payload)
		if err != nil {
			return false, nil, err
		}
		note, err := decJSON[ParkedNote](js, "parked")
		if err != nil {
			return false, nil, err
		}
		if len(blobs) >= 2 {
			// A drain target's checkpoint reply: env checkpoint and
			// trace events ride out of band.
			local, err := DecodeCheckpoint(blobs[0])
			if err != nil {
				return false, nil, fmt.Errorf("wire: worker %d checkpoint: %w", p.i, err)
			}
			events, err := DecodeEvents(blobs[1])
			if err != nil {
				return false, nil, fmt.Errorf("wire: worker %d checkpoint events: %w", p.i, err)
			}
			p.ckptLocal, p.ckptEvents = local, events
		}
		if r.state == stFinishing {
			// A stale barrier reply racing the finish decision (e.g. a
			// replayed frame after a reconnect): the sessions already
			// got Finish, so there is no barrier to fold it into.
			r.co.logf("worker %d parked while finishing; ignoring stale barrier reply", p.i)
			return false, nil, nil
		}
		if r.state != stPausing {
			return false, nil, fmt.Errorf("wire: worker %d parked outside a pause", p.i)
		}
		p.parked = &note
		for _, pe := range note.Dead {
			if pe >= 0 && pe < len(r.dead) {
				r.dead[pe] = true
			}
		}
		if r.allDead() {
			return false, nil, fmt.Errorf("exec: all processors crashed")
		}
		return false, nil, r.checkParked()
	case TResult:
		js, blobs, err := decBlobEnvelope(f.Payload)
		if err != nil {
			return false, nil, err
		}
		note, err := decJSON[ResultNote](js, "result")
		if err != nil {
			return false, nil, err
		}
		if len(blobs) >= 2 {
			note.Outputs, note.EventsBin = blobs[0], blobs[1]
		}
		p.result = &note
		return r.checkAllResults()
	case TError:
		note, _ := decJSON[ErrorNote](f.Payload, "error")
		return false, nil, fmt.Errorf("%s", note.Msg)
	case TAck:
		wid, err := decU64(f.Payload)
		if err != nil {
			return false, nil, err
		}
		p.link.Acked(wid)
		return false, nil, nil
	case THeartbeat, TPong:
		return false, nil, nil
	default:
		return false, nil, fmt.Errorf("wire: unexpected %s frame from worker %d", f.Type, p.i)
	}
}

// handleCrash starts (or folds into) a recovery after a processor
// crash.
func (r *coRun) handleCrash(pe int) error {
	if pe < 0 || pe >= len(r.dead) {
		return fmt.Errorf("wire: crash report for unknown processor %d", pe)
	}
	if r.dead[pe] {
		return nil
	}
	r.dead[pe] = true
	if r.allDead() {
		return fmt.Errorf("exec: all processors crashed")
	}
	switch r.state {
	case stPausing:
		// The pause barrier is already forming; the crash folds into
		// the plan when the parked states arrive.
		return nil
	case stFinishing:
		// The crash report raced the finish decision: every session
		// already received Finish, so a pause barrier could never
		// complete (the old fall-through to startPause hung here) and
		// the crashed processor's results are unrecoverable. Fail.
		return fmt.Errorf("wire: processor %d crashed while the run was finishing; its results are lost", pe)
	default:
		return r.startPause()
	}
}

// startPause orders every active worker to the recovery barrier. A
// drain target is asked to checkpoint: its Parked reply carries its
// full local state.
func (r *coRun) startPause() error {
	r.state = stPausing
	for _, p := range r.peers {
		if !p.active() {
			continue
		}
		p.parked = nil
		var payload []byte
		if p == r.draining {
			payload = encJSON(PauseNote{Checkpoint: true})
		}
		p.link.Send(TPause, payload)
	}
	return r.checkParked()
}

// checkParked completes the recovery once every active worker is at
// the barrier.
func (r *coRun) checkParked() error {
	for _, p := range r.peers {
		if p.active() && p.parked == nil {
			return nil
		}
	}
	return r.finishRecovery()
}

// finishRecovery merges the parked states, replans with sched.Replan,
// and releases the workers into the next era. It finalizes whatever
// fleet change rode the barrier: a crash recovery (shrink), a graceful
// drain (planned shrink with the target's state re-homed through
// imports), a mid-run join (expand: every dead processor revives on
// the joiner), or a crash folded into either.
func (r *coRun) finishRecovery() error {
	dr, jn := r.draining, r.joining
	r.draining, r.joining = nil, nil

	// The dead mask of the new era: a drain retires the target's
	// processors; a join revives every dead one onto the joiner.
	deadAfter := append([]bool(nil), r.dead...)
	if dr != nil {
		for _, pe := range dr.pes {
			deadAfter[pe] = true
		}
	}
	var revived []int
	if jn != nil {
		for pe, d := range r.dead {
			if d {
				deadAfter[pe] = false
				revived = append(revived, pe)
			}
		}
	}

	// Surviving task results: ascending worker order; each worker
	// already picked its lowest local holder, and first-wins attributes
	// every task to its lowest live holder globally — the same
	// deterministic choice the single-process runner makes. The drain
	// target is not a survivor: its results re-home through imports.
	doneTasks := map[graph.NodeID]int{}
	held := map[string]bool{}
	var clock machine.Time
	for _, p := range r.peers {
		if !p.active() || p == dr || p.parked == nil {
			continue
		}
		for t, pe := range p.parked.Done {
			if _, ok := doneTasks[t]; !ok && !deadAfter[pe] {
				doneTasks[t] = pe
			}
		}
		for _, q := range p.parked.Held {
			held[q] = true
		}
		if p.parked.Clock > clock {
			clock = p.parked.Clock
		}
	}

	// Drain: results only the target holds re-home onto live
	// processors round-robin (deterministic: sorted tasks, ascending
	// processors), each with the env checkpoint the target handed over.
	// Its held exports are deliberately NOT merged: the adoption pass
	// below re-exports them from the importing holder, so the departed
	// process contributes nothing the survivors cannot reproduce.
	var imports []exec.Import
	if dr != nil && dr.parked != nil {
		if dr.parked.Clock > clock {
			clock = dr.parked.Clock
		}
		var liveList []int
		for pe, d := range deadAfter {
			if !d {
				liveList = append(liveList, pe)
			}
		}
		orphans := make([]graph.NodeID, 0, len(dr.parked.Done))
		for t := range dr.parked.Done {
			if _, ok := doneTasks[t]; !ok {
				orphans = append(orphans, t)
			}
		}
		sort.Slice(orphans, func(i, j int) bool { return orphans[i] < orphans[j] })
		for k, t := range orphans {
			pe := liveList[k%len(liveList)]
			doneTasks[t] = pe
			imports = append(imports, exec.Import{Task: t, PE: pe, Env: dr.ckptLocal[t]})
		}
	}

	liveMask := make([]bool, len(deadAfter))
	for pe, d := range deadAfter {
		liveMask[pe] = !d
	}
	plan, err := sched.Replan(r.s, sched.ReplanState{Live: liveMask, Done: doneTasks})
	if err != nil {
		return fmt.Errorf("exec: crash recovery failed: %w", err)
	}

	// Orphaned external outputs: a surviving task result whose
	// exporting copy died (or departed) re-exports from its holder.
	tasks := make([]graph.NodeID, 0, len(doneTasks))
	for t := range doneTasks {
		tasks = append(tasks, t)
	}
	sort.Slice(tasks, func(i, j int) bool { return tasks[i] < tasks[j] })
	var adopt []exec.Adoption
	for _, t := range tasks {
		for _, v := range r.flat.ExternalOut[t] {
			if !held[string(t)+"."+v] {
				adopt = append(adopt, exec.Adoption{Task: t, Var: v, PE: doneTasks[t]})
			}
		}
	}

	at := r.now()
	if r.co.Runner.VirtualTime {
		at = clock
	}
	cause := "recovery"
	switch {
	case dr != nil:
		cause = "drain"
	case jn != nil:
		cause = "join"
	}
	for _, sl := range plan.Slots {
		orig := sl.PE
		if ps, ok := r.s.PrimarySlot(sl.Task); ok {
			orig = ps.PE
		}
		r.extra = append(r.extra, trace.Event{Kind: trace.TaskRescheduled, At: at,
			Task: sl.Task, PE: sl.PE, Peer: orig, Note: cause})
	}

	// Commit the membership change.
	r.dead = deadAfter
	if jn != nil {
		jn.pending = false
		jn.pes = revived
		for _, pe := range revived {
			r.peerOf[pe] = jn.i
		}
	}

	r.epoch++
	refs := make([]ImportRef, 0, len(imports))
	blobs := make([][]byte, 0, len(imports))
	for _, im := range imports {
		eb, err := EncodeEnv(im.Env)
		if err != nil {
			return fmt.Errorf("wire: encode drain import for task %s: %w", im.Task, err)
		}
		refs = append(refs, ImportRef{Task: im.Task, PE: im.PE})
		blobs = append(blobs, eb)
	}
	note := ResumeNote{Epoch: r.epoch, Slots: plan.Slots, Msgs: plan.Msgs,
		Done: doneTasks, Dead: append([]bool(nil), r.dead...), Adopt: adopt,
		Imports: refs}
	if jn != nil && r.co.Mesh {
		note.Peers = append([]string(nil), r.addrs...)
		note.PeerOf = append([]int(nil), r.peerOf...)
	}
	r.co.logf("%s: %d tasks replanned (epoch %d)", cause, len(plan.Moved), r.epoch)
	payload := encJSON(note)
	if len(blobs) > 0 {
		payload = encBlobEnvelope(encJSON(note), blobs...)
	}
	for _, p := range r.peers {
		if p.active() && p != dr && p != jn {
			p.idle = false
			p.link.Send(TResume, payload)
		}
	}

	if dr != nil {
		// The target departs with everything handed over: its print
		// lines and trace events join the saved partials, the goodbye
		// lets it (and, through its mesh goodbyes, its peers) tear down
		// immediately — no timeout anywhere.
		r.saved = append(r.saved, &exec.Partial{Printed: dr.parked.Printed,
			PrintedPE: dr.parked.PrintedPE, Events: dr.ckptEvents})
		dr.drained = true
		dr.idle = false
		dr.link.Send(TBye, nil)
		r.extra = append(r.extra, trace.Event{Kind: trace.WorkerDrained, At: at,
			Peer: dr.i, Note: dr.addr})
		r.co.logf("worker %d (%s) drained: %d results re-homed (epoch %d)", dr.i, dr.addr, len(imports), r.epoch)
		if r.drainReply != nil {
			r.drainReply.welcome()
			r.drainReply = nil
		}
	}
	if jn != nil {
		if err := r.startJoiner(jn, &note, clock); err != nil {
			return fmt.Errorf("wire: starting joined worker %d: %w", jn.i, err)
		}
		r.co.logf("worker %d (%s) joined: hosting %d revived processors (epoch %d)", jn.i, jn.addr, len(revived), r.epoch)
		if r.joinReply != nil {
			r.joinReply.welcome()
			r.joinReply = nil
		}
	}
	r.state = stRunning
	return nil
}

// startJoiner ships a joining worker its start bundle: the regular
// bundle plus the resume plan of the era it enters.
func (r *coRun) startJoiner(p *peer, note *ResumeNote, clock machine.Time) error {
	schedBin, err := r.co.encodedSchedule(r.s)
	if err != nil {
		return fmt.Errorf("encode schedule: %w", err)
	}
	inputs, err := EncodeEnv(r.co.Runner.Inputs)
	if err != nil {
		return fmt.Errorf("encode inputs: %w", err)
	}
	numPE := r.s.Machine.NumPE()
	hosted := make([]bool, numPE)
	for _, pe := range p.pes {
		hosted[pe] = true
	}
	plan := *note
	// Imports target survivor processors, never the joiner's fresh
	// ones; membership already rides the bundle's own Peers/PeerOf.
	plan.Imports, plan.Peers, plan.PeerOf = nil, nil, nil
	bundle := StartBundle{
		Run: r.id, Worker: p.i, Workers: len(r.peers),
		Hosted:     hosted,
		ExternalIn: r.flat.ExternalIn, ExternalOut: r.flat.ExternalOut,
		Opts:           OptsFor(r.co.Runner),
		HeartbeatEvery: int64(r.co.heartbeatEvery()), PeerTimeout: int64(r.co.peerTimeout()),
		FlushEvery: int64(r.co.flushEvery()),
		Plan:       &plan, Clock: clock,
	}
	if r.co.Mesh {
		bundle.Peers = append([]string(nil), r.addrs...)
		bundle.PeerOf = append([]int(nil), r.peerOf...)
	}
	return p.link.Send(TStart, encBlobEnvelope(encJSON(bundle), schedBin, inputs))
}

// handleControl processes one fleet-elasticity request on the central
// loop: a join announce (validate, then dial the worker off-loop), a
// completed join dial (integrate at a barrier), or a drain order.
func (r *coRun) handleControl(ctx context.Context, req *ctlReq) error {
	switch {
	case req.join != nil:
		return r.handleJoinAnnounce(ctx, req)
	case req.drain != nil:
		return r.handleDrain(req)
	default:
		return r.handleJoinDialed(req)
	}
}

func (r *coRun) handleJoinAnnounce(ctx context.Context, req *ctlReq) error {
	addr := req.join.Addr
	// Idempotence: an announce from an address already serving the run
	// is acknowledged without change (announce loops retry until
	// welcomed, and a Welcome may be lost).
	for _, p := range r.peers {
		if p.active() && p.addr == addr {
			req.reply.welcome()
			return nil
		}
	}
	if r.state == stFinishing {
		// Explicit rejection: a worker arriving while the run is
		// finishing must not enter the processor map — there is nothing
		// left to start it with.
		req.reply.reject("run is finishing; not accepting joins")
		return nil
	}
	if r.state != stRunning || r.draining != nil || r.joining != nil || r.joinAddr != "" {
		req.reply.reject("a recovery or fleet change is in progress; retry")
		return nil
	}
	free := false
	for _, d := range r.dead {
		if d {
			free = true
			break
		}
	}
	if !free {
		req.reply.reject("no free capacity: every processor is live")
		return nil
	}
	// Dial the announced worker off-loop; the result re-enters as a
	// control event and the join is validated again before integration.
	r.joinAddr = addr
	reply := req.reply
	go func() {
		dctx, cancel := context.WithTimeout(ctx, r.co.connectTimeout())
		defer cancel()
		c, err := dialBackoff(dctx, r.co.Transport, addr, 0, 0)
		if err == nil {
			if herr := handshake(c, Hello{Proto: ProtoVersion, Run: r.id}); herr != nil {
				c.Close()
				c, err = nil, herr
			}
		}
		select {
		case r.events <- coEvent{ctl: &ctlReq{dialed: c, err: err, addr: addr, reply: reply}}:
		case <-ctx.Done():
			if c != nil {
				c.Close()
			}
		}
	}()
	return nil
}

func (r *coRun) handleJoinDialed(req *ctlReq) error {
	r.joinAddr = ""
	if req.err != nil {
		req.reply.reject(fmt.Sprintf("cannot dial announced worker %s: %v", req.addr, req.err))
		return nil
	}
	abort := ""
	switch {
	case r.state == stFinishing:
		abort = "run is finishing; not accepting joins"
	case r.state != stRunning || r.draining != nil || r.joining != nil:
		abort = "a recovery started while the join was connecting; retry"
	}
	if abort == "" {
		free := false
		for _, d := range r.dead {
			if d {
				free = true
				break
			}
		}
		if !free {
			abort = "no free capacity: every processor is live"
		}
	}
	if abort != "" {
		req.dialed.Close()
		req.reply.reject(abort)
		return nil
	}
	p := &peer{i: len(r.peers), addr: req.addr, pending: true, lastHeard: time.Now()}
	p.link = NewLink(req.dialed)
	p.link.SetMaxOutbox(r.co.MaxOutbox)
	r.peers = append(r.peers, p)
	r.addrs = append(r.addrs, req.addr)
	r.joining = p
	r.joinReply = req.reply
	r.extra = append(r.extra, trace.Event{Kind: trace.PeerConnected, At: r.now(), Peer: p.i, Note: "join"})
	r.co.logf("worker %d (%s) joining; pausing for expand replan", p.i, p.addr)
	r.startReader(r.ctx, p)
	return r.startPause()
}

func (r *coRun) handleDrain(req *ctlReq) error {
	var target *peer
	for _, p := range r.peers {
		if req.drain.Worker >= 0 && p.i == req.drain.Worker {
			target = p
		}
		if req.drain.Worker < 0 && req.drain.Addr != "" && p.addr == req.drain.Addr && p.active() {
			target = p
		}
	}
	switch {
	case target == nil:
		req.reply.reject("no such worker")
		return nil
	case target.drained:
		req.reply.reject(fmt.Sprintf("worker %d already drained", target.i))
		return nil
	case target.lost:
		req.reply.reject(fmt.Sprintf("worker %d already lost", target.i))
		return nil
	case target.pending:
		req.reply.reject(fmt.Sprintf("worker %d still joining; retry", target.i))
		return nil
	case r.state == stFinishing:
		req.reply.reject("run is finishing; nothing to drain")
		return nil
	case r.state != stRunning || r.draining != nil || r.joining != nil || r.joinAddr != "":
		req.reply.reject("a recovery or fleet change is in progress; retry")
		return nil
	}
	min := r.co.MinWorkers
	if min < 1 {
		min = 1
	}
	if r.liveWorkers()-1 < min {
		req.reply.reject(fmt.Sprintf("drain would leave %d workers; the minimum is %d", r.liveWorkers()-1, min))
		return nil
	}
	remaining := 0
	for pe, d := range r.dead {
		if !d && r.peerOf[pe] != target.i {
			remaining++
		}
	}
	if remaining == 0 {
		req.reply.reject("drain would leave no live processors")
		return nil
	}
	r.draining = target
	r.drainReply = req.reply
	r.co.logf("worker %d (%s) draining; pausing for checkpoint handover", target.i, target.addr)
	return r.startPause()
}

// acceptControl accepts fleet-control connections and posts their
// first frame to the central loop. The listener closes with the run.
func (r *coRun) acceptControl(ctx context.Context, lis Listener) {
	for {
		c, err := lis.Accept()
		if err != nil {
			return
		}
		go r.controlConn(ctx, c)
	}
}

func (r *coRun) controlConn(ctx context.Context, c Conn) {
	// Bound the first read: a connection that never sends its request
	// must not linger past the run.
	tm := time.AfterFunc(10*time.Second, func() { c.Close() })
	f, err := c.ReadFrame()
	tm.Stop()
	if err != nil {
		c.Close()
		return
	}
	req := &ctlReq{reply: connReply{c}}
	switch f.Type {
	case TJoin:
		n, err := decJSON[JoinNote](f.Payload, "join")
		if err != nil || n.Addr == "" {
			rejectConn(c, "bad join request: missing worker address")
			return
		}
		req.join = &n
	case TDrain:
		n, err := decJSON[DrainNote](f.Payload, "drain")
		if err != nil {
			rejectConn(c, "bad drain request")
			return
		}
		req.drain = &n
	default:
		rejectConn(c, fmt.Sprintf("unexpected %s frame on a control connection", f.Type))
		return
	}
	select {
	case r.events <- coEvent{ctl: req}:
	case <-ctx.Done():
		c.Close()
	}
}

// submitCtl posts a fleet-elasticity request to the run in flight and
// waits for its verdict. Used by the fleet control plane, which owns
// the persistent control listener and forwards joins and drains to
// every active run instead of lending each run a listener of its own.
func (co *Coordinator) submitCtl(ctx context.Context, req *ctlReq) error {
	co.ctlMu.Lock()
	ch, done := co.ctlCh, co.ctlDone
	co.ctlMu.Unlock()
	if ch == nil {
		return fmt.Errorf("wire: no run in flight")
	}
	reply := make(chanReply, 1)
	req.reply = reply
	select {
	case ch <- coEvent{ctl: req}:
	case <-done:
		return fmt.Errorf("wire: run ended before the fleet change completed")
	case <-ctx.Done():
		return ctx.Err()
	}
	select {
	case err := <-reply:
		return err
	case <-done:
		return fmt.Errorf("wire: run ended before the fleet change completed")
	case <-ctx.Done():
		return ctx.Err()
	}
}

// SubmitJoin offers the worker daemon at addr to the run in flight,
// exactly as a TJoin announce on the run's own control listener would.
// It returns nil once the worker serves the run (or already did), or
// the run's rejection reason.
func (co *Coordinator) SubmitJoin(ctx context.Context, addr string) error {
	return co.submitCtl(ctx, &ctlReq{join: &JoinNote{Addr: addr}})
}

// SubmitDrain asks the run in flight to gracefully evacuate a worker:
// by index when worker >= 0, else by its listen address. It returns nil
// once the worker departed with its state handed over, or the run's
// rejection reason.
func (co *Coordinator) SubmitDrain(ctx context.Context, worker int, addr string) error {
	return co.submitCtl(ctx, &ctlReq{drain: &DrainNote{Worker: worker, Addr: addr}})
}

// checkAllIdle finishes the run once every surviving worker reports its
// hosted processors idle.
func (r *coRun) checkAllIdle() error {
	for _, p := range r.peers {
		if p.active() && !p.idle {
			return nil
		}
	}
	r.state = stFinishing
	r.broadcast(TFinish, nil)
	return nil
}

// checkAllResults assembles the final result once every surviving
// worker delivered its partial.
func (r *coRun) checkAllResults() (bool, *exec.Result, error) {
	for _, p := range r.peers {
		if p.active() && p.result == nil {
			return false, nil, nil
		}
	}
	// Drained workers' handed-over print lines and trace events merge
	// ahead of the survivors' partials; PE tags keep print order stable.
	partials := append([]*exec.Partial(nil), r.saved...)
	for _, p := range r.peers {
		if !p.active() {
			continue
		}
		outputs, err := DecodeEnv(p.result.Outputs)
		if err != nil {
			return false, nil, fmt.Errorf("wire: worker %d result: %w", p.i, err)
		}
		events, err := p.result.TraceEvents()
		if err != nil {
			return false, nil, fmt.Errorf("wire: worker %d result: %w", p.i, err)
		}
		partials = append(partials, &exec.Partial{
			Outputs: outputs, Exports: p.result.Exports,
			Printed: p.result.Printed, PrintedPE: p.result.PrintedPE,
			Events: events,
		})
	}
	outputs, printed, err := exec.MergePartials(partials...)
	if err != nil {
		return false, nil, err
	}

	r.broadcast(TBye, nil)
	tr := &trace.Trace{Label: "run:" + r.s.Algorithm}
	for _, p := range partials {
		tr.Events = append(tr.Events, p.Events...)
	}
	at := r.now()
	for _, p := range r.peers {
		in, out := p.link.Stats()
		r.extra = append(r.extra, trace.Event{Kind: trace.WireBytes, At: at,
			Peer: p.i, Bytes: in + out, Note: p.addr})
	}
	tr.Events = append(tr.Events, r.extra...)
	tr.Sort()
	return true, &exec.Result{Outputs: outputs, Printed: printed, Trace: tr,
		Elapsed: time.Since(r.start)}, nil
}

// Calibrate measures round-trip latency to the first worker with empty
// and 4096-word ping payloads and derives a machine.Calibration
// (message startup cost and per-word transfer time): the paper's
// machine-model parameters measured from the actual wire.
func (co *Coordinator) Calibrate(ctx context.Context, probes int) (machine.Calibration, error) {
	if probes <= 0 {
		probes = 8
	}
	var cal machine.Calibration
	if len(co.Addrs) == 0 {
		return cal, fmt.Errorf("wire: no worker address to calibrate against")
	}
	dctx, cancel := context.WithTimeout(ctx, co.connectTimeout())
	defer cancel()
	c, err := dialBackoff(dctx, co.Transport, co.Addrs[0], 0, 0)
	if err != nil {
		return cal, err
	}
	defer c.Close()
	if err := handshake(c, Hello{Proto: ProtoVersion}); err != nil {
		return cal, err
	}

	// One reader goroutine feeds every probe; per-probe deadlines live
	// in minRTT (a lost pong must not spin the loop forever).
	frames := make(chan Frame, 16)
	rerr := make(chan error, 1)
	done := make(chan struct{})
	defer close(done)
	go func() {
		for {
			f, err := c.ReadFrame()
			if err != nil {
				rerr <- err
				return
			}
			select {
			case frames <- f:
			case <-done:
				return
			}
		}
	}()

	const words = 4096
	timeout := co.peerTimeout()
	small, err := minRTT(c, probes, nil, frames, rerr, timeout)
	if err != nil {
		return cal, err
	}
	large, err := minRTT(c, probes, make([]byte, words*8), frames, rerr, timeout)
	if err != nil {
		return cal, err
	}
	if err := c.WriteFrame(Frame{Type: TBye, Wid: 1}); err != nil {
		return cal, fmt.Errorf("wire: calibration goodbye: %w", err)
	}

	// One-way cost is half the round trip; the model's units are
	// microseconds (per message, and per 8-byte word).
	cal.MsgStartup = machine.Time(small / 2 / time.Microsecond)
	if large > small {
		cal.WordTime = machine.Time((large - small) / 2 / words / time.Microsecond)
	}
	if cal.MsgStartup == 0 && cal.WordTime == 0 {
		// A wire faster than the model's microsecond resolution (the
		// in-memory transport, typically) still costs one tick.
		cal.MsgStartup = 1
	}
	return cal, nil
}

// minRTT measures the fastest of n ping round trips with the given
// payload. Each probe is bounded by timeout: a lost pong (or a worker
// that only ever sends heartbeats) fails the calibration instead of
// spinning the receive loop forever.
func minRTT(c Conn, n int, payload []byte, frames <-chan Frame, rerr <-chan error, timeout time.Duration) (time.Duration, error) {
	best := time.Duration(0)
	deadline := time.NewTimer(timeout)
	defer deadline.Stop()
	for i := 0; i < n; i++ {
		t0 := time.Now()
		if err := c.WriteFrame(Frame{Type: TPing, Payload: payload}); err != nil {
			return 0, err
		}
		if !deadline.Stop() {
			select {
			case <-deadline.C:
			default:
			}
		}
		deadline.Reset(timeout)
	probe:
		for {
			select {
			case f := <-frames:
				if f.Type == TPong {
					break probe
				}
				// Heartbeats and acks interleave with pongs; skip them.
			case err := <-rerr:
				return 0, err
			case <-deadline.C:
				return 0, fmt.Errorf("wire: calibration probe %d timed out after %v (no pong)", i, timeout)
			}
		}
		if rtt := time.Since(t0); best == 0 || rtt < best {
			best = rtt
		}
	}
	return best, nil
}
