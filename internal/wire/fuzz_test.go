package wire

import (
	"bytes"
	"reflect"
	"testing"

	"repro/internal/exec"
	"repro/internal/pits"
)

// Fuzz targets for the wire decoders: whatever bytes arrive off a
// socket, decoding must return an error — never panic, and never
// allocate unboundedly from a corrupted length or count field. Corpus
// seeds are the valid encodings the rest of the suite relies on.

// fuzzEnv is a representative environment covering every value tag.
func fuzzEnv() pits.Env {
	return pits.Env{
		"x":    pits.Num(3.5),
		"vec":  pits.Vec{1, 2, 3},
		"flag": pits.BoolV(true),
		"name": pits.StrV("gauss"),
	}
}

func FuzzReadFrame(f *testing.F) {
	// Seed with valid frames of each flavour: empty payload, data
	// payload, sequenced, and a handshake-style JSON payload.
	for _, fr := range []Frame{
		{Type: THello, Payload: []byte(`{"proto":1}`)},
		{Type: TData, Wid: 7, Payload: []byte("payload")},
		{Type: THeartbeat},
		{Type: TResult, Wid: 42, Payload: bytes.Repeat([]byte{0xAB}, 600)},
	} {
		var buf bytes.Buffer
		if _, err := WriteFrame(&buf, fr); err != nil {
			f.Fatal(err)
		}
		f.Add(buf.Bytes())
	}
	// Truncated and oversized corruptions of a valid frame.
	var buf bytes.Buffer
	WriteFrame(&buf, Frame{Type: TData, Payload: []byte("hello")})
	valid := buf.Bytes()
	f.Add(valid[:HeaderLen-3])
	huge := append([]byte(nil), valid...)
	huge[12], huge[13], huge[14], huge[15] = 0xFF, 0xFF, 0xFF, 0xFF
	f.Add(huge)

	f.Fuzz(func(t *testing.T, data []byte) {
		fr, n, err := ReadFrame(bytes.NewReader(data))
		if err != nil {
			return
		}
		if n > len(data) {
			t.Fatalf("ReadFrame consumed %d of %d bytes", n, len(data))
		}
		// A frame that decoded must re-encode to the same bytes.
		var out bytes.Buffer
		if _, err := WriteFrame(&out, fr); err != nil {
			t.Fatalf("re-encoding a decoded frame: %v", err)
		}
		if !bytes.Equal(out.Bytes(), data[:n]) {
			t.Fatalf("frame did not round-trip:\n in  %x\n out %x", data[:n], out.Bytes())
		}
	})
}

func FuzzDecodeValue(f *testing.F) {
	for _, v := range []pits.Value{pits.Num(1.25), pits.Vec{4, 5}, pits.BoolV(false), pits.StrV("s")} {
		b, err := AppendValue(nil, v)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(b)
	}
	f.Add([]byte{tagVec, 0xFF, 0xFF, 0xFF, 0xFF}) // huge claimed vector
	f.Fuzz(func(t *testing.T, data []byte) {
		v, rest, err := DecodeValue(data)
		if err != nil {
			return
		}
		if len(rest) > len(data) {
			t.Fatal("decoder produced more rest than input")
		}
		// Decoded values re-encode and decode to an equal value.
		b, err := AppendValue(nil, v)
		if err != nil {
			t.Fatalf("re-encoding decoded value %v: %v", v, err)
		}
		v2, _, err := DecodeValue(b)
		if err != nil {
			t.Fatalf("re-decoding: %v", err)
		}
		if v.String() != v2.String() {
			t.Fatalf("value changed across round trip: %v != %v", v, v2)
		}
	})
}

func FuzzDecodeEnv(f *testing.F) {
	b, err := EncodeEnv(fuzzEnv())
	if err != nil {
		f.Fatal(err)
	}
	f.Add(b)
	empty, _ := EncodeEnv(pits.Env{})
	f.Add(empty)
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF, 0x00}) // huge claimed entry count
	f.Fuzz(func(t *testing.T, data []byte) {
		e, err := DecodeEnv(data)
		if err != nil {
			return
		}
		b, err := EncodeEnv(e)
		if err != nil {
			t.Fatalf("re-encoding decoded env: %v", err)
		}
		e2, err := DecodeEnv(b)
		if err != nil {
			t.Fatalf("re-decoding: %v", err)
		}
		if len(e2) != len(e) {
			t.Fatalf("env changed size across round trip: %d != %d", len(e2), len(e))
		}
	})
}

func FuzzDecodeMsg(f *testing.F) {
	for _, v := range []pits.Value{pits.Num(9), pits.Vec{1}, pits.StrV("datum")} {
		b, err := EncodeMsg(exec.RemoteMsg{
			From: "a", To: "b", Var: "v", FromPE: 1, ToPE: 2,
			Seq: 3, Epoch: 1, At: 99, Sum: 7, Val: v,
		})
		if err != nil {
			f.Fatal(err)
		}
		f.Add(b)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := DecodeMsg(data)
		if err != nil {
			return
		}
		b, err := EncodeMsg(m)
		if err != nil {
			t.Fatalf("re-encoding decoded message: %v", err)
		}
		m2, err := DecodeMsg(b)
		if err != nil {
			t.Fatalf("re-decoding: %v", err)
		}
		m.Val, m2.Val = nil, nil // values compared via their encoding above
		if !reflect.DeepEqual(m, m2) {
			t.Fatalf("message changed across round trip:\n%+v\n%+v", m, m2)
		}
	})
}
